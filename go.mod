module spnet

go 1.22
