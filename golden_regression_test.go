package spnet_test

import (
	"fmt"
	"testing"

	"spnet"
)

// The flood protocol is the paper's protocol, and the routing-strategy layer
// was refactored under it with a bit-identical guarantee: every value below
// was captured (at full float precision) from the pre-refactor tree, and the
// default flood configuration must keep reproducing it exactly — across the
// analysis engine, its parallel trial runner at several worker counts, and
// the simulator's churn, content and adaptive modes. Any drift here means
// the refactor perturbed a float operation order or an RNG draw sequence.

func goldenConfig() spnet.Config {
	cfg := spnet.DefaultConfig()
	cfg.GraphSize = 400
	return cfg
}

func fmtLoad(l spnet.Load) string {
	return fmt.Sprintf("{%.17g %.17g %.17g}", l.InBps, l.OutBps, l.ProcHz)
}

func expect(t *testing.T, what, got, want string) {
	t.Helper()
	if got != want {
		t.Errorf("%s:\n  got  %s\n  want %s", what, got, want)
	}
}

func TestGoldenTrialsBitIdenticalAcrossWorkers(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		ts, err := spnet.RunTrialsWorkers(goldenConfig(), nil, 3, 7, workers)
		if err != nil {
			t.Fatal(err)
		}
		w := fmt.Sprintf("workers=%d", workers)
		expect(t, w+" aggregate", fmtLoad(ts.Aggregate.Mean()),
			"{775549.92698227894 775549.92698227603 9133429.4499330893}")
		expect(t, w+" super-peer", fmtLoad(ts.SuperPeer.Mean()),
			"{16391.886610980026 18588.025055019127 211744.38234604741}")
		expect(t, w+" client", fmtLoad(ts.Client.Mean()),
			"{327.37495725645891 87.393930925475047 1812.0710844189771}")
		expect(t, w+" scalars",
			fmt.Sprintf("%.17g %.17g %.17g %.17g",
				ts.ResultsPerQuery.Mean, ts.EPL.Mean, ts.ReachClusters.Mean, ts.ReachPeers.Mean),
			"34.910027941176459 2.9832367343049349 39.985294117647051 406.20751633986924")
	}
}

func TestGoldenEvaluate(t *testing.T) {
	inst, err := spnet.Generate(goldenConfig(), nil, 11)
	if err != nil {
		t.Fatal(err)
	}
	res := spnet.Evaluate(inst)
	expect(t, "aggregate", fmtLoad(res.AggregateLoad()),
		"{768575.48077298538 768575.48077298293 9177175.0869914014}")
	expect(t, "super-peer", fmtLoad(res.MeanSuperPeerLoad()),
		"{16243.912576339935 18366.671726274642 212780.9024569015}")
	expect(t, "client", fmtLoad(res.MeanClientLoad()),
		"{322.87765684615869 92.142966635861981 1809.6168171612553}")
	expect(t, "scalars",
		fmt.Sprintf("%.17g %.17g", res.ResultsPerQuery, res.EPL),
		"33.401699999999991 2.8681080968354564")
	cb := res.SuperPeerClassBps(0)
	expect(t, "super-peer 0 query/response bps",
		fmt.Sprintf("%.17g %.17g %.17g %.17g", cb[0][0], cb[0][1], cb[1][0], cb[1][1]),
		"14602.501439999993 42693.341119999983 59552.713028079481 62311.125020181971")

	// EvaluateStrategy with a nil forward model is the flood evaluation.
	res2 := spnet.EvaluateStrategy(inst, nil)
	expect(t, "EvaluateStrategy(nil) aggregate", fmtLoad(res2.AggregateLoad()),
		fmtLoad(res.AggregateLoad()))
}

func TestGoldenSimChurn(t *testing.T) {
	inst, err := spnet.Generate(goldenConfig(), nil, 11)
	if err != nil {
		t.Fatal(err)
	}
	m, err := spnet.Simulate(inst, spnet.SimOptions{Duration: 600, Seed: 12, Churn: true})
	if err != nil {
		t.Fatal(err)
	}
	expect(t, "aggregate", fmtLoad(m.Aggregate),
		"{780527.99999999977 780532.90666666685 9351012.2880003788}")
	expect(t, "mean super-peer", fmtLoad(m.MeanSuperPeer),
		"{16524.818666666666 18707.80133333334 217137.31200000935}")
	expect(t, "mean client", fmtLoad(m.MeanClient),
		"{324.82405797101467 87.556666666666672 1808.4777391304333}")
	expect(t, "scalars",
		fmt.Sprintf("%.17g %.17g %d %d", m.ResultsPerQuery, m.EPL, m.QueriesIssued, m.EventsExecuted),
		"31.886449978894049 2.8707034674566945 2369 304427")
	cb := m.SuperPeerClassBps[0]
	expect(t, "super-peer 0 query/response bps",
		fmt.Sprintf("%.17g %.17g %.17g %.17g", cb[0][0], cb[0][1], cb[1][0], cb[1][1]),
		"11110.800000000001 44609.893333333333 71335.626666666678 74279.253333333341")
}

func TestGoldenSimContent(t *testing.T) {
	inst, err := spnet.Generate(goldenConfig(), nil, 11)
	if err != nil {
		t.Fatal(err)
	}
	m, err := spnet.Simulate(inst, spnet.SimOptions{
		Duration: 400, Seed: 5, Churn: true, Content: &spnet.ContentOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	expect(t, "aggregate", fmtLoad(m.Aggregate),
		"{905721.3600000001 905721.36000000197 10559771.712001801}")
	expect(t, "scalars",
		fmt.Sprintf("%.17g %.17g %d %d", m.ResultsPerQuery, m.EPL, m.QueriesIssued, m.EventsExecuted),
		"52.36221009549795 2.8810593978058092 1466 189251")
}

func TestGoldenSimAdaptive(t *testing.T) {
	inst, err := spnet.Generate(goldenConfig(), nil, 11)
	if err != nil {
		t.Fatal(err)
	}
	m, err := spnet.Simulate(inst, spnet.SimOptions{
		Duration: 900, Seed: 3, Churn: true,
		Adaptive: &spnet.AdaptiveOptions{
			Limit:       spnet.Load{InBps: 50_000, OutBps: 50_000, ProcHz: 1e6},
			Interval:    60,
			ArrivalRate: 0.2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	expect(t, "aggregate", fmtLoad(m.Aggregate),
		"{1273263.2355555568 1266287.3066666659 17016712.256001357}")
	expect(t, "scalars",
		fmt.Sprintf("%d %d %d %d %.17g %.17g",
			m.QueriesIssued, m.EventsExecuted, m.FinalClusters, m.FinalPeers,
			m.FinalMeanTTL, m.FinalMeanOutdegree),
		"4054 980026 39 566 4.384615384615385 7.8461538461538458")
}
