package spnet_test

import (
	"math"
	"testing"

	"spnet"
)

func TestFacadeQuickstart(t *testing.T) {
	cfg := spnet.DefaultConfig()
	cfg.GraphSize = 500
	inst, err := spnet.Generate(cfg, nil, 42)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	res := spnet.Evaluate(inst)
	if res.ResultsPerQuery <= 0 {
		t.Error("no results")
	}
	sp := res.MeanSuperPeerLoad()
	cl := res.MeanClientLoad()
	if sp.TotalBps() <= cl.TotalBps() {
		t.Error("super-peers should carry more load than clients")
	}
	agg := res.AggregateLoad()
	if math.Abs(agg.InBps-agg.OutBps)/agg.InBps > 1e-9 {
		t.Error("aggregate in != out")
	}
}

func TestFacadeTrials(t *testing.T) {
	cfg := spnet.DefaultConfig()
	cfg.GraphSize = 300
	sum, err := spnet.RunTrials(cfg, nil, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Trials != 2 || sum.ResultsPerQuery.Mean <= 0 {
		t.Errorf("unexpected summary: %+v", sum.ResultsPerQuery)
	}
}

func TestFacadeDesign(t *testing.T) {
	plan, err := spnet.Design(
		spnet.Goals{NetworkSize: 2000, DesiredReach: 400},
		spnet.Constraints{MaxDownBps: 1e5, MaxUpBps: 1e5, MaxProcHz: 1e7, MaxConns: 100},
		spnet.DesignOptions{Trials: 1, Seed: 1},
	)
	if err != nil {
		t.Fatalf("Design: %v", err)
	}
	if plan.Config.ClusterSize < 1 || plan.Config.TTL < 1 {
		t.Errorf("degenerate plan: %+v", plan.Config)
	}
}

func TestFacadeSimulate(t *testing.T) {
	cfg := spnet.DefaultConfig()
	cfg.GraphSize = 200
	inst, err := spnet.Generate(cfg, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := spnet.Simulate(inst, spnet.SimOptions{Duration: 120, Seed: 4, Churn: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.QueriesIssued == 0 || m.Aggregate.InBps <= 0 {
		t.Errorf("inactive simulation: %+v", m)
	}
}

func TestFacadeTTLHelpers(t *testing.T) {
	if ttl := spnet.PredictTTL(20, 500); ttl != 3 {
		t.Errorf("PredictTTL(20, 500) = %d, want 3", ttl)
	}
	epl, err := spnet.MeasureEPL(800, 10, 300, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if epl < 1 || epl > 6 {
		t.Errorf("MeasureEPL = %v", epl)
	}
}

func TestFacadeAdvise(t *testing.T) {
	adv := spnet.Advise(spnet.LocalState{
		Load:    spnet.Load{InBps: 10},
		Limit:   spnet.Load{InBps: 1000, OutBps: 1000, ProcHz: 1e6},
		Clients: 3, Outdegree: 3, TTL: 7,
	}, spnet.Thresholds{})
	if !adv.AcceptClients {
		t.Error("should accept clients")
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := spnet.ExperimentIDs()
	if len(ids) < 15 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	titles := spnet.ExperimentTitles()
	for _, id := range ids {
		if titles[id] == "" {
			t.Errorf("experiment %s has no title", id)
		}
	}
	rep, err := spnet.RunExperiment("table2", spnet.ExperimentParams{})
	if err != nil {
		t.Fatal(err)
	}
	if text := spnet.FormatReport(rep); len(text) < 100 {
		t.Errorf("report text too short: %q", text)
	}
	if _, err := spnet.RunExperiment("nope", spnet.ExperimentParams{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFacadeCustomQueryModel(t *testing.T) {
	qm, err := spnet.NewQueryModel([]float64{0.7, 0.3}, []float64{0.001, 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	prof := spnet.DefaultProfile()
	prof.Queries = qm
	cfg := spnet.DefaultConfig()
	cfg.GraphSize = 200
	inst, err := spnet.Generate(cfg, prof, 6)
	if err != nil {
		t.Fatal(err)
	}
	res := spnet.Evaluate(inst)
	want := qm.MeanSelectionPower() * float64(instTotalFiles(inst))
	if res.ResultsPerQuery > want*1.05 {
		t.Errorf("results %v exceed full-reach bound %v", res.ResultsPerQuery, want)
	}
}

func instTotalFiles(inst *spnet.Instance) int {
	total := 0
	for i := range inst.Clusters {
		total += inst.Clusters[i].IndexFiles
	}
	return total
}

func TestFacadeContentMode(t *testing.T) {
	lib := spnet.DefaultLibrary()
	qm, err := spnet.BuildQueryModel(lib, 1, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if qm.MeanSelectionPower() <= 0 {
		t.Error("derived model has zero selection power")
	}
	cfg := spnet.DefaultConfig()
	cfg.GraphSize = 150
	inst, err := spnet.Generate(cfg, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := spnet.Simulate(inst, spnet.SimOptions{
		Duration: 120, Seed: 3,
		Content: &spnet.ContentOptions{Library: lib},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.ResultsPerQuery <= 0 {
		t.Error("content mode returned no results")
	}
}

func TestFacadeFailures(t *testing.T) {
	cfg := spnet.DefaultConfig()
	cfg.GraphSize = 150
	inst, err := spnet.Generate(cfg, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := spnet.Simulate(inst, spnet.SimOptions{
		Duration: 800, Seed: 5,
		Failures: &spnet.FailureOptions{MTBF: 400, RecoveryDelay: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.FailuresInjected == 0 {
		t.Error("no failures injected")
	}
}

func TestFacadeKRedundancy(t *testing.T) {
	cfg := spnet.DefaultConfig()
	cfg.GraphSize = 300
	cfg.KRedundancy = 3
	inst, err := spnet.Generate(cfg, nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Clusters[0].Partners) != 3 {
		t.Errorf("partners = %d, want 3", len(inst.Clusters[0].Partners))
	}
	res := spnet.Evaluate(inst)
	if res.MeanSuperPeerLoad().TotalBps() <= 0 {
		t.Error("no load computed")
	}
}
