// Package topology provides the overlay-network substrate of the super-peer
// evaluation framework: explicit adjacency graphs, implicit cliques (the
// paper's "strongly connected" topologies), the PLOD power-law topology
// generator of Palmer & Steffan used by the paper (Section 4, Step 1), and
// the breadth-first machinery that models query propagation — reach,
// predecessor trees, redundant-edge counting and expected path length (EPL).
package topology

import "fmt"

// Graph is an undirected overlay over nodes 0..N()-1. Neighbors of a node
// are visited through VisitNeighbors so that cliques need not materialize
// O(n²) edges.
type Graph interface {
	// N returns the number of nodes.
	N() int
	// Degree returns the number of neighbors of node v.
	Degree(v int) int
	// VisitNeighbors calls visit for every neighbor of v until visit
	// returns false.
	VisitNeighbors(v int, visit func(w int) bool)
	// IsClique reports whether the graph is a complete graph, enabling the
	// analysis engine's closed-form fast path.
	IsClique() bool
}

// AdjGraph is an explicit undirected graph in compressed adjacency form.
type AdjGraph struct {
	offsets []int32 // len n+1; neighbors of v are adj[offsets[v]:offsets[v+1]]
	adj     []int32
}

var _ Graph = (*AdjGraph)(nil)

// NewAdjGraph builds an AdjGraph from an edge list over n nodes. Self-loops
// and duplicate edges are rejected with an error since the overlay model
// treats edges as distinct open connections.
func NewAdjGraph(n int, edges [][2]int) (*AdjGraph, error) {
	deg := make([]int32, n)
	seen := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("topology: edge (%d,%d) out of range [0,%d)", u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("topology: self-loop at node %d", u)
		}
		key := [2]int{min(u, v), max(u, v)}
		if seen[key] {
			return nil, fmt.Errorf("topology: duplicate edge (%d,%d)", u, v)
		}
		seen[key] = true
		deg[u]++
		deg[v]++
	}
	g := &AdjGraph{
		offsets: make([]int32, n+1),
		adj:     make([]int32, 2*len(edges)),
	}
	for v := 0; v < n; v++ {
		g.offsets[v+1] = g.offsets[v] + deg[v]
	}
	cursor := make([]int32, n)
	copy(cursor, g.offsets[:n])
	for _, e := range edges {
		u, v := int32(e[0]), int32(e[1])
		g.adj[cursor[u]] = v
		cursor[u]++
		g.adj[cursor[v]] = u
		cursor[v]++
	}
	return g, nil
}

// N returns the number of nodes.
func (g *AdjGraph) N() int { return len(g.offsets) - 1 }

// Degree returns the number of neighbors of v.
func (g *AdjGraph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns a read-only view of v's neighbor list.
func (g *AdjGraph) Neighbors(v int) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// VisitNeighbors calls visit for each neighbor of v until it returns false.
func (g *AdjGraph) VisitNeighbors(v int, visit func(w int) bool) {
	for _, w := range g.Neighbors(v) {
		if !visit(int(w)) {
			return
		}
	}
}

// IsClique reports whether every node is adjacent to every other.
func (g *AdjGraph) IsClique() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	return len(g.adj) == n*(n-1)
}

// NumEdges returns the number of undirected edges.
func (g *AdjGraph) NumEdges() int { return len(g.adj) / 2 }

// AvgDegree returns the average outdegree of the graph.
func (g *AdjGraph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return float64(len(g.adj)) / float64(g.N())
}

// HasEdge reports whether u and v are adjacent (linear scan of the shorter
// neighbor list; intended for tests and repair, not hot paths).
func (g *AdjGraph) HasEdge(u, v int) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	for _, w := range g.Neighbors(u) {
		if int(w) == v {
			return true
		}
	}
	return false
}

// Clique is an implicit complete graph on n nodes: the paper's "strongly
// connected" topology, studied as the best case for result quality and
// bandwidth (Section 4, Step 1). No edges are materialized.
type Clique struct {
	n int
}

var _ Graph = Clique{}

// NewClique returns a complete graph over n nodes.
func NewClique(n int) Clique { return Clique{n: n} }

// N returns the number of nodes.
func (c Clique) N() int { return c.n }

// Degree returns n-1 for every node.
func (c Clique) Degree(v int) int { return c.n - 1 }

// VisitNeighbors visits every node except v.
func (c Clique) VisitNeighbors(v int, visit func(w int) bool) {
	for w := 0; w < c.n; w++ {
		if w == v {
			continue
		}
		if !visit(w) {
			return
		}
	}
}

// IsClique reports true.
func (c Clique) IsClique() bool { return true }

// AvgDegree returns the average outdegree, n-1.
func (c Clique) AvgDegree() float64 {
	if c.n == 0 {
		return 0
	}
	return float64(c.n - 1)
}
