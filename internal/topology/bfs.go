package topology

import "math"

// BFSResult records a breadth-first traversal from a source node, the
// paper's model of query propagation (Section 4, Step 2): the query floods
// outward level by level, and responses travel back up the predecessor tree.
type BFSResult struct {
	Source int
	// Depth[v] is the hop distance from the source, or -1 if v was not
	// reached within the traversal's TTL.
	Depth []int32
	// Parent[v] is the BFS-tree predecessor of v (-1 for the source and for
	// unreached nodes). Responses from v travel v → Parent[v] → … → Source.
	Parent []int32
	// Order lists reached nodes in traversal order, source first.
	Order []int32
}

// Reach returns the number of nodes reached, including the source — the
// paper's "reach of the query".
func (r *BFSResult) Reach() int { return len(r.Order) }

// MaxDepth returns the depth of the deepest reached node.
func (r *BFSResult) MaxDepth() int {
	if len(r.Order) == 0 {
		return 0
	}
	return int(r.Depth[r.Order[len(r.Order)-1]])
}

// BFS performs a breadth-first traversal from source, visiting nodes at hop
// distance <= ttl. A ttl < 0 means unlimited. When maxNodes > 0 the
// traversal stops after reaching that many nodes (used for Figure 9's
// fixed-reach EPL measurements); 0 means unbounded.
func BFS(g Graph, source, ttl, maxNodes int) *BFSResult {
	n := g.N()
	res := &BFSResult{
		Source: source,
		Depth:  make([]int32, n),
		Parent: make([]int32, n),
	}
	for i := range res.Depth {
		res.Depth[i] = -1
		res.Parent[i] = -1
	}
	res.Depth[source] = 0
	res.Order = append(res.Order, int32(source))
	if (maxNodes > 0 && len(res.Order) >= maxNodes) || ttl == 0 {
		return res
	}
	frontier := []int32{int32(source)}
	for depth := 1; len(frontier) > 0 && (ttl < 0 || depth <= ttl); depth++ {
		var next []int32
		for _, v := range frontier {
			stop := false
			g.VisitNeighbors(int(v), func(w int) bool {
				if res.Depth[w] == -1 {
					res.Depth[w] = int32(depth)
					res.Parent[w] = v
					res.Order = append(res.Order, int32(w))
					next = append(next, int32(w))
					if maxNodes > 0 && len(res.Order) >= maxNodes {
						stop = true
						return false
					}
				}
				return true
			})
			if stop {
				return res
			}
		}
		frontier = next
	}
	return res
}

// ReachForTTL returns the number of nodes a query from source reaches at the
// given TTL (including the source).
func ReachForTTL(g Graph, source, ttl int) int {
	if g.IsClique() {
		if ttl <= 0 {
			return 1
		}
		return g.N()
	}
	return BFS(g, source, ttl, 0).Reach()
}

// EPLForReach returns the expected path length when the desired reach is
// exactly `reach` nodes: the mean hop distance of the 2nd..reach-th node in
// BFS order from source (the source itself responds in 0 hops and sends no
// message, so it is excluded). This reproduces the measurements behind the
// paper's Figure 9. NaN is returned when fewer than 2 nodes are reachable.
func EPLForReach(g Graph, source, reach int) float64 {
	if reach > g.N() {
		reach = g.N()
	}
	if reach < 2 {
		return math.NaN()
	}
	if g.IsClique() {
		return 1
	}
	res := BFS(g, source, -1, reach)
	if len(res.Order) < 2 {
		return math.NaN()
	}
	var sum float64
	for _, v := range res.Order[1:] {
		sum += float64(res.Depth[v])
	}
	return sum / float64(len(res.Order)-1)
}

// MinTTLForFullReach returns the smallest TTL that lets a query from source
// reach every node in source's connected component (rule of thumb #4: once
// the reach covers every node, any larger TTL only adds redundant traffic).
func MinTTLForFullReach(g Graph, source int) int {
	if g.N() <= 1 {
		return 0
	}
	if g.IsClique() {
		return 1
	}
	return BFS(g, source, -1, 0).MaxDepth()
}

// EPLApprox is the closed-form approximation the paper gives in Appendix F:
// EPL ≈ log_d(reach) for average outdegree d. It is exact for a d-ary tree
// rooted at the source and a lower bound on graphs (cycles reduce the
// effective outdegree).
func EPLApprox(avgOutdegree float64, reach int) float64 {
	if avgOutdegree <= 1 || reach < 2 {
		return math.NaN()
	}
	return math.Log(float64(reach)) / math.Log(avgOutdegree)
}

// TreeReachBound returns the maximum number of nodes reachable within ttl
// hops when every node has outdegree d: 1 + d + d(d-1) + d(d-1)² + …
// (the source reaches d neighbors; each interior node forwards on d-1 edges).
// The paper's Section 5.2 uses the simpler d + d² bound for TTL 2; this
// refines it while preserving the design procedure's intent.
func TreeReachBound(d, ttl int) float64 {
	if ttl <= 0 || d <= 0 {
		return 1
	}
	total := 1.0
	level := float64(d)
	for h := 1; h <= ttl; h++ {
		total += level
		if total > 1e18 {
			return math.Inf(1)
		}
		level *= float64(d - 1)
	}
	return total
}
