package topology

import (
	"fmt"
	"math"

	"spnet/internal/stats"
)

// PLODParams configures the power-law topology generator.
//
// The generator follows the PLOD algorithm of Palmer & Steffan ("Generating
// network topologies that obey power laws", GLOBECOM 2000), the generator the
// paper itself uses (Section 4, Step 1): every node receives a degree credit
// drawn from a power law, and random node pairs are connected while both
// endpoints have credit remaining. We add two post-passes the evaluation
// needs: a top-up pass so the realized average outdegree matches the
// configured target (the paper parameterizes topologies by average
// outdegree, e.g. 3.1 for Gnutella), and a connectivity repair pass so that
// no super-peer cluster is isolated from the overlay.
type PLODParams struct {
	N      int     // number of nodes (super-peer clusters)
	AvgDeg float64 // target average outdegree, e.g. 3.1 or 10
	Alpha  float64 // power-law credit exponent; 0 picks the default 0.8
}

// defaultPLODAlpha makes the degree frequency tail f_d ∝ d^-(1+1/α) ≈ d^-2.25,
// close to the exponent measured for Gnutella-era overlays.
const defaultPLODAlpha = 0.8

// PowerLaw generates a connected power-law overlay with the given parameters.
// The same parameters and RNG stream always produce the same graph.
func PowerLaw(p PLODParams, rng *stats.RNG) (*AdjGraph, error) {
	if p.N <= 0 {
		return nil, fmt.Errorf("topology: PowerLaw N = %d, want > 0", p.N)
	}
	if p.N == 1 {
		return NewAdjGraph(1, nil)
	}
	if p.AvgDeg < 1 {
		return nil, fmt.Errorf("topology: PowerLaw AvgDeg = %v, want >= 1", p.AvgDeg)
	}
	if p.AvgDeg > float64(p.N-1) {
		return nil, fmt.Errorf("topology: PowerLaw AvgDeg = %v exceeds N-1 = %d", p.AvgDeg, p.N-1)
	}
	alpha := p.Alpha
	if alpha == 0 {
		alpha = defaultPLODAlpha
	}
	if alpha < 0 {
		return nil, fmt.Errorf("topology: PowerLaw Alpha = %v, want >= 0", alpha)
	}

	credits := plodCredits(p.N, p.AvgDeg, alpha, rng)

	// Configuration-model pairing: lay out one stub per credit, shuffle, and
	// connect consecutive stubs, skipping self-loops and duplicates.
	var stubs []int32
	for v, c := range credits {
		for i := 0; i < c; i++ {
			stubs = append(stubs, int32(v))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })

	type edgeKey struct{ u, v int32 }
	mk := func(u, v int32) edgeKey {
		if u > v {
			u, v = v, u
		}
		return edgeKey{u, v}
	}
	seen := make(map[edgeKey]bool, len(stubs)/2)
	edges := make([][2]int, 0, len(stubs)/2)
	deg := make([]int, p.N)
	addEdge := func(u, v int32) bool {
		if u == v {
			return false
		}
		k := mk(u, v)
		if seen[k] {
			return false
		}
		seen[k] = true
		edges = append(edges, [2]int{int(u), int(v)})
		deg[u]++
		deg[v]++
		return true
	}
	for i := 0; i+1 < len(stubs); i += 2 {
		addEdge(stubs[i], stubs[i+1])
	}

	// Top-up: the pairing drops self-loop and duplicate stubs, which skews
	// the realized mean below target. Add random edges until the edge budget
	// is met, bounded by a retry budget so degenerate inputs terminate.
	wantEdges := int(math.Round(p.AvgDeg * float64(p.N) / 2))
	maxEdges := p.N * (p.N - 1) / 2
	if wantEdges > maxEdges {
		wantEdges = maxEdges
	}
	for attempts := 0; len(edges) < wantEdges && attempts < 30*wantEdges; attempts++ {
		u := int32(rng.Intn(p.N))
		v := int32(rng.Intn(p.N))
		addEdge(u, v)
	}

	// Connectivity repair: attach every secondary component to the largest
	// one with a single edge.
	repairConnectivity(p.N, edges, deg, func(u, v int) bool {
		return addEdge(int32(u), int32(v))
	})

	return NewAdjGraph(p.N, edges)
}

// plodCredits draws per-node degree credits c_v = round(β·x^-α), x uniform on
// [1, n], with β calibrated by bisection so the clamped credit mean matches
// the target average outdegree.
func plodCredits(n int, avgDeg, alpha float64, rng *stats.RNG) []int {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Pow(float64(1+rng.Intn(n)), -alpha)
	}
	clampMean := func(beta float64) float64 {
		var sum float64
		for _, x := range xs {
			c := math.Round(beta * x)
			if c < 1 {
				c = 1
			}
			if c > float64(n-1) {
				c = float64(n - 1)
			}
			sum += c
		}
		return sum / float64(n)
	}
	lo, hi := 0.0, 1.0
	for clampMean(hi) < avgDeg && hi < 1e12 {
		hi *= 2
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if clampMean(mid) < avgDeg {
			lo = mid
		} else {
			hi = mid
		}
	}
	beta := (lo + hi) / 2
	credits := make([]int, n)
	for i, x := range xs {
		c := int(math.Round(beta * x))
		if c < 1 {
			c = 1
		}
		if c > n-1 {
			c = n - 1
		}
		credits[i] = c
	}
	return credits
}

// repairConnectivity links all components to the largest one. addEdge must
// return false if the edge already exists.
func repairConnectivity(n int, edges [][2]int, deg []int, addEdge func(u, v int) bool) {
	comp := components(n, edges)
	if len(comp) <= 1 {
		return
	}
	// Find the largest component.
	largest := 0
	for i, c := range comp {
		if len(c) > len(comp[largest]) {
			largest = i
		}
	}
	anchor := comp[largest][0]
	for i, c := range comp {
		if i == largest {
			continue
		}
		// Attach via the component's lowest-degree node to disturb the
		// degree distribution as little as possible.
		best := c[0]
		for _, v := range c {
			if deg[v] < deg[best] {
				best = v
			}
		}
		addEdge(best, anchor)
	}
}

// components returns the connected components of the edge list over n nodes
// as slices of node ids, each sorted ascending by construction.
func components(n int, edges [][2]int) [][]int {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		ru, rv := find(e[0]), find(e[1])
		if ru != rv {
			parent[ru] = rv
		}
	}
	groups := make(map[int][]int)
	for v := 0; v < n; v++ {
		r := find(v)
		groups[r] = append(groups[r], v)
	}
	out := make([][]int, 0, len(groups))
	for v := 0; v < n; v++ {
		if find(v) == v {
			out = append(out, groups[v])
		}
	}
	return out
}

// Components returns the connected components of g (explicit graphs only).
func Components(g *AdjGraph) [][]int {
	edges := make([][2]int, 0, g.NumEdges())
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if int(w) > v {
				edges = append(edges, [2]int{v, int(w)})
			}
		}
	}
	return components(g.N(), edges)
}

// IsConnected reports whether g has a single connected component.
func IsConnected(g *AdjGraph) bool {
	if g.N() <= 1 {
		return true
	}
	return len(Components(g)) == 1
}

// DegreeFrequency returns a map from outdegree to the number of nodes with
// that outdegree, used to verify the power-law shape.
func DegreeFrequency(g Graph) map[int]int {
	freq := make(map[int]int)
	for v := 0; v < g.N(); v++ {
		freq[g.Degree(v)]++
	}
	return freq
}
