package topology

import (
	"math"
	"testing"
	"testing/quick"

	"spnet/internal/stats"
)

func TestBFSPathGraph(t *testing.T) {
	g := pathGraph(t, 6) // 0-1-2-3-4-5
	res := BFS(g, 0, -1, 0)
	if res.Reach() != 6 {
		t.Fatalf("Reach = %d, want 6", res.Reach())
	}
	for v := 0; v < 6; v++ {
		if int(res.Depth[v]) != v {
			t.Errorf("Depth[%d] = %d, want %d", v, res.Depth[v], v)
		}
	}
	for v := 1; v < 6; v++ {
		if int(res.Parent[v]) != v-1 {
			t.Errorf("Parent[%d] = %d, want %d", v, res.Parent[v], v-1)
		}
	}
	if res.Parent[0] != -1 {
		t.Errorf("Parent[source] = %d, want -1", res.Parent[0])
	}
	if res.MaxDepth() != 5 {
		t.Errorf("MaxDepth = %d, want 5", res.MaxDepth())
	}
}

func TestBFSTTLCutoff(t *testing.T) {
	g := pathGraph(t, 10)
	for ttl := 0; ttl < 10; ttl++ {
		res := BFS(g, 0, ttl, 0)
		if got, want := res.Reach(), ttl+1; got != want {
			t.Errorf("ttl %d: reach %d, want %d", ttl, got, want)
		}
	}
}

func TestBFSMaxNodesCutoff(t *testing.T) {
	g := pathGraph(t, 10)
	res := BFS(g, 0, -1, 4)
	if res.Reach() != 4 {
		t.Errorf("Reach = %d, want 4", res.Reach())
	}
}

func TestBFSUnreachableMarked(t *testing.T) {
	g := mustGraph(t, 4, [][2]int{{0, 1}}) // 2, 3 isolated
	res := BFS(g, 0, -1, 0)
	if res.Depth[2] != -1 || res.Parent[2] != -1 {
		t.Errorf("unreached node has Depth=%d Parent=%d", res.Depth[2], res.Parent[2])
	}
	if res.Reach() != 2 {
		t.Errorf("Reach = %d, want 2", res.Reach())
	}
}

func TestBFSOrderIsByDepth(t *testing.T) {
	g, err := PowerLaw(PLODParams{N: 300, AvgDeg: 4}, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	res := BFS(g, 0, -1, 0)
	for i := 1; i < len(res.Order); i++ {
		if res.Depth[res.Order[i]] < res.Depth[res.Order[i-1]] {
			t.Fatal("BFS order not monotone in depth")
		}
	}
}

func TestBFSParentDepthInvariantProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, srcRaw uint8) bool {
		g, err := PowerLaw(PLODParams{N: 150, AvgDeg: 3.1}, stats.NewRNG(seed))
		if err != nil {
			return false
		}
		src := int(srcRaw) % g.N()
		res := BFS(g, src, 5, 0)
		for _, v := range res.Order {
			if int(v) == src {
				continue
			}
			p := res.Parent[v]
			if p < 0 {
				return false
			}
			if res.Depth[v] != res.Depth[p]+1 {
				return false
			}
			if !g.HasEdge(int(v), int(p)) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestReachMonotoneInTTLProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		g, err := PowerLaw(PLODParams{N: 200, AvgDeg: 3.1}, stats.NewRNG(seed))
		if err != nil {
			return false
		}
		prev := 0
		for ttl := 0; ttl <= 8; ttl++ {
			r := ReachForTTL(g, 0, ttl)
			if r < prev {
				return false
			}
			prev = r
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestReachForTTLClique(t *testing.T) {
	c := NewClique(100)
	if got := ReachForTTL(c, 0, 0); got != 1 {
		t.Errorf("ttl 0 reach = %d, want 1", got)
	}
	if got := ReachForTTL(c, 0, 1); got != 100 {
		t.Errorf("ttl 1 reach = %d, want 100", got)
	}
	if got := ReachForTTL(c, 0, 7); got != 100 {
		t.Errorf("ttl 7 reach = %d, want 100", got)
	}
}

func TestEPLForReachPath(t *testing.T) {
	g := pathGraph(t, 11)
	// Reach 11 from node 0: depths 1..10 over 10 nodes, mean 5.5.
	if got := EPLForReach(g, 0, 11); math.Abs(got-5.5) > 1e-9 {
		t.Errorf("EPL = %v, want 5.5", got)
	}
	// Reach 3: depths 1, 2 -> mean 1.5.
	if got := EPLForReach(g, 0, 3); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("EPL = %v, want 1.5", got)
	}
}

func TestEPLForReachClique(t *testing.T) {
	if got := EPLForReach(NewClique(50), 0, 50); got != 1 {
		t.Errorf("clique EPL = %v, want 1", got)
	}
}

func TestEPLForReachDegenerate(t *testing.T) {
	g := pathGraph(t, 3)
	if !math.IsNaN(EPLForReach(g, 0, 1)) {
		t.Error("reach 1 should be NaN")
	}
}

func TestEPLDecreasesWithOutdegree(t *testing.T) {
	// Rule of thumb #3 backbone: EPL falls as average outdegree rises.
	epl := func(avgDeg float64) float64 {
		var sum float64
		const trials = 3
		for s := uint64(0); s < trials; s++ {
			g, err := PowerLaw(PLODParams{N: 1500, AvgDeg: avgDeg}, stats.NewRNG(10+s))
			if err != nil {
				t.Fatal(err)
			}
			sum += EPLForReach(g, 0, 500)
		}
		return sum / trials
	}
	lo, hi := epl(3.1), epl(10)
	if hi >= lo {
		t.Errorf("EPL(outdeg 10) = %v >= EPL(outdeg 3.1) = %v", hi, lo)
	}
}

func TestEPLApproxTracksMeasured(t *testing.T) {
	// Appendix F: log_d(reach) approximates (and lower-bounds) measured EPL.
	g, err := PowerLaw(PLODParams{N: 3000, AvgDeg: 10}, stats.NewRNG(20))
	if err != nil {
		t.Fatal(err)
	}
	measured := EPLForReach(g, 0, 500)
	approx := EPLApprox(10, 500)
	if measured < approx-0.3 {
		t.Errorf("measured EPL %v below approximation %v", measured, approx)
	}
	if measured > approx+2.5 {
		t.Errorf("measured EPL %v too far above approximation %v", measured, approx)
	}
}

func TestMinTTLForFullReach(t *testing.T) {
	g := pathGraph(t, 8)
	if got := MinTTLForFullReach(g, 0); got != 7 {
		t.Errorf("path MinTTL = %d, want 7", got)
	}
	if got := MinTTLForFullReach(g, 3); got != 4 {
		t.Errorf("mid-path MinTTL = %d, want 4", got)
	}
	if got := MinTTLForFullReach(NewClique(40), 0); got != 1 {
		t.Errorf("clique MinTTL = %d, want 1", got)
	}
	single := mustGraph(t, 1, nil)
	if got := MinTTLForFullReach(single, 0); got != 0 {
		t.Errorf("single-node MinTTL = %d, want 0", got)
	}
}

func TestTreeReachBound(t *testing.T) {
	if got := TreeReachBound(3, 0); got != 1 {
		t.Errorf("ttl 0: %v, want 1", got)
	}
	// d=3, ttl=2: 1 + 3 + 3*2 = 10.
	if got := TreeReachBound(3, 2); got != 10 {
		t.Errorf("d=3 ttl=2: %v, want 10", got)
	}
	// Section 5.2: 18 neighbors, TTL 2 bounds reach near 18²+18 ≈ 342.
	if got := TreeReachBound(18, 2); got < 300 || got > 360 {
		t.Errorf("d=18 ttl=2: %v, want ~325", got)
	}
	if !math.IsInf(TreeReachBound(10, 100), 1) {
		t.Error("huge tree should overflow to +Inf")
	}
}

func TestEPLApproxDegenerate(t *testing.T) {
	if !math.IsNaN(EPLApprox(1, 100)) {
		t.Error("d=1 should be NaN")
	}
	if !math.IsNaN(EPLApprox(5, 1)) {
		t.Error("reach 1 should be NaN")
	}
}
