package topology

import (
	"sort"
	"testing"
)

func mustGraph(t *testing.T, n int, edges [][2]int) *AdjGraph {
	t.Helper()
	g, err := NewAdjGraph(n, edges)
	if err != nil {
		t.Fatalf("NewAdjGraph: %v", err)
	}
	return g
}

// pathGraph returns 0-1-2-…-(n-1).
func pathGraph(t *testing.T, n int) *AdjGraph {
	t.Helper()
	edges := make([][2]int, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return mustGraph(t, n, edges)
}

func TestAdjGraphBasics(t *testing.T) {
	g := mustGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if g.N() != 4 {
		t.Errorf("N = %d, want 4", g.N())
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
	for v := 0; v < 4; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("Degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
	if g.AvgDegree() != 2 {
		t.Errorf("AvgDegree = %v, want 2", g.AvgDegree())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge(0,1) false")
	}
	if g.HasEdge(0, 2) {
		t.Error("HasEdge(0,2) true, want false")
	}
	if g.IsClique() {
		t.Error("4-cycle reported as clique")
	}
}

func TestAdjGraphNeighborSymmetry(t *testing.T) {
	g := mustGraph(t, 5, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 4}, {3, 4}})
	for v := 0; v < g.N(); v++ {
		g.VisitNeighbors(v, func(w int) bool {
			if !g.HasEdge(w, v) {
				t.Errorf("edge %d-%d not symmetric", v, w)
			}
			return true
		})
	}
}

func TestAdjGraphRejectsBadEdges(t *testing.T) {
	cases := map[string][][2]int{
		"self-loop":    {{1, 1}},
		"duplicate":    {{0, 1}, {1, 0}},
		"out-of-range": {{0, 7}},
		"negative":     {{-1, 0}},
	}
	for name, edges := range cases {
		if _, err := NewAdjGraph(3, edges); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestAdjGraphTriangleIsClique(t *testing.T) {
	g := mustGraph(t, 3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	if !g.IsClique() {
		t.Error("triangle not detected as clique")
	}
}

func TestVisitNeighborsEarlyStop(t *testing.T) {
	g := mustGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	visits := 0
	g.VisitNeighbors(0, func(w int) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Errorf("early stop visited %d neighbors, want 1", visits)
	}
}

func TestCliqueBasics(t *testing.T) {
	c := NewClique(5)
	if c.N() != 5 {
		t.Errorf("N = %d, want 5", c.N())
	}
	if !c.IsClique() {
		t.Error("IsClique false")
	}
	for v := 0; v < 5; v++ {
		if c.Degree(v) != 4 {
			t.Errorf("Degree(%d) = %d, want 4", v, c.Degree(v))
		}
		var got []int
		c.VisitNeighbors(v, func(w int) bool {
			got = append(got, w)
			return true
		})
		if len(got) != 4 {
			t.Errorf("node %d visited %d neighbors, want 4", v, len(got))
		}
		for _, w := range got {
			if w == v {
				t.Errorf("clique visited self at node %d", v)
			}
		}
	}
	if c.AvgDegree() != 4 {
		t.Errorf("AvgDegree = %v, want 4", c.AvgDegree())
	}
}

func TestCliqueVisitEarlyStop(t *testing.T) {
	c := NewClique(10)
	visits := 0
	c.VisitNeighbors(3, func(w int) bool {
		visits++
		return visits < 2
	})
	if visits != 2 {
		t.Errorf("visited %d, want 2", visits)
	}
}

func TestComponentsAndConnectivity(t *testing.T) {
	g := mustGraph(t, 6, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	comps := Components(g)
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	sizes := make([]int, len(comps))
	for i, c := range comps {
		sizes[i] = len(c)
	}
	sort.Ints(sizes)
	if sizes[0] != 1 || sizes[1] != 2 || sizes[2] != 3 {
		t.Errorf("component sizes = %v, want [1 2 3]", sizes)
	}
	if IsConnected(g) {
		t.Error("disconnected graph reported connected")
	}
	if !IsConnected(pathGraph(t, 5)) {
		t.Error("path graph reported disconnected")
	}
}

func TestDegreeFrequency(t *testing.T) {
	g := mustGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	freq := DegreeFrequency(g)
	if freq[3] != 1 || freq[1] != 3 {
		t.Errorf("DegreeFrequency = %v, want map[1:3 3:1]", freq)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := mustGraph(t, 3, nil)
	if g.NumEdges() != 0 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if g.Degree(0) != 0 {
		t.Errorf("Degree = %d", g.Degree(0))
	}
	if g.IsClique() {
		t.Error("3-node empty graph is not a clique")
	}
	single := mustGraph(t, 1, nil)
	if !single.IsClique() {
		t.Error("single node should count as clique")
	}
}
