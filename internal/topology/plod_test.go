package topology

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"spnet/internal/stats"
)

func TestPowerLawAverageDegree(t *testing.T) {
	for _, tc := range []struct {
		n      int
		avgDeg float64
	}{
		{1000, 3.1},
		{1000, 10},
		{500, 20},
		{2000, 3.1},
	} {
		g, err := PowerLaw(PLODParams{N: tc.n, AvgDeg: tc.avgDeg}, stats.NewRNG(1))
		if err != nil {
			t.Fatalf("PowerLaw(%d, %v): %v", tc.n, tc.avgDeg, err)
		}
		got := g.AvgDegree()
		if math.Abs(got-tc.avgDeg)/tc.avgDeg > 0.08 {
			t.Errorf("n=%d target=%v: realized avg degree %v", tc.n, tc.avgDeg, got)
		}
	}
}

func TestPowerLawConnected(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		g, err := PowerLaw(PLODParams{N: 800, AvgDeg: 3.1}, stats.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !IsConnected(g) {
			t.Errorf("seed %d: graph disconnected", seed)
		}
	}
}

func TestPowerLawDeterministic(t *testing.T) {
	p := PLODParams{N: 300, AvgDeg: 5}
	a, err := PowerLaw(p, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := PowerLaw(p, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != b.N() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for v := 0; v < a.N(); v++ {
		if a.Degree(v) != b.Degree(v) {
			t.Fatalf("node %d degree differs: %d vs %d", v, a.Degree(v), b.Degree(v))
		}
	}
}

func TestPowerLawHeavyTail(t *testing.T) {
	// A power-law topology must have a heavy tail: the maximum degree should
	// be far above the mean, and the degree distribution should be strongly
	// right-skewed (most nodes below the mean).
	g, err := PowerLaw(PLODParams{N: 2000, AvgDeg: 3.1}, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	degs := make([]int, g.N())
	maxDeg := 0
	below := 0
	for v := 0; v < g.N(); v++ {
		degs[v] = g.Degree(v)
		if degs[v] > maxDeg {
			maxDeg = degs[v]
		}
		if float64(degs[v]) < g.AvgDegree() {
			below++
		}
	}
	if float64(maxDeg) < 5*g.AvgDegree() {
		t.Errorf("max degree %d is not heavy-tailed vs mean %.2f", maxDeg, g.AvgDegree())
	}
	if frac := float64(below) / float64(g.N()); frac < 0.5 {
		t.Errorf("only %.0f%% of nodes below the mean; expected right skew", 100*frac)
	}
	sort.Ints(degs)
	if degs[0] < 1 {
		t.Errorf("minimum degree %d; connectivity repair should guarantee >= 1", degs[0])
	}
}

func TestPowerLawNoDuplicateEdgesProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%200 + 10
		g, err := PowerLaw(PLODParams{N: n, AvgDeg: 3.1}, stats.NewRNG(seed))
		if err != nil {
			return false
		}
		// NewAdjGraph rejects duplicates, so reaching here means the edge
		// set was valid; verify symmetry and connectivity.
		return IsConnected(g)
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPowerLawRejectsBadParams(t *testing.T) {
	cases := []PLODParams{
		{N: 0, AvgDeg: 3},
		{N: 10, AvgDeg: 0.5},
		{N: 10, AvgDeg: 20},
		{N: 10, AvgDeg: 3, Alpha: -1},
	}
	for _, p := range cases {
		if _, err := PowerLaw(p, stats.NewRNG(1)); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

func TestPowerLawSingleNode(t *testing.T) {
	g, err := PowerLaw(PLODParams{N: 1, AvgDeg: 3.1}, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1 || g.NumEdges() != 0 {
		t.Errorf("single-node graph: n=%d edges=%d", g.N(), g.NumEdges())
	}
}

func TestPowerLawSmallDense(t *testing.T) {
	// AvgDeg = N-1 forces a clique; the generator must terminate and produce
	// close to the full edge set.
	g, err := PowerLaw(PLODParams{N: 10, AvgDeg: 9}, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < 40 {
		t.Errorf("dense graph has %d edges, want ~45", g.NumEdges())
	}
}
