package content

import (
	"math"
	"testing"

	"spnet/internal/index"
	"spnet/internal/stats"
)

func TestNewLibraryValidation(t *testing.T) {
	if _, err := NewLibrary(1, 1); err == nil {
		t.Error("vocabSize 1 accepted")
	}
	if _, err := NewLibrary(10, -1); err == nil {
		t.Error("negative exponent accepted")
	}
	l, err := NewLibrary(10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if l.VocabSize() != 10 {
		t.Errorf("VocabSize = %d", l.VocabSize())
	}
}

func TestSampleTitleDistinctTerms(t *testing.T) {
	l := DefaultLibrary()
	rng := stats.NewRNG(1)
	for i := 0; i < 1000; i++ {
		title := l.SampleTitle(rng)
		if len(title) != l.TitleTerms {
			t.Fatalf("title has %d terms, want %d", len(title), l.TitleTerms)
		}
		seen := map[string]bool{}
		for _, term := range title {
			if seen[term] {
				t.Fatalf("duplicate term %q in title %v", term, title)
			}
			seen[term] = true
		}
	}
}

func TestPopularTermsAppearMoreOften(t *testing.T) {
	l := DefaultLibrary()
	rng := stats.NewRNG(2)
	counts := map[string]int{}
	for i := 0; i < 20000; i++ {
		for _, term := range l.SampleTitle(rng) {
			counts[term]++
		}
	}
	if counts[l.Term(0)] <= counts[l.Term(100)] {
		t.Errorf("rank 0 (%d) not more frequent than rank 100 (%d)",
			counts[l.Term(0)], counts[l.Term(100)])
	}
	if counts[l.Term(100)] <= counts[l.Term(1500)] {
		t.Errorf("rank 100 (%d) not more frequent than rank 1500 (%d)",
			counts[l.Term(100)], counts[l.Term(1500)])
	}
}

func TestBuildQueryModel(t *testing.T) {
	l := DefaultLibrary()
	rng := stats.NewRNG(3)
	qm, err := l.BuildQueryModel(rng.Split(1), 50000)
	if err != nil {
		t.Fatal(err)
	}
	if qm.Classes() != l.VocabSize() {
		t.Fatalf("classes = %d, want %d", qm.Classes(), l.VocabSize())
	}
	// The measured selection power of the top term should approximate its
	// title-occurrence probability; the most popular term appears in
	// roughly P(rank 0)·TitleTerms of titles.
	if f0 := qm.SelectionPower(0); f0 <= qm.SelectionPower(500) {
		t.Error("selection power not decreasing in rank")
	}

	// Cross-check against a real corpus: expected results from the model
	// must match actual index counts within sampling noise.
	const corpus = 4000
	ix := index.New()
	for i := 0; i < corpus; i++ {
		if err := ix.Add(index.DocID{Owner: i, File: 0}, l.SampleTitle(rng.Split(2))); err != nil {
			t.Fatal(err)
		}
	}
	var modelTotal, actualTotal float64
	const draws = 3000
	qrng := rng.Split(3)
	for i := 0; i < draws; i++ {
		terms := l.SampleQuery(qrng)
		n, _ := ix.CountMatches(terms)
		actualTotal += float64(n)
	}
	modelTotal = qm.ExpectedResults(corpus) * draws
	ratio := actualTotal / modelTotal
	if math.Abs(ratio-1) > 0.15 {
		t.Errorf("actual/model results ratio = %.2f, want ~1", ratio)
	}
}

func TestBuildQueryModelValidation(t *testing.T) {
	l := DefaultLibrary()
	if _, err := l.BuildQueryModel(stats.NewRNG(1), 0); err == nil {
		t.Error("corpusFiles 0 accepted")
	}
}

func TestDefaultLibrarySelectionPowerScale(t *testing.T) {
	// The default library's mean selection power should be in the same
	// regime as the default analytic model (~1e-3), so content-mode and
	// sampled-mode simulations are comparable.
	l := DefaultLibrary()
	qm, err := l.BuildQueryModel(stats.NewRNG(4), 50000)
	if err != nil {
		t.Fatal(err)
	}
	pbar := qm.MeanSelectionPower()
	if pbar < 3e-4 || pbar > 8e-3 {
		t.Errorf("mean selection power = %v, want ~1e-3 regime", pbar)
	}
}
