// Package content generates a synthetic file-sharing corpus: file titles
// composed of Zipf-distributed vocabulary terms, and keyword queries drawn
// from the same popularity law — popular queries target popular content,
// the correlation the measured query model of [25] exhibits.
//
// It closes the loop between the concrete inverted-index substrate
// (internal/index) and the abstract query model of Appendix B
// (internal/workload): BuildQueryModel measures each query class's actual
// selection power over a sampled corpus and emits a workload.QueryModel, so
// the mean-value analysis can be calibrated from content instead of
// hand-picked constants.
package content

import (
	"fmt"

	"spnet/internal/stats"
	"spnet/internal/workload"
)

// Library is a term vocabulary with Zipf popularity.
type Library struct {
	vocab []string
	zipf  *stats.Zipf
	// TitleTerms is the number of terms per generated file title.
	TitleTerms int
	// QueryTerms is the number of terms per generated query; conjunctive
	// queries with more terms are more selective.
	QueryTerms int
}

// NewLibrary builds a vocabulary of vocabSize terms whose popularity follows
// a Zipf law with the given exponent.
func NewLibrary(vocabSize int, exponent float64) (*Library, error) {
	if vocabSize <= 1 {
		return nil, fmt.Errorf("content: vocabSize = %d, want > 1", vocabSize)
	}
	if exponent < 0 {
		return nil, fmt.Errorf("content: exponent = %v, want >= 0", exponent)
	}
	l := &Library{
		vocab:      make([]string, vocabSize),
		zipf:       stats.NewZipf(vocabSize, exponent),
		TitleTerms: 3,
		QueryTerms: 1,
	}
	for i := range l.vocab {
		l.vocab[i] = fmt.Sprintf("w%04d", i)
	}
	return l, nil
}

// DefaultLibrary returns a 10000-term vocabulary with exponent 0.6,
// calibrated so the mean selection power of single-term queries lands in
// the ~10⁻³ regime of the default analytic workload model.
func DefaultLibrary() *Library {
	l, err := NewLibrary(10000, 0.6)
	if err != nil {
		panic(err) // compile-time constants; cannot fail
	}
	return l
}

// VocabSize returns the vocabulary size.
func (l *Library) VocabSize() int { return len(l.vocab) }

// Term returns the rank-r term (rank 0 is the most popular).
func (l *Library) Term(r int) string { return l.vocab[r] }

// sampleDistinctRanks draws n distinct term ranks from the Zipf law.
func (l *Library) sampleDistinctRanks(rng *stats.RNG, n int) []int {
	ranks := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for len(ranks) < n {
		r := l.zipf.Sample(rng)
		if !seen[r] {
			seen[r] = true
			ranks = append(ranks, r)
		}
	}
	return ranks
}

// SampleTitle draws TitleTerms distinct terms for a file title.
func (l *Library) SampleTitle(rng *stats.RNG) []string {
	ranks := l.sampleDistinctRanks(rng, l.TitleTerms)
	terms := make([]string, len(ranks))
	for i, r := range ranks {
		terms[i] = l.vocab[r]
	}
	return terms
}

// SampleQuery draws QueryTerms distinct terms for a keyword query.
func (l *Library) SampleQuery(rng *stats.RNG) []string {
	ranks := l.sampleDistinctRanks(rng, l.QueryTerms)
	terms := make([]string, len(ranks))
	for i, r := range ranks {
		terms[i] = l.vocab[r]
	}
	return terms
}

// BuildQueryModel measures the selection power of every single-term query
// class over a sampled corpus of corpusFiles titles and returns the matching
// Appendix B query model: g(j) is the term's query popularity (the Zipf
// law), and f(j) is the measured fraction of titles containing term j.
//
// This is the bridge from concrete content to the analytical model: the
// resulting model can drive both the mean-value analysis and the
// match-sampling simulator, calibrated by the corpus instead of by constants.
func (l *Library) BuildQueryModel(rng *stats.RNG, corpusFiles int) (*workload.QueryModel, error) {
	if corpusFiles <= 0 {
		return nil, fmt.Errorf("content: corpusFiles = %d, want > 0", corpusFiles)
	}
	counts := make([]int, len(l.vocab))
	for i := 0; i < corpusFiles; i++ {
		for _, r := range l.sampleDistinctRanks(rng, l.TitleTerms) {
			counts[r]++
		}
	}
	g := make([]float64, len(l.vocab))
	f := make([]float64, len(l.vocab))
	for r := range l.vocab {
		g[r] = l.zipf.P(r)
		f[r] = float64(counts[r]) / float64(corpusFiles)
		if f[r] > 1 {
			f[r] = 1
		}
	}
	return workload.NewQueryModel(g, f)
}
