// Package workload models user behavior in the super-peer file-sharing
// system: the query model of Yang & Garcia-Molina's "Comparing Hybrid
// Peer-to-Peer Systems" [25] used in Appendix B, the per-peer file-count and
// session-lifespan distributions after the Gnutella measurements of Saroiu
// et al. [22], and the action rates of Table 1 / Table 3.
//
// The paper uses distributions measured over OpenNap and Gnutella that are
// not available; this package substitutes synthetic equivalents calibrated
// to the anchors the paper itself reports (see DESIGN.md, substitutions
// 2 and 3).
package workload

import (
	"fmt"
	"math"

	"spnet/internal/stats"
)

// QueryModel is the query model of [25]: a finite set of query classes where
// g(j) is the probability a submitted query belongs to class j, and f(j) is
// the class's selection power — the probability that a random file matches a
// class-j query. The model assumes file matches are independent, so a
// collection of n files returns binomial(n, f(j)) results for a class-j
// query (Appendix B).
type QueryModel struct {
	g       []float64 // query popularity, sums to 1
	f       []float64 // selection power per class, each in [0, 1]
	sampler *stats.Discrete
	pbar    float64 // Σ g(j)·f(j), the mean selection power
}

// NewQueryModel builds a query model from explicit popularity and selection
// power vectors. g is normalized; every f must lie in [0, 1].
func NewQueryModel(g, f []float64) (*QueryModel, error) {
	if len(g) == 0 || len(g) != len(f) {
		return nil, fmt.Errorf("workload: query model needs matching non-empty g, f; got %d, %d", len(g), len(f))
	}
	var sum float64
	for j, w := range g {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("workload: g[%d] = %v, want >= 0", j, w)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("workload: query popularity sums to %v", sum)
	}
	m := &QueryModel{
		g: make([]float64, len(g)),
		f: make([]float64, len(f)),
	}
	for j := range g {
		if f[j] < 0 || f[j] > 1 || math.IsNaN(f[j]) {
			return nil, fmt.Errorf("workload: f[%d] = %v, want [0, 1]", j, f[j])
		}
		m.g[j] = g[j] / sum
		m.f[j] = f[j]
		m.pbar += m.g[j] * m.f[j]
	}
	m.sampler = stats.NewDiscrete(m.g)
	return m, nil
}

// DefaultQueryModelParams are the synthetic stand-ins for the OpenNap
// measurements of [25]: Zipf query popularity over Classes ranks with
// exponent PopularityExp, and selection power proportional to popularity
// (popular queries target popular content), scaled so the mean selection
// power equals MeanSelectionPower.
//
// MeanSelectionPower is calibrated from the paper's own reported numbers:
// ≈269 results over a 3000-peer reach (Fig. 11) and ≈890 results over a
// 10000-peer reach (Fig. 8) both give p̄ ≈ 9×10⁻⁴ at ~100 files/peer.
type QueryModelParams struct {
	Classes            int
	PopularityExp      float64
	MeanSelectionPower float64
}

// DefaultQueryModelParams returns the calibrated defaults.
func DefaultQueryModelParams() QueryModelParams {
	return QueryModelParams{
		Classes:            100,
		PopularityExp:      1.0,
		MeanSelectionPower: 9e-4,
	}
}

// NewDefaultQueryModel builds the default synthetic query model.
func NewDefaultQueryModel() *QueryModel {
	m, err := NewZipfQueryModel(DefaultQueryModelParams())
	if err != nil {
		// The defaults are compile-time constants; failing to build them is
		// a programming error.
		panic(err)
	}
	return m
}

// NewZipfQueryModel builds a query model from QueryModelParams.
func NewZipfQueryModel(p QueryModelParams) (*QueryModel, error) {
	if p.Classes <= 0 {
		return nil, fmt.Errorf("workload: Classes = %d, want > 0", p.Classes)
	}
	if p.MeanSelectionPower <= 0 || p.MeanSelectionPower >= 1 {
		return nil, fmt.Errorf("workload: MeanSelectionPower = %v, want (0, 1)", p.MeanSelectionPower)
	}
	z := stats.NewZipf(p.Classes, p.PopularityExp)
	g := make([]float64, p.Classes)
	f := make([]float64, p.Classes)
	var gg float64
	for j := range g {
		g[j] = z.P(j)
		gg += g[j] * g[j]
	}
	scale := p.MeanSelectionPower / gg
	for j := range f {
		f[j] = scale * g[j]
		if f[j] > 1 {
			return nil, fmt.Errorf("workload: selection power of class %d is %v > 1; lower MeanSelectionPower or raise Classes", j, f[j])
		}
	}
	return NewQueryModel(g, f)
}

// Classes returns the number of query classes.
func (m *QueryModel) Classes() int { return len(m.g) }

// Popularity returns g(j).
func (m *QueryModel) Popularity(j int) float64 { return m.g[j] }

// SelectionPower returns f(j).
func (m *QueryModel) SelectionPower(j int) float64 { return m.f[j] }

// MeanSelectionPower returns p̄ = Σ g(j)·f(j).
func (m *QueryModel) MeanSelectionPower() float64 { return m.pbar }

// ExpectedResults returns E[N_T | I] for an index of totalFiles files
// (Appendix B, eq. 5): Σ g(j)·f(j)·x_tot = p̄·x_tot.
func (m *QueryModel) ExpectedResults(totalFiles int) float64 {
	return m.pbar * float64(totalFiles)
}

// ProbAnyResult returns the probability that a collection of n files
// produces at least one result for a random query:
// Σ g(j)·(1 − (1−f(j))^n). It is the E[Q_i] term of Appendix B eq. 6, and
// also the probability that a super-peer with an n-file index sends a
// Response at all.
func (m *QueryModel) ProbAnyResult(n int) float64 {
	if n <= 0 {
		return 0
	}
	var p float64
	x := float64(n)
	for j := range m.g {
		p += m.g[j] * (1 - math.Pow(1-m.f[j], x))
	}
	return p
}

// ExpectedMatchingClients returns E[K_T | I] (Appendix B, eq. 6): the
// expected number of collections among collections (one entry per client,
// and per local partner if desired) that produce at least one result.
func (m *QueryModel) ExpectedMatchingClients(collections []int) float64 {
	var k float64
	for _, n := range collections {
		k += m.ProbAnyResult(n)
	}
	return k
}

// SampleClass draws a query class according to g. The simulator uses it to
// generate concrete queries.
func (m *QueryModel) SampleClass(rng *stats.RNG) int { return m.sampler.Sample(rng) }

// SampleMatches draws the number of matching files in a collection of n
// files for a class-j query: binomial(n, f(j)).
func (m *QueryModel) SampleMatches(rng *stats.RNG, j, n int) int {
	return stats.Binomial(rng, n, m.f[j])
}
