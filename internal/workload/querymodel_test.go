package workload

import (
	"math"
	"testing"
	"testing/quick"

	"spnet/internal/stats"
)

func TestDefaultQueryModelCalibration(t *testing.T) {
	m := NewDefaultQueryModel()
	if got := m.MeanSelectionPower(); math.Abs(got-9e-4)/9e-4 > 1e-6 {
		t.Errorf("MeanSelectionPower = %v, want 9e-4", got)
	}
	// Anchor from Fig. 8 / Fig. 11: a 10⁶-file reach returns ≈900 results.
	if got := m.ExpectedResults(1_000_000); math.Abs(got-900) > 1 {
		t.Errorf("ExpectedResults(1e6) = %v, want ~900", got)
	}
}

func TestExpectedResultsLinear(t *testing.T) {
	m := NewDefaultQueryModel()
	if got := m.ExpectedResults(0); got != 0 {
		t.Errorf("ExpectedResults(0) = %v", got)
	}
	a, b := m.ExpectedResults(1000), m.ExpectedResults(2000)
	if math.Abs(b-2*a) > 1e-9 {
		t.Errorf("not linear: %v, %v", a, b)
	}
}

func TestProbAnyResultProperties(t *testing.T) {
	m := NewDefaultQueryModel()
	if got := m.ProbAnyResult(0); got != 0 {
		t.Errorf("ProbAnyResult(0) = %v", got)
	}
	prev := 0.0
	for _, n := range []int{1, 10, 100, 1000, 100000, 10000000} {
		p := m.ProbAnyResult(n)
		if p < prev {
			t.Errorf("ProbAnyResult not monotone at n=%d: %v < %v", n, p, prev)
		}
		if p < 0 || p > 1 {
			t.Errorf("ProbAnyResult(%d) = %v outside [0,1]", n, p)
		}
		prev = p
	}
	// With an enormous collection every class matches, so the probability
	// approaches 1.
	if p := m.ProbAnyResult(100_000_000); p < 0.99 {
		t.Errorf("ProbAnyResult(1e8) = %v, want ~1", p)
	}
}

func TestProbAnyResultUpperBound(t *testing.T) {
	// P(any) <= E[count] (Markov) for all collection sizes.
	m := NewDefaultQueryModel()
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw)
		return m.ProbAnyResult(n) <= m.ExpectedResults(n)+1e-12
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestExpectedMatchingClients(t *testing.T) {
	m := NewDefaultQueryModel()
	k := m.ExpectedMatchingClients([]int{100, 100, 0})
	if want := 2 * m.ProbAnyResult(100); math.Abs(k-want) > 1e-12 {
		t.Errorf("ExpectedMatchingClients = %v, want %v", k, want)
	}
	if m.ExpectedMatchingClients(nil) != 0 {
		t.Error("empty collections should give 0")
	}
	// K is bounded by the number of collections.
	if k := m.ExpectedMatchingClients([]int{1e6, 1e6}); k > 2 {
		t.Errorf("K = %v > 2 collections", k)
	}
}

func TestMonteCarloMatchesExpectations(t *testing.T) {
	// The sampling interface (used by the simulator) must agree with the
	// analytic expectations (used by the analysis engine).
	m := NewDefaultQueryModel()
	rng := stats.NewRNG(1)
	const (
		draws = 200000
		files = 5000
	)
	var totalResults float64
	var anyResult float64
	for i := 0; i < draws; i++ {
		j := m.SampleClass(rng)
		n := m.SampleMatches(rng, j, files)
		totalResults += float64(n)
		if n > 0 {
			anyResult++
		}
	}
	gotMean := totalResults / draws
	wantMean := m.ExpectedResults(files)
	if math.Abs(gotMean-wantMean)/wantMean > 0.05 {
		t.Errorf("Monte-Carlo mean results %v, analytic %v", gotMean, wantMean)
	}
	gotAny := anyResult / draws
	wantAny := m.ProbAnyResult(files)
	if math.Abs(gotAny-wantAny) > 0.01 {
		t.Errorf("Monte-Carlo P(any) %v, analytic %v", gotAny, wantAny)
	}
}

func TestSampleClassMatchesPopularity(t *testing.T) {
	m := NewDefaultQueryModel()
	rng := stats.NewRNG(2)
	const draws = 100000
	count0 := 0
	for i := 0; i < draws; i++ {
		if m.SampleClass(rng) == 0 {
			count0++
		}
	}
	got := float64(count0) / draws
	if math.Abs(got-m.Popularity(0)) > 0.01 {
		t.Errorf("class 0 frequency %v, want %v", got, m.Popularity(0))
	}
}

func TestNewQueryModelValidation(t *testing.T) {
	cases := []struct {
		name string
		g, f []float64
	}{
		{"empty", nil, nil},
		{"mismatch", []float64{1}, []float64{0.1, 0.2}},
		{"negative g", []float64{-1, 2}, []float64{0.1, 0.1}},
		{"zero sum", []float64{0, 0}, []float64{0.1, 0.1}},
		{"f out of range", []float64{1, 1}, []float64{0.5, 1.5}},
		{"f negative", []float64{1, 1}, []float64{0.5, -0.1}},
	}
	for _, tc := range cases {
		if _, err := NewQueryModel(tc.g, tc.f); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestNewQueryModelNormalizes(t *testing.T) {
	m, err := NewQueryModel([]float64{3, 1}, []float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Popularity(0)-0.75) > 1e-12 {
		t.Errorf("Popularity(0) = %v, want 0.75", m.Popularity(0))
	}
	want := 0.75*0.1 + 0.25*0.2
	if math.Abs(m.MeanSelectionPower()-want) > 1e-12 {
		t.Errorf("pbar = %v, want %v", m.MeanSelectionPower(), want)
	}
}

func TestZipfQueryModelValidation(t *testing.T) {
	if _, err := NewZipfQueryModel(QueryModelParams{Classes: 0, MeanSelectionPower: 1e-3}); err == nil {
		t.Error("Classes=0 accepted")
	}
	if _, err := NewZipfQueryModel(QueryModelParams{Classes: 10, MeanSelectionPower: 0}); err == nil {
		t.Error("zero selection power accepted")
	}
	// Very high mean selection power with few classes pushes f above 1.
	if _, err := NewZipfQueryModel(QueryModelParams{Classes: 2, PopularityExp: 3, MeanSelectionPower: 0.99}); err == nil {
		t.Error("f > 1 accepted")
	}
}

func TestSelectionPowerCorrelatesWithPopularity(t *testing.T) {
	m := NewDefaultQueryModel()
	for j := 1; j < m.Classes(); j++ {
		if m.SelectionPower(j) > m.SelectionPower(j-1) {
			t.Fatalf("selection power not non-increasing at class %d", j)
		}
	}
}
