package workload

import (
	"fmt"
	"math"

	"spnet/internal/stats"
)

// Rates are the per-user action rates of Table 1 / Table 3. Join rate is not
// listed here because the paper derives it per node as the inverse of the
// node's session lifespan ("if the size of the network is stable, when a
// node leaves the network, another node is joining elsewhere").
type Rates struct {
	// QueryRate is the expected number of queries per user per second:
	// 9.26×10⁻³ (Table 3).
	QueryRate float64
	// UpdateRate is the expected number of updates per user per second:
	// 1.85×10⁻³ (Table 1). The paper notes overall performance is not
	// sensitive to this value.
	UpdateRate float64
}

// DefaultRates returns the Table 1 defaults.
func DefaultRates() Rates {
	return Rates{QueryRate: 9.26e-3, UpdateRate: 1.85e-3}
}

// LowQueryRates returns the Appendix C variant where the query rate is
// lowered tenfold (9.26×10⁻⁴) so the query:join ratio is ≈ 1 instead of ≈ 10.
func LowQueryRates() Rates {
	r := DefaultRates()
	r.QueryRate /= 10
	return r
}

// FileCountDist models how many files a peer shares: a free-rider fraction
// that shares nothing (the measurement studies [1, 22] found ≈25% of
// Gnutella peers share no files) and a heavy-tailed bounded Pareto for the
// rest, calibrated so the overall mean is ≈100 files/peer (see DESIGN.md,
// substitution 2).
type FileCountDist struct {
	FreeRiderFrac float64
	Sharers       stats.BoundedPareto
}

// DefaultFileCountDist returns the calibrated default (mean ≈ 100).
func DefaultFileCountDist() FileCountDist {
	return FileCountDist{
		FreeRiderFrac: 0.25,
		Sharers:       stats.BoundedPareto{Alpha: 1.1, L: 25, H: 20000},
	}
}

// Validate reports whether the distribution's parameters are usable.
func (d FileCountDist) Validate() error {
	if d.FreeRiderFrac < 0 || d.FreeRiderFrac >= 1 {
		return fmt.Errorf("workload: FreeRiderFrac = %v, want [0, 1)", d.FreeRiderFrac)
	}
	if d.Sharers.Alpha <= 0 || d.Sharers.L <= 0 || d.Sharers.H <= d.Sharers.L {
		return fmt.Errorf("workload: bad sharer distribution %+v", d.Sharers)
	}
	return nil
}

// Sample draws a file count for one peer.
func (d FileCountDist) Sample(rng *stats.RNG) int {
	if rng.Float64() < d.FreeRiderFrac {
		return 0
	}
	return int(math.Round(d.Sharers.Sample(rng)))
}

// Mean returns the analytic mean file count over all peers.
func (d FileCountDist) Mean() float64 {
	return (1 - d.FreeRiderFrac) * d.Sharers.Mean()
}

// LifespanDist models session lifespans (seconds logged in before leaving),
// heavy-tailed after [22] and calibrated so the mean lifespan gives a
// query:join ratio of ≈10 at the default query rate — the ratio the paper
// states for Gnutella in Appendix C.
type LifespanDist struct {
	D stats.BoundedPareto
}

// DefaultLifespanDist returns the calibrated default (mean ≈ 1080 s, making
// the join rate ≈ QueryRate/10).
func DefaultLifespanDist() LifespanDist {
	return LifespanDist{D: stats.BoundedPareto{Alpha: 1.5, L: 400, H: 36000}}
}

// Sample draws a session lifespan in seconds.
func (d LifespanDist) Sample(rng *stats.RNG) float64 { return d.D.Sample(rng) }

// Mean returns the analytic mean lifespan.
func (d LifespanDist) Mean() float64 { return d.D.Mean() }

// Validate reports whether the distribution's parameters are usable.
func (d LifespanDist) Validate() error {
	if d.D.Alpha <= 0 || d.D.L <= 0 || d.D.H <= d.D.L {
		return fmt.Errorf("workload: bad lifespan distribution %+v", d.D)
	}
	return nil
}

// Profile bundles everything the instance generator and the engines need to
// know about user behavior.
type Profile struct {
	Queries   *QueryModel
	Files     FileCountDist
	Lifespans LifespanDist
	Rates     Rates
	// QueryLen is the expected query-string length in bytes (Table 3: 12).
	QueryLen int
}

// DefaultProfile returns the paper-default workload.
func DefaultProfile() *Profile {
	return &Profile{
		Queries:   NewDefaultQueryModel(),
		Files:     DefaultFileCountDist(),
		Lifespans: DefaultLifespanDist(),
		Rates:     DefaultRates(),
		QueryLen:  12,
	}
}

// Validate reports whether the profile is usable.
func (p *Profile) Validate() error {
	if p.Queries == nil {
		return fmt.Errorf("workload: nil query model")
	}
	if err := p.Files.Validate(); err != nil {
		return err
	}
	if err := p.Lifespans.Validate(); err != nil {
		return err
	}
	if p.Rates.QueryRate < 0 || p.Rates.UpdateRate < 0 {
		return fmt.Errorf("workload: negative rates %+v", p.Rates)
	}
	if p.QueryLen < 0 {
		return fmt.Errorf("workload: QueryLen = %d", p.QueryLen)
	}
	return nil
}
