package workload

import (
	"math"
	"testing"

	"spnet/internal/stats"
)

func TestDefaultFileCountCalibration(t *testing.T) {
	d := DefaultFileCountDist()
	if mean := d.Mean(); mean < 80 || mean > 130 {
		t.Errorf("analytic mean files = %v, want ~100 (Saroiu-style calibration)", mean)
	}
	rng := stats.NewRNG(1)
	const n = 200000
	var sum float64
	zero := 0
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		if v < 0 {
			t.Fatalf("negative file count %d", v)
		}
		if v == 0 {
			zero++
		}
		sum += float64(v)
	}
	gotMean := sum / n
	if math.Abs(gotMean-d.Mean())/d.Mean() > 0.05 {
		t.Errorf("sample mean %v, analytic %v", gotMean, d.Mean())
	}
	frac := float64(zero) / n
	if math.Abs(frac-0.25) > 0.02 {
		t.Errorf("free-rider fraction %v, want ~0.25", frac)
	}
}

func TestDefaultLifespanCalibration(t *testing.T) {
	// The paper (Appendix C): query:join ratio ≈ 10 at the default query
	// rate, i.e. mean lifespan ≈ 10 / queryRate ≈ 1080 s.
	d := DefaultLifespanDist()
	r := DefaultRates()
	ratio := r.QueryRate * d.Mean()
	if ratio < 8 || ratio > 12 {
		t.Errorf("query:join ratio = %v, want ~10", ratio)
	}
	rng := stats.NewRNG(2)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := d.Sample(rng)
		if v <= 0 {
			t.Fatalf("non-positive lifespan %v", v)
		}
		sum += v
	}
	if got := sum / n; math.Abs(got-d.Mean())/d.Mean() > 0.05 {
		t.Errorf("sample mean %v, analytic %v", got, d.Mean())
	}
}

func TestDefaultRates(t *testing.T) {
	r := DefaultRates()
	if r.QueryRate != 9.26e-3 {
		t.Errorf("QueryRate = %v, want 9.26e-3 (Table 3)", r.QueryRate)
	}
	if r.UpdateRate != 1.85e-3 {
		t.Errorf("UpdateRate = %v, want 1.85e-3 (Table 1)", r.UpdateRate)
	}
}

func TestLowQueryRates(t *testing.T) {
	lo, def := LowQueryRates(), DefaultRates()
	if math.Abs(lo.QueryRate-def.QueryRate/10) > 1e-12 {
		t.Errorf("LowQueryRates().QueryRate = %v, want %v", lo.QueryRate, def.QueryRate/10)
	}
	if lo.UpdateRate != def.UpdateRate {
		t.Error("LowQueryRates should not change the update rate")
	}
}

func TestDefaultProfileValid(t *testing.T) {
	p := DefaultProfile()
	if err := p.Validate(); err != nil {
		t.Fatalf("default profile invalid: %v", err)
	}
	if p.QueryLen != 12 {
		t.Errorf("QueryLen = %d, want 12 (Table 3)", p.QueryLen)
	}
}

func TestProfileValidationCatchesBadFields(t *testing.T) {
	mk := func(mutate func(*Profile)) *Profile {
		p := DefaultProfile()
		mutate(p)
		return p
	}
	cases := map[string]*Profile{
		"nil queries":   mk(func(p *Profile) { p.Queries = nil }),
		"bad files":     mk(func(p *Profile) { p.Files.FreeRiderFrac = 1.5 }),
		"bad lifespan":  mk(func(p *Profile) { p.Lifespans.D.H = 0 }),
		"negative rate": mk(func(p *Profile) { p.Rates.QueryRate = -1 }),
		"negative qlen": mk(func(p *Profile) { p.QueryLen = -1 }),
	}
	for name, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestFileCountValidate(t *testing.T) {
	good := DefaultFileCountDist()
	if err := good.Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
	bad := good
	bad.Sharers.Alpha = 0
	if err := bad.Validate(); err == nil {
		t.Error("alpha 0 accepted")
	}
}
