package trust

import (
	"math"
	"testing"

	"spnet/internal/stats"
)

func TestScoreLaplacePrior(t *testing.T) {
	b := NewBook()
	if got := b.Score(7); got != 0.5 {
		t.Fatalf("unknown partner score = %v, want 0.5", got)
	}
	b.Observe(7, true)
	if got, want := b.Score(7), 2.0/3.0; math.Abs(got-want) > 1e-15 {
		t.Fatalf("after 1 good: score = %v, want %v", got, want)
	}
	b.Observe(7, false)
	b.Observe(7, false)
	if got, want := b.Score(7), 2.0/5.0; math.Abs(got-want) > 1e-15 {
		t.Fatalf("after 1 good 2 bad: score = %v, want %v", got, want)
	}
}

func TestObserveNWeights(t *testing.T) {
	a, b := NewBook(), NewBook()
	a.ObserveN(1, true, 3)
	for i := 0; i < 3; i++ {
		b.Observe(1, true)
	}
	if a.Score(1) != b.Score(1) {
		t.Fatalf("weight-3 observation %v != three unit observations %v", a.Score(1), b.Score(1))
	}
	before := a.Score(1)
	a.ObserveN(1, false, 0)
	a.ObserveN(1, false, -2)
	if a.Score(1) != before {
		t.Fatalf("non-positive weights must be ignored")
	}
}

func TestSetPriorPseudoCounts(t *testing.T) {
	b := NewBook()
	b.SetPrior(3, 0.9, 10) // 9 good, 1 bad pseudo-counts
	if got, want := b.Score(3), 10.0/12.0; math.Abs(got-want) > 1e-15 {
		t.Fatalf("prior score = %v, want %v", got, want)
	}
	// A strong prior takes contradicting evidence to overturn.
	for i := 0; i < 5; i++ {
		b.Observe(3, false)
	}
	if b.Score(3) <= 0.5 {
		t.Fatalf("score %v overturned too fast for a weight-10 prior", b.Score(3))
	}
	for i := 0; i < 20; i++ {
		b.Observe(3, false)
	}
	if b.Score(3) >= 0.5 {
		t.Fatalf("score %v should eventually drop below 0.5", b.Score(3))
	}
	b.SetPrior(4, 2, 4) // rel clamps to 1
	if got, want := b.Score(4), 5.0/6.0; math.Abs(got-want) > 1e-15 {
		t.Fatalf("clamped prior score = %v, want %v", got, want)
	}
}

func TestRankDeterministicTies(t *testing.T) {
	b := NewBook()
	b.Observe(2, true)
	b.Observe(5, false)
	got := b.Rank([]int{9, 5, 2, 1})
	want := []int{2, 1, 9, 5} // 2/3, 0.5 (tie → id asc), 1/3
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Rank = %v, want %v", got, want)
		}
	}
	if best := b.Best([]int{5, 9, 1, 2}, -1); best != 2 {
		t.Fatalf("Best = %d, want 2", best)
	}
	if best := b.Best(nil, -1); best != -1 {
		t.Fatalf("Best(empty) = %d, want fallback -1", best)
	}
}

func TestWeight(t *testing.T) {
	b := NewBook()
	if w := b.Weight(1, 0.1); w != 1 {
		t.Fatalf("no-information weight = %v, want 1", w)
	}
	for i := 0; i < 8; i++ {
		b.Observe(1, true)
	}
	if w := b.Weight(1, 0.1); w != 1 {
		t.Fatalf("good partner weight = %v, want 1", w)
	}
	for i := 0; i < 100; i++ {
		b.Observe(2, false)
	}
	w := b.Weight(2, 0.1)
	if w >= 0.5 || w < 0.1 {
		t.Fatalf("bad partner weight = %v, want in [0.1, 0.5)", w)
	}
}

func TestDropAndLen(t *testing.T) {
	b := NewBook()
	b.Observe(1, true)
	b.Observe(2, false)
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	b.Drop(1)
	if b.Len() != 1 || b.Score(1) != 0.5 {
		t.Fatalf("Drop did not forget partner 1")
	}
	scores := b.Scores()
	if len(scores) != 1 || scores[2] != 1.0/3.0 {
		t.Fatalf("Scores = %v", scores)
	}
}

func TestNoisyPriorClamped(t *testing.T) {
	rng := stats.NewRNG(42)
	for i := 0; i < 1000; i++ {
		v := NoisyPrior(rng, 0.95, 0.3)
		if v < 0 || v > 1 {
			t.Fatalf("NoisyPrior out of range: %v", v)
		}
	}
	if v := NoisyPrior(rng, 0.7, 0); v != 0.7 {
		t.Fatalf("zero-noise prior = %v, want exact rel", v)
	}
	// Determinism: same seed, same stream.
	a, b := stats.NewRNG(7), stats.NewRNG(7)
	for i := 0; i < 10; i++ {
		if NoisyPrior(a, 0.5, 0.2) != NoisyPrior(b, 0.5, 0.2) {
			t.Fatalf("NoisyPrior not deterministic")
		}
	}
}

func TestAssign(t *testing.T) {
	rng := stats.NewRNG(3)
	m := Assign(rng, 100, 0.3)
	count := 0
	for _, v := range m {
		if v {
			count++
		}
	}
	if count != 30 {
		t.Fatalf("Assign marked %d of 100 at fraction 0.3, want 30", count)
	}
	// Deterministic under the same seed.
	a := Assign(stats.NewRNG(9), 50, 0.5)
	b := Assign(stats.NewRNG(9), 50, 0.5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Assign not deterministic at index %d", i)
		}
	}
	if n := Assign(stats.NewRNG(1), 0, 0.5); len(n) != 0 {
		t.Fatalf("Assign(0 nodes) = %v", n)
	}
	all := Assign(stats.NewRNG(1), 10, 1.5) // clamped to 1
	for i, v := range all {
		if !v {
			t.Fatalf("fraction>1 should mark all; index %d honest", i)
		}
	}
	none := Assign(stats.NewRNG(1), 10, 0)
	for i, v := range none {
		if v {
			t.Fatalf("fraction 0 should mark none; index %d malicious", i)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	b := NewBook()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				b.Observe(g, i%3 == 0)
				_ = b.Score(g)
				_ = b.Best([]int{0, 1, 2, 3}, 0)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 4", b.Len())
	}
}
