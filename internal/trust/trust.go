// Package trust implements the seeded, deterministic reputation subsystem
// shared by the simulator, the live p2p nodes, and the supervised client.
//
// The model is the iris "spread" exemplar's reliability bookkeeping adapted
// to the super-peer setting: every node keeps a per-partner reliability
// score updated from observed behavior (answered queries, refusals, forged
// or unsolicited QueryHits), seeded with a noisy initial view of each
// partner's true reliability (rel_book). Scores are beta-style posteriors
// with a Laplace prior,
//
//	score = (good + 1) / (good + bad + 2)
//
// the same estimator shape the learned routing strategy uses for hit rates,
// so a partner with no observations scores 0.5 and every observation moves
// the score monotonically. Priors enter as pseudo-counts, so a strong noisy
// prior takes several contradicting observations to overturn — exactly the
// rel_book failure mode the trustsweep experiment measures.
//
// All randomness is caller-supplied (stats.RNG), keeping every layer
// bit-deterministic: the simulator draws priors and adversary assignments
// from a salted stream independent of the golden-pinned simulation stream.
package trust

import (
	"math"
	"sort"
	"sync"

	"spnet/internal/stats"
)

// cred is one partner's observation tally. Counts are float64 so priors and
// fractional-weight observations (e.g. a partial audit) compose.
type cred struct {
	good float64
	bad  float64
}

// Book holds reputation scores for a set of partners keyed by integer id
// (sim: global partner id; live: peerID or client address index). It is
// safe for concurrent use; the simulator's single-threaded loop and the
// live node's connection goroutines share the same implementation.
type Book struct {
	mu    sync.Mutex
	creds map[int]*cred
}

// NewBook returns an empty book: every unknown partner scores 0.5.
func NewBook() *Book {
	return &Book{creds: make(map[int]*cred)}
}

func (b *Book) cred(id int) *cred {
	c := b.creds[id]
	if c == nil {
		c = &cred{}
		b.creds[id] = c
	}
	return c
}

// Observe records one good or bad interaction with partner id.
func (b *Book) Observe(id int, good bool) { b.ObserveN(id, good, 1) }

// ObserveN records an observation with the given weight (weight 2 counts as
// two unit observations). Non-positive weights are ignored.
func (b *Book) ObserveN(id int, good bool, weight float64) {
	if weight <= 0 {
		return
	}
	b.mu.Lock()
	c := b.cred(id)
	if good {
		c.good += weight
	} else {
		c.bad += weight
	}
	b.mu.Unlock()
}

// SetPrior installs an initial reliability view for partner id as
// pseudo-counts: rel in [0,1] observed with the given total weight. It
// replaces any existing tally, so call it before real observations.
func (b *Book) SetPrior(id int, rel, weight float64) {
	if weight < 0 {
		weight = 0
	}
	rel = clamp01(rel)
	b.mu.Lock()
	b.creds[id] = &cred{good: rel * weight, bad: (1 - rel) * weight}
	b.mu.Unlock()
}

// Score returns the posterior reliability of partner id: (good+1)/(good+bad+2).
// Unknown partners score 0.5.
func (b *Book) Score(id int) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.creds[id]
	if c == nil {
		return 0.5
	}
	return (c.good + 1) / (c.good + c.bad + 2)
}

// Scores returns a copy of all known partner scores.
func (b *Book) Scores() map[int]float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[int]float64, len(b.creds))
	for id, c := range b.creds {
		out[id] = (c.good + 1) / (c.good + c.bad + 2)
	}
	return out
}

// Drop forgets partner id (e.g. a departed neighbor), bounding book memory.
func (b *Book) Drop(id int) {
	b.mu.Lock()
	delete(b.creds, id)
	b.mu.Unlock()
}

// Len reports how many partners the book tracks.
func (b *Book) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.creds)
}

// Rank orders the given partner ids by descending score, ties broken by
// ascending id so equal-score rankings are deterministic. The slice is
// sorted in place and returned.
func (b *Book) Rank(ids []int) []int {
	b.mu.Lock()
	scores := make(map[int]float64, len(ids))
	for _, id := range ids {
		s := 0.5
		if c := b.creds[id]; c != nil {
			s = (c.good + 1) / (c.good + c.bad + 2)
		}
		scores[id] = s
	}
	b.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool {
		if scores[ids[i]] != scores[ids[j]] {
			return scores[ids[i]] > scores[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}

// Best returns the highest-scoring id among ids (ties → lowest id). It
// returns fallback when ids is empty.
func (b *Book) Best(ids []int, fallback int) int {
	if len(ids) == 0 {
		return fallback
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	best, bestScore := ids[0], -1.0
	for _, id := range ids {
		s := 0.5
		if c := b.creds[id]; c != nil {
			s = (c.good + 1) / (c.good + c.bad + 2)
		}
		if s > bestScore || (s == bestScore && id < best) {
			best, bestScore = id, s
		}
	}
	return best
}

// Weight maps partner id's score to an admission weight in [floor, 1]:
// score 0.5 (no information) maps to 1 so trust-aware admission is a no-op
// until evidence accumulates, and the weight decays linearly to floor as
// the score approaches 0. Scores above 0.5 keep weight 1.
func (b *Book) Weight(id int, floor float64) float64 {
	floor = clamp01(floor)
	s := b.Score(id)
	if s >= 0.5 {
		return 1
	}
	return floor + (1-floor)*(s/0.5)
}

// NoisyPrior draws a rel_book-style noisy view of a true reliability: a
// normal perturbation with the given standard deviation, clamped to [0,1].
func NoisyPrior(rng *stats.RNG, rel, noise float64) float64 {
	if noise <= 0 {
		return clamp01(rel)
	}
	return clamp01(rel + rng.NormFloat64()*noise)
}

// Assign marks round(fraction*n) of n nodes malicious via a seeded shuffle
// (the iris assign_malicious_rate pattern): returns a boolean slice where
// true means malicious. fraction is clamped to [0,1].
func Assign(rng *stats.RNG, n int, fraction float64) []bool {
	malicious := make([]bool, n)
	if n <= 0 {
		return malicious
	}
	m := int(math.Round(clamp01(fraction) * float64(n)))
	for _, i := range rng.Perm(n)[:m] {
		malicious[i] = true
	}
	return malicious
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
