package analysis

import (
	"testing"

	"spnet/internal/network"
	"spnet/internal/routing"
)

// TestEvaluateAdversarialHonestIdentity: honest = 1 must reproduce the
// pre-adversary engine bit-for-bit — on the flood path (nil model) and on
// the strategy-model path.
func TestEvaluateAdversarialHonestIdentity(t *testing.T) {
	cfg := network.Config{GraphType: network.PowerLaw, GraphSize: 2000, ClusterSize: 10,
		AvgOutdegree: 4, TTL: 5}
	inst := generate(t, cfg, nil, 5)

	base := Evaluate(inst)
	adv := EvaluateAdversarial(inst, nil, 1)
	if base.AggregateLoad() != adv.AggregateLoad() || base.ResultsPerQuery != adv.ResultsPerQuery ||
		base.EPL != adv.EPL {
		t.Fatalf("honest=1 flood diverged: %+v vs %+v", base.AggregateLoad(), adv.AggregateLoad())
	}

	fw := routing.RandomWalkForwards(2)
	sbase := EvaluateStrategy(inst, fw)
	sadv := EvaluateAdversarial(inst, fw, 1)
	if sbase.AggregateLoad() != sadv.AggregateLoad() || sbase.ResultsPerQuery != sadv.ResultsPerQuery {
		t.Fatalf("honest=1 strategy diverged: %+v vs %+v", sbase.AggregateLoad(), sadv.AggregateLoad())
	}
}

// TestEvaluateAdversarialMonotone: recall decays as relays get less honest,
// and with honest = 0 the source cluster is the only responder — matching
// the TTL-0 local-only evaluation.
func TestEvaluateAdversarialMonotone(t *testing.T) {
	cfg := network.Config{GraphType: network.PowerLaw, GraphSize: 2000, ClusterSize: 10,
		AvgOutdegree: 4, TTL: 5}
	inst := generate(t, cfg, nil, 5)

	prev := EvaluateAdversarial(inst, nil, 1).ResultsPerQuery
	for _, h := range []float64{0.7, 0.4, 0.1} {
		r := EvaluateAdversarial(inst, nil, h).ResultsPerQuery
		if r >= prev {
			t.Fatalf("ResultsPerQuery(%v) = %v, want < %v", h, r, prev)
		}
		prev = r
	}

	dead := EvaluateAdversarial(inst, nil, 0)
	local := network.Config{GraphType: network.PowerLaw, GraphSize: 2000, ClusterSize: 10,
		AvgOutdegree: 4, TTL: 0}
	want := Evaluate(generate(t, local, nil, 5)).ResultsPerQuery
	if relDiff(dead.ResultsPerQuery, want) > 1e-9 {
		t.Fatalf("honest=0 results %v, want local-only %v", dead.ResultsPerQuery, want)
	}
}

// TestEvaluateAdversarialLoadsShrink: dishonest relays also shed load —
// fewer forwarded copies and fewer responses mean the aggregate bandwidth
// must fall below the honest evaluation, never rise.
func TestEvaluateAdversarialLoadsShrink(t *testing.T) {
	cfg := network.Config{GraphType: network.PowerLaw, GraphSize: 1000, ClusterSize: 10,
		AvgOutdegree: 4, TTL: 5}
	inst := generate(t, cfg, nil, 9)
	full := Evaluate(inst).AggregateLoad()
	half := EvaluateAdversarial(inst, nil, 0.5).AggregateLoad()
	if half.InBps >= full.InBps || half.OutBps >= full.OutBps || half.ProcHz >= full.ProcHz {
		t.Fatalf("honest=0.5 load %+v not below honest load %+v", half, full)
	}
	if half.InBps <= 0 || half.OutBps <= 0 || half.ProcHz <= 0 {
		t.Fatalf("honest=0.5 load degenerate: %+v", half)
	}
}
