package analysis

import (
	"testing"

	"spnet/internal/network"
)

// TestBreakdownSumsToAggregate: the component attribution must reconstruct
// the aggregate load exactly (bandwidth) and with a non-negative
// packet-multiplex residual (processing).
func TestBreakdownSumsToAggregate(t *testing.T) {
	for _, cfg := range []network.Config{
		{GraphType: network.PowerLaw, GraphSize: 500, ClusterSize: 10, AvgOutdegree: 3.1, TTL: 7},
		{GraphType: network.Strong, GraphSize: 400, ClusterSize: 20, TTL: 1},
		{GraphType: network.Strong, GraphSize: 300, ClusterSize: 10, TTL: 3},
		{GraphType: network.PowerLaw, GraphSize: 400, ClusterSize: 8, AvgOutdegree: 3.1, TTL: 5, Redundancy: true},
		{GraphType: network.PowerLaw, GraphSize: 300, ClusterSize: 9, KRedundancy: 3, AvgOutdegree: 3.1, TTL: 4},
	} {
		res := Evaluate(generate(t, cfg, nil, 30))
		agg := res.AggregateLoad()
		bd := res.LoadBreakdown()
		total := bd.Total()
		if relDiff(total.TotalBps(), agg.TotalBps()) > 1e-9 {
			t.Errorf("%v: component bandwidth %v != aggregate %v", cfg, total.TotalBps(), agg.TotalBps())
		}
		if relDiff(total.ProcHz, agg.ProcHz) > 1e-9 {
			t.Errorf("%v: component processing %v != aggregate %v", cfg, total.ProcHz, agg.ProcHz)
		}
		if bd.PacketMultiplex.ProcHz < 0 {
			t.Errorf("%v: negative packet-multiplex residual", cfg)
		}
		for name, l := range map[string]Load{
			"query":    bd.QueryTransfer,
			"process":  bd.QueryProcessing,
			"response": bd.ResponseTransfer,
			"joins":    bd.Joins,
			"updates":  bd.Updates,
		} {
			if l.InBps < 0 || l.OutBps < 0 || l.ProcHz < 0 {
				t.Errorf("%v: negative %s component: %+v", cfg, name, l)
			}
		}
	}
}

// TestBreakdownResponseDominatesBandwidth confirms the paper's Figure 5
// explanation: result forwarding is the dominant bandwidth consumer in a
// query-heavy configuration.
func TestBreakdownResponseDominatesBandwidth(t *testing.T) {
	cfg := network.Config{GraphType: network.Strong, GraphSize: 1000, ClusterSize: 50, TTL: 1}
	res := Evaluate(generate(t, cfg, nil, 31))
	bd := res.LoadBreakdown()
	if bd.ResponseTransfer.TotalBps() <= bd.QueryTransfer.TotalBps() {
		t.Errorf("response transfer %v not above query transfer %v",
			bd.ResponseTransfer.TotalBps(), bd.QueryTransfer.TotalBps())
	}
	if bd.ResponseTransfer.TotalBps() <= bd.Joins.TotalBps() {
		t.Errorf("response transfer %v not above joins %v",
			bd.ResponseTransfer.TotalBps(), bd.Joins.TotalBps())
	}
}

// TestBreakdownJoinsDominateAtLowQueryRate confirms the Appendix C regime:
// with the tenfold-lower query rate, joins rival or beat response traffic.
func TestBreakdownJoinsDominateAtLowQueryRate(t *testing.T) {
	cfg := network.Config{GraphType: network.Strong, GraphSize: 1000, ClusterSize: 50, TTL: 1}
	prof := profileWithRates(true)
	res := Evaluate(generate(t, cfg, prof, 32))
	bd := res.LoadBreakdown()
	if bd.Joins.TotalBps() <= bd.QueryTransfer.TotalBps() {
		t.Errorf("at low query rate joins %v should beat query transfer %v",
			bd.Joins.TotalBps(), bd.QueryTransfer.TotalBps())
	}
}

// TestBreakdownPacketMultiplexGrowsWithConnections: the clique at tiny
// cluster sizes is dominated by the Appendix A overhead (the Figure 6 story).
func TestBreakdownPacketMultiplexAtSmallClusters(t *testing.T) {
	small := network.Config{GraphType: network.Strong, GraphSize: 1000, ClusterSize: 1, TTL: 1}
	big := network.Config{GraphType: network.Strong, GraphSize: 1000, ClusterSize: 50, TTL: 1}
	bdSmall := Evaluate(generate(t, small, nil, 33)).LoadBreakdown()
	bdBig := Evaluate(generate(t, big, nil, 33)).LoadBreakdown()
	fracSmall := bdSmall.PacketMultiplex.ProcHz / bdSmall.Total().ProcHz
	fracBig := bdBig.PacketMultiplex.ProcHz / bdBig.Total().ProcHz
	if fracSmall <= fracBig {
		t.Errorf("packet-multiplex share at cluster 1 (%.2f) not above cluster 50 (%.2f)",
			fracSmall, fracBig)
	}
	if fracSmall < 0.2 {
		t.Errorf("packet-multiplex share at cluster 1 = %.2f; expected dominant", fracSmall)
	}
}
