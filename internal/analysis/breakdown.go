package analysis

import "spnet/internal/cost"

// Breakdown attributes the system's aggregate load to protocol components.
// Bandwidth is counted as in+out (each transfer contributes its size twice,
// once per endpoint), matching the "Bandwidth (In + Out)" axis of Figure 4.
// The packet-multiplex component is the Appendix A per-connection overhead,
// derived as the difference between total processing and the summed
// component processing.
//
// The breakdown makes the paper's causal explanations quantitative: e.g.
// rule #1's knee comes from the query-transfer component growing inversely
// with cluster count, and Figure 5's incoming-bandwidth story is the
// response-transfer component.
type Breakdown struct {
	// QueryTransfer is the cost of moving query messages: flooding between
	// super-peers (including redundant copies) and the client-to-super-peer
	// submission hop.
	QueryTransfer Load
	// QueryProcessing is the cost of evaluating queries over indexes.
	QueryProcessing Load
	// ResponseTransfer is the cost of moving Response messages: reverse-path
	// relaying plus forwarding results to clients.
	ResponseTransfer Load
	// Joins covers client metadata shipping and index (re)building.
	Joins Load
	// Updates covers collection-change notifications and index maintenance.
	Updates Load
	// PacketMultiplex is the Appendix A per-message, per-connection OS
	// overhead (processing only).
	PacketMultiplex Load
}

// Total sums the components; it equals AggregateLoad() summed over in+out.
func (b Breakdown) Total() Load {
	t := b.QueryTransfer
	for _, l := range []Load{b.QueryProcessing, b.ResponseTransfer, b.Joins, b.Updates, b.PacketMultiplex} {
		t = t.Add(l)
	}
	return t
}

// bdAcc accumulates component costs during evaluation, in bytes/sec (each
// transfer counted twice, once per endpoint) and processing units/sec.
type bdAcc struct {
	queryBytes, queryProcXferU float64
	processU                   float64
	respBytes, respProcU       float64
	joinBytes, joinU           float64
	updBytes, updU             float64
}

// queryTransfer charges one query-message transfer at rate w.
func (b *bdAcc) queryTransfer(w, bytes, sendU, recvU float64) {
	b.queryBytes += 2 * w * bytes
	b.queryProcXferU += w * (sendU + recvU)
}

// process charges query evaluation at rate w.
func (b *bdAcc) process(w, units float64) { b.processU += w * units }

// respTransfer charges one response-flow transfer at rate w.
func (b *bdAcc) respTransfer(w, bytes, sendU, recvU float64) {
	b.respBytes += 2 * w * bytes
	b.respProcU += w * (sendU + recvU)
}

// join charges join traffic: transferred bytes (counted per endpoint pair)
// and processing units.
func (b *bdAcc) join(bytes2x, units float64) {
	b.joinBytes += bytes2x
	b.joinU += units
}

// update charges update traffic.
func (b *bdAcc) update(bytes2x, units float64) {
	b.updBytes += bytes2x
	b.updU += units
}

// LoadBreakdown computes the component attribution for the evaluated
// instance. The packet-multiplex processing is the residual between the
// aggregate and the explicit components; bandwidth residual is zero by
// construction.
func (r *Result) LoadBreakdown() Breakdown {
	b := r.bd
	mk := func(bytes, units float64) Load {
		return Load{InBps: bytes * 8 / 2, OutBps: bytes * 8 / 2, ProcHz: cost.UnitsToHz(units)}
	}
	out := Breakdown{
		QueryTransfer:    mk(b.queryBytes, b.queryProcXferU),
		QueryProcessing:  mk(0, b.processU),
		ResponseTransfer: mk(b.respBytes, b.respProcU),
		Joins:            mk(b.joinBytes, b.joinU),
		Updates:          mk(b.updBytes, b.updU),
	}
	agg := r.AggregateLoad()
	explicit := out.Total()
	pm := agg.ProcHz - explicit.ProcHz
	if pm < 0 {
		pm = 0 // guard against rounding
	}
	out.PacketMultiplex = Load{ProcHz: pm}
	return out
}
