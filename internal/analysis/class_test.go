package analysis

import (
	"testing"

	"spnet/internal/metrics"
	"spnet/internal/network"
)

// TestSuperPeerClassBpsConsistent checks the analytical taxonomy breakdown:
// per cluster, the class cells must sum to the per-partner load's
// bandwidth, with query/response/join/update all populated and the
// live-only classes empty. Both overlay engines (clique closed form and
// generic BFS) are covered.
func TestSuperPeerClassBpsConsistent(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  func() network.Config
	}{
		{"clique", func() network.Config {
			cfg := network.DefaultConfig()
			cfg.GraphSize = 150
			return cfg
		}},
		{"powerlaw", func() network.Config {
			cfg := network.DefaultConfig()
			cfg.GraphType = network.PowerLaw
			cfg.GraphSize = 400
			cfg.AvgOutdegree = 3.1
			cfg.TTL = 7
			return cfg
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inst := generate(t, tc.cfg(), nil, 9)
			res := Evaluate(inst)
			var agg metrics.ByClass
			for v := range inst.Clusters {
				cls := res.SuperPeerClassBps(v)
				load := res.SuperPeerLoad(v)
				for d, tot := range map[metrics.Dir]float64{
					metrics.DirIn:  load.InBps,
					metrics.DirOut: load.OutBps,
				} {
					sum := 0.0
					for c := 0; c < metrics.NumClasses; c++ {
						sum += cls.Get(metrics.Class(c), d)
					}
					if relDiff(sum, tot) > 1e-9 {
						t.Errorf("cluster %d dir %v: class sum %v != load %v", v, d, sum, tot)
					}
				}
				agg.Merge(cls)
			}
			for _, c := range []metrics.Class{
				metrics.ClassQuery, metrics.ClassResponse, metrics.ClassJoin, metrics.ClassUpdate,
			} {
				if agg.Sum(metrics.DirIn, c)+agg.Sum(metrics.DirOut, c) == 0 {
					t.Errorf("no bytes attributed to class %v", c)
				}
			}
			for _, c := range []metrics.Class{metrics.ClassBusy, metrics.ClassPing, metrics.ClassOther} {
				if agg.Sum(metrics.DirIn, c)+agg.Sum(metrics.DirOut, c) != 0 {
					t.Errorf("bytes attributed to live-only class %v", c)
				}
			}
		})
	}
}
