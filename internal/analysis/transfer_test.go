package analysis

import (
	"math"
	"testing"

	"spnet/internal/gnutella"
	"spnet/internal/transfer"
)

func TestPredictTransferAccounting(t *testing.T) {
	w := TransferWorkload{
		FileSize: 512 << 10, ChunkSize: 16 << 10,
		Sources: 2, SourceRateBps: 256 << 10,
	}
	p, err := PredictTransfer(w)
	if err != nil {
		t.Fatal(err)
	}
	if p.Chunks != 32 {
		t.Errorf("Chunks = %d, want 32", p.Chunks)
	}
	// Hand-computed wire total: manifest exchange + 32 full chunks.
	want := int64(gnutella.ChunkRequestSize()) +
		int64(gnutella.ChunkDataSize(transfer.ManifestLen(32))) +
		32*int64(gnutella.ChunkRequestSize()) +
		32*int64(gnutella.ChunkDataSize(16<<10))
	if p.WireBytes != want {
		t.Errorf("WireBytes = %d, want %d", p.WireBytes, want)
	}
	if p.WireBytes <= p.ContentBytes {
		t.Error("framing overhead missing: wire bytes not above content bytes")
	}
	if p.Efficiency <= 0.9 || p.Efficiency >= 1 {
		t.Errorf("Efficiency = %.4f, want in (0.9, 1) for 16 KiB chunks", p.Efficiency)
	}
	if got, want := p.ThroughputBps, float64(2*256<<10); got != want {
		t.Errorf("ThroughputBps = %g, want %g", got, want)
	}
	if got, want := p.DurationSec, 1.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("DurationSec = %g, want %g", got, want)
	}
}

func TestPredictTransferShortTail(t *testing.T) {
	// 100 KiB in 16 KiB chunks: 6 full + one 4 KiB tail.
	p, err := PredictTransfer(TransferWorkload{FileSize: 100 << 10, ChunkSize: 16 << 10, Sources: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Chunks != 7 {
		t.Errorf("Chunks = %d, want 7", p.Chunks)
	}
	want := int64(gnutella.ChunkRequestSize()) +
		int64(gnutella.ChunkDataSize(transfer.ManifestLen(7))) +
		7*int64(gnutella.ChunkRequestSize()) +
		6*int64(gnutella.ChunkDataSize(16<<10)) +
		int64(gnutella.ChunkDataSize(4<<10))
	if p.WireBytes != want {
		t.Errorf("WireBytes = %d, want %d", p.WireBytes, want)
	}
	if p.ThroughputBps != 0 || p.DurationSec != 0 {
		t.Error("unpaced sources must not predict throughput or duration")
	}
}

func TestPredictTransferRejectsBadWorkloads(t *testing.T) {
	bad := []TransferWorkload{
		{FileSize: 0, ChunkSize: 1024, Sources: 1},
		{FileSize: 1024, ChunkSize: 0, Sources: 1},
		{FileSize: 1024, ChunkSize: gnutella.MaxChunkLen + 1, Sources: 1},
		{FileSize: 1024, ChunkSize: 1024, Sources: 0},
	}
	for _, w := range bad {
		if _, err := PredictTransfer(w); err == nil {
			t.Errorf("PredictTransfer(%+v) accepted, want error", w)
		}
	}
}
