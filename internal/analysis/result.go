package analysis

import (
	"spnet/internal/metrics"
	"spnet/internal/network"
)

// SuperPeerLoad returns the expected load of one super-peer partner of
// cluster v. With 2-redundancy the query-path load is split evenly between
// the partners (clients and neighbors round-robin across them) while join
// and update traffic is borne in full by each partner; without redundancy
// the single super-peer carries everything.
func (r *Result) SuperPeerLoad(v int) Load {
	raw := r.spShared[v]
	raw.scale(1 / float64(r.Inst.Config.Partners()))
	raw.add(r.spPerPartner[v])
	return raw.finalize(r.Inst.SuperPeerConns(v))
}

// SuperPeerClassBps returns the expected per-partner bandwidth of one
// super-peer partner of cluster v broken down by Table 2 taxonomy class and
// direction, in bits per second — the analytical counterpart of the
// spnet_message_bytes_total series live nodes and the simulator emit. The
// class cells sum to SuperPeerLoad(v)'s InBps/OutBps.
func (r *Result) SuperPeerClassBps(v int) metrics.ByClass {
	cls := r.spSharedCls[v].Scale(1 / float64(r.Inst.Config.Partners()))
	cls.Merge(r.spPerPartnerCls[v])
	return cls.Scale(8)
}

// ClientLoad returns the expected load of client i of cluster v.
func (r *Result) ClientLoad(v, i int) Load {
	raw := r.clientBase[v]
	raw.add(r.clientJoin[v][i])
	return raw.finalize(r.Inst.ClientConns())
}

// AggregateLoad returns E[M | I] (eq. 4): the sum of the loads of every node
// in the system — all partners of all clusters plus all clients.
func (r *Result) AggregateLoad() Load {
	var total Load
	partners := float64(r.Inst.Config.Partners())
	for v := range r.Inst.Clusters {
		total = total.Add(r.SuperPeerLoad(v).Scale(partners))
		for i := range r.Inst.Clusters[v].Clients {
			total = total.Add(r.ClientLoad(v, i))
		}
	}
	return total
}

// MeanSuperPeerLoad returns E[M_Q] (eq. 3) for Q = the set of super-peer
// partners: the mean per-partner load.
func (r *Result) MeanSuperPeerLoad() Load {
	var sum Load
	n := len(r.Inst.Clusters)
	if n == 0 {
		return sum
	}
	for v := 0; v < n; v++ {
		sum = sum.Add(r.SuperPeerLoad(v))
	}
	return sum.Scale(1 / float64(n))
}

// MeanClientLoad returns E[M_Q] (eq. 3) for Q = the set of clients. The
// zero Load is returned when the instance has no clients.
func (r *Result) MeanClientLoad() Load {
	var sum Load
	count := 0
	for v := range r.Inst.Clusters {
		for i := range r.Inst.Clusters[v].Clients {
			sum = sum.Add(r.ClientLoad(v, i))
			count++
		}
	}
	if count == 0 {
		return Load{}
	}
	return sum.Scale(1 / float64(count))
}

// NodeLoad pairs a node identity with its expected load.
type NodeLoad struct {
	ID   network.NodeID
	Load Load
}

// AllNodeLoads returns the expected load of every peer in the instance
// (each redundant partner listed separately), in the instance's
// deterministic node order. This is the data behind the paper's Figure 12
// rank curves.
func (r *Result) AllNodeLoads() []NodeLoad {
	out := make([]NodeLoad, 0, r.Inst.NumPeers)
	r.Inst.ForEachNode(func(id network.NodeID, _ network.Peer) {
		var l Load
		if id.IsSuperPeer() {
			l = r.SuperPeerLoad(id.Cluster)
		} else {
			l = r.ClientLoad(id.Cluster, id.Client)
		}
		out = append(out, NodeLoad{ID: id, Load: l})
	})
	return out
}

// SuperPeerLoadsByOutdegree returns, for every cluster, the overlay
// outdegree of its super-peer and the per-partner load — the raw data for
// the load-vs-outdegree histograms of Figures 7 and 8.
func (r *Result) SuperPeerLoadsByOutdegree() (outdegrees []int, loads []Load) {
	n := len(r.Inst.Clusters)
	outdegrees = make([]int, n)
	loads = make([]Load, n)
	for v := 0; v < n; v++ {
		outdegrees[v] = r.Inst.Graph.Degree(v)
		loads[v] = r.SuperPeerLoad(v)
	}
	return outdegrees, loads
}

// ResultsBySourceOutdegree returns, for every cluster, its outdegree and the
// expected number of results a query sourced there receives (Figure 8).
func (r *Result) ResultsBySourceOutdegree() (outdegrees []int, results []float64) {
	n := len(r.Inst.Clusters)
	outdegrees = make([]int, n)
	results = make([]float64, n)
	for v := 0; v < n; v++ {
		outdegrees[v] = r.Inst.Graph.Degree(v)
		results[v] = r.respToSource[v].results
	}
	return outdegrees, results
}

// SourceResults returns E[R_S] (eq. 2) for queries sourced at cluster v.
func (r *Result) SourceResults(v int) float64 { return r.respToSource[v].results }
