package analysis

import (
	"testing"

	"spnet/internal/network"
	"spnet/internal/stats"
	"spnet/internal/workload"
)

// profileWithRates returns the default workload, optionally with the
// Appendix C tenfold-lower query rate.
func profileWithRates(lowQueryRate bool) *workload.Profile {
	prof := workload.DefaultProfile()
	if lowQueryRate {
		prof.Rates = workload.LowQueryRates()
	}
	return prof
}

// lowVarProfile keeps the default means but shrinks the file-count and
// lifespan tails so that cross-configuration ratio assertions at small scale
// are not swamped by heavy-tail sampling noise. The rules of thumb are
// structural claims; they do not depend on the tail.
func lowVarProfile() *workload.Profile {
	prof := workload.DefaultProfile()
	prof.Files = workload.FileCountDist{
		FreeRiderFrac: 0,
		Sharers:       stats.BoundedPareto{Alpha: 8, L: 90, H: 200},
	}
	prof.Lifespans = workload.LifespanDist{D: stats.BoundedPareto{Alpha: 8, L: 950, H: 2000}}
	return prof
}

// evalCfgProf is evalCfg with an explicit profile.
func evalCfgProf(t *testing.T, cfg network.Config, prof *workload.Profile, seed uint64) *Result {
	t.Helper()
	return Evaluate(generate(t, cfg, prof, seed))
}

// These tests verify that the paper's four rules of thumb (Section 5.1)
// emerge from the analysis engine at reduced scale.

func evalCfg(t *testing.T, cfg network.Config, seed uint64) *Result {
	t.Helper()
	return Evaluate(generate(t, cfg, nil, seed))
}

// Rule #1a: increasing cluster size decreases aggregate load.
func TestRule1AggregateLoadFallsWithClusterSize(t *testing.T) {
	base := network.Config{GraphType: network.Strong, GraphSize: 2000, TTL: 1}
	var prev float64
	for i, cs := range []int{1, 10, 100} {
		cfg := base
		cfg.ClusterSize = cs
		agg := evalCfg(t, cfg, 20).AggregateLoad().TotalBps()
		if i > 0 && agg >= prev {
			t.Errorf("aggregate bandwidth did not fall: cluster %d -> %v, previous %v", cs, agg, prev)
		}
		prev = agg
	}
}

// Rule #1b: increasing cluster size increases individual super-peer load.
func TestRule1IndividualLoadGrowsWithClusterSize(t *testing.T) {
	base := network.Config{GraphType: network.Strong, GraphSize: 2000, TTL: 1}
	var prev float64
	for i, cs := range []int{10, 50, 100} {
		cfg := base
		cfg.ClusterSize = cs
		sp := evalCfg(t, cfg, 21).MeanSuperPeerLoad().TotalBps()
		if i > 0 && sp <= prev {
			t.Errorf("individual super-peer bandwidth did not grow: cluster %d -> %v, previous %v", cs, sp, prev)
		}
		prev = sp
	}
	// The paper: "a super-peer with 100 clients has almost twice the load as
	// a super-peer with 50".
	cfg50, cfg100 := base, base
	cfg50.ClusterSize = 51
	cfg100.ClusterSize = 101
	l50 := evalCfg(t, cfg50, 22).MeanSuperPeerLoad().TotalBps()
	l100 := evalCfg(t, cfg100, 22).MeanSuperPeerLoad().TotalBps()
	if ratio := l100 / l50; ratio < 1.5 || ratio > 2.5 {
		t.Errorf("load ratio 100/50 clients = %v, want ~2", ratio)
	}
}

// Rule #1 exception: incoming super-peer bandwidth peaks near a cluster
// fraction of one half and has a minimum at a single cluster (Figure 5).
func TestRule1IncomingBandwidthException(t *testing.T) {
	base := network.Config{GraphType: network.Strong, GraphSize: 1000, TTL: 1}
	load := func(cs int, seed uint64) float64 {
		cfg := base
		cfg.ClusterSize = cs
		return evalCfg(t, cfg, seed).MeanSuperPeerLoad().InBps
	}
	half := load(500, 23)  // f = 1/2: the analytic maximum of f(1-f)
	full := load(1000, 23) // f = 1: single super-peer
	small := load(100, 23) // f = 1/10
	if full >= half {
		t.Errorf("incoming bandwidth at cluster=size (%v) should be below the f=1/2 peak (%v)", full, half)
	}
	if small >= half {
		t.Errorf("incoming bandwidth at f=0.1 (%v) should be below the f=1/2 peak (%v)", small, half)
	}
}

// Rule #2: 2-redundancy leaves aggregate bandwidth nearly unchanged but cuts
// individual super-peer load substantially (the paper reports +2.5% aggregate
// and -48% individual at cluster size 100 in the strong network).
func TestRule2RedundancyHelps(t *testing.T) {
	plain := network.Config{GraphType: network.Strong, GraphSize: 2000, ClusterSize: 100, TTL: 1}
	red := plain
	red.Redundancy = true
	prof := lowVarProfile()
	// Client counts are N(c̄, .2c̄) per cluster, so single instances of a
	// 20-cluster system are noisy; average over trials (the paper's Step 4).
	rp, err := RunTrials(plain, prof, 30, 24)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RunTrials(red, prof, 30, 24)
	if err != nil {
		t.Fatal(err)
	}

	aggP := rp.Aggregate.InBps.Mean + rp.Aggregate.OutBps.Mean
	aggR := rr.Aggregate.InBps.Mean + rr.Aggregate.OutBps.Mean
	if rel := (aggR - aggP) / aggP; rel < -0.10 || rel > 0.20 {
		t.Errorf("redundancy changed aggregate bandwidth by %.1f%%, want roughly unchanged", 100*rel)
	}
	spP := rp.SuperPeer.InBps.Mean + rp.SuperPeer.OutBps.Mean
	spR := rr.SuperPeer.InBps.Mean + rr.SuperPeer.OutBps.Mean
	if drop := 1 - spR/spP; drop < 0.30 || drop > 0.60 {
		t.Errorf("redundancy cut individual super-peer bandwidth by %.1f%%, want ~48%%", 100*drop)
	}
	// Aggregate processing rises (twice the partners) while individual
	// processing falls (the paper: +17% / -41%).
	if rr.Aggregate.ProcHz.Mean <= rp.Aggregate.ProcHz.Mean {
		t.Error("aggregate processing should rise with redundancy")
	}
	if rr.SuperPeer.ProcHz.Mean >= rp.SuperPeer.ProcHz.Mean {
		t.Error("individual processing should fall with redundancy")
	}
	// Client outgoing load rises (metadata shipped to two partners).
	if rr.Client.OutBps.Mean <= rp.Client.OutBps.Mean {
		t.Error("client outgoing load should rise with redundancy")
	}
}

// Rule #2 comparison: redundancy beats halving the cluster size on
// individual bandwidth for the same reliability budget ("driving it down to
// the individual load of a non-redundant super-peer [of half the] cluster").
func TestRule2RedundancyVsHalfClusters(t *testing.T) {
	red := network.Config{GraphType: network.Strong, GraphSize: 2000, ClusterSize: 100,
		TTL: 1, Redundancy: true}
	half := network.Config{GraphType: network.Strong, GraphSize: 2000, ClusterSize: 50, TTL: 1}
	prof := lowVarProfile()
	sr, err := RunTrials(red, prof, 20, 25)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := RunTrials(half, prof, 20, 25)
	if err != nil {
		t.Fatal(err)
	}
	lr := sr.SuperPeer.InBps.Mean + sr.SuperPeer.OutBps.Mean
	lh := sh.SuperPeer.InBps.Mean + sh.SuperPeer.OutBps.Mean
	// The paper finds redundancy comparable to or better than half-size
	// clusters; allow it to be within 20% either way.
	if lr > lh*1.2 {
		t.Errorf("redundant partner load %v far above half-cluster load %v", lr, lh)
	}
}

// Rule #3: raising everyone's outdegree lowers loads at equal or better
// result quality (Appendix D: >31% bandwidth saving from 3.1 to 10).
func TestRule3HigherOutdegreeWins(t *testing.T) {
	lo := network.Config{GraphType: network.PowerLaw, GraphSize: 4000, ClusterSize: 100,
		AvgOutdegree: 3.1, TTL: 7}
	hi := lo
	hi.AvgOutdegree = 10
	prof := lowVarProfile()
	rl := evalCfgProf(t, lo, prof, 26)
	rh := evalCfgProf(t, hi, prof, 26)
	if rh.EPL >= rl.EPL {
		t.Errorf("EPL did not fall: %v -> %v", rl.EPL, rh.EPL)
	}
	if rh.ResultsPerQuery < rl.ResultsPerQuery*0.99 {
		t.Errorf("results fell: %v -> %v", rl.ResultsPerQuery, rh.ResultsPerQuery)
	}
	aggLo, aggHi := rl.AggregateLoad().TotalBps(), rh.AggregateLoad().TotalBps()
	if save := 1 - aggHi/aggLo; save < 0.10 {
		t.Errorf("aggregate bandwidth saving = %.1f%%, want substantial (paper: >31%%)", 100*save)
	}
}

// Rule #4: once reach is full, lowering TTL saves bandwidth without losing
// results (the paper: 19% aggregate incoming bandwidth from TTL 4 -> 3 at
// outdegree 20).
func TestRule4MinimizeTTL(t *testing.T) {
	cfg3 := network.Config{GraphType: network.PowerLaw, GraphSize: 4000, ClusterSize: 10,
		AvgOutdegree: 20, TTL: 3}
	cfg4 := cfg3
	cfg4.TTL = 4
	prof := lowVarProfile()
	r3 := evalCfgProf(t, cfg3, prof, 27)
	r4 := evalCfgProf(t, cfg4, prof, 27)
	if r3.MeanReachClusters < float64(r3.Inst.Graph.N())*0.999 {
		t.Skipf("TTL 3 reach %v below full %d", r3.MeanReachClusters, r3.Inst.Graph.N())
	}
	// Reach is (essentially) full for both, so results agree to within the
	// tiny residual of sources that are not quite covered at TTL 3.
	if relDiff(r3.ResultsPerQuery, r4.ResultsPerQuery) > 1e-4 {
		t.Errorf("results differ across TTL: %v vs %v", r3.ResultsPerQuery, r4.ResultsPerQuery)
	}
	in3, in4 := r3.AggregateLoad().InBps, r4.AggregateLoad().InBps
	if save := 1 - in3/in4; save < 0.05 {
		t.Errorf("TTL 4->3 saved %.1f%% incoming bandwidth, want noticeable (paper: 19%%)", 100*save)
	}
}

// Appendix C: with a tenfold lower query rate the cluster-size effect on
// aggregate load weakens and redundancy's aggregate penalty grows.
func TestAppendixCLowQueryRate(t *testing.T) {
	cfg := network.Config{GraphType: network.Strong, GraphSize: 1000, ClusterSize: 100, TTL: 1}
	red := cfg
	red.Redundancy = true

	defProf := lowVarProfile()
	lowProf := lowVarProfile()
	lowProf.Rates = workload.LowQueryRates()

	total := func(cfg network.Config, prof *workload.Profile) float64 {
		s, err := RunTrials(cfg, prof, 20, 28)
		if err != nil {
			t.Fatal(err)
		}
		return s.Aggregate.InBps.Mean + s.Aggregate.OutBps.Mean
	}
	aggDef := total(cfg, defProf)
	aggDefRed := total(red, defProf)
	aggLow := total(cfg, lowProf)
	aggLowRed := total(red, lowProf)

	penaltyDef := aggDefRed/aggDef - 1
	penaltyLow := aggLowRed/aggLow - 1
	if penaltyLow <= penaltyDef {
		t.Errorf("redundancy penalty at low query rate (%.1f%%) should exceed default (%.1f%%)",
			100*penaltyLow, 100*penaltyDef)
	}
}

// TestKRedundancyLoadScaling: the extension beyond the paper — per-partner
// query load falls roughly as 1/k while client join traffic grows as k.
func TestKRedundancyLoadScaling(t *testing.T) {
	prof := lowVarProfile()
	load := func(k int) (sp, clientOut float64) {
		cfg := network.Config{GraphType: network.Strong, GraphSize: 2000,
			ClusterSize: 100, KRedundancy: k, TTL: 1}
		sum, err := RunTrials(cfg, prof, 15, 42)
		if err != nil {
			t.Fatal(err)
		}
		return sum.SuperPeer.InBps.Mean + sum.SuperPeer.OutBps.Mean,
			sum.Client.OutBps.Mean
	}
	sp1, cl1 := load(1)
	sp3, cl3 := load(3)
	if ratio := sp3 / sp1; ratio > 0.55 || ratio < 0.25 {
		t.Errorf("per-partner bandwidth at k=3 is %.2fx of k=1, want ~1/3", ratio)
	}
	if ratio := cl3 / cl1; ratio < 2.3 || ratio > 3.7 {
		t.Errorf("client out at k=3 is %.2fx of k=1, want ~3x (joins to every partner)", ratio)
	}
}

// TestKRedundancySimMatchesAnalysis cross-checks k=3 between the two engines.
func TestKRedundancyAggregateConserved(t *testing.T) {
	cfg := network.Config{GraphType: network.PowerLaw, GraphSize: 400,
		ClusterSize: 10, KRedundancy: 3, AvgOutdegree: 3.1, TTL: 5}
	res := evalCfgProf(t, cfg, lowVarProfile(), 7)
	agg := res.AggregateLoad()
	if relDiff(agg.InBps, agg.OutBps) > 1e-9 {
		t.Errorf("k=3: aggregate in %v != out %v", agg.InBps, agg.OutBps)
	}
}
