package analysis

import (
	"fmt"

	"spnet/internal/gnutella"
	"spnet/internal/transfer"
)

// TransferWorkload describes one multi-source download for prediction: the
// file being fetched, the chunking it is served under, and the source fleet's
// capacity. It is the transfer-plane analogue of the query workload the rest
// of this package evaluates.
type TransferWorkload struct {
	// FileSize is the file's size in bytes.
	FileSize int64
	// ChunkSize is the serving chunk width in bytes.
	ChunkSize int
	// Sources is the number of distinct sources the download draws from.
	Sources int
	// SourceRateBps is each source's content-byte service rate in bytes/sec
	// (the server-side transfer-rate cap). 0 means unpaced sources, for
	// which no duration or throughput prediction is made.
	SourceRateBps float64
}

// TransferPrediction is the analytical expectation for one download: total
// wire traffic from the chunk protocol's framing, the protocol efficiency,
// and — for rate-capped sources — the steady-state throughput and duration.
//
// The throughput model is deliberately simple: a window-pipelined downloader
// keeps every source's service queue non-empty, so aggregate content
// throughput is the sum of the source caps, and the transfer is
// service-bound, not round-trip-bound. That is the regime the transferbench
// experiment validates the live plane against.
type TransferPrediction struct {
	// Chunks is the number of data chunks the file splits into.
	Chunks int
	// ContentBytes is the useful payload moved: the file size.
	ContentBytes int64
	// WireBytes is the total bytes on the wire for a clean (no-retry)
	// download: the manifest exchange plus, per chunk, one ChunkRequest and
	// one ChunkData with full framing.
	WireBytes int64
	// Efficiency is ContentBytes / WireBytes — the fraction of transfer-class
	// wire traffic that is file payload.
	Efficiency float64
	// ThroughputBps is the predicted aggregate content throughput in
	// bytes/sec: Sources × SourceRateBps. Zero when sources are unpaced.
	ThroughputBps float64
	// DurationSec is the predicted wall-clock seconds for the download at
	// ThroughputBps. Zero when sources are unpaced.
	DurationSec float64
}

// PredictTransfer evaluates the analytical model for one download workload.
// Pure: it touches no instance or evaluator state, so it composes with any
// Result without perturbing the query-load evaluation.
func PredictTransfer(w TransferWorkload) (*TransferPrediction, error) {
	if w.FileSize <= 0 {
		return nil, fmt.Errorf("analysis: transfer workload FileSize %d, want > 0", w.FileSize)
	}
	if w.ChunkSize <= 0 || w.ChunkSize > gnutella.MaxChunkLen {
		return nil, fmt.Errorf("analysis: transfer workload ChunkSize %d, want 1..%d", w.ChunkSize, gnutella.MaxChunkLen)
	}
	if w.Sources <= 0 {
		return nil, fmt.Errorf("analysis: transfer workload Sources %d, want > 0", w.Sources)
	}
	chunks := int((w.FileSize + int64(w.ChunkSize) - 1) / int64(w.ChunkSize))

	// Manifest exchange: one request plus the manifest frame. Every source
	// bootstraps from the first, but only the first source's exchange is
	// charged here: Resume and the per-source re-fetch are retry paths, and
	// the prediction is for a clean download.
	wire := int64(gnutella.ChunkRequestSize())
	wire += int64(gnutella.ChunkDataSize(transfer.ManifestLen(chunks)))
	// Per chunk: request out, data back. The final chunk may be short.
	wire += int64(chunks) * int64(gnutella.ChunkRequestSize())
	full := w.FileSize / int64(w.ChunkSize)
	wire += full * int64(gnutella.ChunkDataSize(w.ChunkSize))
	if tail := int(w.FileSize % int64(w.ChunkSize)); tail > 0 {
		wire += int64(gnutella.ChunkDataSize(tail))
	}

	p := &TransferPrediction{
		Chunks:       chunks,
		ContentBytes: w.FileSize,
		WireBytes:    wire,
		Efficiency:   float64(w.FileSize) / float64(wire),
	}
	if w.SourceRateBps > 0 {
		p.ThroughputBps = float64(w.Sources) * w.SourceRateBps
		p.DurationSec = float64(w.FileSize) / p.ThroughputBps
	}
	return p, nil
}
