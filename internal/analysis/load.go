// Package analysis implements the paper's mean-value analysis framework
// (Section 4.1, Steps 2–4): given a realized network instance, it computes
// the expected load of every node — incoming bandwidth, outgoing bandwidth
// and processing power — and the expected quality of results, by modeling
// query propagation as a breadth-first flood with TTL, response routing over
// the reverse path, and the join/update interactions between clients and
// super-peers. Aggregate load (eq. 4), group load (eq. 3), per-node load
// (eq. 1) and results per query (eq. 2) are all derived from one evaluation.
package analysis

import (
	"fmt"

	"spnet/internal/cost"
)

// Load is the amount of work an entity must do per unit of time, measured
// along the paper's three resource types: incoming bandwidth, outgoing
// bandwidth (bits per second) and processing power (cycles per second).
type Load struct {
	// InBps is incoming bandwidth in bits per second.
	InBps float64
	// OutBps is outgoing bandwidth in bits per second.
	OutBps float64
	// ProcHz is processing power in cycles per second.
	ProcHz float64
}

// Add returns the sum of two loads.
func (l Load) Add(m Load) Load {
	return Load{l.InBps + m.InBps, l.OutBps + m.OutBps, l.ProcHz + m.ProcHz}
}

// Scale returns the load multiplied by a scalar.
func (l Load) Scale(k float64) Load {
	return Load{l.InBps * k, l.OutBps * k, l.ProcHz * k}
}

// TotalBps returns incoming plus outgoing bandwidth — the "Bandwidth
// (In + Out)" axis of the paper's Figure 4.
func (l Load) TotalBps() float64 { return l.InBps + l.OutBps }

func (l Load) String() string {
	return fmt.Sprintf("in %.4g bps, out %.4g bps, proc %.4g Hz", l.InBps, l.OutBps, l.ProcHz)
}

// rawLoad accumulates load in the cost model's native units — bytes/sec and
// processing units/sec — plus the handled-message rate, from which the
// packet-multiplex overhead (Appendix A) is derived at finalization time.
type rawLoad struct {
	inBytes  float64 // bytes/sec
	outBytes float64 // bytes/sec
	procU    float64 // units/sec, excluding packet multiplex
	msgs     float64 // messages handled (sent or received) per sec
}

func (r *rawLoad) add(s rawLoad) {
	r.inBytes += s.inBytes
	r.outBytes += s.outBytes
	r.procU += s.procU
	r.msgs += s.msgs
}

func (r *rawLoad) scale(k float64) {
	r.inBytes *= k
	r.outBytes *= k
	r.procU *= k
	r.msgs *= k
}

// finalize converts a raw load to a Load, adding the packet-multiplex
// processing overhead for a node with the given number of open connections
// (Appendix A: .01 units per open connection per message handled).
func (r rawLoad) finalize(openConns int) Load {
	procUnits := r.procU + r.msgs*float64(cost.PacketMultiplex(openConns))
	return Load{
		InBps:  r.inBytes * 8,
		OutBps: r.outBytes * 8,
		ProcHz: cost.UnitsToHz(procUnits),
	}
}

// flow is an expected bundle of Response traffic: msgs Response messages
// carrying addrs responder addresses and results result records in total.
// Flows add as they are aggregated up the reverse path of a query.
type flow struct {
	msgs    float64
	addrs   float64
	results float64
}

func (f *flow) add(g flow) {
	f.msgs += g.msgs
	f.addrs += g.addrs
	f.results += g.results
}

// isZero reports whether the flow carries nothing.
func (f flow) isZero() bool { return f.msgs == 0 && f.addrs == 0 && f.results == 0 }
