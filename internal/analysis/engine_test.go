package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"spnet/internal/cost"
	"spnet/internal/network"
	"spnet/internal/stats"
	"spnet/internal/topology"
	"spnet/internal/workload"
)

func generate(t *testing.T, cfg network.Config, prof *workload.Profile, seed uint64) *network.Instance {
	t.Helper()
	inst, err := network.Generate(cfg, prof, stats.NewRNG(seed))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return inst
}

func relDiff(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

// TestTwoClusterHandComputed verifies every term of the cost accounting on a
// two-super-peer network small enough to compute by hand.
func TestTwoClusterHandComputed(t *testing.T) {
	prof := workload.DefaultProfile()
	cfg := network.Config{
		GraphType:    network.Strong,
		GraphSize:    2,
		ClusterSize:  1,
		AvgOutdegree: 1,
		TTL:          1,
	}
	inst := generate(t, cfg, prof, 1)
	if len(inst.Clusters) != 2 {
		t.Fatalf("clusters = %d", len(inst.Clusters))
	}
	res := Evaluate(inst)

	q := prof.Rates.QueryRate
	u := prof.Rates.UpdateRate
	qm := prof.Queries
	qBytes := 94.0 // 82 + 12

	type side struct {
		files int
		life  float64
		p     float64 // ProbResp
		k     float64 // ExpAddrs
		n     float64 // ExpResults
	}
	mk := func(v int) side {
		cl := inst.Clusters[v]
		return side{
			files: cl.Partners[0].Files,
			life:  cl.Partners[0].Lifespan,
			p:     cl.ProbResp,
			k:     cl.ExpAddrs,
			n:     cl.ExpResults,
		}
	}
	a, b := mk(0), mk(1)
	respBytesOf := func(s side) float64 { return 80*s.p + 28*s.k + 76*s.n }

	// Node A expected load, by hand.
	inBytes := q * (qBytes + respBytesOf(b)) // B's query + B's response to A's query
	outBytes := q * (qBytes + respBytesOf(a))
	// Response messages only exist with probability ProbResp, so the
	// per-message base costs are scaled by p while the per-record terms use
	// the expected counts directly.
	proc := q*(cost.SendQueryBase+cost.SendQueryPerByte*12) + // send own query
		q*(cost.RecvQueryBase+cost.RecvQueryPerByte*12) + // receive B's query
		2*q*(cost.ProcessQueryBase+cost.ProcessQueryPerRe*a.n) + // process both queries
		q*(cost.RecvRespBase*b.p+cost.RecvRespPerAddr*b.k+cost.RecvRespPerResult*b.n) +
		q*(cost.SendRespBase*a.p+cost.SendRespPerAddr*a.k+cost.SendRespPerResult*a.n) +
		(1/a.life)*(cost.ProcessJoinBase+cost.ProcessJoinPerFile*float64(a.files)) +
		u*cost.ProcessUpdate
	msgs := q * (2 + a.p + b.p)                      // 1 query sent, 1 received, responses each way
	proc += msgs * cost.PacketMultiplexPerConn * 1.0 // 1 open connection

	got := res.SuperPeerLoad(0)
	if relDiff(got.InBps, inBytes*8) > 1e-9 {
		t.Errorf("InBps = %v, want %v", got.InBps, inBytes*8)
	}
	if relDiff(got.OutBps, outBytes*8) > 1e-9 {
		t.Errorf("OutBps = %v, want %v", got.OutBps, outBytes*8)
	}
	if relDiff(got.ProcHz, cost.UnitsToHz(proc)) > 1e-9 {
		t.Errorf("ProcHz = %v, want %v", got.ProcHz, cost.UnitsToHz(proc))
	}

	// Quality metrics.
	wantResults := qm.ExpectedResults(a.files + b.files)
	if relDiff(res.ResultsPerQuery, wantResults) > 1e-9 {
		t.Errorf("ResultsPerQuery = %v, want %v", res.ResultsPerQuery, wantResults)
	}
	if res.EPL != 1 {
		t.Errorf("EPL = %v, want 1", res.EPL)
	}
	if res.MeanReachClusters != 2 || res.MeanReachPeers != 2 {
		t.Errorf("reach = %v clusters / %v peers, want 2 / 2", res.MeanReachClusters, res.MeanReachPeers)
	}
}

// TestSingleClusterClientLeg verifies the client-super-peer interaction when
// the whole network is one cluster (the hybrid / central-server extreme).
func TestSingleClusterClientLeg(t *testing.T) {
	prof := workload.DefaultProfile()
	cfg := network.Config{
		GraphType:   network.Strong,
		GraphSize:   40,
		ClusterSize: 40,
		TTL:         1,
	}
	inst := generate(t, cfg, prof, 2)
	cl := inst.Clusters[0]
	nClients := len(cl.Clients)
	if nClients == 0 {
		t.Fatal("expected clients")
	}
	res := Evaluate(inst)

	q := prof.Rates.QueryRate
	respB := 80*cl.ProbResp + 28*cl.ExpAddrs + 76*cl.ExpResults

	// Super-peer incoming: each client's queries (94 B each) plus client
	// joins and updates.
	joinIn := 0.0
	for _, c := range cl.Clients {
		joinIn += (1 / c.Lifespan) * float64(80+72*c.Files)
	}
	updIn := prof.Rates.UpdateRate * float64(nClients) * 152
	wantIn := (q*float64(nClients)*94 + joinIn + updIn) * 8
	got := res.SuperPeerLoad(0)
	if relDiff(got.InBps, wantIn) > 1e-9 {
		t.Errorf("SP InBps = %v, want %v", got.InBps, wantIn)
	}
	// Super-peer outgoing: each client's queries answered with the local
	// results.
	wantOut := q * float64(nClients) * respB * 8
	if relDiff(got.OutBps, wantOut) > 1e-9 {
		t.Errorf("SP OutBps = %v, want %v", got.OutBps, wantOut)
	}

	// Client: submits queries, receives responses, joins, updates.
	c0 := cl.Clients[0]
	wantClientOut := (q*94 + (1/c0.Lifespan)*float64(80+72*c0.Files) + prof.Rates.UpdateRate*152) * 8
	gotClient := res.ClientLoad(0, 0)
	if relDiff(gotClient.OutBps, wantClientOut) > 1e-9 {
		t.Errorf("client OutBps = %v, want %v", gotClient.OutBps, wantClientOut)
	}
	if relDiff(gotClient.InBps, q*respB*8) > 1e-9 {
		t.Errorf("client InBps = %v, want %v", gotClient.InBps, q*respB*8)
	}

	// Results per query: everything in the one index.
	if relDiff(res.ResultsPerQuery, cl.ExpResults) > 1e-9 {
		t.Errorf("ResultsPerQuery = %v, want %v", res.ResultsPerQuery, cl.ExpResults)
	}
}

// noClique hides a graph's clique property, forcing the generic BFS engine.
type noClique struct{ topology.Graph }

func (noClique) IsClique() bool { return false }

// TestCliqueClosedFormMatchesGenericEngine cross-checks the two evaluation
// paths on the same instance, with and without redundant query copies.
func TestCliqueClosedFormMatchesGenericEngine(t *testing.T) {
	for _, ttl := range []int{1, 2, 4} {
		cfg := network.Config{
			GraphType:   network.Strong,
			GraphSize:   120,
			ClusterSize: 10,
			TTL:         ttl,
		}
		inst := generate(t, cfg, nil, 3)
		if !inst.Graph.IsClique() {
			t.Fatal("want clique")
		}
		fast := Evaluate(inst)

		// Same clusters, explicit complete graph, clique detection disabled.
		n := inst.Graph.N()
		var edges [][2]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				edges = append(edges, [2]int{i, j})
			}
		}
		explicit, err := topology.NewAdjGraph(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		slowInst := *inst
		slowInst.Graph = noClique{explicit}
		slow := Evaluate(&slowInst)

		for v := 0; v < n; v++ {
			f, s := fast.SuperPeerLoad(v), slow.SuperPeerLoad(v)
			if relDiff(f.InBps, s.InBps) > 1e-9 || relDiff(f.OutBps, s.OutBps) > 1e-9 ||
				relDiff(f.ProcHz, s.ProcHz) > 1e-9 {
				t.Fatalf("ttl %d cluster %d: closed form %+v != generic %+v", ttl, v, f, s)
			}
		}
		if relDiff(fast.ResultsPerQuery, slow.ResultsPerQuery) > 1e-9 {
			t.Errorf("ttl %d: results %v vs %v", ttl, fast.ResultsPerQuery, slow.ResultsPerQuery)
		}
		if relDiff(fast.EPL, slow.EPL) > 1e-9 {
			t.Errorf("ttl %d: EPL %v vs %v", ttl, fast.EPL, slow.EPL)
		}
		af, as := fast.AggregateLoad(), slow.AggregateLoad()
		if relDiff(af.TotalBps(), as.TotalBps()) > 1e-9 {
			t.Errorf("ttl %d: aggregate %v vs %v", ttl, af, as)
		}
	}
}

// TestBandwidthConservation: every byte sent by some node is received by
// exactly one other node, so system-wide incoming and outgoing bandwidth
// must be identical.
func TestBandwidthConservation(t *testing.T) {
	cases := []network.Config{
		{GraphType: network.Strong, GraphSize: 200, ClusterSize: 10, TTL: 1},
		{GraphType: network.Strong, GraphSize: 200, ClusterSize: 10, TTL: 3},
		{GraphType: network.PowerLaw, GraphSize: 400, ClusterSize: 10, AvgOutdegree: 3.1, TTL: 7},
		{GraphType: network.PowerLaw, GraphSize: 400, ClusterSize: 8, AvgOutdegree: 3.1, TTL: 7, Redundancy: true},
		{GraphType: network.PowerLaw, GraphSize: 300, ClusterSize: 1, AvgOutdegree: 3.1, TTL: 5},
	}
	for _, cfg := range cases {
		inst := generate(t, cfg, nil, 4)
		res := Evaluate(inst)
		agg := res.AggregateLoad()
		if relDiff(agg.InBps, agg.OutBps) > 1e-9 {
			t.Errorf("%v: aggregate in %v != out %v", cfg, agg.InBps, agg.OutBps)
		}
	}
}

// TestAggregateIsSumOfIndividuals checks eq. 4 against explicit summation of
// AllNodeLoads.
func TestAggregateIsSumOfIndividuals(t *testing.T) {
	cfg := network.Config{GraphType: network.PowerLaw, GraphSize: 300, ClusterSize: 6,
		AvgOutdegree: 3.1, TTL: 4, Redundancy: true}
	inst := generate(t, cfg, nil, 5)
	res := Evaluate(inst)
	var sum Load
	for _, nl := range res.AllNodeLoads() {
		sum = sum.Add(nl.Load)
	}
	agg := res.AggregateLoad()
	if relDiff(sum.InBps, agg.InBps) > 1e-9 || relDiff(sum.OutBps, agg.OutBps) > 1e-9 ||
		relDiff(sum.ProcHz, agg.ProcHz) > 1e-9 {
		t.Errorf("sum of individuals %+v != aggregate %+v", sum, agg)
	}
	if len(res.AllNodeLoads()) != inst.NumPeers {
		t.Errorf("AllNodeLoads returned %d entries, want %d", len(res.AllNodeLoads()), inst.NumPeers)
	}
}

// TestLoadsNonNegative guards the accounting against sign errors.
func TestLoadsNonNegative(t *testing.T) {
	cfg := network.DefaultConfig()
	cfg.GraphSize = 500
	inst := generate(t, cfg, nil, 6)
	res := Evaluate(inst)
	for _, nl := range res.AllNodeLoads() {
		if nl.Load.InBps < 0 || nl.Load.OutBps < 0 || nl.Load.ProcHz < 0 {
			t.Fatalf("negative load %+v at %+v", nl.Load, nl.ID)
		}
	}
	if res.ResultsPerQuery < 0 || res.EPL < 0 {
		t.Error("negative quality metrics")
	}
}

// TestResultsMatchSelectionPower: with full reach, results per query must be
// p̄ times the total file population (Appendix B).
func TestResultsMatchSelectionPower(t *testing.T) {
	prof := workload.DefaultProfile()
	cfg := network.Config{GraphType: network.Strong, GraphSize: 1000, ClusterSize: 20, TTL: 1}
	inst := generate(t, cfg, prof, 7)
	res := Evaluate(inst)
	want := prof.Queries.ExpectedResults(inst.TotalFiles())
	if relDiff(res.ResultsPerQuery, want) > 1e-9 {
		t.Errorf("ResultsPerQuery = %v, want %v", res.ResultsPerQuery, want)
	}
}

// TestTTLZeroIsLocalOnly: queries with TTL 0 never leave the source cluster.
func TestTTLZeroIsLocalOnly(t *testing.T) {
	cfg := network.Config{GraphType: network.PowerLaw, GraphSize: 200, ClusterSize: 10,
		AvgOutdegree: 3.1, TTL: 0}
	inst := generate(t, cfg, nil, 8)
	res := Evaluate(inst)
	if res.MeanReachClusters != 1 {
		t.Errorf("reach = %v clusters, want 1", res.MeanReachClusters)
	}
	// No inter-super-peer traffic: super-peer bandwidth is client-leg only;
	// with 9 clients/cluster it must be far below a flooded configuration.
	flooded := cfg
	flooded.TTL = 7
	res2 := Evaluate(generate(t, flooded, nil, 8))
	if res.MeanSuperPeerLoad().TotalBps() >= res2.MeanSuperPeerLoad().TotalBps() {
		t.Error("TTL 0 load not below TTL 7 load")
	}
}

// TestRedundantQueriesCostSomething: on a cycle-rich graph, raising TTL past
// full reach adds redundant-copy cost without adding results (rule #4).
func TestRedundantQueriesCostSomething(t *testing.T) {
	cfg := network.Config{GraphType: network.PowerLaw, GraphSize: 2000, ClusterSize: 10,
		AvgOutdegree: 20, TTL: 3}
	instA := generate(t, cfg, nil, 9)
	resA := Evaluate(instA)
	cfgB := cfg
	cfgB.TTL = 6
	instB := generate(t, cfgB, nil, 9) // same seed: identical topology and peers
	resB := Evaluate(instB)
	if resA.MeanReachClusters != float64(instA.Graph.N()) {
		t.Skipf("TTL 3 does not give full reach (%v of %d)", resA.MeanReachClusters, instA.Graph.N())
	}
	if relDiff(resA.ResultsPerQuery, resB.ResultsPerQuery) > 1e-9 {
		t.Errorf("results differ: %v vs %v", resA.ResultsPerQuery, resB.ResultsPerQuery)
	}
	aggA, aggB := resA.AggregateLoad(), resB.AggregateLoad()
	if aggB.InBps <= aggA.InBps {
		t.Errorf("TTL 6 aggregate in-bw %v not above TTL 3 %v", aggB.InBps, aggA.InBps)
	}
}

// TestEPLSaneOnPowerLaw: measured EPL should be near log_d(reach)
// (Appendix F) and response-weighted depth must stay within TTL.
func TestEPLSaneOnPowerLaw(t *testing.T) {
	cfg := network.Config{GraphType: network.PowerLaw, GraphSize: 10000, ClusterSize: 20,
		AvgOutdegree: 10, TTL: 7}
	inst := generate(t, cfg, nil, 10)
	res := Evaluate(inst)
	if res.EPL < 1 || res.EPL > 7 {
		t.Fatalf("EPL = %v outside [1, TTL]", res.EPL)
	}
	approx := topology.EPLApprox(10, inst.Graph.N())
	if math.Abs(res.EPL-approx) > 1.5 {
		t.Errorf("EPL %v far from log_d approximation %v", res.EPL, approx)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	cfg := network.DefaultConfig()
	cfg.GraphSize = 400
	a := Evaluate(generate(t, cfg, nil, 11))
	b := Evaluate(generate(t, cfg, nil, 11))
	la, lb := a.AggregateLoad(), b.AggregateLoad()
	if la != lb {
		t.Errorf("same seed, different loads: %+v vs %+v", la, lb)
	}
}

// TestRandomConfigInvariantsProperty fuzzes configurations and checks the
// engine's conservation and sanity invariants on each.
func TestRandomConfigInvariantsProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, sizeRaw, csRaw, ttlRaw, degRaw uint8, strong, red bool) bool {
		size := 150 + int(sizeRaw)
		cs := 1 + int(csRaw)%15
		if red && cs < 2 {
			cs = 2
		}
		cfg := network.Config{
			GraphSize:    size,
			ClusterSize:  cs,
			Redundancy:   red,
			TTL:          int(ttlRaw) % 8,
			AvgOutdegree: 1 + float64(degRaw%5),
		}
		if strong {
			cfg.GraphType = network.Strong
		} else {
			cfg.GraphType = network.PowerLaw
			if n := cfg.NumClusters(); float64(n-1) < cfg.AvgOutdegree {
				cfg.GraphType = network.Strong
			}
		}
		inst, err := network.Generate(cfg, nil, stats.NewRNG(seed))
		if err != nil {
			return false
		}
		res := Evaluate(inst)
		agg := res.AggregateLoad()
		if relDiff(agg.InBps, agg.OutBps) > 1e-9 {
			return false
		}
		if agg.ProcHz < 0 || res.ResultsPerQuery < 0 {
			return false
		}
		if res.EPL < 0 || (cfg.TTL > 0 && res.EPL > float64(cfg.TTL)+1e-9) {
			return false
		}
		if res.MeanReachClusters < 1 || res.MeanReachClusters > float64(len(inst.Clusters))+1e-9 {
			return false
		}
		// Breakdown reconstructs the aggregate.
		bd := res.LoadBreakdown()
		return relDiff(bd.Total().TotalBps(), agg.TotalBps()) < 1e-9 &&
			relDiff(bd.Total().ProcHz, agg.ProcHz) < 1e-9
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
