package analysis

import (
	"math"
	"reflect"
	"testing"

	"spnet/internal/network"
)

func TestRunTrialsBasic(t *testing.T) {
	cfg := network.DefaultConfig()
	cfg.GraphSize = 500
	sum, err := RunTrials(cfg, nil, 4, 1)
	if err != nil {
		t.Fatalf("RunTrials: %v", err)
	}
	if sum.Trials != 4 {
		t.Errorf("Trials = %d, want 4", sum.Trials)
	}
	if sum.Aggregate.InBps.Mean <= 0 || sum.Aggregate.OutBps.Mean <= 0 || sum.Aggregate.ProcHz.Mean <= 0 {
		t.Errorf("aggregate means not positive: %+v", sum.Aggregate)
	}
	if sum.Aggregate.InBps.N != 4 {
		t.Errorf("summary sample count = %d", sum.Aggregate.InBps.N)
	}
	if sum.ResultsPerQuery.Mean <= 0 {
		t.Errorf("results mean = %v", sum.ResultsPerQuery.Mean)
	}
	if sum.EPL.Mean < 1 || sum.EPL.Mean > float64(cfg.TTL) {
		t.Errorf("EPL mean = %v outside [1, TTL]", sum.EPL.Mean)
	}
	// Aggregate in == out holds per trial, so means match too.
	if math.Abs(sum.Aggregate.InBps.Mean-sum.Aggregate.OutBps.Mean)/sum.Aggregate.InBps.Mean > 1e-9 {
		t.Error("mean aggregate in != out")
	}
	// Mean individual loads are far below aggregate.
	if sum.SuperPeer.InBps.Mean >= sum.Aggregate.InBps.Mean {
		t.Error("super-peer mean exceeds aggregate")
	}
	if sum.Client.InBps.Mean >= sum.SuperPeer.InBps.Mean {
		t.Error("client mean exceeds super-peer mean")
	}
}

func TestRunTrialsDeterministic(t *testing.T) {
	cfg := network.DefaultConfig()
	cfg.GraphSize = 300
	a, err := RunTrials(cfg, nil, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrials(cfg, nil, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Aggregate.InBps.Mean != b.Aggregate.InBps.Mean ||
		a.ResultsPerQuery.Mean != b.ResultsPerQuery.Mean {
		t.Error("same seed produced different trial summaries")
	}
	c, err := RunTrials(cfg, nil, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Aggregate.InBps.Mean == c.Aggregate.InBps.Mean {
		t.Error("different seeds produced identical summaries")
	}
}

func TestRunTrialsValidation(t *testing.T) {
	cfg := network.DefaultConfig()
	if _, err := RunTrials(cfg, nil, 0, 1); err == nil {
		t.Error("trials=0 accepted")
	}
	bad := cfg
	bad.ClusterSize = 0
	if _, err := RunTrials(bad, nil, 1, 1); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestLoadSummaryMean(t *testing.T) {
	cfg := network.DefaultConfig()
	cfg.GraphSize = 300
	sum, err := RunTrials(cfg, nil, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := sum.Aggregate.Mean()
	if m.InBps != sum.Aggregate.InBps.Mean || m.ProcHz != sum.Aggregate.ProcHz.Mean {
		t.Error("LoadSummary.Mean mismatch")
	}
}

func TestTrialVarianceIsModest(t *testing.T) {
	// Repeated trials of the same configuration should agree within a
	// reasonable confidence interval — the mean-value analysis is averaging
	// over instance randomness only.
	cfg := network.DefaultConfig()
	cfg.GraphSize = 1000
	sum, err := RunTrials(cfg, nil, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ci := sum.Aggregate.InBps.CI95 / sum.Aggregate.InBps.Mean; ci > 0.25 {
		t.Errorf("aggregate CI half-width is %.0f%% of the mean", ci*100)
	}
}

// TestRunTrialsDeterministicAcrossWorkers: the parallel pipeline's guarantee —
// the same seed produces a bit-identical summary at any worker count, because
// trial RNG streams are split before dispatch and the reduction runs in trial
// order.
func TestRunTrialsDeterministicAcrossWorkers(t *testing.T) {
	cfg := network.DefaultConfig()
	cfg.GraphSize = 400
	base, err := RunTrialsWorkers(cfg, nil, 5, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 0} {
		got, err := RunTrialsWorkers(cfg, nil, 5, 7, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d summary differs from serial:\nserial:   %+v\nparallel: %+v", w, base, got)
		}
	}
}
