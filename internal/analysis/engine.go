package analysis

import (
	"sync"

	"spnet/internal/cost"
	"spnet/internal/gnutella"
	"spnet/internal/metrics"
	"spnet/internal/network"
	"spnet/internal/routing"
)

// Result holds the evaluation of one network instance: per-node expected
// loads (eq. 1), expected results per query (eq. 2) and the traversal
// metrics the design rules depend on.
type Result struct {
	// Inst is the evaluated instance.
	Inst *network.Instance

	// ResultsPerQuery is E[R_S] (eq. 2) averaged over query sources,
	// weighted by each cluster's query rate.
	ResultsPerQuery float64
	// EPL is the expected path length: the expected number of hops a query
	// response message takes back to its source (Section 5.1, rule #3).
	EPL float64
	// MeanReachClusters is the average number of clusters a query reaches
	// (including the source cluster).
	MeanReachClusters float64
	// MeanReachPeers is the average number of peers covered by a query's
	// reach — the unit Section 5.2 specifies desired reach in.
	MeanReachPeers float64
	// QueryForwardsPerQuery is the expected number of query copies sent
	// over overlay edges per query (redundant copies included) — the
	// bandwidth knob routing strategies turn. For flood it equals the
	// Section 4.1 copy count; strategy evaluations scale it down.
	QueryForwardsPerQuery float64

	// Transfer, when set, is the analytical expectation for the content
	// transfer workload the caller pairs with this instance (PredictTransfer).
	// Evaluate never populates it: downloads are priced independently of the
	// query-path model and attached by callers that run both.
	Transfer *TransferPrediction

	spShared     []rawLoad   // per cluster: query-path load of the virtual super-peer (split across partners)
	spPerPartner []rawLoad   // per cluster: join/update load each partner bears in full
	clientBase   []rawLoad   // per cluster: per-client load excluding the join component
	clientJoin   [][]rawLoad // per cluster, per client: the join component
	respToSource []flow      // per cluster: total response flow for a query sourced there
	bd           bdAcc       // system-wide component attribution

	// Per-class super-peer byte rates (bytes/sec) mirroring spShared and
	// spPerPartner, attributed to the Table 2 taxonomy classes live nodes
	// meter. Accumulated additively alongside the rawLoad charges so the
	// existing float summation order — and thus determinism — is untouched.
	spSharedCls     []metrics.ByClass
	spPerPartnerCls []metrics.ByClass
}

// evaluator carries the working state of one evaluation.
type evaluator struct {
	inst *network.Instance
	res  *Result

	// fw is the routing strategy's mean-value forwarding model; nil means
	// flood, which takes the exact pre-strategy code paths (bit-identical
	// float sequences), including the clique closed form.
	fw *routing.Forwards

	// honest is the probability a non-source relay behaves honestly for a
	// given query: processes it over its index, responds, and forwards it,
	// instead of silently dropping it (adversarial freeloading). 1 is the
	// pre-adversary model; anything below routes through the probabilistic
	// reach path, with each relay's forwarding fraction and own response
	// flow scaled by honest.
	honest float64

	// Precomputed per-cluster quantities.
	users      []float64 // query-submitting users per cluster
	qWeight    []float64 // queries per second originated by the cluster
	clientFrac []float64 // fraction of the cluster's queries coming from clients
	own        []flow    // the cluster's own expected response (ProbResp, ExpAddrs, ExpResults)

	// Cost-model constants for the profile's expected query length.
	qBytes    float64
	sendQProc float64
	recvQProc float64

	// Rate-weighted accumulators for the traversal metrics.
	resultsNum, resultsDen float64
	eplNum, eplDen         float64
	reachClustersNum       float64
	reachPeersNum          float64
	fwdNum                 float64

	// Reusable BFS buffers (generic-graph path), leased from scratchPool so
	// concurrent evaluations on the worker pool never share state and
	// repeated evaluations don't reallocate.
	scratch *bfsScratch
}

// bfsScratch holds one evaluation's BFS working set. Pooled invariant: when a
// scratch is returned to the pool, every depth/parent entry is -1, every
// flowBuf entry is the zero flow, and order is empty — the same state the
// per-source reset loop in evalGraphQueries restores.
type bfsScratch struct {
	depth   []int32
	parent  []int32
	order   []int32
	flowBuf []flow
	// prob[v] is the probability a strategy-routed query reaches v; frac[v]
	// is the per-eligible-edge forwarding fraction at v. Pool invariant:
	// zero. Only touched when the evaluator carries a Forwards model.
	prob []float64
	frac []float64
}

var scratchPool = sync.Pool{New: func() any { return &bfsScratch{} }}

// getScratch leases a scratch sized for n clusters, preserving the pool
// invariant for the entries in use.
func getScratch(n int) *bfsScratch {
	s := scratchPool.Get().(*bfsScratch)
	if cap(s.depth) < n {
		s.depth = make([]int32, n)
		s.parent = make([]int32, n)
		s.flowBuf = make([]flow, n)
		s.prob = make([]float64, n)
		s.frac = make([]float64, n)
		s.order = make([]int32, 0, n)
		for i := range s.depth {
			s.depth[i] = -1
			s.parent[i] = -1
		}
		return s
	}
	s.depth = s.depth[:n]
	s.parent = s.parent[:n]
	s.flowBuf = s.flowBuf[:n]
	s.prob = s.prob[:n]
	s.frac = s.frac[:n]
	s.order = s.order[:0]
	return s
}

// Evaluate runs Steps 2–3 of the paper's evaluation model over one instance,
// producing expected loads for every node and the expected quality of
// results. The instance is treated as read-only.
func Evaluate(inst *network.Instance) *Result { return evaluate(inst, nil, 1) }

// EvaluateStrategy evaluates the instance under a routing strategy's
// mean-value forwarding model (routing.Forwards gives the expected number of
// query copies a source or relay emits at each eligible degree). A nil model
// is the flood strategy and makes EvaluateStrategy identical to Evaluate.
// With a model, reach becomes probabilistic: each BFS-tree node is reached
// with the product of the forwarding fractions along its path, and every
// query-path charge, response flow and traversal metric is weighted by that
// probability.
func EvaluateStrategy(inst *network.Instance, fw *routing.Forwards) *Result {
	return evaluate(inst, fw, 1)
}

// EvaluateAdversarial evaluates the instance with dishonest relays in the
// overlay: honest is the probability that a given non-source relay serves a
// query it receives — for a malicious fraction m of super-peers that each
// drop with probability d, honest = 1 - m·d. A dishonest relay contributes
// no local processing, no response flow, and forwards nothing, so reach
// decays multiplicatively with path length, which is exactly how freeloading
// hollows out recall in the simulator and the live overlay. honest = 1 (and
// a nil fw) reproduces Evaluate bit-identically; losses on the client access
// leg (Busy-lying or dropping one's own clients' queries) are an orthogonal
// closed form layered on by callers.
func EvaluateAdversarial(inst *network.Instance, fw *routing.Forwards, honest float64) *Result {
	if honest < 0 {
		honest = 0
	} else if honest > 1 {
		honest = 1
	}
	return evaluate(inst, fw, honest)
}

func evaluate(inst *network.Instance, fw *routing.Forwards, honest float64) *Result {
	n := len(inst.Clusters)
	e := &evaluator{
		inst:   inst,
		fw:     fw,
		honest: honest,
		res: &Result{
			Inst:            inst,
			spShared:        make([]rawLoad, n),
			spPerPartner:    make([]rawLoad, n),
			clientBase:      make([]rawLoad, n),
			clientJoin:      make([][]rawLoad, n),
			respToSource:    make([]flow, n),
			spSharedCls:     make([]metrics.ByClass, n),
			spPerPartnerCls: make([]metrics.ByClass, n),
		},
		users:      make([]float64, n),
		qWeight:    make([]float64, n),
		clientFrac: make([]float64, n),
		own:        make([]flow, n),
	}
	qRate := inst.Profile.Rates.QueryRate
	for v := range inst.Clusters {
		cl := &inst.Clusters[v]
		e.users[v] = float64(cl.Users())
		e.qWeight[v] = qRate * e.users[v]
		if cl.Users() > 0 {
			e.clientFrac[v] = float64(len(cl.Clients)) / e.users[v]
		}
		e.own[v] = flow{msgs: cl.ProbResp, addrs: cl.ExpAddrs, results: cl.ExpResults}
	}
	qb, sp := cost.SendQuery(inst.Profile.QueryLen)
	_, rp := cost.RecvQuery(inst.Profile.QueryLen)
	e.qBytes, e.sendQProc, e.recvQProc = float64(qb), float64(sp), float64(rp)

	// The clique closed form hard-codes flood propagation; strategy models
	// and adversarial relays route through the generic BFS path (Clique
	// implements VisitNeighbors).
	if inst.Graph.IsClique() && e.fw == nil && e.honest >= 1 {
		e.evalCliqueQueries()
	} else {
		e.evalGraphQueries()
	}
	e.evalClientLegs()
	e.evalJoins()
	e.evalUpdates()
	e.finalizeMetrics()
	return e.res
}

// respBytes returns the total wire bytes of a response flow.
func respBytes(f flow) float64 {
	return float64(gnutella.ResponseFixedLen)*f.msgs +
		float64(gnutella.ResponderRecordLen)*f.addrs +
		float64(gnutella.ResultRecordLen)*f.results
}

func sendRespProc(f flow) float64 {
	return cost.SendRespBase*f.msgs + cost.SendRespPerAddr*f.addrs + cost.SendRespPerResult*f.results
}

func recvRespProc(f flow) float64 {
	return cost.RecvRespBase*f.msgs + cost.RecvRespPerAddr*f.addrs + cost.RecvRespPerResult*f.results
}

// evalGraphQueries runs one BFS per source cluster over an explicit overlay
// and charges every query-path cost (Section 4.1, Step 2: the breadth-first
// traversal models propagation; responses travel up the predecessor tree).
func (e *evaluator) evalGraphQueries() {
	g := e.inst.Graph
	n := g.N()
	ttl := e.inst.Config.TTL
	e.scratch = getScratch(n)

	sp := e.res.spShared
	cls := e.res.spSharedCls
	for s := 0; s < n; s++ {
		w := e.qWeight[s]
		if w == 0 {
			// A cluster with no users sources no queries; its reach metrics
			// would also be unweighted, so skip entirely.
			continue
		}
		e.bfs(s, ttl)
		useFw := e.fw != nil || e.honest < 1
		if useFw {
			e.computeReachProbs(s, ttl)
		}

		// Query forwarding: every reached node u with depth < TTL forwards
		// to all neighbors except the edge the query arrived on. Copies
		// arriving at already-visited nodes are redundant: received, then
		// dropped (Section 5.1, rule #4). Under a strategy model each edge
		// carries the expected copy count prob[u]·frac[u] instead of a full
		// copy; the flood path performs no extra multiplications so its
		// float sequence is unchanged.
		for _, u32 := range e.scratch.order {
			u := int(u32)
			if int(e.scratch.depth[u]) >= ttl {
				continue // nodes at the TTL horizon do not forward
			}
			wf := w
			if useFw {
				wf = w * e.scratch.prob[u] * e.scratch.frac[u]
				if wf == 0 {
					continue
				}
			}
			par := e.scratch.parent[u]
			g.VisitNeighbors(u, func(nb int) bool {
				if int32(nb) == par && u != s {
					return true
				}
				sp[u].outBytes += wf * e.qBytes
				sp[u].procU += wf * e.sendQProc
				sp[u].msgs += wf
				cls[u].Add(metrics.ClassQuery, metrics.DirOut, wf*e.qBytes)
				sp[nb].inBytes += wf * e.qBytes
				sp[nb].procU += wf * e.recvQProc
				sp[nb].msgs += wf
				cls[nb].Add(metrics.ClassQuery, metrics.DirIn, wf*e.qBytes)
				e.res.bd.queryTransfer(wf, e.qBytes, e.sendQProc, e.recvQProc)
				e.fwdNum += wf
				return true
			})
		}

		// Every reached cluster processes the query over its index once
		// (under a strategy model: with the probability it is reached).
		for _, v32 := range e.scratch.order {
			v := int(v32)
			wp := w
			if useFw {
				wp = w * e.scratch.prob[v]
				if v != s {
					// A reached-but-dishonest relay neither processes nor
					// responds; its expected contribution scales by honest.
					wp *= e.honest
				}
			}
			pu := float64(cost.ProcessQuery(e.own[v].results))
			sp[v].procU += wp * pu
			e.res.bd.process(wp, pu)
			f := e.own[v]
			if useFw {
				p := e.scratch.prob[v]
				if v != s {
					p *= e.honest
				}
				f.msgs *= p
				f.addrs *= p
				f.results *= p
			}
			e.scratch.flowBuf[v] = f
		}

		// Responses travel up the BFS predecessor tree; iterating the BFS
		// order backwards visits children before parents, so each node's
		// flow is complete when it is charged.
		for i := len(e.scratch.order) - 1; i >= 1; i-- {
			v := int(e.scratch.order[i])
			f := e.scratch.flowBuf[v]
			if f.isZero() {
				continue
			}
			p := int(e.scratch.parent[v])
			b := respBytes(f)
			sp[v].outBytes += w * b
			sp[v].procU += w * sendRespProc(f)
			sp[v].msgs += w * f.msgs
			cls[v].Add(metrics.ClassResponse, metrics.DirOut, w*b)
			sp[p].inBytes += w * b
			sp[p].procU += w * recvRespProc(f)
			sp[p].msgs += w * f.msgs
			cls[p].Add(metrics.ClassResponse, metrics.DirIn, w*b)
			e.res.bd.respTransfer(w, b, sendRespProc(f), recvRespProc(f))
			e.scratch.flowBuf[p].add(f)
		}
		total := e.scratch.flowBuf[int(e.scratch.order[0])] // source: own + all relayed flows
		e.res.respToSource[s] = total

		// Traversal metrics.
		e.resultsNum += w * total.results
		e.resultsDen += w
		if useFw {
			var clustersReached, peers float64
			for _, v32 := range e.scratch.order {
				p := e.scratch.prob[v32]
				clustersReached += p
				peers += p * e.users[v32]
			}
			e.reachClustersNum += w * clustersReached
			e.reachPeersNum += w * peers
			for _, v32 := range e.scratch.order[1:] {
				v := int(v32)
				m := e.scratch.prob[v] * e.honest * e.own[v].msgs
				e.eplNum += w * float64(e.scratch.depth[v]) * m
				e.eplDen += w * m
			}
		} else {
			e.reachClustersNum += w * float64(len(e.scratch.order))
			var peers float64
			for _, v32 := range e.scratch.order {
				peers += e.users[v32]
			}
			e.reachPeersNum += w * peers
			for _, v32 := range e.scratch.order[1:] {
				v := int(v32)
				e.eplNum += w * float64(e.scratch.depth[v]) * e.own[v].msgs
				e.eplDen += w * e.own[v].msgs
			}
		}

		// Reset the touched buffers for the next source.
		for _, v32 := range e.scratch.order {
			e.scratch.depth[v32] = -1
			e.scratch.parent[v32] = -1
			e.scratch.flowBuf[v32] = flow{}
			e.scratch.prob[v32] = 0
			e.scratch.frac[v32] = 0
		}
	}
	// The per-source resets restored the pool invariant; return the lease.
	e.scratch.order = e.scratch.order[:0]
	scratchPool.Put(e.scratch)
	e.scratch = nil
}

// computeReachProbs fills the scratch prob/frac buffers for one source under
// the strategy forwarding model. frac[u] is the expected fraction of u's
// eligible edges (all neighbors minus the arrival edge) that carry a copy:
// Forwards(eligible)/eligible, clamped to [0,1] — the strategy is assumed to
// pick eligible edges uniformly, so each BFS-tree child is reached from its
// parent with probability frac[parent]. prob multiplies down the tree; BFS
// order visits parents first, so one pass suffices.
func (e *evaluator) computeReachProbs(s, ttl int) {
	g := e.inst.Graph
	pr, fr := e.scratch.prob, e.scratch.frac
	for _, u32 := range e.scratch.order {
		u := int(u32)
		if u == s {
			pr[u] = 1
		} else {
			p := int(e.scratch.parent[u])
			pr[u] = pr[p] * fr[p]
		}
		if int(e.scratch.depth[u]) >= ttl {
			continue // horizon nodes forward nothing: frac stays 0
		}
		eligible := g.Degree(u)
		if u != s {
			eligible--
		}
		if eligible <= 0 {
			continue
		}
		f := 1.0 // flood: every eligible edge carries a copy
		if e.fw != nil {
			var exp float64
			if u == s {
				exp = e.fw.Source(eligible)
			} else {
				exp = e.fw.Relay(eligible)
			}
			f = exp / float64(eligible)
			if f < 0 {
				f = 0
			} else if f > 1 {
				f = 1
			}
		}
		if u != s {
			// A dishonest relay forwards nothing; the source is the client's
			// own access partner, modeled honest here (access-leg losses are
			// the caller's closed form).
			f *= e.honest
		}
		fr[u] = f
	}
}

// bfs fills the evaluator's reusable depth/parent/order buffers.
func (e *evaluator) bfs(source, ttl int) {
	e.scratch.order = e.scratch.order[:0]
	e.scratch.depth[source] = 0
	e.scratch.parent[source] = -1
	e.scratch.order = append(e.scratch.order, int32(source))
	if ttl == 0 {
		return
	}
	g := e.inst.Graph
	head := 0
	for head < len(e.scratch.order) {
		u := int(e.scratch.order[head])
		head++
		d := e.scratch.depth[u]
		if int(d) >= ttl {
			break // BFS order is depth-monotone; nothing shallower remains
		}
		g.VisitNeighbors(u, func(nb int) bool {
			if e.scratch.depth[nb] == -1 {
				e.scratch.depth[nb] = d + 1
				e.scratch.parent[nb] = int32(u)
				e.scratch.order = append(e.scratch.order, int32(nb))
			}
			return true
		})
	}
}

// evalCliqueQueries is the closed-form fast path for strongly connected
// overlays: every cluster is one hop from every other, responses travel
// directly to the source, and for TTL >= 2 every node forwards one redundant
// copy to every node other than itself and the source.
func (e *evaluator) evalCliqueQueries() {
	n := e.inst.Graph.N()
	ttl := e.inst.Config.TTL
	sp := e.res.spShared
	cls := e.res.spSharedCls

	var totFlow flow
	var totW, totUsers float64
	for v := 0; v < n; v++ {
		totFlow.add(e.own[v])
		totW += e.qWeight[v]
		totUsers += e.users[v]
	}
	flooding := ttl >= 1 && n > 1
	dupCopies := 0.0
	if ttl >= 2 && n >= 3 {
		dupCopies = float64(n - 2)
	}

	for v := 0; v < n; v++ {
		w := e.qWeight[v]
		wr := totW - w // queries per second arriving from remote sources

		if !flooding {
			// Degenerate case: a single cluster or TTL 0 — queries stay home.
			sp[v].procU += w * float64(cost.ProcessQuery(e.own[v].results))
			e.res.bd.process(w, float64(cost.ProcessQuery(e.own[v].results)))
			e.res.respToSource[v] = e.own[v]
			if w > 0 {
				e.resultsNum += w * e.own[v].results
				e.resultsDen += w
				e.reachClustersNum += w
				e.reachPeersNum += w * e.users[v]
			}
			continue
		}

		// As source: flood to the n-1 neighbors, receive every remote
		// cluster's response directly.
		rem := totFlow
		rem.msgs -= e.own[v].msgs
		rem.addrs -= e.own[v].addrs
		rem.results -= e.own[v].results
		sp[v].outBytes += w * float64(n-1) * e.qBytes
		sp[v].procU += w * float64(n-1) * e.sendQProc
		sp[v].msgs += w * float64(n-1)
		cls[v].Add(metrics.ClassQuery, metrics.DirOut, w*float64(n-1)*e.qBytes)
		e.fwdNum += w * float64(n-1)
		sp[v].inBytes += w * respBytes(rem)
		sp[v].procU += w * recvRespProc(rem)
		sp[v].msgs += w * rem.msgs
		cls[v].Add(metrics.ClassResponse, metrics.DirIn, w*respBytes(rem))
		e.res.respToSource[v] = totFlow
		e.res.bd.queryTransfer(w*float64(n-1), e.qBytes, e.sendQProc, e.recvQProc)

		// Every cluster processes every query in the system exactly once.
		sp[v].procU += totW * float64(cost.ProcessQuery(e.own[v].results))
		e.res.bd.process(totW, float64(cost.ProcessQuery(e.own[v].results)))

		// As responder for remote queries: receive the primary copy plus
		// any redundant copies, respond directly to the source, and (for
		// TTL >= 2) forward one redundant copy to everyone else.
		copies := 1 + dupCopies
		sp[v].inBytes += wr * copies * e.qBytes
		sp[v].procU += wr * copies * e.recvQProc
		sp[v].msgs += wr * copies
		cls[v].Add(metrics.ClassQuery, metrics.DirIn, wr*copies*e.qBytes)
		sp[v].outBytes += wr * respBytes(e.own[v])
		sp[v].procU += wr * sendRespProc(e.own[v])
		sp[v].msgs += wr * e.own[v].msgs
		cls[v].Add(metrics.ClassResponse, metrics.DirOut, wr*respBytes(e.own[v]))
		e.res.bd.respTransfer(wr, respBytes(e.own[v]), sendRespProc(e.own[v]), recvRespProc(e.own[v]))
		if dupCopies > 0 {
			sp[v].outBytes += wr * dupCopies * e.qBytes
			sp[v].procU += wr * dupCopies * e.sendQProc
			sp[v].msgs += wr * dupCopies
			cls[v].Add(metrics.ClassQuery, metrics.DirOut, wr*dupCopies*e.qBytes)
			e.res.bd.queryTransfer(wr*dupCopies, e.qBytes, e.sendQProc, e.recvQProc)
			e.fwdNum += wr * dupCopies
		}

		// Traversal metrics: full reach, all responses one hop out.
		if w > 0 {
			e.resultsNum += w * totFlow.results
			e.resultsDen += w
			e.reachClustersNum += w * float64(n)
			e.reachPeersNum += w * totUsers
			e.eplNum += w * rem.msgs // every message travels exactly 1 hop
			e.eplDen += w * rem.msgs
		}
	}
}

// evalClientLegs charges the per-query interactions between clients and
// their super-peer: the client submits each query to one partner and
// receives every Response message back; the super-peer side (receive query,
// forward responses) is charged to the cluster here too.
func (e *evaluator) evalClientLegs() {
	qRate := e.inst.Profile.Rates.QueryRate
	sp := e.res.spShared
	for v := range e.inst.Clusters {
		cl := &e.inst.Clusters[v]
		total := e.res.respToSource[v]
		b := respBytes(total)

		// Super-peer side, per query sourced by one of its clients.
		wc := qRate * float64(len(cl.Clients))
		if wc > 0 {
			sp[v].inBytes += wc * e.qBytes
			sp[v].procU += wc * e.recvQProc
			sp[v].msgs += wc
			sp[v].outBytes += wc * b
			sp[v].procU += wc * sendRespProc(total)
			sp[v].msgs += wc * total.msgs
			e.res.spSharedCls[v].Add(metrics.ClassQuery, metrics.DirIn, wc*e.qBytes)
			e.res.spSharedCls[v].Add(metrics.ClassResponse, metrics.DirOut, wc*b)
			e.res.bd.queryTransfer(wc, e.qBytes, e.sendQProc, e.recvQProc)
			e.res.bd.respTransfer(wc, b, sendRespProc(total), recvRespProc(total))
		}

		// Client side, identical for every client of the cluster.
		base := &e.res.clientBase[v]
		base.outBytes += qRate * e.qBytes
		base.procU += qRate * e.sendQProc
		base.msgs += qRate
		base.inBytes += qRate * b
		base.procU += qRate * recvRespProc(total)
		base.msgs += qRate * total.msgs
	}
}

// evalJoins charges client joins (metadata shipped to every partner;
// Section 3.2) and the super-peers' own collection indexing. Join rate is
// per node: the inverse of the node's session lifespan.
func (e *evaluator) evalJoins() {
	partners := e.inst.Config.Partners()
	for v := range e.inst.Clusters {
		cl := &e.inst.Clusters[v]
		pp := &e.res.spPerPartner[v]
		e.res.clientJoin[v] = make([]rawLoad, len(cl.Clients))

		for i, c := range cl.Clients {
			jr := 1 / c.Lifespan
			jb, jpS := cost.SendJoin(c.Files)
			_, jpR := cost.RecvJoin(c.Files)

			// Client side: one Join per partner.
			cj := &e.res.clientJoin[v][i]
			k := float64(partners)
			cj.outBytes += jr * k * float64(jb)
			cj.procU += jr * k * float64(jpS)
			cj.msgs += jr * k

			// Each partner receives and indexes the full metadata.
			pp.inBytes += jr * float64(jb)
			pp.procU += jr * (float64(jpR) + float64(cost.ProcessJoin(c.Files)))
			pp.msgs += jr
			e.res.spPerPartnerCls[v].Add(metrics.ClassJoin, metrics.DirIn, jr*float64(jb))
			e.res.bd.join(2*jr*k*float64(jb),
				jr*k*(float64(jpS)+float64(jpR)+float64(cost.ProcessJoin(c.Files))))
		}

		// The super-peers' own collections: each partner indexes its own
		// files locally and, with k-redundancy, ships them to its k-1
		// co-partners and indexes each co-partner's collection in turn. The
		// k partners' loads are averaged into the per-partner accumulator.
		k := float64(partners)
		var inB, outB, proc, msgs float64
		for _, self := range cl.Partners {
			js := 1 / self.Lifespan
			sb, spr := cost.SendJoin(self.Files)
			_, rpr := cost.RecvJoin(self.Files)
			// Own indexing plus (k-1) sends of the own collection.
			proc += js * ((k-1)*float64(spr) + float64(cost.ProcessJoin(self.Files)))
			outB += js * (k - 1) * float64(sb)
			msgs += js * (k - 1)
			// Each of the other k-1 partners receives and indexes it.
			inB += js * (k - 1) * float64(sb)
			proc += js * (k - 1) * (float64(rpr) + float64(cost.ProcessJoin(self.Files)))
			msgs += js * (k - 1)
		}
		pp.inBytes += inB / k
		pp.outBytes += outB / k
		pp.procU += proc / k
		pp.msgs += msgs / k
		e.res.spPerPartnerCls[v].Add(metrics.ClassJoin, metrics.DirIn, inB/k)
		e.res.spPerPartnerCls[v].Add(metrics.ClassJoin, metrics.DirOut, outB/k)
		// inB/outB/proc are totals across the k partners, which is exactly
		// this cluster's aggregate contribution.
		e.res.bd.join(inB+outB, proc)
	}
}

// evalUpdates charges collection updates: each client sends every update to
// every partner; partners apply it to their index (Section 3.2).
func (e *evaluator) evalUpdates() {
	uRate := e.inst.Profile.Rates.UpdateRate
	if uRate == 0 {
		return
	}
	partners := e.inst.Config.Partners()
	ub, upS := cost.SendUpdateCost()
	_, upR := cost.RecvUpdateCost()
	upP := cost.ProcessUpdateCost()
	for v := range e.inst.Clusters {
		cl := &e.inst.Clusters[v]
		pp := &e.res.spPerPartner[v]

		// Client side (same for every client).
		base := &e.res.clientBase[v]
		k := float64(partners)
		base.outBytes += uRate * k * float64(ub)
		base.procU += uRate * k * float64(upS)
		base.msgs += uRate * k
		nc := float64(len(cl.Clients))
		e.res.bd.update(2*uRate*k*float64(ub)*nc,
			uRate*k*nc*(float64(upS)+float64(upR)+float64(upP)))

		// Each partner receives every client's updates in full.
		wc := uRate * float64(len(cl.Clients))
		pp.inBytes += wc * float64(ub)
		pp.procU += wc * (float64(upR) + float64(upP))
		pp.msgs += wc
		e.res.spPerPartnerCls[v].Add(metrics.ClassUpdate, metrics.DirIn, wc*float64(ub))

		// Partners' own updates: applied locally; with k-redundancy also
		// shipped to the k-1 co-partners (symmetric, so per-partner load is
		// k-1 sends plus k-1 receives).
		pp.procU += uRate * float64(upP)
		e.res.bd.update(0, uRate*float64(upP)*k)
		if co := float64(partners - 1); co > 0 {
			pp.outBytes += uRate * co * float64(ub)
			pp.inBytes += uRate * co * float64(ub)
			pp.procU += uRate*co*float64(upS) + uRate*co*(float64(upR)+float64(upP))
			pp.msgs += 2 * co * uRate
			e.res.spPerPartnerCls[v].Add(metrics.ClassUpdate, metrics.DirOut, uRate*co*float64(ub))
			e.res.spPerPartnerCls[v].Add(metrics.ClassUpdate, metrics.DirIn, uRate*co*float64(ub))
			e.res.bd.update(2*uRate*co*float64(ub)*k,
				uRate*co*k*(float64(upS)+float64(upR)+float64(upP)))
		}
	}
}

// finalizeMetrics turns the rate-weighted accumulators into the Result's
// summary metrics.
func (e *evaluator) finalizeMetrics() {
	if e.resultsDen > 0 {
		e.res.ResultsPerQuery = e.resultsNum / e.resultsDen
		e.res.MeanReachClusters = e.reachClustersNum / e.resultsDen
		e.res.MeanReachPeers = e.reachPeersNum / e.resultsDen
		e.res.QueryForwardsPerQuery = e.fwdNum / e.resultsDen
	}
	if e.eplDen > 0 {
		e.res.EPL = e.eplNum / e.eplDen
	}
}
