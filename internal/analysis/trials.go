package analysis

import (
	"fmt"

	"spnet/internal/network"
	"spnet/internal/parallel"
	"spnet/internal/stats"
	"spnet/internal/workload"
)

// LoadSummary summarizes a Load metric over repeated trials, one Summary per
// resource type.
type LoadSummary struct {
	InBps  stats.Summary
	OutBps stats.Summary
	ProcHz stats.Summary
}

// Mean returns the trial-mean load.
func (s LoadSummary) Mean() Load {
	return Load{InBps: s.InBps.Mean, OutBps: s.OutBps.Mean, ProcHz: s.ProcHz.Mean}
}

// TrialSummary is Step 4's output: E[E[M | I]] = E[M] with 95% confidence
// intervals, over several independently generated instances of one
// configuration.
type TrialSummary struct {
	Config network.Config
	Trials int

	// Aggregate is the aggregate load over all nodes (eq. 4).
	Aggregate LoadSummary
	// SuperPeer is the mean individual super-peer (partner) load (eq. 3).
	SuperPeer LoadSummary
	// Client is the mean individual client load (eq. 3).
	Client LoadSummary

	ResultsPerQuery stats.Summary
	EPL             stats.Summary
	ReachClusters   stats.Summary
	ReachPeers      stats.Summary
}

// trialMetrics are the per-trial scalars RunTrials summarizes.
type trialMetrics struct {
	agg, sp, cl               Load
	results, epl              float64
	reachClusters, reachPeers float64
}

// RunTrials generates `trials` independent instances of cfg (profile nil
// selects the default workload), evaluates each, and summarizes the results
// with 95% confidence intervals. Trial t uses an RNG stream derived from
// (seed, t), so individual trials are reproducible regardless of order.
// Trials are evaluated in parallel on GOMAXPROCS workers; see
// RunTrialsWorkers for an explicit worker count.
func RunTrials(cfg network.Config, prof *workload.Profile, trials int, seed uint64) (*TrialSummary, error) {
	return RunTrialsWorkers(cfg, prof, trials, seed, 0)
}

// RunTrialsWorkers is RunTrials with an explicit worker count (0 =
// GOMAXPROCS). Each trial is an independent task keyed by its pre-split RNG
// stream and the summaries accumulate in trial order, so the output is
// bit-identical to the serial path (workers = 1) at any worker count.
func RunTrialsWorkers(cfg network.Config, prof *workload.Profile, trials int, seed uint64, workers int) (*TrialSummary, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("analysis: trials = %d, want > 0", trials)
	}
	// Split the per-trial streams sequentially: Split advances the root
	// generator, so stream assignment must not depend on scheduling.
	root := stats.NewRNG(seed)
	rngs := make([]*stats.RNG, trials)
	for t := range rngs {
		rngs[t] = root.Split(uint64(t))
	}
	mets, err := parallel.Map(workers, trials, func(t int) (trialMetrics, error) {
		inst, err := network.Generate(cfg, prof, rngs[t])
		if err != nil {
			return trialMetrics{}, fmt.Errorf("analysis: trial %d: %w", t, err)
		}
		res := Evaluate(inst)
		return trialMetrics{
			agg:           res.AggregateLoad(),
			sp:            res.MeanSuperPeerLoad(),
			cl:            res.MeanClientLoad(),
			results:       res.ResultsPerQuery,
			epl:           res.EPL,
			reachClusters: res.MeanReachClusters,
			reachPeers:    res.MeanReachPeers,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	var (
		aggIn, aggOut, aggProc    []float64
		spIn, spOut, spProc       []float64
		clIn, clOut, clProc       []float64
		results, epl              []float64
		reachClusters, reachPeers []float64
	)
	for _, m := range mets {
		aggIn = append(aggIn, m.agg.InBps)
		aggOut = append(aggOut, m.agg.OutBps)
		aggProc = append(aggProc, m.agg.ProcHz)

		spIn = append(spIn, m.sp.InBps)
		spOut = append(spOut, m.sp.OutBps)
		spProc = append(spProc, m.sp.ProcHz)

		clIn = append(clIn, m.cl.InBps)
		clOut = append(clOut, m.cl.OutBps)
		clProc = append(clProc, m.cl.ProcHz)

		results = append(results, m.results)
		epl = append(epl, m.epl)
		reachClusters = append(reachClusters, m.reachClusters)
		reachPeers = append(reachPeers, m.reachPeers)
	}
	return &TrialSummary{
		Config: cfg,
		Trials: trials,
		Aggregate: LoadSummary{
			InBps:  stats.Summarize(aggIn),
			OutBps: stats.Summarize(aggOut),
			ProcHz: stats.Summarize(aggProc),
		},
		SuperPeer: LoadSummary{
			InBps:  stats.Summarize(spIn),
			OutBps: stats.Summarize(spOut),
			ProcHz: stats.Summarize(spProc),
		},
		Client: LoadSummary{
			InBps:  stats.Summarize(clIn),
			OutBps: stats.Summarize(clOut),
			ProcHz: stats.Summarize(clProc),
		},
		ResultsPerQuery: stats.Summarize(results),
		EPL:             stats.Summarize(epl),
		ReachClusters:   stats.Summarize(reachClusters),
		ReachPeers:      stats.Summarize(reachPeers),
	}, nil
}
