package analysis

import (
	"fmt"

	"spnet/internal/network"
	"spnet/internal/stats"
	"spnet/internal/workload"
)

// LoadSummary summarizes a Load metric over repeated trials, one Summary per
// resource type.
type LoadSummary struct {
	InBps  stats.Summary
	OutBps stats.Summary
	ProcHz stats.Summary
}

// Mean returns the trial-mean load.
func (s LoadSummary) Mean() Load {
	return Load{InBps: s.InBps.Mean, OutBps: s.OutBps.Mean, ProcHz: s.ProcHz.Mean}
}

// TrialSummary is Step 4's output: E[E[M | I]] = E[M] with 95% confidence
// intervals, over several independently generated instances of one
// configuration.
type TrialSummary struct {
	Config network.Config
	Trials int

	// Aggregate is the aggregate load over all nodes (eq. 4).
	Aggregate LoadSummary
	// SuperPeer is the mean individual super-peer (partner) load (eq. 3).
	SuperPeer LoadSummary
	// Client is the mean individual client load (eq. 3).
	Client LoadSummary

	ResultsPerQuery stats.Summary
	EPL             stats.Summary
	ReachClusters   stats.Summary
	ReachPeers      stats.Summary
}

// RunTrials generates `trials` independent instances of cfg (profile nil
// selects the default workload), evaluates each, and summarizes the results
// with 95% confidence intervals. Trial t uses an RNG stream derived from
// (seed, t), so individual trials are reproducible regardless of order.
func RunTrials(cfg network.Config, prof *workload.Profile, trials int, seed uint64) (*TrialSummary, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("analysis: trials = %d, want > 0", trials)
	}
	var (
		aggIn, aggOut, aggProc    []float64
		spIn, spOut, spProc       []float64
		clIn, clOut, clProc       []float64
		results, epl              []float64
		reachClusters, reachPeers []float64
	)
	root := stats.NewRNG(seed)
	for t := 0; t < trials; t++ {
		inst, err := network.Generate(cfg, prof, root.Split(uint64(t)))
		if err != nil {
			return nil, fmt.Errorf("analysis: trial %d: %w", t, err)
		}
		res := Evaluate(inst)

		agg := res.AggregateLoad()
		aggIn = append(aggIn, agg.InBps)
		aggOut = append(aggOut, agg.OutBps)
		aggProc = append(aggProc, agg.ProcHz)

		spl := res.MeanSuperPeerLoad()
		spIn = append(spIn, spl.InBps)
		spOut = append(spOut, spl.OutBps)
		spProc = append(spProc, spl.ProcHz)

		cll := res.MeanClientLoad()
		clIn = append(clIn, cll.InBps)
		clOut = append(clOut, cll.OutBps)
		clProc = append(clProc, cll.ProcHz)

		results = append(results, res.ResultsPerQuery)
		epl = append(epl, res.EPL)
		reachClusters = append(reachClusters, res.MeanReachClusters)
		reachPeers = append(reachPeers, res.MeanReachPeers)
	}
	return &TrialSummary{
		Config: cfg,
		Trials: trials,
		Aggregate: LoadSummary{
			InBps:  stats.Summarize(aggIn),
			OutBps: stats.Summarize(aggOut),
			ProcHz: stats.Summarize(aggProc),
		},
		SuperPeer: LoadSummary{
			InBps:  stats.Summarize(spIn),
			OutBps: stats.Summarize(spOut),
			ProcHz: stats.Summarize(spProc),
		},
		Client: LoadSummary{
			InBps:  stats.Summarize(clIn),
			OutBps: stats.Summarize(clOut),
			ProcHz: stats.Summarize(clProc),
		},
		ResultsPerQuery: stats.Summarize(results),
		EPL:             stats.Summarize(epl),
		ReachClusters:   stats.Summarize(reachClusters),
		ReachPeers:      stats.Summarize(reachPeers),
	}, nil
}
