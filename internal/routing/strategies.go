package routing

import (
	"fmt"
	"strconv"
	"strings"
)

// Flood is the paper's protocol: forward to every eligible neighbor. It keeps
// no state, consumes no randomness, and emits candidates in their given
// order, so hosts that previously iterated neighbors directly behave
// bit-identically when flood is selected.
type Flood struct{}

// NewFlood returns the flood strategy.
func NewFlood() Flood { return Flood{} }

// Name implements Strategy.
func (Flood) Name() string { return "flood" }

// Select implements Strategy: every candidate, in order.
func (Flood) Select(dst []int, _ Query, cands []Candidate, _ *NodeState) []int {
	for i := range cands {
		dst = append(dst, i)
	}
	return dst
}

// RandomWalk forwards along k random edges at the source and one random edge
// per arriving walker at relays: k independent walkers of bounded length TTL.
type RandomWalk struct{ k int }

// DefaultWalkers is the walker count of "randomwalk" with no explicit :k.
const DefaultWalkers = 2

// NewRandomWalk returns a k-walker random-walk strategy (k < 1 is clamped
// to 1).
func NewRandomWalk(k int) RandomWalk {
	if k < 1 {
		k = 1
	}
	return RandomWalk{k: k}
}

// Walkers returns k.
func (s RandomWalk) Walkers() int { return s.k }

// Name implements Strategy.
func (s RandomWalk) Name() string {
	if s.k == DefaultWalkers {
		return "randomwalk"
	}
	return "randomwalk:" + strconv.Itoa(s.k)
}

// Select implements Strategy: k distinct uniform picks at the source, one at
// a relay, drawn from ns's RNG.
func (s RandomWalk) Select(dst []int, q Query, cands []Candidate, ns *NodeState) []int {
	n := len(cands)
	if n == 0 {
		return dst
	}
	k := 1
	if q.Hops == 0 {
		k = s.k
	}
	if k >= n {
		for i := 0; i < n; i++ {
			dst = append(dst, i)
		}
		return dst
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	idx := ns.scratch[:0]
	for i := 0; i < n; i++ {
		idx = append(idx, i)
	}
	ns.scratch = idx
	// Partial Fisher–Yates: the first k slots become a uniform k-subset.
	for j := 0; j < k; j++ {
		swap := j + ns.rng.Intn(n-j)
		idx[j], idx[swap] = idx[swap], idx[j]
		dst = append(dst, idx[j])
	}
	return dst
}

// RoutingIndex forwards a query only to neighbors whose advertised term
// summary contains every query term — Crespo & Garcia-Molina's routing
// indices specialized to term sets. Matching is conservative: a neighbor with
// no summary yet, and any query without terms, is treated as matching, so the
// strategy can only over-forward, never lose results a flood would find (on
// acyclic overlays; cycles can additionally retain stale terms, which again
// only over-forwards).
type RoutingIndex struct{}

// NewRoutingIndex returns the routing-index strategy.
func NewRoutingIndex() RoutingIndex { return RoutingIndex{} }

// Name implements Strategy.
func (RoutingIndex) Name() string { return "routingindex" }

// usesSummaries marks the strategy for UsesSummaries.
func (RoutingIndex) usesSummaries() {}

// Select implements Strategy.
func (RoutingIndex) Select(dst []int, q Query, cands []Candidate, ns *NodeState) []int {
	if len(q.Terms) == 0 {
		for i := range cands {
			dst = append(dst, i)
		}
		return dst
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	for i, c := range cands {
		st := ns.nbrs[c.ID]
		if st == nil || st.summary == nil {
			dst = append(dst, i) // no summary yet: assume reachable
			continue
		}
		match := true
		for _, t := range q.Terms {
			if _, ok := st.summary[t]; !ok {
				match = false
				break
			}
		}
		if match {
			dst = append(dst, i)
		}
	}
	return dst
}

const (
	// learnedThreshold is the per-term success-rate floor: a neighbor whose
	// best Laplace-smoothed hit rate over the query's terms is at or below
	// it is pruned. (hits+1)/(forwards+2) crosses 0.2 after three fruitless
	// forwards of a term.
	learnedThreshold = 0.2
	// learnedExplore is the probability a pruned neighbor is forwarded to
	// anyway, so the score can recover when content appears behind it.
	learnedExplore = 0.05
)

// Learned scores each neighbor×term by Laplace-smoothed hit history,
// (hits+1)/(forwards+2), and forwards a query to the neighbors whose best
// score over the query's terms clears a threshold. Unseen terms score 0.5, so
// a new neighbor is explored before it can be pruned; pruned neighbors are
// retried with a small exploration probability.
type Learned struct{}

// NewLearned returns the hit-history strategy.
func NewLearned() Learned { return Learned{} }

// Name implements Strategy.
func (Learned) Name() string { return "learned" }

// learnsHits marks the strategy for Learns.
func (Learned) learnsHits() {}

// Select implements Strategy.
func (Learned) Select(dst []int, q Query, cands []Candidate, ns *NodeState) []int {
	if len(q.Terms) == 0 {
		for i := range cands {
			dst = append(dst, i)
		}
		return dst
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	for i, c := range cands {
		st := ns.nbrs[c.ID]
		best := 0.0
		for _, t := range q.Terms {
			var f, h float64
			if st != nil {
				f, h = st.forwards[t], st.hits[t]
			}
			if score := (h + 1) / (f + 2); score > best {
				best = score
			}
		}
		if best > learnedThreshold || ns.rng.Float64() < learnedExplore {
			dst = append(dst, i)
		}
	}
	return dst
}

// UsesSummaries reports whether the strategy routes on per-neighbor content
// summaries, i.e. whether the host must build and propagate them.
func UsesSummaries(s Strategy) bool {
	_, ok := s.(interface{ usesSummaries() })
	return ok
}

// Learns reports whether the strategy consumes forward/hit history, i.e.
// whether the host must call RecordForward and RecordHit.
func Learns(s Strategy) bool {
	_, ok := s.(interface{ learnsHits() })
	return ok
}

// Names lists the accepted strategy specs for flag help.
func Names() []string {
	return []string{"flood", "randomwalk[:k]", "routingindex", "learned"}
}

// Parse resolves a strategy spec — "flood", "randomwalk", "randomwalk:k",
// "routingindex" or "learned" — to a Strategy.
func Parse(spec string) (Strategy, error) {
	name, arg, hasArg := strings.Cut(spec, ":")
	switch name {
	case "flood":
		if hasArg {
			return nil, fmt.Errorf("routing: flood takes no argument (got %q)", spec)
		}
		return NewFlood(), nil
	case "randomwalk":
		k := DefaultWalkers
		if hasArg {
			v, err := strconv.Atoi(arg)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("routing: bad walker count in %q", spec)
			}
			k = v
		}
		return NewRandomWalk(k), nil
	case "routingindex":
		if hasArg {
			return nil, fmt.Errorf("routing: routingindex takes no argument (got %q)", spec)
		}
		return NewRoutingIndex(), nil
	case "learned":
		if hasArg {
			return nil, fmt.Errorf("routing: learned takes no argument (got %q)", spec)
		}
		return NewLearned(), nil
	}
	return nil, fmt.Errorf("routing: unknown strategy %q (known: %s)", spec, strings.Join(Names(), ", "))
}
