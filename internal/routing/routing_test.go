package routing

import (
	"fmt"
	"reflect"
	"testing"

	"spnet/internal/stats"
)

// hasTerm reports whether neighbor id's summary contains term (test helper).
func (ns *NodeState) hasTerm(id int, term string) bool {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	st := ns.nbrs[id]
	if st == nil || st.summary == nil {
		return false
	}
	_, ok := st.summary[term]
	return ok
}

func cands(ids ...int) []Candidate {
	out := make([]Candidate, len(ids))
	for i, id := range ids {
		out[i] = Candidate{ID: id}
	}
	return out
}

func TestFloodSelectsAllInOrder(t *testing.T) {
	s := NewFlood()
	got := s.Select(nil, Query{TTL: 3}, cands(7, 3, 9), nil)
	if want := []int{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("flood Select = %v, want %v", got, want)
	}
	if got := s.Select(nil, Query{}, nil, nil); len(got) != 0 {
		t.Fatalf("flood Select on empty candidates = %v, want empty", got)
	}
}

func TestRandomWalkCounts(t *testing.T) {
	ns := NewNodeState(stats.NewRNG(1))
	s := NewRandomWalk(2)
	// Source: k distinct picks.
	got := s.Select(nil, Query{Hops: 0, TTL: 4}, cands(0, 1, 2, 3, 4), ns)
	if len(got) != 2 || got[0] == got[1] {
		t.Fatalf("source Select = %v, want 2 distinct indices", got)
	}
	for _, i := range got {
		if i < 0 || i >= 5 {
			t.Fatalf("source Select index %d out of range", i)
		}
	}
	// Relay: one pick regardless of k.
	if got := s.Select(nil, Query{Hops: 2, TTL: 2}, cands(0, 1, 2), ns); len(got) != 1 {
		t.Fatalf("relay Select = %v, want 1 index", got)
	}
	// k >= n degrades to flood.
	if got := s.Select(nil, Query{Hops: 0}, cands(8, 9), ns); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("k>=n Select = %v, want [0 1]", got)
	}
}

func TestRandomWalkDeterministicPerSeed(t *testing.T) {
	q := Query{Hops: 0, TTL: 4}
	run := func() []int {
		ns := NewNodeState(stats.NewRNG(42))
		s := NewRandomWalk(3)
		var all []int
		for i := 0; i < 10; i++ {
			all = s.Select(all, q, cands(0, 1, 2, 3, 4, 5, 6), ns)
		}
		return all
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different selections:\n%v\n%v", a, b)
	}
}

func TestRoutingIndexMatching(t *testing.T) {
	ns := NewNodeState(stats.NewRNG(1))
	s := NewRoutingIndex()
	ns.SetSummary(10, []string{"jazz", "blues"})
	ns.SetSummary(11, []string{"rock"})
	// Neighbor 12 never advertises: conservative match.
	cs := cands(10, 11, 12)

	if got := s.Select(nil, Query{Terms: []string{"jazz"}}, cs, ns); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf(`Select "jazz" = %v, want [0 2]`, got)
	}
	// Conjunctive: all terms must be present.
	if got := s.Select(nil, Query{Terms: []string{"jazz", "rock"}}, cs, ns); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf(`Select "jazz rock" = %v, want [2]`, got)
	}
	// Term-less queries flood.
	if got := s.Select(nil, Query{}, cs, ns); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("Select term-less = %v, want [0 1 2]", got)
	}
	// Empty advertised set prunes.
	ns.SetSummary(12, nil)
	if got := s.Select(nil, Query{Terms: []string{"jazz"}}, cs, ns); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf(`Select "jazz" after empty summary = %v, want [0]`, got)
	}
	// DropNeighbor reverts to conservative.
	ns.DropNeighbor(12)
	if got := s.Select(nil, Query{Terms: []string{"jazz"}}, cs, ns); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf(`Select "jazz" after drop = %v, want [0 2]`, got)
	}
}

func TestLearnedPrunesAfterFruitlessForwards(t *testing.T) {
	ns := NewNodeState(stats.NewRNG(9))
	s := NewLearned()
	terms := []string{"jazz"}
	cs := cands(20, 21)

	// Fresh neighbors score 0.5 > threshold: everyone explored.
	if got := s.Select(nil, Query{Terms: terms}, cs, ns); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("fresh Select = %v, want [0 1]", got)
	}
	// Neighbor 20 produces hits, 21 never does.
	for i := 0; i < 8; i++ {
		ns.RecordForward(20, terms)
		ns.RecordHit(20, terms)
		ns.RecordForward(21, terms)
	}
	sel := 0
	for i := 0; i < 200; i++ {
		for _, idx := range s.Select(nil, Query{Terms: terms}, cs, ns) {
			if idx == 1 {
				sel++
			}
		}
	}
	// 21 survives only via the 5% exploration probability.
	if sel > 40 {
		t.Fatalf("pruned neighbor selected %d/200 times, want rare exploration only", sel)
	}
	// The productive neighbor is always selected.
	for i := 0; i < 20; i++ {
		got := s.Select(nil, Query{Terms: terms}, cs, ns)
		if len(got) == 0 || got[0] != 0 {
			t.Fatalf("productive neighbor dropped: Select = %v", got)
		}
	}
}

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		spec string
		name string
	}{
		{"flood", "flood"},
		{"randomwalk", "randomwalk"},
		{"randomwalk:2", "randomwalk"},
		{"randomwalk:5", "randomwalk:5"},
		{"routingindex", "routingindex"},
		{"learned", "learned"},
	} {
		s, err := Parse(tc.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.spec, err)
		}
		if s.Name() != tc.name {
			t.Fatalf("Parse(%q).Name() = %q, want %q", tc.spec, s.Name(), tc.name)
		}
	}
	for _, bad := range []string{"", "gossip", "randomwalk:0", "randomwalk:x", "flood:1", "learned:2"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestMarkers(t *testing.T) {
	if !UsesSummaries(NewRoutingIndex()) || UsesSummaries(NewFlood()) ||
		UsesSummaries(NewRandomWalk(2)) || UsesSummaries(NewLearned()) {
		t.Fatal("UsesSummaries should mark routingindex only")
	}
	if !Learns(NewLearned()) || Learns(NewFlood()) ||
		Learns(NewRandomWalk(2)) || Learns(NewRoutingIndex()) {
		t.Fatal("Learns should mark learned only")
	}
}

func TestForwardsModels(t *testing.T) {
	fw := RandomWalkForwards(3)
	if got := fw.Source(5); got != 3 {
		t.Fatalf("randomwalk Source(5) = %g, want 3", got)
	}
	if got := fw.Source(2); got != 2 {
		t.Fatalf("randomwalk Source(2) = %g, want 2", got)
	}
	if got := fw.Relay(4); got != 1 {
		t.Fatalf("randomwalk Relay(4) = %g, want 1", got)
	}
	if got := fw.Relay(0); got != 0 {
		t.Fatalf("randomwalk Relay(0) = %g, want 0", got)
	}
	cf := ConstForwards("routingindex", 0.8, 0.75)
	if got := cf.Source(4); got != 0.8 {
		t.Fatalf("const Source(4) = %g, want 0.8", got)
	}
	if got := cf.Relay(0); got != 0 {
		t.Fatalf("const Relay(0) = %g, want 0", got)
	}
	ff := FloodForwards()
	if got := ff.Source(7); got != 7 {
		t.Fatalf("flood Source(7) = %g, want 7", got)
	}
}

func TestLearnedHistoryBounded(t *testing.T) {
	ns := NewNodeState(stats.NewRNG(1))
	for i := 0; i < MaxLearnedTerms+100; i++ {
		term := fmt.Sprintf("t%05d", i)
		ns.RecordForward(1, []string{term})
		ns.RecordHit(1, []string{term})
	}
	ns.mu.Lock()
	st := ns.nbrs[1]
	nf, nh := len(st.forwards), len(st.hits)
	ns.mu.Unlock()
	if nf != MaxLearnedTerms || nh != MaxLearnedTerms {
		t.Fatalf("history sizes = %d forwards, %d hits; want frozen at %d", nf, nh, MaxLearnedTerms)
	}
	// Known terms keep counting past the cap.
	ns.RecordForward(1, []string{"t00000"})
	ns.mu.Lock()
	count := ns.nbrs[1].forwards["t00000"]
	ns.mu.Unlock()
	if count != 2 {
		t.Fatalf("known-term forward count = %v, want 2", count)
	}
}

func TestSummaryBounded(t *testing.T) {
	ns := NewNodeState(stats.NewRNG(1))
	terms := make([]string, MaxSummaryTerms+50)
	for i := range terms {
		terms[i] = fmt.Sprintf("s%06d", i)
	}
	ns.SetSummary(3, terms)
	if got := ns.SummaryTerms(3); got != MaxSummaryTerms {
		t.Fatalf("summary size = %d, want truncated to %d", got, MaxSummaryTerms)
	}
	// Deterministic truncation: lexicographically smallest terms survive.
	if !ns.hasTerm(3, "s000000") {
		t.Fatalf("smallest term should survive truncation")
	}
	if ns.hasTerm(3, fmt.Sprintf("s%06d", MaxSummaryTerms+10)) {
		t.Fatalf("largest terms should be truncated")
	}
}
