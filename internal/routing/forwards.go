package routing

// Forwards is the analytic counterpart of a Strategy for the mean-value
// analysis engine: instead of simulating individual selections, the engine
// charges each node the *expected* number of query copies it forwards. Source
// and Relay return that expectation as a function of d, the node's count of
// eligible neighbors (overlay degree, minus one at relays for the neighbor
// the query arrived from). Implementations must satisfy 0 <= f(d) <= d; the
// engine clamps regardless.
//
// A nil *Forwards means flood — every eligible neighbor, exactly the paper's
// Table 2 charges — and is evaluated on the unmodified pre-strategy code
// path.
type Forwards struct {
	// Name labels the modeled strategy in reports.
	Name string
	// Source is the expected forward count at the query's source super-peer.
	Source func(d int) float64
	// Relay is the expected forward count at a relaying super-peer.
	Relay func(d int) float64
}

// FloodForwards returns the explicit flood model: every eligible neighbor.
// Evaluating it exercises the strategy-parametric engine path with all
// fractions exactly 1.0, which is numerically identical to the nil fast
// path (multiplication by 1.0 is exact in IEEE 754).
func FloodForwards() *Forwards {
	id := func(d int) float64 { return float64(d) }
	return &Forwards{Name: "flood", Source: id, Relay: id}
}

// RandomWalkForwards models k seeded walkers: the source starts min(k, d)
// walkers, each relay forwards an arriving walker along min(1, d) edges.
func RandomWalkForwards(k int) *Forwards {
	if k < 1 {
		k = 1
	}
	return &Forwards{
		Name:   NewRandomWalk(k).Name(),
		Source: func(d int) float64 { return minf(float64(k), d) },
		Relay:  func(d int) float64 { return minf(1, d) },
	}
}

// ConstForwards models a content-aware strategy whose expected forward counts
// are known in closed form for a given topology and workload: the source
// forwards an expected source copies, relays relay copies, each clamped to
// the eligible degree. The routingcompare experiment derives these constants
// for the reference topology.
func ConstForwards(name string, source, relay float64) *Forwards {
	return &Forwards{
		Name:   name,
		Source: func(d int) float64 { return minf(source, d) },
		Relay:  func(d int) float64 { return minf(relay, d) },
	}
}

func minf(v float64, d int) float64 {
	if fd := float64(d); v > fd {
		return fd
	}
	if v < 0 {
		return 0
	}
	return v
}
