// Package routing makes query forwarding pluggable: a Strategy decides, per
// hop, which overlay neighbors receive a query, replacing the TTL flood the
// paper hardcodes ("a super-peer sends the query to all of its neighbors").
//
// The same interface is consumed by all three evaluation layers — the
// discrete-event simulator, the live TCP super-peers, and (through the
// Forwards analytic model) the mean-value analysis engine — so a routing
// design can be priced analytically, validated in simulation, and measured on
// a real network without reimplementing it per layer.
//
// Four strategies ship behind the interface:
//
//   - flood: the paper's protocol, forwarding to every eligible neighbor.
//     Selecting flood reproduces the pre-strategy code paths bit-identically.
//   - randomwalk: k seeded walkers; the source picks k random neighbors, each
//     relay forwards a walker along one random edge (Lv et al.'s alternative
//     to flooding).
//   - routingindex: per-neighbor content summaries in the style of Crespo &
//     Garcia-Molina's routing indices — forward only where the advertised
//     term set can match the query.
//   - learned: a hit-history score per neighbor×term (the data-mining routing
//     angle), pruning neighbors whose forwards never produce results.
package routing

import (
	"sort"
	"sync"

	"spnet/internal/stats"
)

// Per-neighbor memory bounds. A misbehaving or fast-churning neighbor must
// not be able to grow a node's routing state without limit: learned-strategy
// hit history freezes once a neighbor has MaxLearnedTerms distinct terms
// (existing terms keep counting; new terms are ignored), and advertised
// summaries are truncated to MaxSummaryTerms (deterministically, keeping the
// lexicographically smallest terms, which only ever over-prunes forwarding
// for the dropped terms).
const (
	MaxLearnedTerms = 512
	MaxSummaryTerms = 4096
)

// Query is the routing-relevant view of one query at a forwarding decision.
type Query struct {
	// ID is the query's flood identifier (used for deduplication by the
	// hosts; strategies may use it to vary per-query choices).
	ID uint64
	// Terms are the lowercased keywords, empty when the host evaluates
	// queries abstractly (the simulator's query-class mode). Content-aware
	// strategies degrade to flood on term-less queries.
	Terms []string
	// TTL is the remaining time-to-live at the forwarding node (>= 1, or the
	// host would not be forwarding).
	TTL int
	// Hops is how many overlay hops the query has already traveled: 0 at the
	// source super-peer, >= 1 at relays.
	Hops int
}

// Candidate is one eligible forwarding target: an overlay neighbor that is up
// and is not the neighbor the query arrived from.
type Candidate struct {
	// ID identifies the neighbor in the host's stable namespace (cluster id
	// in the simulator, peer id on a live node) and keys NodeState.
	ID int
}

// Strategy selects forwarding targets for a query. Implementations must be
// safe for concurrent use when the host is (live nodes call Select from many
// goroutines; all mutable state lives in the NodeState, which locks).
type Strategy interface {
	// Name returns the stable identifier used in flags, metric labels and
	// reports ("flood", "randomwalk", ...).
	Name() string
	// Select appends to dst the indices into cands of the neighbors the
	// query should be forwarded to, and returns the extended slice. Indices
	// are emitted in increasing order of position in cands except where a
	// strategy's semantics are order-dependent (randomwalk emits in draw
	// order). ns carries the node's per-neighbor routing state and may be
	// nil only for strategies that keep no state (flood).
	Select(dst []int, q Query, cands []Candidate, ns *NodeState) []int
}

// neighborState is the per-neighbor slot of a NodeState.
type neighborState struct {
	// summary is the neighbor's advertised reachable term set, nil until a
	// first summary arrives (no summary = assume anything matches).
	summary map[string]struct{}
	// forwards and hits count per-term outcomes for the learned strategy:
	// queries containing the term forwarded to this neighbor, and responses
	// that came back through it.
	forwards map[string]float64
	hits     map[string]float64
}

// NodeState holds one node's routing state: a seeded RNG for randomized
// strategies and a per-neighbor slot keyed by Candidate.ID. All methods are
// safe for concurrent use.
type NodeState struct {
	mu      sync.Mutex
	rng     *stats.RNG
	nbrs    map[int]*neighborState
	scratch []int
}

// NewNodeState creates routing state drawing randomness from rng (which the
// state takes ownership of; it must not be shared with other consumers).
func NewNodeState(rng *stats.RNG) *NodeState {
	return &NodeState{rng: rng, nbrs: make(map[int]*neighborState)}
}

func (ns *NodeState) slot(id int) *neighborState {
	st := ns.nbrs[id]
	if st == nil {
		st = &neighborState{}
		ns.nbrs[id] = st
	}
	return st
}

// SetSummary replaces the advertised term set of neighbor id. An explicit
// empty set (non-nil, zero terms) means "nothing reachable" and prunes every
// term-bearing query; before the first SetSummary a neighbor matches
// everything.
func (ns *NodeState) SetSummary(id int, terms []string) {
	if len(terms) > MaxSummaryTerms {
		sorted := append([]string(nil), terms...)
		sort.Strings(sorted)
		terms = sorted[:MaxSummaryTerms]
	}
	set := make(map[string]struct{}, len(terms))
	for _, t := range terms {
		set[t] = struct{}{}
	}
	ns.mu.Lock()
	ns.slot(id).summary = set
	ns.mu.Unlock()
}

// HasSummary reports whether neighbor id has advertised a summary.
func (ns *NodeState) HasSummary(id int) bool {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	st := ns.nbrs[id]
	return st != nil && st.summary != nil
}

// SummaryTerms returns the number of terms neighbor id currently advertises,
// or -1 if it has not advertised a summary.
func (ns *NodeState) SummaryTerms(id int) int {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	st := ns.nbrs[id]
	if st == nil || st.summary == nil {
		return -1
	}
	return len(st.summary)
}

// SummaryTermList returns a copy of the terms neighbor id advertises
// (unsorted), or nil if it has not advertised a summary. Hosts use it to
// aggregate received summaries into the adverts they send onward.
func (ns *NodeState) SummaryTermList(id int) []string {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	st := ns.nbrs[id]
	if st == nil || st.summary == nil {
		return nil
	}
	out := make([]string, 0, len(st.summary))
	for t := range st.summary {
		out = append(out, t)
	}
	return out
}

// DropNeighbor forgets all state about neighbor id (overlay link closed).
func (ns *NodeState) DropNeighbor(id int) {
	ns.mu.Lock()
	delete(ns.nbrs, id)
	ns.mu.Unlock()
}

// RecordForward notes that a query with the given terms was forwarded to
// neighbor id — the learned strategy's trial counter.
func (ns *NodeState) RecordForward(id int, terms []string) {
	if len(terms) == 0 {
		return
	}
	ns.mu.Lock()
	st := ns.slot(id)
	if st.forwards == nil {
		st.forwards = make(map[string]float64)
	}
	for _, t := range terms {
		if _, known := st.forwards[t]; !known && len(st.forwards) >= MaxLearnedTerms {
			continue // history full: keep counting known terms only
		}
		st.forwards[t]++
	}
	ns.mu.Unlock()
}

// RecordHit notes that a response for a query with the given terms came back
// through neighbor id — the learned strategy's success counter.
func (ns *NodeState) RecordHit(id int, terms []string) {
	if len(terms) == 0 {
		return
	}
	ns.mu.Lock()
	st := ns.slot(id)
	if st.hits == nil {
		st.hits = make(map[string]float64)
	}
	for _, t := range terms {
		if _, known := st.hits[t]; !known && len(st.hits) >= MaxLearnedTerms {
			continue // history full: keep counting known terms only
		}
		st.hits[t]++
	}
	ns.mu.Unlock()
}
