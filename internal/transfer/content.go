// Package transfer is the content download plane: it turns QueryHit results
// into chunked, resumable, multi-source file transfers over the live network.
// A serving super-peer holds a Store of deterministic content keyed by
// internal/content titles; a downloader fetches the file's Manifest (chunk
// hashes) and then pulls chunks from every source in parallel under
// per-source outstanding windows, verifying each chunk against the manifest,
// debiting forged chunks through internal/trust, and resuming from its chunk
// bitmap when a source dies. Transfer traffic is metered as
// metrics.ClassTransfer — a load class of its own beside the paper's Table 2
// taxonomy, which stops at the QueryHit.
package transfer

import (
	"crypto/sha256"
	"encoding/binary"
)

// Content bytes are a SHA-256 keystream keyed by (title, block): every node
// seeded with the same title serves bit-identical bytes, so tests and
// experiments can verify whole-file hashes against locally computed ground
// truth without shipping any real payload.

// contentBlockLen is the keystream block width (one SHA-256 digest).
const contentBlockLen = sha256.Size

func contentBlock(title string, block uint64) [contentBlockLen]byte {
	h := sha256.New()
	h.Write([]byte(title))
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], block)
	h.Write(n[:])
	var out [contentBlockLen]byte
	h.Sum(out[:0])
	return out
}

// FillContent writes the deterministic content of title at byte offset off
// into buf. Any (off, len) window of the same title yields the same bytes.
func FillContent(title string, off int64, buf []byte) {
	for len(buf) > 0 {
		block := uint64(off) / contentBlockLen
		skip := int(uint64(off) % contentBlockLen)
		b := contentBlock(title, block)
		n := copy(buf, b[skip:])
		buf = buf[n:]
		off += int64(n)
	}
}

// ContentSize derives a file's deterministic size in [min, max] from its
// title, so a title alone pins both the bytes and how many of them there are.
func ContentSize(title string, min, max int64) int64 {
	if max < min {
		max = min
	}
	if min < 1 {
		min = 1
	}
	h := sha256.Sum256([]byte("size:" + title))
	span := uint64(max-min) + 1
	return min + int64(binary.LittleEndian.Uint64(h[:8])%span)
}

// ContentHash returns the SHA-256 of the whole deterministic content of
// title at the given size — the ground truth a completed download's Result
// hash must equal.
func ContentHash(title string, size int64) [sha256.Size]byte {
	h := sha256.New()
	buf := make([]byte, 64<<10)
	var off int64
	for off < size {
		n := size - off
		if n > int64(len(buf)) {
			n = int64(len(buf))
		}
		FillContent(title, off, buf[:n])
		h.Write(buf[:n])
		off += n
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}
