package transfer

import (
	"strings"

	"spnet/internal/content"
	"spnet/internal/gnutella"
	"spnet/internal/stats"
)

// Default store shape: chunk and file-size bounds chosen so any file fits a
// single manifest frame and downloads stay in the tens-of-chunks regime.
const (
	DefaultChunkSize   = 64 << 10  // 64 KiB
	DefaultMinFileSize = 256 << 10 // 256 KiB
	DefaultMaxFileSize = 4 << 20   // 4 MiB
)

// File is one downloadable item in a Store.
type File struct {
	Index uint32
	Title string
	Size  int64
}

// NumChunks returns how many chunks the file splits into at the store's
// chunk size.
func (f File) NumChunks(chunkSize int) int { return chunkCount(f.Size, chunkSize) }

// StoreOptions shapes a Store. Zero values select the defaults above.
type StoreOptions struct {
	// ChunkSize is the chunk width served, 1..gnutella.MaxChunkLen.
	ChunkSize int
	// MinFileSize / MaxFileSize bound the per-title deterministic file size.
	MinFileSize int64
	MaxFileSize int64
}

func (o *StoreOptions) setDefaults() {
	if o.ChunkSize <= 0 || o.ChunkSize > gnutella.MaxChunkLen {
		o.ChunkSize = DefaultChunkSize
	}
	if o.MinFileSize <= 0 {
		o.MinFileSize = DefaultMinFileSize
	}
	if o.MaxFileSize < o.MinFileSize {
		o.MaxFileSize = DefaultMaxFileSize
	}
	if o.MaxFileSize < o.MinFileSize {
		o.MaxFileSize = o.MinFileSize
	}
	// Keep every file within one manifest frame.
	if max := int64(maxManifestChunks) * int64(o.ChunkSize); o.MaxFileSize > max {
		o.MaxFileSize = max
	}
}

// Store is a node's served content: titles mapped to deterministic bytes,
// sized and hashed up front. Seed it fully (Add / AddSampled) before handing
// it to a node; after that every method is a pure concurrent-safe read, so
// one Store can back a whole fleet of nodes serving identical content —
// which is exactly what makes multi-source downloads possible.
type Store struct {
	opts      StoreOptions
	files     []File
	manifests []*Manifest
}

// NewStore builds an empty store.
func NewStore(opts StoreOptions) *Store {
	opts.setDefaults()
	return &Store{opts: opts}
}

// ChunkSize returns the chunk width this store serves.
func (s *Store) ChunkSize() int { return s.opts.ChunkSize }

// Add registers a title, deriving its size from the title and precomputing
// its manifest. File indices are assigned sequentially from 0.
func (s *Store) Add(title string) File {
	f := File{
		Index: uint32(len(s.files)),
		Title: title,
		Size:  ContentSize(title, s.opts.MinFileSize, s.opts.MaxFileSize),
	}
	s.files = append(s.files, f)
	s.manifests = append(s.manifests, BuildManifest(title, f.Size, s.opts.ChunkSize))
	return f
}

// AddSampled adds n titles drawn from the library's title distribution under
// the given seed: the idiom for seeding a fleet with a shared catalog.
func (s *Store) AddSampled(lib *content.Library, n int, seed uint64) {
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		s.Add(strings.Join(lib.SampleTitle(rng), " "))
	}
}

// Files returns the catalog in index order. Callers must not mutate it.
func (s *Store) Files() []File { return s.files }

// Lookup returns the file registered under index.
func (s *Store) Lookup(index uint32) (File, bool) {
	if int64(index) >= int64(len(s.files)) {
		return File{}, false
	}
	return s.files[index], true
}

// FindTitle returns the file whose title matches exactly.
func (s *Store) FindTitle(title string) (File, bool) {
	for _, f := range s.files {
		if f.Title == title {
			return f, true
		}
	}
	return File{}, false
}

// Manifest returns the precomputed manifest for index.
func (s *Store) Manifest(index uint32) (*Manifest, bool) {
	if int64(index) >= int64(len(s.manifests)) {
		return nil, false
	}
	return s.manifests[index], true
}

// ChunkData materializes chunk bytes for (index, chunk). The manifest
// sentinel returns the encoded manifest. ok is false when the file or chunk
// does not exist.
func (s *Store) ChunkData(index, chunk uint32) (data []byte, m *Manifest, ok bool) {
	f, found := s.Lookup(index)
	if !found {
		return nil, nil, false
	}
	m = s.manifests[index]
	if chunk == ManifestChunk {
		return m.Encode(), m, true
	}
	if int64(chunk) >= int64(m.NumChunks()) {
		return nil, nil, false
	}
	data = make([]byte, m.ChunkLen(int(chunk)))
	FillContent(f.Title, int64(chunk)*int64(s.opts.ChunkSize), data)
	return data, m, true
}
