package transfer

import (
	"bufio"
	"crypto/sha256"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"spnet/internal/gnutella"
	"spnet/internal/metrics"
	"spnet/internal/stats"
	"spnet/internal/trust"
)

// Transfer links share the node's listener with client/peer/control links;
// the hello line names which plane a connection belongs to.
const (
	// Hello opens a transfer link on a serving node.
	Hello = "SPNET/1.0 TRANSFER"
	// HelloOK accepts the link.
	HelloOK = "SPNET/1.0 OK"
	// HelloBusy refuses it: the node's transfer plane is at capacity. The
	// downloader treats this like a failed dial and retries with backoff.
	HelloBusy = "SPNET/1.0 BUSY"
)

// Source is one place a file can be fetched from: a serving node's address
// and the file index it advertised in its QueryHit.
type Source struct {
	Addr      string
	FileIndex uint32
}

// Backoff shapes seeded exponential redial backoff, mirroring the supervised
// client's failover policy.
type Backoff struct {
	Initial    time.Duration
	Max        time.Duration
	Multiplier float64
	Jitter     float64 // ±fraction of the base delay
}

func (b Backoff) delay(attempt int, rng *stats.RNG) time.Duration {
	d := float64(b.Initial)
	for i := 0; i < attempt; i++ {
		d *= b.Multiplier
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Jitter > 0 {
		d *= 1 + b.Jitter*(2*rng.Float64()-1)
	}
	return time.Duration(d)
}

// Options shapes one download.
type Options struct {
	// Window is the per-source outstanding-chunk window: how many pipelined
	// ChunkRequests a source may have unanswered. Default 4.
	Window int
	// ChunkRetries bounds how many times one chunk may be re-queued (after
	// timeouts, nacks, forgeries or source death) before the download fails.
	// Default 8.
	ChunkRetries int
	// Redials bounds reconnection attempts per source. Default 2.
	Redials int

	DialTimeout      time.Duration // default 5s
	HandshakeTimeout time.Duration // default 5s
	WriteTimeout     time.Duration // default 10s
	// ChunkTimeout bounds how long a source may go without delivering any
	// outstanding chunk before its window is re-queued and the link redialed.
	// Default 15s.
	ChunkTimeout time.Duration
	// Backoff paces redials. Default 50ms..2s ×2 with 0.25 jitter.
	Backoff Backoff
	// Seed drives the per-source jitter streams; equal seeds replay equal
	// backoff schedules.
	Seed uint64

	// Trust receives one observation per verified chunk (good) and per
	// hash-mismatched chunk (bad), keyed by source index in the sources
	// slice. When nil a private book is used; either way a source whose
	// posterior falls below DropScore is abandoned and its chunks re-fetched
	// from the remaining sources.
	Trust     *trust.Book
	DropScore float64 // default 0.2

	// Metrics, when set, meters the client side: ClassTransfer frames on the
	// load meter, raw socket bytes, verified content bytes
	// (spnet_transfer_bytes_total{dir="in"}), retried/forged chunk counters
	// and the per-download throughput histogram.
	Metrics *metrics.NodeMetrics

	// Dial overrides the transport (fault injection hooks in here).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// Logf receives protocol diagnostics.
	Logf func(format string, args ...any)
}

func (o *Options) setDefaults() {
	if o.Window <= 0 {
		o.Window = 4
	}
	if o.ChunkRetries <= 0 {
		o.ChunkRetries = 8
	}
	if o.Redials <= 0 {
		o.Redials = 2
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 5 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.ChunkTimeout <= 0 {
		o.ChunkTimeout = 15 * time.Second
	}
	if o.Backoff.Initial <= 0 {
		o.Backoff = Backoff{Initial: 50 * time.Millisecond, Max: 2 * time.Second, Multiplier: 2, Jitter: 0.25}
	}
	if o.DropScore <= 0 {
		o.DropScore = 0.2
	}
	if o.Dial == nil {
		o.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// SourceStats reports one source's contribution to a download.
type SourceStats struct {
	Addr    string
	Chunks  int   // verified chunks delivered
	Bytes   int64 // verified content bytes delivered
	Forged  int   // hash-mismatched chunks rejected
	Retried int   // chunks re-queued off this source (timeout/nack/death)
	Redials int
	Score   float64 // final trust posterior
	Err     error   // why the source retired early, if it did
}

// Progress is a download's resumable state: the manifest, the partially
// filled buffer and the chunk bitmap. A failed Fetch returns it inside its
// Result; passing it to Resume picks up where the failure left off, re-using
// every verified chunk.
type Progress struct {
	Manifest *Manifest
	Data     []byte
	Have     []bool
}

// Remaining counts chunks still missing.
func (p *Progress) Remaining() int {
	n := 0
	for _, h := range p.Have {
		if !h {
			n++
		}
	}
	return n
}

// Result reports one download.
type Result struct {
	Data          []byte
	Size          int64
	Hash          [sha256.Size]byte // SHA-256 of Data; only valid when complete
	Chunks        int
	ChunkSize     int
	Retried       int // chunk fetches re-issued
	Forged        int // chunks rejected on hash mismatch
	Elapsed       time.Duration
	ThroughputBps float64 // content bytes per second of wall time
	Sources       []SourceStats
	// Progress carries the resumable state; on a failed download pass it to
	// Resume to continue from the bitmap.
	Progress *Progress
}

// Fetch downloads one file from the given sources in parallel and verifies
// it chunk-by-chunk against the manifest. On failure the returned Result (if
// non-nil) carries Progress for Resume.
func Fetch(sources []Source, opts Options) (*Result, error) {
	return fetch(sources, nil, opts)
}

// Resume continues a failed download from its Progress — typically with a
// refreshed source list after the original sources died.
func Resume(sources []Source, prev *Progress, opts Options) (*Result, error) {
	if prev == nil || prev.Manifest == nil {
		return Fetch(sources, opts)
	}
	return fetch(sources, prev, opts)
}

var (
	errSourceBusy      = errors.New("transfer: source busy")
	errSourceDone      = errors.New("transfer: no claimable chunks left for source")
	errSourceUntrusted = errors.New("transfer: source fell below trust threshold")
)

// download is the shared state one Fetch's source workers cooperate on.
type download struct {
	opts    Options
	sources []Source

	mu       sync.Mutex
	man      *Manifest
	data     []byte
	have     []bool
	claimed  []int // -1 = free, else claiming source index
	retries  []int
	banned   []map[int]bool // chunk -> sources that may not serve it
	remain   int
	retried  int
	forged   int
	fatal    error
	book     *trust.Book
	srcStats []SourceStats
}

func fetch(sources []Source, prev *Progress, opts Options) (*Result, error) {
	opts.setDefaults()
	if len(sources) == 0 {
		return nil, errors.New("transfer: no sources")
	}
	start := time.Now()
	d := &download{
		opts:     opts,
		sources:  sources,
		book:     opts.Trust,
		srcStats: make([]SourceStats, len(sources)),
	}
	if d.book == nil {
		d.book = trust.NewBook()
	}
	for i, s := range sources {
		d.srcStats[i].Addr = s.Addr
	}

	if prev != nil {
		d.install(prev.Manifest)
		copy(d.data, prev.Data)
		for i, h := range prev.Have {
			if i < len(d.have) && h {
				d.have[i] = true
				d.remain--
			}
		}
	} else if err := d.bootstrap(); err != nil {
		return nil, err
	}

	var wg sync.WaitGroup
	for i := range sources {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			d.runSource(idx)
		}(i)
	}
	wg.Wait()

	d.mu.Lock()
	defer d.mu.Unlock()
	res := &Result{
		Data:      d.data,
		Size:      d.man.FileSize,
		Chunks:    d.man.NumChunks(),
		ChunkSize: d.man.ChunkSize,
		Retried:   d.retried,
		Forged:    d.forged,
		Elapsed:   time.Since(start),
		Sources:   d.srcStats,
		Progress:  &Progress{Manifest: d.man, Data: d.data, Have: d.have},
	}
	for i := range res.Sources {
		res.Sources[i].Score = d.book.Score(i)
	}
	if res.Elapsed > 0 {
		done := d.man.FileSize
		if d.remain > 0 {
			done = 0
			for i, h := range d.have {
				if h {
					done += int64(d.man.ChunkLen(i))
				}
			}
		}
		res.ThroughputBps = float64(done) / res.Elapsed.Seconds()
	}
	if d.remain > 0 {
		err := d.fatal
		if err == nil {
			err = fmt.Errorf("transfer: %d/%d chunks missing after all sources retired", d.remain, d.man.NumChunks())
		}
		return res, err
	}
	res.Hash = sha256.Sum256(d.data)
	if nm := opts.Metrics; nm != nil {
		nm.TransferThroughput.Observe(res.ThroughputBps)
	}
	return res, nil
}

// install sizes the buffers from the manifest.
func (d *download) install(m *Manifest) {
	d.man = m
	n := m.NumChunks()
	d.data = make([]byte, m.FileSize)
	d.have = make([]bool, n)
	d.claimed = make([]int, n)
	for i := range d.claimed {
		d.claimed[i] = -1
	}
	d.retries = make([]int, n)
	d.banned = make([]map[int]bool, n)
	d.remain = n
}

// bootstrap fetches the manifest from the first source that yields one.
func (d *download) bootstrap() error {
	var lastErr error
	for i, src := range d.sources {
		m, err := d.fetchManifest(i, src)
		if err != nil {
			d.opts.Logf("transfer: manifest from %s: %v", src.Addr, err)
			lastErr = err
			continue
		}
		d.install(m)
		return nil
	}
	return fmt.Errorf("transfer: no source produced a manifest: %w", lastErr)
}

func (d *download) fetchManifest(idx int, src Source) (*Manifest, error) {
	conn, err := d.dialSource(src)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	req := &gnutella.ChunkRequest{FileIndex: src.FileIndex, Chunk: ManifestChunk}
	conn.SetWriteDeadline(time.Now().Add(d.opts.WriteTimeout))
	if err := d.write(conn, req); err != nil {
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(d.opts.ChunkTimeout))
	msg, err := d.read(conn)
	if err != nil {
		return nil, err
	}
	switch m := msg.(type) {
	case *gnutella.ChunkData:
		if m.Chunk != ManifestChunk {
			return nil, fmt.Errorf("transfer: manifest reply carried chunk %d", m.Chunk)
		}
		man, err := DecodeManifest(m.Data)
		if err != nil {
			return nil, err
		}
		if man.FileSize != int64(m.FileSize) {
			return nil, fmt.Errorf("%w: frame size %d vs manifest %d", ErrBadManifest, m.FileSize, man.FileSize)
		}
		return man, nil
	case *gnutella.ChunkNack:
		return nil, fmt.Errorf("transfer: manifest nacked (code %d)", m.Code)
	}
	return nil, fmt.Errorf("transfer: unexpected %T for manifest", msg)
}

// dialSource opens and handshakes one transfer link.
func (d *download) dialSource(src Source) (net.Conn, error) {
	conn, err := d.opts.Dial(src.Addr, d.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(d.opts.HandshakeTimeout))
	if _, err := fmt.Fprintf(conn, "%s\n", Hello); err != nil {
		conn.Close()
		return nil, err
	}
	line, err := bufio.NewReaderSize(conn, 64).ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, err
	}
	switch strings.TrimSpace(line) {
	case HelloOK:
	case HelloBusy:
		conn.Close()
		return nil, errSourceBusy
	default:
		conn.Close()
		return nil, fmt.Errorf("transfer: unexpected hello reply %q", strings.TrimSpace(line))
	}
	conn.SetDeadline(time.Time{})
	if nm := d.opts.Metrics; nm != nil {
		conn = metrics.NewMeteredConn(conn, nm.ConnBytes[metrics.DirIn], nm.ConnBytes[metrics.DirOut])
	}
	return conn, nil
}

func (d *download) write(conn net.Conn, m gnutella.Message) error {
	if err := gnutella.WriteMessage(conn, m); err != nil {
		return err
	}
	if nm := d.opts.Metrics; nm != nil {
		gnutella.Meter(nm.Load, metrics.DirOut, m)
	}
	return nil
}

func (d *download) read(conn net.Conn) (gnutella.Message, error) {
	m, err := gnutella.ReadMessage(conn)
	if err != nil {
		return nil, err
	}
	if nm := d.opts.Metrics; nm != nil {
		gnutella.Meter(nm.Load, metrics.DirIn, m)
	}
	return m, nil
}

// runSource is one source's worker: dial (with seeded backoff), stream
// chunks under the outstanding window, redial on link failure, retire when
// the download finishes, the redial budget is spent, the source is banned
// from every remaining chunk, or its trust posterior collapses.
func (d *download) runSource(idx int) {
	src := d.sources[idx]
	rng := stats.NewRNG(d.opts.Seed).Split(uint64(idx))
	redials := 0
	for {
		if d.finished() {
			return
		}
		conn, err := d.dialSource(src)
		if err != nil {
			if redials >= d.opts.Redials {
				d.retire(idx, fmt.Errorf("transfer: dialing %s: %w", src.Addr, err))
				return
			}
			redials++
			d.mu.Lock()
			d.srcStats[idx].Redials++
			d.mu.Unlock()
			time.Sleep(d.opts.Backoff.delay(redials, rng))
			continue
		}
		err = d.stream(idx, conn)
		conn.Close()
		switch {
		case err == nil || errors.Is(err, errSourceDone):
			d.retire(idx, nil)
			return
		case errors.Is(err, errSourceUntrusted):
			d.retire(idx, err)
			return
		}
		if d.finished() {
			return
		}
		if redials >= d.opts.Redials {
			d.retire(idx, err)
			return
		}
		redials++
		d.mu.Lock()
		d.srcStats[idx].Redials++
		d.mu.Unlock()
		time.Sleep(d.opts.Backoff.delay(redials, rng))
	}
}

// stream runs one connection's request/response loop. It returns nil when
// the download completed, errSourceDone when no remaining chunk may be
// served by this source, errSourceUntrusted on trust collapse, and the
// transport error otherwise (the caller decides whether to redial).
func (d *download) stream(idx int, conn net.Conn) error {
	src := d.sources[idx]
	outstanding := make(map[uint32]bool)
	requeueAll := func() {
		for c := range outstanding {
			d.requeue(idx, c, true)
			delete(outstanding, c)
		}
	}
	for {
		for len(outstanding) < d.opts.Window {
			c, ok := d.claim(idx)
			if !ok {
				break
			}
			req := &gnutella.ChunkRequest{FileIndex: src.FileIndex, Chunk: c}
			conn.SetWriteDeadline(time.Now().Add(d.opts.WriteTimeout))
			if err := d.write(conn, req); err != nil {
				d.requeue(idx, c, true)
				requeueAll()
				return err
			}
			outstanding[c] = true
		}
		if len(outstanding) == 0 {
			if d.finished() {
				return nil
			}
			if d.exhausted(idx) {
				return errSourceDone
			}
			// Every missing chunk is inflight on another source; linger in
			// case one gets re-queued our way.
			time.Sleep(2 * time.Millisecond)
			continue
		}
		conn.SetReadDeadline(time.Now().Add(d.opts.ChunkTimeout))
		msg, err := d.read(conn)
		if err != nil {
			requeueAll()
			return err
		}
		switch m := msg.(type) {
		case *gnutella.ChunkData:
			if !outstanding[m.Chunk] {
				continue // stale duplicate; not ours anymore
			}
			delete(outstanding, m.Chunk)
			ok, err := d.deliver(idx, m)
			if err != nil {
				requeueAll()
				return err
			}
			_ = ok
		case *gnutella.ChunkNack:
			if !outstanding[m.Chunk] {
				continue
			}
			delete(outstanding, m.Chunk)
			if m.Code == gnutella.NackNotFound || m.Code == gnutella.NackBadRequest {
				d.ban(idx, m.Chunk)
			}
			d.requeue(idx, m.Chunk, true)
		default:
			d.opts.Logf("transfer: unexpected %T from %s", msg, src.Addr)
		}
	}
}

// claim reserves the lowest missing, unclaimed chunk this source may serve.
func (d *download) claim(idx int) (uint32, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.remain == 0 || d.fatal != nil {
		return 0, false
	}
	for c := range d.have {
		if !d.have[c] && d.claimed[c] == -1 && !d.bannedLocked(c, idx) {
			d.claimed[c] = idx
			return uint32(c), true
		}
	}
	return 0, false
}

func (d *download) bannedLocked(chunk, idx int) bool {
	return d.banned[chunk] != nil && d.banned[chunk][idx]
}

// requeue releases a claimed chunk back to the pool, counting a retry when
// counted is true. Blowing the per-chunk retry budget is fatal: it means no
// source can produce this chunk.
func (d *download) requeue(idx int, chunk uint32, counted bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := int(chunk)
	if c >= len(d.claimed) || d.claimed[c] != idx {
		return
	}
	d.claimed[c] = -1
	if !counted || d.have[c] {
		return
	}
	d.retries[c]++
	d.retried++
	d.srcStats[idx].Retried++
	if nm := d.opts.Metrics; nm != nil {
		nm.ChunksRetried.Inc()
	}
	if d.retries[c] > d.opts.ChunkRetries && d.fatal == nil {
		d.fatal = fmt.Errorf("transfer: chunk %d failed %d times", c, d.retries[c])
	}
}

// ban forbids idx from serving chunk again (nacked or forged).
func (d *download) ban(idx int, chunk uint32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := int(chunk)
	if c >= len(d.banned) {
		return
	}
	if d.banned[c] == nil {
		d.banned[c] = make(map[int]bool)
	}
	d.banned[c][idx] = true
}

// deliver verifies one arrived chunk against the manifest. A hash mismatch
// is a forged chunk: debit the source's trust, ban it from the chunk, and
// requeue; a collapsed posterior retires the source entirely.
func (d *download) deliver(idx int, m *gnutella.ChunkData) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := int(m.Chunk)
	if c >= len(d.have) || d.claimed[c] != idx {
		return false, nil
	}
	d.claimed[c] = -1
	if d.have[c] {
		return true, nil
	}
	want := d.man.Hashes[c]
	if len(m.Data) != d.man.ChunkLen(c) || sha256.Sum256(m.Data) != want {
		d.forged++
		d.srcStats[idx].Forged++
		d.book.Observe(idx, false)
		if nm := d.opts.Metrics; nm != nil {
			nm.ChunksForged.Inc()
		}
		if d.banned[c] == nil {
			d.banned[c] = make(map[int]bool)
		}
		d.banned[c][idx] = true
		d.retries[c]++
		d.retried++
		if nm := d.opts.Metrics; nm != nil {
			nm.ChunksRetried.Inc()
		}
		if d.retries[c] > d.opts.ChunkRetries && d.fatal == nil {
			d.fatal = fmt.Errorf("transfer: chunk %d failed %d times", c, d.retries[c])
		}
		if d.book.Score(idx) < d.opts.DropScore {
			return false, errSourceUntrusted
		}
		return false, nil
	}
	copy(d.data[int64(c)*int64(d.man.ChunkSize):], m.Data)
	d.have[c] = true
	d.remain--
	d.book.Observe(idx, true)
	d.srcStats[idx].Chunks++
	d.srcStats[idx].Bytes += int64(len(m.Data))
	if nm := d.opts.Metrics; nm != nil {
		nm.TransferBytes[metrics.DirIn].Add(int64(len(m.Data)))
	}
	return true, nil
}

// finished reports whether workers should stop: done or fatally stuck.
func (d *download) finished() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.remain == 0 || d.fatal != nil
}

// exhausted reports whether every missing chunk is banned for this source —
// nothing left it could ever contribute.
func (d *download) exhausted(idx int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for c := range d.have {
		if !d.have[c] && !d.bannedLocked(c, idx) {
			return false
		}
	}
	return true
}

// retire records why a source stopped.
func (d *download) retire(idx int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err != nil && d.srcStats[idx].Err == nil {
		d.srcStats[idx].Err = err
	}
}
