package transfer

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"spnet/internal/gnutella"
)

// ManifestChunk is the sentinel chunk index that requests a file's manifest
// instead of a data chunk. A downloader's first request on any source asks
// for this; the reply's Data bytes are an encoded Manifest.
const ManifestChunk uint32 = 0xFFFFFFFF

// ErrBadManifest reports a manifest blob that does not decode.
var ErrBadManifest = errors.New("transfer: malformed manifest")

// Manifest pins a file's shape and per-chunk SHA-256 hashes. The downloader
// verifies every arriving chunk against its manifest entry, so a forged chunk
// from one source cannot poison a download fed by honest sources.
type Manifest struct {
	FileSize  int64
	ChunkSize int
	Hashes    [][sha256.Size]byte
}

// NumChunks returns how many chunks the file splits into.
func (m *Manifest) NumChunks() int { return len(m.Hashes) }

// ChunkLen returns the byte length of chunk i (the last chunk may be short).
func (m *Manifest) ChunkLen(i int) int {
	if i < 0 || i >= len(m.Hashes) {
		return 0
	}
	off := int64(i) * int64(m.ChunkSize)
	n := m.FileSize - off
	if n > int64(m.ChunkSize) {
		n = int64(m.ChunkSize)
	}
	return int(n)
}

// manifestFixed is the fixed prefix of an encoded manifest: 8-byte file size,
// 4-byte chunk size, 4-byte chunk count (all little-endian).
const manifestFixed = 8 + 4 + 4

// ManifestLen returns the encoded manifest length for numChunks chunks.
func ManifestLen(numChunks int) int { return manifestFixed + sha256.Size*numChunks }

// maxManifestChunks bounds the chunk count so an encoded manifest always fits
// one ChunkData frame.
const maxManifestChunks = (gnutella.MaxChunkLen - manifestFixed) / sha256.Size

// Encode serializes the manifest for shipment inside a ChunkData frame.
func (m *Manifest) Encode() []byte {
	buf := make([]byte, ManifestLen(len(m.Hashes)))
	binary.LittleEndian.PutUint64(buf[0:8], uint64(m.FileSize))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(m.ChunkSize))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(len(m.Hashes)))
	for i, h := range m.Hashes {
		copy(buf[manifestFixed+i*sha256.Size:], h[:])
	}
	return buf
}

// DecodeManifest parses an encoded manifest, validating that the chunk count
// and chunk size are consistent with the claimed file size.
func DecodeManifest(buf []byte) (*Manifest, error) {
	if len(buf) < manifestFixed {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadManifest, len(buf))
	}
	m := &Manifest{
		FileSize:  int64(binary.LittleEndian.Uint64(buf[0:8])),
		ChunkSize: int(binary.LittleEndian.Uint32(buf[8:12])),
	}
	n := int(binary.LittleEndian.Uint32(buf[12:16]))
	if len(buf) != ManifestLen(n) {
		return nil, fmt.Errorf("%w: %d bytes for %d chunks", ErrBadManifest, len(buf), n)
	}
	if m.FileSize < 0 || m.ChunkSize <= 0 || m.ChunkSize > gnutella.MaxChunkLen || n > maxManifestChunks {
		return nil, fmt.Errorf("%w: size %d, chunk size %d, %d chunks", ErrBadManifest, m.FileSize, m.ChunkSize, n)
	}
	if want := chunkCount(m.FileSize, m.ChunkSize); want != n {
		return nil, fmt.Errorf("%w: %d chunks, want %d for %d bytes / %d-byte chunks",
			ErrBadManifest, n, want, m.FileSize, m.ChunkSize)
	}
	m.Hashes = make([][sha256.Size]byte, n)
	for i := range m.Hashes {
		copy(m.Hashes[i][:], buf[manifestFixed+i*sha256.Size:])
	}
	return m, nil
}

func chunkCount(size int64, chunkSize int) int {
	if size <= 0 {
		return 0
	}
	return int((size + int64(chunkSize) - 1) / int64(chunkSize))
}

// BuildManifest computes the manifest of a title's deterministic content.
func BuildManifest(title string, size int64, chunkSize int) *Manifest {
	m := &Manifest{FileSize: size, ChunkSize: chunkSize}
	n := chunkCount(size, chunkSize)
	m.Hashes = make([][sha256.Size]byte, n)
	buf := make([]byte, chunkSize)
	for i := 0; i < n; i++ {
		b := buf[:m.ChunkLen(i)]
		FillContent(title, int64(i)*int64(chunkSize), b)
		m.Hashes[i] = sha256.Sum256(b)
	}
	return m
}
