package transfer_test

import (
	"testing"
	"time"

	"spnet/internal/p2p"
	"spnet/internal/transfer"
	"spnet/internal/trust"
)

// testStore builds a small shared catalog: one 512 KiB file in 16 KiB chunks,
// sizes pinned so test durations are predictable.
func testStore() *transfer.Store {
	s := transfer.NewStore(transfer.StoreOptions{
		ChunkSize: 16 << 10, MinFileSize: 512 << 10, MaxFileSize: 512 << 10,
	})
	s.Add("deep sea documentary")
	return s
}

// startNode launches a super-peer serving the store at the given content rate.
func startNode(t *testing.T, store *transfer.Store, rate float64, mis *p2p.MisbehaveOptions) *p2p.Node {
	t.Helper()
	n := p2p.NewNode(p2p.Options{
		Content: store, TransferRate: rate, Misbehave: mis,
		HeartbeatInterval: -1,
	})
	if err := n.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

// waitPeered polls until both nodes have registered the overlay link:
// ConnectPeer returns after the handshake, but each side's reader goroutine
// registers the link asynchronously, and a search flooded before that sees
// no neighbors.
func waitPeered(t *testing.T, nodes ...*p2p.Node) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ready := true
		for _, n := range nodes {
			if n.Stats().Peers == 0 {
				ready = false
			}
		}
		if ready {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("timed out waiting for overlay links to register")
}

func fastOpts() transfer.Options {
	return transfer.Options{
		Window: 4, Redials: 2, Seed: 1,
		DialTimeout: time.Second, HandshakeTimeout: time.Second,
		ChunkTimeout: 2 * time.Second,
		Backoff:      transfer.Backoff{Initial: 20 * time.Millisecond, Max: 200 * time.Millisecond, Multiplier: 2, Jitter: 0.25},
	}
}

// TestFetchViaQueryHits drives the whole plane end to end: query the overlay,
// distill the hits into sources, download, verify against ground truth.
func TestFetchViaQueryHits(t *testing.T) {
	store := testStore()
	a := startNode(t, store, 0, nil)
	b := startNode(t, store, 0, nil)
	if err := b.ConnectPeer(a.Addr()); err != nil {
		t.Fatalf("peering: %v", err)
	}
	waitPeered(t, a, b)
	f := store.Files()[0]

	results, err := b.Search(f.Title, 500*time.Millisecond)
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	sources := p2p.TransferSources(results, f.Title)
	if len(sources) != 2 {
		t.Fatalf("got %d sources from query hits, want 2 (a=%s b=%s results: %+v)",
			len(sources), a.Addr(), b.Addr(), results)
	}

	res, err := transfer.Fetch(sources, fastOpts())
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if res.Size != f.Size {
		t.Errorf("downloaded %d bytes, want %d", res.Size, f.Size)
	}
	if want := transfer.ContentHash(f.Title, f.Size); res.Hash != want {
		t.Errorf("hash mismatch: got %x, want %x", res.Hash, want)
	}
}

// TestKillSourceMidDownload is the failover drill: a 2-source download loses
// one source mid-transfer and must complete on the survivor with the hash
// intact, recovering within the retry budget.
func TestKillSourceMidDownload(t *testing.T) {
	store := testStore()
	f := store.Files()[0]
	// 256 KiB/s each: the 512 KiB file takes ~1s from two sources, so a kill
	// at 300ms lands mid-transfer.
	a := startNode(t, store, 256<<10, nil)
	b := startNode(t, store, 256<<10, nil)
	sources := []transfer.Source{
		{Addr: a.Addr(), FileIndex: f.Index},
		{Addr: b.Addr(), FileIndex: f.Index},
	}

	type outcome struct {
		res *transfer.Result
		err error
	}
	done := make(chan outcome, 1)
	start := time.Now()
	go func() {
		res, err := transfer.Fetch(sources, fastOpts())
		done <- outcome{res, err}
	}()

	time.Sleep(300 * time.Millisecond)
	b.Close()
	killAt := time.Since(start)

	var out outcome
	select {
	case out = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("download did not finish after source kill")
	}
	if out.err != nil {
		t.Fatalf("fetch after kill: %v", out.err)
	}
	res := out.res
	if want := transfer.ContentHash(f.Title, f.Size); res.Hash != want {
		t.Fatalf("hash mismatch after failover")
	}
	recovery := res.Elapsed - killAt
	t.Logf("killed source at %v; download finished %v later (total %v, %d retried chunks)",
		killAt.Round(time.Millisecond), recovery.Round(time.Millisecond),
		res.Elapsed.Round(time.Millisecond), res.Retried)
	if recovery <= 0 {
		t.Errorf("download finished before the kill; test raced (elapsed %v, kill %v)", res.Elapsed, killAt)
	}
	if res.Sources[1].Chunks == 0 {
		t.Error("killed source delivered nothing before dying; kill landed too early")
	}
	if res.Sources[0].Chunks+res.Sources[1].Chunks != res.Chunks {
		t.Errorf("source chunk counts %d+%d don't cover %d chunks",
			res.Sources[0].Chunks, res.Sources[1].Chunks, res.Chunks)
	}
}

// TestForgedChunkAdversary plants a chunk-forging source beside an honest
// one: every forged chunk must be rejected on its manifest hash, debited
// against the forger's trust score, and re-fetched from the honest source.
func TestForgedChunkAdversary(t *testing.T) {
	store := testStore()
	f := store.Files()[0]
	honest := startNode(t, store, 0, nil)
	forger := startNode(t, store, 0, &p2p.MisbehaveOptions{ForgeChunk: 1, Seed: 3})
	sources := []transfer.Source{
		{Addr: honest.Addr(), FileIndex: f.Index},
		{Addr: forger.Addr(), FileIndex: f.Index},
	}

	book := trust.NewBook()
	opts := fastOpts()
	opts.Trust = book
	res, err := transfer.Fetch(sources, opts)
	if err != nil {
		t.Fatalf("fetch with forging source: %v", err)
	}
	if want := transfer.ContentHash(f.Title, f.Size); res.Hash != want {
		t.Fatalf("forged chunks poisoned the download")
	}
	if res.Forged == 0 {
		t.Fatal("no forged chunks detected; adversary never fired")
	}
	if res.Sources[1].Chunks != 0 {
		t.Errorf("forger contributed %d verified chunks, want 0", res.Sources[1].Chunks)
	}
	if res.Sources[0].Chunks != res.Chunks {
		t.Errorf("honest source served %d/%d chunks; forged chunks not re-fetched",
			res.Sources[0].Chunks, res.Chunks)
	}
	if hs, fs := book.Score(0), book.Score(1); fs >= hs {
		t.Errorf("trust debit missing: forger score %.3f >= honest %.3f", fs, hs)
	}
	if book.Score(1) >= opts.DropScore && res.Sources[1].Err == nil {
		t.Logf("note: forger retired by exhaustion, score %.3f", book.Score(1))
	}
}

// TestResumeFromBitmap kills the only source mid-download, then resumes the
// returned Progress against a fresh source: previously verified chunks must
// not be fetched again.
func TestResumeFromBitmap(t *testing.T) {
	store := testStore()
	f := store.Files()[0]
	dying := startNode(t, store, 128<<10, nil) // ~4s alone: plenty of time to kill
	sources := []transfer.Source{{Addr: dying.Addr(), FileIndex: f.Index}}

	type outcome struct {
		res *transfer.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := transfer.Fetch(sources, fastOpts())
		done <- outcome{res, err}
	}()
	time.Sleep(500 * time.Millisecond)
	dying.Close()

	var out outcome
	select {
	case out = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("fetch did not fail after its only source died")
	}
	if out.err == nil {
		t.Fatal("fetch succeeded with its only source killed mid-transfer")
	}
	if out.res == nil || out.res.Progress == nil {
		t.Fatal("failed fetch returned no resumable progress")
	}
	prog := out.res.Progress
	already := out.res.Chunks - prog.Remaining()
	if already == 0 {
		t.Fatal("no chunks verified before the kill; test raced")
	}

	fresh := startNode(t, store, 0, nil)
	res, err := transfer.Resume([]transfer.Source{{Addr: fresh.Addr(), FileIndex: f.Index}}, prog, fastOpts())
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if want := transfer.ContentHash(f.Title, f.Size); res.Hash != want {
		t.Fatalf("hash mismatch after resume")
	}
	if got := res.Sources[0].Chunks; got != res.Chunks-already {
		t.Errorf("resume fetched %d chunks, want only the %d missing ones",
			got, res.Chunks-already)
	}
}
