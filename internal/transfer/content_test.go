package transfer

import (
	"bytes"
	"crypto/sha256"
	"testing"

	"spnet/internal/content"
)

func TestFillContentDeterministicAndWindowed(t *testing.T) {
	const title = "free jazz classics"
	whole := make([]byte, 1000)
	FillContent(title, 0, whole)

	again := make([]byte, 1000)
	FillContent(title, 0, again)
	if !bytes.Equal(whole, again) {
		t.Fatal("same (title, offset, len) produced different bytes")
	}

	// Any window must agree with the whole.
	win := make([]byte, 100)
	FillContent(title, 357, win)
	if !bytes.Equal(win, whole[357:457]) {
		t.Error("windowed fill disagrees with whole-file fill")
	}

	other := make([]byte, 1000)
	FillContent(title+"!", 0, other)
	if bytes.Equal(whole, other) {
		t.Error("different titles produced identical bytes")
	}
}

func TestContentSizeBounds(t *testing.T) {
	lib := content.DefaultLibrary()
	_ = lib
	for _, title := range []string{"a", "b", "some longer title here"} {
		s := ContentSize(title, 100, 200)
		if s < 100 || s > 200 {
			t.Errorf("ContentSize(%q) = %d, want in [100, 200]", title, s)
		}
		if s != ContentSize(title, 100, 200) {
			t.Errorf("ContentSize(%q) not deterministic", title)
		}
	}
	if s := ContentSize("x", 500, 500); s != 500 {
		t.Errorf("degenerate range: got %d, want 500", s)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := BuildManifest("title words", 100_000, 1<<12)
	if got, want := m.NumChunks(), 25; got != want {
		t.Fatalf("NumChunks = %d, want %d", got, want)
	}
	if got := m.ChunkLen(24); got != 100_000-24*(1<<12) {
		t.Errorf("last ChunkLen = %d", got)
	}
	enc := m.Encode()
	if len(enc) != ManifestLen(25) {
		t.Fatalf("encoded %d bytes, want %d", len(enc), ManifestLen(25))
	}
	dec, err := DecodeManifest(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.FileSize != m.FileSize || dec.ChunkSize != m.ChunkSize || len(dec.Hashes) != len(m.Hashes) {
		t.Fatalf("round trip mismatch: %+v vs %+v", dec, m)
	}
	for i := range m.Hashes {
		if dec.Hashes[i] != m.Hashes[i] {
			t.Fatalf("hash %d mismatch", i)
		}
	}
}

func TestDecodeManifestRejectsDamage(t *testing.T) {
	m := BuildManifest("t", 10_000, 1<<10)
	enc := m.Encode()
	cases := map[string][]byte{
		"truncated": enc[:len(enc)-1],
		"trailing":  append(append([]byte(nil), enc...), 0),
		"short":     enc[:8],
		// Flip a high FileSize byte: the implied chunk count no longer matches
		// the NumChunks field. (A low-byte flip could keep the count intact.)
		"inconsistent size": func() []byte { b := append([]byte(nil), enc...); b[2] ^= 0xFF; return b }(),
	}
	for name, buf := range cases {
		if _, err := DecodeManifest(buf); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestManifestHashesMatchContent(t *testing.T) {
	const title, size, chunk = "hash check title", 10_000, 1 << 10
	m := BuildManifest(title, size, chunk)
	for i := 0; i < m.NumChunks(); i++ {
		buf := make([]byte, m.ChunkLen(i))
		FillContent(title, int64(i)*chunk, buf)
		if sha256.Sum256(buf) != m.Hashes[i] {
			t.Fatalf("chunk %d hash mismatch", i)
		}
	}
}

func TestStoreChunkData(t *testing.T) {
	s := NewStore(StoreOptions{ChunkSize: 1 << 10, MinFileSize: 3000, MaxFileSize: 5000})
	f := s.Add("store test title")
	if f.Size < 3000 || f.Size > 5000 {
		t.Fatalf("file size %d out of bounds", f.Size)
	}
	man, ok := s.Manifest(f.Index)
	if !ok {
		t.Fatal("manifest missing")
	}
	if man.NumChunks() != f.NumChunks(s.ChunkSize()) {
		t.Errorf("NumChunks disagree: %d vs %d", man.NumChunks(), f.NumChunks(s.ChunkSize()))
	}
	// Manifest sentinel returns the encoded manifest.
	data, _, ok := s.ChunkData(f.Index, ManifestChunk)
	if !ok {
		t.Fatal("manifest chunk not served")
	}
	if _, err := DecodeManifest(data); err != nil {
		t.Fatalf("served manifest does not decode: %v", err)
	}
	// Every data chunk verifies against the manifest.
	for i := 0; i < man.NumChunks(); i++ {
		data, _, ok := s.ChunkData(f.Index, uint32(i))
		if !ok {
			t.Fatalf("chunk %d not served", i)
		}
		if sha256.Sum256(data) != man.Hashes[i] {
			t.Fatalf("chunk %d fails its manifest hash", i)
		}
	}
	// Out-of-range file and chunk are refused.
	if _, _, ok := s.ChunkData(f.Index, uint32(man.NumChunks())); ok {
		t.Error("out-of-range chunk served")
	}
	if _, _, ok := s.ChunkData(99, 0); ok {
		t.Error("unknown file served")
	}
}

func TestStoreAddSampledDeterministic(t *testing.T) {
	lib := content.DefaultLibrary()
	a := NewStore(StoreOptions{})
	b := NewStore(StoreOptions{})
	a.AddSampled(lib, 5, 7)
	b.AddSampled(lib, 5, 7)
	fa, fb := a.Files(), b.Files()
	if len(fa) != 5 || len(fb) != 5 {
		t.Fatalf("got %d / %d files, want 5", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("file %d differs across equal seeds: %+v vs %+v", i, fa[i], fb[i])
		}
	}
}
