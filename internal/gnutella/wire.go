package gnutella

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MsgType identifies a message's payload descriptor. Query and QueryHit use
// the Gnutella 0.4 descriptor values; Join and Update are the super-peer
// extensions the paper introduces (Section 3.2).
type MsgType byte

// Payload descriptor values.
const (
	TypePing     MsgType = 0x00
	TypePong     MsgType = 0x01
	TypeQuery    MsgType = 0x80
	TypeQueryHit MsgType = 0x81
	TypeJoin     MsgType = 0x10
	TypeUpdate   MsgType = 0x11
	TypeBusy     MsgType = 0x12
	TypeSummary  MsgType = 0x13
)

func (t MsgType) String() string {
	switch t {
	case TypePing:
		return "Ping"
	case TypePong:
		return "Pong"
	case TypeQuery:
		return "Query"
	case TypeQueryHit:
		return "QueryHit"
	case TypeJoin:
		return "Join"
	case TypeUpdate:
		return "Update"
	case TypeBusy:
		return "Busy"
	case TypeSummary:
		return "Summary"
	case TypeRegister:
		return "Register"
	case TypeDirective:
		return "Directive"
	case TypeDirectiveAck:
		return "DirectiveAck"
	case TypeChunkRequest:
		return "ChunkRequest"
	case TypeChunkData:
		return "ChunkData"
	case TypeChunkNack:
		return "ChunkNack"
	}
	return fmt.Sprintf("MsgType(0x%02x)", byte(t))
}

// GUID is a 16-byte descriptor identifier. Super-peers use it for duplicate
// detection when the same query arrives over a cycle.
type GUID [16]byte

// Header is the 23-byte Gnutella descriptor header.
type Header struct {
	ID         GUID
	Type       MsgType
	TTL        uint8
	Hops       uint8
	PayloadLen uint32
}

// ErrShortMessage is returned when a buffer is too small to hold the claimed
// message.
var ErrShortMessage = errors.New("gnutella: short message")

// ErrBadMessage is returned for structurally invalid messages.
var ErrBadMessage = errors.New("gnutella: malformed message")

func (h *Header) encode(buf []byte) {
	copy(buf[0:16], h.ID[:])
	buf[16] = byte(h.Type)
	buf[17] = h.TTL
	buf[18] = h.Hops
	binary.LittleEndian.PutUint32(buf[19:23], h.PayloadLen)
}

func decodeHeader(buf []byte) (Header, error) {
	if len(buf) < DescriptorHeaderLen {
		return Header{}, fmt.Errorf("%w: %d bytes for header", ErrShortMessage, len(buf))
	}
	var h Header
	copy(h.ID[:], buf[0:16])
	h.Type = MsgType(buf[16])
	h.TTL = buf[17]
	h.Hops = buf[18]
	h.PayloadLen = binary.LittleEndian.Uint32(buf[19:23])
	return h, nil
}

// Ping is the Gnutella 0.4 keep-alive probe, reused by the live super-peer
// stack as the heartbeat that detects dead peers and partitioned links. The
// payload is empty: the descriptor header alone carries the GUID.
type Ping struct {
	ID   GUID
	TTL  uint8
	Hops uint8
}

// Encode serializes the ping (descriptor header only, no payload).
func (p *Ping) Encode() []byte {
	buf := make([]byte, DescriptorHeaderLen)
	h := Header{ID: p.ID, Type: TypePing, TTL: p.TTL, Hops: p.Hops}
	h.encode(buf)
	return buf
}

// WireSize returns the on-the-wire size including framing: PingLen.
func (p *Ping) WireSize() int { return PingSize() }

// DecodePing parses an encoded ping.
func DecodePing(buf []byte) (*Ping, error) {
	h, err := decodeHeader(buf)
	if err != nil {
		return nil, err
	}
	if h.Type != TypePing {
		return nil, fmt.Errorf("%w: type %v, want Ping", ErrBadMessage, h.Type)
	}
	if h.PayloadLen != 0 || len(buf) != DescriptorHeaderLen {
		return nil, fmt.Errorf("%w: ping payload %d, want 0", ErrBadMessage, h.PayloadLen)
	}
	return &Ping{ID: h.ID, TTL: h.TTL, Hops: h.Hops}, nil
}

// Pong answers a Ping, echoing its GUID. Like the heartbeat Ping it carries
// no payload: liveness, not peer discovery, is the information.
type Pong struct {
	ID   GUID
	TTL  uint8
	Hops uint8
}

// Encode serializes the pong (descriptor header only, no payload).
func (p *Pong) Encode() []byte {
	buf := make([]byte, DescriptorHeaderLen)
	h := Header{ID: p.ID, Type: TypePong, TTL: p.TTL, Hops: p.Hops}
	h.encode(buf)
	return buf
}

// WireSize returns the on-the-wire size including framing: PingLen.
func (p *Pong) WireSize() int { return PingSize() }

// DecodePong parses an encoded pong.
func DecodePong(buf []byte) (*Pong, error) {
	h, err := decodeHeader(buf)
	if err != nil {
		return nil, err
	}
	if h.Type != TypePong {
		return nil, fmt.Errorf("%w: type %v, want Pong", ErrBadMessage, h.Type)
	}
	if h.PayloadLen != 0 || len(buf) != DescriptorHeaderLen {
		return nil, fmt.Errorf("%w: pong payload %d, want 0", ErrBadMessage, h.PayloadLen)
	}
	return &Pong{ID: h.ID, TTL: h.TTL, Hops: h.Hops}, nil
}

// Busy is the explicit load-shed signal of the overload-protected super-peer
// stack: a node that cannot accept a Query (dispatch queue full, per-link
// inflight cap hit, or client rate limit exceeded) answers Busy echoing the
// query's GUID instead of silently dropping it, and intermediate super-peers
// relay it along the reverse path so the originator can count degraded
// coverage. Like the heartbeat frames it is outside the paper's cost model;
// the payload is empty.
type Busy struct {
	ID   GUID
	TTL  uint8
	Hops uint8
}

// Encode serializes the busy signal (descriptor header only, no payload).
func (b *Busy) Encode() []byte {
	buf := make([]byte, DescriptorHeaderLen)
	h := Header{ID: b.ID, Type: TypeBusy, TTL: b.TTL, Hops: b.Hops}
	h.encode(buf)
	return buf
}

// WireSize returns the on-the-wire size including framing: PingLen.
func (b *Busy) WireSize() int { return PingSize() }

// DecodeBusy parses an encoded busy signal.
func DecodeBusy(buf []byte) (*Busy, error) {
	h, err := decodeHeader(buf)
	if err != nil {
		return nil, err
	}
	if h.Type != TypeBusy {
		return nil, fmt.Errorf("%w: type %v, want Busy", ErrBadMessage, h.Type)
	}
	if h.PayloadLen != 0 || len(buf) != DescriptorHeaderLen {
		return nil, fmt.Errorf("%w: busy payload %d, want 0", ErrBadMessage, h.PayloadLen)
	}
	return &Busy{ID: h.ID, TTL: h.TTL, Hops: h.Hops}, nil
}

// Query is a keyword search request flooded over the super-peer overlay.
type Query struct {
	ID       GUID
	TTL      uint8
	Hops     uint8
	MinSpeed uint16
	Text     string
}

// Encode serializes the query (descriptor header + payload, no framing).
func (q *Query) Encode() []byte {
	payload := 2 + len(q.Text) + 1
	buf := make([]byte, DescriptorHeaderLen+payload)
	h := Header{ID: q.ID, Type: TypeQuery, TTL: q.TTL, Hops: q.Hops, PayloadLen: uint32(payload)}
	h.encode(buf)
	binary.LittleEndian.PutUint16(buf[23:25], q.MinSpeed)
	copy(buf[25:], q.Text)
	buf[len(buf)-1] = 0 // NUL terminator
	return buf
}

// WireSize returns the on-the-wire size including framing; it equals
// QuerySize(len(Text)).
func (q *Query) WireSize() int { return QuerySize(len(q.Text)) }

// DecodeQuery parses an encoded query.
func DecodeQuery(buf []byte) (*Query, error) {
	h, err := decodeHeader(buf)
	if err != nil {
		return nil, err
	}
	if h.Type != TypeQuery {
		return nil, fmt.Errorf("%w: type %v, want Query", ErrBadMessage, h.Type)
	}
	if int(h.PayloadLen) != len(buf)-DescriptorHeaderLen || h.PayloadLen < 3 {
		return nil, fmt.Errorf("%w: payload length %d vs buffer %d", ErrBadMessage, h.PayloadLen, len(buf)-DescriptorHeaderLen)
	}
	if buf[len(buf)-1] != 0 {
		return nil, fmt.Errorf("%w: query text not NUL-terminated", ErrBadMessage)
	}
	return &Query{
		ID:       h.ID,
		TTL:      h.TTL,
		Hops:     h.Hops,
		MinSpeed: binary.LittleEndian.Uint16(buf[23:25]),
		Text:     string(buf[25 : len(buf)-1]),
	}, nil
}

// titleFieldLen is the fixed-width title field in result and metadata
// records. Records are fixed-size at the measured Gnutella averages
// (Table 3) so that encoded sizes equal the cost model's size formulas.
const titleFieldLen = 66

// ResultRecord describes one matching file in a QueryHit: exactly
// ResultRecordLen (76) bytes on the wire.
type ResultRecord struct {
	FileIndex uint32
	FileSize  uint32
	AddrRef   uint16 // index into the QueryHit's Responders
	Title     string // truncated/padded to titleFieldLen bytes
}

// ResponderRecord names a client whose collection produced results: exactly
// ResponderRecordLen (28) bytes on the wire.
type ResponderRecord struct {
	IP          [4]byte
	Port        uint16
	Speed       uint32
	ClientGUID  GUID
	ResultCount uint16
}

// QueryHit is the Response message: one per responding super-peer, carrying
// the results and the address of each client whose collection produced a
// result (Section 3.2).
type QueryHit struct {
	ID         GUID
	TTL        uint8
	Hops       uint8
	Responders []ResponderRecord
	Results    []ResultRecord
}

// Encode serializes the query hit (descriptor header + payload, no framing).
func (r *QueryHit) Encode() ([]byte, error) {
	if len(r.Responders) > 255 {
		return nil, fmt.Errorf("%w: %d responders, max 255", ErrBadMessage, len(r.Responders))
	}
	payload := 1 + ResponderRecordLen*len(r.Responders) + ResultRecordLen*len(r.Results)
	buf := make([]byte, DescriptorHeaderLen+payload)
	h := Header{ID: r.ID, Type: TypeQueryHit, TTL: r.TTL, Hops: r.Hops, PayloadLen: uint32(payload)}
	h.encode(buf)
	buf[23] = byte(len(r.Responders))
	off := 24
	for _, a := range r.Responders {
		copy(buf[off:off+4], a.IP[:])
		binary.LittleEndian.PutUint16(buf[off+4:off+6], a.Port)
		binary.LittleEndian.PutUint32(buf[off+6:off+10], a.Speed)
		copy(buf[off+10:off+26], a.ClientGUID[:])
		binary.LittleEndian.PutUint16(buf[off+26:off+28], a.ResultCount)
		off += ResponderRecordLen
	}
	for _, res := range r.Results {
		binary.LittleEndian.PutUint32(buf[off:off+4], res.FileIndex)
		binary.LittleEndian.PutUint32(buf[off+4:off+8], res.FileSize)
		binary.LittleEndian.PutUint16(buf[off+8:off+10], res.AddrRef)
		copy(buf[off+10:off+10+titleFieldLen], res.Title)
		off += ResultRecordLen
	}
	return buf, nil
}

// WireSize returns the on-the-wire size including framing; it equals
// ResponseSize(len(Responders), len(Results)).
func (r *QueryHit) WireSize() int { return ResponseSize(len(r.Responders), len(r.Results)) }

// DecodeQueryHit parses an encoded query hit.
func DecodeQueryHit(buf []byte) (*QueryHit, error) {
	h, err := decodeHeader(buf)
	if err != nil {
		return nil, err
	}
	if h.Type != TypeQueryHit {
		return nil, fmt.Errorf("%w: type %v, want QueryHit", ErrBadMessage, h.Type)
	}
	if int(h.PayloadLen) != len(buf)-DescriptorHeaderLen || h.PayloadLen < 1 {
		return nil, fmt.Errorf("%w: payload length %d vs buffer %d", ErrBadMessage, h.PayloadLen, len(buf)-DescriptorHeaderLen)
	}
	numAddrs := int(buf[23])
	rest := int(h.PayloadLen) - 1 - ResponderRecordLen*numAddrs
	if rest < 0 || rest%ResultRecordLen != 0 {
		return nil, fmt.Errorf("%w: %d responders do not fit payload %d", ErrBadMessage, numAddrs, h.PayloadLen)
	}
	numResults := rest / ResultRecordLen
	qh := &QueryHit{
		ID:         h.ID,
		TTL:        h.TTL,
		Hops:       h.Hops,
		Responders: make([]ResponderRecord, numAddrs),
		Results:    make([]ResultRecord, numResults),
	}
	off := 24
	for i := range qh.Responders {
		a := &qh.Responders[i]
		copy(a.IP[:], buf[off:off+4])
		a.Port = binary.LittleEndian.Uint16(buf[off+4 : off+6])
		a.Speed = binary.LittleEndian.Uint32(buf[off+6 : off+10])
		copy(a.ClientGUID[:], buf[off+10:off+26])
		a.ResultCount = binary.LittleEndian.Uint16(buf[off+26 : off+28])
		off += ResponderRecordLen
	}
	for i := range qh.Results {
		res := &qh.Results[i]
		res.FileIndex = binary.LittleEndian.Uint32(buf[off : off+4])
		res.FileSize = binary.LittleEndian.Uint32(buf[off+4 : off+8])
		res.AddrRef = binary.LittleEndian.Uint16(buf[off+8 : off+10])
		res.Title = trimNUL(buf[off+10 : off+10+titleFieldLen])
		off += ResultRecordLen
	}
	return qh, nil
}

// MetadataRecord is the per-file metadata a client ships to its super-peer
// at join time: exactly MetadataRecordLen (72) bytes on the wire.
type MetadataRecord struct {
	FileIndex uint32
	FileSize  uint32
	Title     string // truncated/padded to 64 bytes
}

const metadataTitleLen = MetadataRecordLen - 8

// Join is the message a client sends each (partner) super-peer when it
// connects, carrying metadata for its whole collection.
type Join struct {
	ID    GUID
	Files []MetadataRecord
}

// Encode serializes the join (descriptor header + payload, no framing).
func (j *Join) Encode() []byte {
	payload := 1 + MetadataRecordLen*len(j.Files)
	buf := make([]byte, DescriptorHeaderLen+payload)
	h := Header{ID: j.ID, Type: TypeJoin, TTL: 1, PayloadLen: uint32(payload)}
	h.encode(buf)
	buf[23] = 0 // flags, reserved
	off := 24
	for _, f := range j.Files {
		binary.LittleEndian.PutUint32(buf[off:off+4], f.FileIndex)
		binary.LittleEndian.PutUint32(buf[off+4:off+8], f.FileSize)
		copy(buf[off+8:off+8+metadataTitleLen], f.Title)
		off += MetadataRecordLen
	}
	return buf
}

// WireSize returns the on-the-wire size including framing; it equals
// JoinSize(len(Files)).
func (j *Join) WireSize() int { return JoinSize(len(j.Files)) }

// DecodeJoin parses an encoded join.
func DecodeJoin(buf []byte) (*Join, error) {
	h, err := decodeHeader(buf)
	if err != nil {
		return nil, err
	}
	if h.Type != TypeJoin {
		return nil, fmt.Errorf("%w: type %v, want Join", ErrBadMessage, h.Type)
	}
	rest := int(h.PayloadLen) - 1
	if int(h.PayloadLen) != len(buf)-DescriptorHeaderLen || rest < 0 || rest%MetadataRecordLen != 0 {
		return nil, fmt.Errorf("%w: join payload %d", ErrBadMessage, h.PayloadLen)
	}
	j := &Join{ID: h.ID, Files: make([]MetadataRecord, rest/MetadataRecordLen)}
	off := 24
	for i := range j.Files {
		f := &j.Files[i]
		f.FileIndex = binary.LittleEndian.Uint32(buf[off : off+4])
		f.FileSize = binary.LittleEndian.Uint32(buf[off+4 : off+8])
		f.Title = trimNUL(buf[off+8 : off+8+metadataTitleLen])
		off += MetadataRecordLen
	}
	return j, nil
}

// UpdateOp distinguishes the kinds of collection changes a client reports.
type UpdateOp byte

// Update operations.
const (
	OpInsert UpdateOp = 1
	OpDelete UpdateOp = 2
	OpModify UpdateOp = 3
)

// Update is a single-item collection change sent from a client to its
// (partner) super-peer(s): exactly UpdateLen (152) bytes on the wire.
type Update struct {
	ID   GUID
	Op   UpdateOp
	File MetadataRecord
}

// Encode serializes the update (descriptor header + payload, no framing).
func (u *Update) Encode() []byte {
	payload := 1 + MetadataRecordLen
	buf := make([]byte, DescriptorHeaderLen+payload)
	h := Header{ID: u.ID, Type: TypeUpdate, TTL: 1, PayloadLen: uint32(payload)}
	h.encode(buf)
	buf[23] = byte(u.Op)
	binary.LittleEndian.PutUint32(buf[24:28], u.File.FileIndex)
	binary.LittleEndian.PutUint32(buf[28:32], u.File.FileSize)
	copy(buf[32:32+metadataTitleLen], u.File.Title)
	return buf
}

// WireSize returns the on-the-wire size including framing: UpdateLen.
func (u *Update) WireSize() int { return UpdateSize() }

// DecodeUpdate parses an encoded update.
func DecodeUpdate(buf []byte) (*Update, error) {
	h, err := decodeHeader(buf)
	if err != nil {
		return nil, err
	}
	if h.Type != TypeUpdate {
		return nil, fmt.Errorf("%w: type %v, want Update", ErrBadMessage, h.Type)
	}
	if int(h.PayloadLen) != len(buf)-DescriptorHeaderLen || int(h.PayloadLen) != 1+MetadataRecordLen {
		return nil, fmt.Errorf("%w: update payload %d", ErrBadMessage, h.PayloadLen)
	}
	u := &Update{ID: h.ID, Op: UpdateOp(buf[23])}
	if u.Op < OpInsert || u.Op > OpModify {
		return nil, fmt.Errorf("%w: update op %d", ErrBadMessage, u.Op)
	}
	u.File.FileIndex = binary.LittleEndian.Uint32(buf[24:28])
	u.File.FileSize = binary.LittleEndian.Uint32(buf[28:32])
	u.File.Title = trimNUL(buf[32 : 32+metadataTitleLen])
	return u, nil
}

// Summary advertises a super-peer's routing-index digest for one overlay
// edge: the set of terms reachable through the sender (its own index merged
// with its other neighbors' summaries, split-horizon). Receivers feed it to
// the routingindex strategy, which forwards a query over an edge only if the
// edge's summary covers every query term. Payload: 2-byte term count, then
// each term as a 1-byte length prefix followed by its bytes.
type Summary struct {
	ID    GUID
	TTL   uint8
	Hops  uint8
	Terms []string
}

// Encode serializes the summary (descriptor header + payload, no framing).
// Terms longer than 255 bytes or counts above 65535 are rejected.
func (s *Summary) Encode() ([]byte, error) {
	if len(s.Terms) > 65535 {
		return nil, fmt.Errorf("%w: %d summary terms, max 65535", ErrBadMessage, len(s.Terms))
	}
	payload := 2
	for _, t := range s.Terms {
		if len(t) > 255 {
			return nil, fmt.Errorf("%w: summary term %d bytes, max 255", ErrBadMessage, len(t))
		}
		payload += 1 + len(t)
	}
	buf := make([]byte, DescriptorHeaderLen+payload)
	h := Header{ID: s.ID, Type: TypeSummary, TTL: s.TTL, Hops: s.Hops, PayloadLen: uint32(payload)}
	h.encode(buf)
	binary.LittleEndian.PutUint16(buf[23:25], uint16(len(s.Terms)))
	off := 25
	for _, t := range s.Terms {
		buf[off] = byte(len(t))
		copy(buf[off+1:], t)
		off += 1 + len(t)
	}
	return buf, nil
}

// WireSize returns the on-the-wire size including framing; it equals
// SummarySize(#terms, total term bytes).
func (s *Summary) WireSize() int {
	bytes := 0
	for _, t := range s.Terms {
		bytes += len(t)
	}
	return SummarySize(len(s.Terms), bytes)
}

// DecodeSummary parses an encoded summary.
func DecodeSummary(buf []byte) (*Summary, error) {
	h, err := decodeHeader(buf)
	if err != nil {
		return nil, err
	}
	if h.Type != TypeSummary {
		return nil, fmt.Errorf("%w: type %v, want Summary", ErrBadMessage, h.Type)
	}
	if int(h.PayloadLen) != len(buf)-DescriptorHeaderLen || h.PayloadLen < 2 {
		return nil, fmt.Errorf("%w: summary payload %d", ErrBadMessage, h.PayloadLen)
	}
	n := int(binary.LittleEndian.Uint16(buf[23:25]))
	s := &Summary{ID: h.ID, TTL: h.TTL, Hops: h.Hops}
	if n > 0 {
		s.Terms = make([]string, 0, n)
	}
	off := 25
	for i := 0; i < n; i++ {
		if off >= len(buf) {
			return nil, fmt.Errorf("%w: summary truncated at term %d/%d", ErrBadMessage, i, n)
		}
		l := int(buf[off])
		off++
		if off+l > len(buf) {
			return nil, fmt.Errorf("%w: summary term %d overruns payload", ErrBadMessage, i)
		}
		s.Terms = append(s.Terms, string(buf[off:off+l]))
		off += l
	}
	if off != len(buf) {
		return nil, fmt.Errorf("%w: %d trailing summary bytes", ErrBadMessage, len(buf)-off)
	}
	return s, nil
}

// trimNUL interprets a fixed-width field as a NUL-padded string.
func trimNUL(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}
