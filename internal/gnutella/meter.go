package gnutella

import "spnet/internal/metrics"

// LoadClass maps a payload descriptor type onto the metrics load taxonomy
// (Table 2 components plus the live-stack Busy and heartbeat classes).
func LoadClass(t MsgType) metrics.Class {
	switch t {
	case TypeQuery:
		return metrics.ClassQuery
	case TypeQueryHit:
		return metrics.ClassResponse
	case TypeJoin:
		return metrics.ClassJoin
	case TypeUpdate:
		return metrics.ClassUpdate
	case TypeBusy:
		return metrics.ClassBusy
	case TypePing, TypePong:
		return metrics.ClassPing
	case TypeChunkRequest, TypeChunkData, TypeChunkNack:
		return metrics.ClassTransfer
	case TypeSummary, TypeRegister, TypeDirective, TypeDirectiveAck:
		return metrics.ClassOther
	}
	return metrics.ClassOther
}

// MessageClass classifies a decoded message. Allocation-free.
func MessageClass(m Message) metrics.Class {
	switch m.(type) {
	case *Query:
		return metrics.ClassQuery
	case *QueryHit:
		return metrics.ClassResponse
	case *Join:
		return metrics.ClassJoin
	case *Update:
		return metrics.ClassUpdate
	case *Busy:
		return metrics.ClassBusy
	case *Ping, *Pong:
		return metrics.ClassPing
	case *ChunkRequest, *ChunkData, *ChunkNack:
		return metrics.ClassTransfer
	case *Summary, *Register, *Directive, *DirectiveAck:
		return metrics.ClassOther
	}
	return metrics.ClassOther
}

// Meter attributes one codec message to lm in direction d, charging its full
// wire size (payload plus frame overhead) so measured bytes are commensurate
// with the analytical cost model.
func Meter(lm *metrics.LoadMeter, d metrics.Dir, m Message) {
	lm.Observe(MessageClass(m), d, m.WireSize())
}
