package gnutella

import (
	"encoding/binary"
	"fmt"
)

// Control-plane payload descriptors. These frames carry the fleet control
// plane of Section 5.3 made operational: nodes announce themselves with
// Register, the controller pushes versioned Directives, and nodes confirm
// with DirectiveAck. Like heartbeats and summaries they are outside the
// paper's Table 2 cost model (metered as ClassOther).
const (
	TypeRegister     MsgType = 0x14
	TypeDirective    MsgType = 0x15
	TypeDirectiveAck MsgType = 0x16
)

// Register flags.
const (
	// RegisterHello announces a live node (sent when a control link opens).
	RegisterHello uint8 = 0
	// RegisterBye deregisters gracefully (sent on node shutdown, so the
	// controller distinguishes a drain from a crash).
	RegisterBye uint8 = 1
)

// controlStringMax bounds each length-prefixed string field (1-byte prefix).
const controlStringMax = 255

// Register is the node → controller announcement: the node's identity, its
// addresses, and the highest directive epoch it has applied — the state the
// controller rebuilds its database from after its own restart. Payload:
// 1-byte flags, 8-byte little-endian epoch, then NodeID, Addr and Telemetry
// each as a 1-byte length prefix followed by its bytes.
type Register struct {
	ID    GUID
	Flags uint8
	// Epoch is the highest directive epoch the node has applied; the
	// controller adopts the fleet-wide maximum so epochs stay monotonic
	// across controller restarts.
	Epoch uint64
	// NodeID is the node's stable operator-assigned label.
	NodeID string
	// Addr is the node's p2p listen address.
	Addr string
	// Telemetry is the node's metrics HTTP address ("" when not serving).
	Telemetry string
}

// registerPayload is the fixed part of a Register payload.
const registerPayload = 1 + 8

// Encode serializes the register (descriptor header + payload, no framing).
// String fields longer than 255 bytes are rejected.
func (rg *Register) Encode() ([]byte, error) {
	for _, s := range []string{rg.NodeID, rg.Addr, rg.Telemetry} {
		if len(s) > controlStringMax {
			return nil, fmt.Errorf("%w: register field %d bytes, max %d", ErrBadMessage, len(s), controlStringMax)
		}
	}
	payload := registerPayload + 3 + len(rg.NodeID) + len(rg.Addr) + len(rg.Telemetry)
	buf := make([]byte, DescriptorHeaderLen+payload)
	h := Header{ID: rg.ID, Type: TypeRegister, TTL: 1, PayloadLen: uint32(payload)}
	h.encode(buf)
	buf[23] = rg.Flags
	binary.LittleEndian.PutUint64(buf[24:32], rg.Epoch)
	off := 32
	for _, s := range []string{rg.NodeID, rg.Addr, rg.Telemetry} {
		buf[off] = byte(len(s))
		copy(buf[off+1:], s)
		off += 1 + len(s)
	}
	return buf, nil
}

// WireSize returns the on-the-wire size including framing; it equals
// RegisterSize(total string bytes).
func (rg *Register) WireSize() int {
	return RegisterSize(len(rg.NodeID) + len(rg.Addr) + len(rg.Telemetry))
}

// DecodeRegister parses an encoded register.
func DecodeRegister(buf []byte) (*Register, error) {
	h, err := decodeHeader(buf)
	if err != nil {
		return nil, err
	}
	if h.Type != TypeRegister {
		return nil, fmt.Errorf("%w: type %v, want Register", ErrBadMessage, h.Type)
	}
	if int(h.PayloadLen) != len(buf)-DescriptorHeaderLen || h.PayloadLen < registerPayload+3 {
		return nil, fmt.Errorf("%w: register payload %d", ErrBadMessage, h.PayloadLen)
	}
	rg := &Register{ID: h.ID, Flags: buf[23]}
	if rg.Flags > RegisterBye {
		return nil, fmt.Errorf("%w: register flags 0x%02x", ErrBadMessage, rg.Flags)
	}
	rg.Epoch = binary.LittleEndian.Uint64(buf[24:32])
	off := 32
	for _, dst := range []*string{&rg.NodeID, &rg.Addr, &rg.Telemetry} {
		if off >= len(buf) {
			return nil, fmt.Errorf("%w: register truncated at offset %d", ErrBadMessage, off)
		}
		l := int(buf[off])
		off++
		if off+l > len(buf) {
			return nil, fmt.Errorf("%w: register field overruns payload", ErrBadMessage)
		}
		*dst = string(buf[off : off+l])
		off += l
	}
	if off != len(buf) {
		return nil, fmt.Errorf("%w: %d trailing register bytes", ErrBadMessage, len(buf)-off)
	}
	return rg, nil
}

// DirectiveAction identifies which Section 5.3 local decision a Directive
// carries.
type DirectiveAction uint8

// Directive actions.
const (
	// ActionPromotePartner tells a surviving partner to take over a dead
	// partner's cluster: raise its client capacity to MaxClients and,
	// when Target is set, peer with that super-peer address (rule I's
	// partner-promotion overload/failure response).
	ActionPromotePartner DirectiveAction = 1
	// ActionSplitCluster sheds load by capping the cluster at MaxClients
	// (rule I, overload response).
	ActionSplitCluster DirectiveAction = 2
	// ActionCoalesce absorbs another cluster's clients by raising capacity
	// to MaxClients (rule I, underload response).
	ActionCoalesce DirectiveAction = 3
	// ActionSetTTL changes the TTL the node stamps on queries (rule III /
	// TTL decay under bandwidth pressure).
	ActionSetTTL DirectiveAction = 4
)

func (a DirectiveAction) String() string {
	switch a {
	case ActionPromotePartner:
		return "promote-partner"
	case ActionSplitCluster:
		return "split-cluster"
	case ActionCoalesce:
		return "coalesce"
	case ActionSetTTL:
		return "set-ttl"
	}
	return fmt.Sprintf("DirectiveAction(%d)", uint8(a))
}

// Directive is a controller → node control message: one versioned Section 5.3
// decision. Epochs make directives idempotent — a node applies a directive
// only if its epoch exceeds the highest epoch it has applied, so replays and
// stale retries are rejected harmlessly. Payload: 8-byte little-endian epoch,
// 1-byte action, 1-byte TTL, 2-byte little-endian MaxClients, then Target as
// a 1-byte length prefix followed by its bytes.
type Directive struct {
	ID     GUID
	Epoch  uint64
	Action DirectiveAction
	// TTL is the new query TTL for ActionSetTTL (ignored otherwise).
	TTL uint8
	// MaxClients is the new client capacity for the capacity-changing
	// actions (0 = leave unchanged).
	MaxClients uint16
	// Target is a super-peer address the node should peer with (used by
	// ActionPromotePartner; "" = none).
	Target string
}

// directivePayload is the fixed part of a Directive payload.
const directivePayload = 8 + 1 + 1 + 2

// Encode serializes the directive (descriptor header + payload, no framing).
func (d *Directive) Encode() ([]byte, error) {
	if len(d.Target) > controlStringMax {
		return nil, fmt.Errorf("%w: directive target %d bytes, max %d", ErrBadMessage, len(d.Target), controlStringMax)
	}
	payload := directivePayload + 1 + len(d.Target)
	buf := make([]byte, DescriptorHeaderLen+payload)
	h := Header{ID: d.ID, Type: TypeDirective, TTL: 1, PayloadLen: uint32(payload)}
	h.encode(buf)
	binary.LittleEndian.PutUint64(buf[23:31], d.Epoch)
	buf[31] = byte(d.Action)
	buf[32] = d.TTL
	binary.LittleEndian.PutUint16(buf[33:35], d.MaxClients)
	buf[35] = byte(len(d.Target))
	copy(buf[36:], d.Target)
	return buf, nil
}

// WireSize returns the on-the-wire size including framing; it equals
// DirectiveSize(len(Target)).
func (d *Directive) WireSize() int { return DirectiveSize(len(d.Target)) }

// DecodeDirective parses an encoded directive.
func DecodeDirective(buf []byte) (*Directive, error) {
	h, err := decodeHeader(buf)
	if err != nil {
		return nil, err
	}
	if h.Type != TypeDirective {
		return nil, fmt.Errorf("%w: type %v, want Directive", ErrBadMessage, h.Type)
	}
	if int(h.PayloadLen) != len(buf)-DescriptorHeaderLen || h.PayloadLen < directivePayload+1 {
		return nil, fmt.Errorf("%w: directive payload %d", ErrBadMessage, h.PayloadLen)
	}
	d := &Directive{
		ID:         h.ID,
		Epoch:      binary.LittleEndian.Uint64(buf[23:31]),
		Action:     DirectiveAction(buf[31]),
		TTL:        buf[32],
		MaxClients: binary.LittleEndian.Uint16(buf[33:35]),
	}
	if d.Action < ActionPromotePartner || d.Action > ActionSetTTL {
		return nil, fmt.Errorf("%w: directive action %d", ErrBadMessage, d.Action)
	}
	tlen := int(buf[35])
	if 36+tlen != len(buf) {
		return nil, fmt.Errorf("%w: directive target length %d vs %d remaining", ErrBadMessage, tlen, len(buf)-36)
	}
	d.Target = string(buf[36 : 36+tlen])
	return d, nil
}

// DirectiveAck is the node → controller receipt for one Directive: it echoes
// the directive's epoch and reports whether the node applied it (Applied=1)
// or rejected it as stale (Applied=0 — the node had already applied an equal
// or newer epoch, so the directive was an idempotent no-op). Payload: 8-byte
// little-endian epoch, 1-byte applied flag, then NodeID as a 1-byte length
// prefix followed by its bytes.
type DirectiveAck struct {
	ID      GUID
	Epoch   uint64
	Applied uint8 // 1 = applied, 0 = stale (already superseded)
	NodeID  string
}

// ackPayload is the fixed part of a DirectiveAck payload.
const ackPayload = 8 + 1

// Encode serializes the ack (descriptor header + payload, no framing).
func (a *DirectiveAck) Encode() ([]byte, error) {
	if len(a.NodeID) > controlStringMax {
		return nil, fmt.Errorf("%w: ack node id %d bytes, max %d", ErrBadMessage, len(a.NodeID), controlStringMax)
	}
	payload := ackPayload + 1 + len(a.NodeID)
	buf := make([]byte, DescriptorHeaderLen+payload)
	h := Header{ID: a.ID, Type: TypeDirectiveAck, TTL: 1, PayloadLen: uint32(payload)}
	h.encode(buf)
	binary.LittleEndian.PutUint64(buf[23:31], a.Epoch)
	buf[31] = a.Applied
	buf[32] = byte(len(a.NodeID))
	copy(buf[33:], a.NodeID)
	return buf, nil
}

// WireSize returns the on-the-wire size including framing; it equals
// DirectiveAckSize(len(NodeID)).
func (a *DirectiveAck) WireSize() int { return DirectiveAckSize(len(a.NodeID)) }

// DecodeDirectiveAck parses an encoded directive ack.
func DecodeDirectiveAck(buf []byte) (*DirectiveAck, error) {
	h, err := decodeHeader(buf)
	if err != nil {
		return nil, err
	}
	if h.Type != TypeDirectiveAck {
		return nil, fmt.Errorf("%w: type %v, want DirectiveAck", ErrBadMessage, h.Type)
	}
	if int(h.PayloadLen) != len(buf)-DescriptorHeaderLen || h.PayloadLen < ackPayload+1 {
		return nil, fmt.Errorf("%w: ack payload %d", ErrBadMessage, h.PayloadLen)
	}
	a := &DirectiveAck{
		ID:      h.ID,
		Epoch:   binary.LittleEndian.Uint64(buf[23:31]),
		Applied: buf[31],
	}
	if a.Applied > 1 {
		return nil, fmt.Errorf("%w: ack applied flag %d", ErrBadMessage, a.Applied)
	}
	nlen := int(buf[32])
	if 33+nlen != len(buf) {
		return nil, fmt.Errorf("%w: ack node id length %d vs %d remaining", ErrBadMessage, nlen, len(buf)-33)
	}
	a.NodeID = string(buf[33 : 33+nlen])
	return a, nil
}
