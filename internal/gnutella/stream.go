package gnutella

import (
	"fmt"
	"io"
)

// Message is any wire message: queries, query hits, joins and updates.
type Message interface {
	// WireSize returns the on-the-wire size including framing, as the cost
	// model prices it.
	WireSize() int
}

// Compile-time checks that every message satisfies Message.
var (
	_ Message = (*Ping)(nil)
	_ Message = (*Pong)(nil)
	_ Message = (*Busy)(nil)
	_ Message = (*Query)(nil)
	_ Message = (*QueryHit)(nil)
	_ Message = (*Join)(nil)
	_ Message = (*Update)(nil)
	_ Message = (*Summary)(nil)
	_ Message = (*Register)(nil)
	_ Message = (*Directive)(nil)
	_ Message = (*DirectiveAck)(nil)
	_ Message = (*ChunkRequest)(nil)
	_ Message = (*ChunkData)(nil)
	_ Message = (*ChunkNack)(nil)
)

// MaxPayloadLen is the hard upper bound on accepted payloads, protecting
// readers from malicious or corrupt length fields: a frame header can never
// make ReadMessage allocate more than this (plus the 23-byte header).
const MaxPayloadLen = 1 << 22 // 4 MiB: ~55k result records

// ErrPayloadTooLarge reports a frame whose header claims a payload above the
// reader's limit. It is returned before any payload byte is read or
// allocated, so an attacker-controlled length field costs nothing. Shared by
// the node's read path and the decoder fuzz target. An oversized frame is a
// kind of malformed message, so errors.Is also matches ErrBadMessage.
var ErrPayloadTooLarge error = payloadTooLargeError{}

type payloadTooLargeError struct{}

func (payloadTooLargeError) Error() string { return "gnutella: payload exceeds limit" }

// Is makes ErrPayloadTooLarge a refinement of ErrBadMessage.
func (payloadTooLargeError) Is(target error) bool { return target == ErrBadMessage }

// WriteMessage serializes one message to w (descriptor header + payload;
// TCP provides the framing the cost model's fixed overhead accounts for).
func WriteMessage(w io.Writer, m Message) error {
	var buf []byte
	var err error
	switch msg := m.(type) {
	case *Ping:
		buf = msg.Encode()
	case *Pong:
		buf = msg.Encode()
	case *Busy:
		buf = msg.Encode()
	case *Query:
		buf = msg.Encode()
	case *QueryHit:
		buf, err = msg.Encode()
		if err != nil {
			return err
		}
	case *Summary:
		buf, err = msg.Encode()
		if err != nil {
			return err
		}
	case *Register:
		buf, err = msg.Encode()
		if err != nil {
			return err
		}
	case *Directive:
		buf, err = msg.Encode()
		if err != nil {
			return err
		}
	case *DirectiveAck:
		buf, err = msg.Encode()
		if err != nil {
			return err
		}
	case *Join:
		buf = msg.Encode()
	case *Update:
		buf = msg.Encode()
	case *ChunkRequest:
		buf = msg.Encode()
	case *ChunkData:
		buf, err = msg.Encode()
		if err != nil {
			return err
		}
	case *ChunkNack:
		buf = msg.Encode()
	default:
		return fmt.Errorf("%w: unsupported message type %T", ErrBadMessage, m)
	}
	_, err = w.Write(buf)
	return err
}

// ReadMessage reads and decodes the next message from r, accepting payloads
// up to MaxPayloadLen. It returns io.EOF (or io.ErrUnexpectedEOF mid-message)
// when the stream ends.
func ReadMessage(r io.Reader) (Message, error) {
	return ReadMessageLimit(r, MaxPayloadLen)
}

// ReadMessageLimit is ReadMessage with an explicit payload bound: frames
// whose header claims more than maxPayload bytes are rejected with
// ErrPayloadTooLarge before any payload is read. maxPayload is clamped to
// [0, MaxPayloadLen]; 0 selects MaxPayloadLen.
func ReadMessageLimit(r io.Reader, maxPayload uint32) (Message, error) {
	if maxPayload == 0 || maxPayload > MaxPayloadLen {
		maxPayload = MaxPayloadLen
	}
	head := make([]byte, DescriptorHeaderLen)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, err
	}
	h, err := decodeHeader(head)
	if err != nil {
		return nil, err
	}
	if h.PayloadLen > maxPayload {
		return nil, fmt.Errorf("%w: payload length %d > %d", ErrPayloadTooLarge, h.PayloadLen, maxPayload)
	}
	buf := make([]byte, DescriptorHeaderLen+int(h.PayloadLen))
	copy(buf, head)
	if _, err := io.ReadFull(r, buf[DescriptorHeaderLen:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	switch h.Type {
	case TypePing:
		return DecodePing(buf)
	case TypePong:
		return DecodePong(buf)
	case TypeBusy:
		return DecodeBusy(buf)
	case TypeQuery:
		return DecodeQuery(buf)
	case TypeQueryHit:
		return DecodeQueryHit(buf)
	case TypeJoin:
		return DecodeJoin(buf)
	case TypeUpdate:
		return DecodeUpdate(buf)
	case TypeSummary:
		return DecodeSummary(buf)
	case TypeRegister:
		return DecodeRegister(buf)
	case TypeDirective:
		return DecodeDirective(buf)
	case TypeDirectiveAck:
		return DecodeDirectiveAck(buf)
	case TypeChunkRequest:
		return DecodeChunkRequest(buf)
	case TypeChunkData:
		return DecodeChunkData(buf)
	case TypeChunkNack:
		return DecodeChunkNack(buf)
	}
	return nil, fmt.Errorf("%w: unknown message type 0x%02x", ErrBadMessage, byte(h.Type))
}
