package gnutella

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestSizeFormulas(t *testing.T) {
	// The bandwidth column of the paper's Table 2.
	if got := QuerySize(12); got != 94 {
		t.Errorf("QuerySize(12) = %d, want 94 (the paper's average query)", got)
	}
	if got := QuerySize(0); got != 82 {
		t.Errorf("QuerySize(0) = %d, want 82", got)
	}
	if got := ResponseSize(0, 0); got != 80 {
		t.Errorf("ResponseSize(0,0) = %d, want 80", got)
	}
	if got := ResponseSize(2, 3); got != 80+2*28+3*76 {
		t.Errorf("ResponseSize(2,3) = %d, want %d", got, 80+2*28+3*76)
	}
	if got := JoinSize(0); got != 80 {
		t.Errorf("JoinSize(0) = %d, want 80", got)
	}
	if got := JoinSize(10); got != 80+720 {
		t.Errorf("JoinSize(10) = %d, want 800", got)
	}
	if got := UpdateSize(); got != 152 {
		t.Errorf("UpdateSize() = %d, want 152", got)
	}
}

func TestQueryRoundTrip(t *testing.T) {
	q := &Query{TTL: 7, Hops: 2, MinSpeed: 56, Text: "free music"}
	q.ID[0], q.ID[15] = 0xaa, 0xbb
	buf := q.Encode()
	got, err := DecodeQuery(buf)
	if err != nil {
		t.Fatalf("DecodeQuery: %v", err)
	}
	if *got != *q {
		t.Errorf("round trip: got %+v, want %+v", got, q)
	}
	// Encoded size + framing must match the cost model's size formula.
	if len(buf)+FrameOverhead != q.WireSize() {
		t.Errorf("encoded %d + frame %d != WireSize %d", len(buf), FrameOverhead, q.WireSize())
	}
}

func TestQueryRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(id [16]byte, ttl, hops uint8, speed uint16, text string) bool {
		if strings.ContainsRune(text, 0) || len(text) > 200 {
			return true // NUL-terminated wire format excludes embedded NULs
		}
		q := &Query{ID: GUID(id), TTL: ttl, Hops: hops, MinSpeed: speed, Text: text}
		got, err := DecodeQuery(q.Encode())
		return err == nil && *got == *q
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestQueryHitRoundTrip(t *testing.T) {
	qh := &QueryHit{
		TTL:  5,
		Hops: 1,
		Responders: []ResponderRecord{
			{IP: [4]byte{10, 0, 0, 1}, Port: 6346, Speed: 56, ResultCount: 2},
			{IP: [4]byte{10, 0, 0, 2}, Port: 6347, Speed: 1000, ResultCount: 1},
		},
		Results: []ResultRecord{
			{FileIndex: 1, FileSize: 3_000_000, AddrRef: 0, Title: "song-a.mp3"},
			{FileIndex: 2, FileSize: 4_000_000, AddrRef: 0, Title: "song-b.mp3"},
			{FileIndex: 9, FileSize: 5_000_000, AddrRef: 1, Title: "song-c.mp3"},
		},
	}
	buf, err := qh.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeQueryHit(buf)
	if err != nil {
		t.Fatalf("DecodeQueryHit: %v", err)
	}
	if len(got.Responders) != 2 || len(got.Results) != 3 {
		t.Fatalf("got %d responders, %d results", len(got.Responders), len(got.Results))
	}
	if got.Responders[1] != qh.Responders[1] {
		t.Errorf("responder mismatch: %+v vs %+v", got.Responders[1], qh.Responders[1])
	}
	if got.Results[2] != qh.Results[2] {
		t.Errorf("result mismatch: %+v vs %+v", got.Results[2], qh.Results[2])
	}
	if len(buf)+FrameOverhead != qh.WireSize() {
		t.Errorf("encoded %d + frame != WireSize %d", len(buf), qh.WireSize())
	}
	if qh.WireSize() != ResponseSize(2, 3) {
		t.Errorf("WireSize %d != ResponseSize %d", qh.WireSize(), ResponseSize(2, 3))
	}
}

func TestQueryHitEmptySized(t *testing.T) {
	qh := &QueryHit{}
	buf, err := qh.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf)+FrameOverhead != 80 {
		t.Errorf("empty hit wire size = %d, want 80", len(buf)+FrameOverhead)
	}
}

func TestQueryHitTooManyResponders(t *testing.T) {
	qh := &QueryHit{Responders: make([]ResponderRecord, 256)}
	if _, err := qh.Encode(); err == nil {
		t.Error("256 responders accepted")
	}
}

func TestQueryHitRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(nAddr, nRes uint8, seed uint32) bool {
		qh := &QueryHit{
			Responders: make([]ResponderRecord, int(nAddr)%20),
			Results:    make([]ResultRecord, int(nRes)%20),
		}
		for i := range qh.Responders {
			qh.Responders[i].Port = uint16(seed) + uint16(i)
		}
		for i := range qh.Results {
			qh.Results[i].FileIndex = seed + uint32(i)
			qh.Results[i].Title = "t"
		}
		buf, err := qh.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeQueryHit(buf)
		if err != nil {
			return false
		}
		return len(got.Responders) == len(qh.Responders) &&
			len(got.Results) == len(qh.Results) &&
			got.WireSize() == qh.WireSize()
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestJoinRoundTrip(t *testing.T) {
	j := &Join{Files: []MetadataRecord{
		{FileIndex: 1, FileSize: 100, Title: "a"},
		{FileIndex: 2, FileSize: 200, Title: "b"},
	}}
	buf := j.Encode()
	got, err := DecodeJoin(buf)
	if err != nil {
		t.Fatalf("DecodeJoin: %v", err)
	}
	if len(got.Files) != 2 || got.Files[0] != j.Files[0] || got.Files[1] != j.Files[1] {
		t.Errorf("round trip mismatch: %+v", got.Files)
	}
	if len(buf)+FrameOverhead != JoinSize(2) {
		t.Errorf("join wire size = %d, want %d", len(buf)+FrameOverhead, JoinSize(2))
	}
}

func TestJoinEmptyCollection(t *testing.T) {
	j := &Join{} // free rider with zero files still joins
	got, err := DecodeJoin(j.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Files) != 0 {
		t.Errorf("got %d files", len(got.Files))
	}
	if j.WireSize() != 80 {
		t.Errorf("WireSize = %d, want 80", j.WireSize())
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	for _, op := range []UpdateOp{OpInsert, OpDelete, OpModify} {
		u := &Update{Op: op, File: MetadataRecord{FileIndex: 7, FileSize: 9, Title: "x.mp3"}}
		buf := u.Encode()
		got, err := DecodeUpdate(buf)
		if err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		if got.Op != op || got.File != u.File {
			t.Errorf("op %d round trip: %+v", op, got)
		}
		if len(buf)+FrameOverhead != 152 {
			t.Errorf("update wire size = %d, want 152", len(buf)+FrameOverhead)
		}
	}
}

func TestDecodeRejectsWrongType(t *testing.T) {
	q := (&Query{Text: "x"}).Encode()
	if _, err := DecodeJoin(q); !errors.Is(err, ErrBadMessage) {
		t.Errorf("DecodeJoin(query) err = %v, want ErrBadMessage", err)
	}
	if _, err := DecodeQueryHit(q); !errors.Is(err, ErrBadMessage) {
		t.Errorf("DecodeQueryHit(query) err = %v, want ErrBadMessage", err)
	}
	j := (&Join{}).Encode()
	if _, err := DecodeQuery(j); !errors.Is(err, ErrBadMessage) {
		t.Errorf("DecodeQuery(join) err = %v, want ErrBadMessage", err)
	}
	if _, err := DecodeUpdate(j); !errors.Is(err, ErrBadMessage) {
		t.Errorf("DecodeUpdate(join) err = %v, want ErrBadMessage", err)
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	q := (&Query{Text: "hello"}).Encode()
	for _, n := range []int{0, 10, 22, len(q) - 1} {
		if _, err := DecodeQuery(q[:n]); err == nil {
			t.Errorf("truncated to %d bytes accepted", n)
		}
	}
}

func TestDecodeRejectsCorruptPayloadLen(t *testing.T) {
	q := (&Query{Text: "hello"}).Encode()
	q[19] = 0xff // corrupt payload length
	if _, err := DecodeQuery(q); !errors.Is(err, ErrBadMessage) {
		t.Errorf("corrupt payload length: err = %v", err)
	}
}

func TestDecodeRejectsBadResponderCount(t *testing.T) {
	qh := &QueryHit{Results: make([]ResultRecord, 1)}
	buf, err := qh.Encode()
	if err != nil {
		t.Fatal(err)
	}
	buf[23] = 200 // claim 200 responders that are not present
	if _, err := DecodeQueryHit(buf); !errors.Is(err, ErrBadMessage) {
		t.Errorf("bad responder count: err = %v", err)
	}
}

func TestDecodeRejectsBadUpdateOp(t *testing.T) {
	u := &Update{Op: OpInsert}
	buf := u.Encode()
	buf[23] = 99
	if _, err := DecodeUpdate(buf); !errors.Is(err, ErrBadMessage) {
		t.Errorf("bad op: err = %v", err)
	}
}

func TestTitleTruncation(t *testing.T) {
	long := strings.Repeat("x", 300)
	u := &Update{Op: OpInsert, File: MetadataRecord{Title: long}}
	got, err := DecodeUpdate(u.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.File.Title) != metadataTitleLen {
		t.Errorf("title length %d, want %d", len(got.File.Title), metadataTitleLen)
	}
}

func TestPingPongRoundTrip(t *testing.T) {
	p := &Ping{TTL: 1, Hops: 0}
	p.ID[3] = 0xcc
	got, err := DecodePing(p.Encode())
	if err != nil {
		t.Fatalf("DecodePing: %v", err)
	}
	if *got != *p {
		t.Errorf("ping round trip: got %+v, want %+v", got, p)
	}
	if len(p.Encode())+FrameOverhead != p.WireSize() || p.WireSize() != PingLen {
		t.Errorf("ping WireSize %d, want %d", p.WireSize(), PingLen)
	}

	q := &Pong{TTL: 1, Hops: 2}
	q.ID[7] = 0xdd
	gotPong, err := DecodePong(q.Encode())
	if err != nil {
		t.Fatalf("DecodePong: %v", err)
	}
	if *gotPong != *q {
		t.Errorf("pong round trip: got %+v, want %+v", gotPong, q)
	}

	// Stream framing: pings and pongs interleave with other traffic.
	var buf bytes.Buffer
	for _, m := range []Message{p, &Query{TTL: 3, Text: "x"}, q} {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("WriteMessage(%T): %v", m, err)
		}
	}
	if m, err := ReadMessage(&buf); err != nil {
		t.Fatalf("ReadMessage: %v", err)
	} else if _, ok := m.(*Ping); !ok {
		t.Errorf("first message %T, want *Ping", m)
	}
	if _, err := ReadMessage(&buf); err != nil {
		t.Fatalf("ReadMessage: %v", err)
	}
	if m, err := ReadMessage(&buf); err != nil {
		t.Fatalf("ReadMessage: %v", err)
	} else if _, ok := m.(*Pong); !ok {
		t.Errorf("third message %T, want *Pong", m)
	}
}

func TestPingRejectsPayload(t *testing.T) {
	p := &Ping{}
	buf := p.Encode()
	buf[19] = 4 // claim a 4-byte payload
	if _, err := DecodePing(append(buf, 0, 0, 0, 0)); !errors.Is(err, ErrBadMessage) {
		t.Errorf("ping with payload: err = %v, want ErrBadMessage", err)
	}
	if _, err := DecodePong((&Ping{}).Encode()); !errors.Is(err, ErrBadMessage) {
		t.Errorf("DecodePong of a ping: err = %v, want ErrBadMessage", err)
	}
}

func TestMsgTypeString(t *testing.T) {
	for typ, want := range map[MsgType]string{
		TypePing: "Ping", TypePong: "Pong",
		TypeQuery: "Query", TypeQueryHit: "QueryHit",
		TypeJoin: "Join", TypeUpdate: "Update", MsgType(0x42): "MsgType(0x42)",
	} {
		if got := typ.String(); got != want {
			t.Errorf("String(%#x) = %q, want %q", byte(typ), got, want)
		}
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	s := &Summary{TTL: 1, Hops: 2, Terms: []string{"free", "jazz", "miles"}}
	s.ID[5] = 0xab
	buf, err := s.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := DecodeSummary(buf)
	if err != nil {
		t.Fatalf("DecodeSummary: %v", err)
	}
	if got.ID != s.ID || got.TTL != s.TTL || got.Hops != s.Hops {
		t.Errorf("header round trip: got %+v, want %+v", got, s)
	}
	if len(got.Terms) != len(s.Terms) {
		t.Fatalf("terms: got %v, want %v", got.Terms, s.Terms)
	}
	for i := range s.Terms {
		if got.Terms[i] != s.Terms[i] {
			t.Errorf("term %d: got %q, want %q", i, got.Terms[i], s.Terms[i])
		}
	}
	wantSize := SummarySize(3, len("free")+len("jazz")+len("miles"))
	if s.WireSize() != wantSize || len(buf)+FrameOverhead != wantSize {
		t.Errorf("WireSize %d (encoded %d+%d), want %d", s.WireSize(), len(buf), FrameOverhead, wantSize)
	}

	// Empty summaries (a neighbor with nothing reachable) are legal.
	empty := &Summary{}
	buf, err = empty.Encode()
	if err != nil {
		t.Fatalf("Encode empty: %v", err)
	}
	if got, err = DecodeSummary(buf); err != nil {
		t.Fatalf("DecodeSummary empty: %v", err)
	} else if len(got.Terms) != 0 {
		t.Errorf("empty summary decoded %v", got.Terms)
	}

	// Stream framing.
	var sb bytes.Buffer
	if err := WriteMessage(&sb, s); err != nil {
		t.Fatalf("WriteMessage: %v", err)
	}
	if m, err := ReadMessage(&sb); err != nil {
		t.Fatalf("ReadMessage: %v", err)
	} else if _, ok := m.(*Summary); !ok {
		t.Errorf("stream message %T, want *Summary", m)
	}
}

func TestSummaryRejectsMalformed(t *testing.T) {
	s := &Summary{Terms: []string{"abc"}}
	buf, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Claim more terms than the payload holds.
	buf[23] = 9
	if _, err := DecodeSummary(buf); !errors.Is(err, ErrBadMessage) {
		t.Errorf("truncated summary: err = %v, want ErrBadMessage", err)
	}
	// Trailing bytes after the declared terms.
	buf[23] = 0
	if _, err := DecodeSummary(buf); !errors.Is(err, ErrBadMessage) {
		t.Errorf("trailing bytes: err = %v, want ErrBadMessage", err)
	}
	// Oversized term.
	long := &Summary{Terms: []string{string(make([]byte, 256))}}
	if _, err := long.Encode(); !errors.Is(err, ErrBadMessage) {
		t.Errorf("256-byte term: err = %v, want ErrBadMessage", err)
	}
}
