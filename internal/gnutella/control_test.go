package gnutella

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestRegisterRoundTrip(t *testing.T) {
	in := &Register{
		ID:        GUID{1, 2, 3},
		Flags:     RegisterBye,
		Epoch:     1<<40 + 17,
		NodeID:    "sp-2-1",
		Addr:      "127.0.0.1:7001",
		Telemetry: "127.0.0.1:9001",
	}
	buf, err := in.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if got := len(buf) + FrameOverhead; got != in.WireSize() {
		t.Errorf("encoded %d+framing bytes, WireSize %d", len(buf), in.WireSize())
	}
	out, err := DecodeRegister(buf)
	if err != nil {
		t.Fatalf("DecodeRegister: %v", err)
	}
	if *out != *in {
		t.Errorf("round trip: got %+v, want %+v", out, in)
	}
}

func TestRegisterEmptyFields(t *testing.T) {
	in := &Register{ID: GUID{9}}
	buf, err := in.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	out, err := DecodeRegister(buf)
	if err != nil {
		t.Fatalf("DecodeRegister: %v", err)
	}
	if *out != *in {
		t.Errorf("round trip: got %+v, want %+v", out, in)
	}
}

func TestRegisterRejectsOversizeField(t *testing.T) {
	in := &Register{Addr: strings.Repeat("x", 256)}
	if _, err := in.Encode(); !errors.Is(err, ErrBadMessage) {
		t.Errorf("oversize field: err %v, want ErrBadMessage", err)
	}
}

func TestDecodeRegisterRejectsDamage(t *testing.T) {
	valid, err := (&Register{NodeID: "sp-0-0", Addr: "a:1", Telemetry: "t:2", Epoch: 5}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"wrong type", func(b []byte) []byte { b[16] = byte(TypePing); return b }},
		{"bad flags", func(b []byte) []byte { b[23] = 7; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-2] }},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0) }},
		{"field overrun", func(b []byte) []byte { b[32] = 200; return b }},
		{"short payload claim", func(b []byte) []byte { b[19] = 2; return b }},
	}
	for _, tc := range cases {
		buf := append([]byte(nil), valid...)
		buf = tc.mut(buf)
		if tc.name == "truncated" || tc.name == "trailing bytes" {
			// length field must track the mutation so only the structural
			// damage is under test
			putPayloadLen(buf, len(buf)-DescriptorHeaderLen)
		}
		if _, err := DecodeRegister(buf); !errors.Is(err, ErrBadMessage) {
			t.Errorf("%s: err %v, want ErrBadMessage", tc.name, err)
		}
	}
	if _, err := DecodeRegister(valid[:10]); !errors.Is(err, ErrShortMessage) {
		t.Errorf("short buffer: err %v, want ErrShortMessage", err)
	}
}

func TestDirectiveRoundTrip(t *testing.T) {
	in := &Directive{
		ID:         GUID{4, 5},
		Epoch:      99,
		Action:     ActionPromotePartner,
		TTL:        5,
		MaxClients: 250,
		Target:     "127.0.0.1:7002",
	}
	buf, err := in.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if got := len(buf) + FrameOverhead; got != in.WireSize() {
		t.Errorf("encoded %d+framing bytes, WireSize %d", len(buf), in.WireSize())
	}
	out, err := DecodeDirective(buf)
	if err != nil {
		t.Fatalf("DecodeDirective: %v", err)
	}
	if *out != *in {
		t.Errorf("round trip: got %+v, want %+v", out, in)
	}
}

func TestDecodeDirectiveRejectsDamage(t *testing.T) {
	valid, err := (&Directive{Epoch: 1, Action: ActionSetTTL, TTL: 3}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"wrong type", func(b []byte) []byte { b[16] = byte(TypeQuery); return b }},
		{"zero action", func(b []byte) []byte { b[31] = 0; return b }},
		{"unknown action", func(b []byte) []byte { b[31] = 9; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-1] }},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0, 0) }},
		{"target overrun", func(b []byte) []byte { b[35] = 50; return b }},
	}
	for _, tc := range cases {
		buf := append([]byte(nil), valid...)
		buf = tc.mut(buf)
		if tc.name == "truncated" || tc.name == "trailing bytes" {
			putPayloadLen(buf, len(buf)-DescriptorHeaderLen)
		}
		if _, err := DecodeDirective(buf); !errors.Is(err, ErrBadMessage) {
			t.Errorf("%s: err %v, want ErrBadMessage", tc.name, err)
		}
	}
}

func TestDirectiveActionString(t *testing.T) {
	for a, want := range map[DirectiveAction]string{
		ActionPromotePartner: "promote-partner",
		ActionSplitCluster:   "split-cluster",
		ActionCoalesce:       "coalesce",
		ActionSetTTL:         "set-ttl",
		DirectiveAction(9):   "DirectiveAction(9)",
	} {
		if got := a.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", a, got, want)
		}
	}
}

func TestDirectiveAckRoundTrip(t *testing.T) {
	in := &DirectiveAck{ID: GUID{8}, Epoch: 7, Applied: 1, NodeID: "sp-1-0"}
	buf, err := in.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if got := len(buf) + FrameOverhead; got != in.WireSize() {
		t.Errorf("encoded %d+framing bytes, WireSize %d", len(buf), in.WireSize())
	}
	out, err := DecodeDirectiveAck(buf)
	if err != nil {
		t.Fatalf("DecodeDirectiveAck: %v", err)
	}
	if *out != *in {
		t.Errorf("round trip: got %+v, want %+v", out, in)
	}
}

func TestDecodeDirectiveAckRejectsDamage(t *testing.T) {
	valid, err := (&DirectiveAck{Epoch: 7, Applied: 0, NodeID: "sp-1-0"}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"wrong type", func(b []byte) []byte { b[16] = byte(TypeBusy); return b }},
		{"bad applied flag", func(b []byte) []byte { b[31] = 2; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-3] }},
		{"trailing bytes", func(b []byte) []byte { return append(b, 1) }},
		{"node id overrun", func(b []byte) []byte { b[32] = 99; return b }},
	}
	for _, tc := range cases {
		buf := append([]byte(nil), valid...)
		buf = tc.mut(buf)
		if tc.name == "truncated" || tc.name == "trailing bytes" {
			putPayloadLen(buf, len(buf)-DescriptorHeaderLen)
		}
		if _, err := DecodeDirectiveAck(buf); !errors.Is(err, ErrBadMessage) {
			t.Errorf("%s: err %v, want ErrBadMessage", tc.name, err)
		}
	}
}

// TestControlFramesOverStream checks the control frames flow through the
// generic stream reader/writer like every other message type.
func TestControlFramesOverStream(t *testing.T) {
	msgs := []Message{
		&Register{ID: GUID{1}, Epoch: 3, NodeID: "sp-0-0", Addr: "a:1", Telemetry: "t:1"},
		&Directive{ID: GUID{2}, Epoch: 4, Action: ActionCoalesce, MaxClients: 50},
		&DirectiveAck{ID: GUID{3}, Epoch: 4, Applied: 1, NodeID: "sp-0-0"},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("WriteMessage(%T): %v", m, err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("ReadMessage: %v", err)
		}
		switch w := want.(type) {
		case *Register:
			if g, ok := got.(*Register); !ok || *g != *w {
				t.Errorf("got %+v, want %+v", got, w)
			}
		case *Directive:
			if g, ok := got.(*Directive); !ok || *g != *w {
				t.Errorf("got %+v, want %+v", got, w)
			}
		case *DirectiveAck:
			if g, ok := got.(*DirectiveAck); !ok || *g != *w {
				t.Errorf("got %+v, want %+v", got, w)
			}
		}
	}
}

// putPayloadLen rewrites the little-endian payload-length field of an encoded
// frame so deliberate truncation tests exercise body checks, not the header
// length check.
func putPayloadLen(buf []byte, n int) {
	buf[19] = byte(n)
	buf[20] = byte(n >> 8)
	buf[21] = byte(n >> 16)
	buf[22] = byte(n >> 24)
}
