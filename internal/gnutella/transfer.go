package gnutella

import (
	"encoding/binary"
	"fmt"
)

// Transfer-plane payload descriptors. These frames carry the download plane:
// after a QueryHit names a file and the super-peer serving it, the downloader
// opens a transfer link and pulls the file chunk by chunk — ChunkRequest asks
// for one chunk, ChunkData carries its bytes, and ChunkNack refuses a request
// the server cannot serve. Transfer traffic is a load class of its own
// (metrics.ClassTransfer) beside the paper's Table 2 taxonomy: the paper's
// cost model stops at QueryHit, and these frames price what happens next.
const (
	TypeChunkRequest MsgType = 0x17
	TypeChunkData    MsgType = 0x18
	TypeChunkNack    MsgType = 0x19
)

// ChunkRequest asks a serving node for one chunk of a file it advertised in a
// QueryHit. Chunk indices are 0-based; the sentinel index used for manifest
// requests is a transfer-plane convention, not a wire rule. Payload: 4-byte
// little-endian file index, 4-byte little-endian chunk index.
type ChunkRequest struct {
	ID        GUID
	FileIndex uint32
	Chunk     uint32
}

// chunkRequestPayload is a ChunkRequest's fixed payload length.
const chunkRequestPayload = 4 + 4

// Encode serializes the request (descriptor header + payload, no framing).
func (cr *ChunkRequest) Encode() []byte {
	buf := make([]byte, DescriptorHeaderLen+chunkRequestPayload)
	h := Header{ID: cr.ID, Type: TypeChunkRequest, TTL: 1, PayloadLen: chunkRequestPayload}
	h.encode(buf)
	binary.LittleEndian.PutUint32(buf[23:27], cr.FileIndex)
	binary.LittleEndian.PutUint32(buf[27:31], cr.Chunk)
	return buf
}

// WireSize returns the on-the-wire size including framing: ChunkRequestSize().
func (cr *ChunkRequest) WireSize() int { return ChunkRequestSize() }

// DecodeChunkRequest parses an encoded chunk request.
func DecodeChunkRequest(buf []byte) (*ChunkRequest, error) {
	h, err := decodeHeader(buf)
	if err != nil {
		return nil, err
	}
	if h.Type != TypeChunkRequest {
		return nil, fmt.Errorf("%w: type %v, want ChunkRequest", ErrBadMessage, h.Type)
	}
	if int(h.PayloadLen) != len(buf)-DescriptorHeaderLen || h.PayloadLen != chunkRequestPayload {
		return nil, fmt.Errorf("%w: chunk request payload %d", ErrBadMessage, h.PayloadLen)
	}
	return &ChunkRequest{
		ID:        h.ID,
		FileIndex: binary.LittleEndian.Uint32(buf[23:27]),
		Chunk:     binary.LittleEndian.Uint32(buf[27:31]),
	}, nil
}

// ChunkData answers one ChunkRequest with the chunk's bytes. TotalChunks and
// FileSize repeat the file's shape on every chunk so a downloader can size its
// resume bitmap from whichever response arrives first. Payload: 4-byte file
// index, 4-byte chunk index, 4-byte total chunk count, 8-byte file size (all
// little-endian), then the chunk bytes.
type ChunkData struct {
	ID          GUID
	FileIndex   uint32
	Chunk       uint32
	TotalChunks uint32
	FileSize    uint64
	Data        []byte
}

// chunkDataPayload is the fixed part of a ChunkData payload.
const chunkDataPayload = 4 + 4 + 4 + 8

// MaxChunkLen bounds a single chunk's data bytes, keeping every ChunkData
// frame well under MaxPayloadLen so transfer links obey the same reader
// limits as every other link.
const MaxChunkLen = 1 << 20 // 1 MiB

// Encode serializes the chunk data (descriptor header + payload, no framing).
func (cd *ChunkData) Encode() ([]byte, error) {
	if len(cd.Data) > MaxChunkLen {
		return nil, fmt.Errorf("%w: chunk data %d bytes, max %d", ErrBadMessage, len(cd.Data), MaxChunkLen)
	}
	payload := chunkDataPayload + len(cd.Data)
	buf := make([]byte, DescriptorHeaderLen+payload)
	h := Header{ID: cd.ID, Type: TypeChunkData, TTL: 1, PayloadLen: uint32(payload)}
	h.encode(buf)
	binary.LittleEndian.PutUint32(buf[23:27], cd.FileIndex)
	binary.LittleEndian.PutUint32(buf[27:31], cd.Chunk)
	binary.LittleEndian.PutUint32(buf[31:35], cd.TotalChunks)
	binary.LittleEndian.PutUint64(buf[35:43], cd.FileSize)
	copy(buf[43:], cd.Data)
	return buf, nil
}

// WireSize returns the on-the-wire size including framing; it equals
// ChunkDataSize(len(Data)).
func (cd *ChunkData) WireSize() int { return ChunkDataSize(len(cd.Data)) }

// DecodeChunkData parses an encoded chunk data frame.
func DecodeChunkData(buf []byte) (*ChunkData, error) {
	h, err := decodeHeader(buf)
	if err != nil {
		return nil, err
	}
	if h.Type != TypeChunkData {
		return nil, fmt.Errorf("%w: type %v, want ChunkData", ErrBadMessage, h.Type)
	}
	if int(h.PayloadLen) != len(buf)-DescriptorHeaderLen || h.PayloadLen < chunkDataPayload {
		return nil, fmt.Errorf("%w: chunk data payload %d", ErrBadMessage, h.PayloadLen)
	}
	if int(h.PayloadLen)-chunkDataPayload > MaxChunkLen {
		return nil, fmt.Errorf("%w: chunk data %d bytes, max %d",
			ErrBadMessage, int(h.PayloadLen)-chunkDataPayload, MaxChunkLen)
	}
	cd := &ChunkData{
		ID:          h.ID,
		FileIndex:   binary.LittleEndian.Uint32(buf[23:27]),
		Chunk:       binary.LittleEndian.Uint32(buf[27:31]),
		TotalChunks: binary.LittleEndian.Uint32(buf[31:35]),
		FileSize:    binary.LittleEndian.Uint64(buf[35:43]),
	}
	if len(buf) > 43 {
		cd.Data = append([]byte(nil), buf[43:]...)
	}
	return cd, nil
}

// ChunkNack reason codes.
const (
	// NackNotFound: the server has no file under the requested index, or the
	// chunk index is out of range.
	NackNotFound uint8 = 1
	// NackBusy: the server's transfer plane is saturated; retry later or on
	// another source.
	NackBusy uint8 = 2
	// NackBadRequest: the request was structurally valid but unserviceable
	// (e.g. a manifest of an empty file).
	NackBadRequest uint8 = 3
)

// ChunkNack refuses one ChunkRequest. Payload: 4-byte file index, 4-byte
// chunk index (both little-endian), 1-byte reason code.
type ChunkNack struct {
	ID        GUID
	FileIndex uint32
	Chunk     uint32
	Code      uint8
}

// chunkNackPayload is a ChunkNack's fixed payload length.
const chunkNackPayload = 4 + 4 + 1

// Encode serializes the nack (descriptor header + payload, no framing).
func (cn *ChunkNack) Encode() []byte {
	buf := make([]byte, DescriptorHeaderLen+chunkNackPayload)
	h := Header{ID: cn.ID, Type: TypeChunkNack, TTL: 1, PayloadLen: chunkNackPayload}
	h.encode(buf)
	binary.LittleEndian.PutUint32(buf[23:27], cn.FileIndex)
	binary.LittleEndian.PutUint32(buf[27:31], cn.Chunk)
	buf[31] = cn.Code
	return buf
}

// WireSize returns the on-the-wire size including framing: ChunkNackSize().
func (cn *ChunkNack) WireSize() int { return ChunkNackSize() }

// DecodeChunkNack parses an encoded chunk nack.
func DecodeChunkNack(buf []byte) (*ChunkNack, error) {
	h, err := decodeHeader(buf)
	if err != nil {
		return nil, err
	}
	if h.Type != TypeChunkNack {
		return nil, fmt.Errorf("%w: type %v, want ChunkNack", ErrBadMessage, h.Type)
	}
	if int(h.PayloadLen) != len(buf)-DescriptorHeaderLen || h.PayloadLen != chunkNackPayload {
		return nil, fmt.Errorf("%w: chunk nack payload %d", ErrBadMessage, h.PayloadLen)
	}
	cn := &ChunkNack{
		ID:        h.ID,
		FileIndex: binary.LittleEndian.Uint32(buf[23:27]),
		Chunk:     binary.LittleEndian.Uint32(buf[27:31]),
		Code:      buf[31],
	}
	if cn.Code < NackNotFound || cn.Code > NackBadRequest {
		return nil, fmt.Errorf("%w: chunk nack code %d", ErrBadMessage, cn.Code)
	}
	return cn, nil
}
