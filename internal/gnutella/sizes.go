// Package gnutella models the wire format the paper's cost model is derived
// from (Section 4, Step 2): Gnutella 0.4 message layouts plus the Join and
// Update messages super-peer networks add, with byte-exact on-the-wire sizes
// including Ethernet and TCP/IP framing. The size formulas here are the
// bandwidth column of the paper's Table 2; the binary codec in wire.go is
// used by the message-level simulator.
package gnutella

// Framing and header constants. The paper: "query messages in Gnutella
// include a 22-byte Gnutella header, a 2 byte field for flags, and a
// null-terminated query string. Total size of a query message, including
// Ethernet and TCP/IP headers, is therefore 82 + query string length."
const (
	// DescriptorHeaderLen is the Gnutella descriptor header: 16-byte
	// descriptor ID (GUID), 1-byte payload type, 1-byte TTL, 1-byte hops,
	// 4-byte payload length.
	DescriptorHeaderLen = 23

	// FrameOverhead is the per-packet Ethernet + TCP/IP framing the paper
	// folds into every message size: 82 = frame + 23-byte header + 2-byte
	// flags + 1 NUL, so framing accounts for 56 bytes.
	FrameOverhead = 56

	// QueryFixedLen is the fixed part of a query message on the wire:
	// framing + descriptor header + 2-byte minimum-speed flags + NUL
	// terminator. Total query size = QueryFixedLen + len(query string).
	QueryFixedLen = 82

	// ResponseFixedLen is the fixed part of a query-response message:
	// framing + descriptor header + 1-byte hit count. Table 2 charges
	// 80 + 28·#addr + 76·#results.
	ResponseFixedLen = 80

	// ResponderRecordLen is the per-responding-client overhead in a
	// Response: the address block naming a client whose collection produced
	// results (IP, port, speed, servent GUID fragment) — 28 bytes per
	// address in Table 2.
	ResponderRecordLen = 28

	// ResultRecordLen is the average size of one result record (file index,
	// file size, title string) as measured over Gnutella: 76 bytes
	// (paper Table 3).
	ResultRecordLen = 76

	// JoinFixedLen is the fixed part of a Join message: framing + header +
	// collection-size field. Table 2 charges 80 + 72·#files.
	JoinFixedLen = 80

	// MetadataRecordLen is the average metadata size for a single shared
	// file sent at join time: 72 bytes (paper Table 3).
	MetadataRecordLen = 72

	// UpdateLen is the size of an Update message: one metadata record plus
	// framing and header — 152 bytes in Table 2.
	UpdateLen = 152

	// DefaultQueryStringLen is the expected query-string length measured
	// over Gnutella: 12 bytes (paper Table 3). Average query message is
	// therefore 94 bytes, the figure quoted in Section 4.
	DefaultQueryStringLen = 12

	// PingLen is the size of a heartbeat Ping or Pong on the wire: framing
	// plus the bare descriptor header. Heartbeats are a liveness mechanism
	// of the runnable stack, not part of the paper's cost model, which
	// prices only query/response/join/update traffic.
	PingLen = FrameOverhead + DescriptorHeaderLen
)

// SummarySize returns the on-the-wire size of a Summary message advertising
// numTerms terms whose UTF-8 lengths total termBytes: framing + descriptor
// header + 2-byte term count + a 1-byte length prefix per term. Summaries
// propagate routing-index digests between super-peers; like heartbeats they
// are outside the paper's Table 2 cost model.
func SummarySize(numTerms, termBytes int) int {
	return FrameOverhead + DescriptorHeaderLen + 2 + numTerms + termBytes
}

// QuerySize returns the on-the-wire size of a query whose string has the
// given length: 82 + query length.
func QuerySize(queryLen int) int { return QueryFixedLen + queryLen }

// ResponseSize returns the on-the-wire size of a Response message carrying
// the given number of responding-client addresses and result records:
// 80 + 28·#addr + 76·#results.
func ResponseSize(numAddrs, numResults int) int {
	return ResponseFixedLen + ResponderRecordLen*numAddrs + ResultRecordLen*numResults
}

// JoinSize returns the on-the-wire size of a Join message carrying metadata
// for numFiles files: 80 + 72·#files.
func JoinSize(numFiles int) int { return JoinFixedLen + MetadataRecordLen*numFiles }

// UpdateSize returns the on-the-wire size of an Update message: 152 bytes.
func UpdateSize() int { return UpdateLen }

// PingSize returns the on-the-wire size of a heartbeat Ping or Pong: 79 bytes.
func PingSize() int { return PingLen }

// RegisterSize returns the on-the-wire size of a Register message whose
// NodeID, Addr and Telemetry strings total strBytes: framing + descriptor
// header + 1-byte flags + 8-byte epoch + a 1-byte length prefix per string.
// Control frames are fleet-management traffic outside the paper's Table 2
// cost model.
func RegisterSize(strBytes int) int {
	return FrameOverhead + DescriptorHeaderLen + registerPayload + 3 + strBytes
}

// DirectiveSize returns the on-the-wire size of a Directive message whose
// target address has the given length: framing + descriptor header + 8-byte
// epoch + action/TTL bytes + 2-byte capacity + 1-byte length prefix.
func DirectiveSize(targetLen int) int {
	return FrameOverhead + DescriptorHeaderLen + directivePayload + 1 + targetLen
}

// DirectiveAckSize returns the on-the-wire size of a DirectiveAck whose node
// id has the given length: framing + descriptor header + 8-byte epoch +
// 1-byte applied flag + 1-byte length prefix.
func DirectiveAckSize(nodeIDLen int) int {
	return FrameOverhead + DescriptorHeaderLen + ackPayload + 1 + nodeIDLen
}

// ChunkRequestSize returns the on-the-wire size of a ChunkRequest: framing +
// descriptor header + 4-byte file index + 4-byte chunk index. Transfer frames
// form their own load class (metrics.ClassTransfer) beside Table 2.
func ChunkRequestSize() int {
	return FrameOverhead + DescriptorHeaderLen + chunkRequestPayload
}

// ChunkDataSize returns the on-the-wire size of a ChunkData frame carrying
// dataLen chunk bytes: framing + descriptor header + 20 fixed bytes (file
// index, chunk index, total chunks, file size) + the chunk bytes.
func ChunkDataSize(dataLen int) int {
	return FrameOverhead + DescriptorHeaderLen + chunkDataPayload + dataLen
}

// ChunkNackSize returns the on-the-wire size of a ChunkNack: framing +
// descriptor header + 4-byte file index + 4-byte chunk index + 1-byte code.
func ChunkNackSize() int {
	return FrameOverhead + DescriptorHeaderLen + chunkNackPayload
}
