package gnutella

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"spnet/internal/faults"
)

// seedMessages is one valid encode of every wire message type, the corpus
// the decoder fuzzing starts from.
func seedMessages(t testing.TB) []Message {
	t.Helper()
	return []Message{
		&Ping{ID: GUID{1}, TTL: 7},
		&Pong{ID: GUID{2}, TTL: 1, Hops: 3},
		&Busy{ID: GUID{3}, TTL: 1, Hops: 2},
		&Query{ID: GUID{4}, TTL: 7, MinSpeed: 1, Text: "free jazz"},
		&QueryHit{
			ID:         GUID{5},
			TTL:        7,
			Responders: []ResponderRecord{{ClientGUID: GUID{6}, Port: 6346, ResultCount: 1}},
			Results:    []ResultRecord{{FileIndex: 9, Title: "free jazz classics"}},
		},
		&Join{ID: GUID{7}, Files: []MetadataRecord{{FileIndex: 1, FileSize: 2, Title: "a.mp3"}}},
		&Update{ID: GUID{8}, Op: OpInsert, File: MetadataRecord{FileIndex: 3, Title: "b.mp3"}},
		&Summary{ID: GUID{9}, TTL: 1, Terms: []string{"free", "jazz"}},
		&Register{ID: GUID{10}, Flags: RegisterHello, Epoch: 42,
			NodeID: "sp-0-1", Addr: "127.0.0.1:7001", Telemetry: "127.0.0.1:9001"},
		&Directive{ID: GUID{11}, Epoch: 43, Action: ActionPromotePartner,
			MaxClients: 200, Target: "127.0.0.1:7002"},
		&DirectiveAck{ID: GUID{12}, Epoch: 43, Applied: 1, NodeID: "sp-0-1"},
		&ChunkRequest{ID: GUID{13}, FileIndex: 4, Chunk: 2},
		&ChunkData{ID: GUID{14}, FileIndex: 4, Chunk: 2, TotalChunks: 8,
			FileSize: 1 << 20, Data: []byte("chunk payload bytes")},
		&ChunkNack{ID: GUID{15}, FileIndex: 4, Chunk: 9, Code: NackNotFound},
	}
}

func encodeMsg(t testing.TB, m Message) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatalf("encoding seed %T: %v", m, err)
	}
	return buf.Bytes()
}

// bufferConn adapts a bytes.Buffer to net.Conn so the fault injector's write
// path can produce damaged frames for the fuzz corpus.
type bufferConn struct {
	bytes.Buffer
}

func (*bufferConn) Read([]byte) (int, error)         { return 0, io.EOF }
func (*bufferConn) Close() error                     { return nil }
func (*bufferConn) LocalAddr() net.Addr              { return nil }
func (*bufferConn) RemoteAddr() net.Addr             { return nil }
func (*bufferConn) SetDeadline(time.Time) error      { return nil }
func (*bufferConn) SetReadDeadline(time.Time) error  { return nil }
func (*bufferConn) SetWriteDeadline(time.Time) error { return nil }

// faultedEncodes runs every seed message through a faults.Controller applying
// the given rule to each write, returning whatever bytes reached the "wire".
func faultedEncodes(t testing.TB, seed uint64, rule faults.Rule) [][]byte {
	t.Helper()
	ctrl := faults.NewController(seed)
	ctrl.SetRule("sender", rule)
	var out [][]byte
	for _, m := range seedMessages(t) {
		var buf bufferConn
		fc := ctrl.Wrap("sender", "", &buf)
		WriteMessage(fc, m) // error expected for truncating rules
		if buf.Len() > 0 {
			out = append(out, append([]byte(nil), buf.Bytes()...))
		}
	}
	return out
}

// FuzzReadMessage hammers the stream decoder with arbitrary bytes: it must
// never panic, never hang (the input is finite), and fail only with the typed
// stream errors — io.EOF / io.ErrUnexpectedEOF at stream ends, ErrShortMessage
// or the ErrBadMessage family (including ErrPayloadTooLarge) for damage.
func FuzzReadMessage(f *testing.F) {
	for _, m := range seedMessages(f) {
		f.Add(encodeMsg(f, m))
	}
	// Damaged variants of every message via the fault injector: streams cut
	// mid-frame and streams with flipped bytes.
	for _, b := range faultedEncodes(f, 11, faults.Rule{TruncateProb: 1}) {
		f.Add(b)
	}
	for _, b := range faultedEncodes(f, 12, faults.Rule{CorruptProb: 1}) {
		f.Add(b)
	}
	// A header whose length field vastly overstates the payload.
	huge := encodeMsg(f, &Query{Text: "x"})
	huge[19], huge[20], huge[21], huge[22] = 0xff, 0xff, 0xff, 0x7f
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := ReadMessageLimit(bytes.NewReader(data), 1<<16)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
				!errors.Is(err, ErrShortMessage) && !errors.Is(err, ErrBadMessage) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if msg == nil {
			t.Fatal("nil message with nil error")
		}
		// Whatever decoded must re-encode: decode may not accept frames the
		// encoder cannot produce.
		var buf bytes.Buffer
		if werr := WriteMessage(&buf, msg); werr != nil {
			t.Fatalf("decoded %T does not re-encode: %v", msg, werr)
		}
	})
}

// TestReadMessageFaultedStream replays injector-damaged frames over a real
// connection pair and checks the reader's behavior is bounded: typed errors
// for damage, no hangs past the read deadline.
func TestReadMessageFaultedStream(t *testing.T) {
	cases := []struct {
		name string
		rule faults.Rule
	}{
		{"truncate", faults.Rule{TruncateProb: 1}},
		{"corrupt", faults.Rule{CorruptProb: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctrl := faults.NewController(7)
			ctrl.SetRule("sender", tc.rule)
			for _, m := range seedMessages(t) {
				a, b := net.Pipe()
				// Both ends are deadline-bounded: a corrupted length field may
				// make the reader wait for bytes that never come (or leave the
				// writer with bytes never read), and either way the exchange
				// must end promptly rather than hang.
				a.SetWriteDeadline(time.Now().Add(2 * time.Second))
				b.SetReadDeadline(time.Now().Add(2 * time.Second))
				fc := ctrl.Wrap("sender", "", a)
				done := make(chan error, 1)
				go func() {
					var err error
					for err == nil {
						_, err = ReadMessage(b)
					}
					done <- err
				}()
				WriteMessage(fc, m) // error expected under injected faults
				fc.Close()
				select {
				case err := <-done:
					var ne net.Error
					timeout := errors.As(err, &ne) && ne.Timeout()
					if err != nil && !timeout &&
						!errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
						!errors.Is(err, ErrShortMessage) && !errors.Is(err, ErrBadMessage) &&
						!errors.Is(err, io.ErrClosedPipe) {
						t.Errorf("%T over %s stream: untyped error %v", m, tc.name, err)
					}
				case <-time.After(3 * time.Second):
					t.Fatalf("%T over %s stream: reader hung past its deadline", m, tc.name)
				}
				b.Close()
			}
		})
	}
}
