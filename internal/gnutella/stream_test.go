package gnutella

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestStreamRoundTripMixed(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		&Query{TTL: 7, Text: "free jazz"},
		&Join{Files: []MetadataRecord{{FileIndex: 1, Title: "a.mp3"}}},
		&QueryHit{
			Responders: []ResponderRecord{{Port: 6346, ResultCount: 1}},
			Results:    []ResultRecord{{FileIndex: 1, Title: "a.mp3"}},
		},
		&Update{Op: OpDelete, File: MetadataRecord{FileIndex: 9}},
		&Query{TTL: 1, Text: ""},
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("WriteMessage(%T): %v", m, err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("ReadMessage #%d: %v", i, err)
		}
		switch w := want.(type) {
		case *Query:
			g, ok := got.(*Query)
			if !ok || g.Text != w.Text || g.TTL != w.TTL {
				t.Errorf("#%d: got %#v, want %#v", i, got, want)
			}
		case *Join:
			g, ok := got.(*Join)
			if !ok || len(g.Files) != len(w.Files) {
				t.Errorf("#%d: got %#v", i, got)
			}
		case *QueryHit:
			g, ok := got.(*QueryHit)
			if !ok || len(g.Results) != len(w.Results) || len(g.Responders) != len(w.Responders) {
				t.Errorf("#%d: got %#v", i, got)
			}
		case *Update:
			g, ok := got.(*Update)
			if !ok || g.Op != w.Op {
				t.Errorf("#%d: got %#v", i, got)
			}
		}
	}
	if _, err := ReadMessage(&buf); err != io.EOF {
		t.Errorf("end of stream: err = %v, want io.EOF", err)
	}
}

func TestReadMessageTruncatedMidPayload(t *testing.T) {
	full := (&Query{Text: "hello world"}).Encode()
	r := bytes.NewReader(full[:len(full)-3])
	if _, err := ReadMessage(r); err != io.ErrUnexpectedEOF {
		t.Errorf("err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestReadMessageHugePayloadRejected(t *testing.T) {
	q := (&Query{Text: "x"}).Encode()
	q[19] = 0xff
	q[20] = 0xff
	q[21] = 0xff
	q[22] = 0x7f // absurd payload length
	if _, err := ReadMessage(bytes.NewReader(q)); !errors.Is(err, ErrBadMessage) {
		t.Errorf("err = %v, want ErrBadMessage", err)
	}
}

func TestReadMessageUnknownType(t *testing.T) {
	q := (&Query{Text: "x"}).Encode()
	q[16] = 0x42
	if _, err := ReadMessage(bytes.NewReader(q)); !errors.Is(err, ErrBadMessage) {
		t.Errorf("err = %v, want ErrBadMessage", err)
	}
}

func TestWriteMessageUnsupported(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, fakeMessage{}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("err = %v, want ErrBadMessage", err)
	}
}

type fakeMessage struct{}

func (fakeMessage) WireSize() int { return 0 }
