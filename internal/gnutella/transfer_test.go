package gnutella

import (
	"bytes"
	"errors"
	"testing"
)

func TestChunkRequestRoundTrip(t *testing.T) {
	in := &ChunkRequest{ID: GUID{1, 2, 3}, FileIndex: 7, Chunk: 42}
	buf := in.Encode()
	if len(buf) != DescriptorHeaderLen+chunkRequestPayload {
		t.Fatalf("encoded %d bytes, want %d", len(buf), DescriptorHeaderLen+chunkRequestPayload)
	}
	out, err := DecodeChunkRequest(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if *out != *in {
		t.Errorf("round trip: got %+v, want %+v", out, in)
	}
	if got, want := in.WireSize(), ChunkRequestSize(); got != want {
		t.Errorf("WireSize = %d, want %d", got, want)
	}
	if want := FrameOverhead + len(buf); in.WireSize() != want {
		t.Errorf("WireSize = %d, want framing + encoded = %d", in.WireSize(), want)
	}
}

func TestChunkDataRoundTrip(t *testing.T) {
	in := &ChunkData{
		ID: GUID{4}, FileIndex: 1, Chunk: 3, TotalChunks: 16,
		FileSize: 1 << 20, Data: []byte("some chunk bytes"),
	}
	buf, err := in.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := DecodeChunkData(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.FileIndex != in.FileIndex || out.Chunk != in.Chunk ||
		out.TotalChunks != in.TotalChunks || out.FileSize != in.FileSize ||
		!bytes.Equal(out.Data, in.Data) {
		t.Errorf("round trip: got %+v, want %+v", out, in)
	}
	if got, want := in.WireSize(), ChunkDataSize(len(in.Data)); got != want {
		t.Errorf("WireSize = %d, want %d", got, want)
	}
	if want := FrameOverhead + len(buf); in.WireSize() != want {
		t.Errorf("WireSize = %d, want framing + encoded = %d", in.WireSize(), want)
	}
}

func TestChunkDataEmptyPayload(t *testing.T) {
	in := &ChunkData{ID: GUID{5}, FileIndex: 2, Chunk: 0, TotalChunks: 1}
	buf, err := in.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := DecodeChunkData(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out.Data) != 0 {
		t.Errorf("empty chunk decoded with %d data bytes", len(out.Data))
	}
}

func TestChunkDataRejectsOversize(t *testing.T) {
	in := &ChunkData{Data: make([]byte, MaxChunkLen+1)}
	if _, err := in.Encode(); !errors.Is(err, ErrBadMessage) {
		t.Errorf("encoding %d-byte chunk: err = %v, want ErrBadMessage", len(in.Data), err)
	}
}

func TestChunkNackRoundTrip(t *testing.T) {
	for _, code := range []uint8{NackNotFound, NackBusy, NackBadRequest} {
		in := &ChunkNack{ID: GUID{6}, FileIndex: 9, Chunk: 1, Code: code}
		out, err := DecodeChunkNack(in.Encode())
		if err != nil {
			t.Fatalf("decode code %d: %v", code, err)
		}
		if *out != *in {
			t.Errorf("round trip: got %+v, want %+v", out, in)
		}
	}
}

func TestDecodeChunkFramesRejectDamage(t *testing.T) {
	req := (&ChunkRequest{FileIndex: 1, Chunk: 2}).Encode()
	data, _ := (&ChunkData{FileIndex: 1, Chunk: 2, TotalChunks: 3, Data: []byte("x")}).Encode()
	nack := (&ChunkNack{FileIndex: 1, Chunk: 2, Code: NackBusy}).Encode()

	cases := []struct {
		name string
		buf  []byte
	}{
		{"request truncated", req[:len(req)-1]},
		{"request trailing byte", append(append([]byte(nil), req...), 0)},
		{"data truncated below fixed part", data[:DescriptorHeaderLen+chunkDataPayload-1]},
		{"nack truncated", nack[:len(nack)-1]},
		{"nack bad code", func() []byte {
			b := append([]byte(nil), nack...)
			b[31] = 99
			return b
		}()},
		{"wrong type for request", data},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := tc.buf
			// Re-stamp the header's payload length to match the damaged body so
			// the length check isn't the only line of defense being exercised.
			var err error
			switch {
			case tc.name == "wrong type for request":
				_, err = DecodeChunkRequest(buf)
			case buf[16] == byte(TypeChunkRequest):
				_, err = DecodeChunkRequest(buf)
			case buf[16] == byte(TypeChunkData):
				_, err = DecodeChunkData(buf)
			default:
				_, err = DecodeChunkNack(buf)
			}
			if !errors.Is(err, ErrBadMessage) && !errors.Is(err, ErrShortMessage) {
				t.Errorf("%s: err = %v, want ErrBadMessage/ErrShortMessage", tc.name, err)
			}
		})
	}
}

func TestChunkFramesOverStream(t *testing.T) {
	msgs := []Message{
		&ChunkRequest{ID: GUID{1}, FileIndex: 3, Chunk: 0},
		&ChunkData{ID: GUID{2}, FileIndex: 3, Chunk: 0, TotalChunks: 4,
			FileSize: 999, Data: bytes.Repeat([]byte("ab"), 500)},
		&ChunkNack{ID: GUID{3}, FileIndex: 3, Chunk: 7, Code: NackBusy},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("writing %T: %v", m, err)
		}
	}
	for _, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("reading back %T: %v", want, err)
		}
		if wantCls, gotCls := MessageClass(want), MessageClass(got); wantCls != gotCls || gotCls.String() != "transfer" {
			t.Errorf("%T classed %v, want transfer", got, gotCls)
		}
		if got.WireSize() != want.WireSize() {
			t.Errorf("%T wire size %d after round trip, want %d", got, got.WireSize(), want.WireSize())
		}
	}
}
