package index

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
)

func mustAdd(t *testing.T, ix *Index, owner int, file uint32, terms ...string) {
	t.Helper()
	if err := ix.Add(DocID{Owner: owner, File: file}, terms); err != nil {
		t.Fatalf("Add: %v", err)
	}
}

func TestAddAndSearch(t *testing.T) {
	ix := New()
	mustAdd(t, ix, 1, 1, "free", "jazz", "mp3")
	mustAdd(t, ix, 1, 2, "free", "rock")
	mustAdd(t, ix, 2, 7, "jazz", "live")

	if got := ix.NumDocs(); got != 3 {
		t.Errorf("NumDocs = %d, want 3", got)
	}
	if got := ix.Search([]string{"free"}); len(got) != 2 {
		t.Errorf("free: %d matches, want 2", len(got))
	}
	got := ix.Search([]string{"jazz"})
	if len(got) != 2 || got[0].Doc != (DocID{1, 1}) || got[1].Doc != (DocID{2, 7}) {
		t.Errorf("jazz matches = %+v", got)
	}
	// Conjunction.
	if got := ix.Search([]string{"free", "jazz"}); len(got) != 1 || got[0].Doc != (DocID{1, 1}) {
		t.Errorf("free+jazz = %+v", got)
	}
	if got := ix.Search([]string{"free", "live"}); len(got) != 0 {
		t.Errorf("free+live = %+v, want none", got)
	}
	if got := ix.Search([]string{"missing"}); got != nil {
		t.Errorf("missing term matched %+v", got)
	}
	if got := ix.Search(nil); got != nil {
		t.Errorf("empty query matched %+v", got)
	}
}

func TestCountMatchesAgreesWithSearch(t *testing.T) {
	ix := New()
	mustAdd(t, ix, 1, 1, "a", "b")
	mustAdd(t, ix, 1, 2, "a")
	mustAdd(t, ix, 2, 1, "a", "b")
	mustAdd(t, ix, 3, 9, "b")

	for _, q := range [][]string{{"a"}, {"b"}, {"a", "b"}, {"c"}, {}} {
		matches := ix.Search(q)
		owners := map[int]bool{}
		for _, m := range matches {
			owners[m.Doc.Owner] = true
		}
		n, k := ix.CountMatches(q)
		if n != len(matches) || k != len(owners) {
			t.Errorf("query %v: CountMatches = (%d, %d), Search gives (%d, %d)",
				q, n, k, len(matches), len(owners))
		}
	}
}

func TestRemove(t *testing.T) {
	ix := New()
	mustAdd(t, ix, 1, 1, "x", "y")
	mustAdd(t, ix, 1, 2, "x")
	ix.Remove(DocID{1, 1})
	if got := ix.Search([]string{"y"}); len(got) != 0 {
		t.Errorf("y still matches after removal: %+v", got)
	}
	if got := ix.Search([]string{"x"}); len(got) != 1 {
		t.Errorf("x matches = %d, want 1", len(got))
	}
	ix.Remove(DocID{1, 1}) // idempotent
	if ix.NumDocs() != 1 {
		t.Errorf("NumDocs = %d, want 1", ix.NumDocs())
	}
	// Postings for y must be fully gone.
	if ix.NumTerms() != 1 {
		t.Errorf("NumTerms = %d, want 1", ix.NumTerms())
	}
}

func TestRemoveOwner(t *testing.T) {
	ix := New()
	mustAdd(t, ix, 1, 1, "a")
	mustAdd(t, ix, 1, 2, "b")
	mustAdd(t, ix, 2, 1, "a")
	if n := ix.RemoveOwner(1); n != 2 {
		t.Errorf("RemoveOwner(1) = %d, want 2", n)
	}
	if ix.NumDocs() != 1 || ix.OwnerDocs(1) != 0 || ix.OwnerDocs(2) != 1 {
		t.Errorf("post-leave state: docs=%d", ix.NumDocs())
	}
	if got := ix.Search([]string{"b"}); len(got) != 0 {
		t.Errorf("departed client's files still match: %+v", got)
	}
	if n := ix.RemoveOwner(99); n != 0 {
		t.Errorf("RemoveOwner(absent) = %d", n)
	}
}

func TestReAddReplaces(t *testing.T) {
	ix := New()
	mustAdd(t, ix, 1, 1, "old", "title")
	mustAdd(t, ix, 1, 1, "new", "title") // modify update
	if got := ix.Search([]string{"old"}); len(got) != 0 {
		t.Error("old terms still indexed after modify")
	}
	if got := ix.Search([]string{"new"}); len(got) != 1 {
		t.Error("new terms not indexed")
	}
	if ix.NumDocs() != 1 {
		t.Errorf("NumDocs = %d, want 1", ix.NumDocs())
	}
}

func TestAddValidation(t *testing.T) {
	ix := New()
	if err := ix.Add(DocID{Owner: -1, File: 1}, []string{"a"}); err == nil {
		t.Error("negative owner accepted")
	}
	if err := ix.Add(DocID{Owner: 1, File: 1}, []string{"a", ""}); err == nil {
		t.Error("empty term accepted")
	}
	// Empty term list removes.
	mustAdd(t, ix, 1, 1, "a")
	if err := ix.Add(DocID{1, 1}, nil); err != nil {
		t.Fatal(err)
	}
	if ix.NumDocs() != 0 {
		t.Error("empty-terms add did not remove")
	}
}

func TestDuplicateTermsInTitle(t *testing.T) {
	ix := New()
	mustAdd(t, ix, 1, 1, "la", "la", "land")
	got := ix.Search([]string{"la"})
	if len(got) != 1 {
		t.Fatalf("duplicate title term produced %d matches", len(got))
	}
	ix.Remove(DocID{1, 1})
	if ix.NumTerms() != 0 || ix.NumDocs() != 0 {
		t.Error("removal left residue after duplicate terms")
	}
}

func TestSearchDeterministicOrder(t *testing.T) {
	ix := New()
	mustAdd(t, ix, 3, 1, "t")
	mustAdd(t, ix, 1, 2, "t")
	mustAdd(t, ix, 1, 1, "t")
	mustAdd(t, ix, 2, 5, "t")
	got := ix.Search([]string{"t"})
	want := []DocID{{1, 1}, {1, 2}, {2, 5}, {3, 1}}
	for i, m := range got {
		if m.Doc != want[i] {
			t.Fatalf("order: got %+v, want %+v", got, want)
		}
	}
}

// TestIndexPropertyInvariants: random add/remove sequences keep a reference
// model and the index in agreement.
func TestIndexPropertyInvariants(t *testing.T) {
	type op struct {
		Add   bool
		Owner uint8
		File  uint8
		T1    uint8
		T2    uint8
	}
	if err := quick.Check(func(ops []op) bool {
		ix := New()
		ref := make(map[DocID][]string) // reference model
		for _, o := range ops {
			doc := DocID{Owner: int(o.Owner % 8), File: uint32(o.File % 16)}
			if o.Add {
				terms := []string{fmt.Sprintf("t%d", o.T1%6), fmt.Sprintf("t%d", o.T2%6)}
				if err := ix.Add(doc, terms); err != nil {
					return false
				}
				if terms[0] == terms[1] {
					terms = terms[:1]
				}
				ref[doc] = terms
			} else {
				ix.Remove(doc)
				delete(ref, doc)
			}
		}
		if ix.NumDocs() != len(ref) {
			return false
		}
		// Every query over the term universe agrees with the model.
		for q := 0; q < 6; q++ {
			term := fmt.Sprintf("t%d", q)
			var want []DocID
			for doc, terms := range ref {
				for _, t := range terms {
					if t == term {
						want = append(want, doc)
					}
				}
			}
			got := ix.Search([]string{term})
			if len(got) != len(want) {
				return false
			}
			gotSet := make(map[DocID]bool, len(got))
			for _, m := range got {
				gotSet[m.Doc] = true
			}
			for _, d := range want {
				if !gotSet[d] {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMatchTermsExposed(t *testing.T) {
	ix := New()
	mustAdd(t, ix, 1, 1, "a", "b")
	got := ix.Search([]string{"a"})
	if len(got) != 1 || !reflect.DeepEqual(got[0].Terms, []string{"a", "b"}) {
		t.Errorf("match terms = %+v", got)
	}
}
