// Package index implements the super-peer's client index as the paper
// describes it: "if the shared data are files and queries are keyword
// searches over the file title, then the super-peer may keep inverted lists
// over the titles of files owned by its clients. This index must hold
// sufficient information to answer all queries" (Section 3.2).
//
// The index maps each title term to the set of (owner, file) postings
// containing it, supports the three maintenance operations the protocol
// needs — adding a joining client's collection, removing a leaving client's
// metadata, and applying single-item updates — and answers conjunctive
// keyword queries with the owner of every matching file, which is exactly
// what a Response message carries (results plus the address of each client
// whose collection produced one).
package index

import (
	"fmt"
	"sort"
)

// DocID identifies one file in the index: the owning peer and the owner's
// file index (the Gnutella result record's file index).
type DocID struct {
	Owner int
	File  uint32
}

// key packs a DocID for map storage.
func (d DocID) key() uint64 { return uint64(uint32(d.Owner))<<32 | uint64(d.File) }

func unkey(k uint64) DocID {
	return DocID{Owner: int(uint32(k >> 32)), File: uint32(k)}
}

// Index is an inverted index over file titles. The zero value is not usable;
// call New.
type Index struct {
	postings map[string]map[uint64]struct{} // term -> set of packed DocIDs
	docs     map[uint64][]string            // packed DocID -> its terms
	byOwner  map[int]map[uint64]struct{}    // owner -> its packed DocIDs
}

// New returns an empty index.
func New() *Index {
	return &Index{
		postings: make(map[string]map[uint64]struct{}),
		docs:     make(map[uint64][]string),
		byOwner:  make(map[int]map[uint64]struct{}),
	}
}

// NumDocs returns the number of indexed files — the super-peer's x_tot.
func (ix *Index) NumDocs() int { return len(ix.docs) }

// NumTerms returns the number of distinct terms with non-empty postings.
func (ix *Index) NumTerms() int { return len(ix.postings) }

// OwnerDocs returns the number of files indexed for one owner.
func (ix *Index) OwnerDocs(owner int) int { return len(ix.byOwner[owner]) }

// Add indexes one file under its title terms. Duplicate terms in a title are
// indexed once. Re-adding an existing (owner, file) replaces its terms, as a
// metadata modification does. An empty term list removes the file.
func (ix *Index) Add(doc DocID, terms []string) error {
	if doc.Owner < 0 {
		return fmt.Errorf("index: negative owner %d", doc.Owner)
	}
	k := doc.key()
	if _, exists := ix.docs[k]; exists {
		ix.removeKey(k)
	}
	if len(terms) == 0 {
		return nil
	}
	dedup := make([]string, 0, len(terms))
	seen := make(map[string]bool, len(terms))
	for _, t := range terms {
		if t == "" {
			return fmt.Errorf("index: empty term in title for %+v", doc)
		}
		if !seen[t] {
			seen[t] = true
			dedup = append(dedup, t)
		}
	}
	ix.docs[k] = dedup
	for _, t := range dedup {
		set := ix.postings[t]
		if set == nil {
			set = make(map[uint64]struct{})
			ix.postings[t] = set
		}
		set[k] = struct{}{}
	}
	owned := ix.byOwner[doc.Owner]
	if owned == nil {
		owned = make(map[uint64]struct{})
		ix.byOwner[doc.Owner] = owned
	}
	owned[k] = struct{}{}
	return nil
}

// Remove deletes one file from the index. Removing an absent file is a
// no-op, mirroring an idempotent delete update.
func (ix *Index) Remove(doc DocID) { ix.removeKey(doc.key()) }

func (ix *Index) removeKey(k uint64) {
	terms, ok := ix.docs[k]
	if !ok {
		return
	}
	delete(ix.docs, k)
	for _, t := range terms {
		set := ix.postings[t]
		delete(set, k)
		if len(set) == 0 {
			delete(ix.postings, t)
		}
	}
	owner := unkey(k).Owner
	if owned := ix.byOwner[owner]; owned != nil {
		delete(owned, k)
		if len(owned) == 0 {
			delete(ix.byOwner, owner)
		}
	}
}

// RemoveOwner drops every file an owner shares — the super-peer's action
// when a client leaves ("when a client leaves, its super-peer will remove
// its metadata from the index"). It returns the number of files removed.
func (ix *Index) RemoveOwner(owner int) int {
	owned := ix.byOwner[owner]
	n := len(owned)
	keys := make([]uint64, 0, n)
	for k := range owned {
		keys = append(keys, k)
	}
	for _, k := range keys {
		ix.removeKey(k)
	}
	return n
}

// Match is one search hit.
type Match struct {
	Doc   DocID
	Terms []string
}

// Search answers a conjunctive keyword query: every returned file's title
// contains all query terms. Results are sorted by (owner, file) so output is
// deterministic. A query with no terms matches nothing.
func (ix *Index) Search(terms []string) []Match {
	if len(terms) == 0 {
		return nil
	}
	// Intersect starting from the rarest term.
	sets := make([]map[uint64]struct{}, 0, len(terms))
	seen := make(map[string]bool, len(terms))
	for _, t := range terms {
		if seen[t] {
			continue
		}
		seen[t] = true
		set, ok := ix.postings[t]
		if !ok {
			return nil
		}
		sets = append(sets, set)
	}
	sort.Slice(sets, func(i, j int) bool { return len(sets[i]) < len(sets[j]) })

	keys := make([]uint64, 0, len(sets[0]))
outer:
	for k := range sets[0] {
		for _, set := range sets[1:] {
			if _, ok := set[k]; !ok {
				continue outer
			}
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]Match, len(keys))
	for i, k := range keys {
		out[i] = Match{Doc: unkey(k), Terms: ix.docs[k]}
	}
	return out
}

// CountMatches returns the number of matching files and the number of
// distinct owners with at least one match — the (#results, #addr) pair a
// Response message is priced by — without materializing the result list.
func (ix *Index) CountMatches(terms []string) (results, owners int) {
	if len(terms) == 0 {
		return 0, 0
	}
	sets := make([]map[uint64]struct{}, 0, len(terms))
	seen := make(map[string]bool, len(terms))
	for _, t := range terms {
		if seen[t] {
			continue
		}
		seen[t] = true
		set, ok := ix.postings[t]
		if !ok {
			return 0, 0
		}
		sets = append(sets, set)
	}
	sort.Slice(sets, func(i, j int) bool { return len(sets[i]) < len(sets[j]) })
	ownerSet := make(map[int]struct{})
outer:
	for k := range sets[0] {
		for _, set := range sets[1:] {
			if _, ok := set[k]; !ok {
				continue outer
			}
		}
		results++
		ownerSet[unkey(k).Owner] = struct{}{}
	}
	return results, len(ownerSet)
}
