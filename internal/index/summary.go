package index

import "sort"

// Summary is a content digest of an index (or a union of indexes): the set of
// distinct title terms present, with document and owner counts for memory
// accounting. It is what a super-peer advertises to overlay neighbors so a
// routing-index strategy can prune forwards — a query can only match behind a
// link whose aggregated summary contains every query term — and what the
// neighbor stores per link, at cost proportional to distinct terms rather
// than indexed files.
type Summary struct {
	terms  map[string]struct{}
	docs   int
	owners int
}

// Summary digests the index's current content.
func (ix *Index) Summary() *Summary {
	s := &Summary{
		terms:  make(map[string]struct{}, len(ix.postings)),
		docs:   len(ix.docs),
		owners: len(ix.byOwner),
	}
	for t := range ix.postings {
		s.terms[t] = struct{}{}
	}
	return s
}

// NewSummary builds a summary directly from a term list, as when decoding an
// advertisement received over the wire. Doc and owner counts are zero.
func NewSummary(terms []string) *Summary {
	s := &Summary{terms: make(map[string]struct{}, len(terms))}
	for _, t := range terms {
		s.terms[t] = struct{}{}
	}
	return s
}

// NumTerms returns the number of distinct terms in the digest.
func (s *Summary) NumTerms() int { return len(s.terms) }

// Docs returns the number of documents the digest covers (summed across
// merged sources; a document indexed by two merged indexes counts twice).
func (s *Summary) Docs() int { return s.docs }

// Owners returns the number of owner sets the digest covers (summed across
// merged sources).
func (s *Summary) Owners() int { return s.owners }

// Has reports whether the digest contains the term.
func (s *Summary) Has(term string) bool {
	_, ok := s.terms[term]
	return ok
}

// Covers reports whether a conjunctive query over the given terms could match
// content behind this digest: every term must be present. An empty query is
// covered (it constrains nothing), matching Strategy semantics where
// term-less queries flood.
func (s *Summary) Covers(terms []string) bool {
	for _, t := range terms {
		if _, ok := s.terms[t]; !ok {
			return false
		}
	}
	return true
}

// Terms returns the digest's term set, sorted for deterministic encoding.
func (s *Summary) Terms() []string {
	out := make([]string, 0, len(s.terms))
	for t := range s.terms {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// MergeSummary unions srcs into dst and returns it, allocating a fresh
// summary when dst is nil. Nil sources are skipped. Merging is how a
// super-peer aggregates term sets along overlay edges: the digest for a link
// is the merge of every index reachable through it.
func MergeSummary(dst *Summary, srcs ...*Summary) *Summary {
	if dst == nil {
		dst = &Summary{terms: make(map[string]struct{})}
	}
	for _, src := range srcs {
		if src == nil {
			continue
		}
		for t := range src.terms {
			dst.terms[t] = struct{}{}
		}
		dst.docs += src.docs
		dst.owners += src.owners
	}
	return dst
}
