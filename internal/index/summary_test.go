package index

import (
	"reflect"
	"testing"
)

func TestSummaryDigest(t *testing.T) {
	ix := New()
	mustAdd(t, ix, 1, 1, "free", "jazz")
	mustAdd(t, ix, 1, 2, "cool", "jazz")
	mustAdd(t, ix, 2, 1, "blues")

	s := ix.Summary()
	if got, want := s.NumTerms(), 4; got != want {
		t.Fatalf("NumTerms = %d, want %d", got, want)
	}
	if s.Docs() != 3 || s.Owners() != 2 {
		t.Fatalf("Docs/Owners = %d/%d, want 3/2", s.Docs(), s.Owners())
	}
	if want := []string{"blues", "cool", "free", "jazz"}; !reflect.DeepEqual(s.Terms(), want) {
		t.Fatalf("Terms = %v, want %v", s.Terms(), want)
	}
	if !s.Has("jazz") || s.Has("rock") {
		t.Fatal("Has misreports membership")
	}
	if !s.Covers([]string{"cool", "jazz"}) {
		t.Fatal("Covers should accept terms all present")
	}
	if s.Covers([]string{"cool", "rock"}) {
		t.Fatal("Covers should reject a missing term")
	}
	if !s.Covers(nil) {
		t.Fatal("empty query must be covered")
	}
}

func TestSummaryTracksIndexMutation(t *testing.T) {
	ix := New()
	mustAdd(t, ix, 1, 1, "solo", "jazz")
	mustAdd(t, ix, 2, 1, "jazz")
	if s := ix.Summary(); !s.Has("solo") {
		t.Fatal("summary missing live term")
	}
	ix.RemoveOwner(1)
	s := ix.Summary()
	if s.Has("solo") {
		t.Fatal("summary kept term of removed owner")
	}
	if !s.Has("jazz") {
		t.Fatal("summary dropped term still indexed for another owner")
	}
	if s.Docs() != 1 || s.Owners() != 1 {
		t.Fatalf("Docs/Owners = %d/%d, want 1/1", s.Docs(), s.Owners())
	}
}

func TestNewSummaryFromTerms(t *testing.T) {
	s := NewSummary([]string{"b", "a", "b"})
	if got, want := s.Terms(), []string{"a", "b"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
	if s.Docs() != 0 || s.Owners() != 0 {
		t.Fatalf("wire summary Docs/Owners = %d/%d, want 0/0", s.Docs(), s.Owners())
	}
}

func TestMergeSummary(t *testing.T) {
	a := New()
	mustAdd(t, a, 1, 1, "free", "jazz")
	b := New()
	mustAdd(t, b, 2, 1, "blues", "jazz")

	// Nil dst allocates; nil srcs are skipped.
	m := MergeSummary(nil, a.Summary(), nil, b.Summary())
	if want := []string{"blues", "free", "jazz"}; !reflect.DeepEqual(m.Terms(), want) {
		t.Fatalf("merged Terms = %v, want %v", m.Terms(), want)
	}
	if m.Docs() != 2 || m.Owners() != 2 {
		t.Fatalf("merged Docs/Owners = %d/%d, want 2/2", m.Docs(), m.Owners())
	}

	// Merging into an existing dst accumulates and returns it.
	dst := a.Summary()
	if got := MergeSummary(dst, b.Summary()); got != dst {
		t.Fatal("MergeSummary should return dst")
	}
	if !dst.Covers([]string{"blues", "free"}) {
		t.Fatal("dst missing merged terms")
	}

	// Sources are unchanged.
	if bs := b.Summary(); bs.Has("free") {
		t.Fatal("merge mutated source index digest")
	}
}
