// Package cost implements the paper's cost model for atomic actions
// (Table 2): per-action bandwidth in bytes (delegated to the wire-format
// formulas in internal/gnutella) and processing cost in coarse "units",
// where one unit is the cost of sending and receiving a Gnutella message
// with no payload — measured as roughly 7200 cycles on the paper's
// Pentium III 930 MHz reference machine. The packet-multiplex overhead of
// Appendix A (the select()-scan cost growing linearly with the number of
// open connections) is modeled here as well.
package cost

import "spnet/internal/gnutella"

// CyclesPerUnit converts processing units to CPU cycles: "A unit is defined
// to be the cost of sending and receiving a Gnutella message with no
// payload, which was measured to be roughly 7200 cycles."
const CyclesPerUnit = 7200

// UnitsToHz converts a processing rate in units/second to cycles/second.
func UnitsToHz(unitsPerSec float64) float64 { return unitsPerSec * CyclesPerUnit }

// Processing-cost constants (Table 2), in units. Two constants are damaged
// in the surviving copy of the paper and are reconstructed (see DESIGN.md,
// substitution 4): ProcessJoinPerFile and ProcessUpdate. Both are cheap
// relative to query costs; Appendix C confirms overall results are
// insensitive to the update constants.
const (
	SendQueryBase     = 0.44 // + SendQueryPerByte · query length
	SendQueryPerByte  = 0.003
	RecvQueryBase     = 0.57 // + RecvQueryPerByte · query length
	RecvQueryPerByte  = 0.004
	ProcessQueryBase  = 0.14 // + ProcessQueryPerResult · #results
	ProcessQueryPerRe = 1.1

	SendRespBase      = 0.21 // + .31·#addr + .2·#results
	SendRespPerAddr   = 0.31
	SendRespPerResult = 0.2
	RecvRespBase      = 0.26 // + .41·#addr + .3·#results
	RecvRespPerAddr   = 0.41
	RecvRespPerResult = 0.3

	SendJoinBase       = 0.44 // + .2·#files (paper's worked example, §4 step 2)
	SendJoinPerFile    = 0.2
	RecvJoinBase       = 0.56 // + .3·#files
	RecvJoinPerFile    = 0.3
	ProcessJoinBase    = 0.14 // + ProcessJoinPerFile·#files (reconstructed)
	ProcessJoinPerFile = 0.05

	SendUpdate    = 0.6
	RecvUpdate    = 0.8
	ProcessUpdate = 3.0 // index maintenance for one metadata record (reconstructed)

	// PacketMultiplexPerConn is the Appendix A per-message overhead:
	// .04 units per select() file-descriptor scan, amortized over ~4
	// messages per call, i.e. .01 units per open connection per message
	// handled (sent or received).
	PacketMultiplexPerConn = 0.01
)

// Bytes is a bandwidth amount in bytes; Units is processing work in the
// paper's coarse units.
type (
	Bytes float64
	Units float64
)

// SendQuery returns the cost of transmitting a query with the given string
// length: bandwidth on the sender's outgoing link and processing units.
func SendQuery(queryLen int) (Bytes, Units) {
	return Bytes(gnutella.QuerySize(queryLen)),
		Units(SendQueryBase + SendQueryPerByte*float64(queryLen))
}

// RecvQuery returns the cost of receiving a query with the given string
// length: bandwidth on the receiver's incoming link and processing units.
func RecvQuery(queryLen int) (Bytes, Units) {
	return Bytes(gnutella.QuerySize(queryLen)),
		Units(RecvQueryBase + RecvQueryPerByte*float64(queryLen))
}

// ProcessQuery returns the processing cost of evaluating a query over the
// local index, yielding the given number of results. It consumes no
// bandwidth. Fractional (expected) result counts are accepted because the
// analysis engine works in expectations.
func ProcessQuery(results float64) Units {
	return Units(ProcessQueryBase + ProcessQueryPerRe*results)
}

// SendResponse returns the cost of transmitting one Response message with
// the given expected responder-address and result counts. Expected
// (fractional) counts are accepted; messages scales the per-message fixed
// overhead and is 1 for a concrete message or P(responding) in expectation.
func SendResponse(messages, addrs, results float64) (Bytes, Units) {
	return Bytes(float64(gnutella.ResponseFixedLen)*messages +
			float64(gnutella.ResponderRecordLen)*addrs +
			float64(gnutella.ResultRecordLen)*results),
		Units(SendRespBase*messages + SendRespPerAddr*addrs + SendRespPerResult*results)
}

// RecvResponse is the receiving-side analogue of SendResponse.
func RecvResponse(messages, addrs, results float64) (Bytes, Units) {
	return Bytes(float64(gnutella.ResponseFixedLen)*messages +
			float64(gnutella.ResponderRecordLen)*addrs +
			float64(gnutella.ResultRecordLen)*results),
		Units(RecvRespBase*messages + RecvRespPerAddr*addrs + RecvRespPerResult*results)
}

// SendJoin returns the cost of a client transmitting its Join message with
// metadata for numFiles files.
func SendJoin(numFiles int) (Bytes, Units) {
	return Bytes(gnutella.JoinSize(numFiles)),
		Units(SendJoinBase + SendJoinPerFile*float64(numFiles))
}

// RecvJoin returns the cost of a super-peer receiving a Join message.
func RecvJoin(numFiles int) (Bytes, Units) {
	return Bytes(gnutella.JoinSize(numFiles)),
		Units(RecvJoinBase + RecvJoinPerFile*float64(numFiles))
}

// ProcessJoin returns the processing cost of adding numFiles metadata
// records to the super-peer's index. No bandwidth is consumed.
func ProcessJoin(numFiles int) Units {
	return Units(ProcessJoinBase + ProcessJoinPerFile*float64(numFiles))
}

// SendUpdateCost returns the cost of a client transmitting one Update.
func SendUpdateCost() (Bytes, Units) {
	return Bytes(gnutella.UpdateSize()), Units(SendUpdate)
}

// RecvUpdateCost returns the cost of a super-peer receiving one Update.
func RecvUpdateCost() (Bytes, Units) {
	return Bytes(gnutella.UpdateSize()), Units(RecvUpdate)
}

// ProcessUpdateCost returns the processing cost of applying one Update to
// the index.
func ProcessUpdateCost() Units { return Units(ProcessUpdate) }

// PacketMultiplex returns the per-message OS overhead for a node with the
// given number of open connections (Appendix A). It is charged once per
// message sent or received.
func PacketMultiplex(openConnections int) Units {
	return Units(PacketMultiplexPerConn * float64(openConnections))
}
