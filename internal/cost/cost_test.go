package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSendQueryMatchesTable2(t *testing.T) {
	bw, proc := SendQuery(12)
	if bw != 94 {
		t.Errorf("bandwidth = %v, want 94", bw)
	}
	if !almost(float64(proc), 0.44+0.003*12) {
		t.Errorf("processing = %v, want %v", proc, 0.44+0.003*12)
	}
}

func TestRecvQueryMatchesTable2(t *testing.T) {
	bw, proc := RecvQuery(12)
	if bw != 94 {
		t.Errorf("bandwidth = %v, want 94", bw)
	}
	if !almost(float64(proc), 0.57+0.004*12) {
		t.Errorf("processing = %v", proc)
	}
}

func TestProcessQuery(t *testing.T) {
	if !almost(float64(ProcessQuery(0)), 0.14) {
		t.Errorf("ProcessQuery(0) = %v, want 0.14", ProcessQuery(0))
	}
	if !almost(float64(ProcessQuery(10)), 0.14+11) {
		t.Errorf("ProcessQuery(10) = %v", ProcessQuery(10))
	}
}

func TestResponseCosts(t *testing.T) {
	bw, proc := SendResponse(1, 2, 3)
	if !almost(float64(bw), 80+2*28+3*76) {
		t.Errorf("send bandwidth = %v, want %d", bw, 80+2*28+3*76)
	}
	if !almost(float64(proc), 0.21+0.31*2+0.2*3) {
		t.Errorf("send processing = %v", proc)
	}
	bw2, proc2 := RecvResponse(1, 2, 3)
	if bw2 != bw {
		t.Errorf("recv bandwidth %v != send bandwidth %v", bw2, bw)
	}
	if !almost(float64(proc2), 0.26+0.41*2+0.3*3) {
		t.Errorf("recv processing = %v", proc2)
	}
}

func TestResponseExpectedMessageScaling(t *testing.T) {
	// With probability-of-response 0.5, the fixed per-message overhead
	// halves but the per-result terms are unaffected.
	bwFull, _ := SendResponse(1, 0, 4)
	bwHalf, _ := SendResponse(0.5, 0, 4)
	if !almost(float64(bwFull-bwHalf), 40) {
		t.Errorf("fixed-overhead delta = %v, want 40", bwFull-bwHalf)
	}
}

func TestJoinCostsMatchWorkedExample(t *testing.T) {
	// Paper §4 step 2: a client with x files has outgoing bandwidth
	// 80 + 72x and processing .44 + .2x (+ .01m packet multiplex).
	const x = 10
	bw, proc := SendJoin(x)
	if !almost(float64(bw), 80+72*x) {
		t.Errorf("join bandwidth = %v, want %d", bw, 80+72*x)
	}
	if !almost(float64(proc), 0.44+0.2*x) {
		t.Errorf("join processing = %v, want %v", proc, 0.44+0.2*x)
	}
	m := 3
	if !almost(float64(PacketMultiplex(m)), 0.03) {
		t.Errorf("PacketMultiplex(3) = %v, want 0.03", PacketMultiplex(m))
	}
}

func TestRecvAndProcessJoin(t *testing.T) {
	bw, proc := RecvJoin(5)
	if !almost(float64(bw), 80+72*5) {
		t.Errorf("recv join bandwidth = %v", bw)
	}
	if !almost(float64(proc), 0.56+0.3*5) {
		t.Errorf("recv join processing = %v", proc)
	}
	if !almost(float64(ProcessJoin(5)), 0.14+0.05*5) {
		t.Errorf("process join = %v", ProcessJoin(5))
	}
}

func TestUpdateCosts(t *testing.T) {
	bw, proc := SendUpdateCost()
	if bw != 152 || !almost(float64(proc), 0.6) {
		t.Errorf("send update = %v, %v", bw, proc)
	}
	bw, proc = RecvUpdateCost()
	if bw != 152 || !almost(float64(proc), 0.8) {
		t.Errorf("recv update = %v, %v", bw, proc)
	}
	if !almost(float64(ProcessUpdateCost()), 3.0) {
		t.Errorf("process update = %v", ProcessUpdateCost())
	}
}

func TestUnitsToHz(t *testing.T) {
	if got := UnitsToHz(1); got != 7200 {
		t.Errorf("UnitsToHz(1) = %v, want 7200", got)
	}
	if got := UnitsToHz(0.5); got != 3600 {
		t.Errorf("UnitsToHz(0.5) = %v, want 3600", got)
	}
}

func TestCostsNonNegativeProperty(t *testing.T) {
	if err := quick.Check(func(qlen uint8, files uint8, m uint8, addrs, results uint8) bool {
		checks := []float64{}
		b, u := SendQuery(int(qlen))
		checks = append(checks, float64(b), float64(u))
		b, u = RecvQuery(int(qlen))
		checks = append(checks, float64(b), float64(u))
		checks = append(checks, float64(ProcessQuery(float64(results))))
		b, u = SendResponse(1, float64(addrs), float64(results))
		checks = append(checks, float64(b), float64(u))
		b, u = RecvResponse(1, float64(addrs), float64(results))
		checks = append(checks, float64(b), float64(u))
		b, u = SendJoin(int(files))
		checks = append(checks, float64(b), float64(u))
		b, u = RecvJoin(int(files))
		checks = append(checks, float64(b), float64(u))
		checks = append(checks, float64(ProcessJoin(int(files))), float64(PacketMultiplex(int(m))))
		for _, c := range checks {
			if c < 0 || math.IsNaN(c) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestCostsMonotoneProperty(t *testing.T) {
	// More results, files, or connections never cost less.
	if err := quick.Check(func(a, b uint8) bool {
		lo, hi := int(min(a, b)), int(max(a, b))
		_, p1 := SendJoin(lo)
		_, p2 := SendJoin(hi)
		if p2 < p1 {
			return false
		}
		if ProcessQuery(float64(hi)) < ProcessQuery(float64(lo)) {
			return false
		}
		return PacketMultiplex(hi) >= PacketMultiplex(lo)
	}, nil); err != nil {
		t.Error(err)
	}
}
