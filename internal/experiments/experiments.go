// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5 and Appendices C–E). Each experiment produces a
// Report of labeled series and tables matching the rows the paper plots, at
// a configurable scale: Scale 1.0 reproduces the paper's network sizes
// (10000–20000 peers); smaller scales shrink the network proportionally for
// quick runs and benchmarks, preserving the shapes.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"spnet/internal/parallel"
)

// pmap is the experiment-layer parallel sweep: parallel.Map under the run's
// worker bound, with per-sweep progress reported through Params.Progress.
func pmap[T any](p Params, stage string, n int, fn func(i int) (T, error)) ([]T, error) {
	if p.Progress == nil {
		return parallel.Map(p.Workers, n, fn)
	}
	return parallel.MapProgress(p.Workers, n, func(done, total int) {
		p.Progress(stage, done, total)
	}, fn)
}

// pmapRows is pmap for table-row sweeps with streaming export: completed rows
// are handed to Params.RowSink in index order as their prefix completes, so
// an interrupted sweep leaves the finished rows behind instead of losing the
// whole table. Determinism is parallel.MapStream's: the emitted row sequence
// is bit-identical to the returned table at any worker count.
func pmapRows(p Params, stage string, columns []string, n int, fn func(i int) ([]string, error)) ([][]string, error) {
	var emit func(i int, row []string)
	if p.RowSink != nil {
		emit = func(_ int, row []string) { p.RowSink(stage, columns, row) }
	}
	f := fn
	if p.Progress != nil {
		var mu sync.Mutex
		done := 0
		f = func(i int) ([]string, error) {
			row, err := fn(i)
			if err != nil {
				return nil, err
			}
			mu.Lock()
			done++
			p.Progress(stage, done, n)
			mu.Unlock()
			return row, nil
		}
	}
	return parallel.MapStream(p.Workers, n, emit, f)
}

// Params tune an experiment run.
type Params struct {
	// Scale multiplies the paper's network sizes (default 1.0). The
	// cluster-size sweeps and case study keep their shape at reduced scale.
	Scale float64
	// Trials per configuration (default: experiment-specific, usually 3).
	Trials int
	// Seed for all randomness.
	Seed uint64
	// Workers bounds the evaluation worker pool (0 = GOMAXPROCS, 1 =
	// serial). Every sweep produces bit-identical output at any setting:
	// tasks are enumerated and their RNG streams split before dispatch, and
	// results reduce in task order.
	Workers int
	// Progress, when set, receives per-sweep completion updates: stage
	// names the sweep within the experiment, done counts completed tasks
	// out of total. Calls are serialized with done strictly increasing per
	// sweep; reporting never changes results.
	Progress func(stage string, done, total int)
	// RowSink, when set, receives completed table rows of row-sweep
	// experiments as they finish, in row order — the streaming-export hook
	// CSVStream plugs into so interrupted runs keep partial results. Calls
	// are serialized; sinking never changes results.
	RowSink func(stage string, columns, row []string)
}

func (p Params) scale() float64 {
	if p.Scale <= 0 {
		return 1.0
	}
	return p.Scale
}

func (p Params) trials(def int) int {
	if p.Trials > 0 {
		return p.Trials
	}
	return def
}

// scaled returns n scaled, with a floor.
func (p Params) scaled(n, floor int) int {
	v := int(math.Round(float64(n) * p.scale()))
	if v < floor {
		v = floor
	}
	return v
}

// Series is one plotted curve: paired x/y values with optional 95% CI
// half-widths.
type Series struct {
	Label string
	X     []float64
	Y     []float64
	YErr  []float64 // nil when not applicable
}

// Table is one printed table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Report is an experiment's full output.
type Report struct {
	ID     string
	Title  string
	Notes  []string
	Tables []Table
	Series []Series
}

// definition registers one experiment.
type definition struct {
	id    string
	title string
	run   func(Params) (*Report, error)
}

var registry = []definition{
	{"table1", "Table 1: configuration parameters and defaults", runTable1},
	{"table2", "Table 2: costs of atomic actions", runTable2},
	{"table3", "Table 3: general statistics", runTable3},
	{"fig4", "Figure 4: aggregate bandwidth vs cluster size", runFig4},
	{"fig5", "Figure 5: individual incoming bandwidth vs cluster size", runFig5},
	{"fig6", "Figure 6: individual processing load vs cluster size", runFig6},
	{"fig7", "Figure 7: outgoing bandwidth by outdegree (3.1 vs 10)", runFig7},
	{"fig8", "Figure 8: expected results by outdegree (3.1 vs 10)", runFig8},
	{"fig9", "Figure 9: expected path length vs average outdegree", runFig9},
	{"fig11", "Figure 11: Gnutella redesign, aggregate load comparison", runFig11},
	{"fig12", "Figure 12: per-node outgoing bandwidth rank curves", runFig12},
	{"rule4", "Rule #4: minimize TTL once reach is full", runRule4},
	{"figA13", "Figure A-13: aggregate bandwidth vs cluster size, low query rate", runFigA13},
	{"figA14", "Figure A-14: individual incoming bandwidth, low query rate", runFigA14},
	{"figA15", "Figure A-15: caveat to rule #3 — outdegree 50 vs 100 at TTL 2", runFigA15},
	{"tableD2", "Appendix D Table 2: aggregate load, outdegree 3.1 vs 10", runTableD2},
	{"simcheck", "Validation: discrete-event simulator vs mean-value analysis", runSimCheck},
	{"kredundancy", "Extension: general k-redundancy sweep (paper evaluates k=2 only)", runKRedundancy},
	{"reliability", "Extension: failure injection — measuring the Section 3.2 reliability claim", runReliability},
	{"breakdown", "Ablation: aggregate load attributed to protocol components", runBreakdown},
	{"loadvalidation", "Validation: analytical vs simulated vs live-measured super-peer load", runLoadValidationDefault},
	{"routingcompare", "Extension: query-routing strategies — bandwidth saved vs recall lost, three ways", runRoutingCompareDefault},
	{"trustsweep", "Extension: adversarial peers vs reputation-weighted selection — lost queries, three ways", runTrustSweepDefault},
	{"selfheal", "Extension: self-healing fleet control plane — Section 5.3 decisions pushed to live nodes", runSelfHealDefault},
	{"transferbench", "Extension: content transfer plane — analytical vs live multi-source download throughput", runTransferBenchDefault},
}

// IDs lists the registered experiment ids in order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, d := range registry {
		ids[i] = d.id
	}
	return ids
}

// Titles maps experiment ids to their titles.
func Titles() map[string]string {
	out := make(map[string]string, len(registry))
	for _, d := range registry {
		out[d.id] = d.title
	}
	return out
}

// Run executes the experiment with the given id.
func Run(id string, p Params) (*Report, error) {
	for _, d := range registry {
		if d.id == id {
			rep, err := d.run(p)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", id, err)
			}
			rep.ID = d.id
			rep.Title = d.title
			return rep, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)",
		id, strings.Join(IDs(), ", "))
}

// Format renders a report as readable text.
func Format(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, tbl := range r.Tables {
		if tbl.Title != "" {
			fmt.Fprintf(&b, "\n-- %s --\n", tbl.Title)
		}
		widths := make([]int, len(tbl.Columns))
		for i, c := range tbl.Columns {
			widths[i] = len(c)
		}
		for _, row := range tbl.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		writeRow := func(cells []string) {
			for i, cell := range cells {
				if i > 0 {
					b.WriteString("  ")
				}
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			}
			b.WriteByte('\n')
		}
		writeRow(tbl.Columns)
		for _, row := range tbl.Rows {
			writeRow(row)
		}
	}
	for _, s := range r.Series {
		fmt.Fprintf(&b, "\n-- series: %s --\n", s.Label)
		for i := range s.X {
			if s.YErr != nil && s.YErr[i] != 0 {
				fmt.Fprintf(&b, "  x=%-10.4g y=%-12.6g ±%.3g\n", s.X[i], s.Y[i], s.YErr[i])
			} else {
				fmt.Fprintf(&b, "  x=%-10.4g y=%-12.6g\n", s.X[i], s.Y[i])
			}
		}
	}
	return b.String()
}

// fmtEng renders a value in engineering notation like the paper's tables
// (e.g. 9.08e8).
func fmtEng(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e4 || math.Abs(v) < 1e-2:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// clusterSizeLadder returns the cluster sizes swept by the Figures 4–5
// experiments for a network of the given size.
func clusterSizeLadder(graphSize int) []int {
	base := []int{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}
	var out []int
	for _, cs := range base {
		if cs <= graphSize {
			out = append(out, cs)
		}
	}
	if len(out) == 0 || out[len(out)-1] != graphSize {
		out = append(out, graphSize)
	}
	sort.Ints(out)
	return out
}
