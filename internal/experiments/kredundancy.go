package experiments

import (
	"fmt"

	"spnet/internal/analysis"
	"spnet/internal/network"
)

// runKRedundancy is an extension beyond the paper's evaluation: the paper
// defines k-redundancy for general k but evaluates only k = 2, noting that
// "the number of open connections amongst super-peers increases by a factor
// of k²". This experiment sweeps k = 1..4 on the strong topology and
// quantifies the stated tradeoff: per-partner query load falls roughly as
// 1/k, aggregate join cost grows as k, and connections per partner grow
// linearly in k (k² system-wide among super-peers).
func runKRedundancy(p Params) (*Report, error) {
	graphSize := p.scaled(10000, 1000)
	const clusterSize = 100
	rows := make([][]string, 0, 4)
	// All four k values evaluate concurrently; the k=1 baseline the relative
	// columns need is read from the ordered results afterwards.
	sums, err := pmap(p, "redundancy levels", 4, func(i int) (*analysis.TrialSummary, error) {
		cfg := network.Config{
			GraphType:   network.Strong,
			GraphSize:   graphSize,
			ClusterSize: clusterSize,
			KRedundancy: i + 1,
			TTL:         1,
		}
		return analysis.RunTrialsWorkers(cfg, nil, p.trials(5), p.Seed+uint64(i+1), p.Workers)
	})
	if err != nil {
		return nil, err
	}
	var baseSP, baseAgg float64
	for i, sum := range sums {
		k := i + 1
		spBW := sum.SuperPeer.InBps.Mean + sum.SuperPeer.OutBps.Mean
		aggBW := sum.Aggregate.InBps.Mean + sum.Aggregate.OutBps.Mean
		if k == 1 {
			baseSP, baseAgg = spBW, aggBW
		}
		clusters := sum.Config.NumClusters()
		conns := (clusterSize - k) + (clusters-1)*k + (k - 1)
		rows = append(rows, []string{
			fmt.Sprint(k),
			fmtEng(spBW),
			fmt.Sprintf("%+.0f%%", 100*(spBW/baseSP-1)),
			fmtEng(aggBW),
			fmt.Sprintf("%+.0f%%", 100*(aggBW/baseAgg-1)),
			fmtEng(sum.SuperPeer.ProcHz.Mean),
			fmt.Sprint(conns),
			fmtEng(sum.Client.OutBps.Mean),
		})
	}
	return &Report{
		Notes: []string{
			"extension beyond the paper (which evaluates only k = 2)",
			"expected shape: per-partner bandwidth ~1/k; client join traffic ~k; partner connections grow with k (k² among super-peers system-wide)",
			fmt.Sprintf("strong topology, %d peers, cluster size %d, TTL 1", graphSize, clusterSize),
		},
		Tables: []Table{{
			Columns: []string{"k", "SP BW (bps)", "vs k=1", "Agg BW (bps)", "vs k=1",
				"SP Proc (Hz)", "Conns/partner", "Client Out (bps)"},
			Rows: rows,
		}},
	}, nil
}
