package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"spnet/internal/analysis"
	"spnet/internal/network"
	"spnet/internal/p2p"
	"spnet/internal/routing"
	"spnet/internal/sim"
	"spnet/internal/stats"
	"spnet/internal/topology"
	"spnet/internal/workload"
)

// RoutingCompareParams shape the routing-strategy comparison: the same star
// overlay with planted per-cluster content is priced analytically
// (EvaluateStrategy), simulated (SimOptions.Routing) and run as live TCP
// super-peers (NodeOptions.Routing), and each strategy's forwarded-query
// bandwidth and recall are reported against the flood baseline.
//
// The topology is a star of Leaves leaf super-peers around one hub, TTL 2, so
// every query can reach every cluster under flooding. Cluster c's clients all
// share files titled "topic<c>" and queries ask for a uniformly random
// cluster's topic — content is perfectly partitioned, which makes ground
// truth exact: every query has ClientsPerCluster matching files, all in one
// cluster. Content-aware strategies can then prove their best case (prune
// every barren branch, keep full recall) while content-blind ones expose the
// bandwidth/recall trade honestly.
type RoutingCompareParams struct {
	// Leaves is the number of leaf super-peers around the hub (default 4).
	Leaves int
	// ClientsPerCluster is how many clients join each super-peer, each
	// sharing one file of the cluster's topic (default 3).
	ClientsPerCluster int
	// Strategies lists the routing specs to compare (default all built-ins:
	// flood, randomwalk, routingindex, learned). Flood is always included
	// as the baseline even if absent from the list.
	Strategies []string
	// SimDuration is the simulator run length in virtual seconds
	// (default 4000).
	SimDuration float64
	// QueryRate is each simulated user's Poisson query rate per virtual
	// second (default 0.05).
	QueryRate float64
	// LiveQueries is how many measured queries the live layer issues
	// (default 120). Learned strategies additionally get LiveQueries*2/3
	// unmeasured warmup queries to accumulate hit history.
	LiveQueries int
	// QueryWindow is how long each live search collects results
	// (default 80ms).
	QueryWindow time.Duration
	// Seed drives every random choice: simulator streams, live query
	// schedules, and randomized strategies.
	Seed uint64
	// Logf, when set, receives diagnostic output.
	Logf func(format string, args ...any)
}

func (p *RoutingCompareParams) setDefaults() {
	if p.Leaves <= 0 {
		p.Leaves = 4
	}
	if p.ClientsPerCluster <= 0 {
		p.ClientsPerCluster = 3
	}
	if len(p.Strategies) == 0 {
		p.Strategies = []string{"flood", "randomwalk", "routingindex", "learned"}
	}
	if p.SimDuration <= 0 {
		p.SimDuration = 4000
	}
	if p.QueryRate <= 0 {
		p.QueryRate = 0.05
	}
	if p.LiveQueries <= 0 {
		p.LiveQueries = 120
	}
	if p.QueryWindow <= 0 {
		p.QueryWindow = 80 * time.Millisecond
	}
	if p.Logf == nil {
		p.Logf = func(string, ...any) {}
	}
}

// clusters returns the total super-peer count: hub + leaves.
func (p *RoutingCompareParams) clusters() int { return p.Leaves + 1 }

func routingTopic(cluster int) string { return fmt.Sprintf("topic%d", cluster) }

// routingStar builds the hub-and-leaves overlay: node 0 is the hub, nodes
// 1..Leaves connect to it.
func routingStar(leaves int) (*topology.AdjGraph, error) {
	edges := make([][2]int, leaves)
	for i := 0; i < leaves; i++ {
		edges[i] = [2]int{0, i + 1}
	}
	return topology.NewAdjGraph(leaves+1, edges)
}

// routingCompareInstance hand-builds the star instance all three layers
// share. Every cluster has one partner with no files and ClientsPerCluster
// clients with one topic file each; a query matches a cluster's index with
// probability 1/clusters and then returns all ClientsPerCluster files.
func routingCompareInstance(p *RoutingCompareParams) (*network.Instance, error) {
	qm, err := workload.NewQueryModel([]float64{1}, []float64{1})
	if err != nil {
		return nil, err
	}
	graph, err := routingStar(p.Leaves)
	if err != nil {
		return nil, err
	}
	const never = 1e12 // lifespan, seconds: join rate 1/never ~ 0
	n := p.clusters()
	c := p.ClientsPerCluster
	prof := &workload.Profile{
		Queries:  qm,
		Rates:    workload.Rates{QueryRate: p.QueryRate, UpdateRate: 0},
		QueryLen: len(routingTopic(0)),
	}
	clusters := make([]network.Cluster, n)
	for v := range clusters {
		cl := network.Cluster{
			Partners:   []network.Peer{{Files: 0, Lifespan: never}},
			IndexFiles: c,
			ExpResults: float64(c) / float64(n),
			ExpAddrs:   float64(c) / float64(n),
			ProbResp:   1 / float64(n),
		}
		for i := 0; i < c; i++ {
			cl.Clients = append(cl.Clients, network.Peer{Files: 1, Lifespan: never})
		}
		clusters[v] = cl
	}
	return &network.Instance{
		Config: network.Config{
			GraphType:   network.PowerLaw,
			GraphSize:   n * (c + 1),
			ClusterSize: c + 1,
			KRedundancy: 1,
			TTL:         2,
		},
		Profile:  prof,
		Graph:    graph,
		Clusters: clusters,
		NumPeers: n * (c + 1),
	}, nil
}

// routingForwardModel returns the analytic forward model for a strategy spec
// on the star: how many query copies a node forwards at the source and at a
// relay, in expectation over the uniform topic workload.
//
// Flood is nil (the engine's exact evaluation). Random walks use the generic
// k-walker model. For the content-aware strategies the star has a closed
// form: a source forwards one copy unless the query's topic is its own
// cluster's (probability 1/n), and the hub relays a leaf's query to exactly
// one leaf unless the topic is the hub's own (conditional probability
// 1/(n-1) given it was forwarded at all):
//
//	source = 1 - 1/n        relay = (n-2)/(n-1)
//
// The learned strategy converges to the same decisions once every
// neighbor×term pair has history, so it shares the constants — its model is
// the steady state, not the exploration phase.
func routingForwardModel(spec string, n int) (*routing.Forwards, error) {
	name, arg, _ := strings.Cut(spec, ":")
	switch name {
	case "flood":
		return nil, nil
	case "randomwalk":
		k := routing.DefaultWalkers
		if arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("routingcompare: bad walker count %q", spec)
			}
			k = v
		}
		return routing.RandomWalkForwards(k), nil
	case "routingindex", "learned":
		source := 1 - 1/float64(n)
		relay := float64(n-2) / float64(n-1)
		return routing.ConstForwards(name, source, relay), nil
	default:
		return nil, fmt.Errorf("routingcompare: no analytic model for %q", spec)
	}
}

// RoutingCompareCell is one layer's measurement of one strategy.
type RoutingCompareCell struct {
	// ForwardsPerQuery is the mean number of query copies sent over overlay
	// links per query — the bandwidth knob.
	ForwardsPerQuery float64
	// Recall is the fraction of matching files found, relative to the
	// ground truth of ClientsPerCluster matches per query. The analytic
	// column derives it from the model's expected results ratio vs flood
	// (content-aware strategies keep 1.0 by construction: their summaries
	// are conservative, so they never prune a matching branch).
	Recall float64
}

// RoutingCompareRow is one strategy measured three ways.
type RoutingCompareRow struct {
	Strategy string
	Model    RoutingCompareCell
	Sim      RoutingCompareCell
	Live     RoutingCompareCell
}

// BandwidthSaved returns the fractional reduction in forwarded query copies
// vs the flood baseline in the same layer.
func bandwidthSaved(strategy, flood float64) float64 {
	if flood <= 0 {
		return 0
	}
	return 1 - strategy/flood
}

// RoutingCompareResult carries the comparison rows alongside the printable
// report, for tests to assert the bandwidth/recall trade on.
type RoutingCompareResult struct {
	Rows   []RoutingCompareRow
	Report *Report
}

// Row returns the row for a strategy spec, or nil.
func (r *RoutingCompareResult) Row(strategy string) *RoutingCompareRow {
	for i := range r.Rows {
		if r.Rows[i].Strategy == strategy {
			return &r.Rows[i]
		}
	}
	return nil
}

// runRoutingSim simulates one strategy over the shared instance and returns
// forwards per query and recall against the planted ground truth.
func runRoutingSim(p *RoutingCompareParams, spec string) (RoutingCompareCell, error) {
	var cell RoutingCompareCell
	inst, err := routingCompareInstance(p)
	if err != nil {
		return cell, err
	}
	strat, err := routing.Parse(spec)
	if err != nil {
		return cell, err
	}
	n := p.clusters()
	m, err := sim.Run(inst, sim.Options{
		Duration: p.SimDuration,
		Seed:     p.Seed + 1,
		Routing:  strat,
		Content: &sim.ContentOptions{
			Titles: func(cluster, owner, file int) []string {
				return []string{routingTopic(cluster)}
			},
			Queries: func(rng *stats.RNG) []string {
				return []string{routingTopic(rng.Intn(n))}
			},
		},
	})
	if err != nil {
		return cell, err
	}
	if m.QueriesIssued == 0 {
		return cell, fmt.Errorf("routingcompare: simulator issued no queries")
	}
	cell.ForwardsPerQuery = float64(m.QueriesForwarded) / float64(m.QueriesIssued)
	cell.Recall = m.ResultsPerQuery / float64(p.ClientsPerCluster)
	return cell, nil
}

// runRoutingLive boots a live star of p2p nodes under one strategy, drives a
// seeded query schedule through real client connections, and measures
// forwards per query from the spnet_queries_forwarded_total counters and
// recall from collected results.
func runRoutingLive(p *RoutingCompareParams, spec string) (RoutingCompareCell, error) {
	var cell RoutingCompareCell
	strat, err := routing.Parse(spec)
	if err != nil {
		return cell, err
	}
	n := p.clusters()
	c := p.ClientsPerCluster

	nodes := make([]*p2p.Node, n)
	defer func() {
		for _, nd := range nodes {
			if nd != nil {
				nd.Close()
			}
		}
	}()
	for i := 0; i < n; i++ {
		st, err := routing.Parse(spec) // fresh value per node; state is per-node anyway
		if err != nil {
			return cell, err
		}
		nodes[i] = p2p.NewNode(p2p.Options{
			TTL:               2,
			HeartbeatInterval: -1,
			DrainTimeout:      200 * time.Millisecond,
			Routing:           st,
			RoutingSeed:       p.Seed + uint64(i+1),
		})
		if err := nodes[i].Listen("127.0.0.1:0"); err != nil {
			return cell, fmt.Errorf("routingcompare: node %d listen: %w", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if err := nodes[i].ConnectPeer(nodes[0].Addr()); err != nil {
			return cell, fmt.Errorf("routingcompare: leaf %d connect: %w", i, err)
		}
	}

	var clients []*p2p.Client
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()
	for v := 0; v < n; v++ {
		for i := 0; i < c; i++ {
			cl, err := p2p.DialClient(nodes[v].Addr(), []p2p.SharedFile{
				{Index: uint32(i + 1), Title: routingTopic(v)},
			})
			if err != nil {
				return cell, fmt.Errorf("routingcompare: client %d/%d: %w", v, i, err)
			}
			clients = append(clients, cl)
		}
	}

	if routing.UsesSummaries(strat) {
		if err := awaitSummaries(nodes, p.Leaves, 5*time.Second); err != nil {
			return cell, err
		}
	} else {
		time.Sleep(150 * time.Millisecond) // let joins finish indexing
	}

	search := func(rng *stats.RNG) int {
		src := rng.Intn(n)
		cli := rng.Intn(c)
		topic := routingTopic(rng.Intn(n))
		out, err := clients[src*c+cli].SearchDetailed(topic, p.QueryWindow)
		if err != nil {
			p.Logf("routingcompare: live query %s from cluster %d: %v", topic, src, err)
			return 0
		}
		return len(out.Results)
	}

	// Learned routing needs history before its scores mean anything; give it
	// an unmeasured warmup pass over the same kind of workload.
	if routing.Learns(strat) {
		warm := stats.NewRNG(p.Seed + 202)
		for q := 0; q < p.LiveQueries*2/3; q++ {
			search(warm)
		}
	}

	forwarded := func() int64 {
		var sum int64
		for _, nd := range nodes {
			sum += nd.Metrics().QueriesForwarded.Value()
		}
		return sum
	}
	base := forwarded()

	rng := stats.NewRNG(p.Seed + 101)
	found := 0.0
	for q := 0; q < p.LiveQueries; q++ {
		found += float64(search(rng))
	}
	// Settle so in-flight relays land in the counters before the read.
	time.Sleep(100 * time.Millisecond)

	cell.ForwardsPerQuery = float64(forwarded()-base) / float64(p.LiveQueries)
	cell.Recall = found / float64(p.LiveQueries*c)
	return cell, nil
}

// awaitSummaries polls RoutingInfo until routing-index adverts have
// propagated: the hub holds one summary per leaf and every leaf holds the
// hub's aggregate covering all other clusters' topics.
func awaitSummaries(nodes []*p2p.Node, leaves int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		for i, nd := range nodes {
			_, links, terms := nd.RoutingInfo()
			if i == 0 {
				ok = ok && links == leaves && terms >= leaves
			} else {
				ok = ok && links == 1 && terms >= leaves
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("routingcompare: summaries did not converge within %v", timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// RunRoutingCompareResult executes the full three-way strategy comparison
// and returns both the rows and the printable report.
func RunRoutingCompareResult(p RoutingCompareParams) (*RoutingCompareResult, error) {
	p.setDefaults()
	n := p.clusters()

	specs := p.Strategies
	hasFlood := false
	for _, s := range specs {
		if s == "flood" {
			hasFlood = true
		}
	}
	if !hasFlood {
		specs = append([]string{"flood"}, specs...)
	}

	inst, err := routingCompareInstance(&p)
	if err != nil {
		return nil, err
	}
	floodRes := analysis.Evaluate(inst)
	if floodRes.ResultsPerQuery <= 0 {
		return nil, fmt.Errorf("routingcompare: flood model expects no results")
	}

	rows := make([]RoutingCompareRow, 0, len(specs))
	for _, spec := range specs {
		p.Logf("routingcompare: strategy %s", spec)
		fw, err := routingForwardModel(spec, n)
		if err != nil {
			return nil, err
		}
		res := analysis.EvaluateStrategy(inst, fw)
		model := RoutingCompareCell{
			ForwardsPerQuery: res.QueryForwardsPerQuery,
			Recall:           res.ResultsPerQuery / floodRes.ResultsPerQuery,
		}
		// The engine's strategy evaluation spreads forwards uniformly over
		// neighbors — right for content-blind strategies, pessimistic for
		// content-aware ones, whose conservative summaries provably never
		// prune a matching branch. Their analytic recall is exact: 1.
		if fw != nil && (strings.HasPrefix(spec, "routingindex") || strings.HasPrefix(spec, "learned")) {
			model.Recall = 1
		}
		simCell, err := runRoutingSim(&p, spec)
		if err != nil {
			return nil, err
		}
		liveCell, err := runRoutingLive(&p, spec)
		if err != nil {
			return nil, err
		}
		rows = append(rows, RoutingCompareRow{
			Strategy: spec,
			Model:    model,
			Sim:      simCell,
			Live:     liveCell,
		})
	}

	flood := rows[0]
	columns := []string{
		"strategy",
		"fwd/query model", "fwd/query sim", "fwd/query live",
		"recall model", "recall sim", "recall live",
		"bw saved sim", "bw saved live",
	}
	tableRows := make([][]string, 0, len(rows))
	for _, r := range rows {
		tableRows = append(tableRows, []string{
			r.Strategy,
			fmt.Sprintf("%.2f", r.Model.ForwardsPerQuery),
			fmt.Sprintf("%.2f", r.Sim.ForwardsPerQuery),
			fmt.Sprintf("%.2f", r.Live.ForwardsPerQuery),
			fmt.Sprintf("%.2f", r.Model.Recall),
			fmt.Sprintf("%.2f", r.Sim.Recall),
			fmt.Sprintf("%.2f", r.Live.Recall),
			fmt.Sprintf("%.0f%%", 100*bandwidthSaved(r.Sim.ForwardsPerQuery, flood.Sim.ForwardsPerQuery)),
			fmt.Sprintf("%.0f%%", 100*bandwidthSaved(r.Live.ForwardsPerQuery, flood.Live.ForwardsPerQuery)),
		})
	}

	report := &Report{
		ID:    "routingcompare",
		Title: "Extension: query-routing strategies — bandwidth saved vs recall lost, three ways",
		Notes: []string{
			fmt.Sprintf("star overlay: %d leaves around one hub, TTL 2, %d clients per super-peer, topic-partitioned content",
				p.Leaves, p.ClientsPerCluster),
			fmt.Sprintf("simulated %g virtual s per strategy; live layer issued %d measured queries per strategy",
				p.SimDuration, p.LiveQueries),
			"fwd/query counts query copies on overlay links (spnet_queries_forwarded_total); recall is found results over planted matches",
			"model column: EvaluateStrategy forward models; content-aware recall is 1 by the conservative-summary argument",
		},
		Tables: []Table{{
			Title:   "per-strategy forwarded bandwidth and recall, model vs simulator vs live",
			Columns: columns,
			Rows:    tableRows,
		}},
	}
	return &RoutingCompareResult{Rows: rows, Report: report}, nil
}

// RunRoutingCompare is the exported entry point for the routingcompare
// experiment.
func RunRoutingCompare(p RoutingCompareParams) (*Report, error) {
	res, err := RunRoutingCompareResult(p)
	if err != nil {
		return nil, err
	}
	return res.Report, nil
}

// runRoutingCompareDefault adapts the generic experiment Params: Scale
// shortens the simulated and live windows proportionally.
func runRoutingCompareDefault(p Params) (*Report, error) {
	rp := RoutingCompareParams{Seed: p.Seed}
	if p.Scale > 0 && p.Scale < 1 {
		rp.SimDuration = maxf(400, 4000*p.Scale)
		rp.LiveQueries = maxi(24, int(120*p.Scale))
	}
	return RunRoutingCompare(rp)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
