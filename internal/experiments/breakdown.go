package experiments

import (
	"fmt"

	"spnet/internal/analysis"
	"spnet/internal/network"
	"spnet/internal/stats"
)

// runBreakdown is an ablation of the cost model: it attributes the aggregate
// load of representative configurations to protocol components, making the
// paper's causal explanations quantitative — rule #1's knee is the
// query-transfer overhead shrinking with cluster count, Figure 5's incoming
// bandwidth is response forwarding, Figure 6's small-cluster uptick is the
// Appendix A packet-multiplex overhead, and Appendix C's regime shift is
// joins overtaking queries.
func runBreakdown(p Params) (*Report, error) {
	size := p.scaled(10000, 500)
	configs := []struct {
		label string
		cfg   network.Config
	}{
		{"pure P2P (cluster 1, strong, TTL 1)", network.Config{
			GraphType: network.Strong, GraphSize: size, ClusterSize: 1, TTL: 1}},
		{"super-peers (cluster 50, strong, TTL 1)", network.Config{
			GraphType: network.Strong, GraphSize: size, ClusterSize: 50, TTL: 1}},
		{"Gnutella-like (cluster 10, power 3.1, TTL 7)", network.Config{
			GraphType: network.PowerLaw, GraphSize: size, ClusterSize: 10,
			AvgOutdegree: 3.1, TTL: 7}},
		{"2-redundant (cluster 50, strong, TTL 1)", network.Config{
			GraphType: network.Strong, GraphSize: size, ClusterSize: 50,
			Redundancy: true, TTL: 1}},
	}

	bwRows := make([][]string, 0, len(configs))
	procRows := make([][]string, 0, len(configs))
	bds, err := pmap(p, "configurations", len(configs), func(i int) (analysis.Breakdown, error) {
		inst, err := network.Generate(configs[i].cfg, nil, stats.NewRNG(p.Seed+uint64(i)))
		if err != nil {
			return analysis.Breakdown{}, err
		}
		return analysis.Evaluate(inst).LoadBreakdown(), nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range configs {
		bd := bds[i]
		total := bd.Total()

		pct := func(part, whole float64) string {
			if whole == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f%%", 100*part/whole)
		}
		bw := total.TotalBps()
		bwRows = append(bwRows, []string{
			c.label, fmtEng(bw),
			pct(bd.QueryTransfer.TotalBps(), bw),
			pct(bd.ResponseTransfer.TotalBps(), bw),
			pct(bd.Joins.TotalBps(), bw),
			pct(bd.Updates.TotalBps(), bw),
		})
		pr := total.ProcHz
		procRows = append(procRows, []string{
			c.label, fmtEng(pr),
			pct(bd.QueryTransfer.ProcHz, pr),
			pct(bd.QueryProcessing.ProcHz, pr),
			pct(bd.ResponseTransfer.ProcHz, pr),
			pct(bd.Joins.ProcHz, pr),
			pct(bd.Updates.ProcHz, pr),
			pct(bd.PacketMultiplex.ProcHz, pr),
		})
	}
	return &Report{
		Notes: []string{
			"ablation: aggregate load attributed to protocol components (single representative instance per configuration)",
			"expected shape: response transfer dominates bandwidth; query transfer shrinks with cluster size (rule #1's knee); packet multiplex dominates pure-P2P processing (Figure 6)",
		},
		Tables: []Table{
			{
				Title:   "Bandwidth (in+out) by component",
				Columns: []string{"Configuration", "Total (bps)", "Query xfer", "Response xfer", "Joins", "Updates"},
				Rows:    bwRows,
			},
			{
				Title:   "Processing by component",
				Columns: []string{"Configuration", "Total (Hz)", "Query xfer", "Query proc", "Response xfer", "Joins", "Updates", "Pkt multiplex"},
				Rows:    procRows,
			},
		},
	}, nil
}
