package experiments

import (
	"fmt"
	"math"
	"sync"
	"time"

	"spnet/internal/analysis"
	"spnet/internal/network"
	"spnet/internal/p2p"
	"spnet/internal/sim"
	"spnet/internal/stats"
	"spnet/internal/topology"
	"spnet/internal/workload"
)

// trustProbeTerm is the live sweep's common query term; the hub's provider
// clients share files matching it, so any query that survives the access and
// relay legs returns genuine results.
const trustProbeTerm = "trust probe needle"

// TrustSweepParams shape the adversarial three-way sweep: the same star
// overlay is walked in closed form, simulated at the message level, and run
// as real TCP nodes, at malicious fractions 0–50% with reputation-weighted
// selection off and on.
//
// The three layers share the attack (freeloading drops plus forged hits) but
// each measures its own defense surface. The model predicts recall from
// per-leg drop probabilities — trust-off legs lose a query with probability
// (malicious slots/2)·Drop, trust-on legs only when every slot of a cluster
// is malicious. The simulator adds reputation learning, Busy accounting and
// the forged-hit audit. The live layer adds what only a working system has:
// client re-homing over real sockets, trust-aware admission, and hit
// validation against outstanding query routes.
type TrustSweepParams struct {
	// Fractions are the malicious-partner fractions swept (default
	// 0, 0.1, 0.3, 0.5 — the ISSUE's 0–50% range).
	Fractions []float64
	// Drop and Forge are the per-opportunity misbehavior probabilities of a
	// malicious partner (default 1: always drop, always forge — the
	// starkest version of the attack).
	Drop, Forge float64
	// SimClusters is the simulated star's cluster count including the hub;
	// each cluster has 2 partner slots and 3 clients (default 5).
	SimClusters int
	// SimDuration is the simulated virtual time per cell (default 1500 s).
	SimDuration float64
	// LiveLeaves is the live star's leaf-node count; malicious nodes are
	// round(fraction·LiveLeaves) of them (default 10).
	LiveLeaves int
	// Searches is how many queries each live client issues (default 6).
	Searches int
	// Window is each live search's result-collection window (default
	// 250 ms) — also the cadence of the client's reputation observations.
	Window time.Duration
	// Seed drives the simulator and the live misbehavior streams.
	Seed uint64
	// Logf, when set, receives diagnostic output.
	Logf func(format string, args ...any)
}

func (p *TrustSweepParams) setDefaults() {
	if p.Fractions == nil {
		p.Fractions = []float64{0, 0.1, 0.3, 0.5}
	}
	if p.Drop <= 0 {
		p.Drop = 1
	}
	if p.Forge <= 0 {
		p.Forge = 1
	}
	if p.SimClusters <= 0 {
		p.SimClusters = 5
	}
	if p.SimDuration <= 0 {
		p.SimDuration = 1500
	}
	if p.LiveLeaves <= 0 {
		p.LiveLeaves = 10
	}
	if p.Searches <= 0 {
		p.Searches = 6
	}
	if p.Window <= 0 {
		p.Window = 250 * time.Millisecond
	}
	if p.Logf == nil {
		p.Logf = func(string, ...any) {}
	}
}

// trustMaliciousSlots spreads nMal malicious assignments over the star's
// 2-slot clusters, slot 0 first across all clusters — so no cluster loses
// both partners until more than half of all slots are malicious, matching
// the model's trust-on assumption that an honest alternative exists.
func trustMaliciousSlots(nMal, clusters int) func(cluster, slot int) bool {
	return func(cluster, slot int) bool {
		return slot*clusters+cluster < nMal
	}
}

// trustLegLoss returns each cluster's per-leg query-loss probability q(c):
// the chance that the partner chosen to receive a query (by a client at its
// own cluster, or by a forwarding neighbor) is malicious and drops it.
// Trust-oblivious choosers pick uniformly over the 2 slots; reputation-
// weighted choosers avoid a malicious slot whenever an honest one exists.
func trustLegLoss(nMal, clusters int, drop float64, trustOn bool) []float64 {
	malicious := trustMaliciousSlots(nMal, clusters)
	q := make([]float64, clusters)
	for c := range q {
		mal := 0
		for s := 0; s < 2; s++ {
			if malicious(c, s) {
				mal++
			}
		}
		if trustOn {
			if mal == 2 {
				q[c] = drop
			}
		} else {
			q[c] = drop * float64(mal) / 2
		}
	}
	return q
}

// trustModelLost is the closed-form lost-query fraction on the star: clients
// and query topics are uniform over clusters, and a query survives iff every
// leg's chosen partner relays it. Legs for a client at cluster x querying
// topic t: the access leg at x always; then x→hub, hub→t as the star path
// requires (cluster 0 is the hub).
func trustModelLost(q []float64) float64 {
	n := len(q)
	total := 0.0
	for x := 0; x < n; x++ {
		for t := 0; t < n; t++ {
			surv := 1 - q[x]
			if t != x {
				if x != 0 {
					surv *= 1 - q[0]
				}
				if t != 0 {
					surv *= 1 - q[t]
				}
			}
			total += 1 - surv
		}
	}
	return total / float64(n*n)
}

// trustStarInstance hand-builds the star the model and simulator share:
// clusters 2-redundant super-peer pairs, 3 one-file clients each, topic-
// partitioned content, TTL 2 (enough for leaf→hub→leaf).
func trustStarInstance(clusters int) (*network.Instance, error) {
	const clientsPer = 3
	qm, err := workload.NewQueryModel([]float64{1}, []float64{1})
	if err != nil {
		return nil, err
	}
	edges := make([][2]int, clusters-1)
	for i := range edges {
		edges[i] = [2]int{0, i + 1}
	}
	graph, err := topology.NewAdjGraph(clusters, edges)
	if err != nil {
		return nil, err
	}
	const never = 1e12
	cls := make([]network.Cluster, clusters)
	for v := range cls {
		cl := network.Cluster{
			Partners: []network.Peer{
				{Files: 0, Lifespan: never},
				{Files: 0, Lifespan: never},
			},
			IndexFiles: clientsPer,
			ExpResults: float64(clientsPer) / float64(clusters),
			ExpAddrs:   float64(clientsPer) / float64(clusters),
			ProbResp:   1 / float64(clusters),
		}
		for i := 0; i < clientsPer; i++ {
			cl.Clients = append(cl.Clients, network.Peer{Files: 1, Lifespan: never})
		}
		cls[v] = cl
	}
	return &network.Instance{
		Config: network.Config{
			GraphType:   network.PowerLaw,
			GraphSize:   clusters * (clientsPer + 2),
			ClusterSize: clientsPer + 2,
			KRedundancy: 2,
			TTL:         2,
		},
		Profile: &workload.Profile{
			Queries:  qm,
			Rates:    workload.Rates{QueryRate: 0.05},
			QueryLen: 6,
		},
		Graph:    graph,
		Clusters: cls,
		NumPeers: clusters * (clientsPer + 2),
	}, nil
}

// runTrustSimCell simulates one (fraction, trust) cell on the star with
// topic-partitioned content, so lost-fraction and spread measure real recall
// against exact ground truth.
func runTrustSimCell(p *TrustSweepParams, frac float64, trustOn bool) (*sim.Measured, error) {
	inst, err := trustStarInstance(p.SimClusters)
	if err != nil {
		return nil, err
	}
	nMal := int(math.Round(frac * 2 * float64(p.SimClusters)))
	clusters := p.SimClusters
	return sim.Run(inst, sim.Options{
		Duration: p.SimDuration,
		Seed:     p.Seed + 17,
		Adversary: &sim.AdversaryOptions{
			Malicious: trustMaliciousSlots(nMal, clusters),
			Drop:      p.Drop,
			Forge:     p.Forge,
			Trust:     trustOn,
		},
		Content: &sim.ContentOptions{
			Titles: func(cluster, owner, file int) []string {
				return []string{fmt.Sprintf("topic%d", cluster)}
			},
			Queries: func(rng *stats.RNG) []string {
				return []string{fmt.Sprintf("topic%d", rng.Intn(clusters))}
			},
		},
	})
}

// trustLiveCell is one live (fraction, trust) measurement.
type trustLiveCell struct {
	Lost           float64 // fraction of client searches with zero genuine results
	GenuinePerQ    float64
	ForgedDetected int64
	Rehomes        int64
	AdmissionShed  int64
}

// trustWait polls cond until it holds or the timeout elapses.
func trustWait(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

// runTrustLiveCell boots a flat star of real nodes — an honest hub indexing
// the provider's files, LiveLeaves access super-peers of which the first
// round(frac·LiveLeaves) misbehave — and homes one client on every leaf with
// the diametrically opposite leaf as its ranked alternative. Each client's
// searches must cross its access leaf to reach the hub's content, so a
// freeloading leaf starves exactly its own clients: the loss reputation-
// driven re-homing is able to win back.
func runTrustLiveCell(p *TrustSweepParams, frac float64, trustOn bool) (trustLiveCell, error) {
	var cell trustLiveCell
	leaves := p.LiveLeaves
	nMal := int(math.Round(frac * float64(leaves)))

	hub := p2p.NewNode(p2p.Options{Trust: trustOn})
	if err := hub.Listen("127.0.0.1:0"); err != nil {
		return cell, err
	}
	defer hub.Close()
	nodes := make([]*p2p.Node, leaves)
	for i := range nodes {
		opts := p2p.Options{Trust: trustOn}
		if i < nMal {
			opts.Misbehave = &p2p.MisbehaveOptions{
				Drop:  p.Drop,
				Forge: p.Forge,
				Seed:  p.Seed + uint64(i),
			}
		}
		nodes[i] = p2p.NewNode(opts)
		if err := nodes[i].Listen("127.0.0.1:0"); err != nil {
			return cell, err
		}
		defer nodes[i].Close()
		if err := nodes[i].ConnectPeer(hub.Addr()); err != nil {
			return cell, err
		}
	}
	if !trustWait(5*time.Second, func() bool { return hub.Stats().Peers == leaves }) {
		return cell, fmt.Errorf("trustsweep: hub saw %d peers, want %d", hub.Stats().Peers, leaves)
	}

	provider, err := p2p.DialClient(hub.Addr(), []p2p.SharedFile{
		{Index: 1, Title: trustProbeTerm + " first edition"},
		{Index: 2, Title: trustProbeTerm + " second edition"},
	})
	if err != nil {
		return cell, err
	}
	defer provider.Close()
	if !trustWait(5*time.Second, func() bool { return hub.Stats().IndexedFiles == 2 }) {
		return cell, fmt.Errorf("trustsweep: provider files not indexed")
	}

	clients := make([]*p2p.Client, leaves)
	for i := range clients {
		cl, err := p2p.DialClientOptions(p2p.DialOptions{
			Addrs: []string{nodes[i].Addr(), nodes[(i+leaves/2)%leaves].Addr()},
			Trust: trustOn,
			Seed:  p.Seed ^ uint64(i+1)<<8,
		}, nil)
		if err != nil {
			return cell, err
		}
		defer cl.Close()
		clients[i] = cl
	}

	var mu sync.Mutex
	searches, lost, genuine := 0, 0, 0
	var wg sync.WaitGroup
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *p2p.Client) {
			defer wg.Done()
			for s := 0; s < p.Searches; s++ {
				out, err := cl.SearchDetailed(trustProbeTerm, p.Window)
				mu.Lock()
				searches++
				if err != nil || out.Genuine == 0 {
					lost++
					if err != nil {
						p.Logf("trustsweep: live search leaf %d: %v", i, err)
					}
				} else {
					genuine += out.Genuine
				}
				mu.Unlock()
			}
		}(i, cl)
	}
	wg.Wait()

	cell.Lost = float64(lost) / float64(searches)
	cell.GenuinePerQ = float64(genuine) / float64(searches)
	st := hub.Stats()
	cell.ForgedDetected = st.HitsForged
	cell.AdmissionShed = st.QueriesShedAdmission
	for _, n := range nodes {
		st := n.Stats()
		cell.ForgedDetected += st.HitsForged
		cell.AdmissionShed += st.QueriesShedAdmission
	}
	for _, cl := range clients {
		cell.Rehomes += int64(cl.Reconnects())
	}
	return cell, nil
}

// TrustSweepRow is one (fraction, trust) cell's three-way measurement.
type TrustSweepRow struct {
	Fraction float64
	Trust    bool

	// Lost-query fractions per layer (zero genuine results).
	ModelLost, SimLost, LiveLost float64
	// Recall per layer: the model's expected results per query, and the
	// measured genuine results per client query.
	ModelResults, SimGenuine, LiveGenuine float64

	// Simulator defense accounting.
	SimSpreadP50, SimSpreadP90        float64
	SimForgedAccepted, SimForgedDet   int
	SimRefused, SimDropped, SimRelays int

	// Live defense accounting.
	LiveForgedDet, LiveRehomes, LiveAdmissionShed int64
}

// TrustSweepResult carries the sweep rows alongside the printable report,
// for tests to assert the gap-recovery acceptance criterion on.
type TrustSweepResult struct {
	Rows   []TrustSweepRow
	Report *Report
}

// Row returns the cell at the given fraction and trust setting.
func (r *TrustSweepResult) Row(frac float64, trust bool) *TrustSweepRow {
	for i := range r.Rows {
		if r.Rows[i].Fraction == frac && r.Rows[i].Trust == trust {
			return &r.Rows[i]
		}
	}
	return nil
}

// RunTrustSweepResult executes the full sweep and returns rows and report.
func RunTrustSweepResult(p TrustSweepParams, progress func(done, total int)) (*TrustSweepResult, error) {
	p.setDefaults()
	inst, err := trustStarInstance(p.SimClusters)
	if err != nil {
		return nil, err
	}

	type cellKey struct {
		frac  float64
		trust bool
	}
	var cells []cellKey
	for _, f := range p.Fractions {
		for _, trust := range []bool{false, true} {
			cells = append(cells, cellKey{f, trust})
		}
	}

	rows := make([]TrustSweepRow, len(cells))
	for i, c := range cells {
		row := TrustSweepRow{Fraction: c.frac, Trust: c.trust}

		// Model column: closed-form star walk for the lost fraction, and the
		// mean-value engine with the mean per-leg honesty for recall.
		nMalSlots := int(math.Round(c.frac * 2 * float64(p.SimClusters)))
		q := trustLegLoss(nMalSlots, p.SimClusters, p.Drop, c.trust)
		row.ModelLost = trustModelLost(q)
		meanQ := 0.0
		for _, v := range q {
			meanQ += v
		}
		meanQ /= float64(len(q))
		row.ModelResults = analysis.EvaluateAdversarial(inst, nil, 1-meanQ).ResultsPerQuery

		m, err := runTrustSimCell(&p, c.frac, c.trust)
		if err != nil {
			return nil, err
		}
		if m.ClientQueriesTracked > 0 {
			row.SimLost = float64(m.ClientQueriesUnanswered) / float64(m.ClientQueriesTracked)
		}
		row.SimGenuine = m.GenuineResultsPerQuery
		row.SimSpreadP50 = m.SpreadP50
		row.SimSpreadP90 = m.SpreadP90
		row.SimForgedAccepted = m.ForgedAccepted
		row.SimForgedDet = m.ForgedDetected
		row.SimRefused = m.QueriesRefused
		row.SimDropped = m.QueriesDroppedMalicious
		row.SimRelays = m.RelayDropsMalicious

		live, err := runTrustLiveCell(&p, c.frac, c.trust)
		if err != nil {
			return nil, err
		}
		row.LiveLost = live.Lost
		row.LiveGenuine = live.GenuinePerQ
		row.LiveForgedDet = live.ForgedDetected
		row.LiveRehomes = live.Rehomes
		row.LiveAdmissionShed = live.AdmissionShed

		rows[i] = row
		if progress != nil {
			progress(i+1, len(cells))
		}
	}

	onOff := func(b bool) string {
		if b {
			return "on"
		}
		return "off"
	}
	recall := Table{
		Title: "lost-query fraction and recall, model vs simulator vs live",
		Columns: []string{"Malicious", "Trust", "Lost (model)", "Lost (sim)", "Lost (live)",
			"Results/q (model)", "Genuine/q (sim)", "Genuine/q (live)", "Spread p50/p90 (sim)"},
	}
	defense := Table{
		Title: "defense accounting",
		Columns: []string{"Malicious", "Trust", "Refused (sim)", "Dropped (sim)", "Relay drops (sim)",
			"Forged acc/det (sim)", "Forged det (live)", "Re-homes (live)", "Admission shed (live)"},
	}
	for _, r := range rows {
		mal := fmt.Sprintf("%.0f%%", 100*r.Fraction)
		recall.Rows = append(recall.Rows, []string{
			mal, onOff(r.Trust),
			fmt.Sprintf("%.3f", r.ModelLost),
			fmt.Sprintf("%.3f", r.SimLost),
			fmt.Sprintf("%.3f", r.LiveLost),
			fmt.Sprintf("%.2f", r.ModelResults),
			fmt.Sprintf("%.2f", r.SimGenuine),
			fmt.Sprintf("%.2f", r.LiveGenuine),
			fmt.Sprintf("%.1f/%.1f", r.SimSpreadP50, r.SimSpreadP90),
		})
		defense.Rows = append(defense.Rows, []string{
			mal, onOff(r.Trust),
			fmt.Sprint(r.SimRefused),
			fmt.Sprint(r.SimDropped),
			fmt.Sprint(r.SimRelays),
			fmt.Sprintf("%d/%d", r.SimForgedAccepted, r.SimForgedDet),
			fmt.Sprint(r.LiveForgedDet),
			fmt.Sprint(r.LiveRehomes),
			fmt.Sprint(r.LiveAdmissionShed),
		})
	}

	report := &Report{
		Notes: []string{
			"extension beyond the paper: freeloading + forgery attack at 0–50% malicious partners, trust-oblivious vs reputation-weighted",
			fmt.Sprintf("model/sim star: %d clusters × 2 partner slots, malicious slots spread one per cluster first", p.SimClusters),
			fmt.Sprintf("live star: honest hub + %d access super-peers, %d searches per client, %v result windows", p.LiveLeaves, p.Searches, p.Window),
			"acceptance shape: at >=30% malicious, trust-on recovers at least half of the lost-query gap in every layer",
			"live cells measure a real TCP overlay; their counts carry scheduling noise the model and simulator do not",
		},
		Tables: []Table{recall, defense},
	}
	return &TrustSweepResult{Rows: rows, Report: report}, nil
}

// runTrustSweepDefault adapts the generic experiment Params: small scales
// shrink the sweep to its endpoints and shorten every window so the smoke
// run stays fast; full scale is the validated configuration.
func runTrustSweepDefault(p Params) (*Report, error) {
	tp := TrustSweepParams{Seed: p.Seed}
	if p.Scale > 0 && p.Scale < 1 {
		tp.Fractions = []float64{0, 0.5}
		tp.LiveLeaves = 4
		tp.Searches = 3
		tp.Window = 150 * time.Millisecond
		tp.SimDuration = math.Max(400, 1500*p.Scale)
	}
	var progress func(done, total int)
	if p.Progress != nil {
		progress = func(done, total int) { p.Progress("cells", done, total) }
	}
	res, err := RunTrustSweepResult(tp, progress)
	if err != nil {
		return nil, err
	}
	return res.Report, nil
}
