package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"spnet/internal/analysis"
	"spnet/internal/control"
	"spnet/internal/network"
	"spnet/internal/p2p"
	"spnet/internal/sim"
	"spnet/internal/stats"
)

// SelfHealParams shape the self-healing experiment: a live super-peer fleet
// loses a loaded partner mid-run, once with the fleet controller
// (internal/control) watching and once without, and the lost-query fraction
// quantifies what the Section 5.3 decision rules buy when they are pushed to
// real nodes instead of simulated. A sim-adaptive cell (the simulator's
// in-process version of the same rules) runs beside the live arms as the
// baseline the paper's machinery predicts.
//
// The failure is engineered to hurt: clients are spread across a cluster's
// partners with per-partner capacity set exactly to their share, so when one
// partner dies its orphans find every survivor full (helloBusy) and stay
// disconnected — until the controller detects the death and promotes the
// survivor to double capacity. Controller-off, the orphans stay out for the
// rest of the run.
type SelfHealParams struct {
	// Clusters is the overlay ring size (default 2).
	Clusters int
	// Partners is the k-redundancy level (default 2).
	Partners int
	// ClientsPerCluster is how many live clients join each cluster; spread
	// round-robin across partners (default 4).
	ClientsPerCluster int
	// Duration is the run length in virtual seconds (default 600).
	Duration float64
	// TimeScale compresses virtual seconds into wall clock (default 120).
	TimeScale float64
	// QueryRate is each client's Poisson query rate per virtual second
	// (default 0.03).
	QueryRate float64
	// QueryWindow is the wall-clock result-collection window per search
	// (default 150ms).
	QueryWindow time.Duration
	// KillAt is when the loaded partner (cluster 0, partner 0) is killed,
	// in virtual seconds (default Duration/3).
	KillAt float64
	// ScrapeInterval is the controller's decision tick in virtual seconds
	// (default 20).
	ScrapeInterval float64
	// Seed drives every schedule.
	Seed uint64
	// SimGraphSize sizes the sim-adaptive baseline network; 0 disables the
	// baseline cell.
	SimGraphSize int
	// Progress, when set, receives per-arm completion updates.
	Progress func(stage string, done, total int)
	// RowSink, when set, receives each result row as its arm completes.
	RowSink func(stage string, columns, row []string)
	// Logf, when set, receives diagnostic output.
	Logf func(format string, args ...any)
}

func (p *SelfHealParams) setDefaults() {
	if p.Clusters <= 0 {
		p.Clusters = 2
	}
	if p.Partners <= 0 {
		p.Partners = 2
	}
	if p.ClientsPerCluster <= 0 {
		p.ClientsPerCluster = 4
	}
	if p.Duration <= 0 {
		p.Duration = 600
	}
	if p.TimeScale <= 0 {
		p.TimeScale = 120
	}
	if p.QueryRate <= 0 {
		p.QueryRate = 0.03
	}
	if p.QueryWindow <= 0 {
		p.QueryWindow = 150 * time.Millisecond
	}
	if p.KillAt <= 0 {
		p.KillAt = p.Duration / 3
	}
	if p.ScrapeInterval <= 0 {
		p.ScrapeInterval = 20
	}
	if p.Logf == nil {
		p.Logf = func(string, ...any) {}
	}
}

func (p *SelfHealParams) wall(virtual float64) time.Duration {
	return time.Duration(virtual / p.TimeScale * float64(time.Second))
}

func (p *SelfHealParams) wallClamped(virtual float64, floor time.Duration) time.Duration {
	if d := p.wall(virtual); d > floor {
		return d
	}
	return floor
}

// clientShare is the per-partner client budget: capacity is provisioned
// exactly, so a dead partner's clients cannot re-home without a promotion.
func (p *SelfHealParams) clientShare() int {
	share := (p.ClientsPerCluster + p.Partners - 1) / p.Partners
	if share < 1 {
		share = 1
	}
	return share
}

// SelfHealArm is one live arm's measurements.
type SelfHealArm struct {
	Issued   int
	Lost     int
	LostFrac float64
}

// SelfHealResult carries the raw measurements the table and the e2e tests
// read.
type SelfHealResult struct {
	Off SelfHealArm
	On  SelfHealArm
	// DetectVirtual is kill → EvDead in virtual seconds (controller-on arm).
	DetectVirtual float64
	// ReconfigVirtual is kill → promotion acked, virtual seconds.
	ReconfigVirtual float64
	// DirectivesAcked counts acked directives in the on arm.
	DirectivesAcked int
	// Events is the on arm's full controller event log.
	Events []control.Event
	// SimBaselineFrac is the sim-adaptive cell's lost fraction (-1 when the
	// baseline is disabled).
	SimBaselineFrac float64
	// SimFailures is the number of failures the sim cell injected.
	SimFailures int
}

// rotate returns addrs rotated so index `from` comes first — each client's
// ranked redundant-partner list starts at its home partner.
func rotate(addrs []string, from int) []string {
	out := make([]string, 0, len(addrs))
	for i := range addrs {
		out = append(out, addrs[(from+i)%len(addrs)])
	}
	return out
}

// runSelfHealArm runs one live arm: boot the fleet, join the clients, replay
// the query plan, kill the target partner at KillAt, and (controller arm
// only) let the control plane respond.
func runSelfHealArm(p *SelfHealParams, withController bool) (SelfHealArm, *control.Controller, time.Time, error) {
	var arm SelfHealArm
	share := p.clientShare()
	live := network.NewLive(network.LiveConfig{
		Clusters:  p.Clusters,
		Partners:  p.Partners,
		Seed:      p.Seed,
		Telemetry: true,
		Node: p2p.Options{
			MaxClients:        share,
			TTL:               7,
			HeartbeatInterval: p.wallClamped(30, 100*time.Millisecond),
			DrainTimeout:      200 * time.Millisecond,
		},
	})
	if err := live.Launch(); err != nil {
		return arm, nil, time.Time{}, err
	}
	defer live.Close()

	var ctrl *control.Controller
	if withController {
		var nodes []control.NodeConfig
		for _, sp := range live.SuperPeers() {
			nodes = append(nodes, control.NodeConfig{
				ID: sp.ID, Addr: sp.Addr, Telemetry: sp.Telemetry,
				Cluster: sp.Cluster, Partner: sp.Partner,
			})
		}
		ctrl = control.New(control.Options{
			Nodes:          nodes,
			ScrapeInterval: p.wallClamped(p.ScrapeInterval, 50*time.Millisecond),
			RPCTimeout:     500 * time.Millisecond,
			DialTimeout:    500 * time.Millisecond,
			Backoff:        control.Backoff{Initial: 20 * time.Millisecond, Max: 200 * time.Millisecond},
			Seed:           p.Seed + 1,
			ClientCapacity: share,
			BaseTTL:        7,
			TimeScale:      p.TimeScale,
			Dial:           live.Faults().Dialer(network.ControllerLabel),
			Logf:           p.Logf,
		})
		ctrl.Start()
		defer ctrl.Close()
	}

	// Clients, spread round-robin across partners with ranked failover lists
	// starting at their home partner.
	type shClient struct {
		cl       *p2p.Client
		arrivals []float64
	}
	var clients []*shClient
	defer func() {
		for _, sc := range clients {
			sc.cl.Close()
		}
	}()
	for c := 0; c < p.Clusters; c++ {
		for i := 0; i < p.ClientsPerCluster; i++ {
			cl, err := p2p.DialClientOptions(p2p.DialOptions{
				Addrs:             rotate(live.ClusterAddrs(c), i%p.Partners),
				Seed:              p.Seed + uint64(c*p.ClientsPerCluster+i),
				HeartbeatInterval: p.wallClamped(5, 20*time.Millisecond),
				MaxAttempts:       2 * p.Partners,
				Backoff: p2p.Backoff{
					Initial: p.wallClamped(1, 5*time.Millisecond),
					Max:     p.wallClamped(10, 25*time.Millisecond),
				},
			}, []p2p.SharedFile{{Index: 1, Title: fmt.Sprintf("needle c%dp%d", c, i)}})
			if err != nil {
				return arm, nil, time.Time{}, fmt.Errorf("selfheal client %d/%d: %w", c, i, err)
			}
			clients = append(clients, &shClient{
				cl:       cl,
				arrivals: liveArrivals(p.Seed, p.ClientsPerCluster, c, i, p.QueryRate, p.Duration),
			})
		}
	}

	start := time.Now()
	stopc := make(chan struct{})
	var killedAt time.Time
	var killWG sync.WaitGroup
	killWG.Add(1)
	go func() {
		defer killWG.Done()
		wait := time.Until(start.Add(p.wall(p.KillAt)))
		if wait > 0 {
			select {
			case <-time.After(wait):
			case <-stopc:
				return
			}
		}
		killedAt = time.Now()
		if err := live.KillSuperPeer(0, 0); err != nil {
			p.Logf("selfheal: kill sp-0-0: %v", err)
		}
	}()

	type tally struct{ issued, lost int }
	tallies := make([]tally, len(clients))
	var genWG sync.WaitGroup
	for ci, sc := range clients {
		genWG.Add(1)
		go func(ci int, sc *shClient) {
			defer genWG.Done()
			tl := &tallies[ci]
			for _, at := range sc.arrivals {
				if wait := time.Until(start.Add(p.wall(at))); wait > 0 {
					select {
					case <-time.After(wait):
					case <-stopc:
						return
					}
				}
				_, err := sc.cl.Search("needle", p.QueryWindow)
				tl.issued++
				if err != nil {
					tl.lost++
				}
			}
		}(ci, sc)
	}
	genWG.Wait()
	if endWait := time.Until(start.Add(p.wall(p.Duration))); endWait > 0 {
		time.Sleep(endWait)
	}
	close(stopc)
	killWG.Wait()

	for i := range tallies {
		arm.Issued += tallies[i].issued
		arm.Lost += tallies[i].lost
	}
	if arm.Issued > 0 {
		arm.LostFrac = float64(arm.Lost) / float64(arm.Issued)
	}
	return arm, ctrl, killedAt, nil
}

// RunSelfHealResult runs both live arms (and the sim-adaptive baseline when
// enabled) and returns the raw measurements.
func RunSelfHealResult(p SelfHealParams) (*SelfHealResult, error) {
	p.setDefaults()
	res := &SelfHealResult{DetectVirtual: -1, ReconfigVirtual: -1, SimBaselineFrac: -1}
	total := 2
	if p.SimGraphSize > 0 {
		total = 3
	}
	progress := func(done int) {
		if p.Progress != nil {
			p.Progress("self-heal arms", done, total)
		}
	}

	off, _, _, err := runSelfHealArm(&p, false)
	if err != nil {
		return nil, fmt.Errorf("controller-off arm: %w", err)
	}
	res.Off = off
	progress(1)

	on, ctrl, killedAt, err := runSelfHealArm(&p, true)
	if err != nil {
		return nil, fmt.Errorf("controller-on arm: %w", err)
	}
	res.On = on
	res.Events = ctrl.Events()
	for _, e := range res.Events {
		if e.Type == control.EvAcked {
			res.DirectivesAcked++
		}
		if killedAt.IsZero() || e.Time.Before(killedAt) {
			continue
		}
		since := e.Time.Sub(killedAt).Seconds() * p.TimeScale
		if e.Type == control.EvDead && e.Node == "sp-0-0" && res.DetectVirtual < 0 {
			res.DetectVirtual = since
		}
		if e.Type == control.EvAcked && e.Node != "sp-0-0" && res.ReconfigVirtual < 0 &&
			strings.Contains(e.Detail, "promote-partner") {
			res.ReconfigVirtual = since
		}
	}
	progress(2)

	if p.SimGraphSize > 0 {
		inst, err := network.Generate(network.Config{
			GraphType:    network.PowerLaw,
			GraphSize:    p.SimGraphSize,
			ClusterSize:  10,
			AvgOutdegree: 3.1,
			TTL:          5,
			KRedundancy:  p.Partners,
		}, nil, stats.NewRNG(p.Seed+50))
		if err != nil {
			return nil, fmt.Errorf("sim baseline: %w", err)
		}
		m, err := sim.Run(inst, sim.Options{
			Duration: 1200,
			Seed:     p.Seed + 100,
			Failures: &sim.FailureOptions{MTBF: 1000, RecoveryDelay: 300},
			Adaptive: &sim.AdaptiveOptions{
				Limit:    analysis.Load{InBps: 1e6, OutBps: 1e6, ProcHz: 1e9},
				Interval: 60,
			},
		})
		if err != nil {
			return nil, fmt.Errorf("sim baseline: %w", err)
		}
		if total := m.QueriesIssued + m.ClientQueriesLost; total > 0 {
			res.SimBaselineFrac = float64(m.ClientQueriesLost) / float64(total)
		} else {
			res.SimBaselineFrac = 0
		}
		res.SimFailures = m.FailuresInjected
		progress(3)
	}
	return res, nil
}

var selfHealColumns = []string{
	"Arm", "Queries issued", "Queries lost", "Lost fraction",
	"Detect (virtual s)", "Reconfig (virtual s)", "Directives acked",
}

// RunSelfHeal runs the experiment and renders the comparison table.
func RunSelfHeal(p SelfHealParams) (*Report, error) {
	p.setDefaults()
	res, err := RunSelfHealResult(p)
	if err != nil {
		return nil, err
	}
	fmtLat := func(v float64) string {
		if v < 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f", v)
	}
	rows := [][]string{
		{"live, controller off", fmt.Sprint(res.Off.Issued), fmt.Sprint(res.Off.Lost),
			fmt.Sprintf("%.2f%%", 100*res.Off.LostFrac), "-", "-", "-"},
		{"live, controller on", fmt.Sprint(res.On.Issued), fmt.Sprint(res.On.Lost),
			fmt.Sprintf("%.2f%%", 100*res.On.LostFrac),
			fmtLat(res.DetectVirtual), fmtLat(res.ReconfigVirtual), fmt.Sprint(res.DirectivesAcked)},
	}
	if res.SimBaselineFrac >= 0 {
		rows = append(rows, []string{
			"sim, adaptive rules (MTBF 1000 s)", "-", "-",
			fmt.Sprintf("%.2f%%", 100*res.SimBaselineFrac), "-", "-", "-",
		})
	}
	if p.RowSink != nil {
		for _, row := range rows {
			p.RowSink("self-healing", selfHealColumns, row)
		}
	}
	return &Report{
		ID:    "selfheal",
		Title: "Self-healing: fleet controller vs no controller on a live super-peer kill",
		Notes: []string{
			fmt.Sprintf("time-scale bridge: %g virtual s per wall s; %g virtual s per arm", p.TimeScale, p.Duration),
			fmt.Sprintf("%d clusters × %d partners, %d clients/cluster, per-partner capacity %d (exact share)",
				p.Clusters, p.Partners, p.ClientsPerCluster, p.clientShare()),
			fmt.Sprintf("sp-0-0 killed at %g virtual s; orphans are refused (helloBusy) until the controller promotes the survivor", p.KillAt),
			"detect = kill → dead declared; reconfig = kill → promotion acked by the survivor",
		},
		Tables: []Table{{
			Title:   "self-healing",
			Columns: selfHealColumns,
			Rows:    rows,
		}},
	}, nil
}

func runSelfHealDefault(p Params) (*Report, error) {
	sp := SelfHealParams{
		Seed:         p.Seed,
		SimGraphSize: p.scaled(2000, 300),
		Progress:     p.Progress,
		RowSink:      p.RowSink,
	}
	if p.scale() < 0.2 {
		// Tiny-scale (smoke/benchmark) runs: ~2 wall seconds per live arm.
		sp.Duration = 240
		sp.QueryRate = 0.06
	}
	return RunSelfHeal(sp)
}
