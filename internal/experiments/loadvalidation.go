package experiments

import (
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"spnet/internal/analysis"
	"spnet/internal/metrics"
	"spnet/internal/network"
	"spnet/internal/p2p"
	"spnet/internal/sim"
	"spnet/internal/topology"
	"spnet/internal/workload"
)

// loadProbeTerm is the common query term of the validation workload; every
// live client shares exactly one file matching it, so expected results per
// cluster are known in closed form.
const loadProbeTerm = "needle"

// LoadValidationParams shape the model-vs-measured load validation: the same
// small deterministic network is evaluated analytically, simulated, and run
// as real TCP super-peers with telemetry scraped over HTTP, then the three
// per-super-peer bandwidth measurements are laid side by side.
//
// The configuration is chosen so all three layers describe the same system
// exactly: k = 1 (the live flood sends to every partner of every neighbor,
// which equals the model only when each neighbor has one partner), a clique
// overlay (Clusters super-peers fully linked — the 3-cluster ring the live
// harness wires is the K3 clique), a single query class matching every
// collection with probability 1, updates disabled, and effectively infinite
// lifespans so the one-shot live joins mirror the model's zero join rate.
// Query and response traffic — the paper's dominant Table 2 components — are
// the classes compared.
type LoadValidationParams struct {
	// Clusters is the number of single-partner super-peers (default 3;
	// the live harness ring equals a clique only for 3, so larger values
	// also switch the analytical overlay accordingly — keep 3).
	Clusters int
	// ClientsPerCluster is how many clients join each super-peer, each
	// sharing one matching file (default 3).
	ClientsPerCluster int
	// QueryRate is each user's Poisson query rate in queries per virtual
	// second; super-peers are users too (default 0.05).
	QueryRate float64
	// Duration is the live measurement window in virtual seconds
	// (default 900).
	Duration float64
	// TimeScale compresses virtual seconds into wall clock: wall =
	// virtual / TimeScale (default 120).
	TimeScale float64
	// QueryWindow is the wall-clock window each live search collects
	// results for (default 60ms).
	QueryWindow time.Duration
	// SimDuration is the simulator's run length in virtual seconds
	// (default 8000; longer than the live window since virtual time is
	// cheap and convergence helps).
	SimDuration float64
	// TTL is the query TTL (default 7; anything >= 2 gives full reach on
	// a small clique).
	TTL int
	// Seed drives the arrival schedules and the simulator.
	Seed uint64
	// Logf, when set, receives diagnostic output.
	Logf func(format string, args ...any)
}

func (p *LoadValidationParams) setDefaults() {
	if p.Clusters <= 0 {
		p.Clusters = 3
	}
	if p.ClientsPerCluster <= 0 {
		p.ClientsPerCluster = 3
	}
	if p.QueryRate <= 0 {
		p.QueryRate = 0.05
	}
	if p.Duration <= 0 {
		p.Duration = 900
	}
	if p.TimeScale <= 0 {
		p.TimeScale = 120
	}
	if p.QueryWindow <= 0 {
		p.QueryWindow = 60 * time.Millisecond
	}
	if p.SimDuration <= 0 {
		p.SimDuration = 8000
	}
	if p.TTL <= 0 {
		p.TTL = 7
	}
	if p.Logf == nil {
		p.Logf = func(string, ...any) {}
	}
}

func (p *LoadValidationParams) wall(virtual float64) time.Duration {
	return time.Duration(virtual / p.TimeScale * float64(time.Second))
}

// loadValidationInstance hand-builds the exactly-known network instance the
// analytical and simulated columns evaluate: every cluster has one partner
// with no files and ClientsPerCluster clients with one matching file each,
// the single query class matches every file, and churn rates are zero.
func loadValidationInstance(p *LoadValidationParams) (*network.Instance, error) {
	qm, err := workload.NewQueryModel([]float64{1}, []float64{1})
	if err != nil {
		return nil, err
	}
	const never = 1e12 // lifespan, seconds: join rate 1/never ~ 0
	c := p.ClientsPerCluster
	prof := &workload.Profile{
		Queries:  qm,
		Rates:    workload.Rates{QueryRate: p.QueryRate, UpdateRate: 0},
		QueryLen: len(loadProbeTerm),
	}
	clusters := make([]network.Cluster, p.Clusters)
	for v := range clusters {
		cl := network.Cluster{
			Partners:   []network.Peer{{Files: 0, Lifespan: never}},
			IndexFiles: c,
			ExpResults: float64(c),
			ExpAddrs:   float64(c),
			ProbResp:   1,
		}
		for i := 0; i < c; i++ {
			cl.Clients = append(cl.Clients, network.Peer{Files: 1, Lifespan: never})
		}
		clusters[v] = cl
	}
	return &network.Instance{
		Config: network.Config{
			GraphType:   network.Strong,
			GraphSize:   p.Clusters * (c + 1),
			ClusterSize: c + 1,
			KRedundancy: 1,
			TTL:         p.TTL,
		},
		Profile:  prof,
		Graph:    topology.NewClique(p.Clusters),
		Clusters: clusters,
		NumPeers: p.Clusters * (c + 1),
	}, nil
}

// LoadValidationRow is one super-peer's three-way bandwidth comparison, all
// values in bits per virtual second broken down by taxonomy class.
type LoadValidationRow struct {
	// ID is the live harness's stable super-peer label.
	ID string
	// Model is the analytical prediction (Result.SuperPeerClassBps).
	Model metrics.ByClass
	// Sim is the simulator's measurement (Measured.SuperPeerClassBps).
	Sim metrics.ByClass
	// Live is the telemetry-scraped measurement, converted to virtual
	// seconds through the time bridge. Only classes the model drives
	// (query, response) are meaningful for comparison.
	Live metrics.ByClass
}

// QueryRespBps sums the query and response classes of one column in one
// direction — the compared quantity.
func queryRespBps(b metrics.ByClass, d metrics.Dir) float64 {
	return b.Sum(d, metrics.ClassQuery, metrics.ClassResponse)
}

// LoadValidationResult carries the comparison rows alongside the printable
// report, for tests to assert tolerances on.
type LoadValidationResult struct {
	Rows   []LoadValidationRow
	Report *Report
}

// MaxRelErrLiveVsModel returns the worst relative error between live-measured
// and analytically predicted query+response bandwidth over all super-peers
// and directions.
func (r *LoadValidationResult) MaxRelErrLiveVsModel() float64 {
	worst := 0.0
	for _, row := range r.Rows {
		for _, d := range []metrics.Dir{metrics.DirIn, metrics.DirOut} {
			if e := relErr(queryRespBps(row.Live, d), queryRespBps(row.Model, d)); e > worst {
				worst = e
			}
		}
	}
	return worst
}

func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / want
}

// scrapeClassBytes fetches one super-peer's /metrics exposition and returns
// its per-class wire-byte totals.
func scrapeClassBytes(addr string) (metrics.ByClass, error) {
	var b metrics.ByClass
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return b, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return b, fmt.Errorf("scrape %s: status %d", addr, resp.StatusCode)
	}
	vals, err := metrics.ParsePrometheus(resp.Body)
	if err != nil {
		return b, err
	}
	for c := 0; c < metrics.NumClasses; c++ {
		for d := 0; d < metrics.NumDirs; d++ {
			key := metrics.SeriesKey(metrics.MetricMessageBytes,
				metrics.Label{Name: "type", Value: metrics.Class(c).String()},
				metrics.Label{Name: "dir", Value: metrics.Dir(d).String()})
			b[c][d] = vals[key]
		}
	}
	return b, nil
}

// runLiveLoadCell boots the live network, drives the seeded workload, and
// returns each super-peer's measured per-class bandwidth in bits per virtual
// second, keyed in the harness's stable super-peer order.
func runLiveLoadCell(p *LoadValidationParams) (ids []string, measured []metrics.ByClass, err error) {
	live := network.NewLive(network.LiveConfig{
		Clusters:  p.Clusters,
		Partners:  1,
		Seed:      p.Seed,
		Telemetry: true,
		Node: p2p.Options{
			TTL:               p.TTL,
			HeartbeatInterval: -1, // keep the ping class quiet
			DrainTimeout:      200 * time.Millisecond,
		},
	})
	if err := live.Launch(); err != nil {
		return nil, nil, err
	}
	defer live.Close()

	// Clients: each shares one file matching the probe term, mirroring the
	// hand-built instance's one-file collections.
	var clients []*p2p.Client
	defer func() {
		for _, cl := range clients {
			cl.Close()
		}
	}()
	for c := 0; c < p.Clusters; c++ {
		for i := 0; i < p.ClientsPerCluster; i++ {
			cl, err := p2p.DialClient(live.ClusterAddrs(c)[0], []p2p.SharedFile{
				{Index: uint32(i + 1), Title: fmt.Sprintf("%s c%dp%d", loadProbeTerm, c, i)},
			})
			if err != nil {
				return nil, nil, fmt.Errorf("live client %d/%d: %w", c, i, err)
			}
			clients = append(clients, cl)
		}
	}
	// Let joins finish indexing before the baseline scrape.
	time.Sleep(150 * time.Millisecond)

	sps := live.SuperPeers()
	base := make([]metrics.ByClass, len(sps))
	for i, sp := range sps {
		if base[i], err = scrapeClassBytes(sp.Telemetry); err != nil {
			return nil, nil, err
		}
	}

	// The workload: every user — client or super-peer partner — issues
	// Poisson queries at QueryRate, exactly the model's user population.
	// Arrival plans are drawn per user slot in virtual seconds, so the full
	// schedule is deterministic in the seed.
	usersPer := p.ClientsPerCluster + 1
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < p.Clusters; c++ {
		for u := 0; u < usersPer; u++ {
			arrivals := liveArrivals(p.Seed, usersPer, c, u, p.QueryRate, p.Duration)
			wg.Add(1)
			go func(c, u int, arrivals []float64) {
				defer wg.Done()
				for _, at := range arrivals {
					if wait := time.Until(start.Add(p.wall(at))); wait > 0 {
						time.Sleep(wait)
					}
					var err error
					if u < p.ClientsPerCluster {
						_, err = clients[c*p.ClientsPerCluster+u].SearchDetailed(loadProbeTerm, p.QueryWindow)
					} else if n := live.Node(c, 0); n != nil {
						_, err = n.Search(loadProbeTerm, p.QueryWindow)
					}
					if err != nil {
						p.Logf("loadvalidation: query c%du%d: %v", c, u, err)
					}
				}
			}(c, u, arrivals)
		}
	}
	wg.Wait()
	if rest := time.Until(start.Add(p.wall(p.Duration))); rest > 0 {
		time.Sleep(rest)
	}
	// Short drain so in-flight forwards land before the closing scrape.
	time.Sleep(100 * time.Millisecond)
	virtualElapsed := time.Since(start).Seconds() * p.TimeScale

	ids = make([]string, len(sps))
	measured = make([]metrics.ByClass, len(sps))
	for i, sp := range sps {
		end, err := scrapeClassBytes(sp.Telemetry)
		if err != nil {
			return nil, nil, err
		}
		delta := end
		delta.Merge(base[i].Scale(-1))
		// Bytes over the actual elapsed window, converted to bits per
		// virtual second — late-firing arrivals dilate elapsed time and the
		// division self-corrects for it.
		measured[i] = delta.Scale(8 / virtualElapsed)
		ids[i] = sp.ID
	}
	return ids, measured, nil
}

// RunLoadValidationResult executes the full three-way validation and returns
// both the comparison rows and the printable report.
func RunLoadValidationResult(p LoadValidationParams) (*LoadValidationResult, error) {
	p.setDefaults()
	inst, err := loadValidationInstance(&p)
	if err != nil {
		return nil, err
	}

	res := analysis.Evaluate(inst)
	m, err := sim.Run(inst, sim.Options{Duration: p.SimDuration, Seed: p.Seed + 1})
	if err != nil {
		return nil, err
	}
	ids, liveMeasured, err := runLiveLoadCell(&p)
	if err != nil {
		return nil, err
	}
	if len(ids) != p.Clusters || len(m.SuperPeerClassBps) != p.Clusters {
		return nil, fmt.Errorf("loadvalidation: %d live super-peers, %d simulated clusters, want %d",
			len(ids), len(m.SuperPeerClassBps), p.Clusters)
	}

	rows := make([]LoadValidationRow, p.Clusters)
	for v := 0; v < p.Clusters; v++ {
		rows[v] = LoadValidationRow{
			ID:    ids[v],
			Model: res.SuperPeerClassBps(v),
			Sim:   m.SuperPeerClassBps[v],
			Live:  liveMeasured[v],
		}
	}

	columns := []string{
		"Super-peer", "Component", "Model (bps)", "Sim (bps)", "Live (bps)",
		"Sim err", "Live err",
	}
	var tableRows [][]string
	addRow := func(id, label string, model, simv, livev float64) {
		tableRows = append(tableRows, []string{
			id, label,
			fmt.Sprintf("%.4g", model),
			fmt.Sprintf("%.4g", simv),
			fmt.Sprintf("%.4g", livev),
			fmt.Sprintf("%.1f%%", 100*relErr(simv, model)),
			fmt.Sprintf("%.1f%%", 100*relErr(livev, model)),
		})
	}
	for _, row := range rows {
		for _, comp := range []struct {
			label string
			get   func(metrics.ByClass) float64
		}{
			{"query in", func(b metrics.ByClass) float64 { return b.Get(metrics.ClassQuery, metrics.DirIn) }},
			{"query out", func(b metrics.ByClass) float64 { return b.Get(metrics.ClassQuery, metrics.DirOut) }},
			{"response in", func(b metrics.ByClass) float64 { return b.Get(metrics.ClassResponse, metrics.DirIn) }},
			{"response out", func(b metrics.ByClass) float64 { return b.Get(metrics.ClassResponse, metrics.DirOut) }},
			{"query+response in", func(b metrics.ByClass) float64 { return queryRespBps(b, metrics.DirIn) }},
			{"query+response out", func(b metrics.ByClass) float64 { return queryRespBps(b, metrics.DirOut) }},
		} {
			addRow(row.ID, comp.label, comp.get(row.Model), comp.get(row.Sim), comp.get(row.Live))
		}
	}

	report := &Report{
		ID:    "loadvalidation",
		Title: "Validation: analytical vs simulated vs live-measured super-peer load",
		Notes: []string{
			fmt.Sprintf("%d single-partner super-peers on a clique, %d clients each, per-user query rate %g/virtual s",
				p.Clusters, p.ClientsPerCluster, p.QueryRate),
			fmt.Sprintf("live window %g virtual s at time-scale %g (%.1f wall s); simulator %g virtual s",
				p.Duration, p.TimeScale, p.Duration/p.TimeScale, p.SimDuration),
			"live column scraped from each super-peer's /metrics endpoint (spnet_message_bytes_total)",
			"query and response classes are the compared components; joins are one-shot live vs rate-based in the model, pings and busy have no analytical counterpart",
		},
		Tables: []Table{{
			Title:   "per-super-peer bandwidth, model vs simulator vs live",
			Columns: columns,
			Rows:    tableRows,
		}},
	}
	return &LoadValidationResult{Rows: rows, Report: report}, nil
}

// RunLoadValidation is the registry entry point for the loadvalidation
// experiment.
func RunLoadValidation(p LoadValidationParams) (*Report, error) {
	res, err := RunLoadValidationResult(p)
	if err != nil {
		return nil, err
	}
	return res.Report, nil
}

// runLoadValidationDefault adapts the generic experiment Params: Scale
// shortens the live and simulated windows proportionally (sampling noise
// grows as windows shrink — full scale is the validated configuration).
func runLoadValidationDefault(p Params) (*Report, error) {
	lp := LoadValidationParams{Seed: p.Seed}
	if p.Scale > 0 && p.Scale < 1 {
		lp.Duration = math.Max(60, 900*p.Scale)
		lp.SimDuration = math.Max(400, 8000*p.Scale)
	}
	return RunLoadValidation(lp)
}
