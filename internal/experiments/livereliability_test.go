package experiments

import (
	"runtime"
	"strconv"
	"testing"
	"time"

	"spnet/internal/faults"
)

// tinyLiveParams is a fast live configuration: ~1 wall second per cell.
func tinyLiveParams(seed uint64) LiveParams {
	return LiveParams{
		Clusters:          2,
		Ks:                []int{2},
		ClientsPerCluster: 2,
		Duration:          60,
		TimeScale:         60,
		QueryRate:         0.1, // ~6 queries per client per cell
		QueryWindow:       50 * time.Millisecond,
		Seed:              seed,
		Regimes:           []LiveRegime{{"tiny (MTBF 30 s, recovery 8 s)", 30, 8}},
	}
}

// TestLiveReliabilitySchedulesDeterministic pins the determinism contract:
// everything scheduled — fault times and per-client query arrivals — is
// bit-identical for a fixed seed at a fixed time scale, which is what makes
// a live run replayable even though measured counts are timing-dependent.
func TestLiveReliabilitySchedulesDeterministic(t *testing.T) {
	a := liveArrivals(42, 3, 1, 2, 0.5, 300)
	b := liveArrivals(42, 3, 1, 2, 0.5, 300)
	if len(a) == 0 {
		t.Fatal("no arrivals drawn")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	if c := liveArrivals(43, 3, 1, 2, 0.5, 300); len(c) == len(a) && c[0] == a[0] {
		t.Error("different seed produced the same arrival stream")
	}
	// Distinct client slots draw independent streams from the same seed.
	if d := liveArrivals(42, 3, 0, 1, 0.5, 300); len(d) == len(a) && d[0] == a[0] {
		t.Error("distinct client slots share an arrival stream")
	}

	s1 := faults.ExponentialSchedule(7, 2, 2, 30, 60)
	s2 := faults.ExponentialSchedule(7, 2, 2, 30, 60)
	if len(s1) != len(s2) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("schedule event %d differs: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}

// TestLiveReliabilityEndToEnd boots a real (tiny) live network, replays a
// failure regime through the time-scale bridge, and checks the run is sound:
// queries were issued, the report is shaped like the simulated table's live
// counterpart, rows streamed to the sink, and — the leak check — every
// goroutine the harness spawned is gone afterwards.
func TestLiveReliabilityEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live network run")
	}
	before := runtime.NumGoroutine()

	lp := tinyLiveParams(11)
	var streamed [][]string
	lp.RowSink = func(stage string, columns, row []string) {
		if stage == "" || len(columns) != len(row) {
			t.Errorf("sink got stage %q, %d columns, %d cells", stage, len(columns), len(row))
		}
		streamed = append(streamed, append([]string(nil), row...))
	}
	rep, err := RunLiveReliability(lp)
	if err != nil {
		t.Fatalf("RunLiveReliability: %v", err)
	}
	if len(rep.Tables) != 1 || len(rep.Tables[0].Rows) != 1 {
		t.Fatalf("report shape: %+v", rep.Tables)
	}
	row := rep.Tables[0].Rows[0]
	if len(row) != len(liveReliabilityColumns) {
		t.Fatalf("row has %d cells, want %d", len(row), len(liveReliabilityColumns))
	}
	issued, err := strconv.Atoi(row[3])
	if err != nil || issued == 0 {
		t.Fatalf("queries issued = %q, want > 0", row[3])
	}
	lost, err := strconv.Atoi(row[4])
	if err != nil || lost > issued {
		t.Fatalf("queries lost = %q vs issued %d", row[4], issued)
	}
	if len(streamed) != 1 {
		t.Fatalf("RowSink saw %d rows, want 1", len(streamed))
	}

	// Leak check: the harness must wind down every goroutine it started
	// (nodes, clients, generators, fault driver). Allow time for connection
	// teardown to settle.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if after := runtime.NumGoroutine(); after <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
