package experiments

import "testing"

// TestRunDeterministicAcrossWorkers: the rendered report of a sweep is
// byte-identical at Workers=1, Workers=4 and Workers=GOMAXPROCS — the
// pipeline's determinism guarantee, end to end through Format.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	for _, id := range []string{"fig4", "fig7", "fig9", "kredundancy"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			p := quick()
			p.Workers = 1
			rep, err := Run(id, p)
			if err != nil {
				t.Fatalf("workers=1: %v", err)
			}
			base := Format(rep)
			for _, w := range []int{4, 0} {
				p.Workers = w
				rep, err := Run(id, p)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if got := Format(rep); got != base {
					t.Errorf("workers=%d report differs from serial run", w)
				}
			}
		})
	}
}
