package experiments

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	rep := &Report{
		ID: "demo",
		Tables: []Table{{
			Columns: []string{"a", "b"},
			Rows:    [][]string{{"1", "2"}, {"3", "4"}},
		}},
		Series: []Series{
			{Label: "Strong, Redundancy", X: []float64{1, 2}, Y: []float64{10, 20}, YErr: []float64{0.5, 0.7}},
			{Label: "no errs", X: []float64{5}, Y: []float64{50}},
		},
	}
	dir := t.TempDir()
	paths, err := WriteCSV(rep, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("wrote %d files, want 3: %v", len(paths), paths)
	}

	// Table file round-trips.
	f, err := os.Open(filepath.Join(dir, "demo_table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 || records[0][0] != "a" || records[2][1] != "4" {
		t.Errorf("table csv = %v", records)
	}

	// Series file with error bars.
	sf, err := os.Open(filepath.Join(dir, "demo_strong-redundancy.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	srec, err := csv.NewReader(sf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(srec) != 3 || srec[1][0] != "1" || srec[1][1] != "10" || srec[1][2] != "0.5" {
		t.Errorf("series csv = %v", srec)
	}

	// Series without error bars leaves the column empty.
	nf, err := os.Open(filepath.Join(dir, "demo_no-errs.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer nf.Close()
	nrec, err := csv.NewReader(nf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if nrec[1][2] != "" {
		t.Errorf("yerr should be empty, got %q", nrec[1][2])
	}
}

func TestWriteCSVFromRealExperiment(t *testing.T) {
	rep, err := Run("table2", Params{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths, err := WriteCSV(rep, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths = %v", paths)
	}
}

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Strong, Redundancy":    "strong-redundancy",
		"Avg Outdeg=3.1":        "avg-outdeg-3-1",
		"reach=500":             "reach-500",
		"  weird   spacing  !!": "weird-spacing",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteCSVBadDir(t *testing.T) {
	rep := &Report{ID: "x", Tables: []Table{{Columns: []string{"a"}, Rows: nil}}}
	if _, err := WriteCSV(rep, filepath.Join(string([]byte{0}), "nope")); err == nil {
		t.Error("invalid dir accepted")
	}
}

func TestCSVStreamWritesIncrementally(t *testing.T) {
	dir := t.TempDir()
	s, err := NewCSVStream("reliability", dir)
	if err != nil {
		t.Fatalf("NewCSVStream: %v", err)
	}
	cols := []string{"a", "b"}
	s.Row("failure regimes", cols, []string{"1", "2"})

	// The first row must already be durable on disk, before Close.
	path := filepath.Join(dir, "reliability_failure-regimes.csv")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading mid-stream: %v", err)
	}
	if got := string(data); got != "a,b\n1,2\n" {
		t.Fatalf("mid-stream contents = %q", got)
	}

	s.Row("failure regimes", cols, []string{"3", "4"})
	s.Row("other stage", []string{"x"}, []string{"9"})
	paths, err := s.Close()
	if err != nil {
		t.Fatalf("Close: %v", err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v, want 2 files", paths)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(data); got != "a,b\n1,2\n3,4\n" {
		t.Fatalf("final contents = %q", got)
	}
}

func TestReliabilityStreamsRows(t *testing.T) {
	var mu sync.Mutex
	var streamed [][]string
	rep, err := Run("reliability", Params{
		Scale: 0.02,
		Seed:  3,
		RowSink: func(stage string, columns, row []string) {
			mu.Lock()
			streamed = append(streamed, append([]string(nil), row...))
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("reliability: %v", err)
	}
	want := rep.Tables[0].Rows
	if len(streamed) != len(want) {
		t.Fatalf("streamed %d rows, table has %d", len(streamed), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if streamed[i][j] != want[i][j] {
				t.Fatalf("streamed row %d differs from table: %v vs %v", i, streamed[i], want[i])
			}
		}
	}
}
