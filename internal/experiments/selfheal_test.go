package experiments

import (
	"runtime"
	"testing"
	"time"

	"spnet/internal/control"
	"spnet/internal/network"
	"spnet/internal/p2p"
)

// tinySelfHealParams is a fast configuration: ~2 wall seconds per live arm.
func tinySelfHealParams(seed uint64) SelfHealParams {
	return SelfHealParams{
		Clusters:          2,
		Partners:          2,
		ClientsPerCluster: 4,
		Duration:          120,
		TimeScale:         60,
		QueryRate:         0.15,
		QueryWindow:       50 * time.Millisecond,
		KillAt:            40,
		ScrapeInterval:    10,
		Seed:              seed,
	}
}

// waitUntil polls cond with a generous deadline (CI is -race on one CPU).
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSelfHealEndToEnd is the acceptance drill: kill a loaded super-peer
// whose orphans cannot re-home (survivor at exact capacity), and check the
// controller detects the death within a couple of scrape intervals, promotes
// the survivor, and recovers most of the lost-query gap versus the
// controller-off arm. Leak-checked: every goroutine both arms spawn must be
// gone afterwards.
func TestSelfHealEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live network run")
	}
	before := runtime.NumGoroutine()

	res, err := RunSelfHealResult(tinySelfHealParams(17))
	if err != nil {
		t.Fatalf("RunSelfHealResult: %v", err)
	}
	if res.Off.Issued == 0 || res.On.Issued == 0 {
		t.Fatalf("no queries issued: off=%d on=%d", res.Off.Issued, res.On.Issued)
	}
	if res.DetectVirtual < 0 {
		t.Fatalf("death never detected; events: %v", res.Events)
	}
	// Detection: the kill deregisters gracefully, so the controller should
	// notice within roughly one decision tick — allow three for tick
	// alignment and single-CPU -race scheduler slack.
	if res.DetectVirtual > 3*10 {
		t.Errorf("detection took %.0f virtual s, want within ~3 scrape intervals (30)", res.DetectVirtual)
	}
	if res.ReconfigVirtual < 0 {
		t.Fatalf("promotion never acked; events: %v", res.Events)
	}
	if res.DirectivesAcked == 0 {
		t.Error("no directives acked")
	}
	// The healing claim: the controller-on arm recovers at least half the
	// lost-query gap opened by the controller-off arm.
	if res.Off.LostFrac > 0.05 && res.On.LostFrac > res.Off.LostFrac*0.5+0.02 {
		t.Errorf("controller recovered too little: lost on=%.1f%% off=%.1f%%",
			100*res.On.LostFrac, 100*res.Off.LostFrac)
	}

	// Leak check: both arms must wind down cleanly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if after := runtime.NumGoroutine(); after <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Logf("lost: off=%.1f%% on=%.1f%%, detect=%.0f vs, reconfig=%.0f vs, directives=%d",
		100*res.Off.LostFrac, 100*res.On.LostFrac, res.DetectVirtual, res.ReconfigVirtual, res.DirectivesAcked)
}

// TestSelfHealControllerPartition drills graceful degradation through the
// live harness: partition the controller from the whole fleet, check nodes
// keep serving queries on their last-known configuration with zero config
// churn, then heal and check the control plane reconverges.
func TestSelfHealControllerPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("live network run")
	}
	live := network.NewLive(network.LiveConfig{
		Clusters:  2,
		Partners:  2,
		Seed:      23,
		Telemetry: true,
		Node:      p2p.Options{MaxClients: 4, TTL: 7, DrainTimeout: 100 * time.Millisecond},
	})
	if err := live.Launch(); err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer live.Close()

	var nodes []control.NodeConfig
	for _, sp := range live.SuperPeers() {
		nodes = append(nodes, control.NodeConfig{
			ID: sp.ID, Addr: sp.Addr, Telemetry: sp.Telemetry,
			Cluster: sp.Cluster, Partner: sp.Partner,
		})
	}
	ctrl := control.New(control.Options{
		Nodes:          nodes,
		ScrapeInterval: 50 * time.Millisecond,
		RPCTimeout:     300 * time.Millisecond,
		DialTimeout:    300 * time.Millisecond,
		Backoff:        control.Backoff{Initial: 20 * time.Millisecond, Max: 100 * time.Millisecond},
		Seed:           24,
		ClientCapacity: 4,
		BaseTTL:        7,
		Dial:           live.Faults().Dialer(network.ControllerLabel),
	})
	ctrl.Start()
	defer ctrl.Close()

	allLinked := func() bool {
		for _, s := range ctrl.Status() {
			if !s.LinkUp || s.Dead {
				return false
			}
		}
		return true
	}
	waitUntil(t, "all control links up", allLinked)

	live.PartitionController()
	waitUntil(t, "scrapes failing", func() bool {
		for _, s := range ctrl.Status() {
			if s.ScrapeFails > 0 {
				return true
			}
		}
		return false
	})

	// Nodes keep serving on last-known config while the controller is dark.
	cl, err := p2p.DialClient(live.ClusterAddrs(0)[0], []p2p.SharedFile{{Index: 1, Title: "dark mode manual"}})
	if err != nil {
		t.Fatalf("DialClient during partition: %v", err)
	}
	defer cl.Close()
	waitUntil(t, "query served during partition", func() bool {
		res, err := cl.Search("dark", 100*time.Millisecond)
		return err == nil && len(res) == 1
	})
	for _, sp := range live.SuperPeers() {
		n := live.Node(sp.Cluster, sp.Partner)
		if n == nil {
			continue
		}
		if _, ttl, maxClients := n.ControlState(); ttl != 7 || maxClients != 4 {
			t.Fatalf("%s config thrashed during partition: ttl=%d maxClients=%d", sp.ID, ttl, maxClients)
		}
	}

	// Heal: scrapes recover and any spuriously-dead slots come back.
	live.HealController()
	waitUntil(t, "control plane reconverged", func() bool {
		for _, s := range ctrl.Status() {
			if s.Dead || !s.LinkUp || s.ScrapeFails > 0 {
				return false
			}
		}
		return true
	})
	for _, sp := range live.SuperPeers() {
		n := live.Node(sp.Cluster, sp.Partner)
		if n == nil {
			continue
		}
		if _, ttl, maxClients := n.ControlState(); ttl != 7 || maxClients != 4 {
			t.Fatalf("%s config changed across partition: ttl=%d maxClients=%d", sp.ID, ttl, maxClients)
		}
	}
}

// TestSelfHealSchedulesDeterministic pins that the experiment's client
// arrival plans are bit-deterministic in the seed — the property that makes
// the off arm replayable.
func TestSelfHealSchedulesDeterministic(t *testing.T) {
	p := tinySelfHealParams(5)
	p.setDefaults()
	a := liveArrivals(p.Seed, p.ClientsPerCluster, 1, 2, p.QueryRate, p.Duration)
	b := liveArrivals(p.Seed, p.ClientsPerCluster, 1, 2, p.QueryRate, p.Duration)
	if len(a) == 0 {
		t.Fatal("no arrivals drawn")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs", i)
		}
	}
	if got := rotate([]string{"a", "b", "c"}, 1); got[0] != "b" || got[1] != "c" || got[2] != "a" {
		t.Fatalf("rotate = %v", got)
	}
}
