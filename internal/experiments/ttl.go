package experiments

import (
	"fmt"
	"math"

	"spnet/internal/analysis"
	"spnet/internal/design"
	"spnet/internal/network"
	"spnet/internal/stats"
)

// runFig9 reproduces Figure 9: experimentally determined expected path
// length as a function of average outdegree, one curve per desired reach.
// Expected shape: EPL falls steeply with outdegree, flattens (the Appendix E
// plateau), and tracks log_d(reach) from above.
func runFig9(p Params) (*Report, error) {
	n := p.scaled(10000, 1200)
	reaches := []int{20, 50, 100, 200, 500, 1000}
	outdegs := []float64{2, 3, 5, 8, 10, 15, 20, 30, 40, 60, 80}
	trials := p.trials(3)
	rng := stats.NewRNG(p.Seed + 9)

	// Enumerate the (reach, outdegree) grid and split each point's RNG
	// stream sequentially — Split advances rng, so assignment happens before
	// dispatch to the pool.
	type task struct {
		reach int
		d     float64
		rng   *stats.RNG
	}
	var tasks []task
	for _, reach := range reaches {
		if reach > n {
			continue
		}
		for _, d := range outdegs {
			if d >= float64(n-1) {
				continue
			}
			tasks = append(tasks, task{reach, d, rng.Split(uint64(reach)*100 + uint64(d))})
		}
	}
	epls, err := pmap(p, "outdegree sweep", len(tasks), func(i int) (float64, error) {
		t := tasks[i]
		return design.MeasureEPL(n, t.d, t.reach, trials, t.rng)
	})
	if err != nil {
		return nil, err
	}

	var series []Series
	for _, reach := range reaches {
		if reach > n {
			continue
		}
		s := Series{Label: fmt.Sprintf("reach=%d", reach)}
		for i, t := range tasks {
			if t.reach != reach || math.IsNaN(epls[i]) {
				continue
			}
			s.X = append(s.X, t.d)
			s.Y = append(s.Y, epls[i])
		}
		series = append(series, s)
	}
	return &Report{
		Notes: []string{
			"expected path length vs average outdegree (power-law topologies)",
			"Appendix F approximation: EPL ≈ log_d(reach), a lower bound",
		},
		Series: series,
	}, nil
}

// runRule4 quantifies rule #4: with average outdegree 20 and full reach,
// dropping the TTL from 4 to 3 saves aggregate bandwidth at identical
// results (the paper reports a 19% incoming-bandwidth saving).
func runRule4(p Params) (*Report, error) {
	size := p.scaled(10000, 2000)
	rows := make([][]string, 0, 2)
	ttls := []int{3, 4}
	sums, err := pmap(p, "ttls", len(ttls), func(i int) (*analysis.TrialSummary, error) {
		cfg := network.Config{
			GraphType:    network.PowerLaw,
			GraphSize:    size,
			ClusterSize:  10,
			AvgOutdegree: 20,
			TTL:          ttls[i],
		}
		return analysis.RunTrialsWorkers(cfg, nil, p.trials(3), p.Seed, p.Workers)
	})
	if err != nil {
		return nil, err
	}
	var in3, in4 float64
	for i, sum := range sums {
		if ttls[i] == 3 {
			in3 = sum.Aggregate.InBps.Mean
		} else {
			in4 = sum.Aggregate.InBps.Mean
		}
		rows = append(rows, []string{
			fmt.Sprint(ttls[i]),
			fmtEng(sum.Aggregate.InBps.Mean),
			fmtEng(sum.Aggregate.OutBps.Mean),
			fmtEng(sum.Aggregate.ProcHz.Mean),
			fmt.Sprintf("%.1f", sum.ResultsPerQuery.Mean),
			fmt.Sprintf("%.0f / %d", sum.ReachClusters.Mean, sum.Config.NumClusters()),
		})
	}
	saving := 1 - in3/in4
	return &Report{
		Notes: []string{
			fmt.Sprintf("aggregate incoming-bandwidth saving from TTL 4 to TTL 3: %.0f%% (paper: 19%%)", 100*saving),
		},
		Tables: []Table{{
			Columns: []string{"TTL", "Agg In (bps)", "Agg Out (bps)", "Agg Proc (Hz)", "Results", "Reach (clusters)"},
			Rows:    rows,
		}},
	}, nil
}
