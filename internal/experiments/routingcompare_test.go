package experiments

import "testing"

// TestRoutingCompareSmoke runs the flood-vs-routingindex slice of the
// three-way comparison on a shortened workload: the analytical model, the
// simulator and a live TCP star must all show routing indices cutting
// forwarded-query bandwidth by at least 40% while keeping at least 90%
// recall — the headline claim of the routing layer.
func TestRoutingCompareSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a live network for several wall seconds")
	}
	res, err := RunRoutingCompareResult(RoutingCompareParams{
		Strategies:  []string{"flood", "routingindex"},
		SimDuration: 800,
		LiveQueries: 30,
		Seed:        42,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	flood, ri := res.Row("flood"), res.Row("routingindex")
	if flood == nil || ri == nil {
		t.Fatalf("missing rows: %+v", res.Rows)
	}
	for name, cell := range map[string]RoutingCompareCell{
		"model": flood.Model, "sim": flood.Sim, "live": flood.Live,
	} {
		if cell.ForwardsPerQuery <= 0 {
			t.Fatalf("flood %s measured no forwards", name)
		}
		if cell.Recall < 0.99 {
			t.Errorf("flood %s recall %.2f, want ~1 (full reach at TTL 2)", name, cell.Recall)
		}
	}
	check := func(layer string, ri, fl RoutingCompareCell) {
		saved := bandwidthSaved(ri.ForwardsPerQuery, fl.ForwardsPerQuery)
		if saved < 0.40 {
			t.Errorf("%s: routingindex saved %.0f%% bandwidth, want >= 40%%", layer, 100*saved)
		}
		if ri.Recall < 0.90 {
			t.Errorf("%s: routingindex recall %.2f, want >= 0.90", layer, ri.Recall)
		}
		t.Logf("%s: routingindex %.2f fwd/query vs flood %.2f (%.0f%% saved), recall %.2f",
			layer, ri.ForwardsPerQuery, fl.ForwardsPerQuery, 100*saved, ri.Recall)
	}
	check("model", ri.Model, flood.Model)
	check("sim", ri.Sim, flood.Sim)
	check("live", ri.Live, flood.Live)
}
