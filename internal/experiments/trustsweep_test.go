package experiments

import (
	"testing"
	"time"
)

// TestTrustSweepGapRecovery is the acceptance criterion measured end to end:
// at 30% malicious partners, reputation-weighted selection must win back at
// least half of the lost-query gap versus the trust-oblivious baseline in
// the model, the simulator, and the live overlay.
func TestTrustSweepGapRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a live overlay per cell")
	}
	res, err := RunTrustSweepResult(TrustSweepParams{
		Fractions: []float64{0.3},
		Seed:      41,
		Logf:      t.Logf,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	off, on := res.Row(0.3, false), res.Row(0.3, true)
	if off == nil || on == nil {
		t.Fatalf("missing sweep rows: %+v", res.Rows)
	}

	// The attack must bite before recovery means anything.
	if off.ModelLost < 0.15 || off.SimLost < 0.15 || off.LiveLost < 0.15 {
		t.Fatalf("trust-off attack too weak: model %.3f, sim %.3f, live %.3f",
			off.ModelLost, off.SimLost, off.LiveLost)
	}
	for _, layer := range []struct {
		name    string
		off, on float64
	}{
		{"model", off.ModelLost, on.ModelLost},
		{"sim", off.SimLost, on.SimLost},
		{"live", off.LiveLost, on.LiveLost},
	} {
		if layer.on > 0.5*layer.off {
			t.Errorf("%s: trust recovered too little: lost %.3f (on) vs %.3f (off)",
				layer.name, layer.on, layer.off)
		}
	}
	if on.SimGenuine <= off.SimGenuine {
		t.Errorf("sim genuine recall did not improve: %.2f (on) vs %.2f (off)",
			on.SimGenuine, off.SimGenuine)
	}
	if on.LiveGenuine <= off.LiveGenuine {
		t.Errorf("live genuine recall did not improve: %.2f (on) vs %.2f (off)",
			on.LiveGenuine, off.LiveGenuine)
	}

	// Defense mechanics visible in each layer's accounting. Trust-on keeps
	// every forged result out — mostly by never routing through distrusted
	// relays at all, the audit catching whatever still arrives.
	if off.SimForgedAccepted == 0 {
		t.Errorf("trust-off sim accepted no forged results: attack not exercised")
	}
	if on.SimForgedAccepted != 0 {
		t.Errorf("trust-on sim accepted %d forged results", on.SimForgedAccepted)
	}
	if off.LiveForgedDet != 0 {
		t.Errorf("trust-off live layer claims forged detection: %d", off.LiveForgedDet)
	}
	if on.LiveForgedDet == 0 {
		t.Error("trust-on live layer detected no forged hits")
	}
	if on.LiveRehomes == 0 {
		t.Error("no live client re-homed away from its freeloading partner")
	}
	if off.LiveRehomes != 0 {
		t.Errorf("trust-oblivious clients re-homed %d times over healthy TCP links", off.LiveRehomes)
	}
}

// TestTrustSweepHonestBaseline: with no malicious partners, no layer loses
// queries and the trust arm changes nothing measurable.
func TestTrustSweepHonestBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a live overlay per cell")
	}
	res, err := RunTrustSweepResult(TrustSweepParams{
		Fractions:   []float64{0},
		LiveLeaves:  4,
		Searches:    3,
		Window:      150 * time.Millisecond,
		SimDuration: 600,
		Seed:        43,
		Logf:        t.Logf,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.ModelLost != 0 {
			t.Errorf("trust=%v: model lost %.3f with no adversaries", r.Trust, r.ModelLost)
		}
		if r.SimLost != 0 {
			t.Errorf("trust=%v: sim lost %.3f with no adversaries", r.Trust, r.SimLost)
		}
		if r.LiveLost != 0 {
			t.Errorf("trust=%v: live lost %.3f with no adversaries", r.Trust, r.LiveLost)
		}
		if r.SimForgedDet != 0 || r.LiveForgedDet != 0 {
			t.Errorf("trust=%v: forged detections in an honest network: sim %d live %d",
				r.Trust, r.SimForgedDet, r.LiveForgedDet)
		}
	}
}
