package experiments

import (
	"fmt"
	"math"

	"spnet/internal/analysis"
	"spnet/internal/network"
	"spnet/internal/sim"
	"spnet/internal/stats"
)

// runSimCheck cross-validates the two engines: the mean-value analysis
// (Section 4's Steps 2–3) against the discrete-event, message-level
// simulator executing the Section 3 protocol concretely. Agreement within a
// few percent on every resource is the expected outcome.
func runSimCheck(p Params) (*Report, error) {
	cfg := network.DefaultConfig()
	cfg.GraphSize = p.scaled(10000, 600)
	inst, err := network.Generate(cfg, nil, stats.NewRNG(p.Seed))
	if err != nil {
		return nil, err
	}
	expected := analysis.Evaluate(inst)

	duration := 2000.0
	if p.scale() < 0.2 {
		duration = 3000 // smaller networks need longer runs to converge
	}
	measured, err := sim.Run(inst, sim.Options{
		Duration: duration,
		Seed:     p.Seed + 1,
		Churn:    true,
	})
	if err != nil {
		return nil, err
	}

	agg := expected.AggregateLoad()
	sp := expected.MeanSuperPeerLoad()
	cl := expected.MeanClientLoad()
	rows := [][]string{
		cmpRow("aggregate incoming bw (bps)", agg.InBps, measured.Aggregate.InBps),
		cmpRow("aggregate outgoing bw (bps)", agg.OutBps, measured.Aggregate.OutBps),
		cmpRow("aggregate processing (Hz)", agg.ProcHz, measured.Aggregate.ProcHz),
		cmpRow("mean super-peer in bw (bps)", sp.InBps, measured.MeanSuperPeer.InBps),
		cmpRow("mean super-peer out bw (bps)", sp.OutBps, measured.MeanSuperPeer.OutBps),
		cmpRow("mean super-peer proc (Hz)", sp.ProcHz, measured.MeanSuperPeer.ProcHz),
		cmpRow("mean client in bw (bps)", cl.InBps, measured.MeanClient.InBps),
		cmpRow("mean client out bw (bps)", cl.OutBps, measured.MeanClient.OutBps),
		cmpRow("results per query", expected.ResultsPerQuery, measured.ResultsPerQuery),
		cmpRow("expected path length", expected.EPL, measured.EPL),
	}
	return &Report{
		Notes: []string{
			fmt.Sprintf("%d peers, %d clusters; %v s of virtual time, %d queries, %d events",
				inst.NumPeers, len(inst.Clusters), measured.Duration,
				measured.QueriesIssued, measured.EventsExecuted),
		},
		Tables: []Table{{
			Columns: []string{"Metric", "Analysis (expected)", "Simulator (measured)", "Diff"},
			Rows:    rows,
		}},
	}, nil
}

func cmpRow(name string, want, got float64) []string {
	diff := "-"
	if want != 0 {
		diff = fmt.Sprintf("%+.1f%%", 100*(got-want)/math.Abs(want))
	}
	return []string{name, fmtEng(want), fmtEng(got), diff}
}
