package experiments

import (
	"fmt"
	"testing"

	"spnet/internal/metrics"
)

// TestLoadValidationE2E boots the full three-way validation on a small
// deterministic configuration: live TCP super-peers with scraped telemetry
// against the analytical model and the discrete-event simulator. The live
// measured query+response bandwidth must agree with the analytical
// prediction within a tolerance dominated by Poisson sampling noise.
func TestLoadValidationE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a live network for several wall seconds")
	}
	res, err := RunLoadValidationResult(LoadValidationParams{
		Duration:    600,
		TimeScale:   150,
		SimDuration: 3000,
		Seed:        42,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	for v, row := range res.Rows {
		if want := fmt.Sprintf("sp-%d-0", v); row.ID != want {
			t.Errorf("row %d id %q, want %q", v, row.ID, want)
		}
		for _, d := range []metrics.Dir{metrics.DirIn, metrics.DirOut} {
			model := queryRespBps(row.Model, d)
			if model <= 0 {
				t.Fatalf("%s dir %v: analytical prediction is %v", row.ID, d, model)
			}
			if live := queryRespBps(row.Live, d); live <= 0 {
				t.Errorf("%s dir %v: no live bytes measured", row.ID, d)
			}
			if e := relErr(queryRespBps(row.Sim, d), model); e > 0.10 {
				t.Errorf("%s dir %v: simulator off by %.1f%% (> 10%%)", row.ID, d, 100*e)
			}
		}
	}
	if e := res.MaxRelErrLiveVsModel(); e > 0.30 {
		t.Errorf("live vs model worst query+response error %.1f%% exceeds 30%%", 100*e)
	} else {
		t.Logf("live vs model worst query+response error: %.1f%%", 100*e)
	}
	if res.Report == nil || len(res.Report.Tables) != 1 {
		t.Fatalf("report missing comparison table")
	}
	if got, want := len(res.Report.Tables[0].Rows), 3*6; got != want {
		t.Errorf("table has %d rows, want %d", got, want)
	}
}
