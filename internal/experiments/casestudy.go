package experiments

import (
	"fmt"
	"sort"

	"spnet/internal/analysis"
	"spnet/internal/design"
	"spnet/internal/network"
	"spnet/internal/stats"
)

// caseStudyConfigs returns the three Section 5.2 topologies at the requested
// scale: today's Gnutella (pure network, outdegree 3.1, TTL 7), the
// procedure's new design (cluster size 10, 18 super-peer neighbors, TTL 2),
// and the new design with 2-redundancy.
func caseStudyConfigs(p Params) (size int, configs []struct {
	label string
	cfg   network.Config
}) {
	size = p.scaled(20000, 2000)
	mk := func(label string, cfg network.Config) struct {
		label string
		cfg   network.Config
	} {
		return struct {
			label string
			cfg   network.Config
		}{label, cfg}
	}
	configs = []struct {
		label string
		cfg   network.Config
	}{
		mk("Today", network.Config{
			GraphType: network.PowerLaw, GraphSize: size, ClusterSize: 1,
			AvgOutdegree: 3.1, TTL: 7,
		}),
		mk("New", network.Config{
			GraphType: network.PowerLaw, GraphSize: size, ClusterSize: 10,
			AvgOutdegree: 18, TTL: 2,
		}),
		mk("New w/ Red.", network.Config{
			GraphType: network.PowerLaw, GraphSize: size, ClusterSize: 10,
			Redundancy: true, AvgOutdegree: 18, TTL: 2,
		}),
	}
	return size, configs
}

// runFig11 reproduces Figure 11: aggregate loads, results and EPL for
// today's Gnutella topology versus the design procedure's output. Expected
// shape: the new design improves every aggregate load by a large factor at
// slightly better result quality and much shorter EPL; redundancy barely
// changes the aggregates.
func runFig11(p Params) (*Report, error) {
	size, configs := caseStudyConfigs(p)
	trials := p.trials(3)
	rows := make([][]string, 0, len(configs))
	sums, err := pmap(p, "configurations", len(configs), func(i int) (*analysis.TrialSummary, error) {
		return analysis.RunTrialsWorkers(configs[i].cfg, nil, trials, p.Seed+uint64(i), p.Workers)
	})
	if err != nil {
		return nil, err
	}
	var todayIn, newIn float64
	for i, c := range configs {
		sum := sums[i]
		if i == 0 {
			todayIn = sum.Aggregate.InBps.Mean
		}
		if i == 1 {
			newIn = sum.Aggregate.InBps.Mean
		}
		rows = append(rows, []string{
			c.label,
			fmtEng(sum.Aggregate.InBps.Mean),
			fmtEng(sum.Aggregate.OutBps.Mean),
			fmtEng(sum.Aggregate.ProcHz.Mean),
			fmt.Sprintf("%.0f", sum.ResultsPerQuery.Mean),
			fmt.Sprintf("%.1f", sum.EPL.Mean),
			fmt.Sprintf("%.0f", sum.ReachPeers.Mean),
		})
	}
	improvement := 1 - newIn/todayIn
	rep := &Report{
		Notes: []string{
			fmt.Sprintf("network of %d peers; paper's design point: cluster 10, 18 neighbors, TTL 2", size),
			fmt.Sprintf("aggregate incoming-bandwidth improvement of the new design: %.0f%% (paper: >79%%)", 100*improvement),
		},
		Tables: []Table{{
			Columns: []string{"Topology", "Incoming BW (bps)", "Outgoing BW (bps)", "Processing (Hz)", "Results", "EPL", "Reach (peers)"},
			Rows:    rows,
		}},
	}

	// Also run the global design procedure itself on the same goals and
	// report the configuration it selects.
	plan, err := design.Run(
		design.Goals{NetworkSize: size, DesiredReach: p.scaled(3000, 300)},
		design.Constraints{MaxDownBps: 100_000, MaxUpBps: 100_000,
			MaxProcHz: 10_000_000, MaxConns: 100},
		design.Options{Trials: 1, Seed: p.Seed, Workers: p.Workers},
	)
	if err != nil {
		rep.Notes = append(rep.Notes, "design procedure: "+err.Error())
		return rep, nil
	}
	rep.Tables = append(rep.Tables, Table{
		Title:   "Global design procedure output (Figure 10) under the Section 5.2 constraints",
		Columns: []string{"Cluster Size", "Redundancy", "Avg Outdegree", "TTL", "SP In (bps)", "SP Out (bps)", "SP Proc (Hz)", "Reach (peers)"},
		Rows: [][]string{{
			fmt.Sprint(plan.Config.ClusterSize),
			fmt.Sprint(plan.Config.Redundancy),
			fmt.Sprintf("%.0f", plan.Config.AvgOutdegree),
			fmt.Sprint(plan.Config.TTL),
			fmtEng(plan.Predicted.SuperPeer.InBps.Mean),
			fmtEng(plan.Predicted.SuperPeer.OutBps.Mean),
			fmtEng(plan.Predicted.SuperPeer.ProcHz.Mean),
			fmt.Sprintf("%.0f", plan.Predicted.ReachPeers.Mean),
		}},
	})
	return rep, nil
}

// runFig12 reproduces Figure 12: the outgoing-bandwidth load of every node,
// ranked in decreasing order, for the three case-study topologies (one
// representative instance each). Expected shape: the bottom ~90% of the new
// topologies (the clients) sit one to two orders of magnitude below today's
// loads, and redundancy cuts the top decile further.
func runFig12(p Params) (*Report, error) {
	_, configs := caseStudyConfigs(p)
	percentiles := []float64{0.1, 1, 5, 10, 25, 50, 75, 80, 90, 95, 99, 100}
	series, err := pmap(p, "rank curves", len(configs), func(i int) (Series, error) {
		c := configs[i]
		inst, err := network.Generate(c.cfg, nil, stats.NewRNG(p.Seed+uint64(i)))
		if err != nil {
			return Series{}, err
		}
		res := analysis.Evaluate(inst)
		loads := res.AllNodeLoads()
		outs := make([]float64, len(loads))
		for j, nl := range loads {
			outs[j] = nl.Load.OutBps
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(outs)))
		s := Series{Label: c.label + " (rank percentile -> outgoing bps)"}
		for _, pct := range percentiles {
			idx := int(pct / 100 * float64(len(outs)-1))
			s.X = append(s.X, pct)
			s.Y = append(s.Y, outs[idx])
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Notes: []string{
			"outgoing bandwidth at rank percentiles (0% = heaviest node), one representative instance per topology",
		},
		Series: series,
	}, nil
}
