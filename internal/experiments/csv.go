package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// WriteCSV writes a report's tables and series as CSV files under dir
// (created if needed), one file per artifact, and returns the paths written.
// Series files have columns x,y,yerr and one file per series; table files
// mirror their printed columns. File names are derived from the report id
// and the table/series labels.
func WriteCSV(r *Report, dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: creating %s: %w", dir, err)
	}
	var paths []string
	write := func(name string, header []string, rows [][]string) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("experiments: creating %s: %w", path, err)
		}
		w := csv.NewWriter(f)
		if err := w.Write(header); err != nil {
			f.Close()
			return err
		}
		if err := w.WriteAll(rows); err != nil {
			f.Close()
			return err
		}
		w.Flush()
		if err := w.Error(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		paths = append(paths, path)
		return nil
	}

	for i, tbl := range r.Tables {
		name := fmt.Sprintf("%s_table%d.csv", r.ID, i+1)
		if err := write(name, tbl.Columns, tbl.Rows); err != nil {
			return paths, err
		}
	}
	for _, s := range r.Series {
		rows := make([][]string, len(s.X))
		for i := range s.X {
			yerr := ""
			if s.YErr != nil {
				yerr = strconv.FormatFloat(s.YErr[i], 'g', -1, 64)
			}
			rows[i] = []string{
				strconv.FormatFloat(s.X[i], 'g', -1, 64),
				strconv.FormatFloat(s.Y[i], 'g', -1, 64),
				yerr,
			}
		}
		name := fmt.Sprintf("%s_%s.csv", r.ID, slug(s.Label))
		if err := write(name, []string{"x", "y", "yerr"}, rows); err != nil {
			return paths, err
		}
	}
	return paths, nil
}

// CSVStream writes sweep rows to per-stage CSV files incrementally, flushing
// to disk after every row, so an interrupted run (crash, ^C, power loss)
// keeps every sweep point that had completed. Plug its Row method into
// Params.RowSink (or LiveParams.RowSink); the final WriteCSV of the full
// report remains authoritative and will simply overwrite matching files with
// identical content.
//
// Each distinct stage gets its own file, <id>_<slug(stage)>.csv, with the
// stage's column header as the first record. Row is safe for concurrent use.
type CSVStream struct {
	id  string
	dir string

	mu    sync.Mutex
	files map[string]*os.File
	ws    map[string]*csv.Writer
	paths []string
	err   error // first write error, surfaced by Close
}

// NewCSVStream creates dir if needed and returns a stream for the given
// report id.
func NewCSVStream(id, dir string) (*CSVStream, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: creating %s: %w", dir, err)
	}
	return &CSVStream{
		id:    id,
		dir:   dir,
		files: make(map[string]*os.File),
		ws:    make(map[string]*csv.Writer),
	}, nil
}

// Row appends one completed sweep row to the stage's file, creating it (with
// the header) on first use, and flushes so the row is durable immediately.
// Errors are latched and reported by Close — a failing disk must not abort
// the experiment producing the rows.
func (s *CSVStream) Row(stage string, columns, row []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w, ok := s.ws[stage]
	if !ok {
		path := filepath.Join(s.dir, fmt.Sprintf("%s_%s.csv", s.id, slug(stage)))
		f, err := os.Create(path)
		if err != nil {
			s.setErr(err)
			return
		}
		w = csv.NewWriter(f)
		s.files[stage] = f
		s.ws[stage] = w
		s.paths = append(s.paths, path)
		if err := w.Write(columns); err != nil {
			s.setErr(err)
			return
		}
	}
	if err := w.Write(row); err != nil {
		s.setErr(err)
		return
	}
	w.Flush()
	s.setErr(w.Error())
}

func (s *CSVStream) setErr(err error) {
	if err != nil && s.err == nil {
		s.err = err
	}
}

// Close flushes and closes every stage file, returning the paths written and
// the first error encountered across the stream's lifetime.
func (s *CSVStream) Close() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for stage, w := range s.ws {
		w.Flush()
		s.setErr(w.Error())
		s.setErr(s.files[stage].Close())
	}
	s.ws = make(map[string]*csv.Writer)
	s.files = make(map[string]*os.File)
	return s.paths, s.err
}

// slug converts a free-form label to a safe file-name fragment.
func slug(label string) string {
	var b strings.Builder
	lastDash := false
	for _, r := range strings.ToLower(label) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		default:
			if !lastDash && b.Len() > 0 {
				b.WriteByte('-')
				lastDash = true
			}
		}
	}
	return strings.TrimRight(b.String(), "-")
}
