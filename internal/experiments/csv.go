package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// WriteCSV writes a report's tables and series as CSV files under dir
// (created if needed), one file per artifact, and returns the paths written.
// Series files have columns x,y,yerr and one file per series; table files
// mirror their printed columns. File names are derived from the report id
// and the table/series labels.
func WriteCSV(r *Report, dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: creating %s: %w", dir, err)
	}
	var paths []string
	write := func(name string, header []string, rows [][]string) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("experiments: creating %s: %w", path, err)
		}
		w := csv.NewWriter(f)
		if err := w.Write(header); err != nil {
			f.Close()
			return err
		}
		if err := w.WriteAll(rows); err != nil {
			f.Close()
			return err
		}
		w.Flush()
		if err := w.Error(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		paths = append(paths, path)
		return nil
	}

	for i, tbl := range r.Tables {
		name := fmt.Sprintf("%s_table%d.csv", r.ID, i+1)
		if err := write(name, tbl.Columns, tbl.Rows); err != nil {
			return paths, err
		}
	}
	for _, s := range r.Series {
		rows := make([][]string, len(s.X))
		for i := range s.X {
			yerr := ""
			if s.YErr != nil {
				yerr = strconv.FormatFloat(s.YErr[i], 'g', -1, 64)
			}
			rows[i] = []string{
				strconv.FormatFloat(s.X[i], 'g', -1, 64),
				strconv.FormatFloat(s.Y[i], 'g', -1, 64),
				yerr,
			}
		}
		name := fmt.Sprintf("%s_%s.csv", r.ID, slug(s.Label))
		if err := write(name, []string{"x", "y", "yerr"}, rows); err != nil {
			return paths, err
		}
	}
	return paths, nil
}

// slug converts a free-form label to a safe file-name fragment.
func slug(label string) string {
	var b strings.Builder
	lastDash := false
	for _, r := range strings.ToLower(label) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		default:
			if !lastDash && b.Len() > 0 {
				b.WriteByte('-')
				lastDash = true
			}
		}
	}
	return strings.TrimRight(b.String(), "-")
}
