package experiments

import (
	"spnet/internal/analysis"
	"spnet/internal/network"
	"spnet/internal/workload"
)

// sweepSystem describes one curve of a cluster-size sweep.
type sweepSystem struct {
	label      string
	graphType  network.GraphType
	redundancy bool
	outdegree  float64
	ttl        int
}

// paperSweepSystems returns the four systems of Figures 4–5: the strongly
// connected best case with TTL 1, and the Gnutella-like power-law topology
// with average outdegree 3.1 and TTL 7, each with and without 2-redundancy.
func paperSweepSystems() []sweepSystem {
	return []sweepSystem{
		{"Strong", network.Strong, false, 0, 1},
		{"Strong, Redundancy", network.Strong, true, 0, 1},
		{"Power, Avg Outdeg=3.1", network.PowerLaw, false, 3.1, 7},
		{"Power, Avg Outdeg=3.1, Redundancy", network.PowerLaw, true, 3.1, 7},
	}
}

// metricFn extracts one plotted value from a trial summary.
type metricFn func(*analysis.TrialSummary) (value, ci float64)

// clusterSweep evaluates the systems over the cluster-size ladder and
// extracts the metric. Sweep points are independent (each keys its own seed),
// so they dispatch to the worker pool and reduce in task order.
func clusterSweep(p Params, prof *workload.Profile, systems []sweepSystem,
	sizes []int, graphSize, trials int, metric metricFn) ([]Series, error) {

	type task struct {
		si, cs int
	}
	var tasks []task
	for si := range systems {
		for _, cs := range sizes {
			if systems[si].redundancy && cs < 2 {
				continue
			}
			tasks = append(tasks, task{si, cs})
		}
	}
	type point struct {
		v, ci float64
	}
	pts, err := pmap(p, "cluster sizes", len(tasks), func(i int) (point, error) {
		t := tasks[i]
		sys := systems[t.si]
		cfg := network.Config{
			GraphType:    sys.graphType,
			GraphSize:    graphSize,
			ClusterSize:  t.cs,
			Redundancy:   sys.redundancy,
			AvgOutdegree: sys.outdegree,
			TTL:          sys.ttl,
		}
		if cfg.GraphType == network.PowerLaw && float64(cfg.NumClusters()-1) < cfg.AvgOutdegree {
			// Too few clusters to sustain the suggested outdegree: the
			// overlay degenerates to (nearly) a clique.
			cfg.GraphType = network.Strong
		}
		sum, err := analysis.RunTrialsWorkers(cfg, prof, trials,
			p.Seed+uint64(t.si)*1000+uint64(t.cs), p.Workers)
		if err != nil {
			return point{}, err
		}
		v, ci := metric(sum)
		return point{v, ci}, nil
	})
	if err != nil {
		return nil, err
	}

	out := make([]Series, 0, len(systems))
	for si := range systems {
		s := Series{Label: systems[si].label}
		for i, t := range tasks {
			if t.si != si {
				continue
			}
			s.X = append(s.X, float64(t.cs))
			s.Y = append(s.Y, pts[i].v)
			s.YErr = append(s.YErr, pts[i].ci)
		}
		out = append(out, s)
	}
	return out, nil
}

// runFig4 reproduces Figure 4: aggregate bandwidth (in + out) as cluster
// size varies, for the four paper systems. Expected shape: steep decrease,
// then a knee, then gradual decline; redundancy barely moves the curves.
func runFig4(p Params) (*Report, error) {
	return clusterBandwidthReport(p, workload.DefaultProfile(),
		"aggregate bandwidth (in+out, bps) vs cluster size",
		func(s *analysis.TrialSummary) (float64, float64) {
			return s.Aggregate.InBps.Mean + s.Aggregate.OutBps.Mean,
				s.Aggregate.InBps.CI95 + s.Aggregate.OutBps.CI95
		})
}

// runFig5 reproduces Figure 5: individual super-peer incoming bandwidth as
// cluster size varies. Expected shape: growth with cluster size, an f(1-f)
// hump peaking near half the network, and a drop at cluster = network size.
func runFig5(p Params) (*Report, error) {
	return clusterBandwidthReport(p, workload.DefaultProfile(),
		"individual super-peer incoming bandwidth (bps) vs cluster size",
		func(s *analysis.TrialSummary) (float64, float64) {
			return s.SuperPeer.InBps.Mean, s.SuperPeer.InBps.CI95
		})
}

func clusterBandwidthReport(p Params, prof *workload.Profile, note string,
	metric metricFn) (*Report, error) {

	graphSize := p.scaled(10000, 200)
	series, err := clusterSweep(p, prof, paperSweepSystems(),
		clusterSizeLadder(graphSize), graphSize, p.trials(3), metric)
	if err != nil {
		return nil, err
	}
	return &Report{
		Notes:  []string{note, "graph size " + fmtEng(float64(graphSize)) + " peers"},
		Series: series,
	}, nil
}

// runFig6 reproduces Figure 6: individual super-peer processing load over
// the small-cluster range, where the strongly connected topology's
// connection overhead produces the characteristic uptick at tiny clusters.
func runFig6(p Params) (*Report, error) {
	graphSize := p.scaled(10000, 300)
	sizes := []int{}
	for _, cs := range []int{1, 2, 3, 5, 8, 10, 15, 20, 30, 50, 75, 100, 150, 200, 250, 300} {
		if cs <= graphSize {
			sizes = append(sizes, cs)
		}
	}
	series, err := clusterSweep(p, workload.DefaultProfile(), paperSweepSystems(),
		sizes, graphSize, p.trials(3),
		func(s *analysis.TrialSummary) (float64, float64) {
			return s.SuperPeer.ProcHz.Mean, s.SuperPeer.ProcHz.CI95
		})
	if err != nil {
		return nil, err
	}
	return &Report{
		Notes: []string{
			"individual super-peer processing load (Hz) vs cluster size",
			"the strong topology rises at very small clusters: packet-multiplex overhead of clusters-1 open connections",
		},
		Series: series,
	}, nil
}

// runFigA13 is Figure A-13: the Figure 4 sweep at a tenfold lower query
// rate, where joins dominate and large clusters save much less.
func runFigA13(p Params) (*Report, error) {
	prof := workload.DefaultProfile()
	prof.Rates = workload.LowQueryRates()
	rep, err := clusterBandwidthReport(p, prof,
		"aggregate bandwidth (bps) vs cluster size at query rate 9.26e-4 (query:join ≈ 1)",
		func(s *analysis.TrialSummary) (float64, float64) {
			return s.Aggregate.InBps.Mean + s.Aggregate.OutBps.Mean,
				s.Aggregate.InBps.CI95 + s.Aggregate.OutBps.CI95
		})
	return rep, err
}

// runFigA14 is Figure A-14: individual incoming bandwidth at the lower query
// rate; join traffic makes load peak at cluster = network size instead.
func runFigA14(p Params) (*Report, error) {
	prof := workload.DefaultProfile()
	prof.Rates = workload.LowQueryRates()
	return clusterBandwidthReport(p, prof,
		"individual super-peer incoming bandwidth (bps) vs cluster size at query rate 9.26e-4",
		func(s *analysis.TrialSummary) (float64, float64) {
			return s.SuperPeer.InBps.Mean, s.SuperPeer.InBps.CI95
		})
}
