package experiments

import (
	"fmt"

	"spnet/internal/network"
	"spnet/internal/sim"
	"spnet/internal/stats"
)

// runReliability is an extension beyond the paper's evaluation: Section 3.2
// argues qualitatively that a k-redundant super-peer has "much greater
// availability and reliability" because the probability that every partner
// fails before any is replaced is much lower than a single super-peer
// failing. This experiment injects super-peer failures into the
// message-level simulator and measures what the paper argues: the fraction
// of client queries lost while a cluster has no live partner, for k = 1, 2
// and 3, across two failure regimes.
func runReliability(p Params) (*Report, error) {
	cfg := network.Config{
		GraphType:    network.PowerLaw,
		GraphSize:    p.scaled(2000, 300),
		ClusterSize:  10,
		AvgOutdegree: 3.1,
		TTL:          5,
	}
	regimes := []struct {
		label    string
		mtbf     float64
		recovery float64
	}{
		{"harsh (MTBF 1000 s, recovery 300 s)", 1000, 300},
		{"benign (MTBF 2000 s, recovery 60 s)", 2000, 60},
	}
	duration := 3000.0
	if p.scale() < 0.2 {
		duration = 1200 // keep tiny-scale (benchmark) runs fast
	}

	// The regime × k grid: every cell generates and simulates independently
	// (seeds depend only on k), so all six run concurrently.
	type cell struct {
		regime int
		k      int
	}
	var cells []cell
	for ri := range regimes {
		for k := 1; k <= 3; k++ {
			cells = append(cells, cell{ri, k})
		}
	}
	columns := []string{"Failure regime", "k", "Failures", "Client queries lost", "Lost fraction", "Results/query"}
	rows, err := pmapRows(p, "failure regimes", columns, len(cells), func(i int) ([]string, error) {
		reg := regimes[cells[i].regime]
		k := cells[i].k
		c := cfg
		c.KRedundancy = k
		inst, err := network.Generate(c, nil, stats.NewRNG(p.Seed+uint64(k)))
		if err != nil {
			return nil, err
		}
		m, err := sim.Run(inst, sim.Options{
			Duration: duration,
			Seed:     p.Seed + 100 + uint64(k),
			Failures: &sim.FailureOptions{MTBF: reg.mtbf, RecoveryDelay: reg.recovery},
		})
		if err != nil {
			return nil, err
		}
		total := m.QueriesIssued + m.ClientQueriesLost
		frac := 0.0
		if total > 0 {
			frac = float64(m.ClientQueriesLost) / float64(total)
		}
		return []string{
			reg.label,
			fmt.Sprint(k),
			fmt.Sprint(m.FailuresInjected),
			fmt.Sprint(m.ClientQueriesLost),
			fmt.Sprintf("%.2f%%", 100*frac),
			fmt.Sprintf("%.1f", m.ResultsPerQuery),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Report{
		Notes: []string{
			"extension beyond the paper: the Section 3.2 reliability argument, measured by failure injection",
			"expected shape: lost-query fraction drops by an order of magnitude per added partner when recovery << MTBF",
			fmt.Sprintf("%d peers, cluster 10, %v s of virtual time per cell", cfg.GraphSize, duration),
		},
		Tables: []Table{{
			Columns: columns,
			Rows:    rows,
		}},
	}, nil
}
