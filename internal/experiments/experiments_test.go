package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// quick returns fast parameters for smoke tests.
func quick() Params { return Params{Scale: 0.04, Trials: 1, Seed: 1} }

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{"table1", "table2", "table3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig11", "fig12", "rule4",
		"figA13", "figA14", "figA15", "tableD2", "simcheck", "kredundancy", "reliability", "breakdown",
		"loadvalidation", "routingcompare", "trustsweep", "selfheal", "transferbench"}
	if len(ids) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(ids), len(want))
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("ids[%d] = %s, want %s", i, ids[i], id)
		}
	}
	titles := Titles()
	for _, id := range ids {
		if titles[id] == "" {
			t.Errorf("%s has no title", id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("bogus", quick()); err == nil {
		t.Error("unknown id accepted")
	}
}

// TestEveryExperimentRuns executes every registered experiment at tiny scale
// and sanity-checks its report structure.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all experiments")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			rep, err := Run(id, quick())
			if err != nil {
				t.Fatalf("Run(%s): %v", id, err)
			}
			if rep.ID != id {
				t.Errorf("report ID = %s", rep.ID)
			}
			if len(rep.Tables) == 0 && len(rep.Series) == 0 {
				t.Error("report is empty")
			}
			text := Format(rep)
			if !strings.Contains(text, id) {
				t.Error("formatted report does not mention the experiment id")
			}
			for _, tbl := range rep.Tables {
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Columns) {
						t.Errorf("row width %d != %d columns", len(row), len(tbl.Columns))
					}
				}
			}
			for _, s := range rep.Series {
				if len(s.X) != len(s.Y) {
					t.Errorf("series %s: %d x vs %d y", s.Label, len(s.X), len(s.Y))
				}
				if s.YErr != nil && len(s.YErr) != len(s.Y) {
					t.Errorf("series %s: mismatched error bars", s.Label)
				}
			}
		})
	}
}

// TestFig4ShapeHolds asserts the headline rule-1 shape at reduced scale:
// aggregate load decreases as cluster size increases.
func TestFig4ShapeHolds(t *testing.T) {
	rep, err := Run("fig4", Params{Scale: 0.1, Trials: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep.Series {
		if len(s.Y) < 3 {
			t.Fatalf("series %s too short", s.Label)
		}
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		if last >= first {
			t.Errorf("%s: aggregate load rose from %v to %v across cluster sizes",
				s.Label, first, last)
		}
	}
}

// TestFig5IncomingDipAtFullCluster asserts the Figure 5 exception: incoming
// bandwidth at cluster = network size is below the half-size peak.
func TestFig5IncomingDipAtFullCluster(t *testing.T) {
	rep, err := Run("fig5", Params{Scale: 0.1, Trials: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Series[0] // Strong
	n := len(s.Y)
	if n < 3 {
		t.Fatal("series too short")
	}
	// The last point is cluster = graph size; the one before is cluster =
	// half. The dip: last < second-to-last.
	if s.Y[n-1] >= s.Y[n-2] {
		t.Errorf("no incoming-bandwidth dip at full cluster: %v >= %v", s.Y[n-1], s.Y[n-2])
	}
}

// TestFig9EPLMonotone asserts EPL falls with outdegree on each reach curve.
func TestFig9EPLMonotone(t *testing.T) {
	rep, err := Run("fig9", Params{Scale: 0.15, Trials: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep.Series {
		if len(s.Y) < 4 {
			continue
		}
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		if last >= first {
			t.Errorf("%s: EPL did not fall with outdegree (%v -> %v)", s.Label, first, last)
		}
	}
}

// TestFig11Improvement asserts the case-study direction: the redesigned
// topology carries far less aggregate load than today's.
func TestFig11Improvement(t *testing.T) {
	rep, err := Run("fig11", Params{Scale: 0.1, Trials: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) == 0 || len(rep.Tables[0].Rows) < 2 {
		t.Fatal("missing comparison table")
	}
	today, err := strconv.ParseFloat(rep.Tables[0].Rows[0][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	redesigned, err := strconv.ParseFloat(rep.Tables[0].Rows[1][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if redesigned >= today*0.6 {
		t.Errorf("redesign saved too little: %v vs %v", redesigned, today)
	}
}
