package experiments

import (
	"fmt"

	"spnet/internal/analysis"
	"spnet/internal/network"
	"spnet/internal/stats"
)

// outdegreeHistogram evaluates a power-law system and buckets a per-cluster
// value by super-peer outdegree, as Figures 7 and 8 do. Vertical bars in the
// paper's histograms are one standard deviation.
func outdegreeHistogram(p Params, avgOutdeg float64, ttl int, label string,
	value func(*analysis.Result, int) float64) (Series, error) {
	cfg := network.Config{
		GraphType:    network.PowerLaw,
		GraphSize:    p.scaled(10000, 400),
		ClusterSize:  20,
		AvgOutdegree: avgOutdeg,
		TTL:          ttl,
	}
	trials := p.trials(3)
	// Per-trial streams split sequentially; trials evaluate on the pool and
	// their samples concatenate in trial order.
	root := stats.NewRNG(p.Seed + uint64(avgOutdeg*10) + uint64(ttl))
	rngs := make([]*stats.RNG, trials)
	for t := range rngs {
		rngs[t] = root.Split(uint64(t))
	}
	type samples struct {
		keys []int
		vals []float64
	}
	perTrial, err := pmap(p, "trials", trials, func(t int) (samples, error) {
		inst, err := network.Generate(cfg, nil, rngs[t])
		if err != nil {
			return samples{}, err
		}
		res := analysis.Evaluate(inst)
		var s samples
		for v := range inst.Clusters {
			s.keys = append(s.keys, inst.Graph.Degree(v))
			s.vals = append(s.vals, value(res, v))
		}
		return s, nil
	})
	if err != nil {
		return Series{}, err
	}
	var keys []int
	var vals []float64
	for _, s := range perTrial {
		keys = append(keys, s.keys...)
		vals = append(vals, s.vals...)
	}
	buckets := stats.GroupByKey(keys, vals)
	if label == "" {
		label = fmt.Sprintf("Avg Outdeg=%.1f", avgOutdeg)
	}
	s := Series{Label: label}
	for _, b := range buckets {
		if b.N < 3 {
			continue // drop the extreme-degree tail with too few samples
		}
		s.X = append(s.X, float64(b.Key))
		s.Y = append(s.Y, b.Mean)
		s.YErr = append(s.YErr, b.StdDev)
	}
	return s, nil
}

// runFig7 reproduces Figure 7: histogram of individual super-peer outgoing
// bandwidth as a function of outdegree, for average outdegrees 3.1 and 10.
// Expected shape: in the 3.1 topology load climbs steeply with outdegree and
// its high-degree nodes carry extreme load; in the 10 topology all loads sit
// in a moderate band.
func runFig7(p Params) (*Report, error) {
	var series []Series
	for _, d := range []float64{3.1, 10} {
		s, err := outdegreeHistogram(p, d, 7, "", func(r *analysis.Result, v int) float64 {
			return r.SuperPeerLoad(v).OutBps
		})
		if err != nil {
			return nil, err
		}
		series = append(series, s)
	}
	return &Report{
		Notes: []string{
			"individual super-peer outgoing bandwidth (bps) by outdegree; bars are one standard deviation",
			"cluster size 20, TTL 7",
		},
		Series: series,
	}, nil
}

// runFig8 reproduces Figure 8: histogram of expected results per query by
// source outdegree. Expected shape: low-degree nodes of the 3.1 topology
// receive far fewer results; the 10 topology delivers full results to all.
func runFig8(p Params) (*Report, error) {
	var series []Series
	for _, d := range []float64{3.1, 10} {
		s, err := outdegreeHistogram(p, d, 7, "", func(r *analysis.Result, v int) float64 {
			return r.SourceResults(v)
		})
		if err != nil {
			return nil, err
		}
		series = append(series, s)
	}
	// Our PLOD implementation repairs connectivity, so at TTL 7 even
	// degree-1 sources reach the whole overlay and the paper's low-degree
	// result deficit does not appear at the original parameters. The
	// labeled illustrative series lowers the TTL to re-expose the gradient
	// the paper measured on its (less connected) crawl-calibrated graphs.
	ill, err := outdegreeHistogram(p, 3.1, 4, "Avg Outdeg=3.1, TTL=4 (illustrative)",
		func(r *analysis.Result, v int) float64 {
			return r.SourceResults(v)
		})
	if err != nil {
		return nil, err
	}
	series = append(series, ill)
	return &Report{
		Notes: []string{
			"expected number of results by source outdegree; bars are one standard deviation",
			"cluster size 20, TTL 7 (plus an illustrative TTL-4 series, see below)",
			"divergence note: with connectivity-repaired topologies, TTL 7 reaches everything from any source, so the paper's low-degree result deficit only shows at lower TTL",
		},
		Series: series,
	}, nil
}

// runTableD2 reproduces Appendix D Table 2: aggregate load for average
// outdegrees 3.1 and 10 at cluster size 100. The paper reports >31% lower
// bandwidth and slightly lower processing at outdegree 10.
func runTableD2(p Params) (*Report, error) {
	rows := make([][]string, 0, 2)
	var loads []analysis.LoadSummary
	graphSize := p.scaled(10000, 1000)
	// Keep 100 clusters at any scale so both outdegrees stay meaningful.
	clusterSize := graphSize / 100
	if clusterSize < 2 {
		clusterSize = 2
	}
	outdegs := []float64{3.1, 10}
	sums, err := pmap(p, "outdegrees", len(outdegs), func(i int) (*analysis.TrialSummary, error) {
		cfg := network.Config{
			GraphType:    network.PowerLaw,
			GraphSize:    graphSize,
			ClusterSize:  clusterSize,
			AvgOutdegree: outdegs[i],
			TTL:          7,
		}
		return analysis.RunTrialsWorkers(cfg, nil, p.trials(3), p.Seed+uint64(outdegs[i]), p.Workers)
	})
	if err != nil {
		return nil, err
	}
	for i, sum := range sums {
		loads = append(loads, sum.Aggregate)
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", outdegs[i]),
			fmtEng(sum.Aggregate.InBps.Mean),
			fmtEng(sum.Aggregate.OutBps.Mean),
			fmtEng(sum.Aggregate.ProcHz.Mean),
		})
	}
	saving := 1 - loads[1].InBps.Mean/loads[0].InBps.Mean
	return &Report{
		Notes: []string{fmt.Sprintf("incoming-bandwidth saving from outdegree 3.1 to 10: %.0f%% (paper: >31%%)", 100*saving)},
		Tables: []Table{{
			Columns: []string{"Avg Outdegree", "Incoming BW (bps)", "Outgoing BW (bps)", "Processing (Hz)"},
			Rows:    rows,
		}},
	}, nil
}

// runFigA15 reproduces Figure A-15, the caveat to rule #3: with TTL 2 and a
// full-reach goal, an average outdegree of 100 performs worse than 50
// because the EPL has plateaued while redundant queries keep growing.
func runFigA15(p Params) (*Report, error) {
	graphSize := p.scaled(10000, 2500)
	type task struct {
		d   float64
		cfg network.Config
	}
	var tasks []task
	for _, d := range []float64{50, 100} {
		for _, cs := range []int{5, 10, 20, 50, 100} {
			cfg := network.Config{
				GraphType:    network.PowerLaw,
				GraphSize:    graphSize,
				ClusterSize:  cs,
				AvgOutdegree: d,
				TTL:          2,
			}
			if float64(cfg.NumClusters()-1) < d {
				continue // too few clusters for this outdegree
			}
			tasks = append(tasks, task{d, cfg})
		}
	}
	sums, err := pmap(p, "configurations", len(tasks), func(i int) (*analysis.TrialSummary, error) {
		t := tasks[i]
		return analysis.RunTrialsWorkers(t.cfg, nil, p.trials(3),
			p.Seed+uint64(t.d)+uint64(t.cfg.ClusterSize), p.Workers)
	})
	if err != nil {
		return nil, err
	}
	var series []Series
	for _, d := range []float64{50, 100} {
		s := Series{Label: fmt.Sprintf("Avg Outdeg=%.1f", d)}
		for i, t := range tasks {
			if t.d != d {
				continue
			}
			s.X = append(s.X, float64(t.cfg.ClusterSize))
			s.Y = append(s.Y, sums[i].SuperPeer.OutBps.Mean)
			s.YErr = append(s.YErr, sums[i].SuperPeer.OutBps.CI95)
		}
		series = append(series, s)
	}
	return &Report{
		Notes: []string{
			"individual super-peer outgoing bandwidth (bps) vs cluster size, TTL 2, full-reach goal",
			"expected shape: outdegree 100 strictly worse than 50 (redundant queries; EPL plateau)",
		},
		Series: series,
	}, nil
}
