package experiments

import (
	"fmt"
	"math"
	"time"

	"spnet/internal/analysis"
	"spnet/internal/metrics"
	"spnet/internal/network"
	"spnet/internal/p2p"
	"spnet/internal/transfer"
)

// transferBenchTitle is the single catalog entry every super-peer serves; the
// downloader discovers sources by querying the overlay for it, so the file
// must be discoverable via the ordinary query plane before a byte moves.
const transferBenchTitle = "transferbench validation payload"

// TransferBenchParams shape the content-transfer validation: a fleet of live
// super-peers serves one deterministic file under a per-source rate cap, a
// multi-source chunked download runs against the sources a real overlay query
// surfaced, and the measured throughput, duration and transfer-class wire
// bytes are laid beside the analytical prediction. A second download is the
// failover drill: one source is killed mid-transfer and the download must
// complete on the survivors with the hash intact.
type TransferBenchParams struct {
	// Clusters is the number of super-peers (ring overlay, one partner
	// each); every one serves the shared catalog, so it is also the source
	// count the query should surface (default 3).
	Clusters int
	// FileSize pins the served file's size in bytes (default 1 MiB).
	FileSize int64
	// ChunkSize is the serving chunk width (default 16 KiB).
	ChunkSize int
	// SourceRate is each super-peer's content-byte service cap in bytes/sec
	// — the knob that makes throughput predictable (default 256 KiB/s).
	SourceRate float64
	// Window is the downloader's per-source outstanding-chunk window
	// (default 4).
	Window int
	// QueryWindow is the wall-clock window the source-discovery search
	// collects hits for (default 300ms).
	QueryWindow time.Duration
	// KillFraction is when the failover drill kills one source, as a
	// fraction of the predicted clean-download duration (default 0.4).
	KillFraction float64
	// Seed drives the downloader's backoff jitter and the harness.
	Seed uint64
	// Logf, when set, receives diagnostic output.
	Logf func(format string, args ...any)
}

func (p *TransferBenchParams) setDefaults() {
	if p.Clusters <= 0 {
		p.Clusters = 3
	}
	if p.FileSize <= 0 {
		p.FileSize = 1 << 20
	}
	if p.ChunkSize <= 0 {
		p.ChunkSize = 16 << 10
	}
	if p.SourceRate <= 0 {
		p.SourceRate = 256 << 10
	}
	if p.Window <= 0 {
		p.Window = 4
	}
	if p.QueryWindow <= 0 {
		p.QueryWindow = 300 * time.Millisecond
	}
	if p.KillFraction <= 0 || p.KillFraction >= 1 {
		p.KillFraction = 0.4
	}
	if p.Logf == nil {
		p.Logf = func(string, ...any) {}
	}
}

// TransferKill is the failover drill's outcome.
type TransferKill struct {
	// KilledAddr is the source killed mid-download.
	KilledAddr string
	// KillAt is how far into the download the kill landed.
	KillAt time.Duration
	// Recovery is how long after the kill the download completed.
	Recovery time.Duration
	// Result is the completed (hash-verified) drill download.
	Result *transfer.Result
}

// TransferBenchResult carries the measurements alongside the printable
// report, for tests to assert tolerances on.
type TransferBenchResult struct {
	// Pred is the analytical expectation for the clean download.
	Pred *analysis.TransferPrediction
	// Clean is the live clean-download measurement.
	Clean *transfer.Result
	// WireScraped is the transfer-class wire-byte total (both directions)
	// scraped from every super-peer's telemetry across the clean download.
	WireScraped float64
	// Kill is the failover drill.
	Kill TransferKill
	// Sources is how many sources the overlay query surfaced.
	Sources int
	Report  *Report
}

// ThroughputRelErr is the headline number: live measured throughput vs the
// analytical prediction.
func (r *TransferBenchResult) ThroughputRelErr() float64 {
	return relErr(r.Clean.ThroughputBps, r.Pred.ThroughputBps)
}

// WireRelErr compares scraped transfer-class wire bytes with the predicted
// protocol total.
func (r *TransferBenchResult) WireRelErr() float64 {
	return relErr(r.WireScraped, float64(r.Pred.WireBytes))
}

// scrapeTransferBytes sums the transfer-class wire bytes (both directions)
// over every live super-peer's telemetry endpoint.
func scrapeTransferBytes(live *network.Live) (float64, error) {
	var total float64
	for _, sp := range live.SuperPeers() {
		b, err := scrapeClassBytes(sp.Telemetry)
		if err != nil {
			return 0, err
		}
		total += b.Sum(metrics.DirIn, metrics.ClassTransfer)
		total += b.Sum(metrics.DirOut, metrics.ClassTransfer)
	}
	return total, nil
}

// discoverSources queries the overlay from one node until every serving
// super-peer's hit has arrived (summaries and peer links register
// asynchronously after launch), then distills the hits into sources.
func discoverSources(p *TransferBenchParams, live *network.Live) ([]transfer.Source, error) {
	n := live.Node(0, 0)
	if n == nil {
		return nil, fmt.Errorf("transferbench: query node missing")
	}
	deadline := time.Now().Add(10 * time.Second)
	var sources []transfer.Source
	for time.Now().Before(deadline) {
		results, err := n.Search(transferBenchTitle, p.QueryWindow)
		if err != nil {
			return nil, err
		}
		sources = p2p.TransferSources(results, transferBenchTitle)
		if len(sources) >= p.Clusters {
			return sources, nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return nil, fmt.Errorf("transferbench: query surfaced %d sources, want %d",
		len(sources), p.Clusters)
}

func (p *TransferBenchParams) fetchOpts() transfer.Options {
	return transfer.Options{
		Window:           p.Window,
		Seed:             p.Seed,
		DialTimeout:      2 * time.Second,
		HandshakeTimeout: 2 * time.Second,
		ChunkTimeout:     5 * time.Second,
		Backoff:          transfer.Backoff{Initial: 50 * time.Millisecond, Max: 500 * time.Millisecond, Multiplier: 2, Jitter: 0.25},
	}
}

// RunTransferBenchResult executes the transfer validation and failover drill
// and returns both the measurements and the printable report.
func RunTransferBenchResult(p TransferBenchParams) (*TransferBenchResult, error) {
	p.setDefaults()

	// One shared immutable store backs every super-peer: identical catalog,
	// identical bytes — the precondition for multi-source downloads.
	store := transfer.NewStore(transfer.StoreOptions{
		ChunkSize:   p.ChunkSize,
		MinFileSize: p.FileSize,
		MaxFileSize: p.FileSize,
	})
	f := store.Add(transferBenchTitle)

	live := network.NewLive(network.LiveConfig{
		Clusters:  p.Clusters,
		Partners:  1,
		Seed:      p.Seed,
		Telemetry: true,
		Node: p2p.Options{
			Content:           store,
			TransferRate:      p.SourceRate,
			HeartbeatInterval: -1,
			DrainTimeout:      200 * time.Millisecond,
		},
	})
	if err := live.Launch(); err != nil {
		return nil, err
	}
	defer live.Close()

	sources, err := discoverSources(&p, live)
	if err != nil {
		return nil, err
	}

	pred, err := analysis.PredictTransfer(analysis.TransferWorkload{
		FileSize:      f.Size,
		ChunkSize:     p.ChunkSize,
		Sources:       len(sources),
		SourceRateBps: p.SourceRate,
	})
	if err != nil {
		return nil, err
	}

	wantHash := transfer.ContentHash(f.Title, f.Size)

	// Clean download, bracketed by telemetry scrapes so the wire-byte column
	// covers exactly this transfer.
	wireBase, err := scrapeTransferBytes(live)
	if err != nil {
		return nil, err
	}
	clean, err := transfer.Fetch(sources, p.fetchOpts())
	if err != nil {
		return nil, fmt.Errorf("transferbench: clean download: %w", err)
	}
	if clean.Hash != wantHash {
		return nil, fmt.Errorf("transferbench: clean download hash mismatch")
	}
	wireEnd, err := scrapeTransferBytes(live)
	if err != nil {
		return nil, err
	}

	// Failover drill: same download, one source killed mid-transfer.
	killCluster := p.Clusters - 1
	killAddr := ""
	if n := live.Node(killCluster, 0); n != nil {
		killAddr = n.Addr()
	}
	type outcome struct {
		res *transfer.Result
		err error
	}
	done := make(chan outcome, 1)
	start := time.Now()
	go func() {
		res, err := transfer.Fetch(sources, p.fetchOpts())
		done <- outcome{res, err}
	}()
	killDelay := time.Duration(p.KillFraction * pred.DurationSec * float64(time.Second))
	var killAt time.Duration
	select {
	case out := <-done:
		// Finished before the planned kill (tiny files at quick scale): the
		// drill degrades to a second clean download, reported as such.
		if out.err != nil {
			return nil, fmt.Errorf("transferbench: drill download: %w", out.err)
		}
		return nil, fmt.Errorf("transferbench: drill finished in %v, before the %v kill point — raise FileSize or KillFraction",
			out.res.Elapsed, killDelay)
	case <-time.After(killDelay):
		if err := live.KillSuperPeer(killCluster, 0); err != nil {
			return nil, err
		}
		killAt = time.Since(start)
		p.Logf("transferbench: killed %s at %v", killAddr, killAt)
	}
	var drill outcome
	select {
	case drill = <-done:
	case <-time.After(60 * time.Second):
		return nil, fmt.Errorf("transferbench: drill download hung after source kill")
	}
	if drill.err != nil {
		return nil, fmt.Errorf("transferbench: drill download after kill: %w", drill.err)
	}
	if drill.res.Hash != wantHash {
		return nil, fmt.Errorf("transferbench: drill download hash mismatch after failover")
	}

	res := &TransferBenchResult{
		Pred:        pred,
		Clean:       clean,
		WireScraped: wireEnd - wireBase,
		Sources:     len(sources),
		Kill: TransferKill{
			KilledAddr: killAddr,
			KillAt:     killAt,
			Recovery:   drill.res.Elapsed - killAt,
			Result:     drill.res,
		},
	}

	fmtBps := func(v float64) string { return fmt.Sprintf("%.4g", v) }
	cleanTable := Table{
		Title: "clean multi-source download: analytical vs live",
		Columns: []string{
			"Quantity", "Model", "Live", "Rel err",
		},
		Rows: [][]string{
			{"throughput (bytes/s)", fmtBps(pred.ThroughputBps), fmtBps(clean.ThroughputBps),
				fmt.Sprintf("%.1f%%", 100*res.ThroughputRelErr())},
			{"duration (s)", fmt.Sprintf("%.3f", pred.DurationSec),
				fmt.Sprintf("%.3f", clean.Elapsed.Seconds()),
				fmt.Sprintf("%.1f%%", 100*relErr(clean.Elapsed.Seconds(), pred.DurationSec))},
			{"wire bytes (transfer class)", fmt.Sprintf("%d", pred.WireBytes),
				fmt.Sprintf("%.0f", res.WireScraped),
				fmt.Sprintf("%.1f%%", 100*res.WireRelErr())},
			{"protocol efficiency", fmt.Sprintf("%.4f", pred.Efficiency),
				fmt.Sprintf("%.4f", float64(clean.Size)/math.Max(res.WireScraped, 1)), ""},
			{"chunks", fmt.Sprintf("%d", pred.Chunks), fmt.Sprintf("%d", clean.Chunks), ""},
			{"sources", fmt.Sprintf("%d", p.Clusters), fmt.Sprintf("%d", res.Sources), ""},
		},
	}
	drillTable := Table{
		Title:   "failover drill: one source killed mid-download",
		Columns: []string{"Quantity", "Value"},
		Rows: [][]string{
			{"killed source", killAddr},
			{"kill at", res.Kill.KillAt.Round(time.Millisecond).String()},
			{"recovery (kill to completion)", res.Kill.Recovery.Round(time.Millisecond).String()},
			{"total elapsed", drill.res.Elapsed.Round(time.Millisecond).String()},
			{"chunks retried", fmt.Sprintf("%d", drill.res.Retried)},
			{"hash verified", "yes"},
		},
	}

	res.Report = &Report{
		ID:    "transferbench",
		Title: "Validation: analytical vs live multi-source transfer throughput",
		Notes: []string{
			fmt.Sprintf("%d super-peers each serving the %d-byte file in %d-byte chunks, rate-capped at %g bytes/s per source",
				p.Clusters, f.Size, p.ChunkSize, p.SourceRate),
			"sources discovered through a real overlay query (QueryHit responder addresses), not configured",
			"model: window pipelining keeps every source service-bound, so throughput = sources × per-source rate cap",
			"wire column scraped from each super-peer's /metrics endpoint (spnet_message_bytes_total{type=\"transfer\"})",
			fmt.Sprintf("failover drill killed one source at %.0f%% of the predicted duration; download completed on the survivors",
				100*p.KillFraction),
		},
		Tables: []Table{cleanTable, drillTable},
	}
	return res, nil
}

// RunTransferBench is the registry entry point for the transferbench
// experiment.
func RunTransferBench(p TransferBenchParams) (*Report, error) {
	res, err := RunTransferBenchResult(p)
	if err != nil {
		return nil, err
	}
	return res.Report, nil
}

// runTransferBenchDefault adapts the generic experiment Params: Scale shrinks
// the served file (floored so the failover drill still has time to kill a
// source mid-transfer).
func runTransferBenchDefault(p Params) (*Report, error) {
	tp := TransferBenchParams{Seed: p.Seed}
	if p.Scale > 0 && p.Scale < 1 {
		tp.FileSize = int64(math.Max(256<<10, float64(int64(1<<20))*p.Scale))
	}
	return RunTransferBench(tp)
}
