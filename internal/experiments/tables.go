package experiments

import (
	"fmt"

	"spnet/internal/cost"
	"spnet/internal/gnutella"
	"spnet/internal/network"
	"spnet/internal/workload"
)

// runTable1 echoes the configuration parameters and their defaults
// (paper Table 1).
func runTable1(Params) (*Report, error) {
	cfg := network.DefaultConfig()
	rates := workload.DefaultRates()
	return &Report{
		Tables: []Table{{
			Columns: []string{"Name", "Default", "Description"},
			Rows: [][]string{
				{"Graph Type", cfg.GraphType.String(), "strongly connected or power-law"},
				{"Graph Size", fmt.Sprint(cfg.GraphSize), "number of peers in the network"},
				{"Cluster Size", fmt.Sprint(cfg.ClusterSize), "nodes per cluster, incl. the super-peer"},
				{"Redundancy", fmt.Sprint(cfg.Redundancy), "whether super-peer 2-redundancy is used"},
				{"Avg. Outdegree", fmt.Sprint(cfg.AvgOutdegree), "average outdegree of a super-peer"},
				{"TTL", fmt.Sprint(cfg.TTL), "time-to-live of a query message"},
				{"Query Rate", fmtEng(rates.QueryRate), "expected queries per user per second"},
				{"Update Rate", fmtEng(rates.UpdateRate), "expected updates per user per second"},
			},
		}},
	}, nil
}

// runTable2 prints the atomic-action cost model (paper Table 2 / Figure 2).
func runTable2(Params) (*Report, error) {
	row := func(action, bw, proc string) []string { return []string{action, bw, proc} }
	return &Report{
		Notes: []string{
			"bandwidth in bytes on the wire (incl. Ethernet+TCP/IP framing); processing in units (1 unit = 7200 cycles)",
			"ProcessJoin and ProcessUpdate constants are reconstructed; see DESIGN.md substitution 4",
		},
		Tables: []Table{{
			Columns: []string{"Action", "Bandwidth Cost (Bytes)", "Processing Cost (Units)"},
			Rows: [][]string{
				row("Send Query", "82 + query length", fmt.Sprintf("%.2f + %.3f·len", cost.SendQueryBase, cost.SendQueryPerByte)),
				row("Recv Query", "82 + query length", fmt.Sprintf("%.2f + %.3f·len", cost.RecvQueryBase, cost.RecvQueryPerByte)),
				row("Process Query", "0", fmt.Sprintf("%.2f + %.1f·#results", cost.ProcessQueryBase, cost.ProcessQueryPerRe)),
				row("Send Response", "80 + 28·#addr + 76·#results", fmt.Sprintf("%.2f + %.2f·#addr + %.1f·#results", cost.SendRespBase, cost.SendRespPerAddr, cost.SendRespPerResult)),
				row("Recv Response", "80 + 28·#addr + 76·#results", fmt.Sprintf("%.2f + %.2f·#addr + %.1f·#results", cost.RecvRespBase, cost.RecvRespPerAddr, cost.RecvRespPerResult)),
				row("Send Join", "80 + 72·#files", fmt.Sprintf("%.2f + %.1f·#files", cost.SendJoinBase, cost.SendJoinPerFile)),
				row("Recv Join", "80 + 72·#files", fmt.Sprintf("%.2f + %.1f·#files", cost.RecvJoinBase, cost.RecvJoinPerFile)),
				row("Process Join", "0", fmt.Sprintf("%.2f + %.2f·#files", cost.ProcessJoinBase, cost.ProcessJoinPerFile)),
				row("Send Update", "152", fmt.Sprintf("%.1f", cost.SendUpdate)),
				row("Recv Update", "152", fmt.Sprintf("%.1f", cost.RecvUpdate)),
				row("Process Update", "0", fmt.Sprintf("%.1f", cost.ProcessUpdate)),
				row("Packet Multiplex", "0", fmt.Sprintf("%.2f·#open connections", cost.PacketMultiplexPerConn)),
			},
		}},
	}, nil
}

// runTable3 prints the general statistics (paper Table 3 / Figure 3).
func runTable3(Params) (*Report, error) {
	prof := workload.DefaultProfile()
	return &Report{
		Tables: []Table{{
			Columns: []string{"Description", "Value"},
			Rows: [][]string{
				{"Expected length of query string", fmt.Sprintf("%d B", prof.QueryLen)},
				{"Average size of result record", fmt.Sprintf("%d B", gnutella.ResultRecordLen)},
				{"Average size of metadata for a single file", fmt.Sprintf("%d B", gnutella.MetadataRecordLen)},
				{"Average number of queries per user per second", fmtEng(prof.Rates.QueryRate)},
				{"Mean files per peer (synthetic, after [22])", fmtEng(prof.Files.Mean())},
				{"Mean session lifespan (synthetic, after [22])", fmt.Sprintf("%s s", fmtEng(prof.Lifespans.Mean()))},
				{"Mean selection power p̄ (synthetic, after [25])", fmtEng(prof.Queries.MeanSelectionPower())},
			},
		}},
	}, nil
}
