package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"spnet/internal/faults"
	"spnet/internal/network"
	"spnet/internal/p2p"
	"spnet/internal/stats"
	"spnet/internal/workload"
)

// LiveRegime is one failure regime of the live reliability experiment, in
// virtual seconds — the same units as the simulated reliability table, so the
// two run the same failure processes.
type LiveRegime struct {
	Label string
	// MTBF is each partner's mean time between failures, virtual seconds.
	MTBF float64
	// Recovery is how long a killed partner stays down, virtual seconds.
	Recovery float64
}

// LiveParams shape the live reliability experiment: the simulated
// reliability experiment's failure regimes replayed against real TCP
// super-peers (network.Live) with real clients issuing seeded Poisson query
// workloads, under a wall-clock ↔ virtual-time bridge.
//
// The bridge: schedules are drawn in virtual seconds (the simulator's unit)
// and divided by TimeScale to get wall-clock times, so a 600-virtual-second
// regime replays in 5 wall seconds at TimeScale 120. Fault times and query
// arrival times are bit-deterministic in Seed; measured counts depend on
// real scheduling and are only statistically stable.
type LiveParams struct {
	// Clusters is the overlay ring size (default 3).
	Clusters int
	// Ks are the redundancy levels swept (default 1, 2, 3 — the simulated
	// table's grid).
	Ks []int
	// ClientsPerCluster is how many live clients join each cluster
	// (default 3).
	ClientsPerCluster int
	// Duration is each cell's length in virtual seconds (default 600).
	Duration float64
	// TimeScale compresses virtual seconds into wall clock: wall = virtual /
	// TimeScale (default 120).
	TimeScale float64
	// QueryRate is each client's Poisson query rate in queries per virtual
	// second (default: the Table 1 per-user rate, 9.26e-3 — at the default
	// TimeScale that is ~1.1 queries per wall second per client).
	QueryRate float64
	// QueryWindow is the wall-clock window each search collects results for
	// (default 200ms).
	QueryWindow time.Duration
	// Seed drives every schedule: fault times, query arrivals, backoff
	// jitter.
	Seed uint64
	// Regimes are the failure regimes to replay (default: the simulated
	// reliability experiment's harsh and benign regimes).
	Regimes []LiveRegime
	// Progress, when set, receives per-cell completion updates.
	Progress func(stage string, done, total int)
	// RowSink, when set, receives each result row as its cell completes —
	// the streaming-export hook (same shape as Params.RowSink, so CSVStream
	// plugs into both), letting interrupted runs keep partial results.
	RowSink func(stage string, columns, row []string)
	// Logf, when set, receives diagnostic output.
	Logf func(format string, args ...any)
}

func (lp *LiveParams) setDefaults() {
	if lp.Clusters <= 0 {
		lp.Clusters = 3
	}
	if len(lp.Ks) == 0 {
		lp.Ks = []int{1, 2, 3}
	}
	if lp.ClientsPerCluster <= 0 {
		lp.ClientsPerCluster = 3
	}
	if lp.Duration <= 0 {
		lp.Duration = 600
	}
	if lp.TimeScale <= 0 {
		lp.TimeScale = 120
	}
	if lp.QueryRate <= 0 {
		lp.QueryRate = workload.DefaultRates().QueryRate
	}
	if lp.QueryWindow <= 0 {
		lp.QueryWindow = 200 * time.Millisecond
	}
	if len(lp.Regimes) == 0 {
		lp.Regimes = []LiveRegime{
			{"harsh (MTBF 1000 s, recovery 300 s)", 1000, 300},
			{"benign (MTBF 2000 s, recovery 60 s)", 2000, 60},
		}
	}
	if lp.Logf == nil {
		lp.Logf = func(string, ...any) {}
	}
}

// wall converts virtual seconds to wall-clock duration under the bridge.
func (lp *LiveParams) wall(virtual float64) time.Duration {
	return time.Duration(virtual / lp.TimeScale * float64(time.Second))
}

// wallClamped is wall with a floor, for knobs (heartbeats, backoff) that
// stop making sense below scheduler granularity.
func (lp *LiveParams) wallClamped(virtual float64, floor time.Duration) time.Duration {
	if d := lp.wall(virtual); d > floor {
		return d
	}
	return floor
}

// liveArrivals draws one client's query arrival times in virtual seconds: a
// Poisson process at rate queries/virtual-second out to duration. The stream
// is split per (cluster, client) slot, so the full arrival plan is
// deterministic in the seed and independent of scheduling.
func liveArrivals(seed uint64, clientsPer, cluster, client int, rate, duration float64) []float64 {
	rng := stats.NewRNG(seed).Split(uint64(cluster*clientsPer + client + 1))
	var out []float64
	if rate <= 0 {
		return out
	}
	t := rng.ExpFloat64() / rate
	for t < duration {
		out = append(out, t)
		t += rng.ExpFloat64() / rate
	}
	return out
}

// liveCellResult is one (regime, k) cell's measurements.
type liveCellResult struct {
	failures    int // kills actually executed
	issued      int
	lost        int // searches that returned an error
	degraded    int // successful searches missing results vs healthy baseline
	busy        int // Busy (load-shed) responses observed
	resultsSum  int
	recoverySum float64 // virtual seconds
	recoveryN   int
}

// liveClient is one live client slot with its arrival plan and failover
// observations.
type liveClient struct {
	cl       *p2p.Client
	arrivals []float64

	mu       sync.Mutex
	lostAt   []time.Time
	rejoinAt []time.Time
}

// runLiveCell replays one failure regime at one redundancy level against a
// real network and measures it.
func runLiveCell(lp *LiveParams, reg LiveRegime, k int, cellSeed uint64) (res liveCellResult, err error) {
	live := network.NewLive(network.LiveConfig{
		Clusters: lp.Clusters,
		Partners: k,
		Seed:     cellSeed,
		Node: p2p.Options{
			HeartbeatInterval: lp.wallClamped(30, 100*time.Millisecond),
			DrainTimeout:      200 * time.Millisecond,
		},
	})
	if err := live.Launch(); err != nil {
		return res, err
	}
	defer live.Close()

	// Live clients: each shares one file matching the common probe term, so
	// a fully healthy search returns Clusters×ClientsPerCluster results and
	// anything less is measurable partial-result degradation.
	healthy := lp.Clusters * lp.ClientsPerCluster
	clients := make([]*liveClient, 0, healthy)
	defer func() {
		for _, lc := range clients {
			lc.cl.Close()
		}
	}()
	for c := 0; c < lp.Clusters; c++ {
		for i := 0; i < lp.ClientsPerCluster; i++ {
			lc := &liveClient{
				arrivals: liveArrivals(cellSeed, lp.ClientsPerCluster, c, i, lp.QueryRate, lp.Duration),
			}
			opts := p2p.DialOptions{
				Addrs:             live.ClusterAddrs(c),
				Seed:              cellSeed + uint64(c*lp.ClientsPerCluster+i),
				HeartbeatInterval: lp.wallClamped(5, 20*time.Millisecond),
				MaxAttempts:       2 * k, // one quick lap of the ranked list; the watchdog retries
				Backoff: p2p.Backoff{
					Initial: lp.wallClamped(1, 5*time.Millisecond),
					Max:     lp.wallClamped(10, 25*time.Millisecond),
				},
				OnEvent: func(ev p2p.Event) {
					lc.mu.Lock()
					switch ev.Type {
					case p2p.EventConnLost:
						lc.lostAt = append(lc.lostAt, time.Now())
					case p2p.EventRejoined:
						lc.rejoinAt = append(lc.rejoinAt, time.Now())
					}
					lc.mu.Unlock()
				},
			}
			cl, err := p2p.DialClientOptions(opts, []p2p.SharedFile{
				{Index: 1, Title: fmt.Sprintf("needle c%dp%d", c, i)},
			})
			if err != nil {
				return res, fmt.Errorf("live client %d/%d: %w", c, i, err)
			}
			clients = append(clients, lc)
			lc.cl = cl
		}
	}

	// The failure timeline: the same exponential per-partner failure process
	// the simulator injects, drawn in virtual seconds and replayed at
	// wall-clock times through the bridge. Kills and their recoveries merge
	// into one ordered timeline.
	sched := faults.ExponentialSchedule(cellSeed+500, lp.Clusters, k, reg.MTBF, lp.Duration).Truncate(lp.Duration)
	type liveEvent struct {
		atWall  time.Duration
		kill    bool
		cluster int
		partner int
	}
	var timeline []liveEvent
	for _, ev := range sched {
		timeline = append(timeline, liveEvent{lp.wall(ev.At), true, ev.Cluster, ev.Partner})
		if back := ev.At + reg.Recovery; back < lp.Duration {
			timeline = append(timeline, liveEvent{lp.wall(back), false, ev.Cluster, ev.Partner})
		}
	}
	sort.SliceStable(timeline, func(i, j int) bool { return timeline[i].atWall < timeline[j].atWall })

	start := time.Now()
	stopc := make(chan struct{})
	var kills int
	var killMu sync.Mutex
	var driverWG sync.WaitGroup
	driverWG.Add(1)
	go func() {
		defer driverWG.Done()
		for _, ev := range timeline {
			wait := time.Until(start.Add(ev.atWall))
			if wait > 0 {
				select {
				case <-time.After(wait):
				case <-stopc:
					return
				}
			}
			if ev.kill {
				if err := live.KillSuperPeer(ev.cluster, ev.partner); err == nil {
					killMu.Lock()
					kills++
					killMu.Unlock()
				}
			} else {
				// "Still running" / double-restart races are benign: the
				// schedule may re-kill a partner inside its own recovery
				// window.
				if err := live.RestartSuperPeer(ev.cluster, ev.partner); err != nil {
					lp.Logf("live: restart sp %d/%d: %v", ev.cluster, ev.partner, err)
				}
			}
		}
	}()

	// Query generators: one per client, firing at the precomputed arrivals.
	type tally struct {
		issued, lost, degraded, busy, results int
	}
	tallies := make([]tally, len(clients))
	var genWG sync.WaitGroup
	for ci, lc := range clients {
		genWG.Add(1)
		go func(ci int, lc *liveClient) {
			defer genWG.Done()
			tl := &tallies[ci]
			for _, at := range lc.arrivals {
				if wait := time.Until(start.Add(lp.wall(at))); wait > 0 {
					select {
					case <-time.After(wait):
					case <-stopc:
						return
					}
				}
				out, err := lc.cl.SearchDetailed("needle", lp.QueryWindow)
				tl.issued++
				if err != nil {
					tl.lost++
					continue
				}
				tl.results += len(out.Results)
				tl.busy += out.Busy
				if len(out.Results) < healthy {
					tl.degraded++
				}
			}
		}(ci, lc)
	}

	// Let the cell play out: generators finish their arrival plans (late
	// queries just fire late), then the fault driver is released.
	genWG.Wait()
	endWait := time.Until(start.Add(lp.wall(lp.Duration)))
	if endWait > 0 {
		time.Sleep(endWait)
	}
	close(stopc)
	driverWG.Wait()

	killMu.Lock()
	res.failures = kills
	killMu.Unlock()
	for i := range tallies {
		res.issued += tallies[i].issued
		res.lost += tallies[i].lost
		res.degraded += tallies[i].degraded
		res.busy += tallies[i].busy
		res.resultsSum += tallies[i].results
	}
	// Recovery times: pair each connection loss with the next rejoin,
	// reported in virtual seconds through the bridge.
	for _, lc := range clients {
		lc.mu.Lock()
		ri := 0
		for _, lost := range lc.lostAt {
			for ri < len(lc.rejoinAt) && lc.rejoinAt[ri].Before(lost) {
				ri++
			}
			if ri >= len(lc.rejoinAt) {
				break
			}
			res.recoverySum += lc.rejoinAt[ri].Sub(lost).Seconds() * lp.TimeScale
			res.recoveryN++
			ri++
		}
		lc.mu.Unlock()
	}
	return res, nil
}

// liveReliabilityColumns is the live table's header, shared with the CSV
// stream.
var liveReliabilityColumns = []string{
	"Failure regime", "k", "Failures", "Queries issued", "Queries lost",
	"Lost fraction", "Degraded results", "Mean recovery (s)", "Busy",
}

// RunLiveReliability executes the reliability experiment's failure regimes
// over a real TCP super-peer network and reports the live counterparts of
// the simulated table's columns: lost-query fraction, recovery time, and
// partial-result degradation. Cells run sequentially — each one is a real
// network saturating real sockets, and overlapping them would perturb the
// measurements.
func RunLiveReliability(lp LiveParams) (*Report, error) {
	lp.setDefaults()
	type cell struct {
		regime int
		k      int
	}
	var cells []cell
	for ri := range lp.Regimes {
		for _, k := range lp.Ks {
			cells = append(cells, cell{ri, k})
		}
	}
	rows := make([][]string, 0, len(cells))
	for i, c := range cells {
		reg := lp.Regimes[c.regime]
		cellSeed := lp.Seed + uint64(c.regime*1000+c.k)
		res, err := runLiveCell(&lp, reg, c.k, cellSeed)
		if err != nil {
			return nil, fmt.Errorf("live cell %s k=%d: %w", reg.Label, c.k, err)
		}
		lostFrac := 0.0
		if res.issued > 0 {
			lostFrac = float64(res.lost) / float64(res.issued)
		}
		degFrac := 0.0
		if ok := res.issued - res.lost; ok > 0 {
			degFrac = float64(res.degraded) / float64(ok)
		}
		meanRec := "-"
		if res.recoveryN > 0 {
			meanRec = fmt.Sprintf("%.0f", res.recoverySum/float64(res.recoveryN))
		}
		row := []string{
			reg.Label,
			fmt.Sprint(c.k),
			fmt.Sprint(res.failures),
			fmt.Sprint(res.issued),
			fmt.Sprint(res.lost),
			fmt.Sprintf("%.2f%%", 100*lostFrac),
			fmt.Sprintf("%.2f%%", 100*degFrac),
			meanRec,
			fmt.Sprint(res.busy),
		}
		rows = append(rows, row)
		if lp.RowSink != nil {
			lp.RowSink("live failure regimes", liveReliabilityColumns, row)
		}
		if lp.Progress != nil {
			lp.Progress("live failure regimes", i+1, len(cells))
		}
	}
	return &Report{
		ID:    "livereliability",
		Title: "Live reliability: the failure regimes replayed on real TCP super-peers",
		Notes: []string{
			fmt.Sprintf("time-scale bridge: %g virtual s per wall s; %g virtual s per cell (%.1f wall s)",
				lp.TimeScale, lp.Duration, lp.Duration/lp.TimeScale),
			fmt.Sprintf("%d clusters × k partners, %d clients/cluster, per-client query rate %.3g/virtual s",
				lp.Clusters, lp.ClientsPerCluster, lp.QueryRate),
			"fault and arrival schedules are deterministic per seed; measured counts depend on real scheduling",
			"degraded = successful searches returning fewer results than the healthy-network baseline",
		},
		Tables: []Table{{
			Title:   "live failure regimes",
			Columns: liveReliabilityColumns,
			Rows:    rows,
		}},
	}, nil
}
