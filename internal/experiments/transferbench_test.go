package experiments

import (
	"strings"
	"testing"
	"time"
)

// tinyTransferBenchParams keeps the wall clock around 2-3 seconds: 512 KiB
// from 3 sources at 256 KiB/s predicts a ~0.67s clean download plus the
// failover drill.
func tinyTransferBenchParams(seed uint64) TransferBenchParams {
	return TransferBenchParams{
		Clusters:   3,
		FileSize:   512 << 10,
		ChunkSize:  16 << 10,
		SourceRate: 256 << 10,
		Seed:       seed,
	}
}

// TestTransferBenchEndToEnd is the acceptance drill for the transfer plane:
// live multi-source throughput must land within 30% of the analytical
// prediction, the transfer-class wire accounting must match the protocol
// model, and the killed-source download must complete with the hash intact.
func TestTransferBenchEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("live network run")
	}
	res, err := RunTransferBenchResult(tinyTransferBenchParams(11))
	if err != nil {
		t.Fatalf("RunTransferBenchResult: %v", err)
	}
	if res.Sources != 3 {
		t.Errorf("overlay query surfaced %d sources, want 3", res.Sources)
	}
	if e := res.ThroughputRelErr(); e > 0.30 {
		t.Errorf("live throughput %.0f B/s vs predicted %.0f B/s: rel err %.1f%%, want <= 30%%",
			res.Clean.ThroughputBps, res.Pred.ThroughputBps, 100*e)
	}
	if e := res.WireRelErr(); e > 0.10 {
		t.Errorf("scraped transfer wire bytes %.0f vs predicted %d: rel err %.1f%%, want <= 10%%",
			res.WireScraped, res.Pred.WireBytes, 100*e)
	}
	if res.Kill.Recovery <= 0 {
		t.Errorf("failover drill recovery %v, want > 0", res.Kill.Recovery)
	}
	if res.Kill.Result.Retried == 0 {
		t.Error("killed source's outstanding chunks were never re-queued")
	}
	t.Logf("throughput: predicted %.0f live %.0f (err %.1f%%); wire err %.1f%%; kill at %v, recovery %v",
		res.Pred.ThroughputBps, res.Clean.ThroughputBps, 100*res.ThroughputRelErr(),
		100*res.WireRelErr(), res.Kill.KillAt.Round(time.Millisecond),
		res.Kill.Recovery.Round(time.Millisecond))

	rep := Format(res.Report)
	for _, want := range []string{"transferbench", "failover drill", "throughput"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
