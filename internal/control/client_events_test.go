package control

import (
	"sync"
	"testing"
	"time"

	"spnet/internal/p2p"
)

// eventLog records supervised-client lifecycle events in arrival order.
type eventLog struct {
	mu     sync.Mutex
	events []p2p.Event
}

func (l *eventLog) add(e p2p.Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

func (l *eventLog) snapshot() []p2p.Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]p2p.Event(nil), l.events...)
}

// count returns how many events of the given type have fired, and the index
// of the first one (-1 if none).
func (l *eventLog) count(typ p2p.EventType) (n, first int) {
	first = -1
	for i, e := range l.snapshot() {
		if e.Type == typ {
			if first < 0 {
				first = i
			}
			n++
		}
	}
	return n, first
}

// TestClientEventOrderAcrossPromotedFailover drills the full §5.3 healing
// story from the client's point of view and pins the Event contract: kill
// the client's super-peer while the surviving partner is at capacity, let
// the controller promote the survivor, and require the supervised client to
// emit conn-lost → dial-failed (refused while full) → reconnected → rejoined
// in causal order, with the terminal transitions firing exactly once — no
// duplicate reconnects, no spurious give-up.
func TestClientEventOrderAcrossPromotedFailover(t *testing.T) {
	// Two partners with capacity 1 each. n0 hosts the watched client; n1 is
	// pre-filled by a squatter so the failover target starts Busy.
	n0 := startNode(t, "sp-0-0", p2p.Options{MaxClients: 1, TTL: 7, DrainTimeout: -1})
	n1 := startNode(t, "sp-0-1", p2p.Options{MaxClients: 1, TTL: 7, DrainTimeout: -1})

	squatter, err := p2p.DialClient(n1.Addr(), nil)
	if err != nil {
		t.Fatalf("squatter dial: %v", err)
	}
	defer squatter.Close()

	var log eventLog
	cl, err := p2p.DialClientOptions(p2p.DialOptions{
		Addrs: []string{n0.Addr(), n1.Addr()},
		// The supervisor notices the death; generous attempts so the client
		// outlasts the Busy window until the controller's promotion lands.
		HeartbeatInterval: 25 * time.Millisecond,
		MaxAttempts:       40,
		Backoff:           p2p.Backoff{Initial: 40 * time.Millisecond, Max: 150 * time.Millisecond},
		Seed:              11,
		OnEvent:           log.add,
	}, []p2p.SharedFile{{Index: 1, Title: "ordered events manual"}})
	if err != nil {
		t.Fatalf("client dial: %v", err)
	}
	defer cl.Close()

	opts := testOptions([]NodeConfig{
		{ID: "sp-0-0", Addr: n0.Addr(), Cluster: 0, Partner: 0},
		{ID: "sp-0-1", Addr: n1.Addr(), Cluster: 0, Partner: 1},
	})
	opts.ClientCapacity = 1
	// The client must observably bounce off the full survivor before the
	// promotion lands, so detect deaths a few client-retry periods slower
	// than the client notices them.
	opts.ScrapeInterval = 400 * time.Millisecond
	c := New(opts)
	c.Start()
	defer c.Close()
	waitFor(t, "fleet registered", func() bool {
		return hasEvent(c, EvRegistered, "sp-0-0") && hasEvent(c, EvRegistered, "sp-0-1")
	})

	// Kill the client's super-peer. The survivor is full, so the client can
	// only land after the controller promotes it to double capacity.
	n0.Close()
	waitFor(t, "controller promoted the survivor", func() bool {
		_, _, maxClients := n1.ControlState()
		return maxClients == 2
	})
	waitFor(t, "client rejoined", func() bool {
		n, _ := log.count(p2p.EventRejoined)
		return n >= 1
	})

	// The re-homed client must be fully functional: its collection was
	// re-shipped, so the squatter can find it through the promoted partner.
	waitFor(t, "re-homed client searchable", func() bool {
		res, err := squatter.Search("ordered", 100*time.Millisecond)
		return err == nil && len(res) == 1
	})

	// Let any straggler events land before freezing the log.
	time.Sleep(150 * time.Millisecond)
	events := log.snapshot()

	lost, lostAt := log.count(p2p.EventConnLost)
	reconn, reconnAt := log.count(p2p.EventReconnected)
	rejoin, rejoinAt := log.count(p2p.EventRejoined)
	failed, failedAt := log.count(p2p.EventDialFailed)
	gaveUp, _ := log.count(p2p.EventGaveUp)

	// Exactly once: one death seen, one successful re-home, one re-join.
	if lost != 1 || reconn != 1 || rejoin != 1 {
		t.Errorf("want exactly one conn-lost/reconnected/rejoined, got %d/%d/%d\nevents: %v",
			lost, reconn, rejoin, events)
	}
	if gaveUp != 0 {
		t.Errorf("client gave up during a recoverable failover\nevents: %v", events)
	}
	// The survivor was at capacity when the death hit, so at least one dial
	// must have been refused before the promotion opened a slot.
	if failed == 0 {
		t.Errorf("no dial-failed events — survivor never refused while full\nevents: %v", events)
	}
	// Causal order: the death is observed first, refusals happen before the
	// successful reconnect, and the metadata re-join is last.
	if !(lostAt < failedAt && failedAt < reconnAt && reconnAt < rejoinAt) {
		t.Errorf("events out of causal order: conn-lost@%d dial-failed@%d reconnected@%d rejoined@%d\nevents: %v",
			lostAt, failedAt, reconnAt, rejoinAt, events)
	}
	// The reconnect landed on the promoted partner, not the dead one.
	if events[reconnAt].Addr != n1.Addr() {
		t.Errorf("reconnected to %s, want promoted partner %s", events[reconnAt].Addr, n1.Addr())
	}
}
