// Package control is the fleet control plane: the operational form of the
// paper's Section 5.3 local decision rules. A Controller watches every
// super-peer of a live deployment through two channels — a persistent control
// link (over which nodes announce themselves with Register frames and receive
// Directives) and the node's /metrics telemetry (scraped and compared against
// the analytical prediction) — and closes the loop by pushing decisions back:
// partner-promotion when a super-peer dies or re-registers in a storm,
// cluster split and TTL decay on sustained overload, coalesce on sustained
// underload.
//
// Everything is robust by construction. Control RPCs use seeded exponential
// backoff with jitter, per-RPC timeouts, and epoch-versioned idempotent
// directives, so a retried or replayed directive is harmless. Nodes keep
// serving on their last-applied configuration whenever the controller is
// unreachable, and a restarted controller rebuilds its epoch watermark from
// the fleet's Register announcements — no durable controller state exists to
// lose.
package control

import (
	"context"
	"crypto/rand"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"spnet/internal/analysis"
	"spnet/internal/design"
	"spnet/internal/gnutella"
	"spnet/internal/metrics"
	"spnet/internal/stats"
)

// NodeConfig names one super-peer under control.
type NodeConfig struct {
	// ID is the node's stable label (matches the node's SetIdentity).
	ID string
	// Addr is the node's p2p listen address (control links dial it).
	Addr string
	// Telemetry is the node's /metrics HTTP address ("" disables scraping;
	// deadness is then judged on the control link alone).
	Telemetry string
	// Cluster and Partner locate the node in the k-redundant layout, so the
	// controller knows whose partner to promote.
	Cluster int
	Partner int
}

// Options configure a Controller.
type Options struct {
	// Nodes is the fleet.
	Nodes []NodeConfig
	// ScrapeInterval is the decision-loop tick (default 2s). Detection
	// latency for a dead node is at most DeadAfter ticks.
	ScrapeInterval time.Duration
	// ScrapeTimeout bounds one telemetry fetch (default ScrapeInterval/2).
	ScrapeTimeout time.Duration
	// RPCTimeout bounds one directive push round trip (default 2s).
	RPCTimeout time.Duration
	// DialTimeout bounds control-link dials and handshakes (default 2s).
	DialTimeout time.Duration
	// PushAttempts is how many times a directive is retried before the
	// controller gives up for this tick (default 3).
	PushAttempts int
	// Backoff shapes redial and retry delays.
	Backoff Backoff
	// Seed drives every random draw (backoff jitter); fixed seed, fixed
	// schedule.
	Seed uint64
	// DeadAfter is how many consecutive scrape failures (with the control
	// link also down) declare a node dead (default 2).
	DeadAfter int
	// FlapRegisters is the re-registration-storm threshold: this many
	// Register frames from one node within a single tick triggers the same
	// partner-promotion response as death (default 3).
	FlapRegisters int
	// ClientCapacity is the fleet's baseline per-node client capacity.
	// Promotion pushes 2× this to the surviving partner; recovery restores
	// it (default 100).
	ClientCapacity int
	// Limit is the per-node load limit measured load is compared against —
	// typically derived from the analytical prediction via PredictedLoad
	// (Result.SuperPeerClassBps) plus headroom. The zero value disables the
	// hotspot and underload rules; death handling always runs.
	Limit analysis.Load
	// Thresholds tune the Section 5.3 advisor (zero values = paper
	// defaults).
	Thresholds design.Thresholds
	// BaseTTL is the TTL nodes start with, the ceiling TTL decay works down
	// from (default 7).
	BaseTTL int
	// TimeScale converts wall-clock scrape rates into model (virtual)
	// per-second rates when the workload is driven on compressed time:
	// virtual seconds per wall second (default 1).
	TimeScale float64
	// SustainTicks is how many consecutive ticks a hotspot or underload
	// signal must persist before the controller acts — hysteresis against
	// one-scrape blips (default 2).
	SustainTicks int
	// CooldownTicks is how many ticks after an action the same node is left
	// alone, so a directive's effect is observed before the next one
	// (default 3).
	CooldownTicks int
	// Dial, when set, replaces the dialer for both control links and
	// telemetry scrapes — the fault-injection hook (faults.Dialer).
	Dial func(network, addr string, timeout time.Duration) (net.Conn, error)
	// OnEvent, when set, receives every controller event as it happens.
	OnEvent func(Event)
	// Logf, when set, receives diagnostic output.
	Logf func(format string, args ...any)
}

func (o *Options) setDefaults() {
	if o.ScrapeInterval <= 0 {
		o.ScrapeInterval = 2 * time.Second
	}
	if o.ScrapeTimeout <= 0 {
		o.ScrapeTimeout = o.ScrapeInterval / 2
	}
	if o.RPCTimeout <= 0 {
		o.RPCTimeout = 2 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.PushAttempts <= 0 {
		o.PushAttempts = 3
	}
	o.Backoff.setDefaults()
	if o.DeadAfter <= 0 {
		o.DeadAfter = 2
	}
	if o.FlapRegisters <= 0 {
		o.FlapRegisters = 3
	}
	if o.ClientCapacity <= 0 {
		o.ClientCapacity = 100
	}
	if o.BaseTTL <= 0 {
		o.BaseTTL = 7
	}
	if o.TimeScale <= 0 {
		o.TimeScale = 1
	}
	if o.SustainTicks <= 0 {
		o.SustainTicks = 2
	}
	if o.CooldownTicks <= 0 {
		o.CooldownTicks = 3
	}
	if o.Dial == nil {
		o.Dial = net.DialTimeout
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// EventType labels a controller event.
type EventType int

// Controller events, in rough lifecycle order.
const (
	// EvRegistered: a node announced itself on its control link.
	EvRegistered EventType = iota
	// EvDeregistered: a node sent a graceful bye (drain, not crash).
	EvDeregistered
	// EvLinkDown: a control link dropped.
	EvLinkDown
	// EvScrapeFailed: one telemetry scrape failed.
	EvScrapeFailed
	// EvDead: a node was declared dead (scrapes failing, link down) or
	// re-registering in a storm.
	EvDead
	// EvRecovered: a dead node came back.
	EvRecovered
	// EvPushed: a directive was handed to the push path.
	EvPushed
	// EvAcked: a directive was acknowledged by its node.
	EvAcked
	// EvPushFailed: a directive exhausted its retries; the node keeps its
	// last-known configuration.
	EvPushFailed
	// EvHotspot: measured load exceeded the limit on a sustained basis.
	EvHotspot
	// EvUnderload: measured load fell below the coalesce threshold on a
	// sustained basis.
	EvUnderload
)

var eventNames = map[EventType]string{
	EvRegistered: "registered", EvDeregistered: "deregistered", EvLinkDown: "link-down",
	EvScrapeFailed: "scrape-failed", EvDead: "dead", EvRecovered: "recovered",
	EvPushed: "pushed", EvAcked: "acked", EvPushFailed: "push-failed",
	EvHotspot: "hotspot", EvUnderload: "underload",
}

func (e EventType) String() string {
	if s, ok := eventNames[e]; ok {
		return s
	}
	return fmt.Sprintf("EventType(%d)", int(e))
}

// Event is one observable controller action or observation.
type Event struct {
	Time   time.Time
	Type   EventType
	Node   string
	Epoch  uint64
	Detail string
}

func (e Event) String() string {
	s := fmt.Sprintf("%s %s", e.Type, e.Node)
	if e.Epoch > 0 {
		s += fmt.Sprintf(" epoch=%d", e.Epoch)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// nodeState is the controller's per-node bookkeeping.
type nodeState struct {
	agent *agent
	// scrapeFails counts consecutive failed telemetry scrapes.
	scrapeFails int
	// prevBytes is the last scraped per-class byte matrix, prevAt its time;
	// deltas between scrapes become the measured load.
	prevBytes metrics.ByClass
	prevAt    time.Time
	havePrev  bool
	// load is the latest measured per-scrape load; haveLoad gates the load
	// rules until at least one real delta exists (a fresh baseline scrape
	// alone says nothing about rate).
	load     analysis.Load
	haveLoad bool
	// dead marks a node the controller has written off (and responded to).
	dead bool
	// promotedFor, on a surviving partner, names the dead node whose
	// cluster it was promoted to absorb; "" otherwise.
	promotedFor string
	// overTicks / underTicks count consecutive ticks of hotspot / underload
	// signal, for hysteresis.
	overTicks  int
	underTicks int
	// cooldown suppresses further load actions for a few ticks after one.
	cooldown int
	// ttl tracks the TTL the controller believes the node runs (BaseTTL
	// until a SetTTL directive is acked).
	ttl int
}

// NodeStatus is the externally visible slice of a node's state.
type NodeStatus struct {
	ID       string
	LinkUp   bool
	Dead     bool
	Promoted bool
	// PromotedFor names the dead partner this node was promoted to cover.
	PromotedFor string
	ScrapeFails int
	Load        analysis.Load
	TTL         int
}

// Controller is the fleet controller. Create with New, start with Start,
// stop with Close.
type Controller struct {
	opts Options

	mu     sync.Mutex
	nodes  map[string]*nodeState
	order  []string // Nodes order, for deterministic iteration
	epoch  uint64
	events []Event

	scrape *http.Client

	wg   sync.WaitGroup
	stop chan struct{}
}

// New builds a controller over the given fleet.
func New(opts Options) *Controller {
	opts.setDefaults()
	c := &Controller{
		opts:  opts,
		nodes: make(map[string]*nodeState),
		stop:  make(chan struct{}),
	}
	dial := opts.Dial
	scrapeTO := opts.ScrapeTimeout
	c.scrape = &http.Client{
		Timeout: scrapeTO,
		Transport: &http.Transport{
			// Fresh dial per scrape: partitions must bite immediately, and a
			// pooled connection to a restarted node must not serve stale.
			DisableKeepAlives: true,
			DialContext: func(_ context.Context, network, addr string) (net.Conn, error) {
				return dial(network, addr, scrapeTO)
			},
		},
	}
	rng := stats.NewRNG(opts.Seed)
	for i, cfg := range opts.Nodes {
		st := &nodeState{
			agent: newAgent(c, cfg, rng.Split(uint64(i)+1)),
			ttl:   opts.BaseTTL,
		}
		c.nodes[cfg.ID] = st
		c.order = append(c.order, cfg.ID)
	}
	return c
}

// Start launches the control links and the decision loop.
func (c *Controller) Start() {
	for _, id := range c.order {
		c.wg.Add(1)
		go c.nodes[id].agent.run()
	}
	c.wg.Add(1)
	go c.loop()
}

// Close stops the controller. Nodes keep whatever configuration they last
// applied — shutting the controller down is itself a degradation the fleet
// must tolerate.
func (c *Controller) Close() {
	select {
	case <-c.stop:
		return
	default:
	}
	close(c.stop)
	c.mu.Lock()
	for _, id := range c.order {
		st := c.nodes[id]
		st.agent.mu.Lock()
		if st.agent.conn != nil {
			st.agent.conn.Close()
		}
		st.agent.mu.Unlock()
	}
	c.mu.Unlock()
	c.wg.Wait()
	c.scrape.CloseIdleConnections()
}

// Epoch returns the controller's current directive epoch watermark.
func (c *Controller) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Events returns a copy of every event so far, in order.
func (c *Controller) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Status snapshots every node's controller-side state, in fleet order.
func (c *Controller) Status() []NodeStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeStatus, 0, len(c.order))
	for _, id := range c.order {
		st := c.nodes[id]
		out = append(out, NodeStatus{
			ID:          id,
			LinkUp:      st.agent.linkUp(),
			Dead:        st.dead,
			Promoted:    st.promotedFor != "",
			PromotedFor: st.promotedFor,
			ScrapeFails: st.scrapeFails,
			Load:        st.load,
			TTL:         st.ttl,
		})
	}
	return out
}

// event records and publishes one event.
func (c *Controller) event(e Event) {
	e.Time = time.Now()
	c.mu.Lock()
	c.events = append(c.events, e)
	cb := c.opts.OnEvent
	c.mu.Unlock()
	c.opts.Logf("control: %s", e)
	if cb != nil {
		cb(e)
	}
}

// adoptEpoch raises the epoch watermark to at least e — how a restarted
// controller relearns where the fleet's epoch sequence left off from
// Register announcements, keeping directives monotonic across restarts.
func (c *Controller) adoptEpoch(e uint64) {
	c.mu.Lock()
	if e > c.epoch {
		c.epoch = e
	}
	c.mu.Unlock()
}

// nextEpoch allocates the next directive epoch.
func (c *Controller) nextEpoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
	return c.epoch
}

// loop is the scrape/decide/push cycle.
func (c *Controller) loop() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.ScrapeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.tick()
		}
	}
}

// tick runs one control cycle: scrape everyone, then apply the decision
// rules. Survives any combination of scrape failures and dead links; a tick
// never blocks longer than the per-RPC and per-scrape timeouts bound.
func (c *Controller) tick() {
	for _, id := range c.order {
		c.scrapeNode(id)
	}
	c.decide()
}

// scrapeNode fetches one node's telemetry and folds it into measured load.
func (c *Controller) scrapeNode(id string) {
	c.mu.Lock()
	st := c.nodes[id]
	cfg := st.agent.cfg
	c.mu.Unlock()
	if cfg.Telemetry == "" {
		return
	}
	bytes, err := c.scrapeClassBytes(cfg.Telemetry)
	now := time.Now()
	c.mu.Lock()
	if err != nil {
		st.scrapeFails++
		// A gap poisons the delta; restart the baseline and stale rate.
		st.havePrev, st.haveLoad = false, false
		c.mu.Unlock()
		c.event(Event{Type: EvScrapeFailed, Node: id, Detail: err.Error()})
		return
	}
	st.scrapeFails = 0
	if st.havePrev {
		dt := now.Sub(st.prevAt).Seconds() * c.opts.TimeScale
		if dt > 0 {
			var in, out float64
			for cl := 0; cl < metrics.NumClasses; cl++ {
				in += bytes[cl][metrics.DirIn] - st.prevBytes[cl][metrics.DirIn]
				out += bytes[cl][metrics.DirOut] - st.prevBytes[cl][metrics.DirOut]
			}
			st.load = analysis.Load{InBps: in * 8 / dt, OutBps: out * 8 / dt}
			st.haveLoad = true
		}
	}
	st.prevBytes, st.prevAt, st.havePrev = bytes, now, true
	c.mu.Unlock()
}

// scrapeClassBytes fetches one telemetry endpoint's per-class byte totals.
func (c *Controller) scrapeClassBytes(addr string) (metrics.ByClass, error) {
	var b metrics.ByClass
	resp, err := c.scrape.Get("http://" + addr + "/metrics")
	if err != nil {
		return b, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return b, fmt.Errorf("scrape %s: status %d", addr, resp.StatusCode)
	}
	vals, err := metrics.ParsePrometheus(resp.Body)
	if err != nil {
		return b, err
	}
	for cl := 0; cl < metrics.NumClasses; cl++ {
		for d := 0; d < metrics.NumDirs; d++ {
			key := metrics.SeriesKey(metrics.MetricMessageBytes,
				metrics.Label{Name: "type", Value: metrics.Class(cl).String()},
				metrics.Label{Name: "dir", Value: metrics.Dir(d).String()})
			b[cl][d] = vals[key]
		}
	}
	return b, nil
}

// decide applies the Section 5.3 rules to the fleet's current picture.
func (c *Controller) decide() {
	c.decideDeaths()
	if c.opts.Limit != (analysis.Load{}) {
		c.decideLoad()
	}
}

// decideDeaths finds dead or storming nodes and promotes their partners;
// when a dead node returns, the promotion is unwound.
func (c *Controller) decideDeaths() {
	for _, id := range c.order {
		c.mu.Lock()
		st := c.nodes[id]
		cfg := st.agent.cfg
		wasDead := st.dead
		linkUp := st.agent.linkUp()
		fails := st.scrapeFails
		c.mu.Unlock()
		regs, bye := st.agent.takeRegisters()

		scrapeDead := cfg.Telemetry != "" && fails >= c.opts.DeadAfter
		linkDead := cfg.Telemetry == "" && !linkUp
		storm := regs >= c.opts.FlapRegisters
		dead := bye || storm || ((scrapeDead || linkDead) && !linkUp)

		switch {
		case dead && !wasDead:
			c.mu.Lock()
			st.dead = true
			c.mu.Unlock()
			detail := "scrapes failing, link down"
			if bye {
				detail = "deregistered"
			} else if storm {
				detail = fmt.Sprintf("re-registration storm (%d in one tick)", regs)
			}
			c.event(Event{Type: EvDead, Node: id, Detail: detail})
			c.promotePartnerOf(cfg)
		case dead && wasDead:
			// Still dead and nobody promoted yet (the push may have failed
			// while the controller was partitioned): keep trying, so the
			// fleet reconverges once connectivity heals.
			if !c.promotionCovered(cfg.ID) {
				c.promotePartnerOf(cfg)
			}
		case !dead && wasDead && linkUp:
			c.mu.Lock()
			st.dead = false
			c.mu.Unlock()
			c.event(Event{Type: EvRecovered, Node: id})
			c.restorePartnerOf(cfg)
		}
	}
}

// promotePartnerOf pushes a partner-promotion directive to the first live
// same-cluster partner of the dead node: absorb the orphaned clients by
// doubling capacity. Section 5.3 rule I's failure response, pushed instead
// of simulated.
func (c *Controller) promotePartnerOf(dead NodeConfig) {
	survivor := c.pickSurvivor(dead)
	if survivor == nil {
		c.opts.Logf("control: no live partner to promote for %s", dead.ID)
		return
	}
	c.pushDirective(survivor, &gnutella.Directive{
		Action:     gnutella.ActionPromotePartner,
		MaxClients: uint16(2 * c.opts.ClientCapacity),
	}, func(st *nodeState) { st.promotedFor = dead.ID })
}

// restorePartnerOf unwinds a promotion once the dead node is back: the
// promoted partner returns to baseline capacity (the split half of rule I —
// the recovered node takes its clients back as they re-home).
func (c *Controller) restorePartnerOf(recovered NodeConfig) {
	c.mu.Lock()
	var promoted *nodeState
	for _, id := range c.order {
		if st := c.nodes[id]; st.promotedFor == recovered.ID {
			promoted = st
			break
		}
	}
	c.mu.Unlock()
	if promoted == nil {
		return
	}
	c.pushDirective(promoted, &gnutella.Directive{
		Action:     gnutella.ActionSplitCluster,
		MaxClients: uint16(c.opts.ClientCapacity),
	}, func(st *nodeState) { st.promotedFor = "" })
}

// promotionCovered reports whether some survivor was already promoted to
// absorb the named dead node.
func (c *Controller) promotionCovered(deadID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.order {
		if c.nodes[id].promotedFor == deadID {
			return true
		}
	}
	return false
}

// pickSurvivor returns the first same-cluster partner of `dead` whose
// control link is up, in fleet order.
func (c *Controller) pickSurvivor(dead NodeConfig) *nodeState {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.order {
		st := c.nodes[id]
		cfg := st.agent.cfg
		if cfg.ID != dead.ID && cfg.Cluster == dead.Cluster && !st.dead && st.agent.linkUp() {
			return st
		}
	}
	return nil
}

// decideLoad applies the hotspot and underload rules with hysteresis: a
// signal must persist SustainTicks before the controller acts, and an acted
// on node is left alone for CooldownTicks.
func (c *Controller) decideLoad() {
	for _, id := range c.order {
		c.mu.Lock()
		st := c.nodes[id]
		if st.dead || !st.haveLoad {
			st.overTicks, st.underTicks = 0, 0
			c.mu.Unlock()
			continue
		}
		if st.cooldown > 0 {
			st.cooldown--
			c.mu.Unlock()
			continue
		}
		// Clients is not directly observable over telemetry; assume a
		// promotable cluster (>=2 clients) so rule I's shed arm is reachable.
		adv := design.Advise(design.LocalState{
			Load: st.load, Limit: c.opts.Limit,
			Clients: 2, TTL: st.ttl,
		}, c.opts.Thresholds)
		var over, under bool
		switch {
		case adv.PromotePartner || adv.SplitCluster || adv.Resign:
			st.overTicks++
			st.underTicks = 0
			over = st.overTicks >= c.opts.SustainTicks
		case adv.TryCoalesce:
			st.underTicks++
			st.overTicks = 0
			under = st.underTicks >= c.opts.SustainTicks
		default:
			st.overTicks, st.underTicks = 0, 0
		}
		load, ttl := st.load, st.ttl
		c.mu.Unlock()

		switch {
		case over:
			c.event(Event{Type: EvHotspot, Node: id,
				Detail: fmt.Sprintf("load %s vs limit %s", load, c.opts.Limit)})
			// Shed: cap the cluster at half baseline (split), and decay TTL
			// one step to cut forwarded-query bandwidth (rule III under
			// pressure).
			d := &gnutella.Directive{
				Action:     gnutella.ActionSplitCluster,
				MaxClients: uint16(maxInt(1, c.opts.ClientCapacity/2)),
			}
			if ttl > 1 {
				d.TTL = uint8(ttl - 1)
			}
			c.pushDirective(st, d, func(st *nodeState) {
				st.cooldown = c.opts.CooldownTicks
				st.overTicks = 0
				if d.TTL > 0 {
					st.ttl = int(d.TTL)
				}
			})
		case under:
			c.event(Event{Type: EvUnderload, Node: id,
				Detail: fmt.Sprintf("load %s vs limit %s", load, c.opts.Limit)})
			// Coalesce: open capacity to absorb another small cluster, and
			// restore the baseline TTL if decayed.
			d := &gnutella.Directive{
				Action:     gnutella.ActionCoalesce,
				MaxClients: uint16(2 * c.opts.ClientCapacity),
			}
			if ttl < c.opts.BaseTTL {
				d.TTL = uint8(c.opts.BaseTTL)
			}
			c.pushDirective(st, d, func(st *nodeState) {
				st.cooldown = c.opts.CooldownTicks
				st.underTicks = 0
				if d.TTL > 0 {
					st.ttl = int(d.TTL)
				}
			})
		}
	}
}

// pushDirective allocates an epoch, pushes d to the node, and on success
// applies onAcked to the node's controller-side state. On exhausted retries
// the node simply keeps its last-known configuration; the decision will be
// re-derived (with a fresh epoch) on a later tick if it still holds.
func (c *Controller) pushDirective(st *nodeState, d *gnutella.Directive, onAcked func(*nodeState)) {
	d.Epoch = c.nextEpoch()
	id, err := newGUID()
	if err == nil {
		d.ID = id
	}
	c.event(Event{Type: EvPushed, Node: st.agent.cfg.ID, Epoch: d.Epoch,
		Detail: fmt.Sprintf("%s max-clients=%d ttl=%d target=%q", d.Action, d.MaxClients, d.TTL, d.Target)})
	if err := st.agent.push(d); err != nil {
		c.event(Event{Type: EvPushFailed, Node: st.agent.cfg.ID, Epoch: d.Epoch, Detail: err.Error()})
		return
	}
	if onAcked != nil {
		c.mu.Lock()
		onAcked(st)
		c.mu.Unlock()
	}
}

// PredictedLoad folds an analytical per-class bandwidth prediction
// (analysis.Result.SuperPeerClassBps) into the Load form Options.Limit
// expects, scaled by headroom (e.g. 1.5 = alarm at 150% of predicted).
func PredictedLoad(b metrics.ByClass, headroom float64) analysis.Load {
	var l analysis.Load
	for cl := 0; cl < metrics.NumClasses; cl++ {
		l.InBps += b[cl][metrics.DirIn]
		l.OutBps += b[cl][metrics.DirOut]
	}
	return l.Scale(headroom)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// newGUID returns a random descriptor id.
func newGUID() (gnutella.GUID, error) {
	var g gnutella.GUID
	if _, err := rand.Read(g[:]); err != nil {
		return g, err
	}
	return g, nil
}
