package control

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"spnet/internal/analysis"
	"spnet/internal/faults"
	"spnet/internal/gnutella"
	"spnet/internal/metrics"
	"spnet/internal/p2p"
)

// startNode spins up a p2p node with a control-plane identity.
func startNode(t *testing.T, id string, opts p2p.Options) *p2p.Node {
	t.Helper()
	n := p2p.NewNode(opts)
	if err := n.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	n.SetIdentity(id, "")
	t.Cleanup(func() { n.Close() })
	return n
}

// waitFor polls until cond holds or the deadline passes. Deadlines are
// generous: CI runs this under -race on one CPU.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// testOptions returns controller options tuned for fast tests.
func testOptions(nodes []NodeConfig) Options {
	return Options{
		Nodes:          nodes,
		ScrapeInterval: 40 * time.Millisecond,
		RPCTimeout:     300 * time.Millisecond,
		DialTimeout:    300 * time.Millisecond,
		PushAttempts:   2,
		Backoff:        Backoff{Initial: 20 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: -1},
		Seed:           7,
		ClientCapacity: 5,
		BaseTTL:        7,
	}
}

func hasEvent(c *Controller, typ EventType, node string) bool {
	for _, e := range c.Events() {
		if e.Type == typ && e.Node == node {
			return true
		}
	}
	return false
}

func findEvent(c *Controller, typ EventType, node string) (Event, bool) {
	for _, e := range c.Events() {
		if e.Type == typ && e.Node == node {
			return e, true
		}
	}
	return Event{}, false
}

func TestPromoteOnDeathAndRestoreOnRecovery(t *testing.T) {
	n0 := startNode(t, "sp-0-0", p2p.Options{MaxClients: 5, TTL: 7})
	n1 := startNode(t, "sp-0-1", p2p.Options{MaxClients: 5, TTL: 7})
	c := New(testOptions([]NodeConfig{
		{ID: "sp-0-0", Addr: n0.Addr(), Cluster: 0, Partner: 0},
		{ID: "sp-0-1", Addr: n1.Addr(), Cluster: 0, Partner: 1},
	}))
	c.Start()
	defer c.Close()

	waitFor(t, "both registered", func() bool {
		return hasEvent(c, EvRegistered, "sp-0-0") && hasEvent(c, EvRegistered, "sp-0-1")
	})

	// Kill the first partner: graceful Close sends a RegisterBye, so the
	// controller should see a deregistration, declare the node dead, and
	// promote the survivor to double capacity.
	addr0 := n0.Addr()
	n0.Close()
	waitFor(t, "dead declared", func() bool { return hasEvent(c, EvDead, "sp-0-0") })
	if e, ok := findEvent(c, EvDead, "sp-0-0"); ok && !strings.Contains(e.Detail, "deregistered") {
		t.Errorf("dead detail = %q, want graceful deregistration", e.Detail)
	}
	waitFor(t, "survivor promoted", func() bool {
		_, _, maxClients := n1.ControlState()
		return maxClients == 10
	})
	waitFor(t, "promotion acked", func() bool { return hasEvent(c, EvAcked, "sp-0-1") })

	// Bring the dead partner back on its old address: the controller should
	// notice the recovery and walk the survivor back to baseline capacity.
	n0b := p2p.NewNode(p2p.Options{MaxClients: 5, TTL: 7})
	var rebindErr error
	for deadline := time.Now().Add(5 * time.Second); ; {
		if rebindErr = n0b.Listen(addr0); rebindErr == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Skipf("could not rebind %s: %v", addr0, rebindErr)
		}
		time.Sleep(50 * time.Millisecond)
	}
	n0b.SetIdentity("sp-0-0", "")
	defer n0b.Close()
	waitFor(t, "recovery", func() bool { return hasEvent(c, EvRecovered, "sp-0-0") })
	waitFor(t, "survivor restored", func() bool {
		_, _, maxClients := n1.ControlState()
		return maxClients == 5
	})
}

func TestEpochIdempotencyAndRestartRecovery(t *testing.T) {
	n := startNode(t, "sp-0-0", p2p.Options{MaxClients: 5, TTL: 7})
	cfg := []NodeConfig{{ID: "sp-0-0", Addr: n.Addr()}}

	a := New(testOptions(cfg))
	a.Start()
	waitFor(t, "registered with first controller", func() bool { return hasEvent(a, EvRegistered, "sp-0-0") })

	// Epoch 1: set TTL 5.
	a.mu.Lock()
	st := a.nodes["sp-0-0"]
	a.mu.Unlock()
	a.pushDirective(st, &gnutella.Directive{Action: gnutella.ActionSetTTL, TTL: 5}, nil)
	waitFor(t, "ttl applied", func() bool {
		epoch, ttl, _ := n.ControlState()
		return epoch == 1 && ttl == 5
	})

	// A replay of epoch 1 with different contents must be rejected as stale
	// — and the push still succeeds from the controller's point of view
	// (idempotent delivery).
	if err := st.agent.push(&gnutella.Directive{Epoch: 1, Action: gnutella.ActionSetTTL, TTL: 3}); err != nil {
		t.Fatalf("stale push: %v", err)
	}
	if _, ttl, _ := n.ControlState(); ttl != 5 {
		t.Fatalf("stale directive applied: ttl = %d, want 5", ttl)
	}
	a.Close()

	// A restarted controller must rebuild its epoch watermark from the
	// node's Register announcement, so its next directive is fresh.
	b := New(testOptions(cfg))
	b.Start()
	defer b.Close()
	waitFor(t, "re-registered with new controller", func() bool { return hasEvent(b, EvRegistered, "sp-0-0") })
	waitFor(t, "epoch adopted", func() bool { return b.Epoch() >= 1 })

	b.mu.Lock()
	st = b.nodes["sp-0-0"]
	b.mu.Unlock()
	b.pushDirective(st, &gnutella.Directive{Action: gnutella.ActionSetTTL, TTL: 4}, nil)
	waitFor(t, "post-restart directive applied", func() bool {
		epoch, ttl, _ := n.ControlState()
		return epoch == 2 && ttl == 4
	})
}

func TestReRegistrationStormPromotesPartner(t *testing.T) {
	n0 := startNode(t, "sp-0-0", p2p.Options{MaxClients: 5, TTL: 7})
	n1 := startNode(t, "sp-0-1", p2p.Options{MaxClients: 5, TTL: 7})
	c := New(testOptions([]NodeConfig{
		{ID: "sp-0-0", Addr: n0.Addr(), Cluster: 0},
		{ID: "sp-0-1", Addr: n1.Addr(), Cluster: 0},
	}))
	c.Start()
	defer c.Close()
	waitFor(t, "both registered", func() bool {
		return hasEvent(c, EvRegistered, "sp-0-0") && hasEvent(c, EvRegistered, "sp-0-1")
	})

	// Fake a re-registration storm on node 0's link: the controller must
	// treat a flapping node like a dead one and promote its partner.
	c.mu.Lock()
	ag := c.nodes["sp-0-0"].agent
	c.mu.Unlock()
	ag.mu.Lock()
	ag.registers += 5
	ag.mu.Unlock()

	waitFor(t, "storm declared dead", func() bool { return hasEvent(c, EvDead, "sp-0-0") })
	if e, _ := findEvent(c, EvDead, "sp-0-0"); !strings.Contains(e.Detail, "storm") {
		t.Errorf("dead detail = %q, want storm", e.Detail)
	}
	waitFor(t, "partner promoted", func() bool {
		_, _, maxClients := n1.ControlState()
		return maxClients == 10
	})
	// The storm subsides (the link is in fact healthy), so the controller
	// should recover the node and walk the partner back down.
	waitFor(t, "storm recovery", func() bool { return hasEvent(c, EvRecovered, "sp-0-0") })
	waitFor(t, "partner restored", func() bool {
		_, _, maxClients := n1.ControlState()
		return maxClients == 5
	})
}

func TestControllerPartitionGracefulDegradation(t *testing.T) {
	fc := faults.NewController(3)
	n0 := startNode(t, "sp-0-0", p2p.Options{MaxClients: 5, TTL: 7})
	n1 := startNode(t, "sp-0-1", p2p.Options{MaxClients: 5, TTL: 7})
	opts := testOptions([]NodeConfig{
		{ID: "sp-0-0", Addr: n0.Addr(), Cluster: 0},
		{ID: "sp-0-1", Addr: n1.Addr(), Cluster: 0},
	})
	opts.Dial = fc.Dialer("controller")
	c := New(opts)
	c.Start()
	defer c.Close()
	waitFor(t, "both registered", func() bool {
		return hasEvent(c, EvRegistered, "sp-0-0") && hasEvent(c, EvRegistered, "sp-0-1")
	})

	// Partition the controller from the world. Existing control links
	// blackhole (writes vanish), new dials fail fast.
	fc.Isolate("controller")

	// A directive pushed into the partition must fail — and leave the node
	// exactly on its last-known configuration.
	c.mu.Lock()
	st := c.nodes["sp-0-0"]
	c.mu.Unlock()
	epochBefore := c.Epoch()
	c.pushDirective(st, &gnutella.Directive{Action: gnutella.ActionSetTTL, TTL: 3}, nil)
	waitFor(t, "push failure surfaces", func() bool { return hasEvent(c, EvPushFailed, "sp-0-0") })
	if _, ttl, maxClients := n0.ControlState(); ttl != 7 || maxClients != 5 {
		t.Fatalf("node config changed during partition: ttl=%d maxClients=%d", ttl, maxClients)
	}
	if c.Epoch() == epochBefore {
		t.Fatalf("push should have consumed an epoch")
	}

	// Nodes must keep serving the query path while the controller is dark.
	cl, err := p2p.DialClient(n0.Addr(), []p2p.SharedFile{{Index: 1, Title: "partition survival guide"}})
	if err != nil {
		t.Fatalf("DialClient during partition: %v", err)
	}
	defer cl.Close()
	waitFor(t, "client indexed during partition", func() bool {
		res, err := cl.Search("partition", 200*time.Millisecond)
		return err == nil && len(res) == 1
	})

	// During the partition the controller may declare nodes dead and try to
	// promote — every such push fails, so node configs must never move.
	time.Sleep(400 * time.Millisecond)
	if _, ttl, maxClients := n0.ControlState(); ttl != 7 || maxClients != 5 {
		t.Fatalf("sp-0-0 config thrashed during partition: ttl=%d maxClients=%d", ttl, maxClients)
	}
	if _, ttl, maxClients := n1.ControlState(); ttl != 7 || maxClients != 5 {
		t.Fatalf("sp-0-1 config thrashed during partition: ttl=%d maxClients=%d", ttl, maxClients)
	}

	// Heal. Links re-establish, any spurious deaths recover, and control
	// works again end to end.
	healAt := len(c.Events())
	fc.Restore("controller")
	waitFor(t, "links re-established", func() bool {
		for _, e := range c.Events()[healAt:] {
			if e.Type == EvRegistered && e.Node == "sp-0-0" {
				return true
			}
		}
		return false
	})
	waitFor(t, "fleet converged after heal", func() bool {
		for _, s := range c.Status() {
			if s.Dead || !s.LinkUp {
				return false
			}
		}
		_, ttl0, max0 := n0.ControlState()
		_, ttl1, max1 := n1.ControlState()
		return ttl0 == 7 && max0 == 5 && ttl1 == 7 && max1 == 5
	})

	c.mu.Lock()
	st = c.nodes["sp-0-1"]
	c.mu.Unlock()
	c.pushDirective(st, &gnutella.Directive{Action: gnutella.ActionSetTTL, TTL: 6}, nil)
	waitFor(t, "post-heal directive applied", func() bool {
		_, ttl, _ := n1.ControlState()
		return ttl == 6
	})
}

// fakeTelemetry serves a Prometheus exposition whose query-in byte counter
// advances by `step` bytes per scrape, letting tests dial measured load up
// and down at will.
type fakeTelemetry struct {
	mu    sync.Mutex
	total float64
	step  float64
	srv   *http.Server
	addr  string
}

func newFakeTelemetry(t *testing.T, step float64) *fakeTelemetry {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("telemetry listen: %v", err)
	}
	f := &fakeTelemetry{step: step, addr: ln.Addr().String()}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.total += f.step
		v := f.total
		f.mu.Unlock()
		key := metrics.SeriesKey(metrics.MetricMessageBytes,
			metrics.Label{Name: "type", Value: metrics.ClassQuery.String()},
			metrics.Label{Name: "dir", Value: metrics.DirIn.String()})
		fmt.Fprintf(w, "%s %g\n", key, v)
	})
	f.srv = &http.Server{Handler: mux}
	go f.srv.Serve(ln)
	t.Cleanup(func() { f.srv.Close() })
	return f
}

func (f *fakeTelemetry) setStep(step float64) {
	f.mu.Lock()
	f.step = step
	f.mu.Unlock()
}

func TestHotspotSplitsAndUnderloadCoalesces(t *testing.T) {
	n := startNode(t, "sp-0-0", p2p.Options{MaxClients: 5, TTL: 7})
	tel := newFakeTelemetry(t, 1e7) // ~2 Gbit/s measured at a 40ms scrape
	opts := testOptions([]NodeConfig{{ID: "sp-0-0", Addr: n.Addr(), Telemetry: tel.addr}})
	opts.Limit = analysis.Load{InBps: 1e6}
	opts.SustainTicks = 2
	opts.CooldownTicks = 2
	c := New(opts)
	c.Start()
	defer c.Close()

	waitFor(t, "hotspot declared", func() bool { return hasEvent(c, EvHotspot, "sp-0-0") })
	waitFor(t, "split applied", func() bool {
		// ClientCapacity/2, TTL decayed at least one step (a second hotspot
		// episode may already have decayed further).
		_, ttl, maxClients := n.ControlState()
		return maxClients == 2 && ttl < 7
	})

	// The flow dries up: sustained underload should coalesce — capacity
	// opens up and the decayed TTL is restored.
	tel.setStep(0)
	waitFor(t, "underload declared", func() bool { return hasEvent(c, EvUnderload, "sp-0-0") })
	waitFor(t, "coalesce applied", func() bool {
		_, ttl, maxClients := n.ControlState()
		return maxClients == 10 && ttl == 7
	})
}

func TestPredictedLoad(t *testing.T) {
	var b metrics.ByClass
	b[metrics.ClassQuery][metrics.DirIn] = 100
	b[metrics.ClassQuery][metrics.DirOut] = 50
	b[metrics.ClassOther][metrics.DirIn] = 20
	l := PredictedLoad(b, 1.5)
	if l.InBps != 180 || l.OutBps != 75 {
		t.Fatalf("PredictedLoad = %+v, want {180 75}", l)
	}
}

func TestBackoffDelayGrowsAndCaps(t *testing.T) {
	b := Backoff{Initial: 100 * time.Millisecond, Max: 400 * time.Millisecond, Multiplier: 2, Jitter: -1}
	b.setDefaults()
	got := []time.Duration{b.delay(0, nil), b.delay(1, nil), b.delay(2, nil), b.delay(5, nil)}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond, 400 * time.Millisecond}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("delay(%d) = %v, want %v", i, got[i], want[i])
		}
	}
}
