package control

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"spnet/internal/gnutella"
	"spnet/internal/stats"
)

// Protocol literals shared with internal/p2p's handshake.
const (
	helloControl = "SPNET/1.0 CONTROL"
	helloOK      = "SPNET/1.0 OK"
)

// Backoff shapes the seeded exponential backoff every control RPC retry and
// every link redial uses — the same discipline as the supervised client.
type Backoff struct {
	// Initial is the first retry delay (default 100ms).
	Initial time.Duration
	// Max caps the delay (default 2s).
	Max time.Duration
	// Multiplier grows the delay per attempt (default 2).
	Multiplier float64
	// Jitter is the ± fraction of random spread (default 0.2; negative
	// disables jitter entirely, for deterministic schedules).
	Jitter float64
}

func (b *Backoff) setDefaults() {
	if b.Initial <= 0 {
		b.Initial = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	if b.Multiplier < 1 {
		b.Multiplier = 2
	}
	if b.Jitter == 0 {
		b.Jitter = 0.2
	}
	if b.Jitter < 0 || b.Jitter >= 1 {
		b.Jitter = 0
	}
}

// delay computes the attempt'th backoff delay (0-based; attempt 0 waits
// Initial) with seeded jitter.
func (b Backoff) delay(attempt int, rng *stats.RNG) time.Duration {
	d := float64(b.Initial)
	for i := 0; i < attempt; i++ {
		d *= b.Multiplier
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Jitter > 0 {
		d *= 1 + b.Jitter*(2*rng.Float64()-1)
	}
	return time.Duration(d)
}

// agent maintains the control link to one node: dial with seeded backoff,
// handshake, read the node's Register announcement, then pump acks and
// re-registrations until the link dies — and start over. One goroutine per
// node for the life of the controller.
type agent struct {
	ctrl *Controller
	cfg  NodeConfig
	rng  *stats.RNG

	mu   sync.Mutex
	conn net.Conn // nil while the link is down
	// pending routes DirectiveAcks to waiting push calls, keyed by epoch.
	pending map[uint64]chan *gnutella.DirectiveAck
	// registers counts Register frames since the decision loop last looked —
	// the re-registration-storm detector's input.
	registers int
	// bye records a graceful deregistration (node drained, not crashed).
	bye bool
	up  bool
}

func newAgent(c *Controller, cfg NodeConfig, rng *stats.RNG) *agent {
	return &agent{
		ctrl:    c,
		cfg:     cfg,
		rng:     rng,
		pending: make(map[uint64]chan *gnutella.DirectiveAck),
	}
}

// run is the agent's connection-supervision loop.
func (a *agent) run() {
	defer a.ctrl.wg.Done()
	attempt := 0
	for {
		select {
		case <-a.ctrl.stop:
			return
		default:
		}
		conn, err := a.dial()
		if err != nil {
			d := a.ctrl.opts.Backoff.delay(attempt, a.rng)
			attempt++
			select {
			case <-a.ctrl.stop:
				return
			case <-time.After(d):
			}
			continue
		}
		attempt = 0
		a.setConn(conn)
		a.readLoop(conn)
		a.setConn(nil)
		conn.Close()
		// Brief seeded pause before redialing, so a dead node is probed at
		// backoff pace rather than in a tight loop.
		select {
		case <-a.ctrl.stop:
			return
		case <-time.After(a.ctrl.opts.Backoff.delay(0, a.rng)):
		}
	}
}

// dial opens and handshakes the control link.
func (a *agent) dial() (net.Conn, error) {
	c, err := a.ctrl.opts.Dial("tcp", a.cfg.Addr, a.ctrl.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintf(c, "%s\n", helloControl); err != nil {
		c.Close()
		return nil, err
	}
	br := bufio.NewReader(c)
	c.SetReadDeadline(time.Now().Add(a.ctrl.opts.DialTimeout))
	line, err := br.ReadString('\n')
	if err != nil {
		c.Close()
		return nil, err
	}
	if strings.TrimSpace(line) != helloOK {
		c.Close()
		return nil, fmt.Errorf("control: node %s refused: %s", a.cfg.ID, strings.TrimSpace(line))
	}
	c.SetReadDeadline(time.Time{})
	return &bufferedConn{Conn: c, br: br}, nil
}

// bufferedConn keeps the handshake reader's buffered bytes attached to the
// connection for the frame reader.
type bufferedConn struct {
	net.Conn
	br *bufio.Reader
}

func (b *bufferedConn) Read(p []byte) (int, error) { return b.br.Read(p) }

// setConn publishes or clears the live link.
func (a *agent) setConn(c net.Conn) {
	a.mu.Lock()
	a.conn = c
	a.up = c != nil
	if c != nil {
		a.bye = false
	}
	a.mu.Unlock()
	if c == nil {
		a.ctrl.event(Event{Type: EvLinkDown, Node: a.cfg.ID})
	}
}

// linkUp reports whether the control link is currently connected.
func (a *agent) linkUp() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.up
}

// readLoop pumps the link's inbound frames until it errors.
func (a *agent) readLoop(conn net.Conn) {
	for {
		m, err := gnutella.ReadMessageLimit(conn, 1<<16)
		if err != nil {
			return
		}
		switch msg := m.(type) {
		case *gnutella.Register:
			a.handleRegister(msg)
		case *gnutella.DirectiveAck:
			a.mu.Lock()
			ch := a.pending[msg.Epoch]
			a.mu.Unlock()
			if ch != nil {
				select {
				case ch <- msg:
				default:
				}
			}
		case *gnutella.Pong:
			// Liveness only.
		default:
			a.ctrl.opts.Logf("control: unexpected %T from %s", m, a.cfg.ID)
			return
		}
	}
}

// handleRegister ingests a node announcement: adopt its epoch watermark (the
// restart-recovery path — a fresh controller learns the fleet's highest
// applied epoch from these), count it for storm detection, and record byes.
func (a *agent) handleRegister(r *gnutella.Register) {
	a.ctrl.adoptEpoch(r.Epoch)
	a.mu.Lock()
	a.registers++
	if r.Flags == gnutella.RegisterBye {
		a.bye = true
	}
	a.mu.Unlock()
	if r.Flags == gnutella.RegisterBye {
		a.ctrl.event(Event{Type: EvDeregistered, Node: a.cfg.ID, Epoch: r.Epoch})
	} else {
		a.ctrl.event(Event{Type: EvRegistered, Node: a.cfg.ID, Epoch: r.Epoch})
	}
}

// takeRegisters returns and resets the register count, and whether a bye was
// seen, for the decision loop's storm/drain detection.
func (a *agent) takeRegisters() (n int, bye bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	n, bye = a.registers, a.bye
	a.registers = 0
	return n, bye
}

// push sends one directive and waits for its ack, retrying with seeded
// backoff. An Applied=0 (stale) ack still counts as success: the node already
// holds an equal or newer configuration, which is exactly what idempotent
// delivery promises. Fails fast when the link is down — a partitioned
// controller must not block its decision loop on dead RPCs.
func (a *agent) push(d *gnutella.Directive) error {
	var lastErr error
	for attempt := 0; attempt < a.ctrl.opts.PushAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-a.ctrl.stop:
				return fmt.Errorf("control: shutting down")
			case <-time.After(a.ctrl.opts.Backoff.delay(attempt-1, a.rng)):
			}
		}
		ack, err := a.pushOnce(d)
		if err != nil {
			lastErr = err
			continue
		}
		applied := ack.Applied == 1
		a.ctrl.event(Event{Type: EvAcked, Node: a.cfg.ID, Epoch: d.Epoch,
			Detail: fmt.Sprintf("%s applied=%v", d.Action, applied)})
		return nil
	}
	return lastErr
}

func (a *agent) pushOnce(d *gnutella.Directive) (*gnutella.DirectiveAck, error) {
	a.mu.Lock()
	conn := a.conn
	if conn == nil {
		a.mu.Unlock()
		return nil, fmt.Errorf("control: link to %s down", a.cfg.ID)
	}
	ch := make(chan *gnutella.DirectiveAck, 1)
	a.pending[d.Epoch] = ch
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		delete(a.pending, d.Epoch)
		a.mu.Unlock()
	}()

	conn.SetWriteDeadline(time.Now().Add(a.ctrl.opts.RPCTimeout))
	if err := gnutella.WriteMessage(conn, d); err != nil {
		conn.Close() // poison the link; run() redials
		return nil, err
	}
	select {
	case ack := <-ch:
		return ack, nil
	case <-time.After(a.ctrl.opts.RPCTimeout):
		// A silent link (blackholed by a partition, or a wedged node) must
		// not keep looking healthy: poison it so run() goes through a full
		// redial, and later decisions fail fast on a down link instead of
		// burning an RPC timeout each.
		conn.Close()
		return nil, fmt.Errorf("control: ack timeout from %s (epoch %d)", a.cfg.ID, d.Epoch)
	case <-a.ctrl.stop:
		return nil, fmt.Errorf("control: shutting down")
	}
}
