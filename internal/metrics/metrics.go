// Package metrics is a dependency-free metrics layer for the super-peer
// stack: atomic counters, gauges and fixed-bucket histograms collected in a
// Registry that renders Prometheus text format and expvar-style JSON.
//
// The package exists to make the paper's load model measurable: every byte
// and message a node sends or receives is attributed to the Table 2 load
// taxonomy {query, response, join, update, busy, ping} × {in, out} (see
// LoadMeter), so live nodes and simulated nodes report load under the same
// metric names the analytical model predicts.
//
// All hot-path update operations (Counter.Add, FloatCounter.Add, Gauge.Set,
// Histogram.Observe, LoadMeter.Observe, MeteredConn.Read/Write) are
// allocation-free and safe for concurrent use.
package metrics

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float metric, used for
// fractional quantities such as Table 2 processing units.
type FloatCounter struct{ bits atomic.Uint64 }

// Add adds v.
func (c *FloatCounter) Add(v float64) {
	for {
		old := c.bits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Value returns the current sum.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an integer metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Label is one name="value" pair attached to a series.
type Label struct{ Name, Value string }

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

type series struct {
	labels []Label // sorted by label name
	value  func() float64
	hist   *Histogram
}

type family struct {
	name   string
	help   string
	kind   kind
	series []*series
	byKey  map[string]bool
}

// Registry collects metric families and renders them deterministically: the
// output order is registration order for families and series alike, so two
// runs that register the same metrics produce byte-identical exposition.
type Registry struct {
	mu     sync.Mutex
	order  []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) register(name, help string, k kind, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, byKey: make(map[string]bool)}
		r.byName[name] = f
		r.order = append(r.order, f)
	} else if f.kind != k {
		panic(fmt.Sprintf("metrics: %s registered as %v and %v", name, f.kind, k))
	}
	key := renderLabels(s.labels)
	if f.byKey[key] {
		panic(fmt.Sprintf("metrics: duplicate series %s%s", name, key))
	}
	f.byKey[key] = true
	f.series = append(f.series, s)
}

func sortLabels(labels []Label) []Label {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	return ls
}

// Counter creates and registers a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := new(Counter)
	r.CounterFunc(name, help, func() float64 { return float64(c.Value()) }, labels...)
	return c
}

// FloatCounter creates and registers a float-valued counter.
func (r *Registry) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	c := new(FloatCounter)
	r.CounterFunc(name, help, c.Value, labels...)
	return c
}

// CounterFunc registers a counter whose value is read from fn, for metrics
// whose storage lives elsewhere (e.g. a LoadMeter cell).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindCounter, &series{labels: sortLabels(labels), value: fn})
}

// Gauge creates and registers a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := new(Gauge)
	r.GaugeFunc(name, help, func() float64 { return float64(g.Value()) }, labels...)
	return g
}

// GaugeFunc registers a gauge whose value is read from fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, &series{labels: sortLabels(labels), value: fn})
}

// Histogram creates and registers a fixed-bucket histogram with the given
// upper bounds (which must be strictly increasing; a +Inf bucket is implied).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	h := NewHistogram(bounds)
	r.register(name, help, kindHistogram, &series{labels: sortLabels(labels), hist: h})
	return h
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// renderLabels renders a sorted label set as {a="1",b="2"}, or "" when empty.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// SeriesKey returns the canonical "name{labels}" key a series appears under
// in ParsePrometheus output and in WriteVars JSON (labels sorted by name).
func SeriesKey(name string, labels ...Label) string {
	return name + renderLabels(sortLabels(labels))
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.order {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if s.hist != nil {
				if err := writePromHistogram(w, f.name, s); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.labels), fmtFloat(s.value())); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, s *series) error {
	snap := s.hist.Snapshot()
	cum := uint64(0)
	for i, n := range snap.Counts {
		cum += n
		le := "+Inf"
		if i < len(snap.Bounds) {
			le = fmtFloat(snap.Bounds[i])
		}
		labels := append(append([]Label(nil), s.labels...), Label{"le", le})
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(sortLabels(labels)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(s.labels), fmtFloat(snap.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(s.labels), snap.Count)
	return err
}

// WriteVars renders the registry as one JSON object, keyed by SeriesKey.
// Histograms render as {"count": n, "sum": s}. The output is deterministic
// (registration order) and is embedded under the "spnet" key of the
// /debug/vars endpoint.
func (r *Registry) WriteVars(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	first := true
	for _, f := range r.order {
		for _, s := range f.series {
			if !first {
				if _, err := io.WriteString(w, ", "); err != nil {
					return err
				}
			}
			first = false
			key := strconv.Quote(f.name + renderLabels(s.labels))
			var val string
			if s.hist != nil {
				snap := s.hist.Snapshot()
				val = fmt.Sprintf(`{"count": %d, "sum": %s}`, snap.Count, fmtFloat(snap.Sum))
			} else {
				val = fmtFloat(s.value())
			}
			if _, err := fmt.Fprintf(w, "%s: %s", key, val); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "}")
	return err
}

// ErrBadExposition is wrapped by every parse error ParsePrometheus returns
// for malformed input (as opposed to an I/O error from the reader), so
// scrapers can distinguish a corrupt payload from a broken transport with
// errors.Is.
var ErrBadExposition = errors.New("metrics: bad exposition format")

// ParsePrometheus parses text exposition format (as produced by
// WritePrometheus) into a map keyed by SeriesKey — series name plus its
// label set sorted by label name. Comment and blank lines are skipped.
// Malformed input yields an error wrapping ErrBadExposition; it never
// panics, whatever the bytes.
func ParsePrometheus(r io.Reader) (map[string]float64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("%w: malformed line %q", ErrBadExposition, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad value in %q: %v", ErrBadExposition, line, err)
		}
		canon, err := canonicalSeriesKey(key)
		if err != nil {
			return nil, err
		}
		out[canon] = val
	}
	return out, nil
}

// canonicalSeriesKey re-renders "name{b="2",a="1"}" with labels sorted.
func canonicalSeriesKey(key string) (string, error) {
	open := strings.IndexByte(key, '{')
	if open < 0 {
		return key, nil
	}
	if !strings.HasSuffix(key, "}") {
		return "", fmt.Errorf("%w: malformed series %q", ErrBadExposition, key)
	}
	name, body := key[:open], key[open+1:len(key)-1]
	if name == "" {
		// "{} 0" would canonicalize to an empty, unrepresentable key.
		return "", fmt.Errorf("%w: series %q has no metric name", ErrBadExposition, key)
	}
	var labels []Label
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			return "", fmt.Errorf("%w: malformed labels in %q", ErrBadExposition, key)
		}
		lname := body[:eq]
		rest := body[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			if rest[i] == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if rest[i] == '"' {
				break
			}
			val.WriteByte(rest[i])
		}
		if i >= len(rest) {
			return "", fmt.Errorf("%w: unterminated label value in %q", ErrBadExposition, key)
		}
		labels = append(labels, Label{lname, val.String()})
		body = rest[i+1:]
		body = strings.TrimPrefix(body, ",")
	}
	return SeriesKey(name, labels...), nil
}
