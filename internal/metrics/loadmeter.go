package metrics

// Class is one component of the paper's Table 2 load taxonomy: the kind of
// protocol work a byte or message is attributed to.
type Class uint8

// Load taxonomy classes. Query and Response are the Table 2 query-transfer
// and response-transfer components; Join and Update are the Section 3.2
// metadata actions; Busy is overload shedding and Ping the liveness
// heartbeat (both live-stack additions with no analytical counterpart).
// Transfer is the content download plane (ChunkRequest/ChunkData/ChunkNack):
// the traffic a QueryHit exists to set up, priced as its own class because
// the paper's cost model stops at the hit.
const (
	ClassQuery Class = iota
	ClassResponse
	ClassJoin
	ClassUpdate
	ClassBusy
	ClassPing
	ClassTransfer
	ClassOther

	// NumClasses is the number of taxonomy classes.
	NumClasses = int(ClassOther) + 1
)

var classNames = [NumClasses]string{"query", "response", "join", "update", "busy", "ping", "transfer", "other"}

func (c Class) String() string {
	if int(c) < NumClasses {
		return classNames[c]
	}
	return "other"
}

// Dir is a traffic direction relative to the node being measured.
type Dir uint8

// Directions.
const (
	DirIn Dir = iota
	DirOut

	// NumDirs is the number of directions.
	NumDirs = 2
)

func (d Dir) String() string {
	if d == DirIn {
		return "in"
	}
	return "out"
}

// ByClass is a class × direction matrix of float totals — the value type the
// analysis engine and simulator use to report per-class load alongside the
// live meters.
type ByClass [NumClasses][NumDirs]float64

// Add accumulates v into (c, d).
func (b *ByClass) Add(c Class, d Dir, v float64) { b[c][d] += v }

// Get returns the (c, d) cell.
func (b ByClass) Get(c Class, d Dir) float64 { return b[c][d] }

// Merge adds every cell of o into b.
func (b *ByClass) Merge(o ByClass) {
	for c := range b {
		for d := range b[c] {
			b[c][d] += o[c][d]
		}
	}
}

// Scale returns a copy of b with every cell multiplied by k.
func (b ByClass) Scale(k float64) ByClass {
	for c := range b {
		for d := range b[c] {
			b[c][d] *= k
		}
	}
	return b
}

// Sum returns the total over the given classes in direction d.
func (b ByClass) Sum(d Dir, classes ...Class) float64 {
	t := 0.0
	for _, c := range classes {
		t += b[c][d]
	}
	return t
}

// Total returns the grand total over all classes and directions.
func (b ByClass) Total() float64 {
	t := 0.0
	for c := range b {
		for d := range b[c] {
			t += b[c][d]
		}
	}
	return t
}

// Canonical metric names shared by live nodes, the simulator exporter and
// scrapers. DESIGN.md maps them onto the Table 2 load components.
const (
	// MetricMessages counts protocol messages by taxonomy class and
	// direction.
	MetricMessages = "spnet_messages_total"
	// MetricMessageBytes counts model wire bytes (message payload plus the
	// fixed per-message frame overhead of the cost model) by class and
	// direction — the measured counterpart of the Table 2 bandwidth terms.
	MetricMessageBytes = "spnet_message_bytes_total"
	// MetricConnBytes counts raw socket bytes by direction (framing,
	// handshakes and all).
	MetricConnBytes = "spnet_conn_bytes_total"
	// MetricConnsOpen gauges currently open client + peer connections.
	MetricConnsOpen = "spnet_connections_open"
	// MetricProcUnits accumulates executed processing cost in Table 2 model
	// units (multiply by cost.CyclesPerUnit for Hz).
	MetricProcUnits = "spnet_processing_units_total"
	// MetricQueriesHandled counts queries a super-peer fully serviced.
	MetricQueriesHandled = "spnet_queries_handled_total"
	// MetricQueriesShed counts queries dropped by the overload ladder,
	// labeled by reason and source class.
	MetricQueriesShed = "spnet_queries_shed_total"
	// MetricQueriesForwarded counts query copies forwarded to neighbor
	// super-peers, labeled by routing strategy.
	MetricQueriesForwarded = "spnet_queries_forwarded_total"
	// MetricBusyReceived counts Busy notices received from neighbors.
	MetricBusyReceived = "spnet_busy_received_total"
	// MetricQueryService is the histogram of query service times in seconds.
	MetricQueryService = "spnet_query_service_seconds"
	// MetricHitsDropped counts QueryHits the node refused to relay, labeled
	// by reason: "unsolicited" (no matching outstanding query route) or
	// "forged" (failed trust validation).
	MetricHitsDropped = "spnet_query_hits_dropped_total"
	// MetricPeerReputation gauges the beta-posterior reliability score of
	// each neighbor super-peer link, labeled by peer id. Registered per link
	// when trust-aware mode is on.
	MetricPeerReputation = "spnet_peer_reputation"
	// MetricControlDirectives counts control-plane directives received from a
	// fleet controller, labeled by result: "applied" or "stale" (epoch at or
	// below the last applied one — the idempotent reject).
	MetricControlDirectives = "spnet_control_directives_total"
	// MetricTransferBytes counts verified content payload bytes moved by the
	// transfer plane, by direction. Distinct from the ClassTransfer cells of
	// spnet_message_bytes_total, which charge full wire size (headers, nacks,
	// retried and forged chunks included): the ratio of the two is the
	// transfer plane's wire efficiency.
	MetricTransferBytes = "spnet_transfer_bytes_total"
	// MetricChunksRetried counts chunk fetches re-issued after a timeout,
	// nack, or source failure.
	MetricChunksRetried = "spnet_transfer_chunks_retried_total"
	// MetricChunksForged counts chunks rejected because their bytes did not
	// hash to the manifest entry — the transfer-plane analog of forged
	// QueryHits, debited against the source through internal/trust.
	MetricChunksForged = "spnet_transfer_chunks_forged_total"
	// MetricTransferThroughput is the per-completed-download content
	// throughput histogram in bytes per second.
	MetricTransferThroughput = "spnet_transfer_throughput_bps"
)

// LoadMeter attributes messages and bytes to the load taxonomy. It is the
// "Meter" of the observability subsystem: the p2p codec paths call Observe
// for every message written or read, and the same cells back the
// spnet_messages_total / spnet_message_bytes_total families.
type LoadMeter struct {
	msgs  [NumClasses][NumDirs]Counter
	bytes [NumClasses][NumDirs]Counter
}

// Observe records one message of wireBytes model bytes in class c,
// direction d. Allocation-free.
func (m *LoadMeter) Observe(c Class, d Dir, wireBytes int) {
	m.msgs[c][d].Inc()
	m.bytes[c][d].Add(int64(wireBytes))
}

// Messages returns the message count for (c, d).
func (m *LoadMeter) Messages(c Class, d Dir) int64 { return m.msgs[c][d].Value() }

// Bytes returns the byte total for (c, d).
func (m *LoadMeter) Bytes(c Class, d Dir) int64 { return m.bytes[c][d].Value() }

// BytesByClass snapshots the byte totals as a ByClass matrix.
func (m *LoadMeter) BytesByClass() ByClass {
	var b ByClass
	for c := 0; c < NumClasses; c++ {
		for d := 0; d < NumDirs; d++ {
			b[c][d] = float64(m.bytes[c][d].Value())
		}
	}
	return b
}

// Register exposes the meter's cells on r under the canonical family names,
// class-major then direction, so exposition order is deterministic.
func (m *LoadMeter) Register(r *Registry) {
	for c := 0; c < NumClasses; c++ {
		for d := 0; d < NumDirs; d++ {
			cc, dd := Class(c), Dir(d)
			labels := []Label{{"type", cc.String()}, {"dir", dd.String()}}
			r.CounterFunc(MetricMessages, "Protocol messages by load taxonomy class and direction.",
				func() float64 { return float64(m.msgs[cc][dd].Value()) }, labels...)
		}
	}
	for c := 0; c < NumClasses; c++ {
		for d := 0; d < NumDirs; d++ {
			cc, dd := Class(c), Dir(d)
			labels := []Label{{"type", cc.String()}, {"dir", dd.String()}}
			r.CounterFunc(MetricMessageBytes, "Model wire bytes (incl. frame overhead) by class and direction.",
				func() float64 { return float64(m.bytes[cc][dd].Value()) }, labels...)
		}
	}
}

// ShedReason labels why the overload ladder dropped a query.
type ShedReason uint8

// Shed reasons, in ladder order: the per-client token bucket, the per-conn
// inflight cap, the bounded dispatch queue, and the trust-aware admission
// cap that bounds how much of the queue a low-reputation overlay partner
// may occupy.
const (
	ShedRateLimit ShedReason = iota
	ShedInflight
	ShedQueue
	ShedAdmission

	numShedReasons = 4
)

var shedReasonNames = [numShedReasons]string{"rate_limit", "inflight", "queue_full", "admission"}

func (s ShedReason) String() string {
	if int(s) < numShedReasons {
		return shedReasonNames[s]
	}
	return "other"
}

// Source labels where a query entered the node: a local client leg or a
// forwarded query from a neighbor super-peer.
type Source uint8

// Query source classes.
const (
	SourceClient Source = iota
	SourcePeer

	numSources = 2
)

var sourceNames = [numSources]string{"client", "peer"}

func (s Source) String() string {
	if int(s) < numSources {
		return sourceNames[s]
	}
	return "other"
}

// NodeMetrics is the standard per-node metric set: one registry holding the
// load meter, raw connection byte counters, the open-connection gauge,
// executed processing units, query outcome counters split by shed reason and
// source class, and the query service-time histogram. Live super-peers own
// one each; the simulator exports the same schema per simulated super-peer.
type NodeMetrics struct {
	reg *Registry

	// Load attributes every codec message to class × direction.
	Load *LoadMeter
	// ConnBytes counts raw socket bytes, indexed by Dir.
	ConnBytes [NumDirs]*Counter
	// ConnsOpen gauges open client + peer connections.
	ConnsOpen *Gauge
	// ProcUnits accumulates executed Table 2 processing units.
	ProcUnits *FloatCounter
	// QueriesHandled counts fully serviced queries.
	QueriesHandled *Counter
	// Shed counts dropped queries by [reason][source].
	Shed [numShedReasons][numSources]*Counter
	// BusyReceived counts Busy notices from neighbors.
	BusyReceived *Counter
	// HitsUnsolicited counts QueryHits dropped because no outstanding query
	// route matched their GUID.
	HitsUnsolicited *Counter
	// HitsForged counts QueryHits dropped by trust validation (no dialable
	// responder behind any claimed result).
	HitsForged *Counter
	// QueryService is the query service-time histogram (seconds).
	QueryService *Histogram
	// QueriesForwarded counts query copies sent on to neighbor super-peers.
	// It carries the routing strategy as a label, so it is registered by
	// InitForwarded once the strategy is known, and is nil until then.
	QueriesForwarded *Counter
	// DirectivesApplied / DirectivesStale count control-plane directives by
	// outcome: applied, or rejected as stale by the epoch idempotency rule.
	DirectivesApplied *Counter
	DirectivesStale   *Counter
	// TransferBytes counts verified content payload bytes by direction:
	// DirOut on serving nodes, DirIn on downloaders.
	TransferBytes [NumDirs]*Counter
	// ChunksRetried counts chunk fetches re-issued after timeout/nack/death.
	ChunksRetried *Counter
	// ChunksForged counts hash-mismatched chunks rejected by the downloader.
	ChunksForged *Counter
	// TransferThroughput is the per-download content throughput histogram
	// (bytes per second), observed once per completed download.
	TransferThroughput *Histogram
}

// NewNodeMetrics builds a node metric set on a fresh registry.
func NewNodeMetrics() *NodeMetrics {
	r := NewRegistry()
	nm := &NodeMetrics{reg: r, Load: new(LoadMeter)}
	nm.Load.Register(r)
	for d := 0; d < NumDirs; d++ {
		nm.ConnBytes[d] = r.Counter(MetricConnBytes, "Raw socket bytes by direction.",
			Label{"dir", Dir(d).String()})
	}
	nm.ConnsOpen = r.Gauge(MetricConnsOpen, "Open client and peer connections.")
	nm.ProcUnits = r.FloatCounter(MetricProcUnits, "Executed processing cost in Table 2 model units.")
	nm.QueriesHandled = r.Counter(MetricQueriesHandled, "Queries fully serviced by this node.")
	for reason := 0; reason < numShedReasons; reason++ {
		for src := 0; src < numSources; src++ {
			nm.Shed[reason][src] = r.Counter(MetricQueriesShed, "Queries dropped by the overload ladder, by reason and source class.",
				Label{"reason", ShedReason(reason).String()}, Label{"source", Source(src).String()})
		}
	}
	nm.BusyReceived = r.Counter(MetricBusyReceived, "Busy notices received from neighbors.")
	nm.HitsUnsolicited = r.Counter(MetricHitsDropped, "QueryHits refused relay, by reason.",
		Label{"reason", "unsolicited"})
	nm.HitsForged = r.Counter(MetricHitsDropped, "QueryHits refused relay, by reason.",
		Label{"reason", "forged"})
	nm.QueryService = r.Histogram(MetricQueryService, "Query service time in seconds.", DefLatencyBuckets)
	nm.DirectivesApplied = r.Counter(MetricControlDirectives, "Control-plane directives by outcome.",
		Label{"result", "applied"})
	nm.DirectivesStale = r.Counter(MetricControlDirectives, "Control-plane directives by outcome.",
		Label{"result", "stale"})
	for d := 0; d < NumDirs; d++ {
		nm.TransferBytes[d] = r.Counter(MetricTransferBytes, "Verified content payload bytes by direction.",
			Label{"dir", Dir(d).String()})
	}
	nm.ChunksRetried = r.Counter(MetricChunksRetried, "Chunk fetches re-issued after timeout, nack or source failure.")
	nm.ChunksForged = r.Counter(MetricChunksForged, "Hash-mismatched chunks rejected by the downloader.")
	nm.TransferThroughput = r.Histogram(MetricTransferThroughput, "Per-download content throughput in bytes per second.", DefThroughputBuckets)
	return nm
}

// InitForwarded registers the forwarded-query counter under the given
// routing-strategy label. Call exactly once, during node setup before any
// traffic is served; the registry rejects duplicate registration.
func (nm *NodeMetrics) InitForwarded(strategy string) {
	nm.QueriesForwarded = nm.reg.Counter(MetricQueriesForwarded,
		"Query copies forwarded to neighbor super-peers, by routing strategy.",
		Label{"strategy", strategy})
}

// Registry returns the registry backing this metric set.
func (nm *NodeMetrics) Registry() *Registry { return nm.reg }

// ShedTotal sums shed queries across all reasons for one source class.
func (nm *NodeMetrics) ShedTotal(src Source) int64 {
	t := int64(0)
	for reason := 0; reason < numShedReasons; reason++ {
		t += nm.Shed[reason][src].Value()
	}
	return t
}
