package metrics

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
)

// Handler serves the standard telemetry surface for one registry:
//
//   - /metrics      — Prometheus text exposition (version 0.0.4)
//   - /debug/vars   — expvar-style JSON: the process globals published via
//     the expvar package (cmdline, memstats) plus the registry under the
//     "spnet" key
//   - /debug/pprof/ — the net/http/pprof profiles
//
// The pprof handlers are wired explicitly onto a private mux rather than
// relying on the net/http/pprof init side effects on http.DefaultServeMux,
// so multiple nodes in one process can each serve their own telemetry
// address. Likewise /debug/vars renders the registry directly instead of
// expvar.Publish, which is global and panics on duplicate names.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value.String())
		})
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		fmt.Fprintf(w, "%q: ", "spnet")
		reg.WriteVars(w)
		fmt.Fprintf(w, "\n}\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
