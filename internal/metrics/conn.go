package metrics

import "net"

// MeteredConn wraps a net.Conn and counts every byte that crosses it into
// two counters. Attribution is at the socket layer — handshake lines and
// partial frames included — complementing the message-level LoadMeter.
// Read and Write add one atomic counter update each and are allocation-free.
type MeteredConn struct {
	net.Conn
	in, out *Counter
}

// NewMeteredConn wraps c, charging received bytes to in and sent bytes to
// out.
func NewMeteredConn(c net.Conn, in, out *Counter) *MeteredConn {
	return &MeteredConn{Conn: c, in: in, out: out}
}

func (m *MeteredConn) Read(p []byte) (int, error) {
	n, err := m.Conn.Read(p)
	if n > 0 {
		m.in.Add(int64(n))
	}
	return n, err
}

func (m *MeteredConn) Write(p []byte) (int, error) {
	n, err := m.Conn.Write(p)
	if n > 0 {
		m.out.Add(int64(n))
	}
	return n, err
}
