package metrics

import (
	"io"
	"net"
	"testing"
	"time"
)

// BenchmarkCounterHotPath measures the cost of one hot-path counter update.
func BenchmarkCounterHotPath(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
	if c.Value() == 0 {
		b.Fatal("counter never incremented")
	}
}

// BenchmarkLoadMeterObserve measures one full message attribution.
func BenchmarkLoadMeterObserve(b *testing.B) {
	var m LoadMeter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Observe(ClassQuery, DirIn, 138)
	}
}

// nopConn is a no-op net.Conn, isolating the metering overhead itself.
type nopConn struct{ net.Conn }

func (nopConn) Write(p []byte) (int, error) { return len(p), nil }
func (nopConn) Read(p []byte) (int, error)  { return len(p), nil }
func (nopConn) Close() error                { return nil }
func (nopConn) SetDeadline(time.Time) error { return nil }

func TestMeteredConnAllocFree(t *testing.T) {
	var in, out Counter
	mc := NewMeteredConn(nopConn{}, &in, &out)
	buf := make([]byte, 512)
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := mc.Write(buf); err != nil {
			t.Fatal(err)
		}
		if _, err := mc.Read(buf); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("MeteredConn Read+Write allocates %.1f per op, want 0", allocs)
	}
	if in.Value() == 0 || out.Value() == 0 {
		t.Error("metered bytes not counted")
	}
}

func newTCPPair(b *testing.B) (client, server net.Conn) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- c
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	server, ok := <-accepted
	if !ok {
		b.Fatal("accept failed")
	}
	return client, server
}

func benchConnWrites(b *testing.B, c net.Conn, drain net.Conn) {
	go io.Copy(io.Discard, drain) //nolint:errcheck
	buf := make([]byte, 1024)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Write(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeteredConn compares 1 KiB writes over loopback TCP through a
// bare conn vs a MeteredConn — the end-to-end context for the overhead
// budget. Loopback TCP writes carry substantial run-to-run noise (socket
// buffer autotuning, receiver scheduling), so the precise wrapper cost is
// measured by BenchmarkMeteredConnOverhead; this benchmark shows the two
// distributions overlap (see EXPERIMENTS.md for recorded numbers).
func BenchmarkMeteredConn(b *testing.B) {
	b.Run("bare", func(b *testing.B) {
		client, server := newTCPPair(b)
		defer client.Close()
		defer server.Close()
		benchConnWrites(b, client, server)
	})
	b.Run("metered", func(b *testing.B) {
		client, server := newTCPPair(b)
		defer client.Close()
		defer server.Close()
		var in, out Counter
		benchConnWrites(b, NewMeteredConn(client, &in, &out), server)
	})
}

// BenchmarkMeteredConnOverhead isolates the wrapper's per-write cost with a
// no-op inner conn: the bare/metered delta is the exact metering overhead
// per call, free of kernel noise. Divided by the ~1 µs a real loopback TCP
// write costs (BenchmarkMeteredConn), it is the overhead fraction asserted
// to stay under 5%.
func BenchmarkMeteredConnOverhead(b *testing.B) {
	buf := make([]byte, 1024)
	b.Run("bare", func(b *testing.B) {
		var c net.Conn = nopConn{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.Write(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("metered", func(b *testing.B) {
		var in, out Counter
		var c net.Conn = NewMeteredConn(nopConn{}, &in, &out)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.Write(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}
