package metrics

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"spnet/internal/faults"
)

// validExposition renders a realistic node scrape: a NodeMetrics registry
// with traffic observed across several load classes, exactly what the fleet
// controller parses in production.
func validExposition(t testing.TB) []byte {
	t.Helper()
	nm := NewNodeMetrics()
	nm.Load.Observe(ClassQuery, DirIn, 412)
	nm.Load.Observe(ClassQuery, DirOut, 1024)
	nm.Load.Observe(ClassResponse, DirOut, 96)
	nm.Load.Observe(ClassJoin, DirIn, 300)
	nm.ConnBytes[DirIn].Add(2048)
	var buf bytes.Buffer
	if err := nm.Registry().WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.Bytes()
}

// sink adapts a bytes.Buffer to net.Conn so the fault injector's write path
// can mangle an exposition the way a damaged transport would.
type sink struct{ bytes.Buffer }

func (*sink) Read([]byte) (int, error)         { return 0, io.EOF }
func (*sink) Close() error                     { return nil }
func (*sink) LocalAddr() net.Addr              { return nil }
func (*sink) RemoteAddr() net.Addr             { return nil }
func (*sink) SetDeadline(time.Time) error      { return nil }
func (*sink) SetReadDeadline(time.Time) error  { return nil }
func (*sink) SetWriteDeadline(time.Time) error { return nil }

// corruptedExpositions pushes the valid exposition through a faults.Corrupt
// (and truncate) write rule line by line, harvesting damaged scrapes.
func corruptedExpositions(t testing.TB, seed uint64, rule faults.Rule) [][]byte {
	t.Helper()
	ctrl := faults.NewController(seed)
	ctrl.SetRule("scraped", rule)
	valid := validExposition(t)
	var out [][]byte
	for _, line := range strings.SplitAfter(string(valid), "\n") {
		if line == "" {
			continue
		}
		var buf sink
		fc := ctrl.Wrap("scraped", "", &buf)
		fc.Write([]byte(line)) // error expected for truncating rules
		if buf.Len() > 0 {
			out = append(out, append([]byte(nil), buf.Bytes()...))
		}
	}
	return out
}

// FuzzParsePrometheus hammers the exposition parser with arbitrary bytes —
// the bytes a controller reads off a possibly-damaged telemetry socket. The
// contract: never panic, and every rejection is typed (wraps
// ErrBadExposition), so scrapers can tell corrupt payloads from transport
// errors.
func FuzzParsePrometheus(f *testing.F) {
	f.Add(string(validExposition(f)))
	for _, b := range corruptedExpositions(f, 3, faults.Rule{CorruptProb: 1}) {
		f.Add(string(b))
	}
	for _, b := range corruptedExpositions(f, 4, faults.Rule{TruncateProb: 1}) {
		f.Add(string(b))
	}
	f.Add("# comment only\n\n")
	f.Add(`m{a="1",b="2"} 3`)
	f.Add(`m{a="1} 3`)
	f.Add(`m{a="\n\""} NaN`)
	f.Add("m 1e309")
	f.Add("m{} inf\nm -inf")

	f.Fuzz(func(t *testing.T, data string) {
		got, err := ParsePrometheus(strings.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadExposition) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		// Whatever parsed must be canonical: re-parsing the keys must be a
		// fixed point (labels sorted, escapes normalized).
		for k, v := range got {
			var line strings.Builder
			line.WriteString(k)
			line.WriteByte(' ')
			line.WriteString(fmtFloat(v))
			again, err := ParsePrometheus(strings.NewReader(line.String()))
			if err != nil {
				t.Fatalf("canonical key %q does not re-parse: %v", k, err)
			}
			if len(again) != 1 {
				t.Fatalf("canonical key %q re-parsed to %d series", k, len(again))
			}
		}
	})
}

// TestParsePrometheusTypedErrors pins the error contract ParsePrometheus
// documents: every malformed-input failure wraps ErrBadExposition.
func TestParsePrometheusTypedErrors(t *testing.T) {
	bad := []string{
		"just_a_name_no_value",
		"m not-a-number",
		`m{a="1" 3`,
		`m{noquote=1} 3`,
		`m{a="unterminated 3`,
	}
	for _, in := range bad {
		if _, err := ParsePrometheus(strings.NewReader(in)); !errors.Is(err, ErrBadExposition) {
			t.Errorf("ParsePrometheus(%q) error = %v, want ErrBadExposition", in, err)
		}
	}
	// I/O failures are NOT exposition errors: the transport error surfaces
	// unwrapped so scrapers can tell the two apart.
	if _, err := ParsePrometheus(failingReader{}); errors.Is(err, ErrBadExposition) {
		t.Error("transport error misclassified as bad exposition")
	} else if err == nil {
		t.Error("transport error swallowed")
	}

	// The round trip: a real registry's output parses clean.
	got, err := ParsePrometheus(bytes.NewReader(validExposition(t)))
	if err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	key := SeriesKey(MetricMessageBytes, Label{"type", ClassQuery.String()}, Label{"dir", DirIn.String()})
	if got[key] != 412 {
		t.Errorf("%s = %v, want 412", key, got[key])
	}
}

type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, errors.New("socket closed") }
