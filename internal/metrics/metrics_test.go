package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var fc FloatCounter
	var g Gauge
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				fc.Add(0.5)
				g.Add(2)
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("Counter = %d, want %d", got, workers*per)
	}
	if got := fc.Value(); got != workers*per*0.5 {
		t.Errorf("FloatCounter = %v, want %v", got, workers*per*0.5)
	}
	if got := g.Value(); got != workers*per {
		t.Errorf("Gauge = %d, want %d", got, workers*per)
	}
}

func TestRegistryDuplicateSeriesPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x", Label{"a", "1"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate series did not panic")
		}
	}()
	r.Counter("x_total", "x", Label{"a", "1"})
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "x", Label{"a", "1"})
}

func TestSeriesKeySortsLabels(t *testing.T) {
	got := SeriesKey("m", Label{"type", "query"}, Label{"dir", "in"})
	want := `m{dir="in",type="query"}`
	if got != want {
		t.Errorf("SeriesKey = %q, want %q", got, want)
	}
	if got := SeriesKey("m"); got != "m" {
		t.Errorf("SeriesKey no labels = %q, want %q", got, "m")
	}
}

func TestParsePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a", Label{"type", "query"}, Label{"dir", "in"}).Add(7)
	r.Counter("a_total", "a", Label{"type", "response"}, Label{"dir", "out"}).Add(9)
	r.Gauge("g", "g").Set(-3)
	r.Counter("esc_total", "e", Label{"v", `quo"te\back`}).Add(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ParsePrometheus(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ParsePrometheus: %v\ninput:\n%s", err, b.String())
	}
	checks := map[string]float64{
		SeriesKey("a_total", Label{"dir", "in"}, Label{"type", "query"}):     7,
		SeriesKey("a_total", Label{"type", "response"}, Label{"dir", "out"}): 9,
		SeriesKey("g"): -3,
		SeriesKey("esc_total", Label{"v", `quo"te\back`}): 1,
	}
	for k, want := range checks {
		if got[k] != want {
			t.Errorf("parsed[%q] = %v, want %v (all: %v)", k, got[k], want, got)
		}
	}
}

func TestLoadMeter(t *testing.T) {
	var m LoadMeter
	m.Observe(ClassQuery, DirIn, 138)
	m.Observe(ClassQuery, DirIn, 138)
	m.Observe(ClassResponse, DirOut, 500)
	if got := m.Messages(ClassQuery, DirIn); got != 2 {
		t.Errorf("Messages(query,in) = %d, want 2", got)
	}
	if got := m.Bytes(ClassQuery, DirIn); got != 276 {
		t.Errorf("Bytes(query,in) = %d, want 276", got)
	}
	b := m.BytesByClass()
	if b.Get(ClassResponse, DirOut) != 500 {
		t.Errorf("ByClass(response,out) = %v, want 500", b.Get(ClassResponse, DirOut))
	}
	if got := b.Sum(DirIn, ClassQuery, ClassResponse); got != 276 {
		t.Errorf("Sum(in, query+response) = %v, want 276", got)
	}
	if got := b.Total(); got != 776 {
		t.Errorf("Total = %v, want 776", got)
	}
	half := b.Scale(0.5)
	if half.Get(ClassResponse, DirOut) != 250 {
		t.Errorf("Scale(0.5)(response,out) = %v, want 250", half.Get(ClassResponse, DirOut))
	}
	var sum ByClass
	sum.Merge(b)
	sum.Merge(half)
	if got := sum.Get(ClassQuery, DirIn); got != 276+138 {
		t.Errorf("Merge(query,in) = %v, want %v", got, 276+138)
	}
}

func TestNodeMetricsSchema(t *testing.T) {
	nm := NewNodeMetrics()
	nm.Load.Observe(ClassQuery, DirIn, 138)
	nm.ConnBytes[DirOut].Add(999)
	nm.ConnsOpen.Set(4)
	nm.ProcUnits.Add(1.25)
	nm.QueriesHandled.Inc()
	nm.Shed[ShedQueue][SourcePeer].Inc()
	nm.Shed[ShedRateLimit][SourceClient].Add(2)
	nm.BusyReceived.Inc()
	nm.QueryService.Observe(0.002)

	var b strings.Builder
	if err := nm.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	vals, err := ParsePrometheus(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		SeriesKey(MetricMessages, Label{"type", "query"}, Label{"dir", "in"}):                  1,
		SeriesKey(MetricMessageBytes, Label{"type", "query"}, Label{"dir", "in"}):              138,
		SeriesKey(MetricConnBytes, Label{"dir", "out"}):                                        999,
		SeriesKey(MetricConnsOpen):                                                             4,
		SeriesKey(MetricProcUnits):                                                             1.25,
		SeriesKey(MetricQueriesHandled):                                                        1,
		SeriesKey(MetricQueriesShed, Label{"reason", "queue_full"}, Label{"source", "peer"}):   1,
		SeriesKey(MetricQueriesShed, Label{"reason", "rate_limit"}, Label{"source", "client"}): 2,
		SeriesKey(MetricQueriesShed, Label{"reason", "inflight"}, Label{"source", "client"}):   0,
		SeriesKey(MetricBusyReceived):                                                          1,
		SeriesKey(MetricQueryService + "_count"):                                               1,
	}
	for k, want := range checks {
		got, ok := vals[k]
		if !ok {
			t.Errorf("series %q missing from exposition", k)
			continue
		}
		if got != want {
			t.Errorf("series %q = %v, want %v", k, got, want)
		}
	}
	if got := nm.ShedTotal(SourceClient); got != 2 {
		t.Errorf("ShedTotal(client) = %d, want 2", got)
	}
	if got := nm.ShedTotal(SourcePeer); got != 1 {
		t.Errorf("ShedTotal(peer) = %d, want 1", got)
	}
}

func TestHotPathAllocationFree(t *testing.T) {
	var c Counter
	var fc FloatCounter
	var g Gauge
	var m LoadMeter
	h := NewHistogram(DefLatencyBuckets)
	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Add", func() { c.Add(3) }},
		{"FloatCounter.Add", func() { fc.Add(0.25) }},
		{"Gauge.Set", func() { g.Set(7) }},
		{"Histogram.Observe", func() { h.Observe(0.01) }},
		{"LoadMeter.Observe", func() { m.Observe(ClassResponse, DirOut, 321) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", tc.name, allocs)
		}
	}
}
