package metrics

import (
	"fmt"
	"sync/atomic"
)

// DefLatencyBuckets are the default upper bounds (seconds) for service-time
// histograms, spanning sub-millisecond local hits to multi-second floods.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// DefThroughputBuckets are the default upper bounds (bytes per second) for
// transfer throughput histograms, spanning rate-capped test links (tens of
// KiB/s) to uncapped loopback transfers (hundreds of MiB/s).
var DefThroughputBuckets = []float64{
	1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24, 1 << 26, 1 << 28,
}

// Histogram is a fixed-bucket histogram: observations land in the first
// bucket whose upper bound is >= the value, with an implicit +Inf overflow
// bucket. Observe is lock-free and allocation-free; Snapshot is a best-effort
// concurrent read (each cell is read atomically, the set of cells is not a
// single consistent cut — totals are exact once writers have quiesced).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    FloatCounter
}

// NewHistogram builds a histogram with the given strictly increasing upper
// bounds. It panics on an empty or non-increasing bound list (a programming
// error, like a bad metric name).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not strictly increasing at %v", bounds[i]))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Snapshot copies the current bucket counts, total count and sum.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Value(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram, suitable for
// merging across nodes or runs.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, strictly increasing
	Counts []uint64  // len(Bounds)+1; last is the +Inf bucket
	Count  uint64
	Sum    float64
}

// Merge adds another snapshot into s. The two snapshots must share the same
// bucket bounds.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) error {
	if len(s.Bounds) != len(o.Bounds) {
		return fmt.Errorf("metrics: merging histograms with %d vs %d buckets", len(s.Bounds), len(o.Bounds))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			return fmt.Errorf("metrics: merging histograms with mismatched bound %v vs %v", s.Bounds[i], o.Bounds[i])
		}
	}
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	return nil
}
