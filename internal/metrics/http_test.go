package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter(MetricMessages, "Protocol messages by load taxonomy class and direction.",
		Label{"type", "query"}, Label{"dir", "in"}).Add(42)
	r.Counter(MetricMessages, "Protocol messages by load taxonomy class and direction.",
		Label{"type", "response"}, Label{"dir", "out"}).Add(7)
	r.FloatCounter(MetricProcUnits, "Executed processing cost in Table 2 model units.").Add(12.5)
	r.Gauge(MetricConnsOpen, "Open client and peer connections.").Set(3)
	h := r.Histogram(MetricQueryService, "Query service time in seconds.", []float64{0.5, 1, 2})
	h.Observe(0.25)
	h.Observe(1.5)
	h.Observe(8)
	return r
}

// TestPrometheusGolden pins the exact text exposition format against a
// checked-in golden file.
func TestPrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/registry.prom")
	if err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != string(want) {
		t.Errorf("Prometheus exposition differs from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(Handler(goldenRegistry()))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	vals, err := ParsePrometheus(strings.NewReader(body))
	if err != nil {
		t.Fatalf("parsing /metrics: %v", err)
	}
	if got := vals[SeriesKey(MetricMessages, Label{"dir", "in"}, Label{"type", "query"})]; got != 42 {
		t.Errorf("scraped messages(query,in) = %v, want 42", got)
	}

	code, body = get("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v\n%s", err, body)
	}
	spnet, ok := vars["spnet"].(map[string]any)
	if !ok {
		t.Fatalf("/debug/vars missing spnet object: %s", body)
	}
	if got := spnet[SeriesKey(MetricConnsOpen)]; got != float64(3) {
		t.Errorf("vars %s = %v, want 3", MetricConnsOpen, got)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("/debug/vars missing memstats")
	}

	code, body = get("/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index does not list profiles:\n%s", body)
	}
}
