package metrics

import (
	"sync"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 1, 1, 1} // (≤1)=0.5,1  (≤10)=5  (≤100)=50  (+Inf)=500
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 5 {
		t.Errorf("Count = %d, want 5", s.Count)
	}
	if s.Sum != 556.5 {
		t.Errorf("Sum = %v, want 556.5", s.Sum)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

// TestHistogramConcurrentWriters hammers one histogram from many goroutines
// while snapshots are taken concurrently, then checks the quiesced totals
// are exact. Run under -race this also proves Observe/Snapshot are safe.
func TestHistogramConcurrentWriters(t *testing.T) {
	h := NewHistogram([]float64{0.25, 0.5, 0.75})
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			if s.Count > workers*per {
				t.Errorf("mid-run Count = %d exceeds total writes %d", s.Count, workers*per)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := float64(w%4) * 0.25 // 0, 0.25, 0.5, 0.75: exact in binary
			for i := 0; i < per; i++ {
				h.Observe(v)
			}
		}()
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()

	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("Count = %d, want %d", s.Count, workers*per)
	}
	// workers 0..7 map to values {0, 0.25, 0.5, 0.75} twice over: 0 and
	// 0.25 both land in the ≤0.25 bucket, 0.5 and 0.75 in their own, and
	// nothing overflows to +Inf.
	wantBuckets := []uint64{4 * per, 2 * per, 2 * per, 0}
	for i, w := range wantBuckets {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	wantSum := 2 * per * (0 + 0.25 + 0.5 + 0.75)
	if s.Sum != float64(wantSum) {
		t.Errorf("Sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 2})
	a.Observe(0.5)
	a.Observe(1.5)
	b.Observe(3)
	sa, sb := a.Snapshot(), b.Snapshot()
	if err := sa.Merge(sb); err != nil {
		t.Fatal(err)
	}
	if sa.Count != 3 || sa.Counts[0] != 1 || sa.Counts[1] != 1 || sa.Counts[2] != 1 {
		t.Errorf("merged = %+v", sa)
	}
	if sa.Sum != 5 {
		t.Errorf("merged Sum = %v, want 5", sa.Sum)
	}

	c := NewHistogram([]float64{1, 3}).Snapshot()
	if err := sa.Merge(c); err == nil {
		t.Error("merging mismatched bounds did not error")
	}
	d := NewHistogram([]float64{1}).Snapshot()
	if err := sa.Merge(d); err == nil {
		t.Error("merging different bucket counts did not error")
	}
}

// TestHistogramConcurrentMerge merges per-worker snapshots taken after each
// worker finishes, under -race, and checks the combined totals.
func TestHistogramConcurrentMerge(t *testing.T) {
	const workers, per = 6, 500
	snaps := make([]HistogramSnapshot, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := NewHistogram([]float64{10, 20})
			for i := 0; i < per; i++ {
				h.Observe(float64(w * 5)) // 0,5 → b0; 10 → b0; 15,20 → b1; 25 → +Inf
			}
			snaps[w] = h.Snapshot()
		}()
	}
	wg.Wait()
	total := snaps[0]
	for _, s := range snaps[1:] {
		if err := total.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	if total.Count != workers*per {
		t.Fatalf("merged Count = %d, want %d", total.Count, workers*per)
	}
	if total.Counts[0] != 3*per || total.Counts[1] != 2*per || total.Counts[2] != per {
		t.Errorf("merged buckets = %v", total.Counts)
	}
}
