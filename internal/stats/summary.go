package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the mean and a 95% confidence interval over repeated trials,
// matching the paper's Step 4 ("We also calculate 95% confidence intervals
// for E[M|I]").
type Summary struct {
	Mean   float64
	CI95   float64 // half-width of the 95% confidence interval around Mean
	StdDev float64
	N      int
}

// Summarize computes the mean, sample standard deviation and the half-width
// of a 95% confidence interval for the mean of xs. For the small trial counts
// the paper uses, a Student-t critical value is applied.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	if n == 1 {
		return Summary{Mean: mean, N: 1}
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	ci := tCrit95(n-1) * sd / math.Sqrt(float64(n))
	return Summary{Mean: mean, CI95: ci, StdDev: sd, N: n}
}

// tCrit95 returns the two-sided 95% Student-t critical value for df degrees
// of freedom (tabulated for small df, 1.96 asymptotically).
func tCrit95(df int) float64 {
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
		2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
		2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
		2.042,
	}
	if df <= 0 {
		return math.NaN()
	}
	if df < len(table) {
		return table[df]
	}
	switch {
	case df < 40:
		return 2.03
	case df < 60:
		return 2.01
	case df < 120:
		return 1.99
	}
	return 1.96
}

func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, s.CI95, s.N)
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for n < 2).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mean := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs using linear
// interpolation between order statistics. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	pos := p / 100 * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Bucket is one group of a grouped histogram: the set of sample values that
// share an integer key (e.g. super-peer loads grouped by outdegree, as in
// the paper's Figures 7 and 8).
type Bucket struct {
	Key    int
	Mean   float64
	StdDev float64
	N      int
}

// GroupByKey buckets (key, value) samples by key and reports per-bucket mean
// and standard deviation, sorted by key ascending.
func GroupByKey(keys []int, values []float64) []Bucket {
	if len(keys) != len(values) {
		panic(fmt.Sprintf("stats: GroupByKey length mismatch: %d keys, %d values", len(keys), len(values)))
	}
	byKey := make(map[int][]float64)
	for i, k := range keys {
		byKey[k] = append(byKey[k], values[i])
	}
	out := make([]Bucket, 0, len(byKey))
	for k, vs := range byKey {
		out = append(out, Bucket{Key: k, Mean: Mean(vs), StdDev: StdDev(vs), N: len(vs)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Welford accumulates a running mean and variance without storing samples.
// The simulator uses it for per-node load estimates over long runs.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples seen.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }
