package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalSampleMoments(t *testing.T) {
	r := NewRNG(1)
	d := Normal{Mean: 10, StdDev: 2}
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("mean = %v, want ~10", mean)
	}
	if math.Abs(sd-2) > 0.05 {
		t.Errorf("stddev = %v, want ~2", sd)
	}
}

func TestNormalSampleNonNegInt(t *testing.T) {
	r := NewRNG(2)
	d := Normal{Mean: 1, StdDev: 5} // frequently negative before clamping
	for i := 0; i < 10000; i++ {
		if v := d.SampleNonNegInt(r, 0); v < 0 {
			t.Fatalf("SampleNonNegInt = %d, want >= 0", v)
		}
	}
	// Clamp floor is honored.
	for i := 0; i < 1000; i++ {
		if v := d.SampleNonNegInt(r, 3); v < 3 {
			t.Fatalf("SampleNonNegInt(min=3) = %d", v)
		}
	}
}

func TestBoundedParetoRange(t *testing.T) {
	r := NewRNG(3)
	d := BoundedPareto{Alpha: 1.2, L: 1, H: 1000}
	for i := 0; i < 10000; i++ {
		v := d.Sample(r)
		if v < d.L || v > d.H {
			t.Fatalf("Sample() = %v outside [%v, %v]", v, d.L, d.H)
		}
	}
}

func TestBoundedParetoMeanMatchesSamples(t *testing.T) {
	for _, d := range []BoundedPareto{
		{Alpha: 1.2, L: 1, H: 1000},
		{Alpha: 0.8, L: 2, H: 500},
		{Alpha: 2.0, L: 1, H: 100},
	} {
		r := NewRNG(4)
		const n = 400000
		var sum float64
		for i := 0; i < n; i++ {
			sum += d.Sample(r)
		}
		got := sum / n
		want := d.Mean()
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("alpha=%v: sample mean %v, analytic mean %v", d.Alpha, got, want)
		}
	}
}

func TestBoundedParetoMeanAlphaOne(t *testing.T) {
	d := BoundedPareto{Alpha: 1, L: 1, H: math.E}
	// E[X] = L·H/(H-L)·ln(H/L) = e/(e-1).
	want := math.E / (math.E - 1)
	if got := d.Mean(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Mean() = %v, want %v", got, want)
	}
}

func TestZipfProbabilitiesSumToOne(t *testing.T) {
	for _, n := range []int{1, 10, 1000} {
		z := NewZipf(n, 1.0)
		var sum float64
		for k := 0; k < n; k++ {
			sum += z.P(k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("n=%d: probabilities sum to %v", n, sum)
		}
	}
}

func TestZipfMonotone(t *testing.T) {
	z := NewZipf(100, 0.8)
	for k := 1; k < z.N(); k++ {
		if z.P(k) > z.P(k-1) {
			t.Fatalf("P(%d)=%v > P(%d)=%v; Zipf must be non-increasing", k, z.P(k), k-1, z.P(k-1))
		}
	}
}

func TestZipfSampleMatchesPMF(t *testing.T) {
	z := NewZipf(20, 1.0)
	r := NewRNG(5)
	const draws = 200000
	counts := make([]int, z.N())
	for i := 0; i < draws; i++ {
		counts[z.Sample(r)]++
	}
	for k := 0; k < z.N(); k++ {
		got := float64(counts[k]) / draws
		want := z.P(k)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rank %d: empirical %v, pmf %v", k, got, want)
		}
	}
}

func TestZipfUniformWhenExponentZero(t *testing.T) {
	z := NewZipf(7, 0)
	for k := 0; k < 7; k++ {
		if math.Abs(z.P(k)-1.0/7) > 1e-12 {
			t.Errorf("P(%d) = %v, want 1/7", k, z.P(k))
		}
	}
}

func TestDiscreteAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 0, 3, 6}
	d := NewDiscrete(weights)
	r := NewRNG(6)
	const draws = 300000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[d.Sample(r)]++
	}
	for i, w := range weights {
		got := float64(counts[i]) / draws
		want := w / 10
		if math.Abs(got-want) > 0.005 {
			t.Errorf("outcome %d: empirical %v, want %v", i, got, want)
		}
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight outcome sampled %d times", counts[1])
	}
}

func TestDiscretePNormalized(t *testing.T) {
	if err := quick.Check(func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		var sum float64
		for i, v := range raw {
			weights[i] = float64(v)
			sum += weights[i]
		}
		if sum == 0 {
			return true // all-zero weight vectors panic by contract
		}
		d := NewDiscrete(weights)
		var total float64
		for i := 0; i < d.N(); i++ {
			total += d.P(i)
		}
		return math.Abs(total-1) < 1e-9
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestDiscretePanicsOnBadInput(t *testing.T) {
	for name, weights := range map[string][]float64{
		"empty":    {},
		"all-zero": {0, 0},
		"negative": {1, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDiscrete(%s) did not panic", name)
				}
			}()
			NewDiscrete(weights)
		}()
	}
}

func TestBinomialBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint16, pRaw uint16) bool {
		n := int(nRaw % 500)
		p := float64(pRaw) / math.MaxUint16
		r := NewRNG(seed)
		v := Binomial(r, n, p)
		return v >= 0 && v <= n
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialMean(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{
		{100, 0.01}, {100, 0.3}, {10000, 0.001}, {50000, 0.002}, {10, 0.9},
	} {
		r := NewRNG(7)
		const draws = 20000
		var sum float64
		for i := 0; i < draws; i++ {
			sum += float64(Binomial(r, tc.n, tc.p))
		}
		got := sum / draws
		want := float64(tc.n) * tc.p
		tol := 4 * math.Sqrt(want*(1-tc.p)/draws)
		if math.Abs(got-want) > tol+0.01 {
			t.Errorf("n=%d p=%v: mean %v, want %v ± %v", tc.n, tc.p, got, want, tol)
		}
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	r := NewRNG(8)
	if got := Binomial(r, 0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d, want 0", got)
	}
	if got := Binomial(r, 10, 0); got != 0 {
		t.Errorf("Binomial(10, 0) = %d, want 0", got)
	}
	if got := Binomial(r, 10, 1); got != 10 {
		t.Errorf("Binomial(10, 1) = %d, want 10", got)
	}
}
