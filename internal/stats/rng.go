// Package stats provides the deterministic random substrate used throughout
// the super-peer evaluation framework: a splittable PRNG, the distributions
// the paper's evaluation model needs (normal cluster sizes, heavy-tailed file
// counts and lifespans, Zipf query popularity), and the summary statistics
// used to report results (means, 95% confidence intervals, histograms).
//
// Every source of randomness in the repository flows through an *RNG so that
// experiments are reproducible from a single seed.
package stats

import (
	"math"
	"math/bits"
)

// RNG is a deterministic, splittable pseudo-random number generator.
//
// The core generator is xoshiro256**, seeded through SplitMix64 so that any
// 64-bit seed (including 0) yields a well-mixed state. Split derives an
// independent child stream from a label, which lets concurrent experiment
// trials and per-node event streams stay reproducible regardless of
// scheduling order.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitMix64(sm)
	}
	return r
}

// splitMix64 advances a SplitMix64 state and returns (nextState, output).
func splitMix64(x uint64) (uint64, uint64) {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return x, z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new RNG whose stream is statistically independent of r's
// and of any other Split with a different label. It advances r once.
func (r *RNG) Split(label uint64) *RNG {
	return NewRNG(r.Uint64() ^ (label * 0x9e3779b97f4a7c15))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	x := r.Uint64()
	m := uint64(n)
	hi, lo := bits.Mul64(x, m)
	if lo < m {
		thresh := -m % m
		for lo < thresh {
			x = r.Uint64()
			hi, lo = bits.Mul64(x, m)
		}
	}
	return int(hi)
}

// NormFloat64 returns a standard normal variate (mean 0, stddev 1) using the
// polar Marsaglia method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
