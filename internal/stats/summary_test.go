package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Mean != 3 {
		t.Errorf("Mean = %v, want 3", s.Mean)
	}
	if s.N != 5 {
		t.Errorf("N = %d, want 5", s.N)
	}
	wantSD := math.Sqrt(2.5)
	if math.Abs(s.StdDev-wantSD) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", s.StdDev, wantSD)
	}
	// CI half-width = t(4) * sd / sqrt(5) = 2.776 * 1.5811 / 2.2360.
	wantCI := 2.776 * wantSD / math.Sqrt(5)
	if math.Abs(s.CI95-wantCI) > 1e-9 {
		t.Errorf("CI95 = %v, want %v", s.CI95, wantCI)
	}
}

func TestSummarizeDegenerate(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("Summarize(nil) = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.N != 1 || s.CI95 != 0 {
		t.Errorf("Summarize single = %+v", s)
	}
}

func TestSummarizeConstantSeries(t *testing.T) {
	s := Summarize([]float64{4, 4, 4, 4})
	if s.StdDev != 0 || s.CI95 != 0 {
		t.Errorf("constant series has StdDev=%v CI95=%v, want 0", s.StdDev, s.CI95)
	}
}

func TestCI95CoversMeanProperty(t *testing.T) {
	// For normal samples, ~95% of computed intervals should contain the true
	// mean. Check the coverage is within a loose band.
	r := NewRNG(101)
	const trials = 2000
	covered := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, 10)
		for j := range xs {
			xs[j] = 5 + 2*r.NormFloat64()
		}
		s := Summarize(xs)
		if math.Abs(s.Mean-5) <= s.CI95 {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.92 || rate > 0.98 {
		t.Errorf("CI coverage = %v, want ~0.95", rate)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestGroupByKey(t *testing.T) {
	keys := []int{2, 1, 2, 1, 3}
	vals := []float64{10, 1, 20, 3, 7}
	buckets := GroupByKey(keys, vals)
	if len(buckets) != 3 {
		t.Fatalf("got %d buckets, want 3", len(buckets))
	}
	if buckets[0].Key != 1 || buckets[1].Key != 2 || buckets[2].Key != 3 {
		t.Fatalf("buckets not sorted by key: %+v", buckets)
	}
	if buckets[0].Mean != 2 || buckets[0].N != 2 {
		t.Errorf("bucket key 1 = %+v, want mean 2 n 2", buckets[0])
	}
	if buckets[1].Mean != 15 {
		t.Errorf("bucket key 2 mean = %v, want 15", buckets[1].Mean)
	}
	if buckets[2].N != 1 || buckets[2].StdDev != 0 {
		t.Errorf("singleton bucket = %+v", buckets[2])
	}
}

func TestGroupByKeyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GroupByKey with mismatched lengths did not panic")
		}
	}()
	GroupByKey([]int{1}, []float64{1, 2})
}

func TestWelfordMatchesBatch(t *testing.T) {
	if err := quick.Check(func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		var w Welford
		for i, v := range raw {
			xs[i] = float64(v)
			w.Add(xs[i])
		}
		s := Summarize(xs)
		return math.Abs(w.Mean()-s.Mean) < 1e-9 &&
			math.Abs(w.StdDev()-s.StdDev) < 1e-9 &&
			w.N() == s.N
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanStdDevHelpers(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("StdDev of single sample != 0")
	}
	if got := Mean([]float64{2, 4}); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{Mean: 1.5, CI95: 0.25, N: 4}
	if got := s.String(); got == "" {
		t.Error("String() empty")
	}
}
