package stats

import (
	"fmt"
	"math"
)

// Normal is a normal (Gaussian) distribution. The paper draws cluster sizes
// from N(c̄, .2c̄) (Section 4, Step 1).
type Normal struct {
	Mean   float64
	StdDev float64
}

// Sample draws one variate.
func (d Normal) Sample(r *RNG) float64 { return d.Mean + d.StdDev*r.NormFloat64() }

// SampleNonNegInt draws a variate rounded to the nearest integer, clamped to
// be >= min. Cluster sizes and file counts must be non-negative integers.
func (d Normal) SampleNonNegInt(r *RNG, min int) int {
	v := int(math.Round(d.Sample(r)))
	if v < min {
		return min
	}
	return v
}

// BoundedPareto is a Pareto distribution truncated to [L, H]. It is the
// heavy-tailed workhorse used to model per-peer file counts and session
// lifespans after the Gnutella measurements of Saroiu et al. [22]
// (see DESIGN.md, substitution 2).
type BoundedPareto struct {
	Alpha float64 // tail exponent, > 0
	L     float64 // lower bound, > 0
	H     float64 // upper bound, > L
}

// Sample draws one variate by inverse-transform sampling.
func (d BoundedPareto) Sample(r *RNG) float64 {
	u := r.Float64()
	la := math.Pow(d.L, d.Alpha)
	ha := math.Pow(d.H, d.Alpha)
	// Inverse CDF of the bounded Pareto.
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/d.Alpha)
}

// Mean returns the analytic mean of the bounded Pareto.
func (d BoundedPareto) Mean() float64 {
	a := d.Alpha
	if a == 1 {
		return d.L * d.H / (d.H - d.L) * math.Log(d.H/d.L)
	}
	la := math.Pow(d.L, a)
	return a * la * (math.Pow(d.L, 1-a) - math.Pow(d.H, 1-a)) /
		((a - 1) * (1 - math.Pow(d.L/d.H, a)))
}

// Zipf holds normalized Zipf probabilities over ranks 1..N:
// P(rank k) ∝ 1/k^S. The query model uses it for query popularity g(j).
type Zipf struct {
	weights []float64 // normalized probabilities, index 0 = rank 1
	cum     []float64 // cumulative, for sampling
}

// NewZipf builds a Zipf distribution over n ranks with exponent s. It panics
// if n <= 0 or s < 0, which indicate a programming error in the caller.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("stats: NewZipf n = %d, want > 0", n))
	}
	if s < 0 {
		panic(fmt.Sprintf("stats: NewZipf s = %v, want >= 0", s))
	}
	z := &Zipf{
		weights: make([]float64, n),
		cum:     make([]float64, n),
	}
	var sum float64
	for k := 0; k < n; k++ {
		z.weights[k] = 1 / math.Pow(float64(k+1), s)
		sum += z.weights[k]
	}
	var c float64
	for k := 0; k < n; k++ {
		z.weights[k] /= sum
		c += z.weights[k]
		z.cum[k] = c
	}
	z.cum[n-1] = 1 // guard against rounding
	return z
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.weights) }

// P returns the probability of rank k (0-based).
func (z *Zipf) P(k int) float64 { return z.weights[k] }

// Sample draws a 0-based rank.
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	// Binary search the cumulative table.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Discrete is a general finite discrete distribution sampled in O(1) via
// Walker's alias method. The simulator uses it for query-class draws.
type Discrete struct {
	n     int
	prob  []float64
	alias []int
	p     []float64 // original normalized probabilities
}

// NewDiscrete builds an alias table for the given non-negative weights.
// It panics if weights is empty or sums to zero.
func NewDiscrete(weights []float64) *Discrete {
	n := len(weights)
	if n == 0 {
		panic("stats: NewDiscrete with no weights")
	}
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("stats: NewDiscrete weight[%d] = %v, want >= 0", i, w))
		}
		sum += w
	}
	if sum == 0 {
		panic("stats: NewDiscrete weights sum to zero")
	}
	d := &Discrete{
		n:     n,
		prob:  make([]float64, n),
		alias: make([]int, n),
		p:     make([]float64, n),
	}
	scaled := make([]float64, n)
	for i, w := range weights {
		d.p[i] = w / sum
		scaled[i] = d.p[i] * float64(n)
	}
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, s := range scaled {
		if s < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		d.prob[s] = scaled[s]
		d.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		d.prob[i] = 1
		d.alias[i] = i
	}
	for _, i := range small {
		d.prob[i] = 1
		d.alias[i] = i
	}
	return d
}

// P returns the normalized probability of outcome i.
func (d *Discrete) P(i int) float64 { return d.p[i] }

// N returns the number of outcomes.
func (d *Discrete) N() int { return d.n }

// Sample draws one outcome index.
func (d *Discrete) Sample(r *RNG) int {
	i := r.Intn(d.n)
	if r.Float64() < d.prob[i] {
		return i
	}
	return d.alias[i]
}

// Binomial samples the number of successes in n independent trials with
// success probability p. The simulator uses it to draw how many of a
// collection's files match a query (Appendix B's binomial(n, p) model).
// For small n·p it uses inversion; otherwise a normal approximation with
// continuity correction, clamped to [0, n].
func Binomial(r *RNG, n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	mean := float64(n) * p
	if mean < 30 && n < 10000 {
		// Inversion by sequential search from the mode is O(n·p) expected.
		q := 1 - p
		// P(X = 0) = q^n computed in log space for stability.
		logq := math.Log(q)
		pk := math.Exp(float64(n) * logq)
		u := r.Float64()
		var k int
		cum := pk
		for cum < u && k < n {
			k++
			pk *= (float64(n-k+1) / float64(k)) * (p / q)
			cum += pk
		}
		return k
	}
	sd := math.Sqrt(mean * (1 - p))
	v := int(math.Round(mean + sd*r.NormFloat64()))
	if v < 0 {
		v = 0
	}
	if v > n {
		v = n
	}
	return v
}
