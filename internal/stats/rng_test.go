package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d for identical seeds", i, got, want)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical draws across different seeds", same)
	}
}

func TestRNGZeroSeedIsUsable(t *testing.T) {
	r := NewRNG(0)
	var zeros int
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Errorf("seed 0 produced %d zero outputs in 100 draws", zeros)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical draws across split children", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	mk := func() *RNG { return NewRNG(9).Split(5) }
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v, want [0, 1)", f)
		}
	}
}

func TestFloat64MeanProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += r.Float64()
		}
		mean := sum / n
		return math.Abs(mean-0.5) < 0.02
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestIntnBoundsProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnUniform(t *testing.T) {
	r := NewRNG(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d, want ~%.0f", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(6)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64() = %v, want >= 0", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(8)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(9)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Errorf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}
