package design

import (
	"math"
	"testing"

	"spnet/internal/stats"
)

func TestPredictEPL(t *testing.T) {
	// Appendix F: EPL ≈ log_d(reach); log_10(500) ≈ 2.7.
	if got := PredictEPL(10, 500); math.Abs(got-2.699) > 0.01 {
		t.Errorf("PredictEPL(10, 500) = %v, want ~2.7", got)
	}
	if !math.IsNaN(PredictEPL(1, 100)) {
		t.Error("outdegree 1 should be NaN")
	}
}

func TestPredictTTL(t *testing.T) {
	// The Figure 9 walk-through: outdegree 20, reach 500 -> EPL ~2.5 ->
	// TTL 3.
	if got := PredictTTL(20, 500); got != 3 {
		t.Errorf("PredictTTL(20, 500) = %d, want 3", got)
	}
	// Appendix F warning: outdegree 10, reach 500 has EPL 2.7 close to its
	// ceiling 3, and setting TTL=3 leaves reach short; predict 4.
	if got := PredictTTL(10, 1000); got != 4 {
		t.Errorf("PredictTTL(10, 1000) = %d, want 4 (EPL=3 exactly, bumped)", got)
	}
	if got := PredictTTL(5, 1); got != 0 {
		t.Errorf("PredictTTL(reach 1) = %d, want 0", got)
	}
	if got := PredictTTL(50, 10); got < 1 {
		t.Errorf("PredictTTL = %d, want >= 1", got)
	}
}

func TestPredictTTLMonotoneInReach(t *testing.T) {
	prev := 0
	for _, reach := range []int{10, 100, 1000, 10000} {
		got := PredictTTL(8, reach)
		if got < prev {
			t.Errorf("TTL not monotone: reach %d -> %d (prev %d)", reach, got, prev)
		}
		prev = got
	}
}

func TestMeasureEPLMatchesFigure9Shape(t *testing.T) {
	rng := stats.NewRNG(1)
	// EPL falls as outdegree rises at fixed reach (the Figure 9 curves).
	epl20, err := MeasureEPL(1500, 20, 500, 3, rng.Split(1))
	if err != nil {
		t.Fatal(err)
	}
	epl5, err := MeasureEPL(1500, 5, 500, 3, rng.Split(2))
	if err != nil {
		t.Fatal(err)
	}
	if epl20 >= epl5 {
		t.Errorf("EPL(outdeg 20) = %v >= EPL(outdeg 5) = %v", epl20, epl5)
	}
	// Figure 9: outdegree 20, reach 500 -> EPL roughly 2.5.
	if epl20 < 1.8 || epl20 > 3.2 {
		t.Errorf("EPL(20, 500) = %v, want ~2.5", epl20)
	}
	// The measured EPL lower-bounds at the Appendix F approximation.
	if approx := PredictEPL(20, 500); epl20 < approx-0.3 {
		t.Errorf("measured %v below approximation %v", epl20, approx)
	}
}

func TestMeasureEPLPlateau(t *testing.T) {
	// Appendix E: at reach 500, raising outdegree 50 -> 100 barely moves the
	// EPL (the paper reports a .14 difference).
	rng := stats.NewRNG(2)
	epl50, err := MeasureEPL(1200, 50, 500, 3, rng.Split(1))
	if err != nil {
		t.Fatal(err)
	}
	epl100, err := MeasureEPL(1200, 100, 500, 3, rng.Split(2))
	if err != nil {
		t.Fatal(err)
	}
	if diff := epl50 - epl100; diff > 0.4 || diff < -0.2 {
		t.Errorf("EPL(50)-EPL(100) = %v, want a small plateau difference", diff)
	}
}

func TestMeasureEPLErrors(t *testing.T) {
	rng := stats.NewRNG(3)
	if _, err := MeasureEPL(0, 3, 10, 1, rng); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestMinOutdegreeForReach(t *testing.T) {
	// Section 5.2: TTL 1, reach 150 clusters needs ~149 neighbors.
	if got := MinOutdegreeForReach(150, 1, 1000); got != 149 {
		t.Errorf("TTL 1 reach 150: outdegree %d, want 149", got)
	}
	// TTL 2, reach 300 clusters: 18 neighbors suffice (18 + 18·17 = 324).
	if got := MinOutdegreeForReach(300, 2, 1000); got != 18 {
		t.Errorf("TTL 2 reach 300: outdegree %d, want 18", got)
	}
	// Infeasible: cap respected.
	if got := MinOutdegreeForReach(1000, 1, 50); got != 51 {
		t.Errorf("infeasible case = %d, want maxOutdegree+1", got)
	}
	if got := MinOutdegreeForReach(1, 3, 10); got != 1 {
		t.Errorf("trivial reach = %d, want 1", got)
	}
}
