package design

import (
	"errors"
	"reflect"
	"testing"

	"spnet/internal/analysis"
)

// gnutellaConstraints mirrors the Section 5.2 walk-through: 100 Kbps each
// way, 10 MHz, 100 open connections.
func gnutellaConstraints() Constraints {
	return Constraints{
		MaxDownBps: 100_000,
		MaxUpBps:   100_000,
		MaxProcHz:  10_000_000,
		MaxConns:   100,
	}
}

func TestProcedureGnutellaRedesignShape(t *testing.T) {
	// A scaled-down version of the Section 5.2 case study (the full-size
	// version runs in the experiments harness): the procedure must produce
	// a clustered topology with TTL far below Gnutella's 7 and meet every
	// constraint it was given.
	goals := Goals{NetworkSize: 4000, DesiredReach: 600}
	plan, err := Run(goals, gnutellaConstraints(), Options{Trials: 1, Seed: 1})
	if err != nil {
		t.Fatalf("Run: %v\nsteps: %v", err, plan)
	}
	cfg := plan.Config
	if cfg.ClusterSize < 2 {
		t.Errorf("cluster size %d: procedure should exploit clustering", cfg.ClusterSize)
	}
	if cfg.TTL >= 7 {
		t.Errorf("TTL = %d, want far below Gnutella's 7", cfg.TTL)
	}
	pred := plan.Predicted
	if pred.SuperPeer.InBps.Mean > 100_000 || pred.SuperPeer.OutBps.Mean > 100_000 {
		t.Errorf("bandwidth limits violated: %+v", pred.SuperPeer)
	}
	if pred.SuperPeer.ProcHz.Mean > 10_000_000 {
		t.Errorf("processing limit violated: %v", pred.SuperPeer.ProcHz.Mean)
	}
	if pred.ReachPeers.Mean < 600*0.95 {
		t.Errorf("reach %v below goal 600", pred.ReachPeers.Mean)
	}
	if plan.ReachShortfall != 0 {
		t.Errorf("reach was reduced by %v, expected full goal met", plan.ReachShortfall)
	}
	conns := cfg.ClusterSize - cfg.Partners() + int(cfg.AvgOutdegree)*cfg.Partners()
	if cfg.Redundancy {
		conns++
	}
	if conns > 100 {
		t.Errorf("connection budget violated: %d", conns)
	}
	if len(plan.Steps) == 0 {
		t.Error("no trace steps recorded")
	}
}

func TestProcedurePrefersLargerClustersWhenAllowed(t *testing.T) {
	// With generous limits the procedure should keep clusters large
	// (rule #1: aggregate load falls with cluster size).
	loose := Constraints{
		MaxDownBps: 1e9, MaxUpBps: 1e9, MaxProcHz: 1e12, MaxConns: 1_000_000,
	}
	plan, err := Run(Goals{NetworkSize: 1000, DesiredReach: 500}, loose, Options{Trials: 1, Seed: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if plan.Config.ClusterSize < 500 {
		t.Errorf("cluster size = %d, want large under loose constraints", plan.Config.ClusterSize)
	}
}

func TestProcedureReducesReachWhenInfeasible(t *testing.T) {
	// Absurdly tight bandwidth forces the "decrease r" escape hatch or an
	// infeasibility error — never a constraint-violating plan.
	tight := Constraints{MaxDownBps: 2_000, MaxUpBps: 2_000, MaxProcHz: 1e7, MaxConns: 40}
	plan, err := Run(Goals{NetworkSize: 2000, DesiredReach: 2000}, tight, Options{Trials: 1, Seed: 3})
	if err != nil {
		if !errors.Is(err, ErrInfeasible) {
			t.Fatalf("unexpected error: %v", err)
		}
		return
	}
	if plan.ReachShortfall <= 0 {
		t.Errorf("expected a reach reduction, got shortfall %v", plan.ReachShortfall)
	}
	if plan.Predicted.SuperPeer.InBps.Mean > tight.MaxDownBps {
		t.Errorf("plan violates the down-bandwidth limit: %v", plan.Predicted.SuperPeer.InBps.Mean)
	}
}

func TestProcedureRedundancyFallback(t *testing.T) {
	// Constraints chosen so redundancy gives headroom: if a plan comes back
	// redundant it must still satisfy the limits.
	cons := gnutellaConstraints()
	cons.AllowRedundancy = true
	plan, err := Run(Goals{NetworkSize: 3000, DesiredReach: 900}, cons, Options{Trials: 1, Seed: 4})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if plan.Predicted.SuperPeer.InBps.Mean > cons.MaxDownBps {
		t.Errorf("limit violated with redundancy fallback")
	}
}

func TestProcedureValidation(t *testing.T) {
	good := gnutellaConstraints()
	if _, err := Run(Goals{NetworkSize: 0, DesiredReach: 1}, good, Options{}); err == nil {
		t.Error("bad goals accepted")
	}
	if _, err := Run(Goals{NetworkSize: 100, DesiredReach: 101}, good, Options{}); err == nil {
		t.Error("reach > size accepted")
	}
	if _, err := Run(Goals{NetworkSize: 100, DesiredReach: 50}, Constraints{}, Options{}); err == nil {
		t.Error("zero constraints accepted")
	}
}

func TestUtilization(t *testing.T) {
	limit := analysis.Load{InBps: 100, OutBps: 200, ProcHz: 1000}
	if got := Utilization(analysis.Load{InBps: 50, OutBps: 100, ProcHz: 100}, limit); got != 0.5 {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
	if got := Utilization(analysis.Load{ProcHz: 2000}, limit); got != 2 {
		t.Errorf("overload = %v, want 2", got)
	}
	if got := Utilization(analysis.Load{InBps: 5}, analysis.Load{}); got != 0 {
		t.Errorf("zero limit should give 0, got %v", got)
	}
}

// TestDesignDeterministicAcrossWorkers: the procedure selects the identical
// plan at any worker count — chunked speculative candidate evaluation scans
// results in serial order, so the first success and the failure memo match a
// serial run exactly.
func TestDesignDeterministicAcrossWorkers(t *testing.T) {
	goals := Goals{NetworkSize: 2000, DesiredReach: 400}
	cons := gnutellaConstraints()
	base, err := Run(goals, cons, Options{Trials: 1, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	for _, w := range []int{2, 4, 0} {
		got, err := Run(goals, cons, Options{Trials: 1, Seed: 3, Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d plan differs from serial:\nserial:   %+v\nparallel: %+v", w, base, got)
		}
	}
}
