// Package design implements the paper's design layer: the global design
// procedure of Figure 10, the TTL/EPL prediction helpers of rule #4 and
// Appendices E–F, and the local decision rules of Section 5.3 that let
// individual super-peers steer toward a globally efficient topology without
// a central coordinator.
package design

import (
	"math"

	"spnet/internal/stats"
	"spnet/internal/topology"
)

// PredictEPL returns the expected path length for the desired reach (in
// clusters) at the given average outdegree, using the Appendix F
// approximation EPL ≈ log_d(reach). It is a lower bound on graphs, where
// cycles lower the effective outdegree.
func PredictEPL(avgOutdegree float64, reachClusters int) float64 {
	return topology.EPLApprox(avgOutdegree, reachClusters)
}

// PredictTTL returns the TTL to use for the desired reach at the given
// average outdegree (rule #4). Appendix F warns that a TTL too close to the
// EPL leaves reach short, since some path lengths exceed the expectation; we
// therefore round the predicted EPL up and add one more hop when the EPL is
// already within a quarter hop of its ceiling.
func PredictTTL(avgOutdegree float64, reachClusters int) int {
	if reachClusters <= 1 {
		return 0
	}
	epl := PredictEPL(avgOutdegree, reachClusters)
	if math.IsNaN(epl) {
		return reachClusters - 1 // degenerate chain: worst case
	}
	ttl := int(math.Ceil(epl))
	if float64(ttl)-epl < 0.25 {
		ttl++
	}
	if ttl < 1 {
		ttl = 1
	}
	return ttl
}

// MeasureEPL experimentally determines the expected path length for a
// desired reach on power-law topologies with the given average outdegree —
// the measurement behind the paper's Figure 9. It averages over `trials`
// generated graphs of n nodes, each probed from a random source.
func MeasureEPL(n int, avgOutdegree float64, reach, trials int, rng *stats.RNG) (float64, error) {
	if trials <= 0 {
		trials = 1
	}
	var sum float64
	count := 0
	for t := 0; t < trials; t++ {
		g, err := topology.PowerLaw(topology.PLODParams{N: n, AvgDeg: avgOutdegree}, rng.Split(uint64(t)))
		if err != nil {
			return 0, err
		}
		src := rng.Intn(n)
		epl := topology.EPLForReach(g, src, reach)
		if !math.IsNaN(epl) {
			sum += epl
			count++
		}
	}
	if count == 0 {
		return math.NaN(), nil
	}
	return sum / float64(count), nil
}

// MinOutdegreeForReach returns the smallest integer outdegree d such that a
// d-regular tree of the given TTL covers reachClusters clusters — the bound
// the Section 5.2 walk-through uses (e.g. 18 neighbors for ~342 clusters at
// TTL 2). Returns maxOutdegree+1 if even the maximum fails.
func MinOutdegreeForReach(reachClusters, ttl, maxOutdegree int) int {
	for d := 1; d <= maxOutdegree; d++ {
		if topology.TreeReachBound(d, ttl) >= float64(reachClusters) {
			return d
		}
	}
	return maxOutdegree + 1
}
