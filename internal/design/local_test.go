package design

import (
	"testing"

	"spnet/internal/analysis"
)

func limit() analysis.Load { return analysis.Load{InBps: 1000, OutBps: 1000, ProcHz: 1e6} }

func TestAdviseRuleIAcceptByDefault(t *testing.T) {
	s := LocalState{
		Load: analysis.Load{InBps: 400, OutBps: 300, ProcHz: 1e5}, Limit: limit(),
		Clients: 10, Outdegree: 4, TTL: 7,
	}
	adv := Advise(s, Thresholds{})
	if !adv.AcceptClients {
		t.Error("rule I: should accept clients at moderate load")
	}
	if adv.PromotePartner || adv.SplitCluster || adv.Resign {
		t.Errorf("no shedding expected: %+v", adv)
	}
	if adv.NewTTL != 7 {
		t.Errorf("TTL changed to %d without evidence", adv.NewTTL)
	}
}

func TestAdviseOverloadShedsLoad(t *testing.T) {
	s := LocalState{
		Load: analysis.Load{InBps: 1500}, Limit: limit(),
		Clients: 20, Outdegree: 4, TTL: 7,
	}
	adv := Advise(s, Thresholds{})
	if adv.AcceptClients {
		t.Error("overloaded super-peer should stop accepting")
	}
	if !adv.PromotePartner || !adv.SplitCluster {
		t.Errorf("overload with many clients should propose partner/split: %+v", adv)
	}
	if adv.AddNeighbor {
		t.Error("overloaded super-peer should not add neighbors")
	}
}

func TestAdviseOverloadedLonerResigns(t *testing.T) {
	s := LocalState{
		Load: analysis.Load{ProcHz: 2e6}, Limit: limit(),
		Clients: 0, Outdegree: 1, TTL: 7,
	}
	adv := Advise(s, Thresholds{})
	if !adv.Resign {
		t.Error("an overloaded super-peer with no clients and one neighbor should resign")
	}
}

func TestAdviseUnderloadCoalesces(t *testing.T) {
	s := LocalState{
		Load: analysis.Load{InBps: 50, OutBps: 40, ProcHz: 1e4}, Limit: limit(),
		Clients: 2, Outdegree: 3, TTL: 7,
	}
	adv := Advise(s, Thresholds{})
	if !adv.TryCoalesce {
		t.Error("far-underloaded cluster should seek a merge")
	}
	if !adv.AcceptClients {
		t.Error("underloaded super-peer must still accept clients")
	}
}

func TestAdviseRuleIIAddNeighbor(t *testing.T) {
	base := LocalState{
		Load: analysis.Load{InBps: 300}, Limit: limit(),
		Clients: 10, Outdegree: 3, TTL: 7,
	}
	if adv := Advise(base, Thresholds{}); !adv.AddNeighbor {
		t.Error("spare resources and stable cluster: should add a neighbor")
	}
	growing := base
	growing.ClusterGrowing = true
	if adv := Advise(growing, Thresholds{}); adv.AddNeighbor {
		t.Error("growing cluster: should not add neighbors yet")
	}
	busy := base
	busy.Load = analysis.Load{InBps: 900}
	if adv := Advise(busy, Thresholds{}); adv.AddNeighbor {
		t.Error("near the limit: should not add neighbors")
	}
}

func TestAdviseAppendixEDropUselessNeighbor(t *testing.T) {
	s := LocalState{
		Load: analysis.Load{InBps: 100}, Limit: limit(),
		Clients: 5, Outdegree: 8, TTL: 3,
		ProbedNeighbor: true, GainedResultsAfterNeighbor: false,
	}
	adv := Advise(s, Thresholds{})
	if !adv.DropProbedNeighbor {
		t.Error("a probed neighbor that brought no results should be dropped")
	}
	if adv.AddNeighbor {
		t.Error("should not add while dropping a useless neighbor")
	}
	s.GainedResultsAfterNeighbor = true
	adv = Advise(s, Thresholds{})
	if adv.DropProbedNeighbor {
		t.Error("a useful probed neighbor should be kept")
	}
}

func TestAdviseRuleIIIDecreaseTTL(t *testing.T) {
	s := LocalState{
		Load: analysis.Load{InBps: 100}, Limit: limit(),
		Clients: 5, Outdegree: 5, TTL: 7, MaxRespHops: 3,
	}
	adv := Advise(s, Thresholds{})
	if adv.NewTTL != 3 {
		t.Errorf("NewTTL = %d, want 3 (no responses beyond 3 hops)", adv.NewTTL)
	}
	s.MaxRespHops = 7
	if adv := Advise(s, Thresholds{}); adv.NewTTL != 7 {
		t.Errorf("NewTTL = %d, want unchanged 7", adv.NewTTL)
	}
	s.MaxRespHops = 0 // unknown
	if adv := Advise(s, Thresholds{}); adv.NewTTL != 7 {
		t.Errorf("NewTTL = %d, want unchanged when unobserved", adv.NewTTL)
	}
}

func TestAdviseCustomThresholds(t *testing.T) {
	s := LocalState{
		Load: analysis.Load{InBps: 600}, Limit: limit(),
		Clients: 10, Outdegree: 3, TTL: 5,
	}
	// Default spare threshold 0.7 would allow a neighbor at 0.6 load.
	if adv := Advise(s, Thresholds{}); !adv.AddNeighbor {
		t.Error("default thresholds should add neighbor at 60% load")
	}
	// A stricter spare threshold blocks it.
	if adv := Advise(s, Thresholds{Spare: 0.5}); adv.AddNeighbor {
		t.Error("strict spare threshold should block the neighbor")
	}
	// A lower overload threshold triggers shedding earlier.
	if adv := Advise(s, Thresholds{Overload: 0.5}); adv.AcceptClients {
		t.Error("custom overload threshold should stop accepting at 60% load")
	}
}
