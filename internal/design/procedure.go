package design

import (
	"errors"
	"fmt"
	"math"

	"spnet/internal/analysis"
	"spnet/internal/network"
	"spnet/internal/parallel"
	"spnet/internal/stats"
	"spnet/internal/topology"
	"spnet/internal/workload"
)

// Constraints are the per-super-peer (and optional aggregate) limits a
// designer specifies for the global design procedure. The paper's Section
// 5.2 example: 100 Kbps each way, 10 MHz processing, 100 open connections.
type Constraints struct {
	// MaxDownBps limits a super-peer's expected incoming bandwidth.
	MaxDownBps float64
	// MaxUpBps limits a super-peer's expected outgoing bandwidth.
	MaxUpBps float64
	// MaxProcHz limits a super-peer's expected processing load.
	MaxProcHz float64
	// MaxConns limits a super-peer's open connections (clients + neighbors).
	MaxConns int
	// AllowRedundancy lets the procedure fall back to 2-redundant
	// super-peers when individual load cannot otherwise be attained.
	AllowRedundancy bool
}

// Validate reports whether the constraints are usable.
func (c Constraints) Validate() error {
	if c.MaxDownBps <= 0 || c.MaxUpBps <= 0 || c.MaxProcHz <= 0 {
		return fmt.Errorf("design: load limits must be positive: %+v", c)
	}
	if c.MaxConns < 2 {
		return fmt.Errorf("design: MaxConns = %d, want >= 2", c.MaxConns)
	}
	return nil
}

// Goals are the desired properties of the network.
type Goals struct {
	// NetworkSize is the number of peers the network must host.
	NetworkSize int
	// DesiredReach is the number of peers each query should cover. The
	// paper notes reach is chosen according to the desired number of
	// results, as the two are proportional.
	DesiredReach int
}

// Validate reports whether the goals are usable.
func (g Goals) Validate() error {
	if g.NetworkSize <= 1 {
		return fmt.Errorf("design: NetworkSize = %d, want > 1", g.NetworkSize)
	}
	if g.DesiredReach <= 0 || g.DesiredReach > g.NetworkSize {
		return fmt.Errorf("design: DesiredReach = %d, want [1, NetworkSize=%d]", g.DesiredReach, g.NetworkSize)
	}
	return nil
}

// Options tune the procedure's search.
type Options struct {
	// Profile is the workload profile (nil = default).
	Profile *workload.Profile
	// Trials per candidate evaluation (0 = 2).
	Trials int
	// Seed for the candidate evaluations.
	Seed uint64
	// MaxTTL bounds step 4's TTL escalation (0 = 7, the Gnutella default).
	MaxTTL int
	// Workers bounds the candidate-evaluation worker pool (0 = GOMAXPROCS,
	// 1 = serial). The selected plan is identical at any setting: candidates
	// evaluate speculatively in worker-sized batches and the batch results
	// are scanned in the serial search order.
	Workers int
}

// Plan is the procedure's output: the chosen configuration, its predicted
// performance, and a human-readable trace of the decisions taken.
type Plan struct {
	Config    network.Config
	Predicted *analysis.TrialSummary
	// ReachShortfall is the fraction by which the desired reach had to be
	// reduced (0 when the full goal is met) — the procedure's "decrease r"
	// escape hatch.
	ReachShortfall float64
	Steps          []string
}

// ErrInfeasible is returned when no configuration satisfies the constraints
// even after reducing reach.
var ErrInfeasible = errors.New("design: no feasible configuration")

// Run executes the global design procedure of Figure 10:
//
//	(1) select the desired reach r; (2) set TTL=1;
//	(3) decrease cluster size until the individual load is attained,
//	    applying redundancy and/or decreasing r when it cannot be;
//	(4) if the required outdegree exceeds the connection budget,
//	    increment the TTL and return to (3);
//	(5) do not raise outdegree beyond what the reach requires (the
//	    Appendix E caveat: past the EPL plateau more neighbors only add
//	    redundant queries).
func Run(goals Goals, cons Constraints, opts Options) (*Plan, error) {
	if err := goals.Validate(); err != nil {
		return nil, err
	}
	if err := cons.Validate(); err != nil {
		return nil, err
	}
	trials := opts.Trials
	if trials <= 0 {
		trials = 2
	}
	maxTTL := opts.MaxTTL
	if maxTTL <= 0 {
		maxTTL = 7
	}

	plan := &Plan{}
	logf := func(format string, args ...any) {
		plan.Steps = append(plan.Steps, fmt.Sprintf(format, args...))
	}

	reach := goals.DesiredReach
	logf("step 1: desired reach %d peers in a network of %d", reach, goals.NetworkSize)

	for attempt := 0; attempt < 6; attempt++ {
		cfg, pred, err := searchTTLAndCluster(goals.NetworkSize, reach, cons, opts, trials, maxTTL, logf)
		if err == nil {
			plan.Config = cfg
			plan.Predicted = pred
			plan.ReachShortfall = 1 - float64(reach)/float64(goals.DesiredReach)
			if plan.ReachShortfall > 0 {
				logf("goal relaxed: reach reduced from %d to %d peers", goals.DesiredReach, reach)
			}
			return plan, nil
		}
		if !errors.Is(err, ErrInfeasible) {
			return nil, err
		}
		// Step 3's escape hatch: decrease r.
		reach = reach * 3 / 4
		if reach < 2 {
			break
		}
		logf("no feasible configuration; decreasing desired reach to %d peers", reach)
	}
	return nil, fmt.Errorf("%w for goals %+v under %+v", ErrInfeasible, goals, cons)
}

// searchTTLAndCluster runs steps 2–5 for a fixed reach goal.
func searchTTLAndCluster(size, reach int, cons Constraints, opts Options, trials, maxTTL int,
	logf func(string, ...any)) (network.Config, *analysis.TrialSummary, error) {

	// Candidates that exceed the individual load limit stay infeasible at
	// higher TTLs (no configuration is more bandwidth-efficient than TTL 1),
	// so remember them across the TTL escalation.
	failed := make(map[candidateKey]bool)
	for ttl := 1; ttl <= maxTTL; ttl++ {
		logf("step 2/4: trying TTL %d", ttl)
		cfg, pred, err := searchClusterSize(size, reach, ttl, cons, opts, trials, failed, logf)
		if err == nil {
			return cfg, pred, nil
		}
		if !errors.Is(err, errConnBudget) {
			return network.Config{}, nil, err
		}
		// Step 4: outdegree too high for the connection budget — raise TTL.
	}
	return network.Config{}, nil, ErrInfeasible
}

// errConnBudget signals that the best cluster size found needs more open
// connections than allowed, so the TTL must rise.
var errConnBudget = errors.New("design: connection budget exceeded")

// searchClusterSize is step 3: walk cluster sizes from large to small until
// the individual load constraint is met, preferring the largest feasible
// cluster (rule #1 minimizes aggregate load with large clusters).
//
// Candidates evaluate speculatively in worker-sized batches: every candidate
// evaluation depends only on (candidate, opts.Seed), never on its
// predecessors, so a batch can run concurrently and its results be scanned in
// the serial search order. The first success in scan order wins and the
// failure memo is updated only for candidates scanned before it — exactly the
// candidates the serial walk would have tried — so the outcome (and the memo
// carried to higher TTLs) is identical at any worker count.
func searchClusterSize(size, reach, ttl int, cons Constraints, opts Options, trials int,
	failed map[candidateKey]bool, logf func(string, ...any)) (network.Config, *analysis.TrialSummary, error) {

	var cands []candidateKey
	for _, cs := range clusterSizeCandidates(size) {
		for _, redundant := range redundancyOrder(cons.AllowRedundancy) {
			if redundant && cs < 2 {
				continue
			}
			if failed[candidateKey{cs, redundant}] {
				continue
			}
			cands = append(cands, candidateKey{cs, redundant})
		}
	}

	type outcome struct {
		cfg  network.Config
		pred *analysis.TrialSummary
		err  error
	}
	sawConnBudgetFailure := false
	batch := parallel.Workers(opts.Workers)
	for start := 0; start < len(cands); start += batch {
		end := min(start+batch, len(cands))
		chunk := cands[start:end]
		outs, _ := parallel.Map(opts.Workers, len(chunk), func(i int) (outcome, error) {
			cfg, pred, err := tryCandidate(size, reach, ttl, chunk[i].cs, chunk[i].redundant, cons, opts, trials)
			return outcome{cfg, pred, err}, nil
		})
		for i, out := range outs {
			c := chunk[i]
			switch {
			case out.err == nil:
				logf("step 3: cluster size %d (redundant=%v) outdegree %.0f meets limits: sp in %.3g bps, out %.3g bps, proc %.3g Hz",
					c.cs, c.redundant, out.cfg.AvgOutdegree, out.pred.SuperPeer.InBps.Mean,
					out.pred.SuperPeer.OutBps.Mean, out.pred.SuperPeer.ProcHz.Mean)
				return out.cfg, out.pred, nil
			case errors.Is(out.err, errConnBudget):
				sawConnBudgetFailure = true
			case errors.Is(out.err, errLoadLimit):
				failed[c] = true
			case errors.Is(out.err, errReachImpossible):
				// keep searching smaller clusters / redundancy
			default:
				return network.Config{}, nil, out.err
			}
		}
	}
	if sawConnBudgetFailure {
		return network.Config{}, nil, errConnBudget
	}
	return network.Config{}, nil, ErrInfeasible
}

var (
	errLoadLimit       = errors.New("design: individual load limit exceeded")
	errReachImpossible = errors.New("design: reach not attainable")
)

// candidateKey identifies a (cluster size, redundancy) candidate in the
// cross-TTL failure memo.
type candidateKey struct {
	cs        int
	redundant bool
}

// tryCandidate evaluates one (clusterSize, redundancy) candidate at the
// given TTL: picks the minimal outdegree that attains the reach (step 5's
// caveat — never more than needed), verifies the connection budget, runs the
// analysis, and checks the measured loads and reach.
func tryCandidate(size, reach, ttl, cs int, redundant bool, cons Constraints, opts Options,
	trials int) (network.Config, *analysis.TrialSummary, error) {

	clusters := size / cs
	if clusters < 1 {
		clusters = 1
	}
	reachClusters := int(math.Ceil(float64(reach) / float64(cs)))
	if reachClusters > clusters {
		reachClusters = clusters
	}
	maxDeg := clusters - 1
	if maxDeg < 1 {
		maxDeg = 1
	}
	d := MinOutdegreeForReach(reachClusters, ttl, maxDeg)
	if d > maxDeg {
		return network.Config{}, nil, errReachImpossible
	}

	partners := 1
	if redundant {
		partners = 2
	}
	// Client connections alone blowing the budget cannot be fixed by a
	// higher TTL — treat it as a permanent failure of this cluster size.
	baseConns := cs - partners + partners
	if redundant {
		baseConns++
	}
	if baseConns > cons.MaxConns {
		return network.Config{}, nil, errLoadLimit
	}
	for attempts := 0; d <= maxDeg && attempts < 12; attempts++ {
		clients := cs - partners
		conns := clients + d*partners
		if redundant {
			conns++ // co-partner link
		}
		if conns > cons.MaxConns {
			return network.Config{}, nil, errConnBudget
		}

		cfg := network.Config{
			GraphType:    network.PowerLaw,
			GraphSize:    size,
			ClusterSize:  cs,
			Redundancy:   redundant,
			AvgOutdegree: float64(d),
			TTL:          ttl,
		}
		if clusters == 1 {
			cfg.GraphType = network.Strong
		}
		// The tree bound is optimistic on graphs with cycles: probe the
		// reach on bare topologies first — far cheaper than a full load
		// evaluation — and escalate the outdegree geometrically when short.
		if clusters > 1 {
			ok, err := probeReach(cfg, reachClusters, opts.Seed)
			if err != nil {
				return network.Config{}, nil, err
			}
			if !ok {
				d = d*5/4 + 1
				continue
			}
		}
		pred, err := analysis.RunTrialsWorkers(cfg, opts.Profile, trials, opts.Seed, opts.Workers)
		if err != nil {
			return network.Config{}, nil, err
		}
		if pred.ReachPeers.Mean < float64(reach)*0.95 {
			d = d*5/4 + 1
			continue
		}
		sp := pred.SuperPeer
		if sp.InBps.Mean > cons.MaxDownBps || sp.OutBps.Mean > cons.MaxUpBps ||
			sp.ProcHz.Mean > cons.MaxProcHz {
			return network.Config{}, nil, errLoadLimit
		}
		return cfg, pred, nil
	}
	return network.Config{}, nil, errReachImpossible
}

// probeReach checks on a bare generated topology whether queries reach the
// desired number of clusters at the candidate's TTL, sampling a handful of
// sources.
func probeReach(cfg network.Config, reachClusters int, seed uint64) (bool, error) {
	rng := stats.NewRNG(seed ^ 0x9e3779b97f4a7c15)
	g, err := topology.PowerLaw(topology.PLODParams{
		N:      cfg.NumClusters(),
		AvgDeg: cfg.AvgOutdegree,
	}, rng)
	if err != nil {
		return false, err
	}
	const probes = 5
	var total float64
	for i := 0; i < probes; i++ {
		total += float64(topology.ReachForTTL(g, rng.Intn(g.N()), cfg.TTL))
	}
	return total/probes >= float64(reachClusters)*0.95, nil
}

// redundancyOrder returns the redundancy settings to try, plain first.
func redundancyOrder(allow bool) []bool {
	if allow {
		return []bool{false, true}
	}
	return []bool{false}
}

// clusterSizeCandidates returns a descending geometric ladder of cluster
// sizes to search, always ending at 1.
func clusterSizeCandidates(size int) []int {
	var out []int
	seen := map[int]bool{}
	for _, cs := range []int{10000, 5000, 2000, 1000, 500, 200, 100, 50, 20, 10, 5, 2, 1} {
		if cs > size {
			continue
		}
		if !seen[cs] {
			out = append(out, cs)
			seen[cs] = true
		}
	}
	return out
}
