package design

import "spnet/internal/analysis"

// LocalState is what one super-peer can observe about itself without any
// global view: its measured load, the limit it is willing to bear, the shape
// of its cluster and neighborhood, and how far away its query responses have
// been coming from.
type LocalState struct {
	// Load is the super-peer's current measured load (e.g. an EWMA).
	Load analysis.Load
	// Limit is the load the super-peer is willing to handle. The paper's
	// "limited altruism" assumption: a super-peer accepts any load below
	// its predefined limit and never exceeds it voluntarily.
	Limit analysis.Load
	// Clients is the current cluster size excluding the super-peer.
	Clients int
	// Outdegree is the number of neighbor super-peers.
	Outdegree int
	// TTL is the TTL this super-peer stamps on forwarded queries.
	TTL int
	// MaxRespHops is the farthest hop distance from which query responses
	// have recently been observed (0 when unknown). Rule III: if responses
	// never come from beyond x hops, TTL can drop to x without losing reach.
	MaxRespHops int
	// ClusterGrowing reports whether the cluster has been gaining clients
	// recently; rule II defers neighbor additions while it is.
	ClusterGrowing bool
	// GainedResultsAfterNeighbor reports whether the last neighbor added
	// increased the number of responses (Appendix E's probe for "too many
	// neighbors"). Only meaningful when ProbedNeighbor is true.
	GainedResultsAfterNeighbor bool
	// ProbedNeighbor indicates a recent neighbor addition is awaiting the
	// Appendix E usefulness check.
	ProbedNeighbor bool
}

// Advice is the set of local actions the Section 5.3 guidelines recommend.
type Advice struct {
	// AcceptClients: rule I — a super-peer should always accept new
	// clients, unless it is about to shed load.
	AcceptClients bool
	// PromotePartner: the cluster is too large to handle; select a capable
	// client to become a redundant partner (rule I, overload response).
	PromotePartner bool
	// SplitCluster: alternatively, promote a client to a new super-peer
	// and split the cluster in two.
	SplitCluster bool
	// TryCoalesce: the cluster is far below the limit; seek another small
	// cluster to merge with (rule I, underload response).
	TryCoalesce bool
	// AddNeighbor: rule II — increase outdegree while resources allow and
	// the cluster is not growing.
	AddNeighbor bool
	// DropProbedNeighbor: Appendix E — the most recently added neighbor did
	// not increase responses, so the connection should be dropped.
	DropProbedNeighbor bool
	// Resign: the super-peer cannot support even a few neighbors; it
	// should consider dropping clients or becoming a client itself.
	Resign bool
	// NewTTL is the TTL to use from now on (rule III); equal to the current
	// TTL when no decrease is warranted.
	NewTTL int
}

// Thresholds tune the advisor; zero values select the defaults.
type Thresholds struct {
	// Overload is the load fraction above which the cluster sheds load
	// (default 1.0 — the hard limit).
	Overload float64
	// Spare is the load fraction below which extra neighbors are accepted
	// (default 0.7).
	Spare float64
	// Coalesce is the load fraction below which merging clusters is
	// proposed (default 0.15).
	Coalesce float64
	// MinViableOutdegree is the outdegree below which a super-peer that
	// cannot afford more neighbors should resign (default 2).
	MinViableOutdegree int
}

func (t *Thresholds) setDefaults() {
	if t.Overload == 0 {
		t.Overload = 1.0
	}
	if t.Spare == 0 {
		t.Spare = 0.7
	}
	if t.Coalesce == 0 {
		t.Coalesce = 0.15
	}
	if t.MinViableOutdegree == 0 {
		t.MinViableOutdegree = 2
	}
}

// Utilization returns the maximum load fraction across the three resources,
// the scalar the local rules compare against their thresholds.
func Utilization(load, limit analysis.Load) float64 {
	u := 0.0
	if limit.InBps > 0 {
		u = max(u, load.InBps/limit.InBps)
	}
	if limit.OutBps > 0 {
		u = max(u, load.OutBps/limit.OutBps)
	}
	if limit.ProcHz > 0 {
		u = max(u, load.ProcHz/limit.ProcHz)
	}
	return u
}

// Advise applies the Section 5.3 guidelines to one super-peer's local state.
func Advise(s LocalState, th Thresholds) Advice {
	th.setDefaults()
	u := Utilization(s.Load, s.Limit)
	adv := Advice{NewTTL: s.TTL}

	// Rule I: always accept new clients — given the client must be served by
	// some super-peer, refusing it helps nobody. Only an overloaded
	// super-peer stops accepting, and it also sheds load: prefer promoting a
	// partner (rule #2: redundancy improves both reliability and individual
	// load); splitting is the alternative for very large clusters.
	switch {
	case u >= th.Overload:
		adv.AcceptClients = false
		if s.Clients >= 2 {
			adv.PromotePartner = true
			adv.SplitCluster = true
		} else {
			adv.Resign = s.Outdegree < th.MinViableOutdegree
		}
	case u <= th.Coalesce && s.Clients > 0:
		adv.AcceptClients = true
		adv.TryCoalesce = true
	default:
		adv.AcceptClients = true
	}

	// Appendix E: if a probed neighbor addition brought no new responses,
	// the connection is pure redundant-query overhead — drop it.
	if s.ProbedNeighbor && !s.GainedResultsAfterNeighbor {
		adv.DropProbedNeighbor = true
	}

	// Rule II: grow outdegree while the cluster is stable and resources are
	// spare; everyone doing so shortens the EPL for the whole network.
	if !s.ClusterGrowing && u < th.Spare && !adv.DropProbedNeighbor && u < th.Overload {
		adv.AddNeighbor = true
	}

	// Rule III: decrease TTL when responses never arrive from the horizon.
	if s.MaxRespHops > 0 && s.MaxRespHops < s.TTL {
		adv.NewTTL = s.MaxRespHops
	}
	return adv
}
