package network

import (
	"fmt"
	"net"
	"net/http"
	"sync"

	"spnet/internal/faults"
	"spnet/internal/metrics"
	"spnet/internal/p2p"
)

// LiveConfig shapes a live loopback deployment: real p2p.Node super-peers
// wired into the paper's redundant-cluster topology, with every connection
// routed through a faults.Controller so churn is scriptable and
// deterministic.
type LiveConfig struct {
	// Clusters is the number of virtual super-peers on the overlay ring
	// (default 3).
	Clusters int
	// Partners is the k-redundancy level: partners per virtual super-peer
	// (Section 3.2; default 2).
	Partners int
	// Seed drives the fault controller's randomness.
	Seed uint64
	// Telemetry starts a loopback HTTP server per super-peer serving the
	// node's metrics registry (Prometheus text, expvar JSON, pprof) — the
	// same handler spnet-node exposes for -telemetry. Addresses are pinned
	// across kill/restart and reported by SuperPeers.
	Telemetry bool
	// Node is the base configuration applied to every super-peer; its
	// Wrap/Dial hooks are overwritten to route through the fault
	// controller.
	Node p2p.Options
}

func (c *LiveConfig) setDefaults() {
	if c.Clusters <= 0 {
		c.Clusters = 3
	}
	if c.Partners <= 0 {
		c.Partners = 2
	}
}

// liveNode is one super-peer slot. The listen address is pinned at launch so
// a restarted super-peer reappears where clients and peers expect it; the
// telemetry address is pinned the same way so scrapers survive restarts.
type liveNode struct {
	node    *p2p.Node // nil while killed
	addr    string
	telAddr string       // telemetry HTTP address, "" unless LiveConfig.Telemetry
	telSrv  *http.Server // nil while killed or telemetry disabled
}

// Live runs a real super-peer network on loopback and orchestrates churn
// against it: killing and restarting super-peers, partitioning whole
// clusters, and injecting link faults. Clusters form a ring; all partners of
// adjacent clusters are fully inter-linked, and partners within a cluster
// peer with each other, matching the paper's redundancy wiring.
type Live struct {
	cfg  LiveConfig
	ctrl *faults.Controller

	mu     sync.Mutex
	nodes  [][]*liveNode // [cluster][partner]
	closed bool
}

// NewLive builds the harness; call Launch to boot the network.
func NewLive(cfg LiveConfig) *Live {
	cfg.setDefaults()
	return &Live{cfg: cfg, ctrl: faults.NewController(cfg.Seed)}
}

// label names a super-peer slot for the fault controller.
func label(cluster, partner int) string { return fmt.Sprintf("sp-%d-%d", cluster, partner) }

// Faults exposes the controller for scripting link faults on top of the
// topology-level churn operations.
func (l *Live) Faults() *faults.Controller { return l.ctrl }

// Launch boots every super-peer and wires the overlay. On error the harness
// is closed.
func (l *Live) Launch() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.nodes != nil {
		return fmt.Errorf("network: Launch called twice")
	}
	l.nodes = make([][]*liveNode, l.cfg.Clusters)
	for c := range l.nodes {
		l.nodes[c] = make([]*liveNode, l.cfg.Partners)
		for p := range l.nodes[c] {
			ln := &liveNode{node: l.newNode(c, p)}
			if err := ln.node.Listen("127.0.0.1:0"); err != nil {
				l.closeLocked()
				return err
			}
			ln.addr = ln.node.Addr()
			l.nodes[c][p] = ln
			if err := l.startTelemetryLocked(ln); err != nil {
				l.closeLocked()
				return err
			}
			ln.node.SetIdentity(label(c, p), ln.telAddr)
		}
	}
	for c := range l.nodes {
		for p, ln := range l.nodes[c] {
			if err := l.connectLocked(c, p, ln.node); err != nil {
				l.closeLocked()
				return err
			}
		}
	}
	return nil
}

// startTelemetryLocked serves the slot node's metrics registry over HTTP. The
// first start picks a free loopback port; restarts rebind the pinned address.
func (l *Live) startTelemetryLocked(ln *liveNode) error {
	if !l.cfg.Telemetry {
		return nil
	}
	addr := ln.telAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	ln.telAddr = lis.Addr().String()
	ln.telSrv = &http.Server{Handler: metrics.Handler(ln.node.Metrics().Registry())}
	go ln.telSrv.Serve(lis)
	return nil
}

// stopTelemetry shuts a slot's telemetry server down, keeping the pinned
// address for a later restart. Safe on nil.
func stopTelemetry(srv *http.Server) {
	if srv != nil {
		srv.Close()
	}
}

// SuperPeerInfo identifies one live super-peer slot. The Live harness reports
// slots in stable cluster-major, partner-minor order with addresses pinned
// across kill/restart, so scrape loops and result tables are deterministic.
type SuperPeerInfo struct {
	Cluster int    // cluster index on the ring
	Partner int    // partner rank within the cluster
	ID      string // stable label, "sp-<cluster>-<partner>"
	Addr    string // p2p listen address (pinned across restarts)
	// Telemetry is the HTTP metrics address, "" unless LiveConfig.Telemetry.
	Telemetry string
}

// SuperPeers enumerates every super-peer slot in stable cluster-major,
// partner-minor order — including killed slots, whose addresses remain valid
// for when they return.
func (l *Live) SuperPeers() []SuperPeerInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SuperPeerInfo, 0, len(l.nodes)*l.cfg.Partners)
	for c := range l.nodes {
		for p, ln := range l.nodes[c] {
			if ln == nil {
				continue
			}
			out = append(out, SuperPeerInfo{
				Cluster: c, Partner: p,
				ID: label(c, p), Addr: ln.addr, Telemetry: ln.telAddr,
			})
		}
	}
	return out
}

// newNode builds a super-peer whose connections all pass through the fault
// controller under the slot's label.
func (l *Live) newNode(cluster, partner int) *p2p.Node {
	opts := l.cfg.Node
	lbl := label(cluster, partner)
	opts.Wrap = l.ctrl.WrapAccept(lbl)
	opts.Dial = l.ctrl.Dialer(lbl)
	return p2p.NewNode(opts)
}

// connectLocked dials n's overlay links: co-partners in its own cluster and
// every live partner of the ring-adjacent clusters. Only slots "before" the
// given one are dialed during launch (the later slots dial back), so each
// link is established exactly once; restarts dial everyone.
func (l *Live) connectLocked(cluster, partner int, n *p2p.Node) error {
	dial := func(c, p int) error {
		tgt := l.nodes[c][p]
		if tgt == nil || tgt.node == nil || tgt.node == n {
			return nil
		}
		return n.ConnectPeer(tgt.addr)
	}
	// Co-partners: the intra-cluster mesh that lets partners hand off.
	for p := 0; p < partner; p++ {
		if err := dial(cluster, p); err != nil {
			return err
		}
	}
	// Ring neighbors, all partners (2k links per neighbor pair — the
	// redundancy cost Section 3.2 accounts for).
	if prev := cluster - 1; prev >= 0 {
		for p := range l.nodes[prev] {
			if err := dial(prev, p); err != nil {
				return err
			}
		}
	}
	// The wrap-around link closes the ring (only for >2 clusters; with 2,
	// cluster 1's "previous" link already connects the pair).
	if cluster == l.cfg.Clusters-1 && l.cfg.Clusters > 2 {
		for p := range l.nodes[0] {
			if err := dial(0, p); err != nil {
				return err
			}
		}
	}
	return nil
}

// reconnectLocked dials every live overlay neighbor of the slot — used after
// a restart, when no other node will dial back.
func (l *Live) reconnectLocked(cluster, partner int, n *p2p.Node) error {
	var errFirst error
	dialAll := func(c int) {
		for p, tgt := range l.nodes[c] {
			if (c == cluster && p == partner) || tgt.node == nil {
				continue
			}
			if err := n.ConnectPeer(tgt.addr); err != nil && errFirst == nil {
				errFirst = err
			}
		}
	}
	dialAll(cluster)
	if l.cfg.Clusters > 1 {
		dialAll((cluster + 1) % l.cfg.Clusters)
		if prev := (cluster - 1 + l.cfg.Clusters) % l.cfg.Clusters; prev != (cluster+1)%l.cfg.Clusters {
			dialAll(prev)
		}
	}
	return errFirst
}

// ClusterAddrs returns the cluster's ranked partner addresses — the
// redundant super-peer list a client hands to DialOptions.Addrs. Addresses
// are stable across kill/restart.
func (l *Live) ClusterAddrs(cluster int) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.nodes[cluster]))
	for p, ln := range l.nodes[cluster] {
		out[p] = ln.addr
	}
	return out
}

// Node returns the running super-peer in a slot, or nil while it is killed.
func (l *Live) Node(cluster, partner int) *p2p.Node {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nodes[cluster][partner].node
}

// KillSuperPeer crashes one partner: every one of its connections drops at
// once, exactly what the reliability experiment's failure process models.
func (l *Live) KillSuperPeer(cluster, partner int) error {
	l.mu.Lock()
	ln := l.nodes[cluster][partner]
	n := ln.node
	srv := ln.telSrv
	ln.node = nil
	ln.telSrv = nil
	l.mu.Unlock()
	if n == nil {
		return fmt.Errorf("network: super-peer %d/%d already dead", cluster, partner)
	}
	stopTelemetry(srv)
	l.ctrl.ResetNode(label(cluster, partner))
	return n.Close()
}

// RestartSuperPeer brings a killed partner back on its original address and
// re-dials its overlay neighborhood. Clients re-join on their own via their
// supervised reconnect loops.
func (l *Live) RestartSuperPeer(cluster, partner int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("network: harness closed")
	}
	ln := l.nodes[cluster][partner]
	if ln.node != nil {
		return fmt.Errorf("network: super-peer %d/%d still running", cluster, partner)
	}
	n := l.newNode(cluster, partner)
	if err := n.Listen(ln.addr); err != nil {
		return err
	}
	ln.node = n
	if err := l.startTelemetryLocked(ln); err != nil {
		ln.node = nil
		n.Close()
		return err
	}
	n.SetIdentity(label(cluster, partner), ln.telAddr)
	return l.reconnectLocked(cluster, partner, n)
}

// ControllerLabel is the fault-controller label of the fleet controller's
// vantage point. Route a control.Controller's Options.Dial through
// Faults().Dialer(ControllerLabel) (internal/control cannot be imported here
// without a cycle — the experiment layer assembles the Options from
// SuperPeers()), and controller partitions become scriptable like any other
// fault.
const ControllerLabel = "controller"

// PartitionController cuts the fleet controller off from every node: its
// control links blackhole and its scrapes fail, while the overlay itself
// keeps running — the control plane's graceful-degradation drill.
func (l *Live) PartitionController() { l.ctrl.Isolate(ControllerLabel) }

// HealController reverses PartitionController.
func (l *Live) HealController() { l.ctrl.Restore(ControllerLabel) }

// PartitionCluster cuts every partner of a cluster off the network: their
// traffic blackholes until HealCluster. Connections stay up, so this models
// a network partition rather than a crash — dead-peer detection, not error
// returns, is what notices it.
func (l *Live) PartitionCluster(cluster int) {
	for p := range l.partners(cluster) {
		l.ctrl.Isolate(label(cluster, p))
	}
}

// HealCluster reverses PartitionCluster.
func (l *Live) HealCluster(cluster int) {
	for p := range l.partners(cluster) {
		l.ctrl.Restore(label(cluster, p))
	}
}

func (l *Live) partners(cluster int) []*liveNode {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nodes[cluster]
}

// Close tears the whole network down.
func (l *Live) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closeLocked()
}

func (l *Live) closeLocked() error {
	if l.closed {
		return nil
	}
	l.closed = true
	var first error
	for _, cluster := range l.nodes {
		for _, ln := range cluster {
			if ln == nil {
				continue
			}
			stopTelemetry(ln.telSrv)
			ln.telSrv = nil
			if ln.node == nil {
				continue
			}
			if err := ln.node.Close(); err != nil && first == nil {
				first = err
			}
			ln.node = nil
		}
	}
	return first
}
