package network

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"spnet/internal/metrics"
)

// TestLiveSuperPeersStableOrder pins the enumeration contract experiments
// rely on for deterministic scrape loops and result tables: cluster-major,
// partner-minor order with IDs and addresses stable across kill/restart.
func TestLiveSuperPeersStableOrder(t *testing.T) {
	lv := NewLive(LiveConfig{Clusters: 3, Partners: 2, Seed: 5})
	if err := lv.Launch(); err != nil {
		t.Fatal(err)
	}
	defer lv.Close()

	sps := lv.SuperPeers()
	if len(sps) != 6 {
		t.Fatalf("got %d super-peers, want 6", len(sps))
	}
	for i, sp := range sps {
		wantC, wantP := i/2, i%2
		if sp.Cluster != wantC || sp.Partner != wantP {
			t.Errorf("slot %d = cluster %d partner %d, want %d/%d", i, sp.Cluster, sp.Partner, wantC, wantP)
		}
		if want := fmt.Sprintf("sp-%d-%d", wantC, wantP); sp.ID != want {
			t.Errorf("slot %d ID = %q, want %q", i, sp.ID, want)
		}
		if sp.Addr == "" {
			t.Errorf("slot %d has no address", i)
		}
		if sp.Telemetry != "" {
			t.Errorf("slot %d telemetry = %q, want empty when disabled", i, sp.Telemetry)
		}
	}

	before := sps
	if err := lv.KillSuperPeer(1, 0); err != nil {
		t.Fatal(err)
	}
	after := lv.SuperPeers()
	if len(after) != len(before) {
		t.Fatalf("enumeration changed size after kill: %d -> %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Errorf("slot %d changed after kill: %+v -> %+v", i, before[i], after[i])
		}
	}
	if err := lv.RestartSuperPeer(1, 0); err != nil {
		t.Fatal(err)
	}
	restarted := lv.SuperPeers()
	for i := range before {
		if before[i] != restarted[i] {
			t.Errorf("slot %d changed after restart: %+v -> %+v", i, before[i], restarted[i])
		}
	}
}

// TestLiveTelemetry boots a telemetry-enabled network, scrapes each
// super-peer's /metrics endpoint, and checks the address survives a
// kill/restart cycle so long-running scrapers never need rediscovery.
func TestLiveTelemetry(t *testing.T) {
	lv := NewLive(LiveConfig{Clusters: 2, Partners: 1, Seed: 9, Telemetry: true})
	if err := lv.Launch(); err != nil {
		t.Fatal(err)
	}
	defer lv.Close()

	scrape := func(addr string) (map[string]float64, error) {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("status %d", resp.StatusCode)
		}
		return metrics.ParsePrometheus(resp.Body)
	}

	sps := lv.SuperPeers()
	connsKey := metrics.SeriesKey(metrics.MetricConnsOpen)
	for _, sp := range sps {
		if sp.Telemetry == "" {
			t.Fatalf("%s has no telemetry address", sp.ID)
		}
		vals, err := scrape(sp.Telemetry)
		if err != nil {
			t.Fatalf("scrape %s: %v", sp.ID, err)
		}
		if vals[connsKey] < 1 {
			t.Errorf("%s reports %v open connections, want >= 1 (overlay link)", sp.ID, vals[connsKey])
		}
	}

	pinned := sps[0].Telemetry
	if err := lv.KillSuperPeer(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := scrape(pinned); err == nil {
		t.Error("telemetry still answering after kill")
	}
	if err := lv.RestartSuperPeer(0, 0); err != nil {
		t.Fatal(err)
	}
	if got := lv.SuperPeers()[0].Telemetry; got != pinned {
		t.Fatalf("telemetry address moved across restart: %s -> %s", pinned, got)
	}
	vals, err := scrape(pinned)
	if err != nil {
		t.Fatalf("scrape after restart: %v", err)
	}
	if _, ok := vals[metrics.SeriesKey(metrics.MetricQueriesHandled)]; !ok {
		// Key presence check keeps this robust: a fresh node may not have
		// handled queries yet, but the series must exist.
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		t.Fatalf("restarted node missing %s; scraped: %s",
			metrics.MetricQueriesHandled, strings.Join(keys, ", "))
	}
}
