package network

import (
	"math"
	"testing"
	"testing/quick"

	"spnet/internal/stats"
	"spnet/internal/workload"
)

func mustGenerate(t *testing.T, cfg Config, seed uint64) *Instance {
	t.Helper()
	inst, err := Generate(cfg, nil, stats.NewRNG(seed))
	if err != nil {
		t.Fatalf("Generate(%v): %v", cfg, err)
	}
	return inst
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	c := DefaultConfig()
	if c.GraphType != PowerLaw || c.GraphSize != 10000 || c.ClusterSize != 10 ||
		c.Redundancy || c.AvgOutdegree != 3.1 || c.TTL != 7 {
		t.Errorf("DefaultConfig() = %+v does not match Table 1", c)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if c.NumClusters() != 1000 {
		t.Errorf("NumClusters = %d, want 1000", c.NumClusters())
	}
}

func TestConfigValidation(t *testing.T) {
	mk := func(mutate func(*Config)) Config {
		c := DefaultConfig()
		mutate(&c)
		return c
	}
	bad := map[string]Config{
		"zero size":        mk(func(c *Config) { c.GraphSize = 0 }),
		"zero cluster":     mk(func(c *Config) { c.ClusterSize = 0 }),
		"cluster too big":  mk(func(c *Config) { c.ClusterSize = c.GraphSize + 1 }),
		"redundant size 1": mk(func(c *Config) { c.ClusterSize = 1; c.Redundancy = true }),
		"negative ttl":     mk(func(c *Config) { c.TTL = -1 }),
		"tiny outdegree":   mk(func(c *Config) { c.AvgOutdegree = 0.2 }),
		"huge outdegree":   mk(func(c *Config) { c.AvgOutdegree = 1e6 }),
		"bogus graph type": mk(func(c *Config) { c.GraphType = GraphType(99) }),
	}
	for name, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	// Strong graphs ignore outdegree.
	ok := mk(func(c *Config) { c.GraphType = Strong; c.AvgOutdegree = 0 })
	if err := ok.Validate(); err != nil {
		t.Errorf("strong graph rejected: %v", err)
	}
}

func TestMeanClientsAndPartners(t *testing.T) {
	c := DefaultConfig()
	if c.MeanClients() != 9 || c.Partners() != 1 {
		t.Errorf("non-redundant: clients %v partners %d", c.MeanClients(), c.Partners())
	}
	c.Redundancy = true
	if c.MeanClients() != 8 || c.Partners() != 2 {
		t.Errorf("redundant: clients %v partners %d", c.MeanClients(), c.Partners())
	}
}

func TestGenerateBasicShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GraphSize = 2000
	inst := mustGenerate(t, cfg, 1)
	if got, want := len(inst.Clusters), 200; got != want {
		t.Fatalf("clusters = %d, want %d", got, want)
	}
	if inst.Graph.N() != 200 {
		t.Fatalf("graph size = %d", inst.Graph.N())
	}
	for i := range inst.Clusters {
		cl := &inst.Clusters[i]
		if len(cl.Partners) != 1 {
			t.Fatalf("cluster %d has %d partners", i, len(cl.Partners))
		}
		if cl.Users() != len(cl.Clients)+1 {
			t.Fatalf("cluster %d users mismatch", i)
		}
	}
	// Realized peers should be near the configured size.
	if math.Abs(float64(inst.NumPeers-2000)) > 200 {
		t.Errorf("NumPeers = %d, want ~2000", inst.NumPeers)
	}
}

func TestGenerateClusterSizeDistribution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GraphSize = 10000
	cfg.ClusterSize = 20
	inst := mustGenerate(t, cfg, 2)
	var counts []float64
	for i := range inst.Clusters {
		counts = append(counts, float64(len(inst.Clusters[i].Clients)))
	}
	mean := stats.Mean(counts)
	sd := stats.StdDev(counts)
	if math.Abs(mean-19) > 1 {
		t.Errorf("mean clients = %v, want ~19", mean)
	}
	// C ~ N(c̄, .2c̄) => sd ≈ 3.8.
	if math.Abs(sd-3.8) > 0.8 {
		t.Errorf("client stddev = %v, want ~3.8", sd)
	}
}

func TestGenerateRedundant(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GraphSize = 1000
	cfg.Redundancy = true
	inst := mustGenerate(t, cfg, 3)
	for i := range inst.Clusters {
		cl := &inst.Clusters[i]
		if len(cl.Partners) != 2 {
			t.Fatalf("cluster %d has %d partners, want 2", i, len(cl.Partners))
		}
		// Index covers clients plus both partners.
		want := cl.Partners[0].Files + cl.Partners[1].Files
		for _, c := range cl.Clients {
			want += c.Files
		}
		if cl.IndexFiles != want {
			t.Fatalf("cluster %d IndexFiles = %d, want %d", i, cl.IndexFiles, want)
		}
	}
}

func TestGenerateStrongIsClique(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GraphType = Strong
	cfg.GraphSize = 500
	cfg.ClusterSize = 50
	inst := mustGenerate(t, cfg, 4)
	if !inst.Graph.IsClique() {
		t.Error("strong graph is not a clique")
	}
	if inst.Graph.N() != 10 {
		t.Errorf("clique size = %d, want 10", inst.Graph.N())
	}
}

func TestGenerateSingleCluster(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GraphSize = 100
	cfg.ClusterSize = 100
	inst := mustGenerate(t, cfg, 5)
	if len(inst.Clusters) != 1 {
		t.Fatalf("clusters = %d, want 1", len(inst.Clusters))
	}
	if inst.Graph.Degree(0) != 0 {
		t.Errorf("single cluster should have no neighbors")
	}
}

func TestGeneratePureP2P(t *testing.T) {
	// ClusterSize 1: every node is a super-peer with no clients.
	cfg := DefaultConfig()
	cfg.GraphSize = 300
	cfg.ClusterSize = 1
	inst := mustGenerate(t, cfg, 6)
	for i := range inst.Clusters {
		if len(inst.Clusters[i].Clients) != 0 {
			t.Fatalf("pure P2P cluster %d has clients", i)
		}
	}
	if inst.NumPeers != 300 {
		t.Errorf("NumPeers = %d, want 300", inst.NumPeers)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GraphSize = 1000
	a := mustGenerate(t, cfg, 7)
	b := mustGenerate(t, cfg, 7)
	if a.NumPeers != b.NumPeers || a.TotalFiles() != b.TotalFiles() {
		t.Error("same seed produced different instances")
	}
	for i := range a.Clusters {
		if a.Clusters[i].IndexFiles != b.Clusters[i].IndexFiles {
			t.Fatalf("cluster %d differs across identical seeds", i)
		}
	}
}

func TestClusterExpectationsConsistent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GraphSize = 2000
	inst := mustGenerate(t, cfg, 8)
	qm := inst.Profile.Queries
	for i := range inst.Clusters {
		cl := &inst.Clusters[i]
		if got, want := cl.ExpResults, qm.ExpectedResults(cl.IndexFiles); math.Abs(got-want) > 1e-9 {
			t.Fatalf("cluster %d ExpResults = %v, want %v", i, got, want)
		}
		if cl.ExpAddrs > float64(cl.Users())+1e-9 {
			t.Fatalf("cluster %d ExpAddrs %v exceeds collections %d", i, cl.ExpAddrs, cl.Users())
		}
		if cl.ProbResp < 0 || cl.ProbResp > 1 {
			t.Fatalf("cluster %d ProbResp = %v", i, cl.ProbResp)
		}
		if cl.ProbResp > cl.ExpResults+1e-12 {
			t.Fatalf("cluster %d: P(respond) %v > E[results] %v", i, cl.ProbResp, cl.ExpResults)
		}
		// The address count can't exceed the result count in expectation
		// (each responding collection contributes >= 1 result).
		if cl.ExpAddrs > cl.ExpResults+1e-9 {
			t.Fatalf("cluster %d: E[addrs] %v > E[results] %v", i, cl.ExpAddrs, cl.ExpResults)
		}
	}
}

func TestConnectionCounts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GraphSize = 1000
	inst := mustGenerate(t, cfg, 9)
	if inst.ClientConns() != 1 {
		t.Errorf("ClientConns = %d, want 1", inst.ClientConns())
	}
	for v := range inst.Clusters {
		want := len(inst.Clusters[v].Clients) + inst.Graph.Degree(v)
		if got := inst.SuperPeerConns(v); got != want {
			t.Fatalf("cluster %d conns = %d, want %d", v, got, want)
		}
	}

	cfg.Redundancy = true
	inst = mustGenerate(t, cfg, 9)
	if inst.ClientConns() != 2 {
		t.Errorf("redundant ClientConns = %d, want 2", inst.ClientConns())
	}
	for v := range inst.Clusters {
		want := len(inst.Clusters[v].Clients) + 2*inst.Graph.Degree(v) + 1
		if got := inst.SuperPeerConns(v); got != want {
			t.Fatalf("redundant cluster %d conns = %d, want %d", v, got, want)
		}
	}
}

func TestForEachNodeCoversAllPeers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GraphSize = 500
	inst := mustGenerate(t, cfg, 10)
	seen := 0
	superPeers := 0
	inst.ForEachNode(func(id NodeID, p Peer) {
		seen++
		if id.IsSuperPeer() {
			superPeers++
			if id.Client != -1 {
				t.Fatal("super-peer with client index")
			}
		} else if id.Partner != -1 {
			t.Fatal("client with partner index")
		}
		if p.Lifespan <= 0 {
			t.Fatal("peer with non-positive lifespan")
		}
	})
	if seen != inst.NumPeers {
		t.Errorf("visited %d nodes, want %d", seen, inst.NumPeers)
	}
	if superPeers != len(inst.Clusters) {
		t.Errorf("visited %d super-peers, want %d", superPeers, len(inst.Clusters))
	}
}

func TestGenerateRejectsBadProfile(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GraphSize = 100
	bad := workload.DefaultProfile()
	bad.QueryLen = -5
	if _, err := Generate(cfg, bad, stats.NewRNG(1)); err == nil {
		t.Error("bad profile accepted")
	}
}

func TestGenerateInvariantsProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, sizeRaw, clRaw uint8, red bool) bool {
		size := 200 + int(sizeRaw)*4
		clusterSize := 1 + int(clRaw)%20
		if red && clusterSize < 2 {
			clusterSize = 2
		}
		cfg := DefaultConfig()
		cfg.GraphSize = size
		cfg.ClusterSize = clusterSize
		cfg.Redundancy = red
		inst, err := Generate(cfg, nil, stats.NewRNG(seed))
		if err != nil {
			return false
		}
		total := 0
		for i := range inst.Clusters {
			cl := &inst.Clusters[i]
			total += cl.Users()
			if len(cl.Partners) != cfg.Partners() {
				return false
			}
			if cl.ExpResults < 0 || cl.ExpAddrs < 0 {
				return false
			}
		}
		return total == inst.NumPeers
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestGraphTypeString(t *testing.T) {
	if Strong.String() != "strong" || PowerLaw.String() != "power-law" {
		t.Error("GraphType.String mismatch")
	}
	if GraphType(9).String() == "" {
		t.Error("unknown GraphType should still print")
	}
}

func TestKRedundancyGeneralizes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GraphSize = 600
	cfg.KRedundancy = 3
	if got := cfg.Partners(); got != 3 {
		t.Fatalf("Partners() = %d, want 3", got)
	}
	if cfg.MeanClients() != 7 {
		t.Errorf("MeanClients = %v, want 7", cfg.MeanClients())
	}
	if !cfg.Redundant() {
		t.Error("Redundant() false for k=3")
	}
	inst := mustGenerate(t, cfg, 21)
	for i := range inst.Clusters {
		if len(inst.Clusters[i].Partners) != 3 {
			t.Fatalf("cluster %d has %d partners", i, len(inst.Clusters[i].Partners))
		}
	}
	// Conns per partner: clients + 3·deg + 2 co-partner links.
	for v := range inst.Clusters {
		want := len(inst.Clusters[v].Clients) + 3*inst.Graph.Degree(v) + 2
		if got := inst.SuperPeerConns(v); got != want {
			t.Fatalf("cluster %d conns = %d, want %d", v, got, want)
		}
	}
	if inst.ClientConns() != 3 {
		t.Errorf("ClientConns = %d, want 3", inst.ClientConns())
	}
}

func TestKRedundancyPrecedence(t *testing.T) {
	c := DefaultConfig()
	c.Redundancy = true
	c.KRedundancy = 1 // explicit k overrides the flag
	if c.Partners() != 1 || c.Redundant() {
		t.Errorf("KRedundancy=1 should mean a single partner: %d", c.Partners())
	}
	c.KRedundancy = 0
	if c.Partners() != 2 {
		t.Errorf("flag fallback broken: %d", c.Partners())
	}
}

func TestKRedundancyValidation(t *testing.T) {
	c := DefaultConfig()
	c.KRedundancy = -1
	if err := c.Validate(); err == nil {
		t.Error("negative k accepted")
	}
	c.KRedundancy = 5
	c.ClusterSize = 4
	if err := c.Validate(); err == nil {
		t.Error("k > cluster size accepted")
	}
}
