// Package network generates super-peer network instances: Step 1 of the
// paper's evaluation model (Section 4.1). A configuration (Table 1) is
// turned into a concrete instance — an overlay graph whose nodes are
// clusters, each cluster holding one super-peer (or a 2-redundant virtual
// super-peer) plus its clients, with per-peer file counts and session
// lifespans drawn from the workload profile.
package network

import "fmt"

// GraphType selects the overlay topology (Table 1, "Graph Type").
type GraphType int

// Supported graph types.
const (
	// Strong is the strongly connected (complete) super-peer overlay,
	// studied as the best case for result quality and bandwidth.
	Strong GraphType = iota
	// PowerLaw is a PLOD-generated power-law overlay, reflecting the
	// measured Gnutella topology.
	PowerLaw
)

func (t GraphType) String() string {
	switch t {
	case Strong:
		return "strong"
	case PowerLaw:
		return "power-law"
	}
	return fmt.Sprintf("GraphType(%d)", int(t))
}

// Config is the paper's Table 1: the parameters describing both the topology
// of the network and user behavior.
type Config struct {
	// GraphType is the overlay type: Strong or PowerLaw.
	GraphType GraphType
	// GraphSize is the number of peers in the network (default 10000).
	GraphSize int
	// ClusterSize is the number of nodes per cluster, including the
	// super-peer itself (default 10). A pure P2P network is the degenerate
	// case ClusterSize = 1.
	ClusterSize int
	// Redundancy enables 2-redundant "virtual" super-peers (Section 3.2).
	Redundancy bool
	// KRedundancy optionally generalizes redundancy to k partners per
	// virtual super-peer. 0 defers to the Redundancy flag (k = 2 when set,
	// else 1); values >= 1 take precedence. The paper introduces
	// k-redundancy for general k but evaluates only k = 2 because the
	// number of super-peer connections grows as k²; general k is provided
	// as an extension (see the kredundancy experiment).
	KRedundancy int
	// AvgOutdegree is the suggested average outdegree of a super-peer
	// (default 3.1, the measured Gnutella average). Ignored for Strong
	// graphs, where outdegree is the number of clusters minus one.
	AvgOutdegree float64
	// TTL is the time-to-live of query messages (default 7).
	TTL int
	// PLODAlpha is the power-law credit exponent for PowerLaw graphs;
	// 0 selects the generator default.
	PLODAlpha float64
}

// DefaultConfig returns the Table 1 defaults: a power-law network of 10000
// peers, cluster size 10, no redundancy, average outdegree 3.1, TTL 7.
func DefaultConfig() Config {
	return Config{
		GraphType:    PowerLaw,
		GraphSize:    10000,
		ClusterSize:  10,
		Redundancy:   false,
		AvgOutdegree: 3.1,
		TTL:          7,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.GraphSize <= 0 {
		return fmt.Errorf("network: GraphSize = %d, want > 0", c.GraphSize)
	}
	if c.ClusterSize <= 0 || c.ClusterSize > c.GraphSize {
		return fmt.Errorf("network: ClusterSize = %d, want [1, GraphSize=%d]", c.ClusterSize, c.GraphSize)
	}
	if c.KRedundancy < 0 {
		return fmt.Errorf("network: KRedundancy = %d, want >= 0", c.KRedundancy)
	}
	if k := c.Partners(); c.ClusterSize < k {
		return fmt.Errorf("network: %d-redundancy needs ClusterSize >= %d, got %d", k, k, c.ClusterSize)
	}
	if c.TTL < 0 {
		return fmt.Errorf("network: TTL = %d, want >= 0", c.TTL)
	}
	switch c.GraphType {
	case Strong:
	case PowerLaw:
		n := c.NumClusters()
		if n > 1 {
			if c.AvgOutdegree < 1 {
				return fmt.Errorf("network: AvgOutdegree = %v, want >= 1", c.AvgOutdegree)
			}
			if c.AvgOutdegree > float64(n-1) {
				return fmt.Errorf("network: AvgOutdegree = %v exceeds clusters-1 = %d", c.AvgOutdegree, n-1)
			}
		}
	default:
		return fmt.Errorf("network: unknown graph type %d", c.GraphType)
	}
	return nil
}

// NumClusters returns the number of clusters, n = GraphSize / ClusterSize
// (Section 4.1, Step 1).
func (c Config) NumClusters() int {
	n := c.GraphSize / c.ClusterSize
	if n < 1 {
		n = 1
	}
	return n
}

// MeanClients returns the mean number of clients per cluster, c̄:
// ClusterSize minus the number of partners the virtual super-peer consumes.
func (c Config) MeanClients() float64 {
	return float64(c.ClusterSize - c.Partners())
}

// Partners returns the number of super-peer partners per cluster: k for a
// k-redundant configuration (KRedundancy, or 2 when the Redundancy flag is
// set), 1 otherwise.
func (c Config) Partners() int {
	if c.KRedundancy >= 1 {
		return c.KRedundancy
	}
	if c.Redundancy {
		return 2
	}
	return 1
}

// Redundant reports whether the virtual super-peers have more than one
// partner.
func (c Config) Redundant() bool { return c.Partners() > 1 }

func (c Config) String() string {
	red := "no"
	if k := c.Partners(); k > 1 {
		red = fmt.Sprintf("%d-redundant", k)
	}
	return fmt.Sprintf("%v graph, %d peers, cluster %d (%s), outdeg %.1f, TTL %d",
		c.GraphType, c.GraphSize, c.ClusterSize, red, c.AvgOutdegree, c.TTL)
}
