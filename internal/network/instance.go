package network

import (
	"fmt"

	"spnet/internal/stats"
	"spnet/internal/topology"
	"spnet/internal/workload"
)

// Peer is one participant: a client or a super-peer partner. Every peer owns
// a collection of files and has a session lifespan, both drawn from the
// measured distributions (Section 4.1, Step 1).
type Peer struct {
	// Files is the number of files in the peer's shared collection.
	Files int
	// Lifespan is the peer's session length in seconds; the peer's join
	// rate is its inverse ("the rate at which nodes join the system is the
	// inverse of the length of time they remain logged in").
	Lifespan float64
}

// Cluster is a super-peer (or 2-redundant virtual super-peer) together with
// its clients.
type Cluster struct {
	// Partners holds the super-peer(s): one entry normally, two with
	// redundancy. Every partner indexes all clients' files plus every
	// partner's own files.
	Partners []Peer
	// Clients are the cluster's client peers.
	Clients []Peer

	// IndexFiles is x_tot: the total number of files in the (virtual)
	// super-peer's index — all clients plus all partners.
	IndexFiles int
	// ExpResults is E[N_T | I]: expected results this cluster returns per
	// random query (Appendix B, eq. 5).
	ExpResults float64
	// ExpAddrs is E[K_T | I]: expected number of collections producing at
	// least one result, i.e. the expected address count in a Response
	// (Appendix B, eq. 6).
	ExpAddrs float64
	// ProbResp is the probability the cluster responds at all — the
	// expected number of Response messages it originates per query.
	ProbResp float64
}

// Users returns the number of query-submitting users in the cluster:
// clients plus super-peer partners (super-peers submit and answer queries
// "on behalf of their clients and themselves").
func (c *Cluster) Users() int { return len(c.Clients) + len(c.Partners) }

// Instance is one realized network: Step 1's output. Node v of Graph is
// cluster Clusters[v].
type Instance struct {
	Config   Config
	Profile  *workload.Profile
	Graph    topology.Graph
	Clusters []Cluster
	// NumPeers is the realized peer count (client draws are stochastic, so
	// it differs slightly from Config.GraphSize).
	NumPeers int
}

// Generate realizes a configuration into an instance using the given
// workload profile (nil selects the default profile) and RNG.
func Generate(cfg Config, prof *workload.Profile, rng *stats.RNG) (*Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if prof == nil {
		prof = workload.DefaultProfile()
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}

	n := cfg.NumClusters()
	var g topology.Graph
	switch cfg.GraphType {
	case Strong:
		g = topology.NewClique(n)
	case PowerLaw:
		if n == 1 {
			g = topology.NewClique(1)
		} else {
			pg, err := topology.PowerLaw(topology.PLODParams{
				N:      n,
				AvgDeg: cfg.AvgOutdegree,
				Alpha:  cfg.PLODAlpha,
			}, rng.Split(1))
			if err != nil {
				return nil, fmt.Errorf("network: generating topology: %w", err)
			}
			g = pg
		}
	default:
		return nil, fmt.Errorf("network: unknown graph type %d", cfg.GraphType)
	}

	inst := &Instance{
		Config:   cfg,
		Profile:  prof,
		Graph:    g,
		Clusters: make([]Cluster, n),
	}
	peerRNG := rng.Split(2)
	clientDist := stats.Normal{Mean: cfg.MeanClients(), StdDev: 0.2 * cfg.MeanClients()}
	samplePeer := func() Peer {
		return Peer{
			Files:    prof.Files.Sample(peerRNG),
			Lifespan: prof.Lifespans.Sample(peerRNG),
		}
	}
	for v := range inst.Clusters {
		cl := &inst.Clusters[v]
		cl.Partners = make([]Peer, cfg.Partners())
		for i := range cl.Partners {
			cl.Partners[i] = samplePeer()
		}
		// C ~ N(c̄, .2c̄), clamped to a non-negative integer (Step 1).
		numClients := clientDist.SampleNonNegInt(peerRNG, 0)
		cl.Clients = make([]Peer, numClients)
		for i := range cl.Clients {
			cl.Clients[i] = samplePeer()
		}
		inst.NumPeers += len(cl.Partners) + len(cl.Clients)
		cl.computeQueryExpectations(prof.Queries)
	}
	return inst, nil
}

// computeQueryExpectations fills the cluster's Appendix B quantities.
func (c *Cluster) computeQueryExpectations(qm *workload.QueryModel) {
	collections := make([]int, 0, len(c.Clients)+len(c.Partners))
	total := 0
	for _, p := range c.Partners {
		collections = append(collections, p.Files)
		total += p.Files
	}
	for _, p := range c.Clients {
		collections = append(collections, p.Files)
		total += p.Files
	}
	c.IndexFiles = total
	c.ExpResults = qm.ExpectedResults(total)
	c.ExpAddrs = qm.ExpectedMatchingClients(collections)
	c.ProbResp = qm.ProbAnyResult(total)
}

// SuperPeerConns returns the number of open connections one super-peer
// partner of cluster v maintains: its clients, one connection per neighbor
// partner (k·outdegree when every cluster is k-redundant, since "neighbors
// must be connected to each one of the partners"), and the k-1 co-partner
// links — the k² connection growth the paper cautions about.
func (inst *Instance) SuperPeerConns(v int) int {
	cl := &inst.Clusters[v]
	deg := inst.Graph.Degree(v)
	k := inst.Config.Partners()
	return len(cl.Clients) + deg*k + (k - 1)
}

// ClientConns returns the number of open connections a client maintains:
// one per partner super-peer.
func (inst *Instance) ClientConns() int { return inst.Config.Partners() }

// TotalUsers returns the number of query-submitting users in the instance.
func (inst *Instance) TotalUsers() int { return inst.NumPeers }

// TotalFiles returns the total number of files shared across all clusters.
func (inst *Instance) TotalFiles() int {
	total := 0
	for i := range inst.Clusters {
		total += inst.Clusters[i].IndexFiles
	}
	return total
}

// NodeID identifies one peer in the instance for per-node load reporting.
type NodeID struct {
	// Cluster is the cluster (graph node) index.
	Cluster int
	// Partner is the partner index for super-peers, -1 for clients.
	Partner int
	// Client is the client index within the cluster, -1 for super-peers.
	Client int
}

// IsSuperPeer reports whether the node is a super-peer partner.
func (id NodeID) IsSuperPeer() bool { return id.Partner >= 0 }

// ForEachNode visits every peer in the instance in a deterministic order
// (clusters ascending; partners before clients).
func (inst *Instance) ForEachNode(visit func(id NodeID, p Peer)) {
	for v := range inst.Clusters {
		cl := &inst.Clusters[v]
		for i, p := range cl.Partners {
			visit(NodeID{Cluster: v, Partner: i, Client: -1}, p)
		}
		for i, p := range cl.Clients {
			visit(NodeID{Cluster: v, Partner: -1, Client: i}, p)
		}
	}
}
