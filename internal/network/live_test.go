package network

import (
	"errors"
	"sync"
	"testing"
	"time"

	"spnet/internal/p2p"
)

func waitLive(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

var liveBackoff = p2p.Backoff{Initial: 20 * time.Millisecond, Max: 100 * time.Millisecond, Multiplier: 2, Jitter: 0.2}

// TestLiveKillMidSearchRecovery is the end-to-end churn scenario: a client's
// super-peer is killed mid-search; the client fails over to the redundant
// partner (paper §3.2), re-joins, and its next search again reaches content
// on a remote cluster through the overlay. Recovery time is measured from
// connection loss to re-join.
func TestLiveKillMidSearchRecovery(t *testing.T) {
	lv := NewLive(LiveConfig{Clusters: 2, Partners: 2, Seed: 77})
	if err := lv.Launch(); err != nil {
		t.Fatal(err)
	}
	defer lv.Close()

	provider, err := p2p.DialClient(lv.ClusterAddrs(1)[0], []p2p.SharedFile{
		{Index: 3, Title: "remote treasure"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer provider.Close()
	waitLive(t, "provider indexed", func() bool {
		return lv.Node(1, 0).Stats().IndexedFiles == 1
	})

	var evmu sync.Mutex
	var lostAt, rejoinedAt time.Time
	cl, err := p2p.DialClientOptions(p2p.DialOptions{
		Addrs:   lv.ClusterAddrs(0),
		Backoff: liveBackoff,
		Seed:    7,
		OnEvent: func(e p2p.Event) {
			evmu.Lock()
			defer evmu.Unlock()
			switch e.Type {
			case p2p.EventConnLost:
				if lostAt.IsZero() {
					lostAt = time.Now()
				}
			case p2p.EventRejoined:
				rejoinedAt = time.Now()
			}
		},
	}, []p2p.SharedFile{{Index: 1, Title: "local copy"}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	waitLive(t, "client joined", func() bool {
		return lv.Node(0, 0).Stats().IndexedFiles == 1
	})

	// Sanity: the overlay search works before the crash.
	r, err := cl.Search("treasure", 500*time.Millisecond)
	if err != nil || len(r) != 1 {
		t.Fatalf("pre-crash search = %+v, %v", r, err)
	}

	go func() {
		time.Sleep(50 * time.Millisecond)
		lv.KillSuperPeer(0, 0)
	}()
	if _, err := cl.Search("treasure", 2*time.Second); err == nil {
		t.Fatal("search across the killed super-peer reported clean completion")
	}

	// Failover to the redundant partner, then the overlay search works
	// again end to end.
	r, err = cl.Search("treasure", time.Second)
	if err != nil {
		t.Fatalf("post-failover search: %v", err)
	}
	if len(r) != 1 || r[0].FileIndex != 3 {
		t.Fatalf("post-failover results = %+v, want remote file 3", r)
	}
	if got, want := cl.SuperPeerAddr(), lv.ClusterAddrs(0)[1]; got != want {
		t.Errorf("client on %s, want redundant partner %s", got, want)
	}
	waitLive(t, "client re-indexed on partner", func() bool {
		return lv.Node(0, 1).Stats().IndexedFiles == 1
	})

	evmu.Lock()
	recovery := rejoinedAt.Sub(lostAt)
	evmu.Unlock()
	if lostAt.IsZero() || rejoinedAt.IsZero() {
		t.Fatal("failover events not observed")
	}
	if recovery <= 0 || recovery > 2*time.Second {
		t.Errorf("measured recovery time %v, want a small positive duration", recovery)
	}
	t.Logf("measured recovery time (conn lost -> rejoined): %v", recovery)
}

// TestLiveRestartRejoinsOverlay checks RestartSuperPeer: the slot comes back
// on its original address and re-establishes its overlay links.
func TestLiveRestartRejoinsOverlay(t *testing.T) {
	lv := NewLive(LiveConfig{Clusters: 2, Partners: 2, Seed: 5})
	if err := lv.Launch(); err != nil {
		t.Fatal(err)
	}
	defer lv.Close()

	addr := lv.ClusterAddrs(0)[0]
	if err := lv.KillSuperPeer(0, 0); err != nil {
		t.Fatal(err)
	}
	if lv.Node(0, 0) != nil {
		t.Fatal("killed slot still reports a node")
	}
	if err := lv.KillSuperPeer(0, 0); err == nil {
		t.Error("double kill reported success")
	}
	// The survivors notice the crash (TCP reset) and shed the links.
	waitLive(t, "links shed", func() bool {
		return lv.Node(0, 1).Stats().Peers == 2 && lv.Node(1, 0).Stats().Peers == 2
	})

	if err := lv.RestartSuperPeer(0, 0); err != nil {
		t.Fatal(err)
	}
	if got := lv.ClusterAddrs(0)[0]; got != addr {
		t.Errorf("restarted on %s, want original address %s", got, addr)
	}
	// Co-partner plus both partners of the adjacent cluster.
	waitLive(t, "overlay re-joined", func() bool {
		return lv.Node(0, 0).Stats().Peers == 3
	})
}

// TestLiveAllPartnersDown drives the supervised client into the worst case:
// every ranked redundant partner of its cluster is dead. The failover cycle
// must respect the backoff cap, terminate with EventGaveUp (Search surfacing
// ErrNoSuperPeer), and — because the watchdog keeps retrying each heartbeat —
// recover on its own once RestartSuperPeer brings a partner back.
func TestLiveAllPartnersDown(t *testing.T) {
	lv := NewLive(LiveConfig{Clusters: 2, Partners: 2, Seed: 13})
	if err := lv.Launch(); err != nil {
		t.Fatal(err)
	}
	defer lv.Close()

	provider, err := p2p.DialClient(lv.ClusterAddrs(1)[0], []p2p.SharedFile{
		{Index: 5, Title: "phoenix prize"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer provider.Close()
	waitLive(t, "provider indexed", func() bool {
		return lv.Node(1, 0).Stats().IndexedFiles == 1
	})

	backoff := p2p.Backoff{Initial: 5 * time.Millisecond, Max: 25 * time.Millisecond, Multiplier: 2, Jitter: 0.2}
	var evmu sync.Mutex
	var events []p2p.Event
	cl, err := p2p.DialClientOptions(p2p.DialOptions{
		Addrs:             lv.ClusterAddrs(0),
		Backoff:           backoff,
		MaxAttempts:       4,
		HeartbeatInterval: 30 * time.Millisecond,
		Seed:              3,
		OnEvent: func(e p2p.Event) {
			evmu.Lock()
			events = append(events, e)
			evmu.Unlock()
		},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Kill the whole ranked list: both partners of cluster 0.
	if err := lv.KillSuperPeer(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := lv.KillSuperPeer(0, 1); err != nil {
		t.Fatal(err)
	}

	// With nothing to fail over to, the cycle exhausts MaxAttempts and
	// Search surfaces the terminal error. The first Search may instead die
	// on the half-closed connection, so retry until the typed error shows.
	waitLive(t, "search reports ErrNoSuperPeer", func() bool {
		_, err := cl.Search("prize", 100*time.Millisecond)
		return errors.Is(err, p2p.ErrNoSuperPeer)
	})

	evmu.Lock()
	var backoffs, gaveUp int
	for _, e := range events {
		switch e.Type {
		case p2p.EventBackoff:
			backoffs++
			if e.Delay <= 0 || e.Delay > backoff.Max {
				t.Errorf("backoff delay %v outside (0, %v]", e.Delay, backoff.Max)
			}
		case p2p.EventGaveUp:
			gaveUp++
			if !errors.Is(e.Err, p2p.ErrNoSuperPeer) {
				t.Errorf("EventGaveUp err = %v, want ErrNoSuperPeer", e.Err)
			}
		}
	}
	evmu.Unlock()
	if backoffs == 0 {
		t.Error("no EventBackoff observed across the failover cycle")
	}
	if gaveUp == 0 {
		t.Error("no EventGaveUp observed with every partner down")
	}

	// Recovery: restart one partner; the watchdog's periodic failover
	// reconnects and re-joins without any new Search being needed.
	if err := lv.RestartSuperPeer(0, 0); err != nil {
		t.Fatal(err)
	}
	waitLive(t, "client rejoined restarted partner", func() bool {
		evmu.Lock()
		defer evmu.Unlock()
		for _, e := range events {
			if e.Type == p2p.EventRejoined {
				return true
			}
		}
		return false
	})
	// The restarted super-peer re-links the overlay, so a search reaches
	// the remote cluster's content again end to end.
	waitLive(t, "post-recovery search", func() bool {
		r, err := cl.Search("prize", 300*time.Millisecond)
		return err == nil && len(r) == 1 && r[0].FileIndex == 5
	})
}

// TestLivePartitionCluster checks PartitionCluster/HealCluster: a
// partitioned cluster's content disappears from search results — without
// errors, queries into the partition just go dark — and healing restores it.
func TestLivePartitionCluster(t *testing.T) {
	lv := NewLive(LiveConfig{Clusters: 2, Partners: 1, Seed: 9})
	if err := lv.Launch(); err != nil {
		t.Fatal(err)
	}
	defer lv.Close()

	provider, err := p2p.DialClient(lv.ClusterAddrs(1)[0], []p2p.SharedFile{
		{Index: 8, Title: "partitioned prize"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer provider.Close()
	waitLive(t, "provider indexed", func() bool {
		return lv.Node(1, 0).Stats().IndexedFiles == 1
	})

	search := func() int {
		out, err := lv.Node(0, 0).SearchDetailed("prize", 300*time.Millisecond)
		if err != nil {
			t.Fatalf("SearchDetailed: %v", err)
		}
		return len(out.Results)
	}
	if n := search(); n != 1 {
		t.Fatalf("pre-partition results = %d, want 1", n)
	}

	lv.PartitionCluster(1)
	if n := search(); n != 0 {
		t.Errorf("results from a partitioned cluster = %d, want 0", n)
	}

	lv.HealCluster(1)
	// The healed link may deliver the stale query first; retry briefly.
	waitLive(t, "post-heal search", func() bool { return search() == 1 })
}
