// Package parallel is the deterministic evaluation substrate shared by the
// analysis, experiments and design layers: a bounded worker pool with ordered
// fan-in. Callers enumerate independent tasks up front (deriving any RNG
// streams sequentially, so stream assignment never depends on scheduling),
// the pool evaluates them on up to Workers goroutines, and results land in
// task order — making every consumer bit-identical to its serial equivalent
// at any worker count.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count override: n when n > 0, otherwise
// GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on up to Workers(workers)
// goroutines and returns the error of the lowest-indexed failing task, or
// nil. Indices are claimed in increasing order and claiming stops after a
// failure, so the reported error does not depend on worker count or
// scheduling: every task below the failing index has already been claimed
// and runs to completion, and any lower-indexed failure among them wins.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup

		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		failed.Store(true)
	}
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Map evaluates fn over [0, n) with bounded parallelism and returns the
// results in index order. On error the partial results are discarded and the
// lowest-indexed task error is returned.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapStream is Map with ordered streaming: emit(i, v) is called for each
// result in strict index order, as soon as every result up to and including
// index i has completed — not at the end of the sweep. Emits are serialized
// under one lock, so consumers need no locking of their own. Results emitted
// before a failure stay emitted (that is the point: partial output survives
// an interrupted sweep), but the returned slice is nil on error, exactly like
// Map. A nil emit degrades to Map.
func MapStream[T any](workers, n int, emit func(i int, v T), fn func(i int) (T, error)) ([]T, error) {
	if emit == nil {
		return Map(workers, n, fn)
	}
	out := make([]T, n)
	var (
		mu      sync.Mutex
		done    = make([]bool, n)
		flushed int
	)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		mu.Lock()
		out[i] = v
		done[i] = true
		for flushed < n && done[flushed] {
			emit(flushed, out[flushed])
			flushed++
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForEachProgress is ForEach with a completion callback: after each task
// succeeds, progress(done, n) reports the cumulative count. Calls are
// serialized and done is strictly increasing, so callers can print progress
// without their own locking. Progress reporting never affects results: task
// order, RNG streams and error selection are exactly ForEach's.
func ForEachProgress(workers, n int, progress func(done, total int), fn func(i int) error) error {
	if progress == nil {
		return ForEach(workers, n, fn)
	}
	var (
		mu   sync.Mutex
		done int
	)
	return ForEach(workers, n, func(i int) error {
		if err := fn(i); err != nil {
			return err
		}
		mu.Lock()
		done++
		progress(done, n)
		mu.Unlock()
		return nil
	})
}

// MapProgress is Map with a ForEachProgress-style completion callback.
func MapProgress[T any](workers, n int, progress func(done, total int), fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachProgress(workers, n, progress, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
