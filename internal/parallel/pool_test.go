package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestMapOrdered(t *testing.T) {
	for _, w := range []int{1, 2, 4, 0} {
		got, err := Map(w, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	calls := 0
	if err := ForEach(4, 0, func(int) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Errorf("fn called %d times for n=0", calls)
	}
}

// TestLowestIndexErrorWins: the reported error must be the lowest-indexed
// failure regardless of worker count — the same error the serial loop would
// return.
func TestLowestIndexErrorWins(t *testing.T) {
	errAt := func(i int) error { return fmt.Errorf("task %d failed", i) }
	for _, w := range []int{1, 2, 8} {
		err := ForEach(w, 50, func(i int) error {
			if i == 7 || i == 31 {
				return errAt(i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 7 failed" {
			t.Errorf("workers=%d: err = %v, want task 7 failed", w, err)
		}
	}
}

// TestConcurrencyBounded checks the pool never runs more than the requested
// number of tasks at once.
func TestConcurrencyBounded(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	err := ForEach(workers, 64, func(int) error {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		runtime.Gosched()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d > %d workers", p, workers)
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	out, err := Map(4, 10, func(i int) (int, error) {
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if out != nil {
		t.Errorf("partial results returned on error")
	}
}

func TestMapProgressReportsMonotonically(t *testing.T) {
	for _, w := range []int{1, 4, 0} {
		var mu sync.Mutex
		var seen []int
		got, err := MapProgress(w, 50, func(done, total int) {
			if total != 50 {
				t.Errorf("workers=%d: total = %d, want 50", w, total)
			}
			mu.Lock()
			seen = append(seen, done)
			mu.Unlock()
		}, func(i int) (int, error) { return i + 1, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, v := range got {
			if v != i+1 {
				t.Fatalf("workers=%d: got[%d] = %d", w, i, v)
			}
		}
		if len(seen) != 50 {
			t.Fatalf("workers=%d: %d progress calls, want 50", w, len(seen))
		}
		for i, d := range seen {
			if d != i+1 {
				t.Fatalf("workers=%d: progress[%d] = %d, want strictly increasing from 1", w, i, d)
			}
		}
	}
}

func TestForEachProgressNilCallback(t *testing.T) {
	var ran atomic.Int64
	if err := ForEachProgress(4, 10, nil, func(int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 10 {
		t.Errorf("ran %d tasks, want 10", ran.Load())
	}
}

func TestMapProgressStopsReportingOnError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	_, err := MapProgress(3, 20, func(done, total int) {
		calls.Add(1)
	}, func(i int) (int, error) {
		if i == 5 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Failed tasks never report; only successes count.
	if calls.Load() >= 20 {
		t.Errorf("progress called %d times despite a failure", calls.Load())
	}
}

func TestMapStreamEmitsInOrder(t *testing.T) {
	for _, w := range []int{1, 3, 0} {
		var emitted []int
		got, err := MapStream(w, 50, func(i, v int) {
			emitted = append(emitted, v)
		}, func(i int) (int, error) { return i * 3, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(emitted) != 50 || len(got) != 50 {
			t.Fatalf("workers=%d: emitted %d, returned %d", w, len(emitted), len(got))
		}
		for i, v := range emitted {
			if v != i*3 {
				t.Fatalf("workers=%d: emitted[%d] = %d, want %d (out of order)", w, i, v, i*3)
			}
		}
	}
}

func TestMapStreamKeepsPrefixOnError(t *testing.T) {
	boom := errors.New("boom")
	var emitted []int
	got, err := MapStream(1, 10, func(i, v int) {
		emitted = append(emitted, v)
	}, func(i int) (int, error) {
		if i == 4 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) || got != nil {
		t.Fatalf("err = %v, got = %v", err, got)
	}
	// Serial workers: exactly the prefix before the failure was emitted.
	if len(emitted) != 4 {
		t.Fatalf("emitted %v, want the 4-row prefix", emitted)
	}
	for i, v := range emitted {
		if v != i {
			t.Fatalf("emitted[%d] = %d", i, v)
		}
	}
}

func TestMapStreamNilEmit(t *testing.T) {
	got, err := MapStream[int](2, 5, nil, func(i int) (int, error) { return i, nil })
	if err != nil || len(got) != 5 {
		t.Fatalf("got %v, %v", got, err)
	}
}
