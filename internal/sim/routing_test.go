package sim

import (
	"fmt"
	"testing"

	"spnet/internal/network"
	"spnet/internal/routing"
	"spnet/internal/stats"
	"spnet/internal/topology"
	"spnet/internal/workload"
)

// routingStarInstance hand-builds the fixed topology the strategy tests run
// on: a hub with `leaves` leaf super-peers, TTL 2, `clients` clients per
// cluster, no churn. With topic-partitioned content (every cluster c's files
// titled "topic<c>", queries for a uniform topic) ground truth is exact:
// each query has `clients` matching files, all in one cluster, and a flood
// reaches every cluster.
func routingStarInstance(t *testing.T, leaves, clients int) *network.Instance {
	t.Helper()
	qm, err := workload.NewQueryModel([]float64{1}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	edges := make([][2]int, leaves)
	for i := range edges {
		edges[i] = [2]int{0, i + 1}
	}
	graph, err := topology.NewAdjGraph(leaves+1, edges)
	if err != nil {
		t.Fatal(err)
	}
	const never = 1e12
	n := leaves + 1
	clusters := make([]network.Cluster, n)
	for v := range clusters {
		cl := network.Cluster{
			Partners:   []network.Peer{{Files: 0, Lifespan: never}},
			IndexFiles: clients,
			ExpResults: float64(clients) / float64(n),
			ExpAddrs:   float64(clients) / float64(n),
			ProbResp:   1 / float64(n),
		}
		for i := 0; i < clients; i++ {
			cl.Clients = append(cl.Clients, network.Peer{Files: 1, Lifespan: never})
		}
		clusters[v] = cl
	}
	return &network.Instance{
		Config: network.Config{
			GraphType:   network.PowerLaw,
			GraphSize:   n * (clients + 1),
			ClusterSize: clients + 1,
			KRedundancy: 1,
			TTL:         2,
		},
		Profile: &workload.Profile{
			Queries:  qm,
			Rates:    workload.Rates{QueryRate: 0.05},
			QueryLen: 6,
		},
		Graph:    graph,
		Clusters: clusters,
		NumPeers: n * (clients + 1),
	}
}

// runStarStrategy simulates one strategy over the star with planted topics
// and returns the measurement.
func runStarStrategy(t *testing.T, strat routing.Strategy, seed uint64) *Measured {
	t.Helper()
	const leaves, clients = 4, 3
	inst := routingStarInstance(t, leaves, clients)
	m, err := Run(inst, Options{
		Duration: 1500,
		Seed:     seed,
		Routing:  strat,
		Content: &ContentOptions{
			Titles: func(cluster, owner, file int) []string {
				return []string{fmt.Sprintf("topic%d", cluster)}
			},
			Queries: func(rng *stats.RNG) []string {
				return []string{fmt.Sprintf("topic%d", rng.Intn(leaves+1))}
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.QueriesIssued == 0 {
		t.Fatal("no queries issued")
	}
	return m
}

func fwdPerQuery(m *Measured) float64 {
	return float64(m.QueriesForwarded) / float64(m.QueriesIssued)
}

func TestRoutingStrategiesOnStar(t *testing.T) {
	flood := runStarStrategy(t, nil, 9)
	if flood.Strategy != "flood" {
		t.Errorf("nil routing recorded strategy %q, want flood", flood.Strategy)
	}
	// Every query floods the whole star at TTL 2: 4 copies exactly (1+3 from
	// a leaf, 4 from the hub), and finds all 3 planted matches.
	if got := fwdPerQuery(flood); got != 4 {
		t.Errorf("flood forwards/query = %g, want exactly 4", got)
	}
	if flood.ResultsPerQuery != 3 {
		t.Errorf("flood results/query = %g, want exactly 3", flood.ResultsPerQuery)
	}

	ri := runStarStrategy(t, routing.NewRoutingIndex(), 9)
	// Conservative summaries never prune a matching branch: recall identical
	// to flood, bandwidth well under half of it (closed form: 1.28 vs 4).
	if ri.ResultsPerQuery != flood.ResultsPerQuery {
		t.Errorf("routingindex results/query = %g, want flood's %g",
			ri.ResultsPerQuery, flood.ResultsPerQuery)
	}
	if got := fwdPerQuery(ri); got >= 0.6*fwdPerQuery(flood) {
		t.Errorf("routingindex forwards/query = %g, want < 60%% of flood's %g",
			got, fwdPerQuery(flood))
	}

	rw := runStarStrategy(t, routing.NewRandomWalk(2), 9)
	// Two walkers cap the source fan-out: strictly cheaper than flood,
	// strictly lossy on a star where only one branch holds the answer.
	if got := fwdPerQuery(rw); got >= fwdPerQuery(flood) || got <= 0 {
		t.Errorf("randomwalk forwards/query = %g, want in (0, %g)", got, fwdPerQuery(flood))
	}
	if rw.ResultsPerQuery >= flood.ResultsPerQuery {
		t.Errorf("randomwalk results/query = %g, want < flood's %g",
			rw.ResultsPerQuery, flood.ResultsPerQuery)
	}

	ln := runStarStrategy(t, routing.NewLearned(), 9)
	// Hit history prunes barren branches over the run; the productive ones
	// keep producing, so recall stays near flood's.
	if got := fwdPerQuery(ln); got >= 0.8*fwdPerQuery(flood) {
		t.Errorf("learned forwards/query = %g, want < 80%% of flood's %g",
			got, fwdPerQuery(flood))
	}
	if ln.ResultsPerQuery < 0.9*flood.ResultsPerQuery {
		t.Errorf("learned results/query = %g, want >= 90%% of flood's %g",
			ln.ResultsPerQuery, flood.ResultsPerQuery)
	}
}

func TestRoutingStrategyDeterministic(t *testing.T) {
	for _, mk := range []func() routing.Strategy{
		func() routing.Strategy { return routing.NewRandomWalk(2) },
		func() routing.Strategy { return routing.NewLearned() },
	} {
		a, b := runStarStrategy(t, mk(), 21), runStarStrategy(t, mk(), 21)
		if a.QueriesForwarded != b.QueriesForwarded ||
			a.ResultsPerQuery != b.ResultsPerQuery ||
			a.EventsExecuted != b.EventsExecuted {
			t.Errorf("%s: same seed diverged: forwards %d vs %d, results %g vs %g, events %d vs %d",
				a.Strategy, a.QueriesForwarded, b.QueriesForwarded,
				a.ResultsPerQuery, b.ResultsPerQuery, a.EventsExecuted, b.EventsExecuted)
		}
	}
}
