package sim

import "spnet/internal/faults"

// FailureOptions inject super-peer failures, quantifying the reliability
// argument of Section 3.2: "if one partner fails, the others may continue to
// service clients and neighbors until a new partner can be found. The
// probability that all partners will fail before any failed partner can be
// replaced is much lower than the probability of a single super-peer
// failing."
type FailureOptions struct {
	// MTBF is each partner's mean time between failures in seconds
	// (exponentially distributed).
	MTBF float64
	// RecoveryDelay is how long it takes to find and provision a
	// replacement partner after a failure, in seconds.
	RecoveryDelay float64
	// Schedule, when non-empty, replays a fixed failure schedule (virtual
	// seconds from simulation start) instead of the stochastic MTBF
	// process. The same schedule can drive the live harness, so simulated
	// and measured recovery can be compared event for event.
	Schedule faults.Schedule
}

// replayMode reports whether failures come from a fixed schedule.
func (f *FailureOptions) replayMode() bool { return len(f.Schedule) > 0 }

// failureState tracks a cluster's outage bookkeeping.
type failureState struct {
	// down is true while the cluster has no live partner: clients are
	// disconnected and overlay traffic to the cluster is lost.
	down bool
}

// scheduleFailures installs the per-partner failure process for a cluster.
func (s *Simulator) scheduleFailures(c *clusterNode) {
	f := s.opts.Failures
	if f == nil || (f.MTBF <= 0 && !f.replayMode()) {
		return
	}
	if c.failures == nil {
		c.failures = &failureState{}
	}
	for _, p := range c.partners {
		s.schedulePartnerFailure(p)
	}
}

// schedulePartnerFailure arms the stochastic failure clock for one partner.
// In replay mode there is no per-partner clock: scheduleReplay installs the
// fixed events once for the whole run.
func (s *Simulator) schedulePartnerFailure(p *partnerNode) {
	f := s.opts.Failures
	if f.replayMode() || f.MTBF <= 0 {
		return
	}
	s.sched.schedule(s.rng.ExpFloat64()*f.MTBF, func() {
		if !p.alive() || p.cluster.isDown() {
			return
		}
		s.failPartner(p)
	})
}

// scheduleReplay installs a fixed failure schedule: each event kills the
// given partner slot of the given cluster at its virtual time. Events aimed
// at a slot that no longer exists (already failed and not yet replaced) or
// at a dark cluster are dropped, mirroring a live run where that process is
// already dead.
func (s *Simulator) scheduleReplay() {
	for _, ev := range s.opts.Failures.Schedule.Truncate(s.opts.Duration) {
		ev := ev
		if ev.Cluster < 0 || ev.Cluster >= len(s.clusters) {
			continue
		}
		c := s.clusters[ev.Cluster]
		s.sched.schedule(ev.At, func() {
			if c.dissolved() || c.isDown() ||
				ev.Partner < 0 || ev.Partner >= len(c.partners) {
				return
			}
			s.failPartner(c.partners[ev.Partner])
		})
	}
}

func (c *clusterNode) isDown() bool { return c.failures != nil && c.failures.down }

// failPartner takes one partner out of service. With co-partners remaining,
// the virtual super-peer keeps serving (the redundancy payoff); otherwise the
// whole cluster goes dark until recovery.
func (s *Simulator) failPartner(p *partnerNode) {
	c := p.cluster
	s.failuresInjected++

	if len(c.partners) > 1 {
		// Remove the failed partner; the co-partners carry on.
		for i, q := range c.partners {
			if q == p {
				c.partners = append(c.partners[:i], c.partners[i+1:]...)
				break
			}
		}
		s.sched.schedule(s.opts.Failures.RecoveryDelay, func() {
			// If the whole cluster went dark in the meantime, the full
			// recovery below restores the redundancy level instead.
			if c.dissolved() || c.isDown() || len(c.partners) >= c.targetPartners {
				return
			}
			s.replacePartner(c, p.files, p.lifespan)
		})
		return
	}

	// Single super-peer: the cluster is dark until a replacement arrives.
	c.failures.down = true
	s.sched.schedule(s.opts.Failures.RecoveryDelay, func() { s.recoverCluster(c) })
}

// replacePartner provisions a new partner: every client ships its metadata
// to it and one surviving co-partner hands over its collection, after which
// the partner resumes normal service (including its own failure process).
func (s *Simulator) replacePartner(c *clusterNode, files int, lifespan float64) {
	p := &partnerNode{cluster: c, files: files, lifespan: lifespan}
	c.partners = append(c.partners, p)
	for _, cl := range c.clients {
		s.clientJoinOne(cl, p)
	}
	s.partnerRejoin(c.partners[0])
	s.startPartnerProcesses(p, false)
	s.schedulePartnerFailure(p)
}

// recoverCluster brings a dark cluster back: a statistically identical
// replacement super-peer re-occupies the slot (stable population), the
// cluster's redundancy level is restored with freshly provisioned partners,
// and every client re-joins.
func (s *Simulator) recoverCluster(c *clusterNode) {
	if c.dissolved() {
		return
	}
	c.failures.down = false
	s.schedulePartnerFailure(c.partners[0])
	for len(c.partners) < c.targetPartners {
		p := &partnerNode{
			cluster:  c,
			files:    s.prof.Files.Sample(s.rng),
			lifespan: s.prof.Lifespans.Sample(s.rng),
		}
		c.partners = append(c.partners, p)
		s.partnerRejoin(c.partners[0])
		s.startPartnerProcesses(p, false)
		s.schedulePartnerFailure(p)
	}
	for _, cl := range c.clients {
		s.clientJoin(cl)
	}
}
