package sim

import (
	"spnet/internal/analysis"
	"spnet/internal/cost"
	"spnet/internal/design"
)

// AdaptiveOptions turn on the Section 5.3 local decision rules: each
// super-peer periodically inspects its own measured load and acts — growing
// its outdegree, promoting partners, splitting or merging clusters, dropping
// useless neighbors (Appendix E), and decaying its TTL (rule III) — steering
// the network toward a globally efficient topology with no central
// coordinator.
type AdaptiveOptions struct {
	// Limit is the load each super-peer is willing to handle (the paper's
	// "limited altruism" assumption).
	Limit analysis.Load
	// Thresholds tune the advisor; zero values select the defaults.
	Thresholds design.Thresholds
	// Interval is the local evaluation period in seconds (default 60).
	Interval float64
	// MaxOutdegree caps rule II's neighbor growth (default 30).
	MaxOutdegree int
	// ArrivalRate is the rate (clients/second) at which brand-new clients
	// arrive and ask a random super-peer for admission, exercising rule I
	// under population growth. Zero disables arrivals.
	ArrivalRate float64
}

func (o *AdaptiveOptions) interval() float64 {
	if o.Interval <= 0 {
		return 60
	}
	return o.Interval
}

func (o *AdaptiveOptions) maxOutdegree() int {
	if o.MaxOutdegree <= 0 {
		return 30
	}
	return o.MaxOutdegree
}

// adaptiveState is one cluster's local bookkeeping between evaluations.
type adaptiveState struct {
	lastIn, lastOut, lastProc float64 // counter snapshots at the last eval
	lastEvalAt                float64
	prevClients               int

	// Response-horizon observation for rule III. The window accumulates
	// across evaluations until enough of the cluster's own queries have
	// been seen to trust the horizon ("if a super-peer rarely or never
	// receives responses from beyond x hops away").
	ttlWindowMaxHops int
	ttlWindowQueries int

	// Results-per-query observation, also used by the Appendix E probe.
	resultsObserved float64
	queriesObserved int

	// Appendix E neighbor probe. Judgment is deferred until the probe has
	// seen enough of the cluster's own queries to compare result rates.
	probing        bool
	probedNeighbor *clusterNode
	resultsBefore  float64 // results/query before the probe
	probeQueries   int
	probeResults   float64
}

// noteSourceQuery and noteSourceResponse feed the local observations the
// adaptive rules depend on; they are called from the protocol path.
func (s *Simulator) noteSourceQuery(c *clusterNode, localResults int) {
	if c.adaptive == nil {
		return
	}
	c.adaptive.queriesObserved++
	c.adaptive.resultsObserved += float64(localResults)
	c.adaptive.ttlWindowQueries++
	if c.adaptive.probing {
		c.adaptive.probeQueries++
		c.adaptive.probeResults += float64(localResults)
	}
}

func (s *Simulator) noteSourceResponse(c *clusterNode, msg respMsg) {
	if c.adaptive == nil {
		return
	}
	c.adaptive.resultsObserved += float64(msg.results)
	if msg.hops > c.adaptive.ttlWindowMaxHops {
		c.adaptive.ttlWindowMaxHops = msg.hops
	}
	if c.adaptive.probing {
		c.adaptive.probeResults += float64(msg.results)
	}
}

// scheduleAdaptive installs the periodic local evaluation for one cluster
// and, once per simulation, the new-client arrival process.
func (s *Simulator) scheduleAdaptive(c *clusterNode) {
	c.adaptive = &adaptiveState{prevClients: len(c.clients), lastEvalAt: s.sched.now}
	var tick func()
	tick = func() {
		if c.dissolved() {
			return
		}
		s.adaptiveEvaluate(c)
		s.sched.schedule(s.opts.Adaptive.interval(), tick)
	}
	// Phase-shift evaluations so clusters do not act in lockstep.
	s.sched.schedule(s.rng.Float64()*s.opts.Adaptive.interval(), tick)

	if !s.arrivalsScheduled && s.opts.Adaptive.ArrivalRate > 0 {
		s.arrivalsScheduled = true
		s.scheduleGuardedProcess(s.opts.Adaptive.ArrivalRate,
			func() bool { return true }, s.newClientArrival)
	}
}

// observedLoad returns the cluster's mean per-partner load since the last
// evaluation, and snapshots the counters.
func (s *Simulator) observedLoad(c *clusterNode) analysis.Load {
	st := c.adaptive
	var in, out, proc float64
	for _, p := range c.partners {
		in += p.counters.bytesIn
		out += p.counters.bytesOut
		proc += p.counters.procU
	}
	dt := s.sched.now - st.lastEvalAt
	if dt <= 0 {
		dt = 1
	}
	k := float64(len(c.partners))
	load := analysis.Load{
		InBps:  (in - st.lastIn) * 8 / dt / k,
		OutBps: (out - st.lastOut) * 8 / dt / k,
		ProcHz: cost.UnitsToHz(proc-st.lastProc) / dt / k,
	}
	st.lastIn, st.lastOut, st.lastProc = in, out, proc
	st.lastEvalAt = s.sched.now
	return load
}

// adaptiveEvaluate runs one Section 5.3 decision round for a cluster.
func (s *Simulator) adaptiveEvaluate(c *clusterNode) {
	st := c.adaptive
	opts := s.opts.Adaptive
	load := s.observedLoad(c)

	resultsPerQuery := 0.0
	if st.queriesObserved > 0 {
		resultsPerQuery = st.resultsObserved / float64(st.queriesObserved)
	}

	// Appendix E probe: judge the most recent neighbor addition only once
	// enough queries have flowed to compare result rates fairly.
	const probeMinQueries = 20
	probeReady := st.probing && st.probeQueries >= probeMinQueries
	probeGain := false
	if probeReady {
		probeGain = st.probeResults/float64(st.probeQueries) > st.resultsBefore*1.02
	}
	// Rule III needs a trustworthy horizon: only report the observed
	// maximum response distance once enough of the cluster's own queries
	// have been sampled, and let the TTL decay one hop per decision so a
	// noisy window cannot collapse the reach.
	const ttlMinQueries = 30
	maxRespHops := 0
	if st.ttlWindowQueries >= ttlMinQueries {
		maxRespHops = st.ttlWindowMaxHops
	}
	state := design.LocalState{
		Load:                       load,
		Limit:                      opts.Limit,
		Clients:                    len(c.clients),
		Outdegree:                  len(c.neighbors),
		TTL:                        c.ttl,
		MaxRespHops:                maxRespHops,
		ClusterGrowing:             len(c.clients) > st.prevClients,
		ProbedNeighbor:             probeReady,
		GainedResultsAfterNeighbor: probeGain,
	}
	adv := design.Advise(state, opts.Thresholds)

	c.acceptingClients = adv.AcceptClients

	if adv.DropProbedNeighbor && st.probedNeighbor != nil && !st.probedNeighbor.dissolved() {
		s.removeEdge(c, st.probedNeighbor)
	}
	if probeReady || adv.DropProbedNeighbor {
		st.probing = false
		st.probedNeighbor = nil
		st.probeQueries = 0
		st.probeResults = 0
	}

	switch {
	case adv.PromotePartner && len(c.partners) == 1 && len(c.clients) >= 2:
		s.promotePartner(c)
	case adv.SplitCluster && len(c.partners) > 1 && len(c.clients) >= 4:
		// Already redundant and still overloaded: split instead.
		s.splitCluster(c)
	case adv.TryCoalesce:
		s.tryCoalesce(c)
	}

	if adv.AddNeighbor && !st.probing && len(c.neighbors) < opts.maxOutdegree() {
		if nb := s.randomNonNeighbor(c); nb != nil {
			s.addEdge(c, nb)
			st.probing = true
			st.probedNeighbor = nb
			st.resultsBefore = resultsPerQuery
			st.probeQueries = 0
			st.probeResults = 0
		}
	}

	if adv.NewTTL < c.ttl {
		c.ttl--
		if c.ttl < adv.NewTTL {
			c.ttl = adv.NewTTL
		}
		st.ttlWindowMaxHops = 0
		st.ttlWindowQueries = 0
	} else if st.ttlWindowQueries >= ttlMinQueries {
		// Horizon checked and the TTL held: start a fresh window.
		st.ttlWindowMaxHops = 0
		st.ttlWindowQueries = 0
	}

	st.prevClients = len(c.clients)
	st.resultsObserved = 0
	st.queriesObserved = 0
}

// newClientArrival models the bootstrap path: a fresh client asks a random
// super-peer ("pong server" style) for admission; per rule I super-peers
// accept unless overloaded, in which case the client retries elsewhere.
func (s *Simulator) newClientArrival() {
	prof := s.prof
	for attempts := 0; attempts < 5; attempts++ {
		target := s.clusters[s.rng.Intn(len(s.clusters))]
		if target.dissolved() || !target.acceptingClients {
			continue
		}
		c := &clientNode{
			cluster:  target,
			files:    prof.Files.Sample(s.rng),
			lifespan: prof.Lifespans.Sample(s.rng),
		}
		target.clients = append(target.clients, c)
		s.clientJoin(c)
		s.startClientProcesses(c, false)
		return
	}
}

// promotePartner converts the most capable client into a second super-peer
// partner (rule I's preferred overload response; rule #2 says redundancy is
// good). Every remaining client ships its metadata to the new partner, and
// the existing partner hands over its own collection.
func (s *Simulator) promotePartner(c *clusterNode) {
	cl := s.detachLargestClient(c)
	if cl == nil {
		return
	}
	p := &partnerNode{cluster: c, files: cl.files, lifespan: cl.lifespan}
	c.partners = append(c.partners, p)
	c.targetPartners = len(c.partners)
	cl.cluster = nil // retire the client slot; its processes stop

	for _, other := range c.clients {
		s.clientJoinOne(other, p)
	}
	s.partnerRejoin(c.partners[0])
	s.startPartnerProcesses(p, false)
}

// splitCluster promotes a client to super-peer of a brand-new cluster and
// moves half the clients there (rule I's alternative overload response).
func (s *Simulator) splitCluster(c *clusterNode) {
	seedClient := s.detachLargestClient(c)
	if seedClient == nil {
		return
	}
	nc := &clusterNode{
		id:               len(s.clusters),
		seen:             make(map[uint64]seenEntry),
		neighbors:        make(map[int]*clusterNode),
		ttl:              c.ttl,
		acceptingClients: true,
	}
	sp := &partnerNode{cluster: nc, files: seedClient.files, lifespan: seedClient.lifespan}
	nc.partners = []*partnerNode{sp}
	nc.targetPartners = 1
	seedClient.cluster = nil
	s.clusters = append(s.clusters, nc)

	// Move half the clients (the cluster keeps the rest).
	move := len(c.clients) / 2
	for i := 0; i < move; i++ {
		cl := c.clients[len(c.clients)-1]
		c.clients = c.clients[:len(c.clients)-1]
		cl.cluster = nil // retire the old slot
		moved := &clientNode{cluster: nc, files: cl.files, lifespan: cl.lifespan}
		nc.clients = append(nc.clients, moved)
		s.clientJoin(moved)
		s.startClientProcesses(moved, false)
	}

	// Wire the new cluster into the overlay: to its origin and a couple of
	// the origin's neighbors.
	s.addEdge(nc, c)
	added := 0
	c.forEachNeighbor(func(nb *clusterNode) {
		if nb == nc || added >= 2 {
			return
		}
		s.addEdge(nc, nb)
		added++
	})
	s.startPartnerProcesses(sp, false)
	s.scheduleSeenCleanup(nc)
	if s.opts.Adaptive != nil {
		s.scheduleAdaptive(nc)
	}
}

// tryCoalesce merges the smallest underloaded neighbor cluster into c
// (rule I's underload response): the neighbor's super-peer resigns to
// client, and its clients re-join c.
func (s *Simulator) tryCoalesce(c *clusterNode) {
	var smallest *clusterNode
	c.forEachNeighbor(func(nb *clusterNode) {
		if len(nb.partners) != 1 {
			return // don't dissolve redundant clusters
		}
		if smallest == nil || len(nb.clients) < len(smallest.clients) {
			smallest = nb
		}
	})
	if smallest == nil || len(smallest.clients) > len(c.clients) {
		return // only absorb clusters no larger than ourselves
	}

	// Move the neighbor's clients over.
	for _, cl := range smallest.clients {
		cl.cluster = nil
		moved := &clientNode{cluster: c, files: cl.files, lifespan: cl.lifespan}
		c.clients = append(c.clients, moved)
		s.clientJoin(moved)
		s.startClientProcesses(moved, false)
	}
	smallest.clients = nil

	// The neighbor's super-peer resigns to client of c.
	old := smallest.partners[0]
	resigned := &clientNode{cluster: c, files: old.files, lifespan: old.lifespan}
	c.clients = append(c.clients, resigned)
	s.clientJoin(resigned)
	s.startClientProcesses(resigned, false)

	// Rewire: the dissolved cluster's neighbors connect to c so the overlay
	// stays connected, then it leaves the overlay.
	smallest.partners = nil // marks the cluster dissolved
	for _, nb := range neighborList(smallest) {
		s.removeEdge(smallest, nb)
		if nb != c {
			s.addEdge(c, nb)
		}
	}
}

// detachLargestClient removes and returns the client sharing the most files
// ("select a capable client").
func (s *Simulator) detachLargestClient(c *clusterNode) *clientNode {
	best := -1
	for i, cl := range c.clients {
		if best < 0 || cl.files > c.clients[best].files {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	cl := c.clients[best]
	c.clients = append(c.clients[:best], c.clients[best+1:]...)
	return cl
}

// randomNonNeighbor picks a random live cluster that is not yet a neighbor.
func (s *Simulator) randomNonNeighbor(c *clusterNode) *clusterNode {
	for attempts := 0; attempts < 8; attempts++ {
		cand := s.clusters[s.rng.Intn(len(s.clusters))]
		if cand == c || cand.dissolved() {
			continue
		}
		if _, ok := c.neighbors[cand.id]; ok {
			continue
		}
		return cand
	}
	return nil
}

// addEdge / removeEdge keep the overlay symmetric.
func (s *Simulator) addEdge(a, b *clusterNode) {
	if a == b {
		return
	}
	a.neighbors[b.id] = b
	b.neighbors[a.id] = a
}

func (s *Simulator) removeEdge(a, b *clusterNode) {
	delete(a.neighbors, b.id)
	delete(b.neighbors, a.id)
}

// neighborList snapshots a cluster's neighbors in deterministic order.
func neighborList(c *clusterNode) []*clusterNode {
	out := make([]*clusterNode, 0, len(c.neighbors))
	c.forEachNeighbor(func(nb *clusterNode) { out = append(out, nb) })
	return out
}
