package sim

import (
	"spnet/internal/index"
	"spnet/internal/routing"
	"spnet/internal/stats"
)

// routingSeedSalt decorrelates the routing RNG root from the simulation
// seed: routeRNG = NewRNG(Seed ^ salt) gives randomized strategies their own
// deterministic stream without consuming from s.rng, whose draw sequence the
// flood goldens pin down.
const routingSeedSalt = 0x726f757465726e67 // "routerng"

// initRouting resolves Options.Routing (nil = flood) and caches the
// strategy's capability flags.
func (s *Simulator) initRouting() {
	s.route = s.opts.Routing
	if s.route == nil {
		s.route = routing.NewFlood()
	}
	s.routeLearns = routing.Learns(s.route)
	s.routeSummaries = routing.UsesSummaries(s.route)
	s.routeRNG = stats.NewRNG(s.opts.Seed ^ routingSeedSalt)
}

// routingState returns (creating on first use) the cluster's per-neighbor
// strategy state. Each cluster's RNG is split off the independent routing
// root, keyed by cluster id.
func (s *Simulator) routingState(c *clusterNode) *routing.NodeState {
	if c.routing == nil {
		c.routing = routing.NewNodeState(s.routeRNG.Split(uint64(c.id)))
	}
	return c.routing
}

// forwardQuery runs the routing strategy over p's neighbor clusters and
// sends the selected query copies. exclude is the cluster the query arrived
// from (nil at the source), which is never a candidate. Candidates are
// enumerated in ascending cluster-id order — forEachNeighbor's order — so
// the flood strategy reproduces the pre-strategy per-neighbor loop and its
// event sequence exactly.
func (s *Simulator) forwardQuery(p *partnerNode, msg queryMsg, exclude *clusterNode) {
	cands, nodes := s.candBuf[:0], s.candNodes[:0]
	p.cluster.forEachNeighbor(func(nb *clusterNode) {
		if nb == exclude {
			return
		}
		cands = append(cands, routing.Candidate{ID: nb.id})
		nodes = append(nodes, nb)
	})
	s.candBuf, s.candNodes = cands, nodes
	if len(cands) == 0 {
		return
	}
	if s.routeSummaries {
		s.refreshSummaries(p.cluster)
	}
	q := routing.Query{ID: msg.id, Terms: msg.terms, TTL: msg.ttl, Hops: msg.hops}
	sel := s.route.Select(s.selBuf[:0], q, cands, s.routingState(p.cluster))
	s.selBuf = sel[:0]
	for _, i := range sel {
		nb := nodes[i]
		if s.routeLearns {
			s.routingState(p.cluster).RecordForward(nb.id, msg.terms)
		}
		s.sendQueryTo(p, nb, msg)
	}
}

// summaryRefreshInterval is the minimum virtual time between summary
// rebuilds at one cluster. Routing indices are advertised periodically, not
// on every index mutation — under churn, indexGen bumps with every client
// replacement, and rebuilding each cluster's split-horizon aggregation per
// bump is quadratic in the overlay. The interval bounds staleness instead:
// a rebuilt summary may lag reality by up to this many virtual seconds,
// which only ever over-prunes content that just churned in. Static networks
// (indexGen constant after init) are unaffected and still build once.
const summaryRefreshInterval = 30

// refreshSummaries rebuilds c's per-neighbor routing-index summaries if any
// content index changed since they were last built, at most once per
// summaryRefreshInterval of virtual time. The summary for edge c→nb
// aggregates the index digest of every cluster reachable through nb without
// passing back through c (split horizon) — the term-set specialization of
// Crespo & Garcia-Molina's routing indices.
func (s *Simulator) refreshSummaries(c *clusterNode) {
	if !s.contentMode() || c.summaryGen == s.indexGen || s.sched.now < c.summaryNext {
		return
	}
	c.summaryGen = s.indexGen
	c.summaryNext = s.sched.now + summaryRefreshInterval
	ns := s.routingState(c)
	c.forEachNeighbor(func(nb *clusterNode) {
		agg := index.MergeSummary(nil)
		visited := map[int]bool{c.id: true, nb.id: true}
		queue := []*clusterNode{nb}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			agg = index.MergeSummary(agg, s.clusterSummary(cur))
			cur.forEachNeighbor(func(next *clusterNode) {
				if !visited[next.id] {
					visited[next.id] = true
					queue = append(queue, next)
				}
			})
		}
		ns.SetSummary(nb.id, agg.Terms())
	})
}

// clusterSummary returns c's own index digest, cached until the index
// mutates (contentReindexClient invalidates it). Sharing the snapshot across
// every neighbor BFS that reaches c keeps rebuild cost proportional to term
// merging, not repeated digesting.
func (s *Simulator) clusterSummary(c *clusterNode) *index.Summary {
	if c.ownSummary == nil && c.index != nil {
		c.ownSummary = c.index.Summary()
	}
	return c.ownSummary
}
