package sim

import (
	"math"
	"testing"

	"spnet/internal/content"
	"spnet/internal/network"
	"spnet/internal/stats"
)

func TestContentModeRuns(t *testing.T) {
	cfg := network.Config{GraphType: network.PowerLaw, GraphSize: 300,
		ClusterSize: 10, AvgOutdegree: 3.1, TTL: 5}
	inst := generate(t, cfg, lowVarProfile(), 1)
	m, err := Run(inst, Options{
		Duration: 400, Seed: 2, Churn: true,
		Content: &ContentOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.QueriesIssued == 0 {
		t.Fatal("no queries issued")
	}
	if m.ResultsPerQuery <= 0 {
		t.Error("content mode produced no results")
	}
	if m.Aggregate.InBps <= 0 {
		t.Error("no load measured")
	}
}

func TestContentModeIndexesEveryFile(t *testing.T) {
	cfg := network.Config{GraphType: network.PowerLaw, GraphSize: 200,
		ClusterSize: 10, AvgOutdegree: 3.1, TTL: 3}
	inst := generate(t, cfg, lowVarProfile(), 3)
	s, err := New(inst, Options{Duration: 1, Content: &ContentOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range s.clusters {
		if c.index == nil {
			t.Fatalf("cluster %d has no index", v)
		}
		if got, want := c.index.NumDocs(), inst.Clusters[v].IndexFiles; got != want {
			t.Fatalf("cluster %d indexed %d docs, want %d", v, got, want)
		}
	}
}

func TestContentModeChurnMaintainsIndex(t *testing.T) {
	cfg := network.Config{GraphType: network.PowerLaw, GraphSize: 200,
		ClusterSize: 10, AvgOutdegree: 3.1, TTL: 3}
	prof := lowVarProfile()
	inst := generate(t, cfg, prof, 4)
	s, err := New(inst, Options{Duration: 3000, Seed: 5, Churn: true, Content: &ContentOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	before := make([]int, len(s.clusters))
	for v, c := range s.clusters {
		before[v] = c.index.NumDocs()
	}
	s.start()
	s.sched.runUntil(3000) // several full churn cycles per slot
	for v, c := range s.clusters {
		if got := c.index.NumDocs(); got != before[v] {
			t.Fatalf("cluster %d index drifted: %d -> %d docs (stable churn must conserve)",
				v, before[v], got)
		}
	}
}

func TestContentModeMatchesDerivedModel(t *testing.T) {
	if testing.Short() {
		t.Skip("long content-vs-model comparison")
	}
	// Content-mode results should agree with a sampled-mode run whose query
	// model was derived from the same library (the content->model bridge).
	lib := content.DefaultLibrary()
	qm, err := lib.BuildQueryModel(stats.NewRNG(99), 50000)
	if err != nil {
		t.Fatal(err)
	}
	prof := lowVarProfile()
	prof.Queries = qm

	cfg := network.Config{GraphType: network.PowerLaw, GraphSize: 400,
		ClusterSize: 10, AvgOutdegree: 3.1, TTL: 5}
	inst := generate(t, cfg, prof, 6)

	contentRun, err := Run(inst, Options{
		Duration: 1500, Seed: 7, Content: &ContentOptions{Library: lib},
	})
	if err != nil {
		t.Fatal(err)
	}
	modelRun, err := Run(generate(t, cfg, prof, 6), Options{Duration: 1500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ratio := contentRun.ResultsPerQuery / modelRun.ResultsPerQuery
	if math.Abs(ratio-1) > 0.30 {
		t.Errorf("content results %.1f vs model results %.1f (ratio %.2f)",
			contentRun.ResultsPerQuery, modelRun.ResultsPerQuery, ratio)
	}
	// Loads follow results, so they should be in the same regime too.
	if r := contentRun.Aggregate.InBps / modelRun.Aggregate.InBps; r < 0.5 || r > 2 {
		t.Errorf("aggregate bandwidth ratio = %.2f", r)
	}
}

func TestContentModeIncompatibilities(t *testing.T) {
	cfg := network.DefaultConfig()
	cfg.GraphSize = 100
	inst := generate(t, cfg, nil, 8)
	if _, err := Run(inst, Options{
		Duration: 10, Content: &ContentOptions{},
		Adaptive: &AdaptiveOptions{},
	}); err == nil {
		t.Error("content+adaptive accepted")
	}
	if _, err := Run(inst, Options{
		Duration: 10, Content: &ContentOptions{},
		Failures: &FailureOptions{MTBF: 100, RecoveryDelay: 10},
	}); err == nil {
		t.Error("content+failures accepted")
	}
}

func TestContentModeDeterministic(t *testing.T) {
	cfg := network.Config{GraphType: network.PowerLaw, GraphSize: 150,
		ClusterSize: 10, AvgOutdegree: 3.1, TTL: 3}
	opts := Options{Duration: 300, Seed: 9, Churn: true, Content: &ContentOptions{}}
	a, err := Run(generate(t, cfg, nil, 10), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(generate(t, cfg, nil, 10), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Aggregate != b.Aggregate || a.ResultsPerQuery != b.ResultsPerQuery {
		t.Error("content mode not deterministic")
	}
}
