package sim

import (
	"spnet/internal/cost"
	"spnet/internal/metrics"
)

// chargeClientToPartner charges one client→partner control message: b wire
// bytes in class, sendU processing units at the client, recvU at the partner
// (reception plus any handling), with packet-multiplex overhead on both ends.
// Every client-to-super-peer interaction (query submission, join, update)
// goes through here so the charge order is identical across paths.
func (s *Simulator) chargeClientToPartner(c *clientNode, p *partnerNode, class metrics.Class, b, sendU, recvU float64) {
	c.counters.addOut(class, b)
	c.counters.procU += sendU
	s.pmClient(c)
	p.counters.addIn(class, b)
	p.counters.procU += recvU
	s.pmPartner(p)
}

// chargePartnerToPartner is chargeClientToPartner for a message between two
// super-peer partners (co-partner join and update shipping).
func (s *Simulator) chargePartnerToPartner(from, to *partnerNode, class metrics.Class, b, sendU, recvU float64) {
	from.counters.addOut(class, b)
	from.counters.procU += sendU
	s.pmPartner(from)
	to.counters.addIn(class, b)
	to.counters.procU += recvU
	s.pmPartner(to)
}

// chargePartnerToClient is the downstream direction: a super-peer responding
// to one of its clients.
func (s *Simulator) chargePartnerToClient(p *partnerNode, c *clientNode, class metrics.Class, b, sendU, recvU float64) {
	p.counters.addOut(class, b)
	p.counters.procU += sendU
	s.pmPartner(p)
	c.counters.addIn(class, b)
	c.counters.procU += recvU
	s.pmClient(c)
}

// clientJoin charges the join interaction: the client sends its metadata to
// each partner; each partner receives it and adds it to its index.
func (s *Simulator) clientJoin(c *clientNode) {
	if c.cluster.isDown() {
		return // no partner to join until the cluster recovers
	}
	if s.contentMode() {
		s.contentReindexClient(c)
	}
	jb, jpS := cost.SendJoin(c.files)
	_, jpR := cost.RecvJoin(c.files)
	jpP := cost.ProcessJoin(c.files)
	for _, p := range c.cluster.partners {
		s.chargeClientToPartner(c, p, metrics.ClassJoin,
			float64(jb), float64(jpS), float64(jpR)+float64(jpP))
	}
}

// clientJoinOne ships one client's metadata to a single partner (used when a
// new partner builds its index).
func (s *Simulator) clientJoinOne(c *clientNode, p *partnerNode) {
	jb, jpS := cost.SendJoin(c.files)
	_, jpR := cost.RecvJoin(c.files)
	s.chargeClientToPartner(c, p, metrics.ClassJoin,
		float64(jb), float64(jpS), float64(jpR)+float64(cost.ProcessJoin(c.files)))
}

// partnerRejoin mirrors the super-peer's own collection maintenance: the
// partner re-indexes its own files, and with redundancy also ships them to
// its co-partner.
func (s *Simulator) partnerRejoin(p *partnerNode) {
	if p.cluster.isDown() {
		return
	}
	p.counters.procU += float64(cost.ProcessJoin(p.files))
	for _, co := range p.cluster.partners {
		if co == p {
			continue
		}
		jb, jpS := cost.SendJoin(p.files)
		_, jpR := cost.RecvJoin(p.files)
		s.chargePartnerToPartner(p, co, metrics.ClassJoin,
			float64(jb), float64(jpS), float64(jpR)+float64(cost.ProcessJoin(p.files)))
	}
}

// clientUpdate charges one collection update: the client notifies every
// partner, and each partner applies the change to its index.
func (s *Simulator) clientUpdate(c *clientNode) {
	if c.cluster.isDown() {
		return
	}
	ub, upS := cost.SendUpdateCost()
	_, upR := cost.RecvUpdateCost()
	upP := cost.ProcessUpdateCost()
	for _, p := range c.cluster.partners {
		s.chargeClientToPartner(c, p, metrics.ClassUpdate,
			float64(ub), float64(upS), float64(upR)+float64(upP))
	}
}

// partnerUpdate charges a super-peer's own collection update: applied
// locally, and with redundancy also shipped to the co-partner.
func (s *Simulator) partnerUpdate(p *partnerNode) {
	if p.cluster.isDown() {
		return
	}
	p.counters.procU += float64(cost.ProcessUpdateCost())
	ub, upS := cost.SendUpdateCost()
	_, upR := cost.RecvUpdateCost()
	for _, co := range p.cluster.partners {
		if co == p {
			continue
		}
		s.chargePartnerToPartner(p, co, metrics.ClassUpdate,
			float64(ub), float64(upS), float64(upR)+float64(cost.ProcessUpdateCost()))
	}
}
