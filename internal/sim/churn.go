package sim

import (
	"spnet/internal/cost"
	"spnet/internal/metrics"
)

// clientJoin charges the join interaction: the client sends its metadata to
// each partner; each partner receives it and adds it to its index.
func (s *Simulator) clientJoin(c *clientNode) {
	if c.cluster.isDown() {
		return // no partner to join until the cluster recovers
	}
	if s.contentMode() {
		s.contentReindexClient(c)
	}
	jb, jpS := cost.SendJoin(c.files)
	_, jpR := cost.RecvJoin(c.files)
	jpP := cost.ProcessJoin(c.files)
	for _, p := range c.cluster.partners {
		c.counters.addOut(metrics.ClassJoin, float64(jb))
		c.counters.procU += float64(jpS)
		s.pmClient(c)
		p.counters.addIn(metrics.ClassJoin, float64(jb))
		p.counters.procU += float64(jpR) + float64(jpP)
		s.pmPartner(p)
	}
}

// partnerRejoin mirrors the super-peer's own collection maintenance: the
// partner re-indexes its own files, and with redundancy also ships them to
// its co-partner.
func (s *Simulator) partnerRejoin(p *partnerNode) {
	if p.cluster.isDown() {
		return
	}
	p.counters.procU += float64(cost.ProcessJoin(p.files))
	for _, co := range p.cluster.partners {
		if co == p {
			continue
		}
		jb, jpS := cost.SendJoin(p.files)
		_, jpR := cost.RecvJoin(p.files)
		p.counters.addOut(metrics.ClassJoin, float64(jb))
		p.counters.procU += float64(jpS)
		s.pmPartner(p)
		co.counters.addIn(metrics.ClassJoin, float64(jb))
		co.counters.procU += float64(jpR) + float64(cost.ProcessJoin(p.files))
		s.pmPartner(co)
	}
}

// clientUpdate charges one collection update: the client notifies every
// partner, and each partner applies the change to its index.
func (s *Simulator) clientUpdate(c *clientNode) {
	if c.cluster.isDown() {
		return
	}
	ub, upS := cost.SendUpdateCost()
	_, upR := cost.RecvUpdateCost()
	upP := cost.ProcessUpdateCost()
	for _, p := range c.cluster.partners {
		c.counters.addOut(metrics.ClassUpdate, float64(ub))
		c.counters.procU += float64(upS)
		s.pmClient(c)
		p.counters.addIn(metrics.ClassUpdate, float64(ub))
		p.counters.procU += float64(upR) + float64(upP)
		s.pmPartner(p)
	}
}

// partnerUpdate charges a super-peer's own collection update: applied
// locally, and with redundancy also shipped to the co-partner.
func (s *Simulator) partnerUpdate(p *partnerNode) {
	if p.cluster.isDown() {
		return
	}
	p.counters.procU += float64(cost.ProcessUpdateCost())
	ub, upS := cost.SendUpdateCost()
	_, upR := cost.RecvUpdateCost()
	for _, co := range p.cluster.partners {
		if co == p {
			continue
		}
		p.counters.addOut(metrics.ClassUpdate, float64(ub))
		p.counters.procU += float64(upS)
		s.pmPartner(p)
		co.counters.addIn(metrics.ClassUpdate, float64(ub))
		co.counters.procU += float64(upR) + float64(cost.ProcessUpdateCost())
		s.pmPartner(co)
	}
}
