package sim

import (
	"fmt"
	"testing"

	"spnet/internal/analysis"
	"spnet/internal/network"
	"spnet/internal/routing"
	"spnet/internal/stats"
	"spnet/internal/topology"
	"spnet/internal/workload"
)

// advInstance hand-builds a fixed topology with 2-redundant clusters for
// adversary tests: `edges` wires the overlay, every cluster holds two
// partner super-peers (so reputation has an honest alternative to pick) and
// `clients` clients with one file each. Content is topic-partitioned as in
// the routing tests, so ground truth is exact.
func advInstance(t *testing.T, n int, edges [][2]int, clients, ttl int) *network.Instance {
	t.Helper()
	qm, err := workload.NewQueryModel([]float64{1}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	graph, err := topology.NewAdjGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	const never = 1e12
	clusters := make([]network.Cluster, n)
	for v := range clusters {
		cl := network.Cluster{
			Partners: []network.Peer{
				{Files: 0, Lifespan: never},
				{Files: 0, Lifespan: never},
			},
			IndexFiles: clients,
			ExpResults: float64(clients) / float64(n),
			ExpAddrs:   float64(clients) / float64(n),
			ProbResp:   1 / float64(n),
		}
		for i := 0; i < clients; i++ {
			cl.Clients = append(cl.Clients, network.Peer{Files: 1, Lifespan: never})
		}
		clusters[v] = cl
	}
	return &network.Instance{
		Config: network.Config{
			GraphType:   network.PowerLaw,
			GraphSize:   n * (clients + 2),
			ClusterSize: clients + 2,
			KRedundancy: 2,
			TTL:         ttl,
		},
		Profile: &workload.Profile{
			Queries:  qm,
			Rates:    workload.Rates{QueryRate: 0.05},
			QueryLen: 6,
		},
		Graph:    graph,
		Clusters: clusters,
		NumPeers: n * (clients + 2),
	}
}

// starEdges wires a hub (cluster 0) to `leaves` leaf clusters.
func starEdges(leaves int) [][2]int {
	edges := make([][2]int, leaves)
	for i := range edges {
		edges[i] = [2]int{0, i + 1}
	}
	return edges
}

// runAdvStar simulates the 2-redundant star with planted topics under the
// given adversary (nil = honest) and routing strategy.
func runAdvStar(t *testing.T, adv *AdversaryOptions, strat routing.Strategy, seed uint64) *Measured {
	t.Helper()
	const leaves, clients = 4, 3
	inst := advInstance(t, leaves+1, starEdges(leaves), clients, 2)
	m, err := Run(inst, Options{
		Duration:  1500,
		Seed:      seed,
		Routing:   strat,
		Adversary: adv,
		Content: &ContentOptions{
			Titles: func(cluster, owner, file int) []string {
				return []string{fmt.Sprintf("topic%d", cluster)}
			},
			Queries: func(rng *stats.RNG) []string {
				return []string{fmt.Sprintf("topic%d", rng.Intn(leaves+1))}
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.ClientQueriesTracked == 0 && adv != nil {
		t.Fatal("no client queries tracked")
	}
	return m
}

func lostFraction(m *Measured) float64 {
	return float64(m.ClientQueriesUnanswered) / float64(m.ClientQueriesTracked)
}

// TestAdversaryZeroValueIdentity pins the determinism contract: planting a
// zero-valued adversary (no malicious peers, no trust) leaves every measured
// quantity bit-identical to a run with the subsystem absent.
func TestAdversaryZeroValueIdentity(t *testing.T) {
	cfg := network.DefaultConfig()
	cfg.GraphSize = 200
	opts := Options{Duration: 200, Seed: 7, Churn: true}
	honest, err := Run(generate(t, cfg, nil, 2), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Adversary = &AdversaryOptions{}
	planted, err := Run(generate(t, cfg, nil, 2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if honest.Aggregate != planted.Aggregate ||
		honest.MeanSuperPeer != planted.MeanSuperPeer ||
		honest.MeanClient != planted.MeanClient ||
		honest.ResultsPerQuery != planted.ResultsPerQuery ||
		honest.EPL != planted.EPL ||
		honest.QueriesIssued != planted.QueriesIssued ||
		honest.EventsExecuted != planted.EventsExecuted {
		t.Errorf("zero-value adversary perturbed the run:\nhonest  %+v %v %v\nplanted %+v %v %v",
			honest.Aggregate, honest.ResultsPerQuery, honest.EventsExecuted,
			planted.Aggregate, planted.ResultsPerQuery, planted.EventsExecuted)
	}
	if planted.ClientQueriesTracked == 0 {
		t.Error("zero-value adversary run tracked no client queries")
	}
}

// TestAdversaryDropTrustRecovery is the sim half of the acceptance
// criterion: with half the partners freeloading (every cluster's slot 0
// drops everything), reputation-weighted selection must recover at least
// half of the lost-fraction gap versus the trust-oblivious baseline.
func TestAdversaryDropTrustRecovery(t *testing.T) {
	slot0 := func(cluster, slot int) bool { return slot == 0 }
	off := runAdvStar(t, &AdversaryOptions{Malicious: slot0, Drop: 1}, nil, 11)
	if off.QueriesDroppedMalicious == 0 || off.RelayDropsMalicious == 0 {
		t.Fatalf("trust-off run saw no malicious drops: %+v", off)
	}
	if lostFraction(off) < 0.3 {
		t.Fatalf("trust-off lost fraction = %.3f, want >= 0.3 (attack ineffective)", lostFraction(off))
	}
	on := runAdvStar(t, &AdversaryOptions{Malicious: slot0, Drop: 1, Trust: true}, nil, 11)
	if lostFraction(on) > 0.5*lostFraction(off) {
		t.Errorf("trust recovered too little: lost %.3f (on) vs %.3f (off)",
			lostFraction(on), lostFraction(off))
	}
	if on.GenuineResultsPerQuery <= off.GenuineResultsPerQuery {
		t.Errorf("genuine results/query did not improve: %.2f (on) vs %.2f (off)",
			on.GenuineResultsPerQuery, off.GenuineResultsPerQuery)
	}
	if on.SpreadP50 <= off.SpreadP50 {
		t.Errorf("median spread did not improve: %.2f (on) vs %.2f (off)",
			on.SpreadP50, off.SpreadP50)
	}
}

// TestAdversaryBusyLie checks the refusal path: a Busy-lying access partner
// loses client queries when trust is off, and the immediate bad observation
// steers trusting clients to the honest co-partner.
func TestAdversaryBusyLie(t *testing.T) {
	slot0 := func(cluster, slot int) bool { return slot == 0 }
	off := runAdvStar(t, &AdversaryOptions{Malicious: slot0, BusyLie: 1}, nil, 13)
	if off.QueriesRefused == 0 {
		t.Fatal("no Busy-lies recorded")
	}
	if lostFraction(off) < 0.3 {
		t.Fatalf("trust-off lost fraction = %.3f, want >= 0.3", lostFraction(off))
	}
	on := runAdvStar(t, &AdversaryOptions{Malicious: slot0, BusyLie: 1, Trust: true}, nil, 13)
	if lostFraction(on) > 0.5*lostFraction(off) {
		t.Errorf("trust recovered too little from Busy-lying: lost %.3f (on) vs %.3f (off)",
			lostFraction(on), lostFraction(off))
	}
}

// TestAdversaryForgeryAccounting checks the forged-response pipeline:
// trust-oblivious sources consume fabricated hits (counted separately from
// genuine results), while the trust audit detects and drops them en route.
func TestAdversaryForgeryAccounting(t *testing.T) {
	slot0 := func(cluster, slot int) bool { return slot == 0 }
	off := runAdvStar(t, &AdversaryOptions{Malicious: slot0, Forge: 1}, nil, 17)
	if off.ForgedResponses == 0 || off.ForgedAccepted == 0 {
		t.Fatalf("trust-off forgery not exercised: %d sent, %d accepted",
			off.ForgedResponses, off.ForgedAccepted)
	}
	if off.ForgedDetected != 0 {
		t.Fatalf("trust-off run detected forgeries: %d", off.ForgedDetected)
	}
	// Forgery without dropping does not lose genuine results.
	if lostFraction(off) > 0.01 {
		t.Errorf("forge-only lost fraction = %.3f, want ~0", lostFraction(off))
	}
	on := runAdvStar(t, &AdversaryOptions{Malicious: slot0, Forge: 1, Trust: true}, nil, 17)
	if on.ForgedDetected == 0 {
		t.Fatal("trust-on run detected no forgeries")
	}
	if on.ForgedAccepted != 0 {
		t.Errorf("trust-on run accepted %d forged results", on.ForgedAccepted)
	}
}

// TestLearnedCreditInflation covers the satellite scenario: on a line
// c0–c1–c2, cluster 1's slot-0 partner drops every query it relays while
// forging hits, so the learned strategy's credit for the c0→c1 edge stays
// inflated and far-topic recall collapses. Reputation-weighted neighbor
// selection must route around the forger and recover recall.
func TestLearnedCreditInflation(t *testing.T) {
	line := [][2]int{{0, 1}, {1, 2}}
	middleSlot0 := func(cluster, slot int) bool { return cluster == 1 && slot == 0 }
	run := func(trustOn bool, seed uint64) *Measured {
		inst := advInstance(t, 3, line, 3, 3)
		m, err := Run(inst, Options{
			Duration: 2500,
			Seed:     seed,
			Routing:  routing.NewLearned(),
			Adversary: &AdversaryOptions{
				Malicious: middleSlot0, Drop: 1, Forge: 1,
				Trust: trustOn, NeutralPriors: true,
			},
			Content: &ContentOptions{
				Titles: func(cluster, owner, file int) []string {
					return []string{fmt.Sprintf("topic%d", cluster)}
				},
				Queries: func(rng *stats.RNG) []string {
					return []string{fmt.Sprintf("topic%d", rng.Intn(3))}
				},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	off := run(false, 23)
	if off.ForgedAccepted == 0 {
		t.Fatal("credit-inflation attack not exercised: no forged hits accepted")
	}
	on := run(true, 23)
	if on.ForgedDetected == 0 {
		t.Fatal("trust-on run audited no forgeries")
	}
	gapOff, gapOn := lostFraction(off), lostFraction(on)
	if gapOff < 0.1 {
		t.Fatalf("inflation attack too weak to measure: trust-off lost fraction %.3f", gapOff)
	}
	if gapOn > 0.5*gapOff {
		t.Errorf("reputation did not recover recall: lost %.3f (on) vs %.3f (off)", gapOn, gapOff)
	}
	if on.GenuineResultsPerQuery <= off.GenuineResultsPerQuery {
		t.Errorf("genuine recall did not improve: %.2f (on) vs %.2f (off)",
			on.GenuineResultsPerQuery, off.GenuineResultsPerQuery)
	}
}

// TestAdversaryDeterministic: identical seeds give identical adversarial
// runs, including every misbehavior counter.
func TestAdversaryDeterministic(t *testing.T) {
	adv := func() *AdversaryOptions {
		return &AdversaryOptions{Fraction: 0.3, Drop: 0.5, Forge: 0.5, BusyLie: 0.2, Trust: true}
	}
	a := runAdvStar(t, adv(), nil, 29)
	b := runAdvStar(t, adv(), nil, 29)
	if a.Aggregate != b.Aggregate ||
		a.QueriesRefused != b.QueriesRefused ||
		a.QueriesDroppedMalicious != b.QueriesDroppedMalicious ||
		a.RelayDropsMalicious != b.RelayDropsMalicious ||
		a.ForgedResponses != b.ForgedResponses ||
		a.ForgedDetected != b.ForgedDetected ||
		a.ClientQueriesUnanswered != b.ClientQueriesUnanswered ||
		a.SpreadP90 != b.SpreadP90 {
		t.Errorf("same-seed adversarial runs differ:\n%+v\n%+v", a, b)
	}
}

func TestAdversaryValidation(t *testing.T) {
	cfg := network.DefaultConfig()
	cfg.GraphSize = 100
	inst := generate(t, cfg, nil, 1)
	if _, err := Run(inst, Options{Duration: 10, Adversary: &AdversaryOptions{Fraction: 1.5}}); err == nil {
		t.Error("Fraction > 1 accepted")
	}
	if _, err := Run(inst, Options{Duration: 10, Adversary: &AdversaryOptions{Drop: -0.1}}); err == nil {
		t.Error("negative Drop accepted")
	}
	if _, err := Run(inst, Options{
		Duration:  10,
		Adversary: &AdversaryOptions{},
		Adaptive:  &AdaptiveOptions{Limit: analysis.Load{InBps: 1e6, OutBps: 1e6, ProcHz: 1e9}, Interval: 60},
	}); err == nil {
		t.Error("adversary + adaptive accepted")
	}
	if _, err := Run(inst, Options{
		Duration:  10,
		Adversary: &AdversaryOptions{},
		Failures:  &FailureOptions{MTBF: 100, RecoveryDelay: 10},
	}); err == nil {
		t.Error("adversary + failures accepted")
	}
}
