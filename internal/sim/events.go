// Package sim is a deterministic discrete-event, message-level simulator of
// a super-peer network. Where internal/analysis computes expected loads in
// closed form (the paper's mean-value analysis), the simulator executes the
// protocol of Section 3 concretely: clients join, update and query; queries
// flood super-peers with a TTL and duplicate drop; Response messages travel
// the reverse path; 2-redundant partners share load round-robin; and every
// byte and processing unit is counted per node under the same cost model.
// The two engines validate each other (the simcheck experiment), and the
// simulator additionally runs the Section 5.3 local decision rules under
// churn, which the static analysis cannot.
package sim

import "container/heap"

// event is one scheduled action at a virtual time. seq breaks ties so that
// execution order is deterministic.
type event struct {
	at  float64
	seq uint64
	fn  func()
}

// eventQueue is a binary heap of events ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// scheduler wraps the heap with a monotonic clock.
type scheduler struct {
	queue eventQueue
	now   float64
	seq   uint64
}

// schedule enqueues fn to run after delay seconds of virtual time.
func (s *scheduler) schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.queue, &event{at: s.now + delay, seq: s.seq, fn: fn})
}

// runUntil executes events in order until the clock passes horizon or the
// queue drains. It returns the number of events executed.
func (s *scheduler) runUntil(horizon float64) int {
	executed := 0
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.at > horizon {
			break
		}
		heap.Pop(&s.queue)
		s.now = next.at
		next.fn()
		executed++
	}
	if s.now < horizon {
		s.now = horizon
	}
	return executed
}
