package sim

import (
	"fmt"
	"sort"
	"strconv"

	"spnet/internal/analysis"
	"spnet/internal/cost"
	"spnet/internal/index"
	"spnet/internal/metrics"
	"spnet/internal/network"
	"spnet/internal/routing"
	"spnet/internal/stats"
	"spnet/internal/trust"
	"spnet/internal/workload"
)

// Options configure a simulation run.
type Options struct {
	// Duration is the virtual time to simulate, in seconds.
	Duration float64
	// Latency is the per-hop message delivery delay in seconds (default 20ms).
	// It orders events; load is latency-independent.
	Latency float64
	// Seed drives all randomness in the run.
	Seed uint64
	// Churn enables client-slot churn and super-peer re-index events. When
	// a client's session ends, a statistically identical replacement joins,
	// keeping the population stable ("when a node leaves the network,
	// another node is joining elsewhere") while exercising the join path.
	Churn bool
	// Adaptive, when non-nil, runs the Section 5.3 local decision rules on
	// every super-peer.
	Adaptive *AdaptiveOptions
	// Failures, when non-nil, injects super-peer failures and recoveries,
	// measuring the reliability benefit of redundancy (Section 3.2).
	Failures *FailureOptions
	// Content, when non-nil, evaluates queries over real inverted indexes
	// instead of the Appendix B match-sampling model.
	Content *ContentOptions
	// Routing selects the query-forwarding strategy (nil = flood, the
	// paper's protocol). Strategy randomness draws from a generator
	// independent of the simulation stream, so selecting flood reproduces
	// the pre-strategy event sequence bit-identically.
	Routing routing.Strategy
	// Adversary, when non-nil, plants misbehaving super-peer partners
	// (query-drop freeloaders, QueryHit forgers, Busy-liars) and optionally
	// the reputation-weighted response to them. Adversary randomness draws
	// from its own salted stream, so nil (and the zero value) leaves runs
	// bit-identical to honest golden values.
	Adversary *AdversaryOptions
}

// Measured is a simulation run's output: observed (not expected) loads under
// the same cost model the analysis engine uses. In adaptive mode the loads
// cover the clusters alive at the end of the run.
type Measured struct {
	// Duration is the simulated virtual time.
	Duration float64
	// SuperPeer is the mean measured load of each live cluster's partner(s).
	SuperPeer []analysis.Load
	// SuperPeerClassBps breaks each live cluster's per-partner bandwidth
	// (bits/s) down by Table 2 taxonomy class and direction, under the same
	// classes live nodes meter.
	SuperPeerClassBps []metrics.ByClass
	// MeanSuperPeer averages SuperPeer.
	MeanSuperPeer analysis.Load
	// MeanClient is the mean measured client load.
	MeanClient analysis.Load
	// Aggregate sums all live node loads.
	Aggregate analysis.Load
	// ResultsPerQuery is the observed mean number of results per query.
	ResultsPerQuery float64
	// EPL is the observed mean hop count of Response messages.
	EPL float64
	// QueriesIssued counts queries submitted by users.
	QueriesIssued int
	// QueriesForwarded counts query copies sent over super-peer overlay
	// links — the quantity routing strategies reduce relative to flood.
	QueriesForwarded int
	// Strategy is the routing strategy the run used ("flood", ...).
	Strategy string
	// EventsExecuted counts simulator events.
	EventsExecuted int
	// FinalClusters reports the number of live clusters at the end of the
	// run (changes only in adaptive mode).
	FinalClusters int
	// FinalMeanOutdegree is the mean overlay outdegree at the end of the run.
	FinalMeanOutdegree float64
	// FinalMeanTTL is the mean TTL super-peers stamp on queries at the end
	// of the run (rule III decays it).
	FinalMeanTTL float64
	// FinalPeers counts live peers at the end of the run.
	FinalPeers int
	// FailuresInjected counts super-peer partner failures (failure
	// injection only).
	FailuresInjected int
	// ClientQueriesLost counts queries clients could not submit because
	// every partner of their cluster was down (failure injection only).
	ClientQueriesLost int

	// Adversary-mode outcome metrics (Options.Adversary only; zero
	// otherwise). Genuine counts exclude fabricated results, so these
	// measure real recall even when forged hits are accepted.

	// QueriesRefused counts client queries a malicious partner Busy-lied
	// away.
	QueriesRefused int
	// QueriesDroppedMalicious counts client queries a malicious access
	// partner accepted and silently discarded.
	QueriesDroppedMalicious int
	// RelayDropsMalicious counts query copies malicious relays discarded.
	RelayDropsMalicious int
	// ForgedResponses counts fabricated QueryHits malicious relays sent.
	ForgedResponses int
	// ForgedAccepted counts forged results consumed at query sources
	// (trust off; with trust on they are audited and dropped en route).
	ForgedAccepted int
	// ForgedDetected counts forged responses dropped by the audit.
	ForgedDetected int
	// ClientQueriesTracked is the number of client-submitted queries with
	// outcome records; ClientQueriesUnanswered of them produced zero
	// genuine results (the lost fraction's numerator).
	ClientQueriesTracked    int
	ClientQueriesUnanswered int
	// GenuineResultsPerQuery is the mean genuine result count per client
	// query; SpreadP50/P90/P99 are percentiles of the same per-query
	// distribution (the iris spread metric).
	GenuineResultsPerQuery float64
	SpreadP50              float64
	SpreadP90              float64
	SpreadP99              float64
}

// counters accumulate one node's observed work. Packet-multiplex overhead is
// charged inline at each message with the node's connection count at that
// moment. Byte charges go through addIn/addOut so every byte is also
// attributed to its Table 2 taxonomy class, mirroring the live LoadMeter.
type counters struct {
	bytesIn  float64
	bytesOut float64
	procU    float64
	cls      metrics.ByClass
}

func (c *counters) addIn(class metrics.Class, b float64) {
	c.bytesIn += b
	c.cls.Add(class, metrics.DirIn, b)
}

func (c *counters) addOut(class metrics.Class, b float64) {
	c.bytesOut += b
	c.cls.Add(class, metrics.DirOut, b)
}

func (c *counters) load(duration float64) analysis.Load {
	return analysis.Load{
		InBps:  c.bytesIn * 8 / duration,
		OutBps: c.bytesOut * 8 / duration,
		ProcHz: cost.UnitsToHz(c.procU) / duration,
	}
}

// clientNode is one client slot. Under churn the slot is re-occupied by a
// statistically identical peer when its session ends. A retired slot has
// cluster == nil and all its processes stop.
type clientNode struct {
	cluster  *clusterNode
	files    int
	lifespan float64
	rr       int // round-robin partner selector
	owner    int // cluster-local owner id (content mode)
	counters counters
	// trustBook scores the cluster's partner slots by observed reliability
	// (adversary trust mode only; keyed by partner slot index).
	trustBook *trust.Book
}

func (c *clientNode) alive() bool { return c.cluster != nil }

// seenEntry records where a query first arrived from, for duplicate
// detection and reverse-path routing.
type seenEntry struct {
	from   *partnerNode // nil when this partner is the query source
	origin *clientNode  // non-nil when a local client sourced the query
	at     float64
	// terms is the query's keyword set, retained only when the routing
	// strategy learns from hit history (so responses can credit the
	// neighbor they arrived through).
	terms []string
}

// partnerNode is one super-peer partner (a full node; a non-redundant
// cluster has exactly one).
type partnerNode struct {
	cluster  *clusterNode
	files    int
	lifespan float64
	owner    int // cluster-local owner id (content mode)
	counters counters
	// advID is the partner's global id in the adversary subsystem's
	// namespace (overlay reputation books key on it); malicious marks the
	// partner as planted by AdversaryOptions.
	advID     int
	malicious bool
}

func (p *partnerNode) alive() bool {
	if len(p.cluster.partners) == 0 {
		return false
	}
	for _, q := range p.cluster.partners {
		if q == p {
			return true
		}
	}
	return false
}

// clusterNode is a (virtual) super-peer and its clients; a node of the
// overlay. Neighbors are kept in a map for O(1) lookup but always iterated
// in ascending id order to keep the simulation deterministic.
type clusterNode struct {
	id       int
	partners []*partnerNode
	clients  []*clientNode
	// seen is the virtual super-peer's duplicate-detection and
	// reverse-routing table, shared by all partners: the virtual super-peer
	// is one node of the overlay, so a query is processed once per cluster
	// no matter which partner a copy lands on.
	seen             map[uint64]seenEntry
	neighbors        map[int]*clusterNode
	ttl              int  // TTL stamped on queries sourced in this cluster
	rrOut            int  // round-robin selector for neighbor partners
	acceptingClients bool // rule I state, toggled by the adaptive advisor
	// targetPartners is the redundancy level failure recovery restores.
	targetPartners int
	adaptive       *adaptiveState
	failures       *failureState
	// index is the cluster's shared inverted index (content mode only);
	// partners hold identical replicas, modeled once.
	index     *index.Index
	nextOwner int
	// routing is the cluster's per-neighbor strategy state, created lazily.
	routing *routing.NodeState
	// summaryGen is the Simulator.indexGen the cluster's advertised
	// summaries were last rebuilt at (routing-index strategy only).
	summaryGen int
	// ownSummary caches index.Summary(); invalidated when this cluster's
	// own index mutates, so neighbor BFS merges reuse the snapshot.
	ownSummary *index.Summary
	// summaryNext is the earliest virtual time the cluster may rebuild its
	// advertised summaries again (periodic-advertisement rate limit).
	summaryNext float64
	// trustBook scores neighbor-cluster partners (by advID) from overlay
	// observations: genuine responses relayed through them score good,
	// audited forgeries score bad (adversary trust mode only).
	trustBook *trust.Book
}

func (c *clusterNode) dissolved() bool { return len(c.partners) == 0 }

// forEachNeighbor visits neighbors in ascending cluster-id order.
func (c *clusterNode) forEachNeighbor(visit func(*clusterNode)) {
	if len(c.neighbors) == 0 {
		return
	}
	ids := make([]int, 0, len(c.neighbors))
	for id := range c.neighbors {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		visit(c.neighbors[id])
	}
}

// partnerConns returns the number of open connections one partner holds:
// all clients, every partner of every neighbor, and the co-partner link.
func (c *clusterNode) partnerConns() int {
	conns := len(c.clients) + len(c.partners) - 1
	for _, nb := range c.neighbors {
		conns += len(nb.partners)
	}
	if conns < 0 {
		conns = 0 // dissolved cluster handling a late in-flight message
	}
	return conns
}

// clientConns returns the connections one of the cluster's clients holds.
func (c *clusterNode) clientConns() int { return len(c.partners) }

// indexSize returns x_tot for the cluster's shared index.
func (c *clusterNode) indexSize() int {
	total := 0
	for _, p := range c.partners {
		total += p.files
	}
	for _, cl := range c.clients {
		total += cl.files
	}
	return total
}

// Simulator executes the super-peer protocol over a mutable copy of a
// generated instance.
type Simulator struct {
	sched    scheduler
	rng      *stats.RNG
	prof     *workload.Profile
	opts     Options
	clusters []*clusterNode

	qBytes    float64
	sendQProc float64
	recvQProc float64

	// Routing strategy state. routeRNG seeds per-cluster NodeStates from a
	// stream independent of s.rng so strategy randomness cannot perturb the
	// flood-deterministic simulation stream; indexGen invalidates cached
	// routing-index summaries when a content index mutates.
	route            routing.Strategy
	routeLearns      bool
	routeSummaries   bool
	routeRNG         *stats.RNG
	indexGen         int
	queriesForwarded int
	candBuf          []routing.Candidate
	candNodes        []*clusterNode
	selBuf           []int

	nextQueryID       uint64
	arrivalsScheduled bool

	queries      int
	resultsTotal float64
	respMsgs     float64
	respHops     float64
	events       int

	failuresInjected  int
	clientQueriesLost int

	// adv is the adversary-mode bookkeeping (nil on honest runs).
	adv *advState
}

// New builds a simulator from a generated instance. The instance is copied
// into mutable structures and is not modified.
func New(inst *network.Instance, opts Options) (*Simulator, error) {
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("sim: Duration = %v, want > 0", opts.Duration)
	}
	if opts.Latency <= 0 {
		opts.Latency = 0.02
	}
	s := &Simulator{
		rng:  stats.NewRNG(opts.Seed),
		prof: inst.Profile,
		opts: opts,
	}
	s.initRouting()
	qb, sp := cost.SendQuery(inst.Profile.QueryLen)
	_, rp := cost.RecvQuery(inst.Profile.QueryLen)
	s.qBytes, s.sendQProc, s.recvQProc = float64(qb), float64(sp), float64(rp)

	// Build mutable clusters.
	s.clusters = make([]*clusterNode, len(inst.Clusters))
	for v := range inst.Clusters {
		src := &inst.Clusters[v]
		c := &clusterNode{
			id:               v,
			seen:             make(map[uint64]seenEntry),
			neighbors:        make(map[int]*clusterNode),
			ttl:              inst.Config.TTL,
			acceptingClients: true,
		}
		for _, p := range src.Partners {
			c.partners = append(c.partners, &partnerNode{
				cluster: c, files: p.Files, lifespan: p.Lifespan,
			})
		}
		for _, cl := range src.Clients {
			c.clients = append(c.clients, &clientNode{
				cluster: c, files: cl.Files, lifespan: cl.Lifespan,
			})
		}
		c.targetPartners = len(c.partners)
		s.clusters[v] = c
	}
	for v := range inst.Clusters {
		inst.Graph.VisitNeighbors(v, func(w int) bool {
			s.clusters[v].neighbors[w] = s.clusters[w]
			return true
		})
	}
	if s.contentMode() {
		if err := s.initContent(); err != nil {
			return nil, err
		}
	}
	if opts.Adversary != nil {
		if err := s.initAdversary(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Run executes the simulation and returns the measured loads and metrics.
func Run(inst *network.Instance, opts Options) (*Measured, error) {
	s, err := New(inst, opts)
	if err != nil {
		return nil, err
	}
	s.start()
	s.events = s.sched.runUntil(opts.Duration)
	return s.measure(), nil
}

// start schedules every peer's behavior processes.
func (s *Simulator) start() {
	for _, c := range s.clusters {
		for _, p := range c.partners {
			s.startPartnerProcesses(p, true)
		}
		for _, cl := range c.clients {
			s.startClientProcesses(cl, true)
		}
		s.scheduleSeenCleanup(c)
		s.scheduleFailures(c)
		if s.opts.Adaptive != nil {
			s.scheduleAdaptive(c)
		}
	}
	if f := s.opts.Failures; f != nil && f.replayMode() {
		s.scheduleReplay()
	}
}

// startClientProcesses schedules a client slot's behavior loops: Poisson
// queries and updates, plus the deterministic session-churn cycle. All loops
// stop once the slot is retired. offsetChurn staggers the first churn event
// uniformly within one lifespan (used for the initial population; nodes
// created mid-run just completed a join).
func (s *Simulator) startClientProcesses(c *clientNode, offsetChurn bool) {
	s.scheduleGuardedProcess(s.prof.Rates.QueryRate, c.alive,
		func() { s.userQueryFromClient(c) })
	s.scheduleGuardedProcess(s.prof.Rates.UpdateRate, c.alive,
		func() { s.clientUpdate(c) })
	if s.opts.Churn {
		first := c.lifespan
		if offsetChurn {
			first = s.rng.Float64() * c.lifespan
		}
		var cycle func()
		cycle = func() {
			if !c.alive() {
				return
			}
			s.clientJoin(c)
			s.sched.schedule(c.lifespan, cycle)
		}
		s.sched.schedule(first, cycle)
	}
}

// startPartnerProcesses schedules a super-peer partner's behavior loops:
// its own queries and updates, index maintenance churn, and duplicate-table
// cleanup.
func (s *Simulator) startPartnerProcesses(p *partnerNode, offsetChurn bool) {
	s.scheduleGuardedProcess(s.prof.Rates.QueryRate, p.alive,
		func() { s.userQueryFromPartner(p) })
	s.scheduleGuardedProcess(s.prof.Rates.UpdateRate, p.alive,
		func() { s.partnerUpdate(p) })
	if s.opts.Churn {
		first := p.lifespan
		if offsetChurn {
			first = s.rng.Float64() * p.lifespan
		}
		var cycle func()
		cycle = func() {
			if !p.alive() {
				return
			}
			s.partnerRejoin(p)
			s.sched.schedule(p.lifespan, cycle)
		}
		s.sched.schedule(first, cycle)
	}
}

// scheduleGuardedProcess runs fn as a Poisson process with the given rate;
// the process stops permanently once the guard fails.
func (s *Simulator) scheduleGuardedProcess(rate float64, alive func() bool, fn func()) {
	if rate <= 0 {
		return
	}
	var tick func()
	tick = func() {
		if !alive() {
			return
		}
		fn()
		s.sched.schedule(s.rng.ExpFloat64()/rate, tick)
	}
	s.sched.schedule(s.rng.ExpFloat64()/rate, tick)
}

// scheduleSeenCleanup periodically expires old duplicate-detection entries
// of a cluster's shared table.
func (s *Simulator) scheduleSeenCleanup(c *clusterNode) {
	const interval, maxAge = 120.0, 60.0
	var tick func()
	tick = func() {
		if c.dissolved() {
			return
		}
		cutoff := s.sched.now - maxAge
		for id, e := range c.seen {
			if e.at < cutoff {
				delete(c.seen, id)
			}
		}
		s.sched.schedule(interval, tick)
	}
	s.sched.schedule(interval, tick)
}

// measure converts counters to loads and summary metrics.
func (s *Simulator) measure() *Measured {
	m := &Measured{
		Duration:          s.opts.Duration,
		QueriesIssued:     s.queries,
		QueriesForwarded:  s.queriesForwarded,
		Strategy:          s.route.Name(),
		EventsExecuted:    s.events,
		FailuresInjected:  s.failuresInjected,
		ClientQueriesLost: s.clientQueriesLost,
	}
	var clientSum analysis.Load
	clientCount := 0
	var ttlSum, degSum float64
	for _, c := range s.clusters {
		if c.dissolved() {
			continue
		}
		m.FinalClusters++
		var sp analysis.Load
		var spCls metrics.ByClass
		for _, p := range c.partners {
			sp = sp.Add(p.counters.load(s.opts.Duration))
			spCls.Merge(p.counters.cls)
		}
		perPartner := sp.Scale(1 / float64(len(c.partners)))
		m.SuperPeer = append(m.SuperPeer, perPartner)
		m.SuperPeerClassBps = append(m.SuperPeerClassBps,
			spCls.Scale(8/(s.opts.Duration*float64(len(c.partners)))))
		m.MeanSuperPeer = m.MeanSuperPeer.Add(perPartner)
		m.Aggregate = m.Aggregate.Add(sp)
		m.FinalPeers += len(c.partners)
		for _, cl := range c.clients {
			l := cl.counters.load(s.opts.Duration)
			clientSum = clientSum.Add(l)
			m.Aggregate = m.Aggregate.Add(l)
			clientCount++
		}
		m.FinalPeers += len(c.clients)
		ttlSum += float64(c.ttl)
		degSum += float64(len(c.neighbors))
	}
	if m.FinalClusters > 0 {
		k := float64(m.FinalClusters)
		m.MeanSuperPeer = m.MeanSuperPeer.Scale(1 / k)
		m.FinalMeanTTL = ttlSum / k
		m.FinalMeanOutdegree = degSum / k
	}
	if clientCount > 0 {
		m.MeanClient = clientSum.Scale(1 / float64(clientCount))
	}
	if s.queries > 0 {
		m.ResultsPerQuery = s.resultsTotal / float64(s.queries)
	}
	if s.respMsgs > 0 {
		m.EPL = s.respHops / s.respMsgs
	}
	s.advMeasure(m)
	return m
}

// RegisterMetrics exposes the run's measured per-cluster byte totals on a
// registry under the same series name live super-peers emit
// (spnet_message_bytes_total{type,dir}), with an extra cluster label, so one
// scrape pipeline consumes live and simulated runs alike. Values are
// per-partner mean totals reconstructed from the class bandwidth breakdown.
func (m *Measured) RegisterMetrics(r *metrics.Registry) {
	fwd := float64(m.QueriesForwarded)
	r.CounterFunc(metrics.MetricQueriesForwarded,
		"Query copies forwarded over super-peer overlay links.",
		func() float64 { return fwd },
		metrics.Label{Name: "strategy", Value: m.Strategy})
	for v, cls := range m.SuperPeerClassBps {
		bytes := cls.Scale(m.Duration / 8)
		clusterLbl := metrics.Label{Name: "cluster", Value: strconv.Itoa(v)}
		for c := 0; c < metrics.NumClasses; c++ {
			for d := 0; d < metrics.NumDirs; d++ {
				cc, dd := metrics.Class(c), metrics.Dir(d)
				val := bytes.Get(cc, dd)
				r.CounterFunc(metrics.MetricMessageBytes,
					"Model wire bytes (incl. frame overhead) by class and direction.",
					func() float64 { return val },
					metrics.Label{Name: "type", Value: cc.String()},
					metrics.Label{Name: "dir", Value: dd.String()},
					clusterLbl)
			}
		}
	}
}
