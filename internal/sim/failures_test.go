package sim

import (
	"testing"

	"spnet/internal/faults"
	"spnet/internal/network"
)

func failureOpts(mtbf, recovery float64) *FailureOptions {
	return &FailureOptions{MTBF: mtbf, RecoveryDelay: recovery}
}

func TestFailuresInjectQueryLoss(t *testing.T) {
	// Non-redundant clusters with frequent failures and slow recovery lose
	// a measurable fraction of client queries.
	cfg := network.Config{GraphType: network.PowerLaw, GraphSize: 400,
		ClusterSize: 10, AvgOutdegree: 3.1, TTL: 5}
	inst := generate(t, cfg, lowVarProfile(), 1)
	m, err := Run(inst, Options{
		Duration: 2000, Seed: 2, Churn: false,
		Failures: failureOpts(1000, 300),
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.FailuresInjected == 0 {
		t.Fatal("no failures injected")
	}
	if m.ClientQueriesLost == 0 {
		t.Error("no client queries lost despite single-partner outages")
	}
	// The outage fraction is roughly recovery/(MTBF+recovery) ≈ 23%; the
	// lost-query fraction should be the same order.
	frac := float64(m.ClientQueriesLost) / float64(m.QueriesIssued+m.ClientQueriesLost)
	if frac < 0.05 || frac > 0.5 {
		t.Errorf("lost-query fraction = %.2f, want ~0.2", frac)
	}
}

func TestRedundancySurvivesFailures(t *testing.T) {
	// Section 3.2's reliability claim, measured: with 2-redundancy and the
	// same failure process, the co-partner keeps serving, so essentially no
	// client query is lost.
	base := network.Config{GraphType: network.PowerLaw, GraphSize: 400,
		ClusterSize: 10, AvgOutdegree: 3.1, TTL: 5}
	red := base
	red.Redundancy = true

	// Recovery (60 s) far below the MTBF (2000 s): the regime where the
	// paper's "much lower probability that all partners fail before any is
	// replaced" holds strongly.
	run := func(cfg network.Config) *Measured {
		inst := generate(t, cfg, lowVarProfile(), 3)
		m, err := Run(inst, Options{
			Duration: 4000, Seed: 4, Churn: false,
			Failures: failureOpts(2000, 60),
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	plain := run(base)
	redundant := run(red)
	if plain.ClientQueriesLost == 0 {
		t.Fatal("baseline lost no queries; failure injection broken")
	}
	if redundant.FailuresInjected == 0 {
		t.Fatal("no failures injected in the redundant run")
	}
	plainFrac := float64(plain.ClientQueriesLost) / float64(plain.QueriesIssued+plain.ClientQueriesLost)
	redFrac := float64(redundant.ClientQueriesLost) / float64(redundant.QueriesIssued+redundant.ClientQueriesLost)
	if redFrac > plainFrac/4 {
		t.Errorf("redundant lost fraction %.3f not far below plain %.3f", redFrac, plainFrac)
	}
}

func TestFailureRecoveryRestoresService(t *testing.T) {
	// With fast recovery the long-run results per query approach the
	// failure-free level.
	cfg := network.Config{GraphType: network.PowerLaw, GraphSize: 300,
		ClusterSize: 10, AvgOutdegree: 3.1, TTL: 5}
	instA := generate(t, cfg, lowVarProfile(), 5)
	noFail, err := Run(instA, Options{Duration: 1500, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	instB := generate(t, cfg, lowVarProfile(), 5)
	fastRecovery, err := Run(instB, Options{
		Duration: 1500, Seed: 6,
		Failures: failureOpts(800, 10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(fastRecovery.ResultsPerQuery, noFail.ResultsPerQuery) > 0.15 {
		t.Errorf("fast-recovery results %.1f too far from failure-free %.1f",
			fastRecovery.ResultsPerQuery, noFail.ResultsPerQuery)
	}
}

func TestFailuresDeterministic(t *testing.T) {
	cfg := network.Config{GraphType: network.PowerLaw, GraphSize: 200,
		ClusterSize: 10, AvgOutdegree: 3.1, TTL: 4, Redundancy: true}
	opts := Options{Duration: 800, Seed: 7, Churn: true, Failures: failureOpts(500, 100)}
	a, err := Run(generate(t, cfg, nil, 8), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(generate(t, cfg, nil, 8), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.FailuresInjected != b.FailuresInjected || a.ClientQueriesLost != b.ClientQueriesLost ||
		a.Aggregate != b.Aggregate {
		t.Error("failure injection is not deterministic")
	}
}

func TestScheduledFailuresReplay(t *testing.T) {
	// A fixed schedule replaces the stochastic process: exactly the
	// scheduled (in-range, in-horizon) events fire, with MTBF unset.
	cfg := network.Config{GraphType: network.PowerLaw, GraphSize: 200,
		ClusterSize: 10, AvgOutdegree: 3.1, TTL: 4}
	sched := faults.Schedule{
		{At: 100, Cluster: 0, Partner: 0},
		{At: 250, Cluster: 3, Partner: 0},
		{At: 400, Cluster: 7, Partner: 0},
		{At: 900, Cluster: 5000, Partner: 0}, // out of range: dropped
		{At: 2500, Cluster: 1, Partner: 0},   // past horizon: dropped
	}
	m, err := Run(generate(t, cfg, lowVarProfile(), 11), Options{
		Duration: 1000, Seed: 12,
		Failures: &FailureOptions{RecoveryDelay: 200, Schedule: sched},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.FailuresInjected != 3 {
		t.Errorf("FailuresInjected = %d, want the 3 applicable events", m.FailuresInjected)
	}
	if m.ClientQueriesLost == 0 {
		t.Error("scheduled single-partner outages lost no client queries")
	}
}

func TestScheduledFailuresDeterministic(t *testing.T) {
	// The same generated schedule replayed twice yields identical runs —
	// the property that lets the live harness compare against the sim.
	cfg := network.Config{GraphType: network.PowerLaw, GraphSize: 200,
		ClusterSize: 10, AvgOutdegree: 3.1, TTL: 4, Redundancy: true}
	sched := faults.ExponentialSchedule(21, 20, 2, 400, 800)
	if len(sched) == 0 {
		t.Fatal("empty generated schedule")
	}
	run := func() *Measured {
		m, err := Run(generate(t, cfg, nil, 13), Options{
			Duration: 800, Seed: 14,
			Failures: &FailureOptions{RecoveryDelay: 60, Schedule: sched},
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.FailuresInjected == 0 {
		t.Fatal("no failures replayed")
	}
	if a.FailuresInjected != b.FailuresInjected || a.ClientQueriesLost != b.ClientQueriesLost ||
		a.Aggregate != b.Aggregate {
		t.Error("schedule replay is not deterministic")
	}
}

func TestFailuresDisabledByDefault(t *testing.T) {
	cfg := network.DefaultConfig()
	cfg.GraphSize = 200
	m, err := Run(generate(t, cfg, nil, 9), Options{Duration: 200, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.FailuresInjected != 0 || m.ClientQueriesLost != 0 {
		t.Errorf("failures occurred without FailureOptions: %d/%d",
			m.FailuresInjected, m.ClientQueriesLost)
	}
}
