package sim

import (
	"fmt"

	"spnet/internal/content"
	"spnet/internal/index"
	"spnet/internal/stats"
)

// ContentOptions switch the simulator from the Appendix B match-sampling
// model to concrete content: every cluster maintains a real inverted index
// over its peers' file titles (Section 3.2's "inverted lists over the
// titles"), queries are keyword sets drawn from the library, and matches
// come from actual index lookups. Join churn replaces a departed client's
// titles in the index, exercising the maintenance path.
//
// Content mode is for protocol-level realism; it is not calibrated to the
// analytic query model (use Library.BuildQueryModel to derive a matching
// model if you want to compare). It is incompatible with the Adaptive and
// Failures options, which re-home peers across clusters.
type ContentOptions struct {
	// Library generates titles and queries (nil selects the default).
	Library *content.Library
	// Titles, when non-nil, overrides Library title sampling: it returns the
	// title terms for file `file` of cluster-local owner `owner` in cluster
	// `cluster`. Experiments use it to plant known content distributions so
	// routing-strategy recall can be measured against ground truth.
	Titles func(cluster, owner, file int) []string
	// Queries, when non-nil, overrides Library query sampling. The RNG is
	// the simulator's own stream, so a deterministic hook keeps the query
	// workload identical across routing strategies.
	Queries func(rng *stats.RNG) []string
}

// contentMode reports whether concrete-content evaluation is on.
func (s *Simulator) contentMode() bool { return s.opts.Content != nil }

// initContent builds every cluster's inverted index from freshly sampled
// titles. Each peer receives a cluster-local owner id.
func (s *Simulator) initContent() error {
	if s.opts.Adaptive != nil {
		return fmt.Errorf("sim: content mode is incompatible with adaptive mode")
	}
	if s.opts.Failures != nil {
		return fmt.Errorf("sim: content mode is incompatible with failure injection")
	}
	if s.opts.Content.Library == nil {
		s.opts.Content.Library = content.DefaultLibrary()
	}
	for _, c := range s.clusters {
		c.index = index.New()
		owner := 0
		for _, p := range c.partners {
			p.owner = owner
			owner++
			if err := s.indexPeerFiles(c, p.owner, p.files); err != nil {
				return err
			}
		}
		for _, cl := range c.clients {
			cl.owner = owner
			owner++
			if err := s.indexPeerFiles(c, cl.owner, cl.files); err != nil {
				return err
			}
		}
		c.nextOwner = owner
	}
	// Generation 1 marks the freshly built indexes; clusters build routing
	// summaries lazily against this generation (see refreshSummaries).
	s.indexGen = 1
	return nil
}

// sampleQueryTerms draws the keyword terms for a new source query.
func (s *Simulator) sampleQueryTerms() []string {
	if q := s.opts.Content.Queries; q != nil {
		return q(s.rng)
	}
	return s.opts.Content.Library.SampleQuery(s.rng)
}

// indexPeerFiles samples titles for a peer's collection and indexes them.
func (s *Simulator) indexPeerFiles(c *clusterNode, owner, files int) error {
	lib := s.opts.Content.Library
	titles := s.opts.Content.Titles
	for f := 0; f < files; f++ {
		doc := index.DocID{Owner: owner, File: uint32(f)}
		var title []string
		if titles != nil {
			title = titles(c.id, owner, f)
		} else {
			title = lib.SampleTitle(s.rng)
		}
		if err := c.index.Add(doc, title); err != nil {
			return err
		}
	}
	return nil
}

// contentReindexClient replaces a churned client slot's collection: the
// departed peer's metadata leaves the index and the replacement's titles
// enter it (same collection size, fresh content).
func (s *Simulator) contentReindexClient(c *clientNode) {
	cl := c.cluster
	cl.index.RemoveOwner(c.owner)
	cl.ownSummary = nil
	// Errors cannot occur here: owner ids are non-negative and titles are
	// library-generated.
	if err := s.indexPeerFiles(cl, c.owner, c.files); err != nil {
		panic(err)
	}
	s.indexGen++ // routing summaries referencing this cluster are now stale
}

// contentEvaluate answers a keyword query over the cluster's real index.
func contentEvaluate(c *clusterNode, terms []string) (results, addrs int) {
	return c.index.CountMatches(terms)
}
