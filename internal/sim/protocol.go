package sim

import (
	"spnet/internal/cost"
	"spnet/internal/gnutella"
	"spnet/internal/metrics"
)

// queryMsg is a query in flight between two super-peer partners.
type queryMsg struct {
	id    uint64
	class int      // query class sampled at the source (g distribution)
	terms []string // keyword terms (content mode)
	ttl   int      // remaining TTL, decremented by the receiver
	hops  int      // overlay hops traveled so far (routing strategy input)
	from  *partnerNode
}

// respMsg is a Response traveling the reverse path toward the source.
type respMsg struct {
	id      uint64
	addrs   int
	results int
	hops    int
	from    *partnerNode
	// forged marks a fabricated QueryHit from a malicious relay (adversary
	// mode). The flag is simulator bookkeeping, invisible to honest nodes
	// unless trust auditing is on.
	forged bool
}

// pmPartner and pmClient add the packet-multiplex overhead (Appendix A)
// for one message handled at the node's current connection count.
func (s *Simulator) pmPartner(p *partnerNode) {
	p.counters.procU += float64(cost.PacketMultiplex(p.cluster.partnerConns()))
}

func (s *Simulator) pmClient(c *clientNode) {
	c.counters.procU += float64(cost.PacketMultiplex(c.cluster.clientConns()))
}

// userQueryFromClient: a client submits a query to one of its partners
// (round-robin), who then acts as the source super-peer.
func (s *Simulator) userQueryFromClient(c *clientNode) {
	if len(c.cluster.partners) == 0 {
		return
	}
	if c.cluster.isDown() {
		// The super-peer failed and no partner remains: the client is
		// temporarily disconnected and its query is lost (Section 3.2).
		s.clientQueriesLost++
		return
	}
	p, slot := s.advPickPartner(c)
	if s.adversaryMode() && p.malicious {
		a := s.adv.opts
		refuse := a.BusyLie > 0 && s.adv.rng.Float64() < a.BusyLie
		drop := a.Drop > 0 && s.adv.rng.Float64() < a.Drop
		if refuse {
			// The partner never accepts the query: Busy goes back and the
			// query is lost (recorded as an unanswered client query).
			s.queries++
			s.advNewRecord(-1, true)
			s.advBusyLie(p, c, slot)
			return
		}
		if drop {
			// Freeloading: the partner accepts the query (and its cost),
			// then discards it.
			s.chargeClientToPartner(c, p, metrics.ClassQuery, s.qBytes, s.sendQProc, s.recvQProc)
			s.queries++
			s.adv.clientDrops++
			rec := s.advNewRecord(-1, true)
			s.advObserveClient(c, slot, rec)
			return
		}
	}
	// Client -> super-peer hop.
	s.chargeClientToPartner(c, p, metrics.ClassQuery, s.qBytes, s.sendQProc, s.recvQProc)
	rec := s.sourceQuery(p, c)
	if rec != nil {
		s.advObserveClient(c, slot, rec)
	}
}

// userQueryFromPartner: a super-peer submits its own query (super-peers are
// users too).
func (s *Simulator) userQueryFromPartner(p *partnerNode) {
	if p.cluster.isDown() {
		return
	}
	s.sourceQuery(p, nil)
}

// sourceQuery executes the source-side behavior at partner p: process over
// the local index, answer the originating client if any, and forward over
// the overlay with the cluster's TTL under the active routing strategy.
func (s *Simulator) sourceQuery(p *partnerNode, origin *clientNode) *advQueryRecord {
	s.queries++
	id := s.nextQueryID
	s.nextQueryID++
	rec := s.advNewRecord(int64(id), origin != nil)
	var class int
	var terms []string
	if s.contentMode() {
		terms = s.sampleQueryTerms()
	} else {
		class = s.prof.Queries.SampleClass(s.rng)
	}
	entry := seenEntry{from: nil, origin: origin, at: s.sched.now}
	if s.routeLearns {
		entry.terms = terms
	}
	p.cluster.seen[id] = entry

	// Process over the local index.
	results, addrs := s.evaluateLocally(p, class, terms)
	p.counters.procU += float64(cost.ProcessQuery(float64(results)))
	s.resultsTotal += float64(results)
	s.noteSourceQuery(p.cluster, results)
	if rec != nil {
		rec.genuine += results
	}
	if origin != nil && results > 0 {
		s.deliverResponseToClient(p, origin, addrs, results)
	}

	if p.cluster.ttl < 1 {
		return rec
	}
	msg := queryMsg{id: id, class: class, terms: terms, ttl: p.cluster.ttl, from: p}
	s.forwardQuery(p, msg, nil)
	return rec
}

// sendQueryTo transmits one query copy from partner p to (one partner of)
// neighbor cluster nb.
func (s *Simulator) sendQueryTo(p *partnerNode, nb *clusterNode, msg queryMsg) {
	if nb.isDown() || len(nb.partners) == 0 {
		return // the neighbor's connections are closed; nothing is sent
	}
	target := s.advPickNeighborPartner(p.cluster, nb)
	s.queriesForwarded++
	p.counters.addOut(metrics.ClassQuery, s.qBytes)
	p.counters.procU += s.sendQProc
	s.pmPartner(p)
	m := msg
	m.from = p
	s.sched.schedule(s.opts.Latency, func() { s.handleQuery(target, m) })
}

// handleQuery runs the receiver side of query propagation: duplicate drop,
// local processing, response, and forwarding with a decremented TTL.
func (s *Simulator) handleQuery(p *partnerNode, msg queryMsg) {
	if p.cluster.isDown() {
		return // failed while the message was in flight
	}
	p.counters.addIn(metrics.ClassQuery, s.qBytes)
	p.counters.procU += s.recvQProc
	s.pmPartner(p)

	if _, dup := p.cluster.seen[msg.id]; dup {
		return // redundant copy: received, then dropped
	}
	if s.adversaryMode() && p.malicious {
		// Misbehave before the cluster marks the query seen, so a copy
		// arriving later over another edge can still be served honestly.
		a := s.adv.opts
		forge := a.Forge > 0 && s.adv.rng.Float64() < a.Forge
		drop := a.Drop > 0 && s.adv.rng.Float64() < a.Drop
		if forge {
			s.adv.forged++
			s.sendResponse(p, msg.from, respMsg{
				id: msg.id, addrs: 1, results: advForgedResults, forged: true,
			})
		}
		if drop {
			s.adv.relayDrops++
			return
		}
	}
	entry := seenEntry{from: msg.from, at: s.sched.now}
	if s.routeLearns {
		entry.terms = msg.terms
	}
	p.cluster.seen[msg.id] = entry

	results, addrs := s.evaluateLocally(p, msg.class, msg.terms)
	p.counters.procU += float64(cost.ProcessQuery(float64(results)))
	if results > 0 {
		s.sendResponse(p, msg.from, respMsg{id: msg.id, addrs: addrs, results: results})
	}

	ttl := msg.ttl - 1
	if ttl < 1 {
		return
	}
	fwd := queryMsg{id: msg.id, class: msg.class, terms: msg.terms, ttl: ttl, hops: msg.hops + 1}
	var exclude *clusterNode
	if msg.from != nil {
		exclude = msg.from.cluster // never back over the arrival edge
	}
	s.forwardQuery(p, fwd, exclude)
}

// evaluateLocally determines the number of matching files and responding
// collections for a query over p's cluster index. In content mode the
// cluster's real inverted index is searched; otherwise each collection is
// binomial(x_i, f(class)), per Appendix B's match model.
func (s *Simulator) evaluateLocally(p *partnerNode, class int, terms []string) (results, addrs int) {
	if s.contentMode() {
		return contentEvaluate(p.cluster, terms)
	}
	qm := s.prof.Queries
	for _, partner := range p.cluster.partners {
		if n := qm.SampleMatches(s.rng, class, partner.files); n > 0 {
			results += n
			addrs++
		}
	}
	for _, cl := range p.cluster.clients {
		if n := qm.SampleMatches(s.rng, class, cl.files); n > 0 {
			results += n
			addrs++
		}
	}
	return results, addrs
}

// respCost returns the wire bytes of a concrete Response message.
func respCost(addrs, results int) float64 {
	return float64(gnutella.ResponseSize(addrs, results))
}

// sendResponse transmits one Response hop from p toward `to`.
func (s *Simulator) sendResponse(p *partnerNode, to *partnerNode, msg respMsg) {
	b := respCost(msg.addrs, msg.results)
	p.counters.addOut(metrics.ClassResponse, b)
	p.counters.procU += float64(cost.SendRespBase) +
		cost.SendRespPerAddr*float64(msg.addrs) + cost.SendRespPerResult*float64(msg.results)
	s.pmPartner(p)
	m := msg
	m.from = p
	m.hops++
	s.sched.schedule(s.opts.Latency, func() { s.handleResponse(to, m) })
}

// handleResponse receives one Response hop: consume it at the source
// (forwarding to the originating client when there is one) or relay it
// along the reverse path.
func (s *Simulator) handleResponse(p *partnerNode, msg respMsg) {
	if p.cluster.isDown() {
		return // failed while the message was in flight
	}
	b := respCost(msg.addrs, msg.results)
	p.counters.addIn(metrics.ClassResponse, b)
	p.counters.procU += float64(cost.RecvRespBase) +
		cost.RecvRespPerAddr*float64(msg.addrs) + cost.RecvRespPerResult*float64(msg.results)
	s.pmPartner(p)

	entry, ok := p.cluster.seen[msg.id]
	if !ok {
		return // path expired (e.g. the query record was cleaned up)
	}
	if msg.forged && s.adversaryMode() && s.adv.opts.Trust {
		// Audit: the fabricated hit is detected, dropped before it can
		// credit the routing strategy, and the sending partner's overlay
		// reputation takes the hit.
		s.adv.forgedDetected++
		if p.cluster.trustBook != nil && msg.from != nil {
			p.cluster.trustBook.Observe(msg.from.advID, false)
		}
		return
	}
	if s.adversaryMode() && s.adv.opts.Trust && !msg.forged &&
		msg.from != nil && p.cluster.trustBook != nil {
		// A genuine response relayed through this neighbor partner: score
		// it good in the overlay book.
		p.cluster.trustBook.Observe(msg.from.advID, true)
	}
	if s.routeLearns && msg.from != nil && len(entry.terms) > 0 {
		// Credit the neighbor the response arrived through: its subtree
		// produced results for these terms. (With trust off, forged hits
		// reach this point and inflate the learned strategy's credit — the
		// attack the trustsweep experiment measures.)
		s.routingState(p.cluster).RecordHit(msg.from.cluster.id, entry.terms)
	}
	if entry.from == nil {
		// This partner sourced the query.
		s.resultsTotal += float64(msg.results)
		s.respMsgs++
		s.respHops += float64(msg.hops)
		s.noteSourceResponse(p.cluster, msg)
		if rec := s.advRecord(msg.id); rec != nil {
			if msg.forged {
				rec.forged += msg.results
				s.adv.forgedAccepted++
			} else {
				rec.genuine += msg.results
			}
		}
		// The originating client may have been retired (promoted or moved)
		// while its query was in flight; responses to it are then dropped.
		if entry.origin != nil && entry.origin.alive() {
			s.deliverResponseToClient(p, entry.origin, msg.addrs, msg.results)
		}
		return
	}
	s.sendResponse(p, entry.from, respMsg{id: msg.id, addrs: msg.addrs, results: msg.results, hops: msg.hops, forged: msg.forged})
}

// deliverResponseToClient forwards one Response from the source super-peer
// to the client that submitted the query.
func (s *Simulator) deliverResponseToClient(p *partnerNode, c *clientNode, addrs, results int) {
	b := respCost(addrs, results)
	sendU := float64(cost.SendRespBase) +
		cost.SendRespPerAddr*float64(addrs) + cost.SendRespPerResult*float64(results)
	recvU := float64(cost.RecvRespBase) +
		cost.RecvRespPerAddr*float64(addrs) + cost.RecvRespPerResult*float64(results)
	s.chargePartnerToClient(p, c, metrics.ClassResponse, b, sendU, recvU)
}
