package sim

import (
	"testing"

	"spnet/internal/analysis"
	"spnet/internal/design"
	"spnet/internal/network"
)

// adaptiveBase is a small network with plenty of headroom.
func adaptiveBase(t *testing.T, seed uint64) *network.Instance {
	t.Helper()
	cfg := network.Config{GraphType: network.PowerLaw, GraphSize: 300,
		ClusterSize: 10, AvgOutdegree: 3.1, TTL: 7}
	return generate(t, cfg, lowVarProfile(), seed)
}

func TestAdaptiveRuleIIGrowsOutdegree(t *testing.T) {
	inst := adaptiveBase(t, 1)
	// Limits chosen so typical utilization sits between the coalesce and
	// spare thresholds: clusters neither merge nor shed, they add neighbors.
	m, err := Run(inst, Options{
		Duration: 1200, Seed: 2, Churn: true,
		Adaptive: &AdaptiveOptions{
			Limit:    analysis.Load{InBps: 4e4, OutBps: 4e4, ProcHz: 5e5},
			Interval: 60,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// With spare resources everywhere, rule II should raise the mean
	// outdegree well above the initial 3.1.
	if m.FinalMeanOutdegree < 5 {
		t.Errorf("mean outdegree = %v, want growth beyond 3.1", m.FinalMeanOutdegree)
	}
}

func TestAdaptiveRuleIIIDecaysTTL(t *testing.T) {
	// A dense overlay with TTL 7: responses never come from 7 hops away, so
	// rule III should cut the TTL down toward the observed horizon.
	cfg := network.Config{GraphType: network.PowerLaw, GraphSize: 300,
		ClusterSize: 10, AvgOutdegree: 10, TTL: 7}
	inst := generate(t, cfg, lowVarProfile(), 3)
	m, err := Run(inst, Options{
		Duration: 900, Seed: 4, Churn: false,
		Adaptive: &AdaptiveOptions{
			Limit:        analysis.Load{InBps: 4e4, OutBps: 4e4, ProcHz: 5e5},
			Interval:     60,
			MaxOutdegree: 10, // freeze outdegree growth; isolate rule III
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.FinalMeanTTL >= 6.5 {
		t.Errorf("mean TTL = %v, want decay below the initial 7", m.FinalMeanTTL)
	}
	if m.FinalMeanTTL < 2 {
		t.Errorf("mean TTL = %v, decayed too far to keep reach", m.FinalMeanTTL)
	}
}

func TestAdaptiveOverloadSplitsOrPromotes(t *testing.T) {
	// Very tight limits: every super-peer is overloaded from the start, so
	// clusters must shed load by promoting partners and splitting,
	// increasing the number of super-peer partners in the system.
	inst := adaptiveBase(t, 5)
	initialClusters := len(inst.Clusters)
	m, err := Run(inst, Options{
		Duration: 900, Seed: 6, Churn: true,
		Adaptive: &AdaptiveOptions{
			Limit:    analysis.Load{InBps: 2000, OutBps: 2000, ProcHz: 50_000},
			Interval: 60,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.FinalClusters <= initialClusters {
		t.Errorf("clusters %d -> %d: expected splits under overload",
			initialClusters, m.FinalClusters)
	}
}

func TestAdaptiveUnderloadCoalesces(t *testing.T) {
	// Tiny clusters with huge limits: rule I's underload response should
	// merge clusters, shrinking the super-peer population.
	cfg := network.Config{GraphType: network.PowerLaw, GraphSize: 200,
		ClusterSize: 2, AvgOutdegree: 3.1, TTL: 7}
	inst := generate(t, cfg, lowVarProfile(), 7)
	initialClusters := len(inst.Clusters)
	m, err := Run(inst, Options{
		Duration: 900, Seed: 8, Churn: false,
		Adaptive: &AdaptiveOptions{
			Limit: analysis.Load{InBps: 1e9, OutBps: 1e9, ProcHz: 1e12},
			Thresholds: design.Thresholds{
				Coalesce: 0.5, // everything far below this merges
			},
			Interval: 60,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.FinalClusters >= initialClusters {
		t.Errorf("clusters %d -> %d: expected coalescing under underload",
			initialClusters, m.FinalClusters)
	}
	// The population is conserved: every resigned super-peer and moved
	// client lives on somewhere.
	if m.FinalPeers != inst.NumPeers {
		t.Errorf("peers %d -> %d: coalescing must conserve the population",
			inst.NumPeers, m.FinalPeers)
	}
}

func TestAdaptiveArrivalsGrowPopulation(t *testing.T) {
	inst := adaptiveBase(t, 9)
	m, err := Run(inst, Options{
		Duration: 600, Seed: 10, Churn: false,
		Adaptive: &AdaptiveOptions{
			Limit:       analysis.Load{InBps: 1e7, OutBps: 1e7, ProcHz: 1e9},
			Interval:    60,
			ArrivalRate: 0.5, // ~300 new clients over the run
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.FinalPeers <= inst.NumPeers+100 {
		t.Errorf("peers %d -> %d: arrivals should grow the population",
			inst.NumPeers, m.FinalPeers)
	}
}

func TestAdaptiveStaysDeterministic(t *testing.T) {
	opts := Options{
		Duration: 400, Seed: 11, Churn: true,
		Adaptive: &AdaptiveOptions{
			Limit:    analysis.Load{InBps: 1e5, OutBps: 1e5, ProcHz: 1e8},
			Interval: 60,
		},
	}
	a, err := Run(adaptiveBase(t, 12), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(adaptiveBase(t, 12), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Aggregate != b.Aggregate || a.FinalClusters != b.FinalClusters ||
		a.FinalMeanOutdegree != b.FinalMeanOutdegree {
		t.Error("adaptive run is not deterministic")
	}
}
