package sim

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"spnet/internal/metrics"
	"spnet/internal/network"
)

// TestSimClassBreakdownConsistent checks the taxonomy attribution: for every
// cluster, the per-class byte breakdown must sum exactly to the total
// measured bandwidth, and a churning run must show all four analytical
// classes (query, response, join, update) with nothing in the live-only ones.
func TestSimClassBreakdownConsistent(t *testing.T) {
	cfg := network.DefaultConfig()
	cfg.GraphSize = 200
	inst := generate(t, cfg, lowVarProfile(), 3)
	m, err := Run(inst, Options{Duration: 400, Seed: 11, Churn: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.SuperPeerClassBps) != len(m.SuperPeer) {
		t.Fatalf("class breakdown covers %d clusters, loads cover %d",
			len(m.SuperPeerClassBps), len(m.SuperPeer))
	}
	var agg metrics.ByClass
	for v, cls := range m.SuperPeerClassBps {
		for d, tot := range map[metrics.Dir]float64{
			metrics.DirIn:  m.SuperPeer[v].InBps,
			metrics.DirOut: m.SuperPeer[v].OutBps,
		} {
			sum := 0.0
			for c := 0; c < metrics.NumClasses; c++ {
				sum += cls.Get(metrics.Class(c), d)
			}
			if relDiff(sum, tot) > 1e-9 {
				t.Errorf("cluster %d dir %v: class sum %v != total %v", v, d, sum, tot)
			}
		}
		agg.Merge(cls)
	}
	for _, c := range []metrics.Class{
		metrics.ClassQuery, metrics.ClassResponse, metrics.ClassJoin, metrics.ClassUpdate,
	} {
		if agg.Sum(metrics.DirIn, c)+agg.Sum(metrics.DirOut, c) == 0 {
			t.Errorf("churning run attributed no bytes to class %v", c)
		}
	}
	for _, c := range []metrics.Class{metrics.ClassBusy, metrics.ClassPing, metrics.ClassOther} {
		if agg.Sum(metrics.DirIn, c)+agg.Sum(metrics.DirOut, c) != 0 {
			t.Errorf("simulator attributed bytes to live-only class %v", c)
		}
	}
}

// TestMeasuredRegisterMetrics checks the simulator's registry exporter: the
// exposition must carry the live series name with a cluster label, and the
// per-cluster query totals must reproduce the class breakdown.
func TestMeasuredRegisterMetrics(t *testing.T) {
	cfg := network.DefaultConfig()
	cfg.GraphSize = 120
	inst := generate(t, cfg, lowVarProfile(), 4)
	m, err := Run(inst, Options{Duration: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	m.RegisterMetrics(reg)
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	vals, err := metrics.ParsePrometheus(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	for v, cls := range m.SuperPeerClassBps {
		key := metrics.SeriesKey(metrics.MetricMessageBytes,
			metrics.Label{Name: "type", Value: "query"},
			metrics.Label{Name: "dir", Value: "in"},
			metrics.Label{Name: "cluster", Value: fmt.Sprint(v)})
		want := cls.Get(metrics.ClassQuery, metrics.DirIn) * m.Duration / 8
		got, ok := vals[key]
		if !ok {
			t.Fatalf("exposition missing %s", key)
		}
		if math.Abs(got-want) > 1e-6*math.Max(1, want) {
			t.Errorf("cluster %d exported query-in bytes %v, want %v", v, got, want)
		}
	}
}
