package sim

import (
	"math"
	"testing"

	"spnet/internal/network"
	"spnet/internal/stats"
	"spnet/internal/workload"
)

// lowVarProfile mirrors the analysis tests: default means, light tails, so
// short runs converge.
func lowVarProfile() *workload.Profile {
	prof := workload.DefaultProfile()
	prof.Files = workload.FileCountDist{
		FreeRiderFrac: 0,
		Sharers:       stats.BoundedPareto{Alpha: 8, L: 90, H: 200},
	}
	prof.Lifespans = workload.LifespanDist{D: stats.BoundedPareto{Alpha: 8, L: 950, H: 2000}}
	return prof
}

func generate(t *testing.T, cfg network.Config, prof *workload.Profile, seed uint64) *network.Instance {
	t.Helper()
	inst, err := network.Generate(cfg, prof, stats.NewRNG(seed))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return inst
}

func relDiff(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

func TestRunValidation(t *testing.T) {
	cfg := network.DefaultConfig()
	cfg.GraphSize = 100
	inst := generate(t, cfg, nil, 1)
	if _, err := Run(inst, Options{Duration: 0}); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := network.DefaultConfig()
	cfg.GraphSize = 200
	inst := generate(t, cfg, nil, 2)
	opts := Options{Duration: 200, Seed: 7, Churn: true}
	a, err := Run(inst, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(generate(t, cfg, nil, 2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Aggregate != b.Aggregate || a.QueriesIssued != b.QueriesIssued ||
		a.EventsExecuted != b.EventsExecuted {
		t.Errorf("same seed differs: %+v vs %+v", a.Aggregate, b.Aggregate)
	}
}

func TestRunBasicActivity(t *testing.T) {
	cfg := network.DefaultConfig()
	cfg.GraphSize = 300
	inst := generate(t, cfg, nil, 3)
	m, err := Run(inst, Options{Duration: 300, Seed: 1, Churn: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.QueriesIssued == 0 {
		t.Fatal("no queries issued")
	}
	if m.ResultsPerQuery <= 0 {
		t.Error("no results observed")
	}
	if m.EPL < 1 || m.EPL > float64(cfg.TTL) {
		t.Errorf("EPL = %v outside [1, %d]", m.EPL, cfg.TTL)
	}
	if m.Aggregate.InBps <= 0 || m.Aggregate.OutBps <= 0 || m.Aggregate.ProcHz <= 0 {
		t.Errorf("empty aggregate load: %+v", m.Aggregate)
	}
	if m.FinalClusters != 30 {
		t.Errorf("clusters = %d, want 30 (static topology)", m.FinalClusters)
	}
	// Expected query count: 300 users * 9.26e-3 * 300s ≈ 833.
	want := float64(inst.NumPeers) * 9.26e-3 * 300
	if relDiff(float64(m.QueriesIssued), want) > 0.15 {
		t.Errorf("queries issued = %d, want ~%.0f", m.QueriesIssued, want)
	}
}

// TestSimBandwidthConservation: every byte sent is received exactly once
// (messages in flight at the horizon make the totals differ by at most the
// tiny in-flight fraction).
func TestSimBandwidthConservation(t *testing.T) {
	cfg := network.DefaultConfig()
	cfg.GraphSize = 400
	inst := generate(t, cfg, nil, 4)
	m, err := Run(inst, Options{Duration: 400, Seed: 2, Churn: true})
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(m.Aggregate.InBps, m.Aggregate.OutBps) > 0.01 {
		t.Errorf("aggregate in %v vs out %v", m.Aggregate.InBps, m.Aggregate.OutBps)
	}
}

// TestSimMatchesAnalysis is the central cross-validation: the observed loads
// of the discrete-event simulator must agree with the mean-value analysis on
// the same instance within stochastic tolerance.
func TestSimMatchesAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("long cross-validation run")
	}
	prof := lowVarProfile()
	for _, tc := range []struct {
		name string
		cfg  network.Config
	}{
		{"power-law", network.Config{GraphType: network.PowerLaw, GraphSize: 600,
			ClusterSize: 10, AvgOutdegree: 3.1, TTL: 7}},
		{"strong", network.Config{GraphType: network.Strong, GraphSize: 400,
			ClusterSize: 20, TTL: 1}},
		{"redundant", network.Config{GraphType: network.PowerLaw, GraphSize: 400,
			ClusterSize: 10, AvgOutdegree: 3.1, TTL: 5, Redundancy: true}},
		{"k3-redundant", network.Config{GraphType: network.PowerLaw, GraphSize: 400,
			ClusterSize: 10, KRedundancy: 3, AvgOutdegree: 3.1, TTL: 5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inst := generate(t, tc.cfg, prof, 5)
			expected := analysisEvaluate(inst)
			m, err := Run(inst, Options{Duration: 3000, Seed: 6, Churn: true})
			if err != nil {
				t.Fatal(err)
			}
			check := func(name string, got, want float64, tol float64) {
				if want == 0 && got == 0 {
					return
				}
				if relDiff(got, want) > tol {
					t.Errorf("%s: sim %.4g vs analysis %.4g (%.1f%% off)",
						name, got, want, 100*relDiff(got, want))
				}
			}
			check("aggregate in-bw", m.Aggregate.InBps, expected.agg.InBps, 0.10)
			check("aggregate out-bw", m.Aggregate.OutBps, expected.agg.OutBps, 0.10)
			check("aggregate proc", m.Aggregate.ProcHz, expected.agg.ProcHz, 0.10)
			check("mean sp in-bw", m.MeanSuperPeer.InBps, expected.sp.InBps, 0.10)
			check("mean sp out-bw", m.MeanSuperPeer.OutBps, expected.sp.OutBps, 0.10)
			check("mean sp proc", m.MeanSuperPeer.ProcHz, expected.sp.ProcHz, 0.10)
			check("mean client in-bw", m.MeanClient.InBps, expected.client.InBps, 0.12)
			check("results/query", m.ResultsPerQuery, expected.results, 0.10)
			if expected.epl > 1.05 {
				check("EPL", m.EPL, expected.epl, 0.15)
			}
		})
	}
}

func TestSimWithoutChurnHasNoJoinTraffic(t *testing.T) {
	prof := lowVarProfile()
	cfg := network.Config{GraphType: network.PowerLaw, GraphSize: 300,
		ClusterSize: 10, AvgOutdegree: 3.1, TTL: 5}
	inst := generate(t, cfg, prof, 7)
	with, err := Run(inst, Options{Duration: 500, Seed: 8, Churn: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(generate(t, cfg, prof, 7), Options{Duration: 500, Seed: 8, Churn: false})
	if err != nil {
		t.Fatal(err)
	}
	// Join metadata dominates client outgoing bandwidth, so disabling churn
	// must cut it drastically.
	if without.MeanClient.OutBps >= with.MeanClient.OutBps*0.5 {
		t.Errorf("churnless client out-bw %v not far below churned %v",
			without.MeanClient.OutBps, with.MeanClient.OutBps)
	}
}

func TestSimTTLZero(t *testing.T) {
	cfg := network.Config{GraphType: network.PowerLaw, GraphSize: 200,
		ClusterSize: 10, AvgOutdegree: 3.1, TTL: 0}
	inst := generate(t, cfg, nil, 9)
	m, err := Run(inst, Options{Duration: 300, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.EPL != 0 {
		t.Errorf("EPL = %v with TTL 0, want 0 (no overlay responses)", m.EPL)
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var s scheduler
	var got []int
	s.schedule(3, func() { got = append(got, 3) })
	s.schedule(1, func() { got = append(got, 1) })
	s.schedule(2, func() { got = append(got, 2) })
	s.schedule(1, func() { got = append(got, 11) }) // same time: FIFO by seq
	s.runUntil(10)
	want := []int{1, 11, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("executed %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestEventQueueHorizon(t *testing.T) {
	var s scheduler
	ran := false
	s.schedule(5, func() { ran = true })
	if n := s.runUntil(4); n != 0 || ran {
		t.Error("event beyond horizon executed")
	}
	if s.now != 4 {
		t.Errorf("clock = %v, want 4", s.now)
	}
	if n := s.runUntil(6); n != 1 || !ran {
		t.Error("event within horizon skipped")
	}
}

func TestIndexSizeAndConns(t *testing.T) {
	cfg := network.Config{GraphType: network.PowerLaw, GraphSize: 200,
		ClusterSize: 10, AvgOutdegree: 3.1, TTL: 3, Redundancy: true}
	inst := generate(t, cfg, nil, 11)
	s, err := New(inst, Options{Duration: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range s.clusters {
		if got, want := c.indexSize(), inst.Clusters[v].IndexFiles; got != want {
			t.Fatalf("cluster %d index size %d, want %d", v, got, want)
		}
		if got, want := c.partnerConns(), inst.SuperPeerConns(v); got != want {
			t.Fatalf("cluster %d partner conns %d, want %d", v, got, want)
		}
		if got, want := c.clientConns(), inst.ClientConns(); got != want {
			t.Fatalf("cluster %d client conns %d, want %d", v, got, want)
		}
	}
}
