package sim

import (
	"fmt"

	"spnet/internal/gnutella"
	"spnet/internal/metrics"
	"spnet/internal/stats"
	"spnet/internal/trust"
)

// adversarySeedSalt decorrelates the adversary RNG root from the simulation
// seed, exactly as routingSeedSalt does for strategy randomness: every
// misbehavior draw, malicious assignment, and noisy reliability prior comes
// from NewRNG(Seed ^ salt), so a run with Options.Adversary == nil draws
// nothing from this stream and stays bit-identical to the golden values.
const adversarySeedSalt = 0x616476657273726e // "adversrn"

// advForgedResults is the fabricated result count a forging relay claims.
const advForgedResults = 3

// advObserveWindow is how long (virtual seconds) a trusting client waits
// after submitting a query before scoring its access partner on whether any
// genuine result arrived — comfortably past the worst-case response RTT at
// default latency and TTL.
const advObserveWindow = 2.0

// AdversaryOptions plant misbehaving super-peer partners in the simulated
// overlay — the iris spread exemplar's reliability model brought to the
// super-peer setting. A malicious partner freeloads (silently drops queries
// it should serve and forward), forges QueryHits to attract traffic, and
// Busy-lies to its own clients despite having capacity. Trust turns on the
// reputation response: clients pick access partners and super-peers pick
// neighbor partners by beta-posterior reliability scores (internal/trust),
// seeded with noisy initial views, and forged responses are audited and
// dropped before they can credit the learned routing strategy.
//
// All adversary randomness draws from a stream independent of the simulation
// stream, so honest runs (Adversary == nil, and equally the zero value) are
// bit-identical to runs without this subsystem. Incompatible with Adaptive
// and Failures, which re-home partners across clusters and would invalidate
// the stable partner identities reputation is keyed by.
type AdversaryOptions struct {
	// Fraction of super-peer partner nodes that misbehave, in [0, 1].
	// Assignment is a seeded shuffle over all partners.
	Fraction float64
	// Malicious, when non-nil, overrides Fraction: it reports whether the
	// partner at the given cluster id and partner slot misbehaves. Tests
	// and experiments use it to plant adversaries deterministically.
	Malicious func(cluster, slot int) bool
	// Drop is the probability a malicious partner silently discards a query
	// — at its own cluster when a client submits one, or at a relay hop.
	Drop float64
	// Forge is the probability a malicious relay fabricates a QueryHit
	// (advForgedResults claimed results) for a query it relays.
	Forge float64
	// BusyLie is the probability a malicious partner refuses its own
	// client's query with a Busy despite having capacity.
	BusyLie float64
	// Trust enables reputation-weighted partner selection and forged-hit
	// auditing (the defense being measured; off = trust-oblivious baseline).
	Trust bool
	// PriorNoise is the stddev of the rel_book-style noisy initial
	// reliability views (default 0.25; negative = exact views). Views
	// reflect only observable misbehavior (dropping, Busy-lying) — forging
	// is covert until the audit catches it.
	PriorNoise float64
	// PriorWeight is the pseudo-count weight of the initial views
	// (default 4).
	PriorWeight float64
	// NeutralPriors starts every reputation book at the uninformative 0.5
	// score instead of noisy initial views, isolating what online
	// observation alone recovers.
	NeutralPriors bool
}

// advQueryRecord tracks one source query's outcome for the adversarial
// metrics: genuine results exclude fabricated ones, so lost-fraction and
// spread percentiles measure real recall even when forged hits are accepted.
type advQueryRecord struct {
	client  bool // submitted by a client (vs a super-peer's own query)
	genuine int
	forged  int
}

// advState is the simulator's adversary bookkeeping, allocated only when
// Options.Adversary is non-nil.
type advState struct {
	opts *AdversaryOptions
	rng  *stats.RNG

	records  []*advQueryRecord
	recordBy map[uint64]*advQueryRecord

	busyLies       int
	clientDrops    int
	relayDrops     int
	forged         int
	forgedAccepted int
	forgedDetected int
}

// adversaryMode reports whether misbehaving peers are planted.
func (s *Simulator) adversaryMode() bool { return s.adv != nil }

// initAdversary assigns malicious partners and, when Trust is on, seeds
// every client's and cluster's reputation book with noisy priors. Partner
// enumeration order (cluster id ascending, partner slot ascending) fixes the
// advID namespace the overlay books are keyed by.
func (s *Simulator) initAdversary() error {
	a := s.opts.Adversary
	if s.opts.Adaptive != nil {
		return fmt.Errorf("sim: adversary mode is incompatible with adaptive mode")
	}
	if s.opts.Failures != nil {
		return fmt.Errorf("sim: adversary mode is incompatible with failure injection")
	}
	for _, v := range []struct {
		name string
		v    float64
	}{{"Fraction", a.Fraction}, {"Drop", a.Drop}, {"Forge", a.Forge}, {"BusyLie", a.BusyLie}} {
		if v.v < 0 || v.v > 1 {
			return fmt.Errorf("sim: Adversary.%s = %v, want in [0, 1]", v.name, v.v)
		}
	}
	noise := a.PriorNoise
	if noise == 0 {
		noise = 0.25
	} else if noise < 0 {
		noise = 0
	}
	weight := a.PriorWeight
	if weight <= 0 {
		weight = 4
	}

	s.adv = &advState{
		opts:     a,
		rng:      stats.NewRNG(s.opts.Seed ^ adversarySeedSalt),
		recordBy: make(map[uint64]*advQueryRecord),
	}
	var partners []*partnerNode
	for _, c := range s.clusters {
		for slot, p := range c.partners {
			p.advID = len(partners)
			partners = append(partners, p)
			if a.Malicious != nil {
				p.malicious = a.Malicious(c.id, slot)
			}
		}
	}
	if a.Malicious == nil {
		malicious := trust.Assign(s.adv.rng, len(partners), a.Fraction)
		for i, p := range partners {
			p.malicious = malicious[i]
		}
	}
	if !a.Trust {
		return nil
	}
	rel := func(p *partnerNode) float64 {
		if !p.malicious {
			return 1
		}
		return (1 - a.Drop) * (1 - a.BusyLie)
	}
	for _, c := range s.clusters {
		c.trustBook = trust.NewBook()
		if !a.NeutralPriors {
			c.forEachNeighbor(func(nb *clusterNode) {
				for _, p := range nb.partners {
					c.trustBook.SetPrior(p.advID, trust.NoisyPrior(s.adv.rng, rel(p), noise), weight)
				}
			})
		}
		for _, cl := range c.clients {
			cl.trustBook = trust.NewBook()
			if !a.NeutralPriors {
				for i, p := range c.partners {
					cl.trustBook.SetPrior(i, trust.NoisyPrior(s.adv.rng, rel(p), noise), weight)
				}
			}
		}
	}
	return nil
}

// advPickPartner selects the access partner for a client query: the
// highest-scoring partner slot under trust, round-robin otherwise. It
// returns the partner and its slot index.
func (s *Simulator) advPickPartner(c *clientNode) (*partnerNode, int) {
	k := len(c.cluster.partners)
	if s.adversaryMode() && s.adv.opts.Trust && c.trustBook != nil && k > 1 {
		best, bestScore := 0, -1.0
		for i := 0; i < k; i++ {
			if sc := c.trustBook.Score(i); sc > bestScore {
				best, bestScore = i, sc
			}
		}
		return c.cluster.partners[best], best
	}
	i := c.rr % k
	c.rr++
	return c.cluster.partners[i], i
}

// advPickNeighborPartner selects which partner of neighbor cluster nb a
// query copy from cluster `from` targets: the best-reputed partner under
// trust, round-robin otherwise.
func (s *Simulator) advPickNeighborPartner(from, nb *clusterNode) *partnerNode {
	if s.adversaryMode() && s.adv.opts.Trust && from != nil && from.trustBook != nil && len(nb.partners) > 1 {
		best, bestScore := nb.partners[0], -1.0
		for _, p := range nb.partners {
			if sc := from.trustBook.Score(p.advID); sc > bestScore {
				best, bestScore = p, sc
			}
		}
		return best
	}
	target := nb.partners[nb.rrOut%len(nb.partners)]
	nb.rrOut++
	return target
}

// advNewRecord opens an outcome record for a source query. id < 0 means the
// query never entered the network (dropped or refused at the access
// partner) and gets no response routing entry.
func (s *Simulator) advNewRecord(id int64, client bool) *advQueryRecord {
	if !s.adversaryMode() {
		return nil
	}
	rec := &advQueryRecord{client: client}
	s.adv.records = append(s.adv.records, rec)
	if id >= 0 {
		s.adv.recordBy[uint64(id)] = rec
	}
	return rec
}

// advRecord returns the outcome record for query id, or nil.
func (s *Simulator) advRecord(id uint64) *advQueryRecord {
	if !s.adversaryMode() {
		return nil
	}
	return s.adv.recordBy[id]
}

// advObserveClient schedules the client's reputation observation of the
// access partner it used: good iff any genuine result arrived within the
// observation window. rec may be a refused/dropped query's record (genuine
// stays 0, an unambiguous bad observation).
func (s *Simulator) advObserveClient(c *clientNode, slot int, rec *advQueryRecord) {
	if rec == nil || !s.adv.opts.Trust || c.trustBook == nil {
		return
	}
	s.sched.schedule(advObserveWindow, func() {
		if c.alive() {
			c.trustBook.Observe(slot, rec.genuine > 0)
		}
	})
}

// advBusyLie handles a malicious access partner refusing a client's query:
// a Busy frame goes back, the client scores the refusal immediately, and
// the query is lost.
func (s *Simulator) advBusyLie(p *partnerNode, c *clientNode, slot int) {
	s.adv.busyLies++
	b := float64(gnutella.PingSize()) // Busy frames are ping-sized
	s.chargePartnerToClient(p, c, metrics.ClassBusy, b, s.sendQProc, s.recvQProc)
	if s.adv.opts.Trust && c.trustBook != nil {
		c.trustBook.Observe(slot, false)
	}
}

// advMeasure folds the adversary counters and per-query outcome statistics
// into the run's Measured.
func (s *Simulator) advMeasure(m *Measured) {
	if !s.adversaryMode() {
		return
	}
	m.QueriesRefused = s.adv.busyLies
	m.QueriesDroppedMalicious = s.adv.clientDrops
	m.RelayDropsMalicious = s.adv.relayDrops
	m.ForgedResponses = s.adv.forged
	m.ForgedAccepted = s.adv.forgedAccepted
	m.ForgedDetected = s.adv.forgedDetected
	var genuine []float64
	total := 0.0
	for _, r := range s.adv.records {
		if !r.client {
			continue
		}
		genuine = append(genuine, float64(r.genuine))
		total += float64(r.genuine)
		if r.genuine == 0 {
			m.ClientQueriesUnanswered++
		}
	}
	m.ClientQueriesTracked = len(genuine)
	if len(genuine) > 0 {
		m.GenuineResultsPerQuery = total / float64(len(genuine))
		m.SpreadP50 = stats.Percentile(genuine, 50)
		m.SpreadP90 = stats.Percentile(genuine, 90)
		m.SpreadP99 = stats.Percentile(genuine, 99)
	}
}
