package sim

import (
	"spnet/internal/analysis"
	"spnet/internal/network"
)

// expectedLoads bundles the analysis engine's predictions for cross-checks.
type expectedLoads struct {
	agg     analysis.Load
	sp      analysis.Load
	client  analysis.Load
	results float64
	epl     float64
}

func analysisEvaluate(inst *network.Instance) expectedLoads {
	res := analysis.Evaluate(inst)
	return expectedLoads{
		agg:     res.AggregateLoad(),
		sp:      res.MeanSuperPeerLoad(),
		client:  res.MeanClientLoad(),
		results: res.ResultsPerQuery,
		epl:     res.EPL,
	}
}
