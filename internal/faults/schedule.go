package faults

import (
	"sort"

	"spnet/internal/stats"
)

// PartnerFailure schedules the crash of one super-peer partner at a time
// offset from the start of a run, in seconds. The same schedule drives the
// discrete-event simulator (virtual seconds) and the live network harness
// (wall-clock seconds, usually scaled), so a reliability measurement in one
// layer can be replayed bit-for-bit in the other.
type PartnerFailure struct {
	// At is the failure time in seconds from the start of the run.
	At float64
	// Cluster is the cluster (overlay node) index.
	Cluster int
	// Partner is the partner index within the cluster's virtual super-peer.
	Partner int
}

// Schedule is a failure history: partner crashes ordered by time.
type Schedule []PartnerFailure

// Sorted returns a copy ordered by time, breaking ties by cluster then
// partner so replay order is total.
func (s Schedule) Sorted() Schedule {
	out := make(Schedule, len(s))
	copy(out, s)
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Cluster != out[j].Cluster {
			return out[i].Cluster < out[j].Cluster
		}
		return out[i].Partner < out[j].Partner
	})
	return out
}

// Truncate returns the prefix of the (sorted) schedule that fires before
// duration seconds.
func (s Schedule) Truncate(duration float64) Schedule {
	out := s.Sorted()
	for i, ev := range out {
		if ev.At >= duration {
			return out[:i]
		}
	}
	return out
}

// ExponentialSchedule draws each partner's failure process — successive
// exponential inter-failure gaps with the given MTBF — out to duration
// seconds, the same process internal/sim's stochastic failure injection
// uses. The result is deterministic in (seed, clusters, partners, mtbf,
// duration): each partner's gap stream comes from its own split of the seed.
func ExponentialSchedule(seed uint64, clusters, partners int, mtbf, duration float64) Schedule {
	var out Schedule
	if mtbf <= 0 || duration <= 0 {
		return out
	}
	root := stats.NewRNG(seed)
	for c := 0; c < clusters; c++ {
		for p := 0; p < partners; p++ {
			rng := root.Split(uint64(c*partners + p))
			t := rng.ExpFloat64() * mtbf
			for t < duration {
				out = append(out, PartnerFailure{At: t, Cluster: c, Partner: p})
				t += rng.ExpFloat64() * mtbf
			}
		}
	}
	return out.Sorted()
}
