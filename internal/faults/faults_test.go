package faults

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair wraps one end of a net.Pipe in a fault conn.
func pipePair(f *Controller, node string) (*Conn, net.Conn) {
	a, b := net.Pipe()
	return f.Wrap(node, "", a), b
}

// drain reads everything from c into a buffer until EOF or error.
func drain(c net.Conn, into *bytes.Buffer, done chan<- struct{}) {
	io.Copy(into, c)
	close(done)
}

func TestDropIsDeterministic(t *testing.T) {
	pattern := func(seed uint64) []bool {
		f := NewController(seed)
		f.SetRule("n", Rule{DropProb: 0.5})
		wc, rc := pipePair(f, "n")
		defer wc.Close()
		var buf bytes.Buffer
		done := make(chan struct{})
		go drain(rc, &buf, done)
		var got []bool
		for i := 0; i < 64; i++ {
			n, err := wc.Write([]byte{byte(i)})
			if err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
			if n != 1 {
				t.Fatalf("write %d: n = %d", i, n)
			}
			// A dropped write never reaches the reader; detect via count.
			got = append(got, f.Counts()[Drop] > countTrue(got))
		}
		wc.Close()
		<-done
		return got
	}
	a, b := pattern(7), pattern(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("drop pattern diverges at write %d with identical seeds", i)
		}
	}
	if countTrue(a) == 0 || countTrue(a) == len(a) {
		t.Fatalf("drop pattern degenerate: %d/%d dropped", countTrue(a), len(a))
	}
	if c := pattern(8); equalBools(a, c) {
		t.Fatal("different seeds produced identical drop patterns")
	}
}

func countTrue(b []bool) int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}

func equalBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDelayStallsWrites(t *testing.T) {
	f := NewController(1)
	f.SetRule("n", Rule{DelayProb: 1, DelayFor: 50 * time.Millisecond})
	wc, rc := pipePair(f, "n")
	defer wc.Close()
	var buf bytes.Buffer
	done := make(chan struct{})
	go drain(rc, &buf, done)
	start := time.Now()
	if _, err := wc.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Errorf("delayed write completed in %v, want >= ~50ms", d)
	}
	wc.Close()
	<-done
	if buf.String() != "hello" {
		t.Errorf("payload = %q, want %q (delay must not corrupt)", buf.String(), "hello")
	}
	if f.Counts()[Delay] != 1 {
		t.Errorf("delay count = %d, want 1", f.Counts()[Delay])
	}
}

func TestTruncateCorruptsAndKills(t *testing.T) {
	f := NewController(1)
	f.SetRule("n", Rule{TruncateProb: 1})
	wc, rc := pipePair(f, "n")
	var buf bytes.Buffer
	done := make(chan struct{})
	go drain(rc, &buf, done)
	n, err := wc.Write([]byte("0123456789"))
	if err == nil {
		t.Fatal("truncated write reported success")
	}
	if n != 5 {
		t.Errorf("truncated write n = %d, want 5", n)
	}
	<-done
	if buf.String() != "01234" {
		t.Errorf("reader saw %q, want the 5-byte prefix", buf.String())
	}
	// The connection is dead now.
	if _, err := wc.Write([]byte("x")); err == nil {
		t.Error("write after truncate-kill succeeded")
	}
}

func TestResetKillsConnection(t *testing.T) {
	f := NewController(1)
	f.SetRule("n", Rule{ResetProb: 1})
	wc, rc := pipePair(f, "n")
	defer rc.Close()
	if _, err := wc.Write([]byte("x")); err == nil {
		t.Fatal("reset write reported success")
	}
	if f.Counts()[Reset] == 0 {
		t.Error("reset not counted")
	}
}

func TestIsolateBlackholesNode(t *testing.T) {
	f := NewController(1)
	wc, rc := pipePair(f, "n")
	defer wc.Close()
	defer rc.Close()

	// Sanity: traffic flows before the partition.
	go rc.Write([]byte("a"))
	one := make([]byte, 1)
	if _, err := wc.Read(one); err != nil {
		t.Fatalf("pre-partition read: %v", err)
	}

	f.Isolate("n")
	// Writes are silently dropped.
	if n, err := wc.Write([]byte("lost")); err != nil || n != 4 {
		t.Fatalf("partitioned write: n=%d err=%v, want silent success", n, err)
	}
	// Reads stall and honor the deadline with a timeout error.
	wc.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	_, err := wc.Read(one)
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("partitioned read err = %v, want net.Error timeout", err)
	}

	// Healing restores the link.
	f.Restore("n")
	wc.SetReadDeadline(time.Time{})
	go rc.Write([]byte("b"))
	if _, err := wc.Read(one); err != nil {
		t.Fatalf("post-heal read: %v", err)
	}
	if one[0] != 'b' {
		t.Errorf("post-heal read byte %q, want 'b'", one[0])
	}
	if f.Counts()[Partition] == 0 {
		t.Error("partition drops not counted")
	}
}

func TestPairwisePartition(t *testing.T) {
	f := NewController(1)
	a, b := net.Pipe()
	defer b.Close()
	wc := f.Wrap("x", "y", a)
	defer wc.Close()
	f.Partition("x", "y")
	if n, err := wc.Write([]byte("zz")); err != nil || n != 2 {
		t.Fatalf("cut-pair write: n=%d err=%v, want silent drop", n, err)
	}
	f.Heal("x", "y")
	done := make(chan struct{})
	var buf bytes.Buffer
	go drain(b, &buf, done)
	if _, err := wc.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	wc.Close()
	<-done
	if buf.String() != "ok" {
		t.Errorf("post-heal payload %q, want %q", buf.String(), "ok")
	}
}

func TestResetNodeClosesAllConns(t *testing.T) {
	f := NewController(1)
	wc1, rc1 := pipePair(f, "n")
	wc2, rc2 := pipePair(f, "n")
	defer rc1.Close()
	defer rc2.Close()
	f.ResetNode("n")
	if _, err := wc1.Write([]byte("x")); err == nil {
		t.Error("conn 1 alive after ResetNode")
	}
	if _, err := wc2.Write([]byte("x")); err == nil {
		t.Error("conn 2 alive after ResetNode")
	}
}

func TestExponentialScheduleDeterministic(t *testing.T) {
	a := ExponentialSchedule(42, 5, 2, 500, 3000)
	b := ExponentialSchedule(42, 5, 2, 500, 3000)
	if len(a) == 0 {
		t.Fatal("no failures scheduled over 6 partner-lifetimes")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("schedule not sorted at %d", i)
		}
	}
	for _, ev := range a {
		if ev.At < 0 || ev.At >= 3000 {
			t.Errorf("event time %v outside [0, 3000)", ev.At)
		}
		if ev.Cluster < 0 || ev.Cluster >= 5 || ev.Partner < 0 || ev.Partner >= 2 {
			t.Errorf("event target out of range: %+v", ev)
		}
	}
	if c := ExponentialSchedule(43, 5, 2, 500, 3000); len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical schedules")
		}
	}
}

func TestScheduleTruncate(t *testing.T) {
	s := Schedule{{At: 5, Cluster: 1}, {At: 1, Cluster: 0}, {At: 9, Cluster: 2}}
	got := s.Truncate(6)
	if len(got) != 2 || got[0].At != 1 || got[1].At != 5 {
		t.Errorf("Truncate(6) = %+v, want the sorted events before t=6", got)
	}
}
