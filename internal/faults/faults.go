// Package faults is a deterministic, seed-driven fault injector for the live
// super-peer stack. A Controller hands out net.Conn wrappers that can drop,
// delay, truncate or reset traffic according to per-node rules, and can
// partition whole nodes (blackholing their links) — the failure vocabulary
// the paper's Section 3.2 reliability argument is about, made concrete so
// tests and the live network harness can kill a super-peer mid-search and
// watch k-redundant failover happen.
//
// All probabilistic decisions flow through one splittable PRNG seeded at
// construction, so a fixed seed and a fixed sequence of operations yield the
// same injected faults on every run. The same package also defines the
// failure-schedule types shared between the discrete-event simulator
// (internal/sim, virtual time) and the live harness (internal/network, wall
// time), so the two layers can replay identical failure histories.
package faults

import (
	"fmt"
	"net"
	"sync"
	"time"

	"spnet/internal/stats"
)

// Kind classifies one injected fault, for accounting.
type Kind int

// Fault kinds.
const (
	// Drop silently discards a message write.
	Drop Kind = iota
	// Delay stalls a write before letting it through.
	Delay
	// Truncate writes a prefix of the message and then kills the
	// connection, corrupting the stream mid-message.
	Truncate
	// Reset kills the connection outright, as a remote RST would.
	Reset
	// Partition discards traffic because an endpoint is partitioned.
	Partition
	// Corrupt flips one byte of a message write, letting the damaged frame
	// through to exercise the receiver's decoder hardening.
	Corrupt
	numKinds
)

func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Truncate:
		return "truncate"
	case Reset:
		return "reset"
	case Partition:
		return "partition"
	case Corrupt:
		return "corrupt"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Rule is a per-node probabilistic fault policy, evaluated independently on
// every message write through the node's wrapped connections. Probabilities
// are checked in order drop, delay, truncate, reset; at most one fault fires
// per write.
type Rule struct {
	// DropProb is the probability a write is silently discarded.
	DropProb float64
	// DelayProb is the probability a write is stalled by DelayFor.
	DelayProb float64
	// DelayFor is how long a delayed write stalls.
	DelayFor time.Duration
	// TruncateProb is the probability a write is cut short mid-message and
	// the connection killed.
	TruncateProb float64
	// CorruptProb is the probability one byte of the write is flipped before
	// delivery, leaving the connection up.
	CorruptProb float64
	// ResetProb is the probability the connection is killed before the
	// write.
	ResetProb float64
}

// Controller owns the fault state for a set of named nodes and the
// deterministic RNG behind every probabilistic decision.
type Controller struct {
	mu       sync.Mutex
	rng      *stats.RNG
	rules    map[string]Rule
	isolated map[string]bool
	cut      map[[2]string]bool
	conns    map[string]map[*Conn]struct{}
	counts   [numKinds]int
}

// NewController returns a fault controller whose decisions derive from seed.
func NewController(seed uint64) *Controller {
	return &Controller{
		rng:      stats.NewRNG(seed),
		rules:    make(map[string]Rule),
		isolated: make(map[string]bool),
		cut:      make(map[[2]string]bool),
		conns:    make(map[string]map[*Conn]struct{}),
	}
}

// Wrap registers c as a link of node `local` (remote names the far endpoint
// when known, "" otherwise) and returns the fault-injecting wrapper.
func (f *Controller) Wrap(local, remote string, c net.Conn) *Conn {
	fc := &Conn{Conn: c, ctrl: f, local: local, remote: remote}
	f.mu.Lock()
	set := f.conns[local]
	if set == nil {
		set = make(map[*Conn]struct{})
		f.conns[local] = set
	}
	set[fc] = struct{}{}
	f.mu.Unlock()
	return fc
}

// WrapAccept returns a wrapper suitable for a node's accept path, where the
// remote identity is unknown.
func (f *Controller) WrapAccept(local string) func(net.Conn) net.Conn {
	return func(c net.Conn) net.Conn { return f.Wrap(local, "", c) }
}

// Dialer returns a dial function for node `local` whose connections are
// wrapped with the dialed address as the remote label.
func (f *Controller) Dialer(local string) func(network, addr string, timeout time.Duration) (net.Conn, error) {
	return func(network, addr string, timeout time.Duration) (net.Conn, error) {
		f.mu.Lock()
		blocked := f.isolated[local] || f.isolated[addr] || f.cut[pairKey(local, addr)]
		f.mu.Unlock()
		if blocked {
			f.count(Partition)
			return nil, &timeoutError{fmt.Sprintf("faults: %s is partitioned from %s", local, addr)}
		}
		c, err := net.DialTimeout(network, addr, timeout)
		if err != nil {
			return nil, err
		}
		return f.Wrap(local, addr, c), nil
	}
}

// SetRule installs (or replaces) node's probabilistic fault rule.
func (f *Controller) SetRule(node string, r Rule) {
	f.mu.Lock()
	f.rules[node] = r
	f.mu.Unlock()
}

// ClearRule removes node's fault rule.
func (f *Controller) ClearRule(node string) {
	f.mu.Lock()
	delete(f.rules, node)
	f.mu.Unlock()
}

// Isolate partitions a node from everything: writes on its links are
// silently dropped and reads stall, exactly as if every packet to and from
// it were lost. Dials to or from it fail.
func (f *Controller) Isolate(node string) {
	f.mu.Lock()
	f.isolated[node] = true
	f.mu.Unlock()
}

// Restore heals an isolated node.
func (f *Controller) Restore(node string) {
	f.mu.Lock()
	delete(f.isolated, node)
	f.mu.Unlock()
}

// Partition cuts traffic between two named endpoints in both directions.
// Only links whose remote endpoint is known (dialed links) are affected;
// use Isolate for accept-side blackholing.
func (f *Controller) Partition(a, b string) {
	f.mu.Lock()
	f.cut[pairKey(a, b)] = true
	f.mu.Unlock()
}

// Heal removes a pairwise partition.
func (f *Controller) Heal(a, b string) {
	f.mu.Lock()
	delete(f.cut, pairKey(a, b))
	f.mu.Unlock()
}

// HealAll removes every partition and isolation.
func (f *Controller) HealAll() {
	f.mu.Lock()
	f.isolated = make(map[string]bool)
	f.cut = make(map[[2]string]bool)
	f.mu.Unlock()
}

// ResetNode kills every registered connection of a node — the abrupt crash
// the paper's failure model assumes.
func (f *Controller) ResetNode(node string) {
	f.mu.Lock()
	var victims []*Conn
	for c := range f.conns[node] {
		victims = append(victims, c)
	}
	f.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
	f.count(Reset)
}

// Counts reports how many faults of each kind have been injected.
func (f *Controller) Counts() map[Kind]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[Kind]int, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		if f.counts[k] > 0 {
			out[k] = f.counts[k]
		}
	}
	return out
}

func (f *Controller) count(k Kind) {
	f.mu.Lock()
	f.counts[k]++
	f.mu.Unlock()
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// writeAction decides, deterministically given the call sequence, what to do
// with one write at a node. The RNG is consumed only when a rule with
// non-zero probabilities is installed, so fault-free nodes do not perturb
// the stream.
type action int

const (
	actPass action = iota
	actDrop
	actDelay
	actTruncate
	actCorrupt
	actReset
	actPartition
)

// writeFault is one write's decided fate: the action plus its parameters
// (delay length for actDelay; flip position and XOR mask for actCorrupt).
type writeFault struct {
	act   action
	delay time.Duration
	pos   int
	mask  byte
}

func (f *Controller) writeAction(local, remote string, n int) writeFault {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.isolated[local] || (remote != "" && (f.isolated[remote] || f.cut[pairKey(local, remote)])) {
		f.counts[Partition]++
		return writeFault{act: actPartition}
	}
	r, ok := f.rules[local]
	if !ok {
		return writeFault{act: actPass}
	}
	if r.DropProb > 0 && f.rng.Float64() < r.DropProb {
		f.counts[Drop]++
		return writeFault{act: actDrop}
	}
	if r.DelayProb > 0 && f.rng.Float64() < r.DelayProb {
		f.counts[Delay]++
		return writeFault{act: actDelay, delay: r.DelayFor}
	}
	if r.TruncateProb > 0 && f.rng.Float64() < r.TruncateProb {
		f.counts[Truncate]++
		return writeFault{act: actTruncate}
	}
	if r.CorruptProb > 0 && n > 0 && f.rng.Float64() < r.CorruptProb {
		f.counts[Corrupt]++
		return writeFault{
			act:  actCorrupt,
			pos:  int(f.rng.Uint64() % uint64(n)),
			mask: byte(1 + f.rng.Uint64()%255), // non-zero: always a real flip
		}
	}
	if r.ResetProb > 0 && f.rng.Float64() < r.ResetProb {
		f.counts[Reset]++
		return writeFault{act: actReset}
	}
	return writeFault{act: actPass}
}

func (f *Controller) blackholed(node string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.isolated[node]
}

func (f *Controller) unregister(node string, c *Conn) {
	f.mu.Lock()
	delete(f.conns[node], c)
	f.mu.Unlock()
}

// Conn is a fault-injecting net.Conn wrapper. Reads stall while the local
// node is partitioned (honoring read deadlines); writes consult the
// controller and may be dropped, delayed, truncated or turned into a
// connection reset.
type Conn struct {
	net.Conn
	ctrl   *Controller
	local  string
	remote string

	dmu          sync.Mutex
	readDeadline time.Time
	closed       bool
}

// errReset reports a connection killed by fault injection.
var errReset = fmt.Errorf("faults: connection reset by injector")

// timeoutError is a net.Error with Timeout() == true, returned when a read
// deadline expires while the node is partitioned.
type timeoutError struct{ msg string }

func (e *timeoutError) Error() string   { return e.msg }
func (e *timeoutError) Timeout() bool   { return true }
func (e *timeoutError) Temporary() bool { return true }

// Write applies the node's fault policy to one message write.
func (c *Conn) Write(p []byte) (int, error) {
	w := c.ctrl.writeAction(c.local, c.remote, len(p))
	switch w.act {
	case actDrop, actPartition:
		// The caller sees success; the bytes vanish.
		return len(p), nil
	case actDelay:
		time.Sleep(w.delay)
	case actTruncate:
		n := len(p) / 2
		if n > 0 {
			c.Conn.Write(p[:n])
		}
		c.Close()
		return n, errReset
	case actCorrupt:
		damaged := make([]byte, len(p))
		copy(damaged, p)
		damaged[w.pos] ^= w.mask
		return c.Conn.Write(damaged)
	case actReset:
		c.Close()
		return 0, errReset
	}
	return c.Conn.Write(p)
}

// Read delivers data unless the local node is partitioned, in which case it
// stalls — like packets lost in the network — until the partition heals, the
// read deadline expires, or the connection is closed.
func (c *Conn) Read(p []byte) (int, error) {
	for c.ctrl.blackholed(c.local) {
		c.dmu.Lock()
		dl, closed := c.readDeadline, c.closed
		c.dmu.Unlock()
		if closed {
			return 0, net.ErrClosed
		}
		if !dl.IsZero() && time.Now().After(dl) {
			return 0, &timeoutError{"faults: read timeout while partitioned"}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return c.Conn.Read(p)
}

// SetReadDeadline tracks the deadline so partitioned reads can honor it.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.dmu.Lock()
	c.readDeadline = t
	c.dmu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

// SetDeadline tracks the read half like SetReadDeadline.
func (c *Conn) SetDeadline(t time.Time) error {
	c.dmu.Lock()
	c.readDeadline = t
	c.dmu.Unlock()
	return c.Conn.SetDeadline(t)
}

// Close unregisters the wrapper and closes the underlying connection.
func (c *Conn) Close() error {
	c.dmu.Lock()
	already := c.closed
	c.closed = true
	c.dmu.Unlock()
	if !already {
		c.ctrl.unregister(c.local, c)
	}
	return c.Conn.Close()
}
