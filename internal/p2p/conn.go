package p2p

import (
	"bufio"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spnet/internal/cost"
	"spnet/internal/gnutella"
	"spnet/internal/index"
	"spnet/internal/metrics"
)

// conn is one TCP link — to a client or to a neighbor super-peer. A mutex
// serializes writes; each conn has one reader goroutine.
type conn struct {
	node     *Node
	c        net.Conn
	br       *bufio.Reader
	wmu      sync.Mutex
	isClient bool
	// isControl marks a fleet-controller link: outside the client/peer
	// capacity budgets and outside the query path entirely.
	isControl bool
	// isTransfer marks a content-download link, admitted under its own
	// capacity budget (Options.MaxTransfers) and served by runTransfer.
	isTransfer bool
	owner      int // client owner id; -1 for peers
	// peerID is the link's stable id in the routing strategy's neighbor
	// namespace; assigned under Node.mu when the peer link registers.
	peerID int
	// sentAdvert is the canonical key of the last routing summary sent on
	// this link (guarded by Node.sumMu); adverts are re-sent only on change.
	sentAdvert string
	// lastRecv is the unix-nano timestamp of the link's last inbound
	// message, read by the heartbeat loop for dead-peer detection.
	lastRecv atomic.Int64
	// inflight counts this link's queries that are queued or executing;
	// admission refuses with Busy above Options.MaxInflight.
	inflight atomic.Int32
	// bucket rate-limits client queries when Options.ClientQueryRate is set.
	bucket tokenBucket
}

// tokenBucket is a standard leaky token bucket: take refills by elapsed time
// at `rate` tokens/sec up to `burst`, then spends one token per admitted
// query.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

func (b *tokenBucket) take(now time.Time, rate, burst float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last.IsZero() {
		b.tokens = burst
	} else {
		b.tokens += now.Sub(b.last).Seconds() * rate
		if b.tokens > burst {
			b.tokens = burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

func newConn(n *Node, c net.Conn, br *bufio.Reader, isClient bool) *conn {
	cc := &conn{node: n, c: c, br: br, isClient: isClient, owner: -1}
	cc.touch()
	return cc
}

// touch records inbound traffic on the link.
func (c *conn) touch() { c.lastRecv.Store(time.Now().UnixNano()) }

// lastSeen reports when the link last delivered a message.
func (c *conn) lastSeen() time.Time { return time.Unix(0, c.lastRecv.Load()) }

// send writes one message, serialized against concurrent senders.
func (c *conn) send(m gnutella.Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.c.SetWriteDeadline(time.Now().Add(c.node.opts.WriteTimeout))
	if err := gnutella.WriteMessage(c.c, m); err != nil {
		return err
	}
	c.node.meterMessage(metrics.DirOut, m)
	return nil
}

// read returns the link's next message under the node's hard read limits: a
// frame's payload may not exceed Options.MaxPayload, and once its first byte
// has arrived the rest must arrive within Options.FrameTimeout. An idle link
// (no bytes pending) waits without a deadline — heartbeats own idle-death
// detection — but a half-sent frame can never hang the reader goroutine or
// make it allocate unbounded memory.
func (c *conn) read() (gnutella.Message, error) {
	if _, err := c.br.Peek(1); err != nil {
		return nil, err
	}
	ft := c.node.opts.FrameTimeout
	if ft > 0 {
		if err := c.c.SetReadDeadline(time.Now().Add(ft)); err != nil {
			return nil, err
		}
	}
	m, err := gnutella.ReadMessageLimit(c.br, c.node.opts.MaxPayload)
	if err != nil {
		return nil, err
	}
	if ft > 0 {
		// Clearing the deadline must succeed, or the stale deadline would
		// poison the next idle wait; retire the connection if it fails.
		if err := c.c.SetReadDeadline(time.Time{}); err != nil {
			return nil, err
		}
	}
	c.node.meterMessage(metrics.DirIn, m)
	return m, nil
}

// runClient serves a client connection: the first message must be a Join;
// afterwards the client may query, update, or re-join.
func (n *Node) runClient(c *conn) {
	defer func() {
		n.dropClient(c)
		n.summariesChanged() // the departed client's terms left the index
	}()
	for {
		msg, err := c.read()
		if err != nil {
			return
		}
		c.touch()
		switch m := msg.(type) {
		case *gnutella.Ping:
			// Clients probe their super-peer for liveness; answer in kind.
			if err := c.send(&gnutella.Pong{ID: m.ID, TTL: 1}); err != nil {
				return
			}
		case *gnutella.Join:
			n.handleClientJoin(c, m)
			n.summariesChanged()
		case *gnutella.Query:
			if c.owner < 0 {
				n.opts.Logf("p2p: query before join from %s", c.c.RemoteAddr())
				return
			}
			n.enqueueQuery(c, m, false)
		case *gnutella.Update:
			if c.owner < 0 {
				n.opts.Logf("p2p: update before join from %s", c.c.RemoteAddr())
				return
			}
			n.handleClientUpdate(c, m)
			n.summariesChanged()
		default:
			n.opts.Logf("p2p: unexpected %T from client %s", m, c.c.RemoteAddr())
			return
		}
	}
}

// handleClientJoin registers (or replaces) the client's collection: the
// super-peer "will add this metadata to its index" (Section 3.2).
func (n *Node) handleClientJoin(c *conn, j *gnutella.Join) {
	n.metrics.ProcUnits.Add(float64(cost.ProcessJoin(len(j.Files))))
	n.mu.Lock()
	defer n.mu.Unlock()
	if c.owner < 0 {
		c.owner = n.nextOwn
		n.nextOwn++
		n.clients[c.owner] = c
	} else {
		n.index.RemoveOwner(c.owner)
	}
	n.guids[c.owner] = j.ID
	for _, f := range j.Files {
		terms := titleTerms(f.Title)
		if len(terms) == 0 {
			continue
		}
		// Owner ids are non-negative by construction, so Add cannot fail.
		n.index.Add(index.DocID{Owner: c.owner, File: f.FileIndex}, terms)
	}
}

// dropClient removes a departed client's metadata ("when a client leaves,
// its super-peer will remove its metadata from the index").
func (n *Node) dropClient(c *conn) {
	c.c.Close()
	n.mu.Lock()
	defer n.mu.Unlock()
	if c.owner >= 0 {
		n.index.RemoveOwner(c.owner)
		delete(n.clients, c.owner)
		delete(n.guids, c.owner)
	}
}

// handleClientQuery services a client's query: answer from the local index,
// then flood to the overlay on the client's behalf ("the super-peer will
// then submit the query to its neighbors as if it were its own").
func (n *Node) handleClientQuery(c *conn, q *gnutella.Query) {
	if n.mis.busyLie() {
		// Adversary: refuse the client's query despite having capacity.
		n.sendBusy(c, q)
		return
	}
	if n.mis.dropQuery() {
		// Adversary: accept the query and discard it — the covert refusal a
		// client can only observe as a result window with nothing in it.
		return
	}
	n.mu.Lock()
	if _, dup := n.routes[q.ID]; dup {
		n.mu.Unlock()
		return
	}
	rt := &routeEntry{owner: c.owner, at: time.Now()}
	if n.routeLearns {
		rt.terms = titleTerms(q.Text)
	}
	n.routes[q.ID] = rt
	hit := n.searchLocked(q.ID, q.Text)
	peers := n.peerListLocked(nil)
	ttl := uint8(n.opts.TTL)
	n.mu.Unlock()

	if hit != nil {
		if err := c.send(hit); err != nil {
			n.opts.Logf("p2p: responding to client: %v", err)
		}
	}
	peers = n.selectPeers(peers, q.Text, q.ID, int(ttl), 0)
	n.flood(&gnutella.Query{ID: q.ID, TTL: ttl, MinSpeed: q.MinSpeed, Text: q.Text}, peers)
}

// handleClientUpdate applies a single-item collection change.
func (n *Node) handleClientUpdate(c *conn, u *gnutella.Update) {
	n.metrics.ProcUnits.Add(float64(cost.ProcessUpdateCost()))
	n.mu.Lock()
	defer n.mu.Unlock()
	doc := index.DocID{Owner: c.owner, File: u.File.FileIndex}
	switch u.Op {
	case gnutella.OpDelete:
		n.index.Remove(doc)
	case gnutella.OpInsert, gnutella.OpModify:
		if terms := titleTerms(u.File.Title); len(terms) > 0 {
			n.index.Add(doc, terms)
		}
	}
}

// runPeer serves an overlay link to another super-peer.
func (n *Node) runPeer(c *conn) {
	n.mu.Lock()
	c.peerID = n.nextPeerID
	n.nextPeerID++
	n.peers[c] = struct{}{}
	n.mu.Unlock()
	if n.book != nil {
		// Expose the link's reliability score. Peer ids are never reused, so
		// each link gets its own series; after disconnect the book entry is
		// dropped and the gauge reads the uninformative 0.5.
		id := c.peerID
		n.metrics.Registry().GaugeFunc(metrics.MetricPeerReputation,
			"Beta-posterior reliability score of a neighbor super-peer link.",
			func() float64 { return n.book.Score(id) },
			metrics.Label{Name: "peer", Value: strconv.Itoa(id)})
	}
	n.summariesChanged() // advertise our routing summary on the new link
	defer func() {
		c.c.Close()
		n.mu.Lock()
		delete(n.peers, c)
		n.mu.Unlock()
		n.rstate.DropNeighbor(c.peerID)
		if n.book != nil {
			n.book.Drop(c.peerID)
		}
		n.summariesChanged() // adverts shrink without this link's summary
	}()
	for {
		msg, err := c.read()
		if err != nil {
			return
		}
		c.touch()
		switch m := msg.(type) {
		case *gnutella.Ping:
			if err := c.send(&gnutella.Pong{ID: m.ID, TTL: 1}); err != nil {
				return
			}
		case *gnutella.Pong:
			// Liveness already recorded by touch.
		case *gnutella.Query:
			n.enqueueQuery(c, m, true)
		case *gnutella.QueryHit:
			n.handleQueryHit(c, m)
		case *gnutella.Busy:
			n.handleBusy(c, m)
		case *gnutella.Summary:
			if n.routeSummaries {
				n.rstate.SetSummary(c.peerID, m.Terms)
				n.summariesChanged() // our adverts to other links now differ
			}
		default:
			n.opts.Logf("p2p: unexpected %T from peer %s", m, c.c.RemoteAddr())
			return
		}
	}
}

// handlePeerQuery is the receiver side of query flooding: duplicate drop,
// local processing, response over the arrival link, and forwarding with a
// decremented TTL to every other neighbor.
func (n *Node) handlePeerQuery(c *conn, q *gnutella.Query) {
	if n.mis != nil {
		if n.mis.forgeHit() {
			if err := c.send(forgeQueryHit(q)); err != nil {
				n.opts.Logf("p2p: sending forged hit: %v", err)
			}
		}
		if n.mis.dropQuery() {
			return // freeloading: accepted, then silently discarded
		}
	}
	n.mu.Lock()
	if _, dup := n.routes[q.ID]; dup {
		n.mu.Unlock()
		return // redundant copy: received, then dropped
	}
	rt := &routeEntry{via: c, owner: -1, at: time.Now()}
	if n.routeLearns {
		rt.terms = titleTerms(q.Text)
	}
	n.routes[q.ID] = rt
	hit := n.searchLocked(q.ID, q.Text)
	var peers []*conn
	if q.TTL > 1 {
		peers = n.peerListLocked(c)
	}
	n.mu.Unlock()

	if hit != nil {
		hit.Hops = q.Hops
		if err := c.send(hit); err != nil {
			n.opts.Logf("p2p: responding to peer: %v", err)
		}
	}
	if len(peers) > 0 {
		peers = n.selectPeers(peers, q.Text, q.ID, int(q.TTL)-1, int(q.Hops)+1)
	}
	if len(peers) > 0 {
		n.flood(&gnutella.Query{
			ID: q.ID, TTL: q.TTL - 1, Hops: q.Hops + 1,
			MinSpeed: q.MinSpeed, Text: q.Text,
		}, peers)
	}
}

// handleQueryHit routes a Response along the reverse path: to the peer the
// query came from, to the local client that originated it, or to a local
// search waiter. c is the peer link the hit arrived on; when the routing
// strategy learns from hit history that link gets the credit.
//
// Hits are validated before anything else happens with them. A hit whose
// GUID matches no outstanding query is unsolicited — forged, replayed, or
// stale — and is dropped and counted, never relayed. Under Trust, a hit
// with no dialable responder behind any claimed result is dropped as forged
// before the routing strategy can credit the sending link, and the link's
// reputation is debited; a validated hit earns the link a good observation.
func (n *Node) handleQueryHit(c *conn, h *gnutella.QueryHit) {
	n.mu.Lock()
	rt, ok := n.routes[h.ID]
	var target *conn
	var local chan *gnutella.QueryHit
	var learnTerms []string
	if ok {
		if n.routeLearns && len(rt.terms) > 0 {
			learnTerms = rt.terms
		}
		switch {
		case rt.local != nil:
			local = rt.local
		case rt.owner >= 0:
			target = n.clients[rt.owner]
		default:
			target = rt.via
		}
	}
	n.mu.Unlock()
	if !ok {
		n.metrics.HitsUnsolicited.Inc()
		if n.book != nil {
			n.book.Observe(c.peerID, false)
		}
		return
	}
	if n.book != nil {
		if hitLooksForged(h) {
			n.metrics.HitsForged.Inc()
			n.book.Observe(c.peerID, false)
			return
		}
		n.book.Observe(c.peerID, true)
	}
	if learnTerms != nil {
		n.rstate.RecordHit(c.peerID, learnTerms)
	}
	if local != nil {
		select {
		case local <- h:
		default: // waiter gone or saturated; drop
		}
		return
	}
	if target == nil {
		return // route expired
	}
	fwd := *h
	fwd.Hops++
	if err := target.send(&fwd); err != nil {
		n.opts.Logf("p2p: relaying hit: %v", err)
	}
}

// handleBusy routes an overloaded peer's load-shed signal along the reverse
// path, like handleQueryHit, so the query's originator can account for
// degraded coverage. For locally originated searches the count lands on the
// route entry's busy counter. Under Trust a solicited Busy debits the
// sending link's reliability: a refusal is a refusal whether the peer is
// genuinely overloaded or Busy-lying, and that symmetry is exactly how
// persistent liars lose score while an occasionally-loaded honest peer's
// good observations dominate.
func (n *Node) handleBusy(c *conn, b *gnutella.Busy) {
	n.metrics.BusyReceived.Inc()
	n.mu.Lock()
	rt, ok := n.routes[b.ID]
	var target *conn
	if ok {
		switch {
		case rt.local != nil:
			if rt.busyN != nil {
				rt.busyN.Add(1)
			}
		case rt.owner >= 0:
			target = n.clients[rt.owner]
		default:
			target = rt.via
		}
	}
	n.mu.Unlock()
	if ok && n.book != nil {
		n.book.Observe(c.peerID, false)
	}
	if target == nil {
		return // locally counted, or route expired
	}
	fwd := *b
	fwd.Hops++
	if err := target.send(&fwd); err != nil {
		n.opts.Logf("p2p: relaying busy: %v", err)
	}
}

// flood sends a query to the given peers (computed under lock beforehand)
// and reports per-neighbor delivery status: a failed link degrades the
// search instead of failing it.
func (n *Node) flood(q *gnutella.Query, peers []*conn) []NeighborStatus {
	out := make([]NeighborStatus, 0, len(peers))
	for _, p := range peers {
		err := p.send(q)
		if err != nil {
			n.opts.Logf("p2p: flooding to %s: %v", p.c.RemoteAddr(), err)
		}
		out = append(out, NeighborStatus{Addr: p.c.RemoteAddr().String(), Err: err})
	}
	return out
}

// peerListLocked snapshots the peer set, excluding one link.
func (n *Node) peerListLocked(except *conn) []*conn {
	out := make([]*conn, 0, len(n.peers))
	for p := range n.peers {
		if p != except {
			out = append(out, p)
		}
	}
	return out
}

// searchLocked answers a keyword query over the index and builds the
// QueryHit: results plus "the address of each client whose collection
// produced a result". Returns nil when nothing matches. Callers hold n.mu.
func (n *Node) searchLocked(id gnutella.GUID, text string) *gnutella.QueryHit {
	terms := titleTerms(text)
	if len(terms) == 0 {
		n.meterProcessQuery(0)
		return nil
	}
	matches := n.index.Search(terms)
	n.meterProcessQuery(len(matches))
	if len(matches) == 0 {
		return nil
	}
	hit := &gnutella.QueryHit{ID: id, TTL: uint8(n.opts.TTL)}
	addrByOwner := make(map[int]uint16)
	for _, m := range matches {
		ref, ok := addrByOwner[m.Doc.Owner]
		if !ok {
			if len(hit.Responders) >= 255 {
				break // wire limit; deterministic truncation
			}
			ref = uint16(len(hit.Responders))
			addrByOwner[m.Doc.Owner] = ref
			rec := gnutella.ResponderRecord{ClientGUID: n.guids[m.Doc.Owner]}
			if m.Doc.Owner == storeOwner {
				// Store-served content: the node itself is the responder, at
				// its listen address — dialable, unlike client remote addrs.
				if n.ln != nil {
					rec.IP, rec.Port = splitAddr(n.ln.Addr())
				}
			} else if cl := n.clients[m.Doc.Owner]; cl != nil {
				rec.IP, rec.Port = splitAddr(cl.c.RemoteAddr())
			}
			hit.Responders = append(hit.Responders, rec)
		}
		hit.Responders[ref].ResultCount++
		hit.Results = append(hit.Results, gnutella.ResultRecord{
			FileIndex: m.Doc.File,
			AddrRef:   ref,
			Title:     strings.Join(m.Terms, " "),
		})
	}
	return hit
}

// titleTerms tokenizes a title or query string into lower-case terms.
func titleTerms(s string) []string {
	fields := strings.Fields(strings.ToLower(s))
	out := fields[:0]
	for _, f := range fields {
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

// splitAddr extracts IPv4 and port from a TCP address; zero values for
// anything else.
func splitAddr(a net.Addr) ([4]byte, uint16) {
	var ip [4]byte
	tcp, ok := a.(*net.TCPAddr)
	if !ok {
		return ip, 0
	}
	if v4 := tcp.IP.To4(); v4 != nil {
		copy(ip[:], v4)
	}
	return ip, uint16(tcp.Port)
}
