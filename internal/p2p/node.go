// Package p2p is a working super-peer node over TCP: the system the paper
// models, runnable. A Node acts "as a server to a set of clients, and as an
// equal in a network of super-peers" (Section 1): clients connect, ship
// their collection metadata (Join), and submit keyword queries; the node
// answers from an inverted index over its clients' titles and floods the
// query over its peer links with a TTL, Gnutella-style, relaying Response
// messages back along the reverse path.
//
// The wire format is internal/gnutella's — the same byte layout the paper's
// cost model prices — and the index is internal/index's inverted lists.
// Every connection is served by its own goroutine.
package p2p

import (
	"bufio"
	"crypto/rand"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spnet/internal/gnutella"
	"spnet/internal/index"
	"spnet/internal/metrics"
	"spnet/internal/routing"
	"spnet/internal/stats"
	"spnet/internal/transfer"
	"spnet/internal/trust"
)

// Protocol handshake lines.
const (
	helloClient  = "SPNET/1.0 CLIENT"
	helloPeer    = "SPNET/1.0 PEER"
	helloControl = "SPNET/1.0 CONTROL"
	helloOK      = "SPNET/1.0 OK"
	helloBusy    = "SPNET/1.0 BUSY"
)

// Options configure a Node. The zero value is usable.
type Options struct {
	// TTL stamped on queries this node originates or accepts from clients
	// (default 7, the Table 1 default).
	TTL int
	// MaxClients bounds the cluster size (default 100).
	MaxClients int
	// MaxPeers bounds the overlay outdegree (default 30).
	MaxPeers int
	// RouteTTL is how long reverse-path routing state is kept
	// (default 60s).
	RouteTTL time.Duration
	// DialTimeout bounds ConnectPeer's TCP dial (default 10s).
	DialTimeout time.Duration
	// HandshakeTimeout bounds the hello exchange on both the accept and
	// the dial path (default 10s).
	HandshakeTimeout time.Duration
	// WriteTimeout bounds each message write (default 30s).
	WriteTimeout time.Duration
	// HeartbeatInterval is how often the node pings its overlay neighbors
	// (default 5s; negative disables heartbeats).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a peer link may stay silent before the
	// node declares it dead and closes it (default 3×HeartbeatInterval).
	HeartbeatTimeout time.Duration
	// MaxInflight bounds queued-plus-executing queries per connection:
	// excess queries are answered with Busy instead of queued (default 64).
	MaxInflight int
	// QueueDepth bounds the node-wide pending-query dispatch queue; when it
	// is full, arriving queries are shed with a Busy response (default 1024).
	QueueDepth int
	// QueryWorkers is how many dispatcher goroutines drain the query queue
	// (default 4). Readers never execute queries inline, so a slow search
	// can't stall a connection's read loop.
	QueryWorkers int
	// ClientQueryRate token-buckets queries per client connection, in
	// queries per second; over-rate queries are refused with Busy
	// (default 0: unlimited).
	ClientQueryRate float64
	// ClientQueryBurst is the token bucket's capacity (default
	// max(1, ClientQueryRate)).
	ClientQueryBurst float64
	// FrameTimeout bounds how long a frame may take to finish arriving once
	// its first byte is in: a peer that stalls mid-message is disconnected
	// instead of hanging its reader goroutine forever (default 30s;
	// negative disables).
	FrameTimeout time.Duration
	// MaxPayload bounds accepted frame payloads; larger length fields are
	// rejected with gnutella.ErrPayloadTooLarge and the connection dropped
	// (default and ceiling: gnutella.MaxPayloadLen).
	MaxPayload uint32
	// DrainTimeout is how long Close lets already-queued queries finish
	// before connections are torn down (default 2s; negative disables the
	// drain).
	DrainTimeout time.Duration
	// Routing selects the query-forwarding strategy over peer links (nil:
	// flood, the paper's protocol). Content-aware strategies exchange
	// Summary messages with neighbors automatically.
	Routing routing.Strategy
	// RoutingSeed seeds the strategy's randomness (randomwalk's walker
	// picks, learned's exploration). A fixed seed gives a fixed decision
	// sequence for a fixed message order.
	RoutingSeed uint64
	// Trust enables the reputation defenses: QueryHits are validated before
	// they are relayed or credited to the routing strategy, each neighbor
	// link carries a beta-posterior reliability score (exported as
	// spnet_peer_reputation), and overlay admission is weighted by the
	// sending link's score — see TrustPeerShare and TrustFloor.
	Trust bool
	// TrustPeerShare is the fraction of QueueDepth that overlay-forwarded
	// queries may collectively occupy when Trust is on; the share usable by
	// one link scales with its reliability score. Together with the
	// client-side remainder this reserves queue slots between overlay and
	// local-client traffic (default 0.5).
	TrustPeerShare float64
	// TrustFloor is the minimum admission weight a fully distrusted link
	// keeps, so a misjudged peer can still earn its reputation back
	// (default 0.1).
	TrustFloor float64
	// Content, when set, makes this node a transfer source: the store's
	// catalog is indexed beside client collections (queries hit it and the
	// QueryHit carries this node's own listen address as the dialable
	// responder), and transfer.Hello links are served chunks from it.
	Content *transfer.Store
	// MaxTransfers bounds concurrent transfer links, a capacity budget of
	// their own so downloads can't crowd out clients or peers (default 16).
	MaxTransfers int
	// TransferRate caps the node's aggregate served content bytes/sec across
	// all transfer links, so transfers can't starve the query plane of the
	// machine either (default 0: unlimited).
	TransferRate float64
	// Misbehave, when set, makes this node an adversary for robustness
	// experiments: it freeloads, forges hits, and Busy-lies per the
	// configured probabilities. Test hook; nil in production.
	Misbehave *MisbehaveOptions
	// Wrap, when set, wraps every accepted connection — the hook
	// internal/faults uses to inject message drop, delay, truncation,
	// resets and partitions.
	Wrap func(net.Conn) net.Conn
	// Dial, when set, replaces the dialer used by ConnectPeer (same fault
	// injection hook, outbound side).
	Dial func(network, addr string, timeout time.Duration) (net.Conn, error)
	// Logf, when set, receives diagnostic output.
	Logf func(format string, args ...any)
}

func (o *Options) setDefaults() {
	if o.TTL <= 0 {
		o.TTL = 7
	}
	if o.MaxClients <= 0 {
		o.MaxClients = 100
	}
	if o.MaxPeers <= 0 {
		o.MaxPeers = 30
	}
	if o.RouteTTL <= 0 {
		o.RouteTTL = 60 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 10 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = 5 * time.Second
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 3 * o.HeartbeatInterval
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 64
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.QueryWorkers <= 0 {
		o.QueryWorkers = 4
	}
	if o.ClientQueryBurst <= 0 {
		o.ClientQueryBurst = o.ClientQueryRate
		if o.ClientQueryBurst < 1 {
			o.ClientQueryBurst = 1
		}
	}
	if o.FrameTimeout == 0 {
		o.FrameTimeout = 30 * time.Second
	}
	if o.MaxPayload == 0 || o.MaxPayload > gnutella.MaxPayloadLen {
		o.MaxPayload = gnutella.MaxPayloadLen
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = 2 * time.Second
	}
	if o.MaxTransfers <= 0 {
		o.MaxTransfers = 16
	}
	if o.TrustPeerShare <= 0 || o.TrustPeerShare > 1 {
		o.TrustPeerShare = 0.5
	}
	if o.TrustFloor <= 0 || o.TrustFloor >= 1 {
		o.TrustFloor = 0.1
	}
	if o.Wrap == nil {
		o.Wrap = func(c net.Conn) net.Conn { return c }
	}
	if o.Dial == nil {
		o.Dial = net.DialTimeout
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// routeEntry remembers where a query GUID arrived from, for duplicate
// detection and reverse-path response routing.
type routeEntry struct {
	via   *conn // nil for locally originated or client-originated queries
	owner int   // client owner id when a local client originated it, else -1
	local chan *gnutella.QueryHit
	// busyN, when set on a locally originated search, counts Busy
	// (load-shed) signals routed back for the query.
	busyN *atomic.Int32
	// terms caches the query's keywords when the routing strategy learns
	// from hit history, so responses can credit the neighbor they came via.
	terms []string
	at    time.Time
}

// Node is one super-peer.
type Node struct {
	opts Options
	ln   net.Listener

	mu      sync.Mutex
	index   *index.Index
	clients map[int]*conn // owner id -> client connection
	guids   map[int]gnutella.GUID
	peers   map[*conn]struct{}
	conns   map[*conn]struct{} // every live connection, for shutdown
	routes  map[gnutella.GUID]*routeEntry
	nextOwn int
	closed  bool

	// Routing strategy state: route never changes after NewNode; rstate
	// locks internally. nextPeerID (guarded by mu) hands each peer link a
	// stable id in rstate's namespace. sumMu serializes summary
	// recomputation so adverts can never be sent out of order.
	route          routing.Strategy
	routeLearns    bool
	routeSummaries bool
	rstate         *routing.NodeState
	nextPeerID     int
	sumMu          sync.Mutex

	// Admission counts, maintained at register/unregister time. The
	// clients/peers maps are only populated later (on Join / in runPeer), so
	// capacity must be enforced on these counters to make check-and-admit
	// atomic — otherwise concurrent handshakes slip past MaxClients/MaxPeers.
	nClients   int
	nPeers     int
	nTransfers int

	// xferLimit paces served transfer bytes (Options.TransferRate); nil when
	// the node serves no content.
	xferLimit *byteLimiter

	// Query dispatch: readers enqueue, workers execute. The queue is the
	// overload-protection buffer between accept rate and processing rate;
	// when it (or a connection's inflight cap) overflows, queries are shed
	// with counted Busy responses instead of silent drops or read-loop
	// stalls.
	queue       chan queryTask
	qwg         sync.WaitGroup
	workersOnce sync.Once

	// metrics is the node's observability surface: every byte and message is
	// attributed to the Table 2 load taxonomy, and the overload ladder's
	// outcomes are counted by reason and source class. Reported by Stats and
	// exposed over HTTP via metrics.Handler(node.Metrics().Registry()).
	metrics *metrics.NodeMetrics

	// Control-plane state (guarded by mu). nodeID and telemetryAddr identify
	// this node to a fleet controller (SetIdentity); ctlEpoch is the highest
	// directive epoch applied — the idempotency watermark every Register
	// announces and every Directive is checked against. ctlConns tracks open
	// control links so Close can send a deregistration bye.
	nodeID        string
	telemetryAddr string
	ctlEpoch      uint64
	ctlConns      map[*conn]struct{}

	// book scores each peer link's reliability from observed behavior
	// (genuine hits vs forged/unsolicited ones vs Busy refusals); nil unless
	// Options.Trust. peerQueued counts overlay queries queued or executing,
	// for the trust-aware admission share. mis is the adversary machinery,
	// nil on honest nodes.
	book       *trust.Book
	peerQueued atomic.Int32
	mis        *misbehaveState

	wg   sync.WaitGroup
	stop chan struct{}
}

// queryTask is one query waiting for a dispatch worker.
type queryTask struct {
	c        *conn
	q        *gnutella.Query
	fromPeer bool
}

// NewNode creates a node; call Listen to start serving.
func NewNode(opts Options) *Node {
	opts.setDefaults()
	n := &Node{
		opts:     opts,
		index:    index.New(),
		clients:  make(map[int]*conn),
		guids:    make(map[int]gnutella.GUID),
		peers:    make(map[*conn]struct{}),
		conns:    make(map[*conn]struct{}),
		routes:   make(map[gnutella.GUID]*routeEntry),
		ctlConns: make(map[*conn]struct{}),
		queue:    make(chan queryTask, opts.QueueDepth),
		metrics:  metrics.NewNodeMetrics(),
		mis:      newMisbehaveState(opts.Misbehave),
		stop:     make(chan struct{}),
	}
	if opts.Trust {
		n.book = trust.NewBook()
	}
	n.route = opts.Routing
	if n.route == nil {
		n.route = routing.NewFlood()
	}
	n.routeLearns = routing.Learns(n.route)
	n.routeSummaries = routing.UsesSummaries(n.route)
	n.rstate = routing.NewNodeState(stats.NewRNG(opts.RoutingSeed))
	n.metrics.InitForwarded(n.route.Name())
	if opts.Content != nil {
		n.indexStore(opts.Content)
		burst := 2 * float64(opts.Content.ChunkSize())
		n.xferLimit = &byteLimiter{rate: opts.TransferRate, burst: burst}
	}
	return n
}

// Metrics returns the node's metric set; serve its registry with
// metrics.Handler for the /metrics, /debug/vars and /debug/pprof surface.
func (n *Node) Metrics() *metrics.NodeMetrics { return n.metrics }

// startWorkers launches the query dispatch pool once, from whichever entry
// point (Listen or ConnectPeer) first makes the node reachable.
func (n *Node) startWorkers() {
	n.workersOnce.Do(func() {
		n.qwg.Add(n.opts.QueryWorkers)
		for i := 0; i < n.opts.QueryWorkers; i++ {
			go n.queryWorker()
		}
	})
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting clients and
// peers.
func (n *Node) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("p2p: listen %s: %w", addr, err)
	}
	n.ln = ln
	n.startWorkers()
	n.wg.Add(2)
	go n.acceptLoop()
	go n.pruneLoop()
	if n.opts.HeartbeatInterval > 0 {
		n.wg.Add(1)
		go n.heartbeatLoop()
	}
	return nil
}

// Addr returns the bound listen address.
func (n *Node) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// Close shuts the node down gracefully: it stops accepting work, drains
// already-queued queries for up to DrainTimeout so inflight searches get
// their responses, then tears connections down and waits for its goroutines.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]*conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()

	close(n.stop)
	if n.ln != nil {
		n.ln.Close()
	}
	if n.opts.DrainTimeout > 0 {
		drained := make(chan struct{})
		go func() {
			n.qwg.Wait()
			close(drained)
		}()
		select {
		case <-drained:
		case <-time.After(n.opts.DrainTimeout):
			n.opts.Logf("p2p: drain timeout %v elapsed with queries pending", n.opts.DrainTimeout)
		}
	}
	n.deregisterFromControllers(conns)
	for _, c := range conns {
		c.c.Close()
	}
	n.wg.Wait()
	n.qwg.Wait()
	return nil
}

// Stats reports the node's current shape and overload accounting.
type Stats struct {
	Clients      int
	Peers        int
	IndexedFiles int
	// QueriesHandled counts queries dispatched to completion.
	QueriesHandled int64
	// QueriesShed counts queries answered with Busy because the dispatch
	// queue or a connection's inflight cap was full, across both source
	// classes: QueriesShedClient + QueriesShedPeer.
	QueriesShed int64
	// QueriesShedClient counts shed queries that arrived on local client
	// legs; QueriesShedPeer counts shed queries forwarded by neighbor
	// super-peers. The split tells an operator whether overload pressure is
	// the node's own cluster or the overlay. Neither includes rate-limited
	// queries.
	QueriesShedClient int64
	QueriesShedPeer   int64
	// QueriesShedAdmission counts overlay queries refused by trust-aware
	// admission — the reputation-weighted slice of QueriesShedPeer.
	QueriesShedAdmission int64
	// RateLimited counts client queries refused with Busy by the
	// per-client token bucket (always client-sourced: peers are not
	// token-bucketed).
	RateLimited int64
	// BusyReceived counts Busy frames received from overloaded peers.
	BusyReceived int64
	// HitsUnsolicited counts QueryHits dropped because no outstanding query
	// matched their GUID; HitsForged counts hits dropped by trust validation
	// (no dialable responder behind any claimed result).
	HitsUnsolicited int64
	HitsForged      int64
}

// Stats returns a snapshot of the node's state.
func (n *Node) Stats() Stats {
	m := n.metrics
	rateLimited := m.Shed[metrics.ShedRateLimit][metrics.SourceClient].Value()
	shedClient := m.ShedTotal(metrics.SourceClient) - rateLimited
	shedPeer := m.ShedTotal(metrics.SourcePeer)
	n.mu.Lock()
	defer n.mu.Unlock()
	return Stats{
		Clients:              len(n.clients),
		Peers:                len(n.peers),
		IndexedFiles:         n.index.NumDocs(),
		QueriesHandled:       m.QueriesHandled.Value(),
		QueriesShed:          shedClient + shedPeer,
		QueriesShedClient:    shedClient,
		QueriesShedPeer:      shedPeer,
		QueriesShedAdmission: m.Shed[metrics.ShedAdmission][metrics.SourcePeer].Value(),
		RateLimited:          rateLimited,
		BusyReceived:         m.BusyReceived.Value(),
		HitsUnsolicited:      m.HitsUnsolicited.Value(),
		HitsForged:           m.HitsForged.Value(),
	}
}

// PeerScores snapshots the node's reputation view of its overlay links,
// keyed by peer link id. Nil when Options.Trust is off.
func (n *Node) PeerScores() map[int]float64 {
	if n.book == nil {
		return nil
	}
	return n.book.Scores()
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serve(c)
		}()
	}
}

// serve performs the acceptor side of the handshake and runs the
// connection's read loop.
func (n *Node) serve(c net.Conn) {
	c = n.opts.Wrap(c)
	c = metrics.NewMeteredConn(c, n.metrics.ConnBytes[metrics.DirIn], n.metrics.ConnBytes[metrics.DirOut])
	br := bufio.NewReader(c)
	c.SetReadDeadline(time.Now().Add(n.opts.HandshakeTimeout))
	line, err := br.ReadString('\n')
	if err != nil {
		c.Close()
		return
	}
	c.SetReadDeadline(time.Time{})
	hello := strings.TrimSpace(line)

	switch hello {
	case helloClient:
		cc := newConn(n, c, br, true)
		if !n.register(cc, true) {
			fmt.Fprintf(c, "%s\n", helloBusy)
			c.Close()
			return
		}
		fmt.Fprintf(c, "%s\n", helloOK)
		defer n.unregister(cc)
		n.runClient(cc)
	case helloPeer:
		cc := newConn(n, c, br, false)
		if !n.register(cc, false) {
			fmt.Fprintf(c, "%s\n", helloBusy)
			c.Close()
			return
		}
		fmt.Fprintf(c, "%s\n", helloOK)
		defer n.unregister(cc)
		n.runPeer(cc)
	case helloControl:
		cc := newConn(n, c, br, false)
		cc.isControl = true
		if !n.registerControl(cc) {
			fmt.Fprintf(c, "%s\n", helloBusy)
			c.Close()
			return
		}
		fmt.Fprintf(c, "%s\n", helloOK)
		defer n.unregister(cc)
		n.runControl(cc)
	case transfer.Hello:
		cc := newConn(n, c, br, false)
		cc.isTransfer = true
		if !n.registerTransfer(cc) {
			fmt.Fprintf(c, "%s\n", transfer.HelloBusy)
			c.Close()
			return
		}
		fmt.Fprintf(c, "%s\n", transfer.HelloOK)
		defer n.unregister(cc)
		n.runTransfer(cc)
	default:
		n.opts.Logf("p2p: rejecting unknown hello %q from %s", hello, c.RemoteAddr())
		c.Close()
	}
}

// register admits a connection into the tracked set, enforcing the role's
// capacity limit. The check and the reservation happen under one lock
// acquisition, so two concurrent handshakes can never both slip under the
// limit.
func (n *Node) register(c *conn, isClient bool) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	if isClient {
		if n.nClients >= n.opts.MaxClients {
			return false
		}
		n.nClients++
	} else {
		if n.nPeers >= n.opts.MaxPeers {
			return false
		}
		n.nPeers++
	}
	n.conns[c] = struct{}{}
	n.metrics.ConnsOpen.Inc()
	return true
}

func (n *Node) unregister(c *conn) {
	n.mu.Lock()
	if _, ok := n.conns[c]; ok {
		delete(n.conns, c)
		switch {
		case c.isControl:
			delete(n.ctlConns, c)
		case c.isTransfer:
			n.nTransfers--
		case c.isClient:
			n.nClients--
		default:
			n.nPeers--
		}
		n.metrics.ConnsOpen.Dec()
	}
	n.mu.Unlock()
}

// ConnectPeer dials another super-peer and adds it as an overlay neighbor.
func (n *Node) ConnectPeer(addr string) error {
	c, err := n.opts.Dial("tcp", addr, n.opts.DialTimeout)
	if err != nil {
		return fmt.Errorf("p2p: dialing peer %s: %w", addr, err)
	}
	c = metrics.NewMeteredConn(c, n.metrics.ConnBytes[metrics.DirIn], n.metrics.ConnBytes[metrics.DirOut])
	if _, err := fmt.Fprintf(c, "%s\n", helloPeer); err != nil {
		c.Close()
		return err
	}
	br := bufio.NewReader(c)
	c.SetReadDeadline(time.Now().Add(n.opts.HandshakeTimeout))
	line, err := br.ReadString('\n')
	if err != nil {
		c.Close()
		return fmt.Errorf("p2p: peer handshake with %s: %w", addr, err)
	}
	c.SetReadDeadline(time.Time{})
	if strings.TrimSpace(line) != helloOK {
		c.Close()
		return fmt.Errorf("p2p: peer %s refused: %s", addr, strings.TrimSpace(line))
	}
	pc := newConn(n, c, br, false)
	if !n.register(pc, false) {
		c.Close()
		return errClosed
	}
	n.startWorkers()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer n.unregister(pc)
		n.runPeer(pc)
	}()
	return nil
}

// heartbeatLoop pings every overlay neighbor each HeartbeatInterval and
// closes links that have been silent past HeartbeatTimeout — the dead-peer
// detection that lets the overlay shed crashed or partitioned super-peers
// instead of blocking on them.
func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.opts.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case now := <-t.C:
			n.mu.Lock()
			peers := n.peerListLocked(nil)
			n.mu.Unlock()
			for _, p := range peers {
				if silent := now.Sub(p.lastSeen()); silent > n.opts.HeartbeatTimeout {
					n.opts.Logf("p2p: peer %s silent %v > %v, declaring dead",
						p.c.RemoteAddr(), silent.Round(time.Millisecond), n.opts.HeartbeatTimeout)
					p.c.Close()
					continue
				}
				id, err := newGUID()
				if err != nil {
					continue
				}
				if err := p.send(&gnutella.Ping{ID: id, TTL: 1}); err != nil {
					n.opts.Logf("p2p: heartbeat to %s: %v", p.c.RemoteAddr(), err)
					p.c.Close()
				}
			}
		}
	}
}

// enqueueQuery admits one arriving query into the dispatch queue, applying
// the overload-protection ladder in order: per-client token bucket, per
// connection inflight cap, then the node-wide queue bound. Every refusal is
// an explicit, counted Busy response to the sender — never a silent drop —
// and admission never blocks the connection's read loop.
func (n *Node) enqueueQuery(c *conn, q *gnutella.Query, fromPeer bool) {
	src := metrics.SourceClient
	if fromPeer {
		src = metrics.SourcePeer
	}
	if !fromPeer && n.opts.ClientQueryRate > 0 &&
		!c.bucket.take(time.Now(), n.opts.ClientQueryRate, n.opts.ClientQueryBurst) {
		n.metrics.Shed[metrics.ShedRateLimit][src].Inc()
		n.sendBusy(c, q)
		return
	}
	if int(c.inflight.Load()) >= n.opts.MaxInflight {
		n.metrics.Shed[metrics.ShedInflight][src].Inc()
		n.sendBusy(c, q)
		return
	}
	if fromPeer && n.book != nil {
		// Trust-aware admission: overlay queries may collectively occupy at
		// most a TrustPeerShare slice of the queue — the rest stays reserved
		// for local clients — and a link's usable slice scales with its
		// reliability score, so a distrusted neighbor can flood us out of at
		// most TrustFloor of the overlay share.
		w := n.book.Weight(c.peerID, n.opts.TrustFloor)
		limit := int(w * n.opts.TrustPeerShare * float64(n.opts.QueueDepth))
		if limit < 1 {
			limit = 1
		}
		if int(n.peerQueued.Load()) >= limit {
			n.metrics.Shed[metrics.ShedAdmission][src].Inc()
			n.sendBusy(c, q)
			return
		}
	}
	c.inflight.Add(1)
	if fromPeer {
		n.peerQueued.Add(1)
	}
	select {
	case n.queue <- queryTask{c: c, q: q, fromPeer: fromPeer}:
	case <-n.stop:
		c.inflight.Add(-1) // shutting down; the connection dies with us
		if fromPeer {
			n.peerQueued.Add(-1)
		}
	default:
		c.inflight.Add(-1)
		if fromPeer {
			n.peerQueued.Add(-1)
		}
		n.metrics.Shed[metrics.ShedQueue][src].Inc()
		n.sendBusy(c, q)
	}
}

// sendBusy answers a shed query. Best effort: if the link is already dead the
// sender will learn from the connection error instead.
func (n *Node) sendBusy(c *conn, q *gnutella.Query) {
	if err := c.send(&gnutella.Busy{ID: q.ID, TTL: 1, Hops: q.Hops}); err != nil {
		n.opts.Logf("p2p: busy to %s: %v", c.c.RemoteAddr(), err)
	}
}

// queryWorker drains the dispatch queue. On shutdown it keeps draining until
// the queue is empty — the graceful half of Close's drain window — and then
// exits.
func (n *Node) queryWorker() {
	defer n.qwg.Done()
	for {
		select {
		case t := <-n.queue:
			n.dispatch(t)
		case <-n.stop:
			for {
				select {
				case t := <-n.queue:
					n.dispatch(t)
				default:
					return
				}
			}
		}
	}
}

// dispatch executes one admitted query.
func (n *Node) dispatch(t queryTask) {
	defer t.c.inflight.Add(-1)
	if t.fromPeer {
		defer n.peerQueued.Add(-1)
	}
	start := time.Now()
	if t.fromPeer {
		n.handlePeerQuery(t.c, t.q)
	} else {
		n.handleClientQuery(t.c, t.q)
	}
	n.metrics.QueryService.Observe(time.Since(start).Seconds())
	n.metrics.QueriesHandled.Inc()
}

// pruneLoop expires stale reverse-path routes.
func (n *Node) pruneLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.opts.RouteTTL / 2)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case now := <-t.C:
			cutoff := now.Add(-n.opts.RouteTTL)
			n.mu.Lock()
			for id, rt := range n.routes {
				if rt.at.Before(cutoff) && rt.local == nil {
					delete(n.routes, id)
				}
			}
			n.mu.Unlock()
		}
	}
}

// newGUID returns a random descriptor id.
func newGUID() (gnutella.GUID, error) {
	var g gnutella.GUID
	if _, err := rand.Read(g[:]); err != nil {
		return g, err
	}
	return g, nil
}

// errClosed reports operations on a closed node.
var errClosed = errors.New("p2p: node closed")
