// Package p2p is a working super-peer node over TCP: the system the paper
// models, runnable. A Node acts "as a server to a set of clients, and as an
// equal in a network of super-peers" (Section 1): clients connect, ship
// their collection metadata (Join), and submit keyword queries; the node
// answers from an inverted index over its clients' titles and floods the
// query over its peer links with a TTL, Gnutella-style, relaying Response
// messages back along the reverse path.
//
// The wire format is internal/gnutella's — the same byte layout the paper's
// cost model prices — and the index is internal/index's inverted lists.
// Every connection is served by its own goroutine.
package p2p

import (
	"bufio"
	"crypto/rand"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"spnet/internal/gnutella"
	"spnet/internal/index"
)

// Protocol handshake lines.
const (
	helloClient = "SPNET/1.0 CLIENT"
	helloPeer   = "SPNET/1.0 PEER"
	helloOK     = "SPNET/1.0 OK"
	helloBusy   = "SPNET/1.0 BUSY"
)

// Options configure a Node. The zero value is usable.
type Options struct {
	// TTL stamped on queries this node originates or accepts from clients
	// (default 7, the Table 1 default).
	TTL int
	// MaxClients bounds the cluster size (default 100).
	MaxClients int
	// MaxPeers bounds the overlay outdegree (default 30).
	MaxPeers int
	// RouteTTL is how long reverse-path routing state is kept
	// (default 60s).
	RouteTTL time.Duration
	// DialTimeout bounds ConnectPeer's TCP dial (default 10s).
	DialTimeout time.Duration
	// HandshakeTimeout bounds the hello exchange on both the accept and
	// the dial path (default 10s).
	HandshakeTimeout time.Duration
	// WriteTimeout bounds each message write (default 30s).
	WriteTimeout time.Duration
	// HeartbeatInterval is how often the node pings its overlay neighbors
	// (default 5s; negative disables heartbeats).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is how long a peer link may stay silent before the
	// node declares it dead and closes it (default 3×HeartbeatInterval).
	HeartbeatTimeout time.Duration
	// Wrap, when set, wraps every accepted connection — the hook
	// internal/faults uses to inject message drop, delay, truncation,
	// resets and partitions.
	Wrap func(net.Conn) net.Conn
	// Dial, when set, replaces the dialer used by ConnectPeer (same fault
	// injection hook, outbound side).
	Dial func(network, addr string, timeout time.Duration) (net.Conn, error)
	// Logf, when set, receives diagnostic output.
	Logf func(format string, args ...any)
}

func (o *Options) setDefaults() {
	if o.TTL <= 0 {
		o.TTL = 7
	}
	if o.MaxClients <= 0 {
		o.MaxClients = 100
	}
	if o.MaxPeers <= 0 {
		o.MaxPeers = 30
	}
	if o.RouteTTL <= 0 {
		o.RouteTTL = 60 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 10 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = 5 * time.Second
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 3 * o.HeartbeatInterval
	}
	if o.Wrap == nil {
		o.Wrap = func(c net.Conn) net.Conn { return c }
	}
	if o.Dial == nil {
		o.Dial = net.DialTimeout
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// routeEntry remembers where a query GUID arrived from, for duplicate
// detection and reverse-path response routing.
type routeEntry struct {
	via   *conn // nil for locally originated or client-originated queries
	owner int   // client owner id when a local client originated it, else -1
	local chan *gnutella.QueryHit
	at    time.Time
}

// Node is one super-peer.
type Node struct {
	opts Options
	ln   net.Listener

	mu      sync.Mutex
	index   *index.Index
	clients map[int]*conn // owner id -> client connection
	guids   map[int]gnutella.GUID
	peers   map[*conn]struct{}
	conns   map[*conn]struct{} // every live connection, for shutdown
	routes  map[gnutella.GUID]*routeEntry
	nextOwn int
	closed  bool

	// Admission counts, maintained at register/unregister time. The
	// clients/peers maps are only populated later (on Join / in runPeer), so
	// capacity must be enforced on these counters to make check-and-admit
	// atomic — otherwise concurrent handshakes slip past MaxClients/MaxPeers.
	nClients int
	nPeers   int

	wg   sync.WaitGroup
	stop chan struct{}
}

// NewNode creates a node; call Listen to start serving.
func NewNode(opts Options) *Node {
	opts.setDefaults()
	return &Node{
		opts:    opts,
		index:   index.New(),
		clients: make(map[int]*conn),
		guids:   make(map[int]gnutella.GUID),
		peers:   make(map[*conn]struct{}),
		conns:   make(map[*conn]struct{}),
		routes:  make(map[gnutella.GUID]*routeEntry),
		stop:    make(chan struct{}),
	}
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting clients and
// peers.
func (n *Node) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("p2p: listen %s: %w", addr, err)
	}
	n.ln = ln
	n.wg.Add(2)
	go n.acceptLoop()
	go n.pruneLoop()
	if n.opts.HeartbeatInterval > 0 {
		n.wg.Add(1)
		go n.heartbeatLoop()
	}
	return nil
}

// Addr returns the bound listen address.
func (n *Node) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// Close shuts the node down and waits for its goroutines.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]*conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()

	close(n.stop)
	if n.ln != nil {
		n.ln.Close()
	}
	for _, c := range conns {
		c.c.Close()
	}
	n.wg.Wait()
	return nil
}

// Stats reports the node's current shape.
type Stats struct {
	Clients      int
	Peers        int
	IndexedFiles int
}

// Stats returns a snapshot of the node's state.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return Stats{
		Clients:      len(n.clients),
		Peers:        len(n.peers),
		IndexedFiles: n.index.NumDocs(),
	}
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serve(c)
		}()
	}
}

// serve performs the acceptor side of the handshake and runs the
// connection's read loop.
func (n *Node) serve(c net.Conn) {
	c = n.opts.Wrap(c)
	br := bufio.NewReader(c)
	c.SetReadDeadline(time.Now().Add(n.opts.HandshakeTimeout))
	line, err := br.ReadString('\n')
	if err != nil {
		c.Close()
		return
	}
	c.SetReadDeadline(time.Time{})
	hello := strings.TrimSpace(line)

	switch hello {
	case helloClient:
		cc := newConn(n, c, br, true)
		if !n.register(cc, true) {
			fmt.Fprintf(c, "%s\n", helloBusy)
			c.Close()
			return
		}
		fmt.Fprintf(c, "%s\n", helloOK)
		defer n.unregister(cc)
		n.runClient(cc)
	case helloPeer:
		cc := newConn(n, c, br, false)
		if !n.register(cc, false) {
			fmt.Fprintf(c, "%s\n", helloBusy)
			c.Close()
			return
		}
		fmt.Fprintf(c, "%s\n", helloOK)
		defer n.unregister(cc)
		n.runPeer(cc)
	default:
		n.opts.Logf("p2p: rejecting unknown hello %q from %s", hello, c.RemoteAddr())
		c.Close()
	}
}

// register admits a connection into the tracked set, enforcing the role's
// capacity limit. The check and the reservation happen under one lock
// acquisition, so two concurrent handshakes can never both slip under the
// limit.
func (n *Node) register(c *conn, isClient bool) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	if isClient {
		if n.nClients >= n.opts.MaxClients {
			return false
		}
		n.nClients++
	} else {
		if n.nPeers >= n.opts.MaxPeers {
			return false
		}
		n.nPeers++
	}
	n.conns[c] = struct{}{}
	return true
}

func (n *Node) unregister(c *conn) {
	n.mu.Lock()
	if _, ok := n.conns[c]; ok {
		delete(n.conns, c)
		if c.isClient {
			n.nClients--
		} else {
			n.nPeers--
		}
	}
	n.mu.Unlock()
}

// ConnectPeer dials another super-peer and adds it as an overlay neighbor.
func (n *Node) ConnectPeer(addr string) error {
	c, err := n.opts.Dial("tcp", addr, n.opts.DialTimeout)
	if err != nil {
		return fmt.Errorf("p2p: dialing peer %s: %w", addr, err)
	}
	if _, err := fmt.Fprintf(c, "%s\n", helloPeer); err != nil {
		c.Close()
		return err
	}
	br := bufio.NewReader(c)
	c.SetReadDeadline(time.Now().Add(n.opts.HandshakeTimeout))
	line, err := br.ReadString('\n')
	if err != nil {
		c.Close()
		return fmt.Errorf("p2p: peer handshake with %s: %w", addr, err)
	}
	c.SetReadDeadline(time.Time{})
	if strings.TrimSpace(line) != helloOK {
		c.Close()
		return fmt.Errorf("p2p: peer %s refused: %s", addr, strings.TrimSpace(line))
	}
	pc := newConn(n, c, br, false)
	if !n.register(pc, false) {
		c.Close()
		return errClosed
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer n.unregister(pc)
		n.runPeer(pc)
	}()
	return nil
}

// heartbeatLoop pings every overlay neighbor each HeartbeatInterval and
// closes links that have been silent past HeartbeatTimeout — the dead-peer
// detection that lets the overlay shed crashed or partitioned super-peers
// instead of blocking on them.
func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.opts.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case now := <-t.C:
			n.mu.Lock()
			peers := n.peerListLocked(nil)
			n.mu.Unlock()
			for _, p := range peers {
				if silent := now.Sub(p.lastSeen()); silent > n.opts.HeartbeatTimeout {
					n.opts.Logf("p2p: peer %s silent %v > %v, declaring dead",
						p.c.RemoteAddr(), silent.Round(time.Millisecond), n.opts.HeartbeatTimeout)
					p.c.Close()
					continue
				}
				id, err := newGUID()
				if err != nil {
					continue
				}
				if err := p.send(&gnutella.Ping{ID: id, TTL: 1}); err != nil {
					n.opts.Logf("p2p: heartbeat to %s: %v", p.c.RemoteAddr(), err)
					p.c.Close()
				}
			}
		}
	}
}

// pruneLoop expires stale reverse-path routes.
func (n *Node) pruneLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.opts.RouteTTL / 2)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case now := <-t.C:
			cutoff := now.Add(-n.opts.RouteTTL)
			n.mu.Lock()
			for id, rt := range n.routes {
				if rt.at.Before(cutoff) && rt.local == nil {
					delete(n.routes, id)
				}
			}
			n.mu.Unlock()
		}
	}
}

// newGUID returns a random descriptor id.
func newGUID() (gnutella.GUID, error) {
	var g gnutella.GUID
	if _, err := rand.Read(g[:]); err != nil {
		return g, err
	}
	return g, nil
}

// errClosed reports operations on a closed node.
var errClosed = errors.New("p2p: node closed")
