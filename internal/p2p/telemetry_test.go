package p2p

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spnet/internal/metrics"
)

// TestTelemetryScrape boots a real super-peer, drives traffic through it,
// and scrapes its telemetry surface over HTTP — the same handler spnet-node
// serves for -telemetry.
func TestTelemetryScrape(t *testing.T) {
	node := NewNode(Options{HeartbeatInterval: -1})
	if err := node.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	cl, err := DialClient(node.Addr(), []SharedFile{{Index: 1, Title: "needle in haystack"}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	results, err := cl.Search("needle", 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}

	srv := httptest.NewServer(metrics.Handler(node.Metrics().Registry()))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	vals, err := metrics.ParsePrometheus(strings.NewReader(get("/metrics")))
	if err != nil {
		t.Fatal(err)
	}
	for key, min := range map[string]float64{
		metrics.SeriesKey(metrics.MetricMessages, metrics.Label{Name: "type", Value: "query"}, metrics.Label{Name: "dir", Value: "in"}):     1,
		metrics.SeriesKey(metrics.MetricMessages, metrics.Label{Name: "type", Value: "response"}, metrics.Label{Name: "dir", Value: "out"}): 1,
		metrics.SeriesKey(metrics.MetricMessageBytes, metrics.Label{Name: "type", Value: "join"}, metrics.Label{Name: "dir", Value: "in"}):  1,
		metrics.SeriesKey(metrics.MetricConnBytes, metrics.Label{Name: "dir", Value: "in"}):                                                 1,
		metrics.SeriesKey(metrics.MetricConnBytes, metrics.Label{Name: "dir", Value: "out"}):                                                1,
		metrics.SeriesKey(metrics.MetricConnsOpen):      1,
		metrics.SeriesKey(metrics.MetricProcUnits):      0.1,
		metrics.SeriesKey(metrics.MetricQueriesHandled): 1,
	} {
		if vals[key] < min {
			t.Errorf("scraped %s = %v, want >= %v", key, vals[key], min)
		}
	}

	var vars map[string]any
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatalf("/debug/vars not valid JSON: %v", err)
	}
	if _, ok := vars["spnet"].(map[string]any); !ok {
		t.Error("/debug/vars missing spnet object")
	}

	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ does not list profiles")
	}
}

// TestStatsShedSourceSplit drives the overload ladder from both source
// classes and checks the Stats split: a client over its token bucket counts
// as RateLimited; a peer query over the inflight cap counts as
// QueriesShedPeer, not QueriesShedClient.
func TestStatsShedSourceSplit(t *testing.T) {
	node := NewNode(Options{
		HeartbeatInterval: -1,
		ClientQueryRate:   0.0001, // bucket holds 1 token: second query sheds
		ClientQueryBurst:  1,
	})
	if err := node.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	cl, err := DialClient(node.Addr(), []SharedFile{{Index: 1, Title: "alpha"}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Search("alpha", 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	out, err := cl.SearchDetailed("alpha", 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if out.Busy == 0 {
		t.Error("rate-limited search saw no Busy response")
	}

	st := node.Stats()
	if st.RateLimited != 1 {
		t.Errorf("RateLimited = %d, want 1", st.RateLimited)
	}
	if st.QueriesShedClient != 0 || st.QueriesShedPeer != 0 {
		t.Errorf("shed split = client %d / peer %d, want 0/0 (rate limit is separate)",
			st.QueriesShedClient, st.QueriesShedPeer)
	}

	// Peer-sourced shed: drop the inflight cap to zero-ish by filling it is
	// racy; instead check the metric wiring directly through enqueueQuery's
	// peer path with MaxInflight=0 on a fresh node.
	node2 := NewNode(Options{HeartbeatInterval: -1, MaxInflight: 1})
	if err := node2.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer node2.Close()
	m := node2.Metrics()
	m.Shed[metrics.ShedInflight][metrics.SourcePeer].Inc()
	m.Shed[metrics.ShedQueue][metrics.SourcePeer].Inc()
	m.Shed[metrics.ShedQueue][metrics.SourceClient].Inc()
	st2 := node2.Stats()
	if st2.QueriesShedPeer != 2 || st2.QueriesShedClient != 1 {
		t.Errorf("shed split = client %d / peer %d, want 1/2", st2.QueriesShedClient, st2.QueriesShedPeer)
	}
	if st2.QueriesShed != 3 {
		t.Errorf("QueriesShed = %d, want 3", st2.QueriesShed)
	}
}

// TestClientMetering checks the optional client-side meter: queries out,
// responses in, raw bytes both ways.
func TestClientMetering(t *testing.T) {
	node := NewNode(Options{HeartbeatInterval: -1})
	if err := node.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	nm := metrics.NewNodeMetrics()
	cl, err := DialClientOptions(DialOptions{Addrs: []string{node.Addr()}, Metrics: nm},
		[]SharedFile{{Index: 7, Title: "beta melody"}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Search("melody", 300*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	if got := nm.Load.Messages(metrics.ClassJoin, metrics.DirOut); got != 1 {
		t.Errorf("client join out = %d, want 1", got)
	}
	if got := nm.Load.Messages(metrics.ClassQuery, metrics.DirOut); got != 1 {
		t.Errorf("client query out = %d, want 1", got)
	}
	if got := nm.Load.Messages(metrics.ClassResponse, metrics.DirIn); got != 1 {
		t.Errorf("client response in = %d, want 1", got)
	}
	if nm.ConnBytes[metrics.DirOut].Value() == 0 || nm.ConnBytes[metrics.DirIn].Value() == 0 {
		t.Error("client raw conn bytes not counted")
	}
}
