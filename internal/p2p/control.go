package p2p

import (
	"time"

	"spnet/internal/gnutella"
)

// Control-plane side of a node: the receiver half of the fleet controller in
// internal/control. A controller connects with the "SPNET/1.0 CONTROL" hello;
// the node immediately announces itself with a Register frame (carrying its
// identity and the highest directive epoch it has applied, so a restarted
// controller can rebuild its database), then answers Pings and applies
// Directives.
//
// Directives are idempotent by epoch: the node applies a directive only when
// its epoch exceeds the node's watermark, and acknowledges every directive
// either way (Applied=1 or Applied=0 for stale). If the controller vanishes,
// nothing here changes — the node keeps serving with its last-applied
// configuration, which is the graceful-degradation contract the control
// plane is built around.

// SetIdentity names this node for the control plane: id is the stable
// operator-assigned label (e.g. "sp-0-1"), telemetry the /metrics HTTP
// address ("" when not serving telemetry). Call before controllers connect;
// safe to call again after a restart.
func (n *Node) SetIdentity(id, telemetry string) {
	n.mu.Lock()
	n.nodeID = id
	n.telemetryAddr = telemetry
	n.mu.Unlock()
}

// ControlState reports the node's control-plane view: the highest directive
// epoch applied and the currently effective TTL and client capacity.
func (n *Node) ControlState() (epoch uint64, ttl, maxClients int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ctlEpoch, n.opts.TTL, n.opts.MaxClients
}

// registerControl admits a controller link. Control links are not part of the
// client or peer capacity budget — a full cluster must still be reachable by
// its controller — so only the closed check applies.
func (n *Node) registerControl(c *conn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	n.conns[c] = struct{}{}
	n.ctlConns[c] = struct{}{}
	n.metrics.ConnsOpen.Inc()
	return true
}

// runControl serves one controller link: announce, then answer pings and
// apply directives until the link dies.
func (n *Node) runControl(c *conn) {
	defer c.c.Close()
	if err := c.send(n.makeRegister(gnutella.RegisterHello)); err != nil {
		n.opts.Logf("p2p: control register to %s: %v", c.c.RemoteAddr(), err)
		return
	}
	for {
		msg, err := c.read()
		if err != nil {
			return
		}
		c.touch()
		switch m := msg.(type) {
		case *gnutella.Ping:
			if err := c.send(&gnutella.Pong{ID: m.ID, TTL: 1}); err != nil {
				return
			}
		case *gnutella.Directive:
			applied := n.applyDirective(m)
			var flag uint8
			if applied {
				flag = 1
			}
			n.mu.Lock()
			id := n.nodeID
			n.mu.Unlock()
			ack := &gnutella.DirectiveAck{ID: m.ID, Epoch: m.Epoch, Applied: flag, NodeID: id}
			if err := c.send(ack); err != nil {
				n.opts.Logf("p2p: directive ack to %s: %v", c.c.RemoteAddr(), err)
				return
			}
		default:
			n.opts.Logf("p2p: unexpected %T from controller %s", m, c.c.RemoteAddr())
			return
		}
	}
}

// makeRegister builds this node's announcement frame.
func (n *Node) makeRegister(flags uint8) *gnutella.Register {
	id, err := newGUID()
	if err != nil {
		id = gnutella.GUID{} // rand exhausted; the GUID is informational here
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return &gnutella.Register{
		ID:        id,
		Flags:     flags,
		Epoch:     n.ctlEpoch,
		NodeID:    n.nodeID,
		Addr:      n.Addr(),
		Telemetry: n.telemetryAddr,
	}
}

// applyDirective applies one Section 5.3 decision if its epoch is fresh.
// Every mutation happens under mu — the same lock all readers of TTL and
// MaxClients already hold — so a directive lands atomically between queries.
func (n *Node) applyDirective(d *gnutella.Directive) bool {
	n.mu.Lock()
	if d.Epoch <= n.ctlEpoch {
		n.mu.Unlock()
		n.metrics.DirectivesStale.Inc()
		return false
	}
	n.ctlEpoch = d.Epoch
	var target string
	switch d.Action {
	case gnutella.ActionSetTTL:
		if d.TTL > 0 {
			n.opts.TTL = int(d.TTL)
		}
	case gnutella.ActionPromotePartner, gnutella.ActionSplitCluster, gnutella.ActionCoalesce:
		if d.MaxClients > 0 {
			n.opts.MaxClients = int(d.MaxClients)
		}
		if d.TTL > 0 {
			n.opts.TTL = int(d.TTL)
		}
		target = d.Target
	}
	n.mu.Unlock()
	n.metrics.DirectivesApplied.Inc()
	n.opts.Logf("p2p: applied directive epoch %d: %s (ttl %d, max-clients %d, target %q)",
		d.Epoch, d.Action, d.TTL, d.MaxClients, d.Target)
	if target != "" {
		// Best-effort: take over the dead partner's overlay position. A dial
		// failure does not un-apply the capacity change; the controller sees
		// the topology through its next scrape and can retarget.
		if err := n.ConnectPeer(target); err != nil {
			n.opts.Logf("p2p: directive epoch %d: peering with %s: %v", d.Epoch, target, err)
		}
	}
	return true
}

// deregisterFromControllers sends a best-effort RegisterBye on every open
// control link during Close, so controllers can tell a drain from a crash.
// conns is Close's snapshot; control links are filtered from it so the bye
// goes only to links that were alive when shutdown began.
func (n *Node) deregisterFromControllers(conns []*conn) {
	var ctl []*conn
	n.mu.Lock()
	for _, c := range conns {
		if _, ok := n.ctlConns[c]; ok {
			ctl = append(ctl, c)
		}
	}
	n.mu.Unlock()
	if len(ctl) == 0 {
		return
	}
	bye := n.makeRegister(gnutella.RegisterBye)
	for _, c := range ctl {
		// Serialize against the link's ack writer, but with a short deadline:
		// shutdown must not hang WriteTimeout-long per dead controller link.
		c.wmu.Lock()
		c.c.SetWriteDeadline(time.Now().Add(500 * time.Millisecond))
		if err := gnutella.WriteMessage(c.c, bye); err != nil {
			n.opts.Logf("p2p: deregister bye: %v", err)
		}
		c.wmu.Unlock()
	}
}
