package p2p

import (
	"encoding/binary"
	"sort"
	"strings"

	"spnet/internal/gnutella"
	"spnet/internal/index"
	"spnet/internal/routing"
)

// selectPeers runs the node's routing strategy over a snapshot of peer links
// (taken under n.mu by the caller) and returns the links one query copy
// should go to. hops is the query's overlay distance at the forwarding
// decision: 0 when this node sources the query, >= 1 when relaying. Called
// outside n.mu — strategy state locks internally. The snapshot is sorted by
// peer id so candidate order (and any seeded randomness over it) is stable.
func (n *Node) selectPeers(peers []*conn, text string, id gnutella.GUID, ttl, hops int) []*conn {
	if len(peers) == 0 {
		return peers
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].peerID < peers[j].peerID })
	terms := titleTerms(text)
	cands := make([]routing.Candidate, len(peers))
	for i, p := range peers {
		cands[i] = routing.Candidate{ID: p.peerID}
	}
	q := routing.Query{
		ID:    binary.LittleEndian.Uint64(id[:8]),
		Terms: terms,
		TTL:   ttl,
		Hops:  hops,
	}
	sel := n.route.Select(nil, q, cands, n.rstate)
	out := make([]*conn, 0, len(sel))
	for _, i := range sel {
		p := peers[i]
		if n.routeLearns {
			n.rstate.RecordForward(p.peerID, terms)
		}
		out = append(out, p)
	}
	n.metrics.QueriesForwarded.Add(int64(len(out)))
	return out
}

// summariesChanged recomputes the routing-index advert for every peer link
// and ships a Summary to each link whose advert changed. The advert sent to
// link P is split-horizon: the local index digest merged with the summaries
// every OTHER link advertised to us — the term-set form of Crespo &
// Garcia-Molina's routing indices. Change-only sends make re-advertisement
// cascades converge even over overlay cycles. Call after anything that moves
// the local index (client join/update/leave) or the neighbor summary set
// (summary receipt, link up/down). No-op unless the strategy uses summaries.
func (n *Node) summariesChanged() {
	if !n.routeSummaries {
		return
	}
	n.sumMu.Lock()
	defer n.sumMu.Unlock()

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	local := n.index.Summary()
	peers := n.peerListLocked(nil)
	n.mu.Unlock()

	type advert struct {
		p     *conn
		terms []string
	}
	var sends []advert
	for _, p := range peers {
		merged := index.MergeSummary(nil, local)
		for _, q := range peers {
			if q == p {
				continue
			}
			if ts := n.rstate.SummaryTermList(q.peerID); ts != nil {
				merged = index.MergeSummary(merged, index.NewSummary(ts))
			}
		}
		terms := merged.Terms() // sorted, so the change key is canonical
		key := strings.Join(terms, "\x00")
		if p.sentAdvert == key {
			continue
		}
		p.sentAdvert = key
		sends = append(sends, advert{p: p, terms: terms})
	}
	for _, a := range sends {
		id, err := newGUID()
		if err != nil {
			continue
		}
		if err := a.p.send(&gnutella.Summary{ID: id, TTL: 1, Terms: a.terms}); err != nil {
			n.opts.Logf("p2p: summary to %s: %v", a.p.c.RemoteAddr(), err)
		}
	}
}

// RoutingInfo reports the live routing state: the strategy name, how many
// peer links have advertised a content summary, and the total advertised
// terms across those links. Experiments poll it to detect summary
// convergence before measuring.
func (n *Node) RoutingInfo() (strategy string, links, terms int) {
	n.mu.Lock()
	peers := n.peerListLocked(nil)
	n.mu.Unlock()
	for _, p := range peers {
		if t := n.rstate.SummaryTerms(p.peerID); t >= 0 {
			links++
			terms += t
		}
	}
	return n.route.Name(), links, terms
}
