package p2p

import (
	"sync"

	"spnet/internal/gnutella"
	"spnet/internal/stats"
)

// misForgedResults is the fabricated result count a forging node claims per
// forged QueryHit — matching the simulator's advForgedResults so the two
// layers model the same attack.
const misForgedResults = 3

// MisbehaveOptions turn a live node into an adversary — the working-system
// counterpart of sim.AdversaryOptions, used by the reliability harness and
// the trustsweep experiment to plant malicious super-peers in a real overlay.
// Each decision is an independent draw from a seeded stream, so a fixed seed
// gives a fixed misbehavior sequence for a fixed message order.
type MisbehaveOptions struct {
	// Drop is the probability a query is silently discarded instead of
	// processed (freeloading) — a forwarded overlay query, or a local
	// client's own query, which the client observes only as an empty
	// result window. Mirrors sim.AdversaryOptions.Drop.
	Drop float64
	// Forge is the probability the node answers a forwarded overlay query
	// with a fabricated QueryHit: claimed results with no dialable client
	// behind any of them.
	Forge float64
	// BusyLie is the probability a local client's query is refused with
	// Busy despite available capacity.
	BusyLie float64
	// ForgeChunk is the probability a served data chunk's payload is
	// corrupted before send — the transfer-plane forgery the downloader's
	// manifest hash check must catch and debit through trust. Manifests are
	// never corrupted: the attack modeled is data poisoning, not denial.
	ForgeChunk float64
	// Seed seeds the misbehavior draw stream.
	Seed uint64
}

// misbehaveState is a node's adversary machinery; nil on honest nodes, and
// every probe treats the nil receiver as "behave".
type misbehaveState struct {
	mu   sync.Mutex
	opts MisbehaveOptions
	rng  *stats.RNG
}

func newMisbehaveState(opts *MisbehaveOptions) *misbehaveState {
	if opts == nil {
		return nil
	}
	return &misbehaveState{opts: *opts, rng: stats.NewRNG(opts.Seed)}
}

// draw spends one Bernoulli(p) sample from the misbehavior stream.
func (m *misbehaveState) draw(p float64) bool {
	if p <= 0 {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rng.Float64() < p
}

func (m *misbehaveState) dropQuery() bool {
	return m != nil && m.draw(m.opts.Drop)
}

func (m *misbehaveState) forgeHit() bool {
	return m != nil && m.draw(m.opts.Forge)
}

func (m *misbehaveState) busyLie() bool {
	return m != nil && m.draw(m.opts.BusyLie)
}

func (m *misbehaveState) forgeChunk() bool {
	return m != nil && m.draw(m.opts.ForgeChunk)
}

// forgeQueryHit fabricates the hit a forging node sends back for a relayed
// query: misForgedResults claimed matches, titled after the query text so a
// learning routing strategy would credit them, all referencing a responder
// record with no dialable address — the tell trust validation keys on.
func forgeQueryHit(q *gnutella.Query) *gnutella.QueryHit {
	h := &gnutella.QueryHit{ID: q.ID, TTL: 1, Hops: q.Hops}
	h.Responders = append(h.Responders, gnutella.ResponderRecord{ResultCount: misForgedResults})
	for i := 0; i < misForgedResults; i++ {
		h.Results = append(h.Results, gnutella.ResultRecord{
			FileIndex: uint32(i), AddrRef: 0, Title: q.Text,
		})
	}
	return h
}

// hitLooksForged reports whether no claimed result in h is backed by a
// dialable responder address. Honest hits always carry the responding
// clients' real TCP addresses (searchLocked fills them from the live
// connections), so an all-zero responder set marks a fabricated hit.
func hitLooksForged(h *gnutella.QueryHit) bool {
	if len(h.Responders) == 0 {
		return true
	}
	for _, r := range h.Responders {
		if r.Port != 0 {
			return false
		}
	}
	return true
}
