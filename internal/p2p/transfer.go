package p2p

import (
	"fmt"
	"sync"
	"time"

	"spnet/internal/gnutella"
	"spnet/internal/index"
	"spnet/internal/metrics"
	"spnet/internal/transfer"
)

// storeOwner is the reserved index owner id under which a node's own content
// Store is indexed. Client owner ids are assigned sequentially from 0, so the
// store's catalog can never collide with a real client; unlike client docs,
// store docs answer QueryHits with the node's own listen address — a dialable
// transfer source.
const storeOwner = 1 << 30

// indexStore adds the content store's catalog to the node's inverted index,
// so queries hit served files exactly like client collections.
func (n *Node) indexStore(s *transfer.Store) {
	for _, f := range s.Files() {
		if terms := titleTerms(f.Title); len(terms) > 0 {
			n.index.Add(index.DocID{Owner: storeOwner, File: f.Index}, terms)
		}
	}
}

// byteLimiter paces the node's aggregate served transfer bytes: reserve
// debits n bytes and returns how long the caller must sleep before sending
// so the long-run rate stays at `rate` bytes/sec. Debt-based (tokens may go
// negative), which smooths pacing at chunk granularity. A zero rate means
// unlimited.
type byteLimiter struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func (l *byteLimiter) reserve(now time.Time, n int) time.Duration {
	if l == nil || l.rate <= 0 {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.last.IsZero() {
		l.tokens = l.burst
	} else {
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
	}
	l.last = now
	l.tokens -= float64(n)
	if l.tokens >= 0 {
		return 0
	}
	return time.Duration(-l.tokens / l.rate * float64(time.Second))
}

// registerTransfer admits a transfer link under its own capacity budget,
// separate from the client/peer counts, so downloads can never crowd
// queries out of the node (or vice versa).
func (n *Node) registerTransfer(c *conn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed || n.opts.Content == nil {
		return false
	}
	if n.nTransfers >= n.opts.MaxTransfers {
		return false
	}
	n.nTransfers++
	n.conns[c] = struct{}{}
	n.metrics.ConnsOpen.Inc()
	return true
}

// runTransfer serves one transfer link: a strict request/response loop over
// the content store. Responses go back in request order, which is what lets
// the downloader pipeline a window of requests per source.
func (n *Node) runTransfer(c *conn) {
	defer c.c.Close()
	for {
		msg, err := c.read()
		if err != nil {
			return
		}
		c.touch()
		req, ok := msg.(*gnutella.ChunkRequest)
		if !ok {
			n.opts.Logf("p2p: unexpected %T on transfer link from %s", msg, c.c.RemoteAddr())
			return
		}
		if err := n.serveChunk(c, req); err != nil {
			n.opts.Logf("p2p: serving chunk to %s: %v", c.c.RemoteAddr(), err)
			return
		}
	}
}

// serveChunk answers one ChunkRequest from the store, pacing data chunks
// through the node's transfer-rate limiter. Unknown files or chunk indices
// are nacked, not dropped, so the downloader can re-aim immediately.
func (n *Node) serveChunk(c *conn, req *gnutella.ChunkRequest) error {
	data, man, ok := n.opts.Content.ChunkData(req.FileIndex, req.Chunk)
	if !ok {
		return c.send(&gnutella.ChunkNack{
			ID: req.ID, FileIndex: req.FileIndex, Chunk: req.Chunk,
			Code: gnutella.NackNotFound,
		})
	}
	if req.Chunk != transfer.ManifestChunk {
		if n.mis.forgeChunk() && len(data) > 0 {
			// Adversary: flip bits in the payload. The manifest hash check on
			// the receiving side is what catches this.
			data[0] ^= 0xA5
		}
		if d := n.xferLimit.reserve(time.Now(), len(data)); d > 0 {
			time.Sleep(d)
		}
		n.metrics.TransferBytes[metrics.DirOut].Add(int64(len(data)))
	}
	return c.send(&gnutella.ChunkData{
		ID: req.ID, FileIndex: req.FileIndex, Chunk: req.Chunk,
		TotalChunks: uint32(man.NumChunks()), FileSize: uint64(man.FileSize),
		Data: data,
	})
}

// TransferSources distills search results into dialable download sources for
// one exact title: unique responder addresses paired with the file index each
// advertised. Results without a dialable address (forged, or clients behind
// ephemeral ports) are skipped.
func TransferSources(results []SearchResult, title string) []transfer.Source {
	seen := make(map[string]bool)
	var out []transfer.Source
	for _, r := range results {
		if title != "" && r.Title != title {
			continue
		}
		if r.OwnerPort == 0 {
			continue
		}
		addr := fmt.Sprintf("%d.%d.%d.%d:%d",
			r.OwnerIP[0], r.OwnerIP[1], r.OwnerIP[2], r.OwnerIP[3], r.OwnerPort)
		if seen[addr] {
			continue
		}
		seen[addr] = true
		out = append(out, transfer.Source{Addr: addr, FileIndex: r.FileIndex})
	}
	return out
}
