package p2p

import (
	"spnet/internal/cost"
	"spnet/internal/gnutella"
	"spnet/internal/metrics"
)

// meterMessage attributes one codec message crossing a node link: its wire
// bytes land in the load meter under the Table 2 taxonomy class, and the
// matching send/receive processing cost — plus the per-message packet
// multiplex charge for the node's currently open connections — accumulates
// in model units. Called from the conn send/read paths; allocation-free.
func (n *Node) meterMessage(d metrics.Dir, m gnutella.Message) {
	nm := n.metrics
	gnutella.Meter(nm.Load, d, m)
	var u cost.Units
	switch msg := m.(type) {
	case *gnutella.Query:
		if d == metrics.DirIn {
			_, u = cost.RecvQuery(len(msg.Text))
		} else {
			_, u = cost.SendQuery(len(msg.Text))
		}
	case *gnutella.QueryHit:
		a, r := float64(len(msg.Responders)), float64(len(msg.Results))
		if d == metrics.DirIn {
			_, u = cost.RecvResponse(1, a, r)
		} else {
			_, u = cost.SendResponse(1, a, r)
		}
	case *gnutella.Join:
		if d == metrics.DirIn {
			_, u = cost.RecvJoin(len(msg.Files))
		} else {
			_, u = cost.SendJoin(len(msg.Files))
		}
	case *gnutella.Update:
		if d == metrics.DirIn {
			_, u = cost.RecvUpdateCost()
		} else {
			_, u = cost.SendUpdateCost()
		}
	}
	u += cost.PacketMultiplex(int(nm.ConnsOpen.Value()))
	nm.ProcUnits.Add(float64(u))
}

// meterProcessQuery charges the Table 2 query-processing cost for servicing
// one query that produced the given number of results.
func (n *Node) meterProcessQuery(results int) {
	n.metrics.ProcUnits.Add(float64(cost.ProcessQuery(float64(results))))
}
