package p2p

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"spnet/internal/gnutella"
	"spnet/internal/metrics"
)

// dialRawPeer performs a peer handshake by hand, returning the raw link —
// for injecting protocol traffic a well-behaved Node would never send.
func dialRawPeer(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { c.Close() })
	fmt.Fprintf(c, "%s\n", helloPeer)
	line, err := bufio.NewReader(c).ReadString('\n')
	if err != nil {
		t.Fatalf("peer handshake: %v", err)
	}
	if strings.TrimSpace(line) != helloOK {
		t.Fatalf("peer handshake refused: %q", line)
	}
	return c
}

// TestUnsolicitedHitDropped: a QueryHit whose GUID matches no outstanding
// query must be counted and dropped — trust on or off — so forged or
// replayed hits can't be laundered through expired routes.
func TestUnsolicitedHitDropped(t *testing.T) {
	n := startNode(t, Options{})
	c := dialRawPeer(t, n.Addr())

	id, err := newGUID()
	if err != nil {
		t.Fatal(err)
	}
	hit := &gnutella.QueryHit{ID: id, TTL: 1}
	hit.Responders = append(hit.Responders, gnutella.ResponderRecord{ResultCount: 1})
	hit.Results = append(hit.Results, gnutella.ResultRecord{Title: "junk"})
	if err := gnutella.WriteMessage(c, hit); err != nil {
		t.Fatalf("writing unsolicited hit: %v", err)
	}
	waitFor(t, "unsolicited hit counted", func() bool {
		return n.Stats().HitsUnsolicited == 1
	})
}

// TestForgedHitValidation: with Trust on, a forging neighbor's fabricated
// hits (no dialable responder) are dropped before reaching the client and
// debit the forger's reputation; with Trust off the client receives the
// garbage — the vulnerable baseline.
func TestForgedHitValidation(t *testing.T) {
	for _, trustOn := range []bool{false, true} {
		t.Run(fmt.Sprintf("trust=%v", trustOn), func(t *testing.T) {
			honest := startNode(t, Options{Trust: trustOn})
			forger := startNode(t, Options{Misbehave: &MisbehaveOptions{Forge: 1, Seed: 7}})
			if err := forger.ConnectPeer(honest.Addr()); err != nil {
				t.Fatalf("ConnectPeer: %v", err)
			}
			waitFor(t, "peer link up", func() bool { return honest.Stats().Peers == 1 })

			cl, err := DialClient(honest.Addr(), []SharedFile{{Index: 1, Title: "unrelated title"}})
			if err != nil {
				t.Fatalf("DialClient: %v", err)
			}
			defer cl.Close()

			out, err := cl.SearchDetailed("quantum flux", 300*time.Millisecond)
			if err != nil {
				t.Fatalf("SearchDetailed: %v", err)
			}
			if out.Genuine != 0 {
				t.Fatalf("Genuine = %d, want 0 (no real matches exist)", out.Genuine)
			}
			st := honest.Stats()
			if trustOn {
				if len(out.Results) != 0 {
					t.Fatalf("trust-on client received %d forged results", len(out.Results))
				}
				if st.HitsForged == 0 {
					t.Fatalf("trust-on node counted no forged hits")
				}
				scores := honest.PeerScores()
				if len(scores) != 1 {
					t.Fatalf("PeerScores = %v, want one link", scores)
				}
				for _, s := range scores {
					if s >= 0.5 {
						t.Fatalf("forger's reputation = %.3f, want < 0.5", s)
					}
				}
			} else {
				if len(out.Results) == 0 {
					t.Fatalf("trust-off client should have accepted the forged results")
				}
				if st.HitsForged != 0 {
					t.Fatalf("trust-off node claims forged detection: %+v", st)
				}
				if honest.PeerScores() != nil {
					t.Fatalf("PeerScores should be nil with Trust off")
				}
			}
		})
	}
}

// TestTrustAdmissionShare: a distrusted overlay link's usable queue share
// collapses toward TrustFloor, so its queries shed with the admission
// reason while a reputable link's pass.
func TestTrustAdmissionShare(t *testing.T) {
	n := startNode(t, Options{Trust: true, QueueDepth: 8})
	peer := startNode(t, Options{})
	if err := peer.ConnectPeer(n.Addr()); err != nil {
		t.Fatalf("ConnectPeer: %v", err)
	}
	waitFor(t, "peer link up", func() bool { return n.Stats().Peers == 1 })

	n.mu.Lock()
	var link *conn
	for p := range n.peers {
		link = p
	}
	n.mu.Unlock()
	if link == nil {
		t.Fatal("no peer conn")
	}

	q := &gnutella.Query{TTL: 2, Text: "anything"}
	if q.ID, _ = newGUID(); q.ID == (gnutella.GUID{}) {
		t.Fatal("guid")
	}

	// Reputable link, empty queue: admission passes.
	n.book.SetPrior(link.peerID, 1, 100)
	n.enqueueQuery(link, q, true)
	if got := n.metrics.Shed[metrics.ShedAdmission][metrics.SourcePeer].Value(); got != 0 {
		t.Fatalf("reputable link shed %d by admission, want 0", got)
	}

	// Distrusted link: weight floors out, limit = max(1, 0.1*0.5*8) = 1;
	// with one overlay query already accounted, the next is shed.
	n.book.SetPrior(link.peerID, 0, 100)
	n.peerQueued.Store(1)
	defer n.peerQueued.Store(0)
	q2 := *q
	q2.ID, _ = newGUID()
	n.enqueueQuery(link, &q2, true)
	if got := n.metrics.Shed[metrics.ShedAdmission][metrics.SourcePeer].Value(); got != 1 {
		t.Fatalf("distrusted link shed %d by admission, want 1", got)
	}
	waitFor(t, "busy delivered", func() bool { return peer.Stats().BusyReceived >= 1 })
}

// TestClientTrustRehoming is the live recovery story: a client homed on a
// Busy-lying partner re-homes to the honest one via reputation and regains
// recall, while a trust-oblivious client stays stuck — the malicious
// partner's TCP link never dies, so connectivity-driven failover alone
// can't save it.
func TestClientTrustRehoming(t *testing.T) {
	hub := startNode(t, Options{})
	liar := startNode(t, Options{Misbehave: &MisbehaveOptions{BusyLie: 1, Seed: 3}})
	good := startNode(t, Options{})
	for _, leaf := range []*Node{liar, good} {
		if err := leaf.ConnectPeer(hub.Addr()); err != nil {
			t.Fatalf("ConnectPeer: %v", err)
		}
	}
	waitFor(t, "overlay up", func() bool { return hub.Stats().Peers == 2 })

	provider, err := DialClient(hub.Addr(), []SharedFile{{Index: 9, Title: "deep purple smoke"}})
	if err != nil {
		t.Fatalf("provider DialClient: %v", err)
	}
	defer provider.Close()
	waitFor(t, "provider indexed", func() bool { return hub.Stats().IndexedFiles == 1 })

	search := func(cl *Client) int {
		t.Helper()
		out, err := cl.SearchDetailed("purple smoke", 400*time.Millisecond)
		if err != nil {
			t.Fatalf("SearchDetailed: %v", err)
		}
		return out.Genuine
	}

	// Trust-oblivious baseline: homed on the liar, every search refused.
	oblivious, err := DialClientOptions(DialOptions{
		Addrs: []string{liar.Addr(), good.Addr()},
	}, nil)
	if err != nil {
		t.Fatalf("oblivious DialClientOptions: %v", err)
	}
	defer oblivious.Close()
	for i := 0; i < 3; i++ {
		if g := search(oblivious); g != 0 {
			t.Fatalf("oblivious client got %d genuine results through a total Busy-liar", g)
		}
	}
	if oblivious.Reconnects() != 0 {
		t.Fatalf("oblivious client failed over %d times with a healthy TCP link", oblivious.Reconnects())
	}

	// Trusting client: refusals tank the liar's score, the 0.5-prior rival
	// overtakes it, and the client re-homes and recovers recall.
	trusting, err := DialClientOptions(DialOptions{
		Addrs: []string{liar.Addr(), good.Addr()},
		Trust: true,
		Seed:  11,
	}, nil)
	if err != nil {
		t.Fatalf("trusting DialClientOptions: %v", err)
	}
	defer trusting.Close()
	if got := trusting.SuperPeerAddr(); got != liar.Addr() {
		t.Fatalf("trusting client homed on %s, want the liar %s first", got, liar.Addr())
	}
	genuine := 0
	for i := 0; i < 5 && genuine == 0; i++ {
		genuine = search(trusting)
	}
	if genuine == 0 {
		t.Fatalf("trusting client never recovered recall; scores %v", trusting.PartnerScores())
	}
	if got := trusting.SuperPeerAddr(); got != good.Addr() {
		t.Fatalf("trusting client on %s, want re-homed to %s", got, good.Addr())
	}
	scores := trusting.PartnerScores()
	if scores[liar.Addr()] >= scores[good.Addr()] {
		t.Fatalf("liar score %.3f not below honest %.3f", scores[liar.Addr()], scores[good.Addr()])
	}
}

// TestTrustPriorsRankInitialDial: noisy initial views steer the first
// connection to the best-reputed partner, not the first listed.
func TestTrustPriorsRankInitialDial(t *testing.T) {
	a := startNode(t, Options{})
	b := startNode(t, Options{})
	cl, err := DialClientOptions(DialOptions{
		Addrs:       []string{a.Addr(), b.Addr()},
		Trust:       true,
		TrustPriors: []float64{0.2, 0.9},
	}, nil)
	if err != nil {
		t.Fatalf("DialClientOptions: %v", err)
	}
	defer cl.Close()
	if got := cl.SuperPeerAddr(); got != b.Addr() {
		t.Fatalf("client homed on %s, want the better-reputed %s", got, b.Addr())
	}
}
