package p2p

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spnet/internal/faults"
	"spnet/internal/gnutella"
	"spnet/internal/stats"
)

// recorder collects client failover events thread-safely.
type recorder struct {
	mu     sync.Mutex
	events []Event
}

func (r *recorder) record(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *recorder) byType(t EventType) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.events {
		if e.Type == t {
			out = append(out, e)
		}
	}
	return out
}

// fastBackoff keeps failover tests quick while still exercising the delay
// machinery.
var fastBackoff = Backoff{Initial: 20 * time.Millisecond, Max: 100 * time.Millisecond, Multiplier: 2, Jitter: 0.2}

// deadPort returns an address nothing listens on.
func deadPort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestClientFailoverKillMidSearch is the acceptance scenario: a client's
// super-peer is killed mid-search; the client returns the partial results it
// has, then reconnects — with observed backoff — to a redundant partner
// super-peer (paper §3.2 k-redundancy), automatically re-joins so the
// partner's index holds its collection, and the next search succeeds.
// Deterministic under the fixed jitter seed.
func TestClientFailoverKillMidSearch(t *testing.T) {
	primary := startNode(t, Options{})
	partner := startNode(t, Options{})
	if err := primary.ConnectPeer(partner.Addr()); err != nil {
		t.Fatal(err)
	}

	// A provider on the partner cluster gives searches something to find.
	provider, err := DialClient(partner.Addr(), []SharedFile{
		{Index: 42, Title: "redundant lecture notes"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer provider.Close()
	waitFor(t, "provider indexed", func() bool { return partner.Stats().IndexedFiles == 1 })

	// The ranked list walks primary -> (dead address) -> partner, so the
	// failover cycle must burn one failed dial and one backoff sleep
	// before reaching the live partner.
	const seed = 42
	rec := &recorder{}
	cl, err := DialClientOptions(DialOptions{
		Addrs:   []string{primary.Addr(), deadPort(t), partner.Addr()},
		Backoff: fastBackoff,
		Seed:    seed,
		OnEvent: rec.record,
	}, []SharedFile{{Index: 7, Title: "failover classic"}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	waitFor(t, "client joined primary", func() bool { return primary.Stats().IndexedFiles == 1 })

	// Kill the client's super-peer mid-search.
	go func() {
		time.Sleep(100 * time.Millisecond)
		primary.Close()
	}()
	partial, err := cl.Search("lecture", 2*time.Second)
	if err == nil {
		t.Fatal("search across a killed super-peer reported clean completion")
	}
	// Partial results, not a poisoned connection: the overlay hop may or
	// may not have delivered the hit before the crash; either way the
	// client keeps what arrived.
	t.Logf("mid-crash search returned %d results, err = %v", len(partial), err)

	// The next search triggers the supervised reconnect loop and succeeds
	// against the redundant partner.
	results, err := cl.Search("lecture", 500*time.Millisecond)
	if err != nil {
		t.Fatalf("post-failover search: %v", err)
	}
	if len(results) != 1 || results[0].FileIndex != 42 {
		t.Fatalf("post-failover results = %+v, want file 42", results)
	}
	if got := cl.SuperPeerAddr(); got != partner.Addr() {
		t.Errorf("client on %s, want the partner %s", got, partner.Addr())
	}
	if cl.Reconnects() != 1 {
		t.Errorf("reconnects = %d, want 1", cl.Reconnects())
	}

	// Backoff was observed, deterministically under the seed: attempt 0
	// (the dead address) is immediate, attempt 1 sleeps the seeded
	// jittered initial delay before reaching the partner.
	if got := rec.byType(EventConnLost); len(got) == 0 {
		t.Error("no conn-lost event")
	}
	if got := rec.byType(EventDialFailed); len(got) == 0 {
		t.Error("no dial-failed event for the dead address")
	}
	backoffs := rec.byType(EventBackoff)
	if len(backoffs) == 0 {
		t.Fatal("no backoff observed")
	}
	wantDelay := time.Duration(float64(fastBackoff.Initial) * (1 + fastBackoff.Jitter*(2*stats.NewRNG(seed).Float64()-1)))
	if backoffs[0].Delay != wantDelay {
		t.Errorf("first backoff delay = %v, want %v (deterministic under seed %d)", backoffs[0].Delay, wantDelay, seed)
	}
	if got := rec.byType(EventReconnected); len(got) != 1 || got[0].Addr != partner.Addr() {
		t.Errorf("reconnected events = %+v, want one to %s", got, partner.Addr())
	}
	if got := rec.byType(EventRejoined); len(got) != 1 {
		t.Errorf("rejoined events = %+v, want exactly one", got)
	}

	// Rejoin reconciled the index: the partner holds the provider's file
	// and the failed-over client's file, no duplicates or orphans.
	waitFor(t, "client collection on partner", func() bool { return partner.Stats().IndexedFiles == 2 })
	found, err := cl.Search("classic", 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 1 || found[0].FileIndex != 7 {
		t.Fatalf("own collection post-failover = %+v, want file 7", found)
	}
}

// TestRejoinAfterFailoverIndexConsistent is the satellite check that the
// super-peer's index matches the client's shared files after failover:
// updates made before the crash survive into the re-join, and updates made
// after land on the new super-peer.
func TestRejoinAfterFailoverIndexConsistent(t *testing.T) {
	a := startNode(t, Options{})
	b := startNode(t, Options{})

	rec := &recorder{}
	cl, err := DialClientOptions(DialOptions{
		Addrs:   []string{a.Addr(), b.Addr()},
		Backoff: fastBackoff,
		Seed:    1,
		OnEvent: rec.record,
	}, []SharedFile{
		{Index: 1, Title: "alpha song"},
		{Index: 2, Title: "beta song"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	waitFor(t, "joined", func() bool { return a.Stats().IndexedFiles == 2 })

	// A pre-crash update must survive into the post-failover rejoin.
	if err := cl.Update(gnutella.OpInsert, SharedFile{Index: 3, Title: "gamma song"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "insert indexed", func() bool { return a.Stats().IndexedFiles == 3 })

	a.Close()
	if _, err := cl.Search("song", 200*time.Millisecond); err == nil {
		t.Fatal("search against killed super-peer succeeded")
	}
	if err := cl.Reconnect(); err != nil {
		t.Fatalf("Reconnect: %v", err)
	}

	// Exactly the client's three files — no duplicates, no orphans.
	waitFor(t, "rejoined on b", func() bool { return b.Stats().IndexedFiles == 3 })
	for _, q := range []string{"alpha", "beta", "gamma"} {
		r, err := cl.Search(q, 150*time.Millisecond)
		if err != nil {
			t.Fatalf("search %q: %v", q, err)
		}
		if len(r) != 1 {
			t.Errorf("search %q = %+v, want exactly 1 result", q, r)
		}
	}

	// Updates after failover apply to the new super-peer and the shadow
	// collection stays consistent for any further failover.
	if err := cl.Update(gnutella.OpDelete, SharedFile{Index: 1}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delete applied", func() bool { return b.Stats().IndexedFiles == 2 })
	if err := cl.Rejoin([]SharedFile{{Index: 9, Title: "solo track"}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "rejoin replaced collection", func() bool { return b.Stats().IndexedFiles == 1 })
	if r, _ := cl.Search("solo", 150*time.Millisecond); len(r) != 1 {
		t.Errorf("rejoined collection not searchable: %+v", r)
	}
}

// TestWatchdogReconnectsWithoutUserOps proves the supervised reconnect loop
// runs on its own: after the super-peer dies, the heartbeat watchdog detects
// the dead link and fails over with no user operation in flight.
func TestWatchdogReconnectsWithoutUserOps(t *testing.T) {
	a := startNode(t, Options{})
	b := startNode(t, Options{})
	cl, err := DialClientOptions(DialOptions{
		Addrs:             []string{a.Addr(), b.Addr()},
		Backoff:           fastBackoff,
		HeartbeatInterval: 30 * time.Millisecond,
		Seed:              3,
	}, []SharedFile{{Index: 5, Title: "watchdog anthem"}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	waitFor(t, "joined a", func() bool { return a.Stats().IndexedFiles == 1 })

	a.Close()
	// No client call: the watchdog alone must move the collection to b.
	waitFor(t, "watchdog failover", func() bool { return b.Stats().IndexedFiles == 1 })
	if cl.Reconnects() != 1 {
		t.Errorf("reconnects = %d, want 1", cl.Reconnects())
	}
	r, err := cl.Search("anthem", 150*time.Millisecond)
	if err != nil || len(r) != 1 {
		t.Fatalf("post-watchdog search = %+v, %v", r, err)
	}
}

// TestBackoffDeterministicSchedule pins the reconnect delay sequence to the
// seed: same seed, same delays; different seed, different delays.
func TestBackoffDeterministicSchedule(t *testing.T) {
	seq := func(seed uint64) []time.Duration {
		b := fastBackoff
		b.setDefaults()
		rng := stats.NewRNG(seed)
		var out []time.Duration
		for i := 0; i < 8; i++ {
			out = append(out, b.delay(i, rng))
		}
		return out
	}
	a, b := seq(11), seq(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d differs for identical seeds: %v vs %v", i, a[i], b[i])
		}
	}
	if a[0] != 0 {
		t.Errorf("first attempt delay = %v, want immediate", a[0])
	}
	for i := 2; i < len(a); i++ {
		if a[i] > time.Duration(float64(fastBackoff.Max)) {
			t.Errorf("delay %d = %v exceeds max %v", i, a[i], fastBackoff.Max)
		}
	}
	c := seq(12)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical delay sequences")
	}
}

// deadlineFailConn fails SetReadDeadline on demand, simulating a connection
// whose deadline state can no longer be trusted.
type deadlineFailConn struct {
	net.Conn
	fail *atomic.Bool
}

func (c *deadlineFailConn) SetReadDeadline(t time.Time) error {
	if c.fail.Load() {
		return errors.New("injected SetReadDeadline failure")
	}
	return c.Conn.SetReadDeadline(t)
}

// TestSearchDeadlineFailureRetiresConn is the satellite regression test for
// the deadline-clearing path: when SetReadDeadline fails mid-search, the
// connection is retired (never reused with a stale deadline) and the next
// call transparently reconnects.
func TestSearchDeadlineFailureRetiresConn(t *testing.T) {
	n := startNode(t, Options{})
	var fail atomic.Bool
	first := true
	cl, err := DialClientOptions(DialOptions{
		Addrs:   []string{n.Addr(), n.Addr()},
		Backoff: fastBackoff,
		Seed:    5,
		Dial: func(network, addr string, timeout time.Duration) (net.Conn, error) {
			c, err := net.DialTimeout(network, addr, timeout)
			if err != nil || !first {
				return c, err
			}
			first = false
			return &deadlineFailConn{Conn: c, fail: &fail}, nil
		},
	}, []SharedFile{{Index: 1, Title: "deadline dirge"}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	waitFor(t, "joined", func() bool { return n.Stats().IndexedFiles == 1 })

	// Healthy searches work through the instrumented connection.
	if r, err := cl.Search("dirge", 150*time.Millisecond); err != nil || len(r) != 1 {
		t.Fatalf("pre-failure search = %+v, %v", r, err)
	}

	fail.Store(true)
	if _, err := cl.Search("dirge", 150*time.Millisecond); err == nil {
		t.Fatal("search with failing SetReadDeadline reported success")
	}

	// The poisoned connection was retired: the next search reconnects
	// (plain conn this time) and succeeds with a working deadline.
	waitFor(t, "re-joined after retirement", func() bool { return n.Stats().IndexedFiles == 1 })
	r, err := cl.Search("dirge", 150*time.Millisecond)
	if err != nil {
		t.Fatalf("post-retirement search: %v", err)
	}
	if len(r) != 1 {
		t.Fatalf("post-retirement results = %+v, want 1", r)
	}
	if cl.Reconnects() != 1 {
		t.Errorf("reconnects = %d, want 1", cl.Reconnects())
	}
}

// TestHeartbeatDetectsDeadPeer checks super-peer dead-peer detection: a peer
// that handshakes and then goes silent is pinged, times out, and is dropped
// from the overlay.
func TestHeartbeatDetectsDeadPeer(t *testing.T) {
	n := startNode(t, Options{
		HeartbeatInterval: 40 * time.Millisecond,
		HeartbeatTimeout:  120 * time.Millisecond,
	})
	// A raw TCP "peer" that never answers pings.
	c, err := net.Dial("tcp", n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte(helloPeer + "\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(helloOK)+1)
	if _, err := c.Read(buf); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "silent peer admitted", func() bool { return n.Stats().Peers == 1 })
	waitFor(t, "silent peer declared dead", func() bool { return n.Stats().Peers == 0 })
}

// TestHeartbeatKeepsLivePeerConnected is the inverse: two real nodes
// answering each other's pings stay connected well past the heartbeat
// timeout.
func TestHeartbeatKeepsLivePeerConnected(t *testing.T) {
	opts := Options{
		HeartbeatInterval: 30 * time.Millisecond,
		HeartbeatTimeout:  90 * time.Millisecond,
	}
	a := startNode(t, opts)
	b := startNode(t, opts)
	if err := a.ConnectPeer(b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "peered", func() bool { return b.Stats().Peers == 1 })
	time.Sleep(300 * time.Millisecond) // several timeout windows
	if a.Stats().Peers != 1 || b.Stats().Peers != 1 {
		t.Errorf("live peers dropped: a=%d b=%d, want 1 and 1",
			a.Stats().Peers, b.Stats().Peers)
	}
}

// TestSearchDetailedAccountsDeadNeighbor checks graceful degradation with
// per-neighbor accounting: a search over an overlay with a faulted link
// returns local results plus the per-neighbor error, instead of failing.
func TestSearchDetailedAccountsDeadNeighbor(t *testing.T) {
	ctrl := faults.NewController(9)
	a := startNode(t, Options{Dial: ctrl.Dialer("a")})
	b := startNode(t, Options{})
	if err := a.ConnectPeer(b.Addr()); err != nil {
		t.Fatal(err)
	}
	local, err := DialClient(a.Addr(), []SharedFile{{Index: 1, Title: "local hit"}})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	waitFor(t, "local indexed", func() bool { return a.Stats().IndexedFiles == 1 })

	// Kill a's outbound link traffic from now on.
	ctrl.SetRule("a", faults.Rule{ResetProb: 1})
	out, err := a.SearchDetailed("hit", 100*time.Millisecond)
	if err != nil {
		t.Fatalf("SearchDetailed: %v", err)
	}
	if len(out.Results) != 1 {
		t.Errorf("results = %+v, want the local hit despite the dead link", out.Results)
	}
	if len(out.Neighbors) != 1 || out.Failed() != 1 {
		t.Errorf("neighbor accounting = %+v, want one failed neighbor", out.Neighbors)
	}
}
